// Thin entry point: all behaviour lives in pipesched_cli so it can be tested
// with in-memory streams.
#include <iostream>

#include "pipesched/cli/cli.hpp"

int main(int argc, char** argv) {
  return pipesched::cli::runCli(argc, argv, std::cout, std::cerr);
}
