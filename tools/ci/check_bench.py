#!/usr/bin/env python3
"""CI bench gates with diagnosable failures.

The gates used to be inline `python3 -c` one-liners in ci.yml; when a bench
binary crashed or a partial run wrote a file without some section, the step
died with an opaque KeyError and no hint of which file or section was
missing. Every lookup here goes through helpers that name the file, the
missing section, and the sections that *are* present before failing.

Usage (one subcommand per gate):
  check_bench.py observability BENCH.json --min-ratio 0.9
  check_bench.py eval BENCH.json --m 16 --min-speedup 2
  check_bench.py parse-path BENCH.json --min-speedup 2
  check_bench.py warm-sweep BENCH.json
"""

import argparse
import json
import sys


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.9 container
    print(f"bench gate: {message}", file=sys.stderr)
    sys.exit(1)


def load_bench(path: str) -> dict:
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"bench file '{path}' does not exist — did the bench step run?")
    except json.JSONDecodeError as e:
        fail(f"bench file '{path}' is not valid JSON ({e}) — truncated bench run?")
    if not isinstance(data, dict):
        fail(f"bench file '{path}' holds {type(data).__name__}, expected an object")
    return data


def section(data: dict, path: str, name: str) -> dict:
    if name not in data:
        have = ", ".join(sorted(data)) or "<none>"
        fail(f"section '{name}' missing from {path} (sections present: {have}) — "
             f"partial bench run?")
    return data[name]


def field(sec, path: str, section_name: str, name: str):
    if name not in sec:
        have = ", ".join(sorted(sec)) or "<none>"
        fail(f"field '{name}' missing from section '{section_name}' of {path} "
             f"(fields present: {have})")
    return sec[name]


def gate_observability(args) -> None:
    data = load_bench(args.bench)
    obs = section(data, args.bench, "observability")
    ratio = field(obs, args.bench, "observability", "enabled_over_disabled")
    print(f"observability enabled/disabled ratio: {ratio:.3f} "
          f"(gate: >= {args.min_ratio})")
    if ratio < args.min_ratio:
        fail(f"instrumented throughput ratio {ratio:.3f} below {args.min_ratio}: {obs}")


def gate_eval(args) -> None:
    data = load_bench(args.bench)
    kernel = section(data, args.bench, "kernel")
    rows = [k for k in kernel if k.get("m") == args.m]
    if not rows:
        sizes = sorted({k.get("m") for k in kernel})
        fail(f"no kernel row with m={args.m} in {args.bench} (sizes present: {sizes})")
    speedup = field(rows[0], args.bench, f"kernel[m={args.m}]", "speedup")
    print(f"m={args.m} delta-vs-rebuild speedup: {speedup:.2f}x "
          f"(gate: > {args.min_speedup})")
    if speedup <= args.min_speedup:
        fail(f"kernel speedup {speedup:.2f}x not above {args.min_speedup}x: {rows[0]}")


def gate_parse_path(args) -> None:
    data = load_bench(args.bench)
    pp = section(data, args.bench, "parse_path")
    speedup = field(pp, args.bench, "parse_path", "speedup")
    identical = field(pp, args.bench, "parse_path", "outputs_identical")
    print(f"parse-path fast/legacy speedup: {speedup:.2f}x "
          f"(gate: > {args.min_speedup}, outputs identical: {identical})")
    if not identical:
        fail(f"fast and legacy parse paths produced different outputs: {pp}")
    if speedup <= args.min_speedup:
        fail(f"parse-path speedup {speedup:.2f}x not above {args.min_speedup}x: {pp}")


def gate_warm_sweep(args) -> None:
    data = load_bench(args.bench)
    ws = section(data, args.bench, "warm_sweep")
    reused = field(ws, args.bench, "warm_sweep", "sub_units_reused")
    print(f"warm_sweep: {ws}")
    if reused <= 0:
        fail(f"warm sweep reused no sub-result units: {ws}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="gate", required=True)

    p = sub.add_parser("observability", help="instrumented-overhead gate")
    p.add_argument("bench")
    p.add_argument("--min-ratio", type=float, default=0.9)
    p.set_defaults(run=gate_observability)

    p = sub.add_parser("eval", help="delta-kernel speedup gate")
    p.add_argument("bench")
    p.add_argument("--m", type=int, default=16)
    p.add_argument("--min-speedup", type=float, default=2.0)
    p.set_defaults(run=gate_eval)

    p = sub.add_parser("parse-path", help="fast-vs-legacy ingestion gate")
    p.add_argument("bench")
    p.add_argument("--min-speedup", type=float, default=2.0)
    p.set_defaults(run=gate_parse_path)

    p = sub.add_parser("warm-sweep", help="sub-result sharing gate")
    p.add_argument("bench")
    p.set_defaults(run=gate_warm_sweep)

    args = parser.parse_args()
    args.run(args)


if __name__ == "__main__":
    main()
