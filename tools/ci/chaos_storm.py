#!/usr/bin/env python3
"""Scripted client storm for the CI chaos smoke lane.

Drives a `pipesched serve --listen` instance (already running under a
committed fault-spec, see tools/ci/chaos.fault-spec) with a mix of
adversarial clients for a bounded wall-clock window:

  * valid multi-line POST /solve batches,
  * batches with an X-Deadline-Ms header far below solve time (expect 504),
  * syntactically broken requests (expect 400),
  * half-request stalls that go silent (expect 408 from the slowloris guard),
  * rude connects that disconnect without sending a byte.

Every completed response must carry a documented status; a socket that
times out while a full request is outstanding counts as a hang and fails
the run. At the end the observed counts are checked against loose bands:
some clean 200s, at least one degraded line (member faults), at least one
504 (deadline), at least one 408 (stall). Exit 0 iff all bands hold.
"""

import argparse
import socket
import sys
import threading
import time

ALLOWED_STATUSES = {200, 400, 404, 408, 503, 504}


class Tally:
    def __init__(self):
        self.lock = threading.Lock()
        self.statuses = {}
        self.degraded_lines = 0
        self.timed_out_lines = 0
        self.dead_connections = 0
        self.hangs = 0
        self.undocumented = []

    def record(self, status, body=b""):
        with self.lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status not in ALLOWED_STATUSES:
                self.undocumented.append(status)
            self.degraded_lines += body.count(b'"degraded":true')
            self.timed_out_lines += body.count(b'"timed_out":true')

    def record_dead(self):
        with self.lock:
            self.dead_connections += 1

    def record_hang(self):
        with self.lock:
            self.hangs += 1


def read_response(sock):
    """Reads one full HTTP response; returns (status, body) or None on a
    dead connection. Raises socket.timeout on a genuine hang."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            return None
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(body) < length:
        chunk = sock.recv(4096)
        if not chunk:
            return None
        body += chunk
    return status, body[:length]


def request(endpoint, raw, tally, timeout=20.0):
    try:
        sock = socket.create_connection(endpoint, timeout=5.0)
    except OSError:
        tally.record_dead()
        return
    try:
        sock.settimeout(timeout)
        sock.sendall(raw)
        response = read_response(sock)
        if response is None:
            tally.record_dead()  # injected net fault killed the connection
        else:
            tally.record(response[0], response[1])
    except socket.timeout:
        tally.record_hang()  # server neither answered nor closed: a hang
    except OSError:
        tally.record_dead()
    finally:
        sock.close()


def render(method, target, body=b"", headers=()):
    head = f"{method} {target} HTTP/1.1\r\nHost: chaos\r\n".encode()
    if body or method == "POST":
        head += f"Content-Length: {len(body)}\r\n".encode()
    for h in headers:
        head += h.encode() + b"\r\n"
    return head + b"\r\n" + body


def solve_body(seed, lines=3, stages=10, processors=6):
    return b"".join(
        b'{"kind":"E2","stages":%d,"processors":%d,"seed":%d}\n'
        % (stages, processors, seed * 100 + i)
        for i in range(lines)
    )


def storm(endpoint, deadline, tally, worker_id):
    i = 0
    while time.monotonic() < deadline:
        i += 1
        kind = (worker_id + i) % 5
        if kind in (0, 1):  # valid batch (member faults degrade some lines)
            raw = render("POST", "/solve", solve_body(worker_id * 1000 + i))
        elif kind == 2:  # sub-solve deadline: the whole batch should 504
            raw = render("POST", "/solve", solve_body(worker_id * 1000 + i),
                         ("X-Deadline-Ms: 0.01",))
        elif kind == 3:  # broken request line
            raw = b"POST /solve HTTP/1.1\r\nHost: x\r\nbroken\x01header\r\n\r\n"
        else:
            raw = render("GET", "/healthz")
        request(endpoint, raw, tally)


def stall(endpoint, tally):
    """Half a request, then silence: the request-timeout sweep must 408 us."""
    request(endpoint, b"POST /solve HTTP/1.1\r\nHost: x\r\n", tally, timeout=15.0)


def rude_disconnect(endpoint, tally):
    try:
        sock = socket.create_connection(endpoint, timeout=5.0)
        sock.close()
    except OSError:
        tally.record_dead()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port-file", required=True,
                        help="file with 'HOST PORT' written by serve --port-file")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="storm wall-clock seconds (default 30)")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent storm client threads (default 6)")
    args = parser.parse_args()

    host, port = open(args.port_file).read().split()
    endpoint = (host, int(port))
    deadline = time.monotonic() + args.duration
    tally = Tally()

    threads = [threading.Thread(target=storm, args=(endpoint, deadline, tally, c))
               for c in range(args.clients)]
    threads += [threading.Thread(target=stall, args=(endpoint, tally))
                for _ in range(3)]
    threads += [threading.Thread(target=rude_disconnect, args=(endpoint, tally))
                for _ in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    print(f"statuses: {dict(sorted(tally.statuses.items()))}")
    print(f"degraded_lines: {tally.degraded_lines}")
    print(f"timed_out_lines: {tally.timed_out_lines}")
    print(f"dead_connections: {tally.dead_connections}")
    print(f"hangs: {tally.hangs}")

    failures = []
    if tally.hangs:
        failures.append(f"{tally.hangs} connection(s) hung with a request outstanding")
    if tally.undocumented:
        failures.append(f"undocumented statuses observed: {sorted(set(tally.undocumented))}")
    if tally.statuses.get(200, 0) < 5:
        failures.append("fewer than 5 clean 200 responses — the storm starved real traffic")
    if tally.degraded_lines < 1:
        failures.append("no degraded line observed despite armed member faults")
    if tally.statuses.get(504, 0) < 1:
        failures.append("no 504 observed despite sub-solve deadlines")
    if tally.statuses.get(408, 0) < 1:
        failures.append("no 408 observed despite stalled connections")
    for failure in failures:
        print(f"BAND VIOLATION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
