// Ablation (beyond the paper): how much does the one-port *sequential*
// cycle-time model (paper Eq. 1, cycle = in + compute + out) cost relative to
// a hypothetical *overlapped* model (cycle = max(in, compute, out))? For each
// regime we compare, on the same instances and the same H1 heuristic, the
// minimum period reached under both cost models.
//
// Usage: ablation_overlap_model [--instances N] [--stages N] [--processors P]
#include <iostream>
#include <string>

#include "pipesched/exp/aggregate.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace pipesched;
  std::size_t instances = 30;
  std::size_t stages = 20;
  std::size_t processors = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--instances") instances = std::stoul(next());
    else if (arg == "--stages") stages = std::stoul(next());
    else if (arg == "--processors") processors = std::stoul(next());
    else {
      std::cerr << "usage: " << argv[0]
                << " [--instances N] [--stages N] [--processors P]\n";
      return 2;
    }
  }

  const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  std::cout << "Sequential vs overlapped communication model (" << instances
            << " instances per regime, n=" << stages << ", p=" << processors
            << ", H1 run to exhaustion)\n\n";

  exp::TextTable table;
  table.setHeader({"experiment", "seq period (mean)", "ovl period (mean)",
                   "ratio seq/ovl (mean)", "ratio (max)"});
  for (workload::ExperimentKind kind :
       {workload::ExperimentKind::kE1BalancedHomComm,
        workload::ExperimentKind::kE2BalancedHetComm,
        workload::ExperimentKind::kE3LargeComputations,
        workload::ExperimentKind::kE4SmallComputations}) {
    std::vector<Real> seq, ovl, ratio;
    for (std::size_t i = 0; i < instances; ++i) {
      workload::Rng rng(0x0E17A9 ^ (static_cast<std::uint64_t>(kind) << 32) ^ i);
      const auto inst = workload::randomInstance(kind, stages, processors, rng);
      const core::Evaluator evalSeq(inst.pipeline, inst.platform,
                                    core::CommModel::kSequential);
      const core::Evaluator evalOvl(inst.pipeline, inst.platform,
                                    core::CommModel::kOverlapped);
      const Real ps = h1->failureThreshold(evalSeq);
      const Real po = h1->failureThreshold(evalOvl);
      seq.push_back(ps);
      ovl.push_back(po);
      ratio.push_back(ps / po);
    }
    table.addRow({workload::experimentName(kind), exp::formatReal(exp::mean(seq), 2),
                  exp::formatReal(exp::mean(ovl), 2),
                  exp::formatReal(exp::mean(ratio), 3),
                  exp::formatReal(exp::summarize(ratio).max, 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the gap is largest for the communication-dominated E4\n"
               "regime (comm terms dominate the cycle) and smallest for the\n"
               "compute-dominated E3 regime (cycle ~= compute in both models).\n";
  return 0;
}
