// Ablation (beyond the paper): optimality gaps of the six heuristics against
// the exact branch-and-bound on small instances, where ground truth is
// computable. Reports, per experiment regime:
//   * mean period gap  = heuristic exhaustion period / exact minimum period;
//   * mean latency gap = heuristic latency at 1.2x the exact minimum period
//                        / exact minimum latency under the same bound.
//
// Usage: ablation_vs_exact [--instances N] [--stages N] [--processors P]
#include <iostream>
#include <string>
#include <vector>

#include "pipesched/exact/bnb.hpp"
#include "pipesched/exp/aggregate.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace pipesched;
  std::size_t instances = 20;
  std::size_t stages = 8;
  std::size_t processors = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--instances") instances = std::stoul(next());
    else if (arg == "--stages") stages = std::stoul(next());
    else if (arg == "--processors") processors = std::stoul(next());
    else {
      std::cerr << "usage: " << argv[0]
                << " [--instances N] [--stages N] [--processors P]\n";
      return 2;
    }
  }

  const auto heuristicSet = heuristics::makeAllHeuristics();
  std::cout << "Heuristic-vs-exact optimality gaps (" << instances << " instances, n="
            << stages << ", p=" << processors << ", gaps as heuristic/optimal ratios)\n\n";

  for (workload::ExperimentKind kind :
       {workload::ExperimentKind::kE1BalancedHomComm,
        workload::ExperimentKind::kE2BalancedHetComm,
        workload::ExperimentKind::kE3LargeComputations,
        workload::ExperimentKind::kE4SmallComputations}) {
    // Per-heuristic gap samples.
    std::vector<std::vector<Real>> periodGaps(heuristicSet.size());
    std::vector<std::vector<Real>> latencyGaps(heuristicSet.size());
    for (std::size_t i = 0; i < instances; ++i) {
      workload::Rng rng(0xAB1A7E ^ (static_cast<std::uint64_t>(kind) << 32) ^ i);
      const auto inst = workload::randomInstance(kind, stages, processors, rng);
      const core::Evaluator eval(inst.pipeline, inst.platform);
      const Real exactMinPeriod = exact::bnbMinPeriod(eval).metrics.period;
      const Real bound = exactMinPeriod * 1.2;
      const auto exactLatency = exact::bnbMinLatencyForPeriod(eval, bound);

      for (std::size_t h = 0; h < heuristicSet.size(); ++h) {
        const auto& heuristic = heuristicSet[h];
        if (heuristic->objective() == heuristics::Objective::kMinLatencyForPeriod) {
          periodGaps[h].push_back(heuristic->failureThreshold(eval) / exactMinPeriod);
          const auto r = heuristic->run(eval, bound);
          if (r.success && exactLatency) {
            latencyGaps[h].push_back(r.metrics.latency / exactLatency->metrics.latency);
          }
        } else {
          // Latency family: give it the latency the exact solver needed, ask
          // for the period it reaches.
          if (exactLatency) {
            const auto r = heuristic->run(eval, exactLatency->metrics.latency);
            if (r.success) periodGaps[h].push_back(r.metrics.period / exactMinPeriod);
          }
        }
      }
    }

    exp::TextTable table;
    table.setHeader({"heuristic", "period gap (mean)", "period gap (max)",
                     "latency gap (mean)", "samples"});
    for (std::size_t h = 0; h < heuristicSet.size(); ++h) {
      const exp::Summary ps = exp::summarize(periodGaps[h]);
      const exp::Summary ls = exp::summarize(latencyGaps[h]);
      table.addRow({heuristicSet[h]->name(), exp::formatReal(ps.mean, 3),
                    exp::formatReal(ps.max, 3),
                    ls.count ? exp::formatReal(ls.mean, 3) : "—",
                    std::to_string(ps.count)});
    }
    std::cout << "== " << workload::experimentName(kind) << " ("
              << workload::experimentDescription(kind) << ") ==\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "All gaps are >= 1 by construction; values near 1 mean the heuristic is\n"
               "near-optimal on that regime.\n";
  return 0;
}
