// Streaming-engine bench: sustained throughput and submit-to-completion
// latency through AsyncScheduler across a (queue capacity x workers) grid,
// plus the warm cache pass. Emits a human summary and the machine-readable
// BENCH_stream.json:
//
//   {"benchmark":"perf_stream","requests":96,
//    "runs":[{"queue_capacity":2,"workers":1,"requests_per_second":...,
//             "latency_ms":{"p50":...,"p99":...,"max":...},
//             "backpressure_waits":...,"queue_high_water":...},...],
//    "cache":{"warm_requests_per_second":...,"warm_speedup":...},
//    "parse_path":{"lines":...,"legacy_requests_per_second":...,
//                  "fast_requests_per_second":...,"speedup":...,
//                  "outputs_identical":true}}
//
// On a 1-core container the worker axis is flat by construction — the
// meaningful signals are the latency-vs-capacity tradeoff (small queues bound
// p99 submit latency via earlier backpressure) and the warm-cache speedup.
//
// Usage: perf_stream [--requests N] [--stages N] [--processors P] [--points N]
//                    [--seed S] [--workers LIST] [--capacities LIST]
//                    [--output FILE]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "pipesched/io/format.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/stream/async_scheduler.hpp"
#include "pipesched/stream/sink.hpp"
#include "pipesched/stream/source.hpp"
#include "pipesched/workload/generator.hpp"

namespace {

using namespace pipesched;
using Clock = std::chrono::steady_clock;

std::vector<service::Request> makeRequests(std::size_t count, std::size_t stages,
                                           std::size_t processors, std::size_t points,
                                           std::uint64_t seed) {
  const workload::ExperimentKind kinds[] = {
      workload::ExperimentKind::kE1BalancedHomComm,
      workload::ExperimentKind::kE2BalancedHetComm,
      workload::ExperimentKind::kE3LargeComputations,
      workload::ExperimentKind::kE4SmallComputations,
  };
  workload::Rng rng(seed);
  std::vector<service::Request> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const workload::ExperimentKind kind = kinds[i % 4];
    workload::InstancePair pair = workload::randomInstance(kind, stages, processors, rng);
    std::ostringstream name;
    name << workload::experimentName(kind) << '-' << i;
    requests.push_back(service::Request{std::move(pair.pipeline), std::move(pair.platform),
                                        core::CommModel::kSequential,
                                        service::SweepSpec{points, 3}, name.str()});
  }
  return requests;
}

struct LatencySummary {
  double p50Ms = 0;
  double p99Ms = 0;
  double maxMs = 0;
};

LatencySummary summarize(std::vector<double> latenciesMs) {
  LatencySummary s;
  if (latenciesMs.empty()) return s;
  std::sort(latenciesMs.begin(), latenciesMs.end());
  const auto at = [&](double q) {
    const std::size_t idx = std::min(
        latenciesMs.size() - 1, static_cast<std::size_t>(q * static_cast<double>(latenciesMs.size())));
    return latenciesMs[idx];
  };
  s.p50Ms = at(0.50);
  s.p99Ms = at(0.99);
  s.maxMs = latenciesMs.back();
  return s;
}

struct RunSample {
  std::size_t queueCapacity = 0;
  std::size_t workers = 0;
  double requestsPerSecond = 0;
  double wallSeconds = 0;
  LatencySummary latency;
  std::uint64_t backpressureWaits = 0;
  std::size_t queueHighWater = 0;
  std::uint64_t coalesced = 0;
};

RunSample coldRun(const std::vector<service::Request>& requests, std::size_t capacity,
                  std::size_t workers) {
  stream::StreamConfig config;
  config.service.cacheCapacity = 0;  // cold: pure solver traffic
  config.workers = workers;
  config.queueCapacity = capacity;
  stream::AsyncScheduler scheduler(config);

  std::vector<double> latenciesMs(requests.size(), 0);
  std::vector<Clock::time_point> submitted(requests.size());
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    submitted[i] = Clock::now();
    // Each callback writes its own slot: no locking, coherent after drain().
    scheduler.submit(requests[i],
                     [&latenciesMs, &submitted, i](const service::Request&,
                                                   const service::RequestOutcome& outcome) {
                       if (!outcome.ok) throw std::runtime_error("perf_stream: " + outcome.error);
                       latenciesMs[i] = std::chrono::duration<double, std::milli>(
                                            Clock::now() - submitted[i])
                                            .count();
                     });
  }
  scheduler.drain();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();

  const stream::StreamStats stats = scheduler.stats();
  if (stats.failed != 0 || stats.callbackExceptions != 0) {
    throw std::runtime_error("perf_stream: " + std::to_string(stats.failed) +
                             " request(s) failed");
  }
  RunSample sample;
  sample.queueCapacity = capacity;
  sample.workers = workers;
  sample.wallSeconds = wall;
  sample.requestsPerSecond =
      wall > 0 ? static_cast<double>(requests.size()) / wall : 0;
  sample.latency = summarize(std::move(latenciesMs));
  sample.backpressureWaits = stats.queue.pushWaits;
  sample.queueHighWater = stats.queue.highWater;
  sample.coalesced = stats.coalesced;
  return sample;
}

// ---------------------------------------------------------------------------
// Parse-path bench: the zero-copy JSONL reader (BlockLineReader + LiteParser
// + readInstanceInPlace) against the legacy getline + parseJson tree walk,
// over an identical warm corpus. The scheduler runs inline (workers == 0)
// with every request a cache hit, so ingestion — parse + response emission —
// is the measured per-request cost, exactly the regime the ROADMAP item
// names. Outputs of the two readers are compared byte for byte (fully warm
// on both sides) before any timing; a mismatch aborts the bench.
// ---------------------------------------------------------------------------

struct ParsePathSample {
  std::size_t lines = 0;
  std::size_t distinct = 0;
  double legacyReqPerSec = 0;  ///< ingestion only: source.next() loop
  double fastReqPerSec = 0;
  double speedup = 0;
  double legacyWarmStreamReqPerSec = 0;  ///< ingest + warm solve + drain
  double fastWarmStreamReqPerSec = 0;
  double warmStreamSpeedup = 0;
};

ParsePathSample parsePathRun(std::size_t lines, std::uint64_t seed) {
  // A handful of distinct tiny inline-"text" instances, cycled with distinct
  // "points" overrides so the warm cache holds several fingerprints — the
  // serve shape, not one request repeated.
  const std::size_t distinct = 8;
  std::vector<std::string> protoLines;
  workload::Rng rng(seed);
  for (std::size_t i = 0; i < distinct; ++i) {
    workload::InstancePair pair = workload::randomInstance(
        workload::ExperimentKind::kE1BalancedHomComm, 3, 2, rng);
    std::ostringstream text;
    io::writeInstance(text, io::Instance{std::move(pair.pipeline),
                                         std::move(pair.platform), ""});
    std::ostringstream line;
    io::JsonWriter w(line, /*pretty=*/false);
    w.beginObject();
    w.kv("text", text.str());
    w.kv("points", 2 + i % 4);
    w.kv("name", "parse-" + std::to_string(i));
    w.endObject();
    protoLines.push_back(std::move(line).str());
  }
  std::string corpus;
  for (std::size_t i = 0; i < lines; ++i) {
    corpus += protoLines[i % distinct];
    corpus += '\n';
  }

  stream::StreamConfig config;
  config.workers = 0;  // inline: no scheduler hand-off in the measurement
  config.queueCapacity = 8;
  config.service.cacheCapacity = distinct * 2;
  stream::AsyncScheduler scheduler(config);
  const stream::JsonlDefaults defaults;

  // One ingest pass; with `rendered` set it also re-renders every outcome
  // line through the reused-buffer JsonlSink (the byte-identity probe).
  const auto ingestPass = [&](stream::JsonlReader mode,
                              std::string* rendered) -> double {
    std::istringstream in(corpus);
    std::optional<std::ostringstream> renderedStream;
    std::optional<stream::JsonlSink> sink;
    if (rendered != nullptr) {
      renderedStream.emplace();
      sink.emplace(*renderedStream);
    }
    stream::JsonlSource source(in, defaults, /*onError=*/{}, mode);
    std::size_t index = 0;
    const Clock::time_point t0 = Clock::now();
    while (std::optional<service::Request> request = source.next()) {
      scheduler.submit(std::move(*request),
                       [&](const service::Request& req,
                           const service::RequestOutcome& outcome) {
                         if (!outcome.ok) {
                           throw std::runtime_error("perf_stream parse_path: " +
                                                    outcome.error);
                         }
                         if (sink) sink->emit(index, req, outcome);
                       });
      ++index;
    }
    scheduler.drain();
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (index != lines) {
      throw std::runtime_error("perf_stream parse_path: parsed " +
                               std::to_string(index) + " of " +
                               std::to_string(lines) + " lines");
    }
    if (rendered != nullptr) *rendered = std::move(*renderedStream).str();
    return wall;
  };

  // Ingestion only: the JSONL line -> service::Request path this section
  // exists to measure, with solving out of the loop entirely.
  const auto parsePass = [&](stream::JsonlReader mode) -> double {
    std::istringstream in(corpus);
    stream::JsonlSource source(in, defaults, /*onError=*/{}, mode);
    std::size_t parsed = 0;
    const Clock::time_point t0 = Clock::now();
    while (std::optional<service::Request> request = source.next()) ++parsed;
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (parsed != lines) {
      throw std::runtime_error("perf_stream parse_path: parsed " +
                               std::to_string(parsed) + " of " +
                               std::to_string(lines) + " lines");
    }
    return wall;
  };

  // Warm the cache, then compare the two readers' full rendered output in
  // the identical (fully warm) cache state.
  (void)ingestPass(stream::JsonlReader::kLegacy, nullptr);
  std::string legacyRendered;
  std::string fastRendered;
  (void)ingestPass(stream::JsonlReader::kLegacy, &legacyRendered);
  (void)ingestPass(stream::JsonlReader::kFast, &fastRendered);
  if (legacyRendered != fastRendered) {
    throw std::runtime_error(
        "perf_stream parse_path: fast and legacy readers rendered different "
        "output — zero-copy path is broken");
  }

  // Timed: best of 3 per reader and measurement, alternating so neither
  // mode owns the noisier first iterations.
  double legacyBest = 0;
  double fastBest = 0;
  double legacyStreamBest = 0;
  double fastStreamBest = 0;
  const auto keepMin = [](double& best, double wall) {
    if (best == 0 || wall < best) best = wall;
  };
  for (int rep = 0; rep < 3; ++rep) {
    keepMin(legacyBest, parsePass(stream::JsonlReader::kLegacy));
    keepMin(fastBest, parsePass(stream::JsonlReader::kFast));
    keepMin(legacyStreamBest, ingestPass(stream::JsonlReader::kLegacy, nullptr));
    keepMin(fastStreamBest, ingestPass(stream::JsonlReader::kFast, nullptr));
  }

  const auto rate = [lines](double wall) {
    return wall > 0 ? static_cast<double>(lines) / wall : 0;
  };
  ParsePathSample sample;
  sample.lines = lines;
  sample.distinct = distinct;
  sample.legacyReqPerSec = rate(legacyBest);
  sample.fastReqPerSec = rate(fastBest);
  sample.speedup = sample.legacyReqPerSec > 0
                       ? sample.fastReqPerSec / sample.legacyReqPerSec
                       : 0;
  sample.legacyWarmStreamReqPerSec = rate(legacyStreamBest);
  sample.fastWarmStreamReqPerSec = rate(fastStreamBest);
  sample.warmStreamSpeedup = sample.legacyWarmStreamReqPerSec > 0
                                 ? sample.fastWarmStreamReqPerSec /
                                       sample.legacyWarmStreamReqPerSec
                                 : 0;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 96;
  std::size_t stages = 10;
  std::size_t processors = 8;
  std::size_t points = 8;
  std::uint64_t seed = 20070628;
  std::vector<std::size_t> workerCounts = {1, 2, 4};
  std::vector<std::size_t> capacities = {2, 8, 32};
  std::size_t parseLines = 20000;
  std::string output = "BENCH_stream.json";
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [--requests N] [--stages N] [--processors P] [--points N] [--seed S]"
                 " [--workers LIST] [--capacities LIST] [--parse-lines N]"
                 " [--output FILE]\n";
    return 2;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
        return argv[++i];
      };
      const auto parseList = [&](std::vector<std::size_t>& into) {
        into.clear();
        std::stringstream ss(next());
        std::string token;
        while (std::getline(ss, token, ',')) into.push_back(std::stoul(token));
      };
      if (arg == "--requests") requests = std::stoul(next());
      else if (arg == "--stages") stages = std::stoul(next());
      else if (arg == "--processors") processors = std::stoul(next());
      else if (arg == "--points") points = std::stoul(next());
      else if (arg == "--seed") seed = std::stoull(next());
      else if (arg == "--parse-lines") parseLines = std::stoul(next());
      else if (arg == "--output") output = next();
      else if (arg == "--workers") parseList(workerCounts);
      else if (arg == "--capacities") parseList(capacities);
      else return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "perf_stream: " << e.what() << "\n";
    return usage();
  }
  if (requests == 0 || workerCounts.empty() || capacities.empty()) {
    std::cerr << "perf_stream: --requests, --workers, --capacities must be non-empty\n";
    return usage();
  }

  const std::vector<service::Request> batch =
      makeRequests(requests, stages, processors, points, seed);
  std::cout << "perf_stream: " << requests << " requests (" << stages << " stages, "
            << processors << " processors, " << points << " sweep points)\n";

  // Capacity axis at the middle worker count, then the worker axis at the
  // middle capacity — 2 sweeps instead of a full grid keeps the bench quick.
  const std::size_t midWorkers = workerCounts[workerCounts.size() / 2];
  const std::size_t midCapacity = capacities[capacities.size() / 2];
  std::vector<RunSample> samples;
  for (const std::size_t capacity : capacities) {
    samples.push_back(coldRun(batch, capacity, midWorkers));
  }
  for (const std::size_t workers : workerCounts) {
    if (workers == midWorkers) continue;  // already measured on the capacity axis
    samples.push_back(coldRun(batch, midCapacity, workers));
  }
  for (const RunSample& s : samples) {
    std::cout << "  capacity=" << s.queueCapacity << " workers=" << s.workers << ": "
              << s.requestsPerSecond << " req/s, latency p50 " << s.latency.p50Ms
              << " ms, p99 " << s.latency.p99Ms << " ms, backpressure waits "
              << s.backpressureWaits << "\n";
  }

  // Warm pass: same stream twice through one scheduler with the cache on.
  stream::StreamConfig warmConfig;
  warmConfig.service.cacheCapacity = requests * 2;
  warmConfig.workers = midWorkers;
  warmConfig.queueCapacity = midCapacity;
  stream::AsyncScheduler warm(warmConfig);
  const auto pass = [&] {
    const Clock::time_point t0 = Clock::now();
    std::vector<std::future<service::RequestOutcome>> futures;
    futures.reserve(batch.size());
    for (const service::Request& request : batch) futures.push_back(warm.submit(request));
    for (auto& future : futures) {
      if (!future.get().ok) throw std::runtime_error("perf_stream: warm request failed");
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const double coldSeconds = pass();
  const double warmSeconds = pass();
  const double warmSpeedup =
      coldSeconds > 0 && warmSeconds > 0 ? coldSeconds / warmSeconds : 1.0;
  const stream::StreamStats warmStats = warm.stats();
  const double warmReqPerSec =
      warmSeconds > 0 ? static_cast<double>(requests) / warmSeconds : 0;
  std::cout << "  warm pass: " << warmReqPerSec << " req/s, speedup vs cold " << warmSpeedup
            << "x (cache hits " << warmStats.cacheHits << ", coalesced "
            << warmStats.coalesced << ")\n";

  // Warm ingestion: zero-copy reader vs the legacy tree reader.
  ParsePathSample parsePath;
  if (parseLines > 0) {
    parsePath = parsePathRun(parseLines, seed);
    std::cout << "  parse path (" << parsePath.lines << " JSONL lines): legacy "
              << parsePath.legacyReqPerSec << " req/s, fast " << parsePath.fastReqPerSec
              << " req/s, speedup " << parsePath.speedup << "x\n"
              << "  warm stream (ingest + cache-hit solve): legacy "
              << parsePath.legacyWarmStreamReqPerSec << " req/s, fast "
              << parsePath.fastWarmStreamReqPerSec << " req/s, speedup "
              << parsePath.warmStreamSpeedup << "x\n";
  }

  std::ofstream os(output);
  if (!os) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  io::JsonWriter w(os, /*pretty=*/true);
  w.beginObject();
  w.kv("benchmark", "perf_stream");
  w.kv("requests", requests);
  w.kv("stages", stages);
  w.kv("processors", processors);
  w.kv("sweep_points", points);
  w.key("runs").beginArray();
  for (const RunSample& s : samples) {
    w.beginObject();
    w.kv("queue_capacity", s.queueCapacity);
    w.kv("workers", s.workers);
    w.kv("requests_per_second", s.requestsPerSecond);
    w.kv("wall_seconds", s.wallSeconds);
    w.key("latency_ms").beginObject();
    w.kv("p50", s.latency.p50Ms);
    w.kv("p99", s.latency.p99Ms);
    w.kv("max", s.latency.maxMs);
    w.endObject();
    w.kv("backpressure_waits", static_cast<std::size_t>(s.backpressureWaits));
    w.kv("queue_high_water", s.queueHighWater);
    w.kv("coalesced", static_cast<std::size_t>(s.coalesced));
    w.endObject();
  }
  w.endArray();
  w.key("cache").beginObject();
  w.kv("warm_requests_per_second", warmReqPerSec);
  w.kv("warm_speedup", warmSpeedup);
  w.kv("cache_hits", static_cast<std::size_t>(warmStats.cacheHits));
  w.kv("coalesced", static_cast<std::size_t>(warmStats.coalesced));
  w.endObject();
  if (parseLines > 0) {
    // Byte-identity of the two readers' rendered output was asserted before
    // timing (parsePathRun aborts on mismatch), so the presence of this
    // section certifies it.
    w.key("parse_path").beginObject();
    w.kv("lines", parsePath.lines);
    w.kv("distinct_requests", parsePath.distinct);
    w.kv("legacy_requests_per_second", parsePath.legacyReqPerSec);
    w.kv("fast_requests_per_second", parsePath.fastReqPerSec);
    w.kv("speedup", parsePath.speedup);
    w.kv("legacy_warm_stream_requests_per_second", parsePath.legacyWarmStreamReqPerSec);
    w.kv("fast_warm_stream_requests_per_second", parsePath.fastWarmStreamReqPerSec);
    w.kv("warm_stream_speedup", parsePath.warmStreamSpeedup);
    w.kv("outputs_identical", true);
    w.endObject();
  }
  w.endObject();
  os << "\n";
  std::cout << "wrote " << output << "\n";
  return 0;
}
