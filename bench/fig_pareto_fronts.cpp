// Per-instance Pareto fronts (the paper's Section-2 tradeoff, instance by
// instance rather than averaged as in Figures 2-7): merges the six
// heuristics' threshold sweeps into one non-dominated front and, on small
// instances, prints the exact front and the gap between the two.
//
// Usage: fig_pareto_fronts [--seed S] [--points N]
#include <iostream>
#include <string>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace pipesched;
  std::uint64_t seed = 20070628;
  std::size_t points = 24;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--points") points = std::stoul(next());
    else {
      std::cerr << "usage: " << argv[0] << " [--seed S] [--points N]\n";
      return 2;
    }
  }

  struct Case {
    workload::ExperimentKind kind;
    std::size_t n, p;
    bool exact;  ///< small enough for the exhaustive front
  };
  const Case cases[] = {
      {workload::ExperimentKind::kE1BalancedHomComm, 8, 4, true},
      {workload::ExperimentKind::kE2BalancedHetComm, 9, 4, true},
      {workload::ExperimentKind::kE3LargeComputations, 8, 4, true},
      {workload::ExperimentKind::kE4SmallComputations, 9, 4, true},
      {workload::ExperimentKind::kE2BalancedHetComm, 40, 10, false},
  };

  exp::ParetoStudyConfig config;
  config.pointsPerHeuristic = points;

  for (const Case& c : cases) {
    workload::Rng rng(seed ^ (static_cast<std::uint64_t>(c.kind) << 24) ^ c.n);
    const auto inst = workload::randomInstance(c.kind, c.n, c.p, rng);
    const core::Evaluator eval(inst.pipeline, inst.platform);

    std::cout << "== " << workload::experimentName(c.kind) << ", n=" << c.n << ", p=" << c.p
              << " ==\n";
    const exp::ParetoStudy study = exp::runParetoStudy(eval, config);
    exp::printParetoStudy(std::cout, study);

    if (c.exact) {
      const auto exactFront = exact::exhaustiveParetoFront(eval);
      std::cout << "\nExact front: " << exactFront.size() << " points; ";
      const exp::FrontGap gap = exp::frontGap(exactFront, study.merged);
      std::cout << "heuristic gap: mean +" << exp::formatReal(gap.meanRelativeExcess * 100, 2)
                << "% latency, max +" << exp::formatReal(gap.maxRelativeExcess * 100, 2)
                << "%, " << gap.uncovered << " period(s) unreachable\n";
    } else {
      std::cout << "\n(exact front skipped: instance too large for exhaustive search)\n";
    }
    std::cout << '\n';
  }
  return 0;
}
