// Regenerates one of the paper's latency-vs-period figures (Figures 2-7).
// The figure number is baked in at compile time via PIPESCHED_FIG; each
// binary prints the two panels of its figure as text tables and, with
// --csv DIR, writes machine-readable series next to them.
//
// Usage: figN_... [--pairs N] [--points N] [--seed S] [--csv DIR]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pipesched/exp/sweep.hpp"

namespace {

using pipesched::exp::SweepConfig;
using pipesched::workload::ExperimentKind;

struct Panel {
  SweepConfig config;
  std::string title;
};

std::vector<Panel> panelsForFigure(int figure) {
  using K = ExperimentKind;
  const auto panel = [](K kind, std::size_t n, std::size_t p, std::string title) {
    SweepConfig c;
    c.kind = kind;
    c.stages = n;
    c.processors = p;
    Panel out{c, std::move(title)};
    return out;
  };
  switch (figure) {
    case 2:
      return {panel(K::kE1BalancedHomComm, 10, 10, "Figure 2(a): E1, 10 stages, p=10"),
              panel(K::kE1BalancedHomComm, 40, 10, "Figure 2(b): E1, 40 stages, p=10")};
    case 3:
      return {panel(K::kE2BalancedHetComm, 10, 10, "Figure 3(a): E2, 10 stages, p=10"),
              panel(K::kE2BalancedHetComm, 40, 10, "Figure 3(b): E2, 40 stages, p=10")};
    case 4:
      return {panel(K::kE3LargeComputations, 5, 10, "Figure 4(a): E3, 5 stages, p=10"),
              panel(K::kE3LargeComputations, 20, 10, "Figure 4(b): E3, 20 stages, p=10")};
    case 5:
      return {panel(K::kE4SmallComputations, 5, 10, "Figure 5(a): E4, 5 stages, p=10"),
              panel(K::kE4SmallComputations, 20, 10, "Figure 5(b): E4, 20 stages, p=10")};
    case 6:
      return {panel(K::kE1BalancedHomComm, 40, 100, "Figure 6(a): E1, 40 stages, p=100"),
              panel(K::kE2BalancedHetComm, 40, 100, "Figure 6(b): E2, 40 stages, p=100")};
    case 7:
      return {panel(K::kE3LargeComputations, 10, 100, "Figure 7(a): E3, 10 stages, p=100"),
              panel(K::kE4SmallComputations, 40, 100, "Figure 7(b): E4, 40 stages, p=100")};
    default:
      throw std::runtime_error("unknown figure number");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t pairs = 50;
  std::size_t points = 12;
  std::uint64_t seed = 20070628;
  std::string csvDir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--pairs") pairs = std::stoul(next());
    else if (arg == "--points") points = std::stoul(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--csv") csvDir = next();
    else {
      std::cerr << "usage: " << argv[0] << " [--pairs N] [--points N] [--seed S] [--csv DIR]\n";
      return 2;
    }
  }

  for (const Panel& panel : panelsForFigure(PIPESCHED_FIG)) {
    SweepConfig config = panel.config;
    config.pairs = pairs;
    config.points = points;
    config.seed = seed;
    const auto result = pipesched::exp::runBiCriteriaSweep(config);
    pipesched::exp::printSweep(std::cout, result, panel.title);
    if (!csvDir.empty()) {
      const std::string base = "fig" + std::to_string(PIPESCHED_FIG) + "_" +
                               pipesched::workload::experimentName(config.kind) + "_n" +
                               std::to_string(config.stages) + "_p" +
                               std::to_string(config.processors);
      const std::string file = csvDir + "/" + base + ".csv";
      std::ofstream os(file);
      if (!os) {
        std::cerr << "cannot write " << file << "\n";
        return 1;
      }
      pipesched::exp::writeSweepCsv(os, result);
      std::cout << "wrote " << file << "\n";
      const std::string gpFile = csvDir + "/" + base + ".csv.gp";
      std::ofstream gp(gpFile);
      if (!gp) {
        std::cerr << "cannot write " << gpFile << "\n";
        return 1;
      }
      pipesched::exp::writeSweepGnuplot(gp, result, base + ".csv", panel.title);
      std::cout << "wrote " << gpFile << "\n";
    }
  }
  return 0;
}
