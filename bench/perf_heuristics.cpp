// Google-benchmark microbenchmarks: runtime scaling of the six heuristics in
// the pipeline size n and the processor count p. All heuristics are
// polynomial (the paper's requirement); these benches document the constants.
#include <benchmark/benchmark.h>

#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

namespace {

using namespace pipesched;

workload::InstancePair makeInstance(std::size_t n, std::size_t p) {
  workload::Rng rng(0xBE4C4 ^ (n * 131) ^ (p * 31337));
  return workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, n, p, rng);
}

void runHeuristic(benchmark::State& state, heuristics::HeuristicId id) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const auto inst = makeInstance(n, p);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const auto h = heuristics::makeHeuristic(id);
  // A mid-range threshold forces real splitting work.
  const Real threshold = h->failureThreshold(eval) * 1.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->run(eval, threshold));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n * p));
}

void args(benchmark::internal::Benchmark* b) {
  b->Args({5, 10})->Args({10, 10})->Args({20, 10})->Args({40, 10})
      ->Args({40, 100})->Args({10, 100});
}

void BM_H1_SpMonoP(benchmark::State& state) {
  runHeuristic(state, heuristics::HeuristicId::kH1SpMonoP);
}
void BM_H2_ExploThreeMono(benchmark::State& state) {
  runHeuristic(state, heuristics::HeuristicId::kH2ExploThreeMono);
}
void BM_H3_ExploThreeBi(benchmark::State& state) {
  runHeuristic(state, heuristics::HeuristicId::kH3ExploThreeBi);
}
void BM_H4_SpBiP(benchmark::State& state) {
  runHeuristic(state, heuristics::HeuristicId::kH4SpBiP);
}
void BM_H5_SpMonoL(benchmark::State& state) {
  runHeuristic(state, heuristics::HeuristicId::kH5SpMonoL);
}
void BM_H6_SpBiL(benchmark::State& state) {
  runHeuristic(state, heuristics::HeuristicId::kH6SpBiL);
}

BENCHMARK(BM_H1_SpMonoP)->Apply(args);
BENCHMARK(BM_H2_ExploThreeMono)->Apply(args);
BENCHMARK(BM_H3_ExploThreeBi)->Apply(args);
BENCHMARK(BM_H4_SpBiP)->Apply(args);
BENCHMARK(BM_H5_SpMonoL)->Apply(args);
BENCHMARK(BM_H6_SpBiL)->Apply(args);

void BM_FailureThreshold_H1(benchmark::State& state) {
  const auto inst = makeInstance(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)));
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const auto h = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->failureThreshold(eval));
  }
}
BENCHMARK(BM_FailureThreshold_H1)->Args({40, 10})->Args({40, 100});

}  // namespace
