// Service throughput bench: solves a generated multi-regime batch through
// SchedulingService at several pool sizes, then measures the cache-hit
// speedup of a warm re-run. Emits both a human summary and the
// machine-readable BENCH_service.json tracking the perf trajectory:
//
//   {"benchmark":"perf_service","requests":200,
//    "throughput":[{"threads":1,"requests_per_second":...},...],
//    "speedup_max_threads_vs_1":...,
//    "cache":{"hit_ratio":...,"warm_requests_per_second":...,"warm_speedup":...},
//    "observability":{"warm_disabled_rps":...,"warm_enabled_rps":...,
//      "enabled_over_disabled":...},
//    "portfolio_members":{"members":"all","drop_after":4,
//      "requests_per_second":...,
//      "members_detail":[{"member":"H1-SpMonoP","runs":...,"points":...,
//                         "novel":...,"merged":...,"skipped":...,"dropped":...},...]},
//    "warm_sweep":{"requests":...,"narrow_points":P,"wide_points":2P-1,
//      "cold_seconds":...,"warm_seconds":...,"speedup":...,
//      "sub_hits":...,"sub_units_reused":...},
//    "net_serve":{"posts":R,"lines_per_post":K,"solves":R*K,
//      "http_requests_per_second":...,"inprocess_requests_per_second":...,
//      "http_over_inprocess":...,
//      "stats_scrape_mean_us":...,"stats_scrape_max_us":...,"shed":0}}
//
// The portfolio_members section races the full member catalog (refiners +
// c2c + exact) with budget-aware dropping on a slice of the batch and
// reports each member's per-member contribution columns.
//
// The net_serve section races the network transport against in-process
// scheduling on identical work: an in-process HttpServer + the serve
// endpoints on a loopback ephemeral port, a keep-alive client POSTing R
// bodies of K JSONL solve lines each, versus the same parsed requests
// pushed straight into an equally-configured AsyncScheduler. It also
// scrapes GET /stats once per POST while solves are in flight and reports
// the scrape round-trip latency — the cost of observing a busy server.
//
// The warm_sweep section measures cross-request work sharing: the same
// instances swept at P points, then at 2P-1 points over the same range —
// every narrow-grid threshold reappears in the wide grid, so a sub-result
// warm service solves only the 2P-1 minus P fresh thresholds. Reported
// speedup is cold wide-sweep wall over warm wide-sweep wall (same requests,
// byte-identical fronts).
//
// Usage: perf_service [--requests N] [--threads LIST] [--stages N]
//                     [--processors P] [--points N] [--seed S]
//                     [--members-requests N] [--drop-after K]
//                     [--warm-requests N] [--output FILE]
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pipesched/io/json.hpp"
#include "pipesched/net/endpoints.hpp"
#include "pipesched/net/server.hpp"
#include "pipesched/net/socket.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/obs/trace.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/stream/async_scheduler.hpp"
#include "pipesched/stream/source.hpp"
#include "pipesched/workload/generator.hpp"

namespace {

using namespace pipesched;

std::vector<service::Request> makeBatch(std::size_t requests, std::size_t stages,
                                        std::size_t processors, std::size_t points,
                                        std::uint64_t seed) {
  const workload::ExperimentKind kinds[] = {
      workload::ExperimentKind::kE1BalancedHomComm,
      workload::ExperimentKind::kE2BalancedHetComm,
      workload::ExperimentKind::kE3LargeComputations,
      workload::ExperimentKind::kE4SmallComputations,
  };
  workload::Rng rng(seed);
  std::vector<service::Request> batch;
  batch.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const workload::ExperimentKind kind = kinds[i % 4];
    workload::InstancePair pair = workload::randomInstance(kind, stages, processors, rng);
    std::ostringstream name;
    name << workload::experimentName(kind) << '-' << i;
    batch.push_back(service::Request{std::move(pair.pipeline), std::move(pair.platform),
                                     core::CommModel::kSequential,
                                     service::SweepSpec{points, 3}, name.str()});
  }
  return batch;
}

struct ThroughputSample {
  std::size_t threads = 0;
  double requestsPerSecond = 0;
  double wallSeconds = 0;
};

// -- net_serve helpers -------------------------------------------------------

/// Minimal blocking HTTP/1.1 client response reader (status + Content-Length
/// body) over a connectTcp socket — just enough to drive the bench's POST
/// /solve and GET /stats round trips without pulling in a client library.
struct NetResponse {
  int status = 0;
  std::string body;
};

NetResponse readNetResponse(net::Socket& socket) {
  std::string data;
  char buffer[8192];
  std::size_t headerEnd = std::string::npos;
  while ((headerEnd = data.find("\r\n\r\n")) == std::string::npos) {
    const net::IoResult r = socket.read(buffer, sizeof buffer);
    if (r.bytes == 0) throw std::runtime_error("net_serve: connection closed mid-headers");
    data.append(buffer, r.bytes);
  }
  NetResponse response;
  response.status = std::stoi(data.substr(data.find(' ') + 1, 3));
  std::size_t contentLength = 0;
  const std::string headers = data.substr(0, headerEnd);
  std::string lower = headers;
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (const std::size_t at = lower.find("content-length:"); at != std::string::npos) {
    contentLength = std::stoul(lower.substr(at + 15));
  }
  response.body = data.substr(headerEnd + 4);
  while (response.body.size() < contentLength) {
    const net::IoResult r = socket.read(buffer, sizeof buffer);
    if (r.bytes == 0) throw std::runtime_error("net_serve: connection closed mid-body");
    response.body.append(buffer, r.bytes);
  }
  response.body.resize(contentLength);
  return response;
}

NetResponse roundTrip(net::Socket& socket, const std::string& method,
                      const std::string& target, const std::string& body) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: bench\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  socket.writeAll(request.data(), request.size());
  return readNetResponse(socket);
}

struct NetServeSample {
  std::size_t posts = 0;
  std::size_t linesPerPost = 0;
  std::size_t solves = 0;
  double httpRequestsPerSecond = 0;
  double inprocessRequestsPerSecond = 0;
  double httpOverInprocess = 0;
  double statsScrapeMeanUs = 0;
  double statsScrapeMaxUs = 0;
  std::uint64_t shed = 0;
};

/// One JSONL solve line per (post, slot) pair — seeds never repeat, so no
/// pass gets accidental cache traffic.
std::string solveBody(std::size_t post, std::size_t lines, std::size_t stages,
                      std::size_t processors, std::size_t points) {
  std::ostringstream body;
  const char* kinds[] = {"E1", "E2", "E3", "E4"};
  for (std::size_t i = 0; i < lines; ++i) {
    body << "{\"kind\":\"" << kinds[i % 4] << "\",\"stages\":" << stages
         << ",\"processors\":" << processors << ",\"points\":" << points
         << ",\"seed\":" << (1000 + post * lines + i) << "}\n";
  }
  return std::move(body).str();
}

NetServeSample netServeRun(std::size_t posts, std::size_t linesPerPost, std::size_t stages,
                           std::size_t processors, std::size_t points,
                           std::size_t workers) {
  NetServeSample sample;
  sample.posts = posts;
  sample.linesPerPost = linesPerPost;
  sample.solves = posts * linesPerPost;

  std::vector<std::string> bodies;
  for (std::size_t post = 0; post < posts; ++post) {
    bodies.push_back(solveBody(post, linesPerPost, stages, processors, points));
  }

  // HTTP pass: loopback server, one keep-alive connection POSTing each body,
  // plus one /stats scrape per POST from a second connection while the
  // solves are in flight.
  {
    stream::StreamConfig config;
    config.workers = workers;
    config.queueCapacity = std::max<std::size_t>(64, linesPerPost * 2);
    stream::AsyncScheduler scheduler(config);
    net::HttpServerConfig serverConfig;
    serverConfig.endpoint = net::Endpoint{"127.0.0.1", 0};
    net::HttpServer server(serverConfig);
    net::ServeEndpointsConfig endpoints;
    endpoints.statsSnapshot = [] { return std::string("{\"type\":\"stats\"}"); };
    endpoints.draining = [&server] { return server.draining(); };
    endpoints.uptimeSeconds = [] { return 0.0; };
    net::installServeEndpoints(server, scheduler, endpoints);
    server.bind();
    std::thread loop([&server] { server.run(); });

    net::Socket solveConn = net::connectTcp(server.local());
    net::Socket statsConn = net::connectTcp(server.local());

    double scrapeTotalUs = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t post = 0; post < posts; ++post) {
      // Fire the POST, scrape /stats while its solves run, then collect the
      // POST response off the keep-alive connection.
      const std::string request = "POST /solve HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
                                  std::to_string(bodies[post].size()) + "\r\n\r\n" +
                                  bodies[post];
      solveConn.writeAll(request.data(), request.size());

      const auto scrapeStart = std::chrono::steady_clock::now();
      const NetResponse stats = roundTrip(statsConn, "GET", "/stats", "");
      const double scrapeUs = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - scrapeStart)
                                  .count();
      scrapeTotalUs += scrapeUs;
      sample.statsScrapeMaxUs = std::max(sample.statsScrapeMaxUs, scrapeUs);
      if (stats.status != 200) throw std::runtime_error("net_serve: /stats failed");

      const NetResponse response = readNetResponse(solveConn);
      if (response.status != 200) {
        throw std::runtime_error("net_serve: POST /solve answered " +
                                 std::to_string(response.status));
      }
      std::size_t ok = 0;
      for (std::size_t at = response.body.find("\"ok\":true"); at != std::string::npos;
           at = response.body.find("\"ok\":true", at + 1)) {
        ++ok;
      }
      if (ok != linesPerPost) {
        throw std::runtime_error("net_serve: expected " + std::to_string(linesPerPost) +
                                 " ok outcomes, got " + std::to_string(ok));
      }
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    sample.httpRequestsPerSecond = wall > 0 ? static_cast<double>(sample.solves) / wall : 0;
    sample.statsScrapeMeanUs = posts > 0 ? scrapeTotalUs / static_cast<double>(posts) : 0;
    sample.shed = server.stats().shed;

    server.requestStop();
    loop.join();
    scheduler.close();
  }

  // In-process reference: the same lines parsed the same way, submitted
  // straight into an identically-configured scheduler — the transport-free
  // ceiling for the HTTP number.
  {
    stream::StreamConfig config;
    config.workers = workers;
    config.queueCapacity = std::max<std::size_t>(64, linesPerPost * 2);
    stream::AsyncScheduler scheduler(config);

    std::vector<service::Request> requests;
    for (const std::string& body : bodies) {
      auto in = std::make_unique<std::istringstream>(body);
      stream::JsonlSource source(std::move(in), stream::JsonlDefaults{});
      while (std::optional<service::Request> request = source.next()) {
        requests.push_back(std::move(*request));
      }
    }
    if (requests.size() != sample.solves) {
      throw std::runtime_error("net_serve: reference parse mismatch");
    }

    std::atomic<std::size_t> done{0};
    const auto start = std::chrono::steady_clock::now();
    for (service::Request& request : requests) {
      scheduler.submit(std::move(request),
                       [&done](const service::Request&, const service::RequestOutcome&) {
                         done.fetch_add(1);
                       });
    }
    scheduler.drain();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (done.load() != sample.solves) {
      throw std::runtime_error("net_serve: reference drain incomplete");
    }
    sample.inprocessRequestsPerSecond =
        wall > 0 ? static_cast<double>(sample.solves) / wall : 0;
    scheduler.close();
  }

  sample.httpOverInprocess = sample.inprocessRequestsPerSecond > 0
                                 ? sample.httpRequestsPerSecond /
                                       sample.inprocessRequestsPerSecond
                                 : 1.0;
  return sample;
}

ThroughputSample coldRun(const std::vector<service::Request>& batch, std::size_t threads) {
  service::ServiceConfig config;
  config.threads = threads;
  config.cacheCapacity = 0;  // cold: measure pure solver throughput
  service::SchedulingService svc(config);
  const service::BatchResult result = svc.solveBatch(batch);
  if (result.stats.failed != 0) {
    throw std::runtime_error("perf_service: " + std::to_string(result.stats.failed) +
                             " request(s) failed");
  }
  return {threads, result.stats.requestsPerSecond, result.stats.wallSeconds};
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::size_t stages = 12;
  std::size_t processors = 10;
  std::size_t points = 12;
  std::uint64_t seed = 20070628;
  std::vector<std::size_t> threadCounts = {1, 2, 4};
  std::size_t membersRequests = 40;
  std::size_t dropAfter = 4;
  std::size_t warmRequests = 24;
  std::string output = "BENCH_service.json";
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [--requests N] [--threads LIST] [--stages N] [--processors P]"
                 " [--points N] [--seed S] [--members-requests N] [--drop-after K]"
                 " [--warm-requests N] [--output FILE]\n";
    return 2;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--requests") requests = std::stoul(next());
      else if (arg == "--stages") stages = std::stoul(next());
      else if (arg == "--processors") processors = std::stoul(next());
      else if (arg == "--points") points = std::stoul(next());
      else if (arg == "--seed") seed = std::stoull(next());
      else if (arg == "--members-requests") membersRequests = std::stoul(next());
      else if (arg == "--drop-after") dropAfter = std::stoul(next());
      else if (arg == "--warm-requests") warmRequests = std::stoul(next());
      else if (arg == "--output") output = next();
      else if (arg == "--threads") {
        threadCounts.clear();
        std::stringstream ss(next());
        std::string token;
        while (std::getline(ss, token, ',')) threadCounts.push_back(std::stoul(token));
      } else {
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "perf_service: " << e.what() << "\n";
    return usage();
  }
  if (requests == 0 || threadCounts.empty()) {
    std::cerr << "perf_service: --requests and --threads must be non-empty\n";
    return usage();
  }

  const std::vector<service::Request> batch =
      makeBatch(requests, stages, processors, points, seed);
  std::cout << "perf_service: " << requests << " requests (" << stages << " stages, "
            << processors << " processors, " << points << " sweep points)\n";

  std::vector<ThroughputSample> samples;
  for (const std::size_t threads : threadCounts) {
    const ThroughputSample s = coldRun(batch, threads);
    samples.push_back(s);
    std::cout << "  threads=" << s.threads << ": " << s.requestsPerSecond << " req/s ("
              << s.wallSeconds << " s)\n";
  }
  const double speedup =
      samples.size() > 1 && samples.front().requestsPerSecond > 0
          ? samples.back().requestsPerSecond / samples.front().requestsPerSecond
          : 1.0;
  std::cout << "  speedup " << samples.back().threads << "t vs " << samples.front().threads
            << "t: " << speedup << "x\n";

  // Cache-hit speedup: same service, same batch twice; the second pass is
  // pure cache traffic.
  service::ServiceConfig warmConfig;
  warmConfig.threads = samples.back().threads;
  warmConfig.cacheCapacity = requests * 2;
  service::SchedulingService warmSvc(warmConfig);
  const service::BatchResult coldPass = warmSvc.solveBatch(batch);
  const service::BatchResult warmPass = warmSvc.solveBatch(batch);
  const service::CacheStats cacheStats = warmSvc.cacheStats();
  const double warmSpeedup = coldPass.stats.wallSeconds > 0 && warmPass.stats.wallSeconds > 0
                                 ? coldPass.stats.wallSeconds / warmPass.stats.wallSeconds
                                 : 1.0;
  const double hitRatio =
      warmPass.stats.requests > 0
          ? static_cast<double>(warmPass.stats.cacheHits + warmPass.stats.deduped) /
                static_cast<double>(warmPass.stats.requests)
          : 0.0;
  std::cout << "  warm pass: " << warmPass.stats.requestsPerSecond << " req/s, hit ratio "
            << hitRatio << ", speedup vs cold " << warmSpeedup << "x\n";

  // Observability overhead: the same warm all-cache-hit batch with metrics +
  // tracing fully enabled vs fully disabled. Cache hits are the cheapest
  // requests the service serves, so this pass is the worst case for relative
  // instrumentation cost; best-of-3 per mode to damp scheduler noise.
  const auto warmObsRps = [&](bool enabled) {
    obs::ScopedMetricsEnabled metricsScope(enabled);
    obs::ScopedTracingEnabled tracingScope(enabled);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best, warmSvc.solveBatch(batch).stats.requestsPerSecond);
    }
    return best;
  };
  const double warmDisabledRps = warmObsRps(false);
  const double warmEnabledRps = warmObsRps(true);
  const double enabledOverDisabled =
      warmDisabledRps > 0 ? warmEnabledRps / warmDisabledRps : 1.0;
  std::cout << "  observability: warm disabled " << warmDisabledRps << " req/s, enabled "
            << warmEnabledRps << " req/s (ratio " << enabledOverDisabled << ")\n";

  // Widened-portfolio contribution pass: the full member catalog with
  // budget-aware dropping on a slice of the batch, reported member by member.
  service::ServiceConfig wideConfig;
  wideConfig.threads = 1;
  wideConfig.cacheCapacity = 0;
  wideConfig.portfolio.members = service::allPortfolioMembers();
  wideConfig.portfolio.dropAfter = dropAfter;
  service::SchedulingService wideSvc(wideConfig);
  const std::vector<service::Request> wideBatch(
      batch.begin(),
      batch.begin() + static_cast<std::ptrdiff_t>(std::min(membersRequests, batch.size())));
  const service::BatchResult widePass = wideSvc.solveBatch(wideBatch);
  std::cout << "  members=all (" << wideBatch.size() << " requests, drop-after " << dropAfter
            << "): " << widePass.stats.requestsPerSecond << " req/s\n";
  for (const service::MemberBatchStats& m : widePass.stats.members) {
    std::cout << "    " << m.solver << ": " << m.points << " pts, " << m.merged << " merged, "
              << m.skipped << " skipped\n";
  }

  // Warm-sweep pass (cross-request work sharing): the same instances swept
  // narrow (P points) then wide (2P-1 points, same range — the narrow grid
  // is a sub-grid of the wide one). Cold reference: a sharing-off service
  // solving the wide sweep from scratch.
  const std::size_t narrowPoints = std::max<std::size_t>(points, 2);
  const std::size_t widePoints = 2 * narrowPoints - 1;
  std::vector<service::Request> narrowBatch(
      batch.begin(),
      batch.begin() + static_cast<std::ptrdiff_t>(std::min(warmRequests, batch.size())));
  std::vector<service::Request> wideBatch2 = narrowBatch;
  for (service::Request& r : narrowBatch) r.sweep = service::SweepSpec{narrowPoints, 3};
  for (service::Request& r : wideBatch2) r.sweep = service::SweepSpec{widePoints, 3};

  service::ServiceConfig coldSweepConfig;
  coldSweepConfig.threads = 1;
  coldSweepConfig.cacheCapacity = 0;
  coldSweepConfig.shareSubResults = false;
  service::SchedulingService coldSweepSvc(coldSweepConfig);
  const service::BatchResult coldWide = coldSweepSvc.solveBatch(wideBatch2);

  service::ServiceConfig warmSweepConfig = coldSweepConfig;
  warmSweepConfig.shareSubResults = true;
  service::SchedulingService warmSweepSvc(warmSweepConfig);
  (void)warmSweepSvc.solveBatch(narrowBatch);  // populate the sub-result cache
  const service::BatchResult warmWide = warmSweepSvc.solveBatch(wideBatch2);
  const double warmSweepSpeedup =
      coldWide.stats.wallSeconds > 0 && warmWide.stats.wallSeconds > 0
          ? coldWide.stats.wallSeconds / warmWide.stats.wallSeconds
          : 1.0;
  std::cout << "  warm sweep (" << narrowBatch.size() << " instances, " << narrowPoints
            << " -> " << widePoints << " points): cold " << coldWide.stats.wallSeconds
            << " s, warm " << warmWide.stats.wallSeconds << " s, speedup " << warmSweepSpeedup
            << "x (" << warmWide.stats.subUnitsReused << " unit(s) reused)\n";

  // Network transport pass: loopback HTTP /solve vs in-process submission on
  // identical work, with /stats scraped under load. Sized well below the
  // cold batch so the whole section stays a small slice of bench wall time.
  const NetServeSample netServe =
      netServeRun(/*posts=*/6, /*linesPerPost=*/8, std::max<std::size_t>(stages / 2, 4),
                  processors, points, samples.back().threads);
  std::cout << "  net serve (" << netServe.posts << " posts x " << netServe.linesPerPost
            << " lines): http " << netServe.httpRequestsPerSecond << " req/s vs in-process "
            << netServe.inprocessRequestsPerSecond << " req/s (ratio "
            << netServe.httpOverInprocess << "), /stats scrape mean "
            << netServe.statsScrapeMeanUs << " us / max " << netServe.statsScrapeMaxUs
            << " us, " << netServe.shed << " shed\n";

  std::ofstream os(output);
  if (!os) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  io::JsonWriter w(os, /*pretty=*/true);
  w.beginObject();
  w.kv("benchmark", "perf_service");
  w.kv("requests", requests);
  w.kv("stages", stages);
  w.kv("processors", processors);
  w.kv("sweep_points", points);
  w.key("throughput").beginArray();
  for (const ThroughputSample& s : samples) {
    w.beginObject();
    w.kv("threads", s.threads);
    w.kv("requests_per_second", s.requestsPerSecond);
    w.kv("wall_seconds", s.wallSeconds);
    w.endObject();
  }
  w.endArray();
  w.kv("speedup_max_threads_vs_1", speedup);
  w.key("cache").beginObject();
  w.kv("hit_ratio", hitRatio);
  w.kv("warm_requests_per_second", warmPass.stats.requestsPerSecond);
  w.kv("warm_speedup", warmSpeedup);
  w.kv("entries", cacheStats.entries);
  w.endObject();
  w.key("observability").beginObject();
  w.kv("warm_disabled_rps", warmDisabledRps);
  w.kv("warm_enabled_rps", warmEnabledRps);
  w.kv("enabled_over_disabled", enabledOverDisabled);
  w.endObject();
  w.key("portfolio_members").beginObject();
  w.kv("members", "all");
  w.kv("drop_after", dropAfter);
  w.kv("requests", wideBatch.size());
  w.kv("requests_per_second", widePass.stats.requestsPerSecond);
  w.key("members_detail").beginArray();
  for (const service::MemberBatchStats& m : widePass.stats.members) {
    w.beginObject();
    w.kv("member", m.solver);
    w.kv("runs", static_cast<std::size_t>(m.runs));
    w.kv("points", static_cast<std::size_t>(m.points));
    w.kv("novel", static_cast<std::size_t>(m.novel));
    w.kv("merged", static_cast<std::size_t>(m.merged));
    w.kv("skipped", static_cast<std::size_t>(m.skipped));
    w.kv("dropped", static_cast<std::size_t>(m.dropped));
    w.endObject();
  }
  w.endArray();
  w.endObject();
  w.key("warm_sweep").beginObject();
  w.kv("requests", narrowBatch.size());
  w.kv("narrow_points", narrowPoints);
  w.kv("wide_points", widePoints);
  w.kv("cold_seconds", coldWide.stats.wallSeconds);
  w.kv("warm_seconds", warmWide.stats.wallSeconds);
  w.kv("speedup", warmSweepSpeedup);
  w.kv("sub_hits", static_cast<std::size_t>(warmWide.stats.subHits));
  w.kv("sub_units_reused", static_cast<std::size_t>(warmWide.stats.subUnitsReused));
  w.endObject();
  w.key("net_serve").beginObject();
  w.kv("posts", netServe.posts);
  w.kv("lines_per_post", netServe.linesPerPost);
  w.kv("solves", netServe.solves);
  w.kv("http_requests_per_second", netServe.httpRequestsPerSecond);
  w.kv("inprocess_requests_per_second", netServe.inprocessRequestsPerSecond);
  w.kv("http_over_inprocess", netServe.httpOverInprocess);
  w.kv("stats_scrape_mean_us", netServe.statsScrapeMeanUs);
  w.kv("stats_scrape_max_us", netServe.statsScrapeMaxUs);
  w.kv("shed", static_cast<std::size_t>(netServe.shed));
  w.endObject();
  w.endObject();
  os << "\n";
  std::cout << "wrote " << output << "\n";
  return 0;
}
