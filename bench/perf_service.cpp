// Service throughput bench: solves a generated multi-regime batch through
// SchedulingService at several pool sizes, then measures the cache-hit
// speedup of a warm re-run. Emits both a human summary and the
// machine-readable BENCH_service.json tracking the perf trajectory:
//
//   {"benchmark":"perf_service","requests":200,
//    "throughput":[{"threads":1,"requests_per_second":...},...],
//    "speedup_max_threads_vs_1":...,
//    "cache":{"hit_ratio":...,"warm_requests_per_second":...,"warm_speedup":...},
//    "observability":{"warm_disabled_rps":...,"warm_enabled_rps":...,
//      "enabled_over_disabled":...},
//    "portfolio_members":{"members":"all","drop_after":4,
//      "requests_per_second":...,
//      "members_detail":[{"member":"H1-SpMonoP","runs":...,"points":...,
//                         "novel":...,"merged":...,"skipped":...,"dropped":...},...]},
//    "warm_sweep":{"requests":...,"narrow_points":P,"wide_points":2P-1,
//      "cold_seconds":...,"warm_seconds":...,"speedup":...,
//      "sub_hits":...,"sub_units_reused":...}}
//
// The portfolio_members section races the full member catalog (refiners +
// c2c + exact) with budget-aware dropping on a slice of the batch and
// reports each member's per-member contribution columns.
//
// The warm_sweep section measures cross-request work sharing: the same
// instances swept at P points, then at 2P-1 points over the same range —
// every narrow-grid threshold reappears in the wide grid, so a sub-result
// warm service solves only the 2P-1 minus P fresh thresholds. Reported
// speedup is cold wide-sweep wall over warm wide-sweep wall (same requests,
// byte-identical fronts).
//
// Usage: perf_service [--requests N] [--threads LIST] [--stages N]
//                     [--processors P] [--points N] [--seed S]
//                     [--members-requests N] [--drop-after K]
//                     [--warm-requests N] [--output FILE]
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pipesched/io/json.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/obs/trace.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/workload/generator.hpp"

namespace {

using namespace pipesched;

std::vector<service::Request> makeBatch(std::size_t requests, std::size_t stages,
                                        std::size_t processors, std::size_t points,
                                        std::uint64_t seed) {
  const workload::ExperimentKind kinds[] = {
      workload::ExperimentKind::kE1BalancedHomComm,
      workload::ExperimentKind::kE2BalancedHetComm,
      workload::ExperimentKind::kE3LargeComputations,
      workload::ExperimentKind::kE4SmallComputations,
  };
  workload::Rng rng(seed);
  std::vector<service::Request> batch;
  batch.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const workload::ExperimentKind kind = kinds[i % 4];
    workload::InstancePair pair = workload::randomInstance(kind, stages, processors, rng);
    std::ostringstream name;
    name << workload::experimentName(kind) << '-' << i;
    batch.push_back(service::Request{std::move(pair.pipeline), std::move(pair.platform),
                                     core::CommModel::kSequential,
                                     service::SweepSpec{points, 3}, name.str()});
  }
  return batch;
}

struct ThroughputSample {
  std::size_t threads = 0;
  double requestsPerSecond = 0;
  double wallSeconds = 0;
};

ThroughputSample coldRun(const std::vector<service::Request>& batch, std::size_t threads) {
  service::ServiceConfig config;
  config.threads = threads;
  config.cacheCapacity = 0;  // cold: measure pure solver throughput
  service::SchedulingService svc(config);
  const service::BatchResult result = svc.solveBatch(batch);
  if (result.stats.failed != 0) {
    throw std::runtime_error("perf_service: " + std::to_string(result.stats.failed) +
                             " request(s) failed");
  }
  return {threads, result.stats.requestsPerSecond, result.stats.wallSeconds};
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::size_t stages = 12;
  std::size_t processors = 10;
  std::size_t points = 12;
  std::uint64_t seed = 20070628;
  std::vector<std::size_t> threadCounts = {1, 2, 4};
  std::size_t membersRequests = 40;
  std::size_t dropAfter = 4;
  std::size_t warmRequests = 24;
  std::string output = "BENCH_service.json";
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [--requests N] [--threads LIST] [--stages N] [--processors P]"
                 " [--points N] [--seed S] [--members-requests N] [--drop-after K]"
                 " [--warm-requests N] [--output FILE]\n";
    return 2;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--requests") requests = std::stoul(next());
      else if (arg == "--stages") stages = std::stoul(next());
      else if (arg == "--processors") processors = std::stoul(next());
      else if (arg == "--points") points = std::stoul(next());
      else if (arg == "--seed") seed = std::stoull(next());
      else if (arg == "--members-requests") membersRequests = std::stoul(next());
      else if (arg == "--drop-after") dropAfter = std::stoul(next());
      else if (arg == "--warm-requests") warmRequests = std::stoul(next());
      else if (arg == "--output") output = next();
      else if (arg == "--threads") {
        threadCounts.clear();
        std::stringstream ss(next());
        std::string token;
        while (std::getline(ss, token, ',')) threadCounts.push_back(std::stoul(token));
      } else {
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "perf_service: " << e.what() << "\n";
    return usage();
  }
  if (requests == 0 || threadCounts.empty()) {
    std::cerr << "perf_service: --requests and --threads must be non-empty\n";
    return usage();
  }

  const std::vector<service::Request> batch =
      makeBatch(requests, stages, processors, points, seed);
  std::cout << "perf_service: " << requests << " requests (" << stages << " stages, "
            << processors << " processors, " << points << " sweep points)\n";

  std::vector<ThroughputSample> samples;
  for (const std::size_t threads : threadCounts) {
    const ThroughputSample s = coldRun(batch, threads);
    samples.push_back(s);
    std::cout << "  threads=" << s.threads << ": " << s.requestsPerSecond << " req/s ("
              << s.wallSeconds << " s)\n";
  }
  const double speedup =
      samples.size() > 1 && samples.front().requestsPerSecond > 0
          ? samples.back().requestsPerSecond / samples.front().requestsPerSecond
          : 1.0;
  std::cout << "  speedup " << samples.back().threads << "t vs " << samples.front().threads
            << "t: " << speedup << "x\n";

  // Cache-hit speedup: same service, same batch twice; the second pass is
  // pure cache traffic.
  service::ServiceConfig warmConfig;
  warmConfig.threads = samples.back().threads;
  warmConfig.cacheCapacity = requests * 2;
  service::SchedulingService warmSvc(warmConfig);
  const service::BatchResult coldPass = warmSvc.solveBatch(batch);
  const service::BatchResult warmPass = warmSvc.solveBatch(batch);
  const service::CacheStats cacheStats = warmSvc.cacheStats();
  const double warmSpeedup = coldPass.stats.wallSeconds > 0 && warmPass.stats.wallSeconds > 0
                                 ? coldPass.stats.wallSeconds / warmPass.stats.wallSeconds
                                 : 1.0;
  const double hitRatio =
      warmPass.stats.requests > 0
          ? static_cast<double>(warmPass.stats.cacheHits + warmPass.stats.deduped) /
                static_cast<double>(warmPass.stats.requests)
          : 0.0;
  std::cout << "  warm pass: " << warmPass.stats.requestsPerSecond << " req/s, hit ratio "
            << hitRatio << ", speedup vs cold " << warmSpeedup << "x\n";

  // Observability overhead: the same warm all-cache-hit batch with metrics +
  // tracing fully enabled vs fully disabled. Cache hits are the cheapest
  // requests the service serves, so this pass is the worst case for relative
  // instrumentation cost; best-of-3 per mode to damp scheduler noise.
  const auto warmObsRps = [&](bool enabled) {
    obs::ScopedMetricsEnabled metricsScope(enabled);
    obs::ScopedTracingEnabled tracingScope(enabled);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best, warmSvc.solveBatch(batch).stats.requestsPerSecond);
    }
    return best;
  };
  const double warmDisabledRps = warmObsRps(false);
  const double warmEnabledRps = warmObsRps(true);
  const double enabledOverDisabled =
      warmDisabledRps > 0 ? warmEnabledRps / warmDisabledRps : 1.0;
  std::cout << "  observability: warm disabled " << warmDisabledRps << " req/s, enabled "
            << warmEnabledRps << " req/s (ratio " << enabledOverDisabled << ")\n";

  // Widened-portfolio contribution pass: the full member catalog with
  // budget-aware dropping on a slice of the batch, reported member by member.
  service::ServiceConfig wideConfig;
  wideConfig.threads = 1;
  wideConfig.cacheCapacity = 0;
  wideConfig.portfolio.members = service::allPortfolioMembers();
  wideConfig.portfolio.dropAfter = dropAfter;
  service::SchedulingService wideSvc(wideConfig);
  const std::vector<service::Request> wideBatch(
      batch.begin(),
      batch.begin() + static_cast<std::ptrdiff_t>(std::min(membersRequests, batch.size())));
  const service::BatchResult widePass = wideSvc.solveBatch(wideBatch);
  std::cout << "  members=all (" << wideBatch.size() << " requests, drop-after " << dropAfter
            << "): " << widePass.stats.requestsPerSecond << " req/s\n";
  for (const service::MemberBatchStats& m : widePass.stats.members) {
    std::cout << "    " << m.solver << ": " << m.points << " pts, " << m.merged << " merged, "
              << m.skipped << " skipped\n";
  }

  // Warm-sweep pass (cross-request work sharing): the same instances swept
  // narrow (P points) then wide (2P-1 points, same range — the narrow grid
  // is a sub-grid of the wide one). Cold reference: a sharing-off service
  // solving the wide sweep from scratch.
  const std::size_t narrowPoints = std::max<std::size_t>(points, 2);
  const std::size_t widePoints = 2 * narrowPoints - 1;
  std::vector<service::Request> narrowBatch(
      batch.begin(),
      batch.begin() + static_cast<std::ptrdiff_t>(std::min(warmRequests, batch.size())));
  std::vector<service::Request> wideBatch2 = narrowBatch;
  for (service::Request& r : narrowBatch) r.sweep = service::SweepSpec{narrowPoints, 3};
  for (service::Request& r : wideBatch2) r.sweep = service::SweepSpec{widePoints, 3};

  service::ServiceConfig coldSweepConfig;
  coldSweepConfig.threads = 1;
  coldSweepConfig.cacheCapacity = 0;
  coldSweepConfig.shareSubResults = false;
  service::SchedulingService coldSweepSvc(coldSweepConfig);
  const service::BatchResult coldWide = coldSweepSvc.solveBatch(wideBatch2);

  service::ServiceConfig warmSweepConfig = coldSweepConfig;
  warmSweepConfig.shareSubResults = true;
  service::SchedulingService warmSweepSvc(warmSweepConfig);
  (void)warmSweepSvc.solveBatch(narrowBatch);  // populate the sub-result cache
  const service::BatchResult warmWide = warmSweepSvc.solveBatch(wideBatch2);
  const double warmSweepSpeedup =
      coldWide.stats.wallSeconds > 0 && warmWide.stats.wallSeconds > 0
          ? coldWide.stats.wallSeconds / warmWide.stats.wallSeconds
          : 1.0;
  std::cout << "  warm sweep (" << narrowBatch.size() << " instances, " << narrowPoints
            << " -> " << widePoints << " points): cold " << coldWide.stats.wallSeconds
            << " s, warm " << warmWide.stats.wallSeconds << " s, speedup " << warmSweepSpeedup
            << "x (" << warmWide.stats.subUnitsReused << " unit(s) reused)\n";

  std::ofstream os(output);
  if (!os) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  io::JsonWriter w(os, /*pretty=*/true);
  w.beginObject();
  w.kv("benchmark", "perf_service");
  w.kv("requests", requests);
  w.kv("stages", stages);
  w.kv("processors", processors);
  w.kv("sweep_points", points);
  w.key("throughput").beginArray();
  for (const ThroughputSample& s : samples) {
    w.beginObject();
    w.kv("threads", s.threads);
    w.kv("requests_per_second", s.requestsPerSecond);
    w.kv("wall_seconds", s.wallSeconds);
    w.endObject();
  }
  w.endArray();
  w.kv("speedup_max_threads_vs_1", speedup);
  w.key("cache").beginObject();
  w.kv("hit_ratio", hitRatio);
  w.kv("warm_requests_per_second", warmPass.stats.requestsPerSecond);
  w.kv("warm_speedup", warmSpeedup);
  w.kv("entries", cacheStats.entries);
  w.endObject();
  w.key("observability").beginObject();
  w.kv("warm_disabled_rps", warmDisabledRps);
  w.kv("warm_enabled_rps", warmEnabledRps);
  w.kv("enabled_over_disabled", enabledOverDisabled);
  w.endObject();
  w.key("portfolio_members").beginObject();
  w.kv("members", "all");
  w.kv("drop_after", dropAfter);
  w.kv("requests", wideBatch.size());
  w.kv("requests_per_second", widePass.stats.requestsPerSecond);
  w.key("members_detail").beginArray();
  for (const service::MemberBatchStats& m : widePass.stats.members) {
    w.beginObject();
    w.kv("member", m.solver);
    w.kv("runs", static_cast<std::size_t>(m.runs));
    w.kv("points", static_cast<std::size_t>(m.points));
    w.kv("novel", static_cast<std::size_t>(m.novel));
    w.kv("merged", static_cast<std::size_t>(m.merged));
    w.kv("skipped", static_cast<std::size_t>(m.skipped));
    w.kv("dropped", static_cast<std::size_t>(m.dropped));
    w.endObject();
  }
  w.endArray();
  w.endObject();
  w.key("warm_sweep").beginObject();
  w.kv("requests", narrowBatch.size());
  w.kv("narrow_points", narrowPoints);
  w.kv("wide_points", widePoints);
  w.kv("cold_seconds", coldWide.stats.wallSeconds);
  w.kv("warm_seconds", warmWide.stats.wallSeconds);
  w.kv("speedup", warmSweepSpeedup);
  w.kv("sub_hits", static_cast<std::size_t>(warmWide.stats.subHits));
  w.kv("sub_units_reused", static_cast<std::size_t>(warmWide.stats.subUnitsReused));
  w.endObject();
  w.endObject();
  os << "\n";
  std::cout << "wrote " << output << "\n";
  return 0;
}
