// Evaluation-kernel bench: candidate-scoring throughput of the delta kernel
// (DeltaEvaluator::peek — patched terms + prefix-resumed fold, no state
// change) versus the historical rebuild pattern (copy the assignment vector,
// edit, reconstruct the IntervalMapping, full Evaluator::evaluate) at
// several interval counts, plus the end-to-end
// wall time of the ls:/sa: refiner members before/after the kernel. Emits the
// machine-readable BENCH_eval.json tracking the perf trajectory:
//
//   {"benchmark":"perf_eval",
//    "kernel":[{"m":4,"delta_moves_per_second":...,
//               "rebuild_moves_per_second":...,"speedup":...},...],
//    "members":{"local_search":{"rebuild_seconds":...,"delta_seconds":...,
//                               "speedup":...},
//               "annealing":{...}}}
//
// Both paths score the SAME pre-generated move list against the SAME base
// mapping (each score is one candidate-neighbor evaluation, the dominant
// operation of every refinement hot loop); a period checksum cross-checks
// that they computed identical values.
//
// Usage: perf_eval [--sizes LIST] [--candidates N] [--min-seconds S]
//                  [--output FILE]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pipesched/core/delta_evaluation.hpp"
#include "pipesched/heuristics/annealing.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/workload/generator.hpp"
#include "pipesched/workload/rng.hpp"

namespace {

using namespace pipesched;
using core::Assignment;
using core::DeltaEvaluator;
using core::EvalWorkspace;
using core::Evaluator;
using core::IntervalMapping;
using core::Move;
using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct KernelSample {
  std::size_t m = 0;
  double deltaMovesPerSecond = 0;
  double rebuildMovesPerSecond = 0;
  double speedup = 0;
};

struct Instance {
  core::Pipeline pipeline;
  core::Platform platform;
};

/// Comm-homogeneous instance sized so a mapping with m intervals has both
/// room to shift cuts (2m stages) and spare processors to reassign to.
Instance makeInstance(std::size_t m, workload::Rng& rng) {
  const std::size_t n = 2 * m;
  const std::size_t p = m + 2;
  std::vector<Real> work(n);
  std::vector<Real> comm(n + 1);
  for (Real& w : work) w = rng.uniform(0.5, 10);
  for (Real& d : comm) d = rng.uniform(0, 5);
  std::vector<Real> speeds(p);
  for (Real& s : speeds) s = rng.uniform(0.5, 4);
  return Instance{core::Pipeline(std::move(work), std::move(comm)),
                  core::Platform(std::move(speeds), 2)};
}

/// Base mapping with exactly m two-stage intervals on processors 0..m-1.
IntervalMapping makeMapping(std::size_t m) {
  std::vector<std::size_t> ends(m);
  std::vector<std::size_t> procs(m);
  for (std::size_t j = 0; j < m; ++j) {
    ends[j] = 2 * j + 1;
    procs[j] = j;
  }
  return IntervalMapping::fromCuts(2 * m, ends, procs);
}

/// Random m-preserving moves (shift/swap/reassign), all applicable to the
/// base mapping — scoring undoes each move, so applicability is stable.
std::vector<Move> makeMoves(std::size_t m, std::size_t p, std::size_t count,
                            workload::Rng& rng) {
  std::vector<Move> moves;
  moves.reserve(count);
  while (moves.size() < count) {
    switch (rng.uniformInt(0, 2)) {
      case 0: {  // shift a cut (every base interval has 2 stages)
        const auto j = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(m) - 2));
        moves.push_back(rng.uniformInt(0, 1) == 0 ? Move::shiftLeft(j) : Move::shiftRight(j));
        break;
      }
      case 1: {  // swap two processors
        const auto j = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
        const auto k = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
        if (j == k) continue;
        moves.push_back(Move::swapProcessors(j, k));
        break;
      }
      default: {  // reassign to one of the spare processors m..p-1
        const auto j = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(m) - 1));
        const auto u = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::int64_t>(m), static_cast<std::int64_t>(p) - 1));
        moves.push_back(Move::reassign(j, u));
        break;
      }
    }
  }
  return moves;
}

/// Applies `move` to a raw assignment list (the rebuild path's edit step).
void applyToParts(std::vector<Assignment>& parts, const Move& move) {
  switch (move.kind) {
    case Move::Kind::kShiftLeft:
      --parts[move.j].interval.last;
      --parts[move.j + 1].interval.first;
      break;
    case Move::Kind::kShiftRight:
      ++parts[move.j].interval.last;
      ++parts[move.j + 1].interval.first;
      break;
    case Move::Kind::kSwap:
      std::swap(parts[move.j].processor, parts[move.k].processor);
      break;
    default:
      parts[move.j].processor = move.u;
      break;
  }
}

KernelSample measureKernel(std::size_t m, std::size_t candidates, double minSeconds,
                           workload::Rng& rng) {
  const Instance inst = makeInstance(m, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const IntervalMapping base = makeMapping(m);
  const std::vector<Move> moves =
      makeMoves(m, inst.platform.processorCount(), candidates, rng);

  EvalWorkspace workspace;
  workspace.reserve(inst.platform.processorCount(), inst.platform.processorCount());
  DeltaEvaluator delta(eval, workspace);
  delta.load(base);
  (void)delta.metrics();

  // Verification pass: both paths must score every candidate bit-identically
  // (a mismatch means the kernel broke).
  for (const Move& move : moves) {
    const std::optional<core::Metrics> peeked = delta.peek(move);
    if (!peeked) {
      throw std::runtime_error("perf_eval: generated move was rejected at m=" +
                               std::to_string(m));
    }
    std::vector<Assignment> parts = base.assignments();
    applyToParts(parts, move);
    const core::Metrics rebuilt = eval.evaluate(IntervalMapping(std::move(parts)));
    if (!(*peeked == rebuilt)) {
      throw std::runtime_error("perf_eval: delta/rebuild mismatch at m=" + std::to_string(m));
    }
  }

  // Delta path: one peek() per candidate — the scoring operation the search
  // hot loops perform. The sink keeps the metrics read observable.
  Real sink = 0;
  std::size_t deltaMoves = 0;
  const Clock::time_point d0 = Clock::now();
  Clock::time_point d1;
  do {
    for (const Move& move : moves) {
      sink += delta.peek(move)->period;
    }
    deltaMoves += moves.size();
    d1 = Clock::now();
  } while (seconds(d0, d1) < minSeconds);

  // Rebuild path: copy, edit, reconstruct (ordering re-checked), evaluate.
  std::size_t rebuildMoves = 0;
  const Clock::time_point r0 = Clock::now();
  Clock::time_point r1;
  do {
    for (const Move& move : moves) {
      std::vector<Assignment> parts = base.assignments();
      applyToParts(parts, move);
      const IntervalMapping neighbor(std::move(parts));
      sink += eval.evaluate(neighbor).period;
    }
    rebuildMoves += moves.size();
    r1 = Clock::now();
  } while (seconds(r0, r1) < minSeconds);
  if (sink == Real(-1)) std::cerr << "";  // defeat dead-code elimination

  const double deltaRate = static_cast<double>(deltaMoves) / seconds(d0, d1);
  const double rebuildRate = static_cast<double>(rebuildMoves) / seconds(r0, r1);
  return KernelSample{m, deltaRate, rebuildRate, deltaRate / rebuildRate};
}

struct MemberSample {
  double rebuildSeconds = 0;
  double deltaSeconds = 0;
  double speedup = 0;
};

/// Wall time of the ls:/sa: refiner work unit (seed heuristic's mapping
/// refined at a few thresholds) with the kernel on vs off.
template <typename RunFn>
MemberSample measureMember(RunFn&& run) {
  const Clock::time_point r0 = Clock::now();
  run(false);
  const Clock::time_point r1 = Clock::now();
  run(true);
  const Clock::time_point r2 = Clock::now();
  MemberSample s;
  s.rebuildSeconds = seconds(r0, r1);
  s.deltaSeconds = seconds(r1, r2);
  s.speedup = s.deltaSeconds > 0 ? s.rebuildSeconds / s.deltaSeconds : 1.0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {4, 16, 64};
  std::size_t candidates = 256;
  double minSeconds = 0.2;
  std::string output = "BENCH_eval.json";
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [--sizes LIST] [--candidates N] [--min-seconds S] [--output FILE]\n";
    return 2;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--candidates") candidates = std::stoul(next());
      else if (arg == "--min-seconds") minSeconds = std::stod(next());
      else if (arg == "--output") output = next();
      else if (arg == "--sizes") {
        sizes.clear();
        std::stringstream ss(next());
        std::string token;
        while (std::getline(ss, token, ',')) sizes.push_back(std::stoul(token));
      } else {
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "perf_eval: " << e.what() << "\n";
    return usage();
  }
  if (sizes.empty() || candidates == 0) return usage();

  workload::Rng rng(20070628);
  std::cout << "perf_eval: candidate scoring, delta kernel vs rebuild\n";
  std::vector<KernelSample> samples;
  for (const std::size_t m : sizes) {
    if (m < 2) {
      std::cerr << "perf_eval: --sizes entries must be >= 2\n";
      return 2;
    }
    const KernelSample s = measureKernel(m, candidates, minSeconds, rng);
    samples.push_back(s);
    std::cout << "  m=" << s.m << ": delta " << s.deltaMovesPerSecond << " moves/s, rebuild "
              << s.rebuildMovesPerSecond << " moves/s, speedup " << s.speedup << "x\n";
  }

  // Refiner-member wall time: ls:/sa: work units exactly as the portfolio
  // runs them (the dominant cost since PR 3) — the base heuristic's mapping
  // at each grid threshold, polished under that threshold. The seeds are
  // precomputed so both paths time pure refinement.
  workload::Rng instRng(7);
  const auto inst =
      workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, 12, 8, instRng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const std::unique_ptr<heuristics::MappingHeuristic> base =
      heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  const Real lo = base->failureThreshold(eval);
  std::vector<Real> thresholds;
  std::vector<heuristics::Result> seeds;
  for (int i = 0; i < 6; ++i) {
    const Real t = lo * (1.0 + 0.4 * i);
    thresholds.push_back(t);
    seeds.push_back(base->run(eval, t));
  }

  const MemberSample ls = measureMember([&](bool useDelta) {
    heuristics::LocalSearchOptions options;
    options.useDeltaKernel = useDelta;
    for (int rep = 0; rep < 40; ++rep) {
      for (std::size_t i = 0; i < thresholds.size(); ++i) {
        (void)heuristics::localSearch(eval, seeds[i].mapping, base->objective(),
                                      thresholds[i], options);
      }
    }
  });
  std::cout << "  ls refiner: rebuild " << ls.rebuildSeconds << " s, delta " << ls.deltaSeconds
            << " s, speedup " << ls.speedup << "x\n";

  const MemberSample sa = measureMember([&](bool useDelta) {
    heuristics::AnnealingOptions options;
    options.useDeltaKernel = useDelta;
    options.moves = 20'000;
    for (std::size_t i = 0; i < thresholds.size(); i += 2) {
      options.seed = static_cast<std::uint64_t>(i + 1);
      (void)heuristics::anneal(eval, seeds[i].mapping, base->objective(), thresholds[i],
                               options);
    }
  });
  std::cout << "  sa refiner: rebuild " << sa.rebuildSeconds << " s, delta " << sa.deltaSeconds
            << " s, speedup " << sa.speedup << "x\n";

  std::ofstream os(output);
  if (!os) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  io::JsonWriter w(os, /*pretty=*/true);
  w.beginObject();
  w.kv("benchmark", "perf_eval");
  w.kv("candidates", candidates);
  w.key("kernel").beginArray();
  for (const KernelSample& s : samples) {
    w.beginObject();
    w.kv("m", s.m);
    w.kv("delta_moves_per_second", s.deltaMovesPerSecond);
    w.kv("rebuild_moves_per_second", s.rebuildMovesPerSecond);
    w.kv("speedup", s.speedup);
    w.endObject();
  }
  w.endArray();
  w.key("members").beginObject();
  w.key("local_search").beginObject();
  w.kv("rebuild_seconds", ls.rebuildSeconds);
  w.kv("delta_seconds", ls.deltaSeconds);
  w.kv("speedup", ls.speedup);
  w.endObject();
  w.key("annealing").beginObject();
  w.kv("rebuild_seconds", sa.rebuildSeconds);
  w.kv("delta_seconds", sa.deltaSeconds);
  w.kv("speedup", sa.speedup);
  w.endObject();
  w.endObject();
  w.endObject();
  os << "\n";
  std::cout << "wrote " << output << "\n";
  return 0;
}
