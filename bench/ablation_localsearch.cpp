// Ablation (beyond the paper): how much headroom do the paper's splitting
// heuristics leave on the table? Compares, per workload regime:
//   * H1 / H4 as published,
//   * H1 + steepest-descent local-search refinement,
//   * local search alone (from the Lemma-1 seed),
//   * simulated annealing (randomized global baseline),
//   * the greedy binary-search probe baseline,
// against the exact branch-and-bound optimum on small instances. All numbers
// are ratios to the optimal period (or to the optimal latency at a fixed
// period bound); 1.000 means optimal.
//
// Usage: ablation_localsearch [--instances N] [--stages N] [--processors P]
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "pipesched/exact/bnb.hpp"
#include "pipesched/exp/aggregate.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/annealing.hpp"
#include "pipesched/heuristics/greedy_probe.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

namespace {

using namespace pipesched;
using heuristics::Objective;

/// A named period-minimizing method: returns the smallest period it reaches
/// on the instance (run-to-exhaustion semantics, latency unconstrained).
struct Method {
  std::string name;
  std::function<Real(const core::Evaluator&)> minPeriod;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t instances = 20;
  std::size_t stages = 8;
  std::size_t processors = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--instances") instances = std::stoul(next());
    else if (arg == "--stages") stages = std::stoul(next());
    else if (arg == "--processors") processors = std::stoul(next());
    else {
      std::cerr << "usage: " << argv[0]
                << " [--instances N] [--stages N] [--processors P]\n";
      return 2;
    }
  }

  const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  const auto h4 = heuristics::makeHeuristic(heuristics::HeuristicId::kH4SpBiP);

  const std::vector<Method> methods = {
      {"H1-SpMonoP", [&](const core::Evaluator& eval) { return h1->failureThreshold(eval); }},
      {"H1 + local search",
       [&](const core::Evaluator& eval) {
         const auto seeded = h1->run(eval, h1->failureThreshold(eval));
         return heuristics::localSearch(eval, seeded.mapping, Objective::kMinPeriodForLatency,
                                        kInfinity)
             .metrics.period;
       }},
      {"local search (Lemma-1 seed)",
       [&](const core::Evaluator& eval) {
         return heuristics::localSearch(eval, eval.optimalLatencyMapping(),
                                        Objective::kMinPeriodForLatency, kInfinity)
             .metrics.period;
       }},
      {"simulated annealing",
       [&](const core::Evaluator& eval) {
         heuristics::AnnealingOptions options;
         options.seed = 12345;
         return heuristics::anneal(eval, eval.optimalLatencyMapping(),
                                   Objective::kMinPeriodForLatency, kInfinity, options)
             .metrics.period;
       }},
      {"greedy probe (binary search)",
       [&](const core::Evaluator& eval) { return heuristics::greedyProbeMinPeriod(eval); }},
  };

  std::cout << "Local-search / metaheuristic ablation (" << instances << " instances, n="
            << stages << ", p=" << processors
            << "; ratios to the exact optimum, 1.000 = optimal)\n\n";

  for (workload::ExperimentKind kind :
       {workload::ExperimentKind::kE1BalancedHomComm,
        workload::ExperimentKind::kE2BalancedHetComm,
        workload::ExperimentKind::kE3LargeComputations,
        workload::ExperimentKind::kE4SmallComputations}) {
    std::vector<std::vector<Real>> periodGaps(methods.size());
    std::vector<Real> h4LatencyGaps, h4RefinedLatencyGaps;

    for (std::size_t i = 0; i < instances; ++i) {
      workload::Rng rng(0x10CA15 ^ (static_cast<std::uint64_t>(kind) << 32) ^ i);
      const auto inst = workload::randomInstance(kind, stages, processors, rng);
      const core::Evaluator eval(inst.pipeline, inst.platform);
      const Real exactMinPeriod = exact::bnbMinPeriod(eval).metrics.period;
      for (std::size_t m = 0; m < methods.size(); ++m) {
        periodGaps[m].push_back(methods[m].minPeriod(eval) / exactMinPeriod);
      }
      // Latency side: at 1.2x the optimal period, how close is H4 to the
      // exact latency optimum, and does refinement close the gap?
      const Real bound = exactMinPeriod * 1.2;
      if (const auto exactLat = exact::bnbMinLatencyForPeriod(eval, bound)) {
        const auto plain = h4->run(eval, bound);
        if (plain.success) {
          h4LatencyGaps.push_back(plain.metrics.latency / exactLat->metrics.latency);
        }
        const auto refined = heuristics::refineWithLocalSearch(eval, *h4, bound);
        if (refined.success) {
          h4RefinedLatencyGaps.push_back(refined.metrics.latency /
                                         exactLat->metrics.latency);
        }
      }
    }

    std::cout << "== " << workload::experimentName(kind) << " ("
              << workload::experimentDescription(kind) << ") ==\n";
    exp::TextTable table;
    table.setHeader({"method", "period gap (mean)", "period gap (max)"});
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const exp::Summary s = exp::summarize(periodGaps[m]);
      table.addRow({methods[m].name, exp::formatReal(s.mean, 3), exp::formatReal(s.max, 3)});
    }
    table.print(std::cout);
    const exp::Summary plain = exp::summarize(h4LatencyGaps);
    const exp::Summary refined = exp::summarize(h4RefinedLatencyGaps);
    std::cout << "latency @ 1.2x optimal period: H4 " << exp::formatReal(plain.mean, 3)
              << " -> H4+LS " << exp::formatReal(refined.mean, 3) << " (mean ratio, "
              << plain.count << " samples)\n\n";
  }
  std::cout << "Reading: 'H1 + local search' vs 'H1' isolates the refinement benefit;\n"
               "'local search (Lemma-1 seed)' shows what the neighborhood achieves without\n"
               "the paper's splitting order; annealing estimates the global optimum's\n"
               "reachability; the greedy probe is the classical chains-to-chains baseline.\n";
  return 0;
}
