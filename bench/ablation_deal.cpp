// Extension experiment (paper Section 7, "nest a farm or deal skeleton"):
// how much does replicating the bottleneck interval buy over pure interval
// splitting? Per workload regime, reports the mean ratio of
//
//   * H1's splitting-only exhaustion period, and
//   * the deal-aware heuristic's exhaustion period (splits + replication),
//
// to the splitting-only value (so 1.000 = no gain), plus how many instances
// actually replicated, the mean replica count, and a DES cross-check that
// the replicated mapping really achieves its predicted period.
//
// Usage: ablation_deal [--instances N] [--stages N] [--processors P]
#include <iostream>
#include <string>
#include <vector>

#include "pipesched/exp/aggregate.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/deal.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/sim/replicated_sim.hpp"
#include "pipesched/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace pipesched;
  std::size_t instances = 25;
  std::size_t stages = 8;
  std::size_t processors = 6;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--instances") instances = std::stoul(next());
    else if (arg == "--stages") stages = std::stoul(next());
    else if (arg == "--processors") processors = std::stoul(next());
    else {
      std::cerr << "usage: " << argv[0]
                << " [--instances N] [--stages N] [--processors P]\n";
      return 2;
    }
  }

  const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  std::cout << "Deal-skeleton ablation (" << instances << " instances, n=" << stages
            << ", p=" << processors << "; period ratios to splitting-only H1)\n\n";

  exp::TextTable table;
  table.setHeader({"experiment", "deal/H1 period (mean)", "deal/H1 (min)", "replicated",
                   "mean replicas", "DES ordered/model", "DES substreams/model"});
  for (workload::ExperimentKind kind :
       {workload::ExperimentKind::kE1BalancedHomComm,
        workload::ExperimentKind::kE2BalancedHetComm,
        workload::ExperimentKind::kE3LargeComputations,
        workload::ExperimentKind::kE4SmallComputations}) {
    std::vector<Real> ratios, replicaCounts, desOrdered, desSubstreams;
    std::size_t replicated = 0;
    for (std::size_t i = 0; i < instances; ++i) {
      workload::Rng rng(0xDEA1 ^ (static_cast<std::uint64_t>(kind) << 32) ^ i);
      const auto inst = workload::randomInstance(kind, stages, processors, rng);
      const core::Evaluator eval(inst.pipeline, inst.platform);

      const Real splitOnly = h1->failureThreshold(eval);
      const Real withDeal = heuristics::dealExhaustionPeriod(eval);
      ratios.push_back(withDeal / splitOnly);

      const auto deal = heuristics::spMonoPWithDeal(eval, withDeal);
      if (deal.replications > 0) {
        ++replicated;
        std::size_t replicas = 0;
        for (const auto& a : deal.mapping.assignments()) replicas += a.processors.size();
        replicaCounts.push_back(static_cast<Real>(replicas) /
                                static_cast<Real>(deal.mapping.intervalCount()));

        // DES cross-check on the replicated mapping, under both dealing
        // disciplines.
        sim::SimConfig config;
        config.datasetCount = 601;
        config.warmup = 200;
        const sim::SimReport ordered = sim::simulateReplicated(
            eval, deal.mapping, config, sim::DealDiscipline::kStreamOrdered);
        desOrdered.push_back(ordered.steadyStatePeriod / deal.metrics.period);
        const sim::SimReport substreams = sim::simulateReplicated(
            eval, deal.mapping, config, sim::DealDiscipline::kIndependentSubstreams);
        desSubstreams.push_back(substreams.steadyStatePeriod / deal.metrics.period);
      }
    }
    const exp::Summary r = exp::summarize(ratios);
    const exp::Summary reps = exp::summarize(replicaCounts);
    const exp::Summary desO = exp::summarize(desOrdered);
    const exp::Summary desS = exp::summarize(desSubstreams);
    table.addRow({workload::experimentName(kind), exp::formatReal(r.mean, 3),
                  exp::formatReal(r.min, 3),
                  std::to_string(replicated) + "/" + std::to_string(instances),
                  reps.count ? exp::formatReal(reps.mean, 2) : "—",
                  desO.count ? exp::formatReal(desO.mean, 4) : "—",
                  desS.count ? exp::formatReal(desS.mean, 4) : "—"});
  }
  table.print(std::cout);
  std::cout << "\nReading: ratios < 1 mean replication pushed the period below the\n"
               "splitting-only floor. The cost model is a *lower bound* under rendezvous\n"
               "semantics: 'DES substreams/model' reaches 1.0 when replicas have compute\n"
               "slack and exceeds it by head-of-line blocking on communication-bound\n"
               "regimes; 'DES ordered/model' additionally pays strict stream ordering.\n"
               "Both observations are beyond the paper (its follow-up models assume\n"
               "buffered dealing).\n";
  return 0;
}
