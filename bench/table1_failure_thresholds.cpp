// Regenerates paper Table 1: the mean failure threshold of each heuristic
// (largest fixed period/latency for which it finds no solution) across
// experiments E1-E4 and n in {5, 10, 20, 40}, p = 10.
//
// Usage: table1_failure_thresholds [--pairs N] [--seed S] [--processors P]
#include <iostream>
#include <string>

#include "pipesched/exp/sweep.hpp"

int main(int argc, char** argv) {
  std::size_t pairs = 50;
  std::size_t processors = 10;
  std::uint64_t seed = 20070628;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--pairs") pairs = std::stoul(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--processors") processors = std::stoul(next());
    else {
      std::cerr << "usage: " << argv[0] << " [--pairs N] [--seed S] [--processors P]\n";
      return 2;
    }
  }

  using pipesched::workload::ExperimentKind;
  const std::vector<std::size_t> stageCounts = {5, 10, 20, 40};
  for (ExperimentKind kind :
       {ExperimentKind::kE1BalancedHomComm, ExperimentKind::kE2BalancedHetComm,
        ExperimentKind::kE3LargeComputations, ExperimentKind::kE4SmallComputations}) {
    const auto report =
        pipesched::exp::failureThresholds(kind, stageCounts, processors, pairs, seed);
    pipesched::exp::printFailureThresholds(std::cout, report);
    std::cout << '\n';
  }
  std::cout << "Shape checks vs paper Table 1:\n"
               "  * H5-SpMonoL and H6-SpBiL rows must be identical (both fail exactly\n"
               "    when L < optimal latency).\n"
               "  * H1-SpMonoP should have the smallest (best) thresholds overall.\n";
  return 0;
}
