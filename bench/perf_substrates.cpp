// Google-benchmark microbenchmarks of the substrate libraries: the
// chains-to-chains solvers, the mapping evaluator, and the two simulators.
#include <benchmark/benchmark.h>

#include "pipesched/c2c/heterogeneous.hpp"
#include "pipesched/c2c/homogeneous.hpp"
#include "pipesched/heuristics/heuristics.hpp"
#include "pipesched/sim/pipeline_sim.hpp"
#include "pipesched/sim/recurrence.hpp"
#include "pipesched/workload/generator.hpp"

namespace {

using namespace pipesched;

std::vector<Real> randomWeights(std::size_t n, std::uint64_t seed) {
  workload::Rng rng(seed);
  std::vector<Real> w(n);
  for (auto& x : w) x = rng.uniform(1, 100);
  return w;
}

void BM_C2C_DpPartition(benchmark::State& state) {
  const auto w = randomWeights(static_cast<std::size_t>(state.range(0)), 1);
  const std::size_t parts = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c2c::dpPartition(w, parts));
  }
}
BENCHMARK(BM_C2C_DpPartition)->Args({64, 8})->Args({256, 16})->Args({512, 16});

void BM_C2C_ParametricPartition(benchmark::State& state) {
  const auto w = randomWeights(static_cast<std::size_t>(state.range(0)), 2);
  const std::size_t parts = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c2c::parametricPartition(w, parts));
  }
}
BENCHMARK(BM_C2C_ParametricPartition)->Args({64, 8})->Args({256, 16})->Args({2048, 32});

void BM_C2C_HeteroSortedDp(benchmark::State& state) {
  const auto w = randomWeights(static_cast<std::size_t>(state.range(0)), 3);
  workload::Rng rng(4);
  std::vector<Real> speeds(static_cast<std::size_t>(state.range(1)));
  for (auto& s : speeds) s = static_cast<Real>(rng.uniformInt(1, 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c2c::heteroSortedDp(w, speeds));
  }
}
BENCHMARK(BM_C2C_HeteroSortedDp)->Args({64, 8})->Args({256, 16});

void BM_Evaluator_Evaluate(benchmark::State& state) {
  workload::Rng rng(5);
  const auto inst = workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm,
                                             static_cast<std::size_t>(state.range(0)),
                                             static_cast<std::size_t>(state.range(0)), rng);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  std::vector<std::size_t> procs(inst.pipeline.stageCount());
  for (std::size_t k = 0; k < procs.size(); ++k) procs[k] = k;
  const auto mapping = core::IntervalMapping::oneToOne(procs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(mapping));
  }
}
BENCHMARK(BM_Evaluator_Evaluate)->Arg(10)->Arg(40)->Arg(100);

void BM_DES_Saturated(benchmark::State& state) {
  workload::Rng rng(6);
  const auto inst = workload::randomInstance(workload::ExperimentKind::kE1BalancedHomComm, 20,
                                             10, rng);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const auto mapping = heuristics::spMonoP(eval, 0).mapping;  // exhaustion mapping
  sim::SimConfig config;
  config.datasetCount = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulatePipeline(eval, mapping, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DES_Saturated)->Arg(100)->Arg(1000);

void BM_Recurrence_Saturated(benchmark::State& state) {
  workload::Rng rng(6);
  const auto inst = workload::randomInstance(workload::ExperimentKind::kE1BalancedHomComm, 20,
                                             10, rng);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const auto mapping = heuristics::spMonoP(eval, 0).mapping;
  const std::vector<sim::Time> releases(static_cast<std::size_t>(state.range(0)), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::recurrenceCompletionTimes(eval, mapping, releases));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Recurrence_Saturated)->Arg(100)->Arg(1000);

}  // namespace
