// Extension experiment (the paper's "future work", Section 7): fully
// heterogeneous platforms with per-link bandwidths. The paper's heuristics
// were designed for Communication-Homogeneous platforms; our implementation
// evaluates candidate splits through the neighbor-aware cost model, so they
// *run* on heterogeneous links — but their processor ordering (fastest
// first) ignores link quality. This bench measures how much link-aware
// refinement recovers:
//
//   * H1 as published, run directly on the heterogeneous platform;
//   * H1 + local search (moves can exploit link structure);
//   * local search from the Lemma-1 seed;
//   * simulated annealing.
//
// Reported as ratios to the best period found by any method on the instance
// (no exact solver is practical here: the mapping cost depends on processor
// *placement*, which explodes the search space).
//
// Usage: ablation_hetero_links [--instances N] [--stages N] [--processors P]
#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "pipesched/exp/aggregate.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/heuristics/annealing.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

namespace {

using namespace pipesched;
using heuristics::Objective;

}  // namespace

int main(int argc, char** argv) {
  std::size_t instances = 30;
  std::size_t stages = 12;
  std::size_t processors = 6;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--instances") instances = std::stoul(next());
    else if (arg == "--stages") stages = std::stoul(next());
    else if (arg == "--processors") processors = std::stoul(next());
    else {
      std::cerr << "usage: " << argv[0]
                << " [--instances N] [--stages N] [--processors P]\n";
      return 2;
    }
  }

  const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);

  struct Method {
    std::string name;
    std::function<Real(const core::Evaluator&)> minPeriod;
  };
  const std::vector<Method> methods = {
      {"H1-SpMonoP (link-blind order)",
       [&](const core::Evaluator& eval) { return h1->failureThreshold(eval); }},
      {"H1 + link-aware local search",
       [&](const core::Evaluator& eval) {
         const auto seeded = h1->run(eval, h1->failureThreshold(eval));
         return heuristics::localSearch(eval, seeded.mapping, Objective::kMinPeriodForLatency,
                                        kInfinity)
             .metrics.period;
       }},
      {"local search (Lemma-1 seed)",
       [&](const core::Evaluator& eval) {
         return heuristics::localSearch(eval, eval.optimalLatencyMapping(),
                                        Objective::kMinPeriodForLatency, kInfinity)
             .metrics.period;
       }},
      {"simulated annealing",
       [&](const core::Evaluator& eval) {
         heuristics::AnnealingOptions options;
         options.seed = 777;
         options.moves = 30'000;
         return heuristics::anneal(eval, eval.optimalLatencyMapping(),
                                   Objective::kMinPeriodForLatency, kInfinity, options)
             .metrics.period;
       }},
  };

  std::cout << "Fully-heterogeneous links extension (" << instances << " instances, n="
            << stages << ", p=" << processors
            << ", link bandwidths U[1,20]; ratios to the best method per instance)\n\n";

  std::vector<std::vector<Real>> gaps(methods.size());
  std::vector<std::size_t> wins(methods.size(), 0);
  for (std::size_t i = 0; i < instances; ++i) {
    workload::Rng rng(0x4E7E60 ^ i);
    const core::Pipeline pipe =
        workload::randomPipeline(workload::ExperimentKind::kE2BalancedHetComm, stages, rng);
    const core::Platform plat = workload::randomHeterogeneousPlatform(processors, rng);
    const core::Evaluator eval(pipe, plat);

    std::vector<Real> periods(methods.size());
    for (std::size_t m = 0; m < methods.size(); ++m) periods[m] = methods[m].minPeriod(eval);
    const Real best = *std::min_element(periods.begin(), periods.end());
    for (std::size_t m = 0; m < methods.size(); ++m) {
      gaps[m].push_back(periods[m] / best);
      if (nearlyEqual(periods[m], best, 1e-6)) ++wins[m];
    }
  }

  exp::TextTable table;
  table.setHeader({"method", "gap to best (mean)", "gap to best (max)", "wins"});
  for (std::size_t m = 0; m < methods.size(); ++m) {
    const exp::Summary s = exp::summarize(gaps[m]);
    table.addRow({methods[m].name, exp::formatReal(s.mean, 3), exp::formatReal(s.max, 3),
                  std::to_string(wins[m]) + "/" + std::to_string(instances)});
  }
  table.print(std::cout);
  std::cout << "\nReading: the spread between row 1 and rows 2-4 is the cost of ignoring\n"
               "link heterogeneity in the paper's fastest-first processor order — the\n"
               "motivation the paper gives for its 'fully heterogeneous platforms' future\n"
               "work. On Communication-Homogeneous platforms all methods collapse to the\n"
               "ablation_localsearch numbers.\n";
  return 0;
}
