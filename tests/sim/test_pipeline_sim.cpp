// Validation of the paper's closed-form metrics by simulation:
//  * a single data set experiences exactly T_latency (Eq. 2);
//  * a saturated source drives the steady-state period to T_period (Eq. 1);
//  * the DES and the independent max-plus recurrence agree bit-for-bit.
#include <gtest/gtest.h>

#include "pipesched/heuristics/heuristics.hpp"
#include "pipesched/sim/pipeline_sim.hpp"
#include "pipesched/sim/recurrence.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::sim {
namespace {

using core::Evaluator;
using core::IntervalMapping;
using workload::ExperimentKind;
using workload::Rng;

TEST(PipelineSim, SingleIntervalSingleDataset) {
  const core::Pipeline pipe({2, 4, 6}, {1, 2, 3, 4});
  const core::Platform plat({2, 1}, 2);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::singleInterval(3, 0);
  SimConfig config;
  config.datasetCount = 1;
  const SimReport r = simulatePipeline(eval, m, config);
  EXPECT_NEAR(r.latencies.front(), eval.latency(m), 1e-12);
}

TEST(PipelineSim, TwoIntervalLatencyMatchesEq2) {
  const core::Pipeline pipe({2, 4, 6}, {1, 2, 3, 4});
  const core::Platform plat({2, 1}, 2);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  SimConfig config;
  config.datasetCount = 1;
  const SimReport r = simulatePipeline(eval, m, config);
  EXPECT_NEAR(r.latencies.front(), 14.5, 1e-12);  // hand-computed Eq. 2
}

TEST(PipelineSim, SaturatedSteadyPeriodMatchesEq1) {
  const core::Pipeline pipe({2, 4, 6}, {1, 2, 3, 4});
  const core::Platform plat({2, 1}, 2);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  SimConfig config;
  config.datasetCount = 300;
  config.warmup = 100;
  const SimReport r = simulatePipeline(eval, m, config);
  EXPECT_NEAR(r.steadyStatePeriod, eval.period(m), 1e-9);
}

TEST(PipelineSim, CompletionTimesAreMonotone) {
  const core::Pipeline pipe({5, 5}, {2, 2, 2});
  const core::Platform plat({3, 2}, 4);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(2, {0, 1}, {0, 1});
  SimConfig config;
  config.datasetCount = 50;
  const SimReport r = simulatePipeline(eval, m, config);
  for (std::size_t k = 1; k < r.completionTimes.size(); ++k) {
    EXPECT_GT(r.completionTimes[k], r.completionTimes[k - 1]);
  }
}

TEST(PipelineSim, SpacedReleasesKeepLatencyBounded) {
  const core::Pipeline pipe({4, 8, 2}, {1, 3, 2, 1});
  const core::Platform plat({2, 1, 1}, 2);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  SimConfig config;
  config.datasetCount = 100;
  config.releaseInterval = eval.period(m);  // feed at exactly the period
  const SimReport r = simulatePipeline(eval, m, config);
  // Latency can exceed Eq. 2 transiently but must not grow without bound.
  EXPECT_GE(r.maxLatency + 1e-12, eval.latency(m));
  EXPECT_LE(r.maxLatency, eval.latency(m) + 2 * eval.period(m));
  // The last data sets have settled into the steady latency.
  EXPECT_NEAR(r.latencies[99], r.latencies[98], 1e-9);
}

TEST(PipelineSim, TraceIsWellFormed) {
  const core::Pipeline pipe({2, 4}, {1, 2, 1});
  const core::Platform plat({2, 1}, 2);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(2, {0, 1}, {0, 1});
  SimConfig config;
  config.datasetCount = 3;
  config.recordTrace = true;
  const SimReport r = simulatePipeline(eval, m, config);
  ASSERT_FALSE(r.trace.empty());
  // Per data set: 3 transfers (start+end) + 2 computes (start+end) = 10.
  EXPECT_EQ(r.trace.size(), 3u * 10u);
  std::size_t starts = 0, ends = 0;
  for (const TraceEvent& ev : r.trace) {
    if (ev.kind == TraceEvent::Kind::kTransferStart ||
        ev.kind == TraceEvent::Kind::kComputeStart) {
      ++starts;
    } else {
      ++ends;
    }
  }
  EXPECT_EQ(starts, ends);
}

TEST(PipelineSim, ValidatesInputs) {
  const core::Pipeline pipe({2, 4}, {1, 2, 1});
  const core::Platform plat({2, 1}, 2);
  const Evaluator eval(pipe, plat);
  SimConfig config;
  config.datasetCount = 0;
  EXPECT_THROW((void)simulatePipeline(eval, IntervalMapping::singleInterval(2, 0), config),
               ModelError);
  EXPECT_THROW(
      (void)simulatePipeline(eval, IntervalMapping::singleInterval(3, 0), SimConfig{}),
      MappingError);
}

// ---------------------------------------------------------------------------
// Property sweep: DES == recurrence; steady period == Eq. 1; single-data-set
// latency == Eq. 2 — on random instances and heuristic-produced mappings.
// ---------------------------------------------------------------------------

struct SimCase {
  ExperimentKind kind;
  std::size_t n;
  std::size_t p;
  std::uint64_t seed;
};

class SimRandomized : public ::testing::TestWithParam<SimCase> {
 protected:
  void SetUp() override {
    const auto [kind, n, p, seed] = GetParam();
    Rng rng(seed);
    auto inst = workload::randomInstance(kind, n, p, rng);
    pipe_ = std::make_unique<core::Pipeline>(std::move(inst.pipeline));
    plat_ = std::make_unique<core::Platform>(std::move(inst.platform));
    eval_ = std::make_unique<Evaluator>(*pipe_, *plat_);
    // A non-trivial mapping produced by the paper's H1 heuristic.
    mapping_ = heuristics::spMonoP(*eval_, eval_->optimalLatency() * 0.4).mapping;
  }

  std::unique_ptr<core::Pipeline> pipe_;
  std::unique_ptr<core::Platform> plat_;
  std::unique_ptr<Evaluator> eval_;
  IntervalMapping mapping_;
};

TEST_P(SimRandomized, DesMatchesRecurrenceExactly) {
  SimConfig config;
  config.datasetCount = 64;
  config.releaseInterval = 0;
  const SimReport des = simulatePipeline(*eval_, mapping_, config);
  const std::vector<Time> releases(64, Time(0));
  const std::vector<Time> rec = recurrenceCompletionTimes(*eval_, mapping_, releases);
  ASSERT_EQ(des.completionTimes.size(), rec.size());
  for (std::size_t k = 0; k < rec.size(); ++k) {
    EXPECT_NEAR(des.completionTimes[k], rec[k], 1e-12) << "data set " << k;
  }
}

TEST_P(SimRandomized, DesMatchesRecurrenceWithSpacedReleases) {
  SimConfig config;
  config.datasetCount = 40;
  config.releaseInterval = eval_->period(mapping_) * 1.5;
  const SimReport des = simulatePipeline(*eval_, mapping_, config);
  std::vector<Time> releases(40);
  for (std::size_t k = 0; k < releases.size(); ++k) {
    releases[k] = config.releaseInterval * static_cast<Time>(k);
  }
  const std::vector<Time> rec = recurrenceCompletionTimes(*eval_, mapping_, releases);
  for (std::size_t k = 0; k < rec.size(); ++k) {
    EXPECT_NEAR(des.completionTimes[k], rec[k], 1e-12);
  }
}

TEST_P(SimRandomized, SingleDatasetLatencyIsEq2) {
  SimConfig config;
  config.datasetCount = 1;
  const SimReport r = simulatePipeline(*eval_, mapping_, config);
  EXPECT_NEAR(r.latencies.front(), eval_->latency(mapping_),
              1e-9 * std::max(Real(1), eval_->latency(mapping_)));
}

TEST_P(SimRandomized, SaturatedSteadyPeriodIsEq1) {
  const Time period = recurrenceSteadyPeriod(*eval_, mapping_, 400, 200);
  EXPECT_NEAR(period, eval_->period(mapping_),
              1e-6 * std::max(Real(1), eval_->period(mapping_)));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, SimRandomized,
    ::testing::Values(SimCase{ExperimentKind::kE1BalancedHomComm, 5, 4, 701},
                      SimCase{ExperimentKind::kE1BalancedHomComm, 20, 10, 702},
                      SimCase{ExperimentKind::kE2BalancedHetComm, 10, 10, 703},
                      SimCase{ExperimentKind::kE2BalancedHetComm, 40, 10, 704},
                      SimCase{ExperimentKind::kE3LargeComputations, 10, 5, 705},
                      SimCase{ExperimentKind::kE4SmallComputations, 10, 5, 706},
                      SimCase{ExperimentKind::kE4SmallComputations, 40, 10, 707}),
    [](const auto& paramInfo) {
      return workload::experimentName(paramInfo.param.kind) + "_n" + std::to_string(paramInfo.param.n) +
             "_p" + std::to_string(paramInfo.param.p) + "_s" + std::to_string(paramInfo.param.seed);
    });

}  // namespace
}  // namespace pipesched::sim
