// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include "pipesched/sim/engine.hpp"

namespace pipesched::sim {
namespace {

TEST(Engine, ProcessesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.eventsProcessed(), 3u);
}

TEST(Engine, BreaksTimeTiesByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(1.0, [&] { order.push_back(10); });
  e.schedule(1.0, [&] { order.push_back(20); });
  e.schedule(1.0, [&] { order.push_back(30); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(Engine, CallbacksMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&] {
    ++fired;
    e.scheduleAfter(1.0, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule(5.0, [&] { EXPECT_THROW(e.schedule(1.0, [] {}), ModelError); });
  e.run();
}

TEST(Engine, RunBudgetStopsEarly) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule(static_cast<Time>(i), [&] { ++fired; });
  }
  e.run(4);
  EXPECT_EQ(fired, 4);
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, IdleOnConstruction) {
  Engine e;
  EXPECT_TRUE(e.idle());
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
}

}  // namespace
}  // namespace pipesched::sim
