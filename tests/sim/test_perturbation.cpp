// Jittered DES: zero-amplitude equivalence with the nominal simulator,
// determinism per seed, parameter validation, queueing-induced period
// degradation, and the robustness aggregation report.
#include <gtest/gtest.h>

#include "pipesched/heuristics/registry.hpp"
#include "pipesched/sim/perturbation.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::sim {
namespace {

using core::Evaluator;
using core::IntervalMapping;
using core::Pipeline;
using core::Platform;
using workload::ExperimentKind;
using workload::Rng;

class Jitter : public ::testing::Test {
 protected:
  Jitter() {
    Rng rng(321);
    auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 8, 5, rng);
    pipe_ = std::make_unique<Pipeline>(std::move(inst.pipeline));
    plat_ = std::make_unique<Platform>(std::move(inst.platform));
    eval_ = std::make_unique<Evaluator>(*pipe_, *plat_);
    const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
    mapping_ = h1->run(*eval_, h1->failureThreshold(*eval_) * 1.1).mapping;
  }

  std::unique_ptr<Pipeline> pipe_;
  std::unique_ptr<Platform> plat_;
  std::unique_ptr<Evaluator> eval_;
  IntervalMapping mapping_;
};

TEST_F(Jitter, ZeroAmplitudeMatchesTheNominalSimulator) {
  SimConfig config;
  config.datasetCount = 120;
  const SimReport nominal = simulatePipeline(*eval_, mapping_, config);
  const SimReport jittered = simulatePipelineJittered(*eval_, mapping_, config, JitterModel{});
  ASSERT_EQ(jittered.completionTimes.size(), nominal.completionTimes.size());
  for (std::size_t k = 0; k < nominal.completionTimes.size(); ++k) {
    EXPECT_DOUBLE_EQ(jittered.completionTimes[k], nominal.completionTimes[k]);
  }
}

TEST_F(Jitter, DeterministicPerSeedAndSensitiveToIt) {
  SimConfig config;
  config.datasetCount = 60;
  JitterModel jitter;
  jitter.seed = 9;
  jitter.computeAmplitude = 0.3;
  jitter.transferAmplitude = 0.3;
  const SimReport a = simulatePipelineJittered(*eval_, mapping_, config, jitter);
  const SimReport b = simulatePipelineJittered(*eval_, mapping_, config, jitter);
  EXPECT_EQ(a.completionTimes, b.completionTimes);

  jitter.seed = 10;
  const SimReport c = simulatePipelineJittered(*eval_, mapping_, config, jitter);
  EXPECT_NE(a.completionTimes, c.completionTimes);
}

TEST_F(Jitter, ValidatesParameters) {
  SimConfig config;
  JitterModel bad;
  bad.computeAmplitude = 1.0;  // must be < 1
  EXPECT_THROW((void)simulatePipelineJittered(*eval_, mapping_, config, bad), ModelError);
  bad.computeAmplitude = -0.1;
  EXPECT_THROW((void)simulatePipelineJittered(*eval_, mapping_, config, bad), ModelError);
  bad.computeAmplitude = 0.5;
  bad.minFactor = 0;
  EXPECT_THROW((void)simulatePipelineJittered(*eval_, mapping_, config, bad), ModelError);
}

TEST_F(Jitter, VarianceDegradesTheSteadyStatePeriod) {
  // Zero-mean noise on a saturated pipeline can only hurt throughput: the
  // bottleneck's completion process is a max-plus recursion, and waiting
  // compounds while slack does not. Check the mean period over trials.
  SimConfig config;
  config.datasetCount = 400;
  config.warmup = 100;
  JitterModel jitter;
  jitter.computeAmplitude = 0.4;
  jitter.transferAmplitude = 0.4;
  const RobustnessReport report = measureRobustness(*eval_, mapping_, config, jitter, 8);
  EXPECT_GT(report.meanPeriod, report.nominalPeriod * 0.999);
  EXPECT_GE(report.worstPeriod, report.meanPeriod);
  EXPECT_GE(report.worstMaxLatency, report.meanMaxLatency);
  EXPECT_GE(report.periodDegradation(), 0.999);
}

TEST_F(Jitter, StrongerNoiseDegradesMore) {
  SimConfig config;
  config.datasetCount = 300;
  config.warmup = 80;
  JitterModel weak;
  weak.computeAmplitude = 0.1;
  JitterModel strong;
  strong.computeAmplitude = 0.6;
  const auto weakReport = measureRobustness(*eval_, mapping_, config, weak, 6);
  const auto strongReport = measureRobustness(*eval_, mapping_, config, strong, 6);
  EXPECT_LT(weakReport.periodDegradation(), strongReport.periodDegradation());
}

TEST_F(Jitter, RobustnessReportValidation) {
  SimConfig config;
  EXPECT_THROW((void)measureRobustness(*eval_, mapping_, config, JitterModel{}, 0),
               ModelError);
}

TEST(JitterSmall, SingleIntervalLatencyScalesWithTheDrawnFactors) {
  // One stage, zero comms, releases spaced wider than the worst jittered
  // compute time: no queueing, so each data set's latency is exactly its own
  // jittered compute duration and must stay within the amplitude band.
  const Pipeline pipe({10}, {0, 0});
  const Platform plat({1}, 1);
  const Evaluator eval(pipe, plat);
  const auto mapping = IntervalMapping::singleInterval(1, 0);
  SimConfig config;
  config.datasetCount = 50;
  config.releaseInterval = 20;  // > 10 * (1 + amplitude)
  JitterModel jitter;
  jitter.computeAmplitude = 0.5;
  jitter.seed = 4;
  const SimReport report = simulatePipelineJittered(eval, mapping, config, jitter);
  for (const Time lat : report.latencies) {
    EXPECT_GE(lat, 10 * 0.5 - 1e-9);
    EXPECT_LE(lat, 10 * 1.5 + 1e-9);
  }
}

}  // namespace
}  // namespace pipesched::sim
