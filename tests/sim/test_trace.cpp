// Trace export and Gantt rendering: CSV well-formedness, event ordering,
// rendering shape, and error behaviour without a recorded trace.
#include <gtest/gtest.h>

#include <sstream>

#include "pipesched/sim/trace.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::sim {
namespace {

using core::Evaluator;
using core::IntervalMapping;
using core::Pipeline;
using core::Platform;

struct Tracing : ::testing::Test {
  Pipeline pipe_{{2, 4, 6}, {1, 2, 3, 4}};
  Platform plat_{{2, 1, 4}, 2};
  Evaluator eval_{pipe_, plat_};
  IntervalMapping mapping_ = IntervalMapping::fromCuts(3, {1, 2}, {2, 0});

  SimReport traced(std::size_t datasets = 5) {
    SimConfig config;
    config.datasetCount = datasets;
    config.recordTrace = true;
    return simulatePipeline(eval_, mapping_, config);
  }
};

TEST_F(Tracing, CsvHasHeaderAndOneRowPerEvent) {
  const SimReport report = traced();
  std::ostringstream out;
  writeTraceCsv(out, report);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "kind,time,index,dataset");
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3) << line;
  }
  EXPECT_EQ(rows, report.trace.size());
}

TEST_F(Tracing, TraceTimesAreMonotoneWithinEachDatasetPhaseChain) {
  const SimReport report = traced();
  // For each data set, compute_start(j) <= compute_end(j) <= compute_start(j+1).
  std::vector<std::vector<Time>> starts(5), ends(5);
  for (const TraceEvent& e : report.trace) {
    if (e.kind == TraceEvent::Kind::kComputeStart) starts[e.dataset].push_back(e.time);
    if (e.kind == TraceEvent::Kind::kComputeEnd) ends[e.dataset].push_back(e.time);
  }
  for (std::size_t k = 0; k < 5; ++k) {
    ASSERT_EQ(starts[k].size(), mapping_.intervalCount());
    ASSERT_EQ(ends[k].size(), mapping_.intervalCount());
    for (std::size_t j = 0; j < starts[k].size(); ++j) {
      EXPECT_LE(starts[k][j], ends[k][j]);
      if (j > 0) EXPECT_LE(ends[k][j - 1], starts[k][j]);
    }
  }
}

TEST_F(Tracing, CsvRequiresARecordedTrace) {
  SimConfig config;
  config.datasetCount = 3;
  const SimReport untraced = simulatePipeline(eval_, mapping_, config);
  std::ostringstream out;
  EXPECT_THROW(writeTraceCsv(out, untraced), ModelError);
  EXPECT_THROW((void)renderGantt(mapping_, untraced), ModelError);
}

TEST_F(Tracing, GanttHasOneRowPerIntervalAndALegend) {
  const SimReport report = traced();
  const std::string gantt = renderGantt(mapping_, report);
  std::istringstream lines(gantt);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("time: 0 .."), std::string::npos);
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), mapping_.intervalCount());
  EXPECT_EQ(rows[0].substr(0, 2), "P2");
  EXPECT_EQ(rows[1].substr(0, 2), "P0");
}

TEST_F(Tracing, GanttRowsContainTheDatasetDigits) {
  const SimReport report = traced(3);
  GanttOptions options;
  options.width = 80;
  const std::string gantt = renderGantt(mapping_, report, options);
  for (const char digit : {'0', '1', '2'}) {
    EXPECT_NE(gantt.find(digit), std::string::npos) << "missing data set " << digit;
  }
}

TEST_F(Tracing, GanttRespectsMaxDatasetsAndWidth) {
  const SimReport report = traced(8);
  GanttOptions options;
  options.width = 40;
  options.maxDatasets = 2;
  const std::string gantt = renderGantt(mapping_, report, options);
  EXPECT_EQ(gantt.find('7'), std::string::npos);  // data set 7 not drawn
  std::istringstream lines(gantt);
  std::string line;
  std::getline(lines, line);  // legend
  while (std::getline(lines, line)) {
    // "Px   [" + width + "]"
    EXPECT_EQ(line.size(), 5 + 1 + options.width + 1) << line;
  }
}

TEST_F(Tracing, GanttRejectsTinyWidth) {
  const SimReport report = traced();
  GanttOptions options;
  options.width = 4;
  EXPECT_THROW((void)renderGantt(mapping_, report, options), ModelError);
}

}  // namespace
}  // namespace pipesched::sim
