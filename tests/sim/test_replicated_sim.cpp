// Replicated-mapping DES: exact equivalence with the plain simulator on
// singleton replica sets, validation of the deal cost model (steady-state
// period == max replica cycle / |S|), per-data-set latency paths, and
// back-pressure behaviour of the stream-ordered dealing discipline.
#include <gtest/gtest.h>

#include "pipesched/heuristics/deal.hpp"
#include "pipesched/sim/replicated_sim.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::sim {
namespace {

using core::Evaluator;
using core::IntervalMapping;
using core::Pipeline;
using core::Platform;
using core::ReplicatedAssignment;
using core::ReplicatedMapping;
using workload::ExperimentKind;
using workload::Rng;

TEST(ReplicatedSim, ValidatesInputs) {
  const Pipeline pipe({1}, {0, 0});
  const Platform hetero = Platform::fullyHeterogeneous({1}, {1}, {1}, {1});
  const Evaluator heval(pipe, hetero);
  const auto single = ReplicatedMapping::fromIntervalMapping(
      IntervalMapping::singleInterval(1, 0));
  EXPECT_THROW((void)simulateReplicated(heval, single, SimConfig{}), ModelError);

  const Platform plat({1}, 1);
  const Evaluator eval(pipe, plat);
  SimConfig config;
  config.datasetCount = 0;
  EXPECT_THROW((void)simulateReplicated(eval, single, config), ModelError);
}

TEST(ReplicatedSim, SingletonSetsMatchThePlainSimulatorExactly) {
  Rng rng(640);
  for (int round = 0; round < 3; ++round) {
    const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 9, 5, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const auto plain = IntervalMapping::fromCuts(9, {2, 5, 8}, {0, 2, 4});
    SimConfig config;
    config.datasetCount = 80;
    const SimReport a = simulatePipeline(eval, plain, config);
    const SimReport b =
        simulateReplicated(eval, ReplicatedMapping::fromIntervalMapping(plain), config);
    ASSERT_EQ(a.completionTimes.size(), b.completionTimes.size());
    for (std::size_t k = 0; k < a.completionTimes.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.completionTimes[k], b.completionTimes[k]) << "k=" << k;
    }
  }
}

class ReplicatedModel : public ::testing::Test {
 protected:
  // One dominant stage replicated over two different-speed processors; two
  // light neighbours. Speeds: P0=2, P1=1, P2=4, P3=4; b=2.
  Pipeline pipe_{{2, 12, 2}, {1, 1, 1, 1}};
  Platform plat_{{2, 1, 4, 4}, 2};
  Evaluator eval_{pipe_, plat_};
};

TEST_F(ReplicatedModel, SteadyPeriodMatchesTheDealCostModel) {
  // [0,0]->{P2}, [1,1]->{P0,P1}, [2,2]->{P3}.
  const ReplicatedMapping rep({ReplicatedAssignment{{0, 0}, {2}},
                               ReplicatedAssignment{{1, 1}, {0, 1}},
                               ReplicatedAssignment{{2, 2}, {3}}});
  const core::Metrics model = evaluateReplicated(eval_, rep);
  SimConfig config;
  // Completions alternate unequal gaps (fast/slow replica), so the averaging
  // window must cover whole replica rounds: last - warmup even for |S| = 2.
  config.datasetCount = 601;
  config.warmup = 200;
  const SimReport report = simulateReplicated(eval_, rep, config);
  EXPECT_NEAR(report.steadyStatePeriod, model.period, 1e-6 * model.period);
}

TEST_F(ReplicatedModel, ReplicationBeatsTheSplittingOnlyFloorInTheSimulatorToo) {
  // Splitting-only best period on this instance: the dominant stage alone on
  // the fastest processor still costs 0.5 + 12/4 + 0.5 = 4. With the deal,
  // the model (and the DES) go below it.
  const ReplicatedMapping rep({ReplicatedAssignment{{0, 0}, {0}},
                               ReplicatedAssignment{{1, 1}, {2, 3}},
                               ReplicatedAssignment{{2, 2}, {1}}});
  const core::Metrics model = evaluateReplicated(eval_, rep);
  EXPECT_LT(model.period, 4.0);
  SimConfig config;
  config.datasetCount = 601;  // even window: see SteadyPeriodMatchesTheDealCostModel
  config.warmup = 200;
  const SimReport report = simulateReplicated(eval_, rep, config);
  EXPECT_NEAR(report.steadyStatePeriod, model.period, 1e-6 * model.period);
  EXPECT_LT(report.steadyStatePeriod, 4.0);
}

TEST_F(ReplicatedModel, PerDataSetLatencyFollowsTheServingReplica) {
  // Paced releases (no queueing): data set k's latency is its own replica
  // path. Replica order for interval 1 is {P0 (s=2), P1 (s=1)}.
  const ReplicatedMapping rep({ReplicatedAssignment{{0, 0}, {2}},
                               ReplicatedAssignment{{1, 1}, {0, 1}},
                               ReplicatedAssignment{{2, 2}, {3}}});
  SimConfig config;
  config.datasetCount = 8;
  config.releaseInterval = 40;  // far above any cycle: fully unloaded
  const SimReport report = simulateReplicated(eval_, rep, config);
  // Path via P0: 0.5 + 2/4 + 0.5 + 12/2 + 0.5 + 2/4 + 0.5 = 9.
  // Path via P1: same with 12/1: 15.
  for (std::size_t k = 0; k < report.latencies.size(); ++k) {
    EXPECT_NEAR(report.latencies[k], k % 2 == 0 ? 9.0 : 15.0, 1e-9) << "k=" << k;
  }
  // The model's latency is the slowest-replica path == the max over data sets.
  const core::Metrics model = evaluateReplicated(eval_, rep);
  EXPECT_NEAR(report.maxLatency, model.latency, 1e-9);
}

TEST_F(ReplicatedModel, CompletionsStayInStreamOrder) {
  // Even though the fast replica could race ahead, stream-ordered dealing
  // keeps sink completions monotone in the data-set index.
  const ReplicatedMapping rep({ReplicatedAssignment{{0, 2}, {2, 1}}});
  SimConfig config;
  config.datasetCount = 100;
  const SimReport report = simulateReplicated(eval_, rep, config);
  for (std::size_t k = 1; k < report.completionTimes.size(); ++k) {
    EXPECT_GT(report.completionTimes[k], report.completionTimes[k - 1]);
  }
}

TEST_F(ReplicatedModel, IndependentSubstreamsMatchTheModelOnCommBoundBoundaries) {
  // First interval replicated on a comm-heavy pipeline: stream-ordered
  // dealing serializes the world-input transfers (period >= delta_0/b = 5),
  // while independent substreams overlap them and reach the model period.
  const Pipeline pipe({8, 1}, {10, 1, 1});
  const Platform plat({2, 2, 4}, 2);
  const Evaluator eval(pipe, plat);
  const ReplicatedMapping rep({ReplicatedAssignment{{0, 0}, {0, 1}},
                               ReplicatedAssignment{{1, 1}, {2}}});
  // cycle of each [0,0] replica: 10/2 + 8/2 + 1/2 = 9.5 -> period_0 = 4.75;
  // interval 1 on P2: 0.5 + 0.25 + 0.5 = 1.25. Model period = 4.75 < 5.
  const core::Metrics model = evaluateReplicated(eval, rep);
  ASSERT_DOUBLE_EQ(model.period, 4.75);

  SimConfig config;
  config.datasetCount = 601;
  config.warmup = 200;
  const SimReport ordered =
      simulateReplicated(eval, rep, config, DealDiscipline::kStreamOrdered);
  const SimReport substreams =
      simulateReplicated(eval, rep, config, DealDiscipline::kIndependentSubstreams);
  // Ordered dealing is gated by the serialized 10/2 = 5 world input.
  EXPECT_NEAR(ordered.steadyStatePeriod, 5.0, 1e-6);
  // Independent substreams deliver the model period.
  EXPECT_NEAR(substreams.steadyStatePeriod, model.period, 1e-6 * model.period);
}

TEST_F(ReplicatedModel, DisciplinesAgreeWhenBoundariesAreNotCommBound) {
  const ReplicatedMapping rep({ReplicatedAssignment{{0, 0}, {2}},
                               ReplicatedAssignment{{1, 1}, {0, 1}},
                               ReplicatedAssignment{{2, 2}, {3}}});
  SimConfig config;
  config.datasetCount = 601;
  config.warmup = 200;
  const SimReport ordered =
      simulateReplicated(eval_, rep, config, DealDiscipline::kStreamOrdered);
  const SimReport substreams =
      simulateReplicated(eval_, rep, config, DealDiscipline::kIndependentSubstreams);
  EXPECT_NEAR(ordered.steadyStatePeriod, substreams.steadyStatePeriod, 1e-9);
}

TEST(ReplicatedSimRandom, SubstreamsNeverSlowerThanOrderedDealing) {
  for (std::uint64_t s : {670, 671, 672}) {
    Rng rng(s);
    const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 8, 6, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const auto deal = heuristics::spMonoPWithDeal(eval, heuristics::dealExhaustionPeriod(eval));
    SimConfig config;
    config.datasetCount = 601;
    config.warmup = 200;
    const SimReport ordered =
        simulateReplicated(eval, deal.mapping, config, DealDiscipline::kStreamOrdered);
    const SimReport substreams =
        simulateReplicated(eval, deal.mapping, config, DealDiscipline::kIndependentSubstreams);
    EXPECT_LE(substreams.steadyStatePeriod, ordered.steadyStatePeriod + 1e-9) << "seed " << s;
  }
}

TEST(ReplicatedSimRandom, DealHeuristicMappingsMatchTheModelOnRandomInstances) {
  for (std::uint64_t s : {650, 651, 652, 653}) {
    Rng rng(s);
    const auto inst = workload::randomInstance(ExperimentKind::kE3LargeComputations, 8, 6, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    // Run the deal heuristic to exhaustion: its mapping usually replicates.
    const Real target = heuristics::dealExhaustionPeriod(eval);
    const auto deal = heuristics::spMonoPWithDeal(eval, target);
    ASSERT_TRUE(deal.success) << "seed " << s;
    SimConfig config;
    // Unknown replica counts: a long window bounds the round-alignment bias
    // of the inter-completion estimator below 1% (<= R / windowLength).
    config.datasetCount = 1201;
    config.warmup = 400;
    const SimReport report = simulateReplicated(eval, deal.mapping, config);
    EXPECT_NEAR(report.steadyStatePeriod, deal.metrics.period,
                0.01 * std::max(Real(1), deal.metrics.period))
        << "seed " << s << " mapping " << deal.mapping.describe();
  }
}

TEST(ReplicatedSimRandom, PlainHeuristicStreamsAreUnaffectedByTheOrderDiscipline) {
  // Regression guard for the in-order dealing constraint: on plain interval
  // mappings the reported metrics must equal the Eq.-1/Eq.-2 values, as
  // before the replication extension.
  Rng rng(660);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 12, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const auto mapping = IntervalMapping::fromCuts(12, {3, 7, 11}, {1, 3, 5});
  const core::Metrics metrics = eval.evaluate(mapping);
  SimConfig config;
  config.datasetCount = 400;
  config.warmup = 150;
  const SimReport report = simulatePipeline(eval, mapping, config);
  EXPECT_NEAR(report.steadyStatePeriod, metrics.period, 1e-6 * metrics.period);
  EXPECT_NEAR(report.latencies.front(), metrics.latency, 1e-9 * metrics.latency);
}

}  // namespace
}  // namespace pipesched::sim
