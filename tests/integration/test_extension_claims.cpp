// Shape-level checks of the *extension* results (beyond the paper's own
// claims, announced in DESIGN.md §5), executed mechanically the same way
// test_paper_claims.cpp pins the paper's results:
//
//   X1 — deal replication pushes the period below the splitting-only floor
//        on communication- and compute-imbalanced regimes;
//   X2 — the replicated cost model is achieved by the DES under the
//        independent-substreams discipline, and stream-ordered dealing is
//        never faster;
//   X3 — on fully-heterogeneous platforms, link-aware local search improves
//        on the link-blind fastest-first heuristics;
//   X4 — local-search refinement never worsens any paper heuristic and the
//        merged heuristic Pareto front covers the exact front ends;
//   X5 — jitter degrades throughput monotonically in amplitude (queueing).
#include <gtest/gtest.h>

#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/heuristics/deal.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/sim/perturbation.hpp"
#include "pipesched/sim/replicated_sim.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched {
namespace {

using core::Evaluator;
using workload::ExperimentKind;
using workload::Rng;

TEST(ExtensionClaims, X1DealBeatsTheSplittingFloorOnImbalancedRegimes) {
  const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  for (ExperimentKind kind :
       {ExperimentKind::kE2BalancedHetComm, ExperimentKind::kE4SmallComputations}) {
    std::size_t improved = 0;
    const std::size_t rounds = 6;
    for (std::uint64_t seed = 0; seed < rounds; ++seed) {
      Rng rng(7100 + seed);
      const auto inst = workload::randomInstance(kind, 8, 6, rng);
      const Evaluator eval(inst.pipeline, inst.platform);
      const Real splitOnly = h1->failureThreshold(eval);
      const Real withDeal = heuristics::dealExhaustionPeriod(eval);
      EXPECT_LE(withDeal, splitOnly + 1e-9);  // replication can only help
      if (definitelyLess(withDeal, splitOnly)) ++improved;
    }
    // The bench shows 10/10 on these regimes; demand a clear majority here.
    EXPECT_GE(improved, rounds / 2) << workload::experimentName(kind);
  }
}

TEST(ExtensionClaims, X2ReplicatedModelIsALowerBoundAchievedWithComputeSlack) {
  // The replication cost model (period = max cycle / |S|) idealizes dealing
  // as fully buffered. Under the paper's rendezvous one-port semantics it is
  // a *lower bound*: the substreams discipline achieves it when replicas
  // have compute slack (E3) and exceeds it by rendezvous head-of-line
  // blocking on communication-bound instances (E2) — never the other way
  // around. Stream-ordered dealing is never faster than substreams.
  for (ExperimentKind kind :
       {ExperimentKind::kE3LargeComputations, ExperimentKind::kE2BalancedHetComm}) {
    for (std::uint64_t seed : {7201, 7202}) {
      Rng rng(seed);
      const auto inst = workload::randomInstance(kind, 8, 6, rng);
      const Evaluator eval(inst.pipeline, inst.platform);
      const auto deal =
          heuristics::spMonoPWithDeal(eval, heuristics::dealExhaustionPeriod(eval));
      sim::SimConfig config;
      config.datasetCount = 1201;
      config.warmup = 400;
      const auto substreams = sim::simulateReplicated(
          eval, deal.mapping, config, sim::DealDiscipline::kIndependentSubstreams);
      const auto ordered = sim::simulateReplicated(eval, deal.mapping, config,
                                                   sim::DealDiscipline::kStreamOrdered);
      // Lower bound (up to estimator round-alignment bias).
      EXPECT_GE(substreams.steadyStatePeriod + 0.01 * deal.metrics.period,
                deal.metrics.period)
          << workload::experimentName(kind) << " seed " << seed;
      // Ordering discipline can only slow the stream down.
      EXPECT_GE(ordered.steadyStatePeriod + 1e-9, substreams.steadyStatePeriod)
          << workload::experimentName(kind) << " seed " << seed;
      if (kind == ExperimentKind::kE3LargeComputations) {
        EXPECT_NEAR(substreams.steadyStatePeriod, deal.metrics.period,
                    0.02 * deal.metrics.period)
            << "seed " << seed;
      }
    }
  }
}

TEST(ExtensionClaims, X3LinkAwareRefinementHelpsOnHeterogeneousLinks) {
  const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  Real blind = 0, refined = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(7300 + seed);
    const core::Pipeline pipe =
        workload::randomPipeline(ExperimentKind::kE2BalancedHetComm, 10, rng);
    const core::Platform plat = workload::randomHeterogeneousPlatform(5, rng);
    const Evaluator eval(pipe, plat);
    const Real h1Period = h1->failureThreshold(eval);
    const auto seeded = h1->run(eval, h1Period);
    const auto polished = heuristics::localSearch(
        eval, seeded.mapping, heuristics::Objective::kMinPeriodForLatency, kInfinity);
    EXPECT_LE(polished.metrics.period, h1Period + 1e-9);
    blind += h1Period;
    refined += polished.metrics.period;
  }
  // Aggregate improvement must be substantial (the bench shows ~10%+).
  EXPECT_LT(refined, blind * 0.98);
}

TEST(ExtensionClaims, X4RefinementAndFrontCoverage) {
  Rng rng(7400);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 12, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  for (const auto& h : heuristics::makeAllHeuristics()) {
    const Real t = h->failureThreshold(eval) * 1.15;
    const auto plain = h->run(eval, t);
    const auto refined = heuristics::refineWithLocalSearch(eval, *h, t);
    ASSERT_TRUE(plain.success) << h->name();
    EXPECT_TRUE(refined.success) << h->name();
    const bool periodFamily = h->objective() == heuristics::Objective::kMinLatencyForPeriod;
    EXPECT_LE(periodFamily ? refined.metrics.latency : refined.metrics.period,
              (periodFamily ? plain.metrics.latency : plain.metrics.period) + 1e-9)
        << h->name();
  }
  const auto study = exp::runParetoStudy(eval);
  ASSERT_FALSE(study.merged.empty());
  // The latency-optimal end of the front is the Lemma-1 point.
  EXPECT_NEAR(study.merged.back().latency, eval.optimalLatency(), 1e-9);
}

TEST(ExtensionClaims, X5JitterDegradesThroughputMonotonically) {
  Rng rng(7500);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 10, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const auto h1 = heuristics::makeHeuristic(heuristics::HeuristicId::kH1SpMonoP);
  const auto mapped = h1->run(eval, h1->failureThreshold(eval) * 1.1);
  sim::SimConfig config;
  config.datasetCount = 300;
  config.warmup = 100;
  Real previous = 0;
  for (const Real amplitude : {0.0, 0.2, 0.5}) {
    sim::JitterModel jitter;
    jitter.computeAmplitude = amplitude;
    jitter.transferAmplitude = amplitude;
    const auto report = sim::measureRobustness(eval, mapped.mapping, config, jitter, 6);
    EXPECT_GE(report.meanPeriod + 1e-6, previous) << "amplitude " << amplitude;
    previous = report.meanPeriod;
  }
}

}  // namespace
}  // namespace pipesched
