// End-to-end checks of the paper's headline claims, executed mechanically:
//   Lemma 1   — the single-fastest-processor mapping is latency-optimal;
//   Theorem 1 — the NMWTS gadget equivalence (K = 1 iff YES-instance);
//   Theorem 2 — with zero comms the mapping problem *is* Hetero-1D-Partition;
//   Table 1   — H5/H6 failure-threshold identity, H1 the most aggressive;
//   Section 5 — formulas validated by simulation on heuristic mappings.
#include <gtest/gtest.h>

#include "pipesched/c2c/nmwts.hpp"
#include "pipesched/exact/bnb.hpp"
#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/sim/recurrence.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched {
namespace {

using core::Evaluator;
using workload::ExperimentKind;
using workload::Rng;

TEST(PaperClaims, Lemma1ExhaustiveNeverBeatsFastestProcessorLatency) {
  for (std::uint64_t seed : {1001, 1002, 1003}) {
    Rng rng(seed);
    const auto inst =
        workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 7, 3, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const Real lemma1 = eval.optimalLatency();
    exact::enumerateMappings(eval,
                             [&](const core::IntervalMapping&, const core::Metrics& m) {
                               EXPECT_GE(m.latency + 1e-9, lemma1);
                               return true;
                             });
  }
}

TEST(PaperClaims, Theorem1GadgetEquivalence) {
  // YES-instance: achievable bottleneck exactly 1.
  const c2c::NmwtsInstance yes{{1, 2}, {2, 1}, {3, 3}};
  ASSERT_TRUE(c2c::solveNmwts(yes).has_value());
  const auto redYes = c2c::buildReduction(yes);
  EXPECT_NEAR(c2c::heteroExhaustive(redYes.weights, redYes.speeds, 6).bottleneck, 1.0, 1e-9);

  // NO-instance with balanced sums: bottleneck stays strictly above 1.
  const c2c::NmwtsInstance no{{1, 2}, {1, 2}, {1, 5}};
  ASSERT_TRUE(no.sumsBalanced());
  ASSERT_FALSE(c2c::solveNmwts(no).has_value());
  const auto redNo = c2c::buildReduction(no);
  EXPECT_GT(c2c::heteroExhaustive(redNo.weights, redNo.speeds, 6).bottleneck, 1.0 + 1e-9);
}

TEST(PaperClaims, Theorem2ZeroCommMappingEqualsHetero1DPartition) {
  // The Theorem-2 reduction: n stages of weight a_i, zero comms, b = 1.
  Rng rng(1004);
  std::vector<Real> weights(8);
  for (auto& w : weights) w = static_cast<Real>(rng.uniformInt(1, 30));
  std::vector<Real> speeds(3);
  for (auto& s : speeds) s = static_cast<Real>(rng.uniformInt(1, 10));

  const core::Pipeline pipe(weights, std::vector<Real>(9, 0));
  const core::Platform plat(speeds, 1);
  const Evaluator eval(pipe, plat);
  const Real mappingOptimum = exact::bnbMinPeriod(eval).metrics.period;
  const Real c2cOptimum = c2c::heteroExhaustive(weights, speeds).bottleneck;
  EXPECT_NEAR(mappingOptimum, c2cOptimum, 1e-9);
}

TEST(PaperClaims, Table1LatencyFamilyIdenticalThresholdsAcrossRegimes) {
  const auto h5 = heuristics::makeHeuristic(heuristics::HeuristicId::kH5SpMonoL);
  const auto h6 = heuristics::makeHeuristic(heuristics::HeuristicId::kH6SpBiL);
  for (ExperimentKind kind :
       {ExperimentKind::kE1BalancedHomComm, ExperimentKind::kE2BalancedHetComm,
        ExperimentKind::kE3LargeComputations, ExperimentKind::kE4SmallComputations}) {
    for (std::uint64_t seed : {2001, 2002}) {
      Rng rng(seed);
      const auto inst = workload::randomInstance(kind, 12, 8, rng);
      const Evaluator eval(inst.pipeline, inst.platform);
      EXPECT_DOUBLE_EQ(h5->failureThreshold(eval), h6->failureThreshold(eval));
    }
  }
}

TEST(PaperClaims, H1ReachesThePeriodsOfEveryOtherPeriodHeuristicOften) {
  // Statistical form of "Sp mono P has the smallest failure thresholds"
  // (Section 5.2): across a batch of instances, H1's mean exhaustion period
  // must not noticeably exceed any other period-family heuristic's mean.
  // Table 1 reports rounded aggregates, so a small (2%) slack is allowed —
  // the binary-search heuristic H4 occasionally edges H1 out on a given
  // seed set without contradicting the paper's ranking.
  std::vector<Real> sums(4, 0);
  const auto all = heuristics::makeAllHeuristics();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(3000 + seed);
    const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 16, 8, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    for (std::size_t h = 0; h < 4; ++h) {
      sums[h] += all[h]->failureThreshold(eval);
    }
  }
  for (std::size_t h = 1; h < 4; ++h) {
    EXPECT_LE(sums[0], sums[h] * 1.02 + 1e-6) << all[h]->name();
  }
}

TEST(PaperClaims, SimulationValidatesFormulasOnHeuristicMappings) {
  for (ExperimentKind kind :
       {ExperimentKind::kE1BalancedHomComm, ExperimentKind::kE3LargeComputations}) {
    Rng rng(4000 + static_cast<std::uint64_t>(kind));
    const auto inst = workload::randomInstance(kind, 15, 10, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    for (const auto& h : heuristics::makeAllHeuristics()) {
      const auto r = h->run(eval, h->failureThreshold(eval) * 1.1);
      // Eq. 1 via saturated steady state.
      const Real simPeriod = sim::recurrenceSteadyPeriod(eval, r.mapping, 300, 150);
      EXPECT_NEAR(simPeriod, r.metrics.period, 1e-6 * std::max(Real(1), r.metrics.period))
          << h->name();
      // Eq. 2 via a single data set.
      const auto completions =
          sim::recurrenceCompletionTimes(eval, r.mapping, {0.0});
      EXPECT_NEAR(completions.front(), r.metrics.latency,
                  1e-9 * std::max(Real(1), r.metrics.latency))
          << h->name();
    }
  }
}

TEST(PaperClaims, ParetoTradeoffExistsOnTypicalInstances) {
  // "Minimizing the latency is antagonistic to minimizing the period":
  // on communication-heavy instances the exact front has > 1 point.
  Rng rng(5001);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 7, 4, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const auto front = exact::exhaustiveParetoFront(eval);
  EXPECT_GT(front.size(), 1u);
  // The latency-optimal end is the Lemma-1 mapping; the period-optimal end
  // pays for it with strictly larger latency.
  EXPECT_NEAR(front.back().latency, eval.optimalLatency(), 1e-9);
  EXPECT_GT(front.front().latency, front.back().latency);
  EXPECT_LT(front.front().period, front.back().period);
}

}  // namespace
}  // namespace pipesched
