// The zero-copy ingestion path: BlockLineReader line carving, the in-place
// LiteParser, and — the load-bearing contract — a differential suite driving
// the same corpus through io::parseJson (legacy tree reader) and the fast
// tokenizer, asserting bit-identical values and identical error
// classification, both at the raw-JSON level and end to end through
// stream::JsonlSource in its kFast and kLegacy modes.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "pipesched/io/format.hpp"
#include "pipesched/io/json.hpp"
#include "pipesched/io/json_reader.hpp"
#include "pipesched/io/jsonl_fast.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/obs/trace.hpp"
#include "pipesched/service/fingerprint.hpp"
#include "pipesched/stream/source.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::io {
namespace {

std::vector<std::string> drainLines(BlockLineReader& reader) {
  std::vector<std::string> lines;
  while (std::optional<MutableLine> line = reader.next()) {
    EXPECT_EQ(line->data[line->size], '\0');  // the NUL contract
    lines.emplace_back(line->data, line->size);
  }
  return lines;
}

TEST(BlockLineReader, SplitsLinesAndDropsNewlines) {
  std::istringstream in("alpha\nbb\nccc\n");
  BlockLineReader reader(in);
  EXPECT_EQ(drainLines(reader),
            (std::vector<std::string>{"alpha", "bb", "ccc"}));
}

TEST(BlockLineReader, FinalLineWithoutTrailingNewline) {
  std::istringstream in("one\ntwo");
  BlockLineReader reader(in);
  EXPECT_EQ(drainLines(reader), (std::vector<std::string>{"one", "two"}));
}

TEST(BlockLineReader, KeepsCarriageReturnLikeGetline) {
  std::istringstream in("a\r\nb\r\n");
  BlockLineReader reader(in);
  EXPECT_EQ(drainLines(reader), (std::vector<std::string>{"a\r", "b\r"}));
}

TEST(BlockLineReader, EmptyAndBlankLines) {
  std::istringstream in("\n\nx\n\n");
  BlockLineReader reader(in);
  EXPECT_EQ(drainLines(reader), (std::vector<std::string>{"", "", "x", ""}));
}

TEST(BlockLineReader, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  BlockLineReader reader(in);
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_EQ(reader.next(), std::nullopt);  // stays at end
}

TEST(BlockLineReader, LinesLongerThanTheBlockGrowTheBuffer) {
  const std::string longLine(1000, 'x');
  std::istringstream in(longLine + "\nshort\n" + longLine);
  BlockLineReader reader(in, /*blockSize=*/16);
  EXPECT_EQ(drainLines(reader),
            (std::vector<std::string>{longLine, "short", longLine}));
}

TEST(BlockLineReader, ManyLinesRecycleTheBufferWithoutRescan) {
  std::string input;
  std::vector<std::string> expected;
  for (int i = 0; i < 500; ++i) {
    expected.push_back("line-" + std::to_string(i));
    input += expected.back();
    input += '\n';
  }
  std::istringstream in(input);
  BlockLineReader reader(in, /*blockSize=*/32);  // forces many compactions
  EXPECT_EQ(drainLines(reader), expected);
}

TEST(BlockLineReader, MatchesGetlineOnRandomizedStreams) {
  std::mt19937 rng(20070628);
  for (int round = 0; round < 50; ++round) {
    std::string input;
    const int pieces = static_cast<int>(rng() % 40);
    for (int i = 0; i < pieces; ++i) {
      const std::size_t len = rng() % 70;
      for (std::size_t j = 0; j < len; ++j) {
        input += static_cast<char>('a' + rng() % 26);
      }
      if (rng() % 4 != 0) input += '\n';
    }
    std::vector<std::string> viaGetline;
    {
      std::istringstream in(input);
      std::string line;
      while (std::getline(in, line)) viaGetline.push_back(line);
    }
    std::istringstream in(input);
    BlockLineReader reader(in, /*blockSize=*/1 + rng() % 64);
    EXPECT_EQ(drainLines(reader), viaGetline) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// LiteParser unit behavior.
// ---------------------------------------------------------------------------

/// Parses `text` through a fresh LiteParser over a mutable copy. The copy is
/// returned alongside so the borrowed views stay valid while a test looks.
struct LiteRun {
  std::string buffer;
  LiteParser parser;
  const LiteDocument* doc = nullptr;

  explicit LiteRun(std::string text) : buffer(std::move(text)) {
    doc = &parser.parse(buffer.data(), buffer.size());
  }
};

TEST(LiteParser, ParsesTopLevelObjectScalars) {
  LiteRun run(R"({"a": 1, "b": "x", "c": true, "d": null, "e": -2.5e2})");
  ASSERT_TRUE(run.doc->isObject());
  ASSERT_EQ(run.doc->members.size(), 5u);
  EXPECT_EQ(run.doc->members[0].name, "a");
  EXPECT_EQ(run.doc->find("a")->asNumber(), 1.0);
  EXPECT_EQ(run.doc->find("b")->asString(), "x");
  EXPECT_TRUE(run.doc->find("c")->asBool());
  EXPECT_TRUE(run.doc->find("d")->isNull());
  EXPECT_EQ(run.doc->find("e")->asNumber(), -250.0);
  EXPECT_EQ(run.doc->find("absent"), nullptr);
}

TEST(LiteParser, DecodesEscapesInPlace) {
  LiteRun run(R"({"k": "a\"b\\c\/d\n\t\u0041\u00e9\u20ac\ud83d\ude00"})");
  EXPECT_EQ(run.doc->find("k")->asString(),
            "a\"b\\c/d\n\tA\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(LiteParser, NestedContainersAreValidatedButTypeOnly) {
  LiteRun run(R"({"arr": [1, {"x": 2}, []], "obj": {"y": [3], "z": "s"}})");
  ASSERT_EQ(run.doc->members.size(), 2u);
  EXPECT_TRUE(run.doc->find("arr")->isArray());
  EXPECT_TRUE(run.doc->find("obj")->isObject());
  // Accessing a container as a scalar throws the tree reader's type error.
  EXPECT_THROW((void)run.doc->find("arr")->asNumber(), std::runtime_error);
}

TEST(LiteParser, NonObjectRootsParseWithoutMembers) {
  EXPECT_TRUE(LiteRun("42").doc->root.isNumber());
  EXPECT_TRUE(LiteRun("\"s\"").doc->root.isString());
  EXPECT_TRUE(LiteRun("[1, 2]").doc->root.isArray());
  EXPECT_TRUE(LiteRun("null").doc->root.isNull());
  LiteRun arr("[1, 2]");
  EXPECT_TRUE(arr.doc->members.empty());
  EXPECT_EQ(arr.doc->find("a"), nullptr);  // non-object find contract
}

TEST(LiteParser, ArenaIsRecycledAcrossLines) {
  LiteParser parser;
  std::string first(R"({"a": 1, "b": 2})");
  const LiteDocument& d1 = parser.parse(first.data(), first.size());
  EXPECT_EQ(d1.members.size(), 2u);
  std::string second(R"({"only": "x"})");
  const LiteDocument& d2 = parser.parse(second.data(), second.size());
  ASSERT_EQ(d2.members.size(), 1u);
  EXPECT_EQ(d2.find("only")->asString(), "x");
}

// ---------------------------------------------------------------------------
// Differential: LiteParser vs io::parseJson over one line of JSON text.
// Success must agree value for value (numbers bit-identical); failure must
// agree on the exact error message.
// ---------------------------------------------------------------------------

struct ParseOutcome {
  bool ok = false;
  std::string error;
};

ParseOutcome legacyOutcome(const std::string& line, JsonValue& out) {
  try {
    out = parseJson(line);
    return {true, {}};
  } catch (const std::exception& e) {
    return {false, e.what()};
  }
}

ParseOutcome fastOutcome(LiteRun*& run, const std::string& line) {
  try {
    run = new LiteRun(line);
    return {true, {}};
  } catch (const std::exception& e) {
    return {false, e.what()};
  }
}

bool bitsEqual(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

void expectSameValue(const JsonValue& legacy, const LiteValue& fast,
                     const std::string& context) {
  EXPECT_EQ(static_cast<int>(legacy.type), static_cast<int>(fast.type)) << context;
  switch (legacy.type) {
    case JsonValue::Type::kBool:
      EXPECT_EQ(legacy.boolean, fast.boolean) << context;
      break;
    case JsonValue::Type::kNumber:
      EXPECT_TRUE(bitsEqual(legacy.number, fast.number))
          << context << ": " << legacy.number << " vs " << fast.number;
      break;
    case JsonValue::Type::kString:
      EXPECT_EQ(legacy.text, fast.text()) << context;
      break;
    default:
      break;  // null: nothing else to compare; containers: type-only by design
  }
}

void expectDifferentialMatch(const std::string& line) {
  const std::string context = "input: " + line;
  JsonValue legacy;
  const ParseOutcome lo = legacyOutcome(line, legacy);
  LiteRun* run = nullptr;
  const ParseOutcome fo = fastOutcome(run, line);
  EXPECT_EQ(lo.ok, fo.ok) << context << "\nlegacy: " << lo.error
                          << "\nfast:   " << fo.error;
  if (lo.ok && fo.ok) {
    expectSameValue(legacy, run->doc->root, context);
    if (legacy.isObject()) {
      ASSERT_EQ(legacy.members.size(), run->doc->members.size()) << context;
      for (std::size_t i = 0; i < legacy.members.size(); ++i) {
        EXPECT_EQ(legacy.members[i].first, run->doc->members[i].name) << context;
        expectSameValue(legacy.members[i].second, run->doc->members[i].value,
                        context + " member " + legacy.members[i].first);
      }
    }
  } else if (!lo.ok && !fo.ok) {
    EXPECT_EQ(lo.error, fo.error) << context;
  }
  delete run;
}

TEST(JsonlFastDifferential, HandCraftedCorpus) {
  const std::vector<std::string> corpus = {
      // Valid scalars and structure.
      "null", "true", "false", "42", "-0", "-3.5e2", "\"hi\"", "  7  ",
      "{}", "[]", "[1, 2, 3]",
      R"({"a": 1, "b": 2})",
      R"({"a": {"deep": [1, {"x": []}]}, "b": [[[]]], "c": "s"})",
      R"({"dup": 1, "dup": 2})",   // legal JSON at this layer; both keep both
      "{\"a\": 1}\r",              // trailing CR from a CRLF line
      "\t {\"a\": 1} \t",
      // Number grammar edges.
      "0", "-0.5", "1e0", "1E+9", "2.25e-3", "1e-310" /* subnormal, valid */,
      "9007199254740991", "9007199254740992", "18446744073709551615",
      "1e999" /* overflow */, "-1e999", "01", "1.", ".5", "1e", "1e+", "-",
      "+1", "0x10", "1..2", "--1", "1e1.5",
      // String grammar and escape edges.
      R"("a\"b\\c\/d\b\f\n\r\t")",
      R"("\u0041")", R"("\u00e9")", R"("\u20ac")", R"("\ud83d\ude00")",
      R"("\ud800")" /* unpaired high */, R"("\ud83d\u0041")" /* bad low */,
      R"("\udc00")" /* lone low */, R"("\uZZZZ")", R"("\u12")", R"("\q")",
      "\"unterminated", "\"ctrl \x01 char\"", "\"\"",
      // Structural errors.
      "", "   ", "{", "[1, 2", "{\"a\" 1}", "{\"a\": }", "{\"a\": 1,}",
      "{1: 2}", "[1 2]", "{\"a\": 1} extra", "42 43", "tru", "falsy", "nul",
      "{\"a\": 1", "[,]", "{,}", "{\"a\":}", "]", "}", ",",
      R"({"a": [1, 2}, "b": 1})", R"({"a": "b)",
  };
  for (const std::string& line : corpus) expectDifferentialMatch(line);
}

TEST(JsonlFastDifferential, RandomizedTokenSoup) {
  // Assembles lines from plausible JSON fragments — some compose into valid
  // documents, most into interestingly broken ones. The fixed seed keeps the
  // suite deterministic; the assertion is only that both parsers agree.
  const std::vector<std::string> fragments = {
      "{", "}", "[", "]", ":", ",", " ", "\t",
      "\"k\"", "\"v\\n\"", "\"\\u0041\"", "\"\\ud83d\\ude00\"", "\"\\ud800\"",
      "1", "-2.5", "1e999", "1e-310", "0", "01", "9007199254740993",
      "true", "false", "null", "tru", "x", "\\",
  };
  std::mt19937 rng(7);
  for (int round = 0; round < 400; ++round) {
    std::string line;
    const std::size_t parts = 1 + rng() % 12;
    for (std::size_t i = 0; i < parts; ++i) {
      line += fragments[rng() % fragments.size()];
    }
    expectDifferentialMatch(line);
  }
}

TEST(JsonlFastDifferential, AccessorErrorsMatchTreeReader) {
  const std::string line = R"({"n": 1.5, "neg": -1, "big": 9007199254740992,
                              "s": "x", "arr": [1]})";
  // (Single physical line in the protocol; embedded newline is JSON
  // whitespace and legal inside a value-free gap only in this unit test.)
  const JsonValue legacy = parseJson(line);
  LiteRun run(line);
  auto message = [](auto&& fn) -> std::string {
    try {
      fn();
      return "";
    } catch (const std::exception& e) {
      return e.what();
    }
  };
  EXPECT_EQ(message([&] { (void)legacy.find("n")->asSize(); }),
            message([&] { (void)run.doc->find("n")->asSize(); }));
  EXPECT_EQ(message([&] { (void)legacy.find("neg")->asSize(); }),
            message([&] { (void)run.doc->find("neg")->asSize(); }));
  EXPECT_EQ(message([&] { (void)legacy.find("big")->asU64(); }),
            message([&] { (void)run.doc->find("big")->asU64(); }));
  EXPECT_EQ(message([&] { (void)legacy.find("s")->asNumber(); }),
            message([&] { (void)run.doc->find("s")->asNumber(); }));
  EXPECT_EQ(message([&] { (void)legacy.find("arr")->asString(); }),
            message([&] { (void)run.doc->find("arr")->asString(); }));
  EXPECT_EQ(message([&] { (void)legacy.find("s")->asBool(); }),
            message([&] { (void)run.doc->find("s")->asBool(); }));
}

// ---------------------------------------------------------------------------
// End-to-end differential: JsonlSource in kFast vs kLegacy mode over the
// same input must yield identical requests (canonical key + name) and
// identical error classification (line number + message).
// ---------------------------------------------------------------------------

struct SourceTrace {
  std::vector<std::string> keys;    ///< canonicalKey per request, in order
  std::vector<std::string> names;
  std::vector<std::pair<std::size_t, std::string>> errors;
  std::size_t linesRead = 0;
};

SourceTrace runSource(const std::string& input, stream::JsonlReader mode,
                      stream::JsonlDefaults defaults = {}) {
  SourceTrace trace;
  std::istringstream in(input);
  stream::JsonlSource source(
      in, defaults,
      [&](std::size_t line, const std::string& message) {
        trace.errors.emplace_back(line, message);
      },
      mode);
  while (std::optional<service::Request> request = source.next()) {
    trace.keys.push_back(service::canonicalKey(*request));
    trace.names.push_back(request->name);
  }
  trace.linesRead = source.linesRead();
  return trace;
}

void expectSourcesAgree(const std::string& input,
                        stream::JsonlDefaults defaults = {}) {
  const SourceTrace fast = runSource(input, stream::JsonlReader::kFast, defaults);
  const SourceTrace legacy = runSource(input, stream::JsonlReader::kLegacy, defaults);
  EXPECT_EQ(fast.keys, legacy.keys);
  EXPECT_EQ(fast.names, legacy.names);
  EXPECT_EQ(fast.errors, legacy.errors);
  EXPECT_EQ(fast.linesRead, legacy.linesRead);
}

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "jsonl_fast_" + std::to_string(::getpid()) + "_" +
         name;
}

/// Renders a {"text": <instance>, ...} line with proper JSON escaping.
std::string inlineTextLine(const Instance& instance, const std::string& name) {
  std::ostringstream text;
  writeInstance(text, instance);
  std::ostringstream line;
  JsonWriter w(line, /*pretty=*/false);
  w.beginObject();
  w.kv("text", text.str());
  if (!name.empty()) w.kv("name", name);
  w.endObject();
  return std::move(line).str();
}

Instance makeInstance(std::uint64_t seed) {
  workload::Rng rng(seed);
  workload::InstancePair pair = workload::randomInstance(
      workload::ExperimentKind::kE1BalancedHomComm, 4, 3, rng);
  return Instance{std::move(pair.pipeline), std::move(pair.platform), ""};
}

TEST(JsonlSourceDifferential, FullProtocolCorpus) {
  const std::string psiPath = tempPath("diff.psi");
  Instance fileInstance = makeInstance(1);
  fileInstance.name = "from-file";
  writeInstanceToFile(psiPath, fileInstance);

  std::vector<std::string> lines = {
      R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 11})",
      "",
      "   \t  ",
      R"({"kind": "E1", "stages": 5, "processors": 3, "points": 7, "range": 1.5, "overlap": true, "name": "custom"})",
      inlineTextLine(makeInstance(2), "inline-a"),
      inlineTextLine(makeInstance(3), ""),  // name falls back to line number
      "{\"file\": \"" + psiPath + "\"}",
      "{\"file\": \"" + tempPath("missing.psi") + "\"}",  // identical error
      R"({"kind": "E3", "stages": 4, "processors": 2})",  // default seed
      // Error lines — every class must classify identically.
      R"({"kind": "E2", "stages": 4, "stages": 8, "processors": 2})",
      R"({"kind": "E2", "stages": 4, "processors": 2, "bogus": 1})",
      R"({"kind": "E9", "stages": 4, "processors": 2})",
      R"({"kind": "E2", "processors": 2})",
      R"({"kind": "E2", "stages": -1, "processors": 2})",
      R"({"kind": "E2", "stages": 2.5, "processors": 2})",
      R"({"kind": "E2", "stages": 9007199254740992, "processors": 2})",
      R"({"kind": "E2", "stages": 1e999, "processors": 2})",
      R"({"kind": 7, "stages": 4, "processors": 2})",
      R"({"text": "garbage that is not an instance"})",
      R"({"text": "x", "seed": 3})",    // generator knob on a text line
      R"({"file": 42})",
      R"({"kind": "E1", "stages": 3, "processors": 2, "overlap": "yes"})",
      R"({})",
      R"({"name": "only"})",
      R"({"kind": "E1", "stages": 3, "processors": 2, "file": "x"})",
      R"([1, 2])",
      R"("just a string")",
      "42",
      "{\"kind\": \"E2\", \"stages\": 4",   // truncated JSON
      R"({"kind": "E2" "stages": 4})",
      R"({"name": "\ud800"})",              // unpaired surrogate
      R"({"name": "\ud83d\ude00", "kind": "E1", "stages": 3, "processors": 2})",
      "not json at all",
      R"({"kind": "E2", "stages": 4, "processors": 2} trailing)",
      R"({"kind": "E1", "stages": 3, "processors": 2, "seed": 18446744073709551615})",
  };
  std::string byLf;
  for (const std::string& line : lines) byLf += line + "\n";
  expectSourcesAgree(byLf);

  // Same corpus with CRLF endings and a defaults override in play.
  std::string byCrlf;
  for (const std::string& line : lines) byCrlf += line + "\r\n";
  stream::JsonlDefaults defaults;
  defaults.sweep.points = 3;
  defaults.model = core::CommModel::kOverlapped;
  expectSourcesAgree(byCrlf, defaults);

  // Sanity: the corpus actually produced requests and errors.
  const SourceTrace fast = runSource(byLf, stream::JsonlReader::kFast);
  EXPECT_EQ(fast.keys.size(), 7u);
  EXPECT_GE(fast.errors.size(), 20u);
  std::remove(psiPath.c_str());
}

TEST(JsonlSourceDifferential, RandomizedRequestLines) {
  // Random field soup over the protocol's vocabulary: both modes must agree
  // on every line, whatever combination of fields lands.
  const std::vector<std::string> fieldPool = {
      R"("kind": "E1")",      R"("kind": "E4")",     R"("kind": "bad")",
      R"("stages": 4)",       R"("stages": 0)",      R"("stages": 4.5)",
      R"("processors": 3)",   R"("processors": -2)", R"("seed": 99)",
      R"("points": 5)",       R"("points": 1e999)",  R"("range": 2.5)",
      R"("range": "wide")",   R"("overlap": true)",  R"("overlap": null)",
      R"("name": "n")",       R"("name": "\u00e9")", R"("file": "/no/such")",
      R"("text": "bad")",     R"("junk": 1)",        R"("stages": 4)",
  };
  std::mt19937 rng(13);
  std::string input;
  for (int i = 0; i < 200; ++i) {
    std::string line = "{";
    const std::size_t fields = rng() % 6;
    for (std::size_t f = 0; f < fields; ++f) {
      if (f != 0) line += ", ";
      line += fieldPool[rng() % fieldPool.size()];
    }
    line += "}";
    input += line + "\n";
  }
  expectSourcesAgree(input);
}

TEST(JsonlSourceDifferential, DuplicateKeysAreRejectedByBothReaders) {
  const std::string input =
      R"({"kind": "E2", "stages": 4, "stages": 8, "processors": 2})"
      "\n"
      R"({"kind": "E1", "kind": "E1", "stages": 3, "processors": 2})"
      "\n";
  for (const stream::JsonlReader mode :
       {stream::JsonlReader::kFast, stream::JsonlReader::kLegacy}) {
    const SourceTrace trace = runSource(input, mode);
    EXPECT_TRUE(trace.keys.empty());
    ASSERT_EQ(trace.errors.size(), 2u);
    EXPECT_EQ(trace.errors[0],
              (std::pair<std::size_t, std::string>(1, "duplicate field 'stages'")));
    EXPECT_EQ(trace.errors[1],
              (std::pair<std::size_t, std::string>(2, "duplicate field 'kind'")));
  }
}

TEST(JsonlSourceDifferential, WithoutHandlerBothReadersThrowTheSameError) {
  for (const stream::JsonlReader mode :
       {stream::JsonlReader::kFast, stream::JsonlReader::kLegacy}) {
    std::istringstream in("\n{\"stages\": 4, \"stages\": 8}\n");
    stream::JsonlSource source(in, {}, /*onError=*/{}, mode);
    try {
      (void)source.next();
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_STREQ(e.what(), "line 2: duplicate field 'stages'");
    }
  }
}

TEST(JsonlSourceDifferential, ErroredLinesFeedParseMetrics) {
  obs::ScopedMetricsEnabled metrics(true);
  obs::Counter& errors = obs::registry().counter(obs::names::kParseErrors);
  obs::Histogram& parse = obs::stageHistogram(obs::Stage::kParse);
  for (const stream::JsonlReader mode :
       {stream::JsonlReader::kFast, stream::JsonlReader::kLegacy}) {
    const std::uint64_t errorsBefore = errors.value();
    const std::uint64_t parsedBefore = parse.snapshot().count;
    const std::string input =
        R"({"kind": "E1", "stages": 3, "processors": 2})"
        "\nnot json\n"
        R"({"bogus": true})"
        "\n";
    const SourceTrace trace = runSource(input, mode);
    EXPECT_EQ(trace.keys.size(), 1u);
    EXPECT_EQ(trace.errors.size(), 2u);
    EXPECT_EQ(errors.value() - errorsBefore, 2u);
    // All three lines' wall time lands in stage.parse — errored lines
    // included, so a dirty corpus cannot flatter the parse percentiles.
    EXPECT_EQ(parse.snapshot().count - parsedBefore, 3u);
  }
}

// ---------------------------------------------------------------------------
// StringOutStream: the reused emit buffer behind sinks and net rendering.
// ---------------------------------------------------------------------------

TEST(StringOutStream, MatchesOstringstreamByteForByte) {
  std::string buffer;
  StringOutStream out(buffer);
  std::ostringstream reference;
  for (std::ostream* os : {static_cast<std::ostream*>(&out),
                           static_cast<std::ostream*>(&reference)}) {
    JsonWriter w(*os, /*pretty=*/false);
    w.beginObject();
    w.kv("name", "x\"y\\z\n");
    w.kv("value", 2.5);
    w.key("arr").beginArray().value(1.0).value(2.0).endArray();
    w.endObject();
  }
  EXPECT_EQ(buffer, reference.str());
}

TEST(StringOutStream, ReusedBufferKeepsCapacityAcrossLines) {
  std::string buffer;
  buffer.reserve(256);
  const std::size_t reserved = buffer.capacity();
  for (int i = 0; i < 10; ++i) {
    buffer.clear();
    StringOutStream out(buffer);
    out << "line " << i << " with some payload text";
    EXPECT_EQ(buffer, "line " + std::to_string(i) + " with some payload text");
    EXPECT_GE(buffer.capacity(), reserved);  // clear() never releases
  }
}

}  // namespace
}  // namespace pipesched::io
