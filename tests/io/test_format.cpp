// Text-format serialization: canonical writes, round-trips (including
// randomized property sweeps), tolerant parsing (comments, wrapping, blank
// lines) and precise error reporting for every malformed-input class.
#include <gtest/gtest.h>

#include <sstream>

#include "pipesched/io/format.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::io {
namespace {

using core::IntervalMapping;
using core::Pipeline;
using core::Platform;
using workload::ExperimentKind;
using workload::Rng;

Instance sampleInstance() {
  return Instance{Pipeline({2, 4, 6}, {1, 2, 3, 4}), Platform({5, 1, 3}, 10), "sample"};
}

TEST(InstanceFormat, CanonicalWriteRoundTrips) {
  const Instance original = sampleInstance();
  std::ostringstream out;
  writeInstance(out, original);
  const Instance back = readInstanceFromString(out.str());
  EXPECT_EQ(back.name, "sample");
  EXPECT_EQ(back.pipeline, original.pipeline);
  EXPECT_EQ(back.platform.speeds(), original.platform.speeds());
  EXPECT_DOUBLE_EQ(back.platform.bandwidth(), original.platform.bandwidth());
}

TEST(InstanceFormat, HeterogeneousPlatformRoundTrips) {
  const auto plat = Platform::fullyHeterogeneous(
      {2, 4}, {1, 7, 9, 1}, {5, 6}, {7, 8});
  const Instance original{Pipeline({1, 2}, {0, 1, 0}), plat, ""};
  std::ostringstream out;
  writeInstance(out, original);
  const Instance back = readInstanceFromString(out.str());
  ASSERT_FALSE(back.platform.isCommHomogeneous());
  EXPECT_DOUBLE_EQ(back.platform.bandwidth(0, 1), 7);
  EXPECT_DOUBLE_EQ(back.platform.bandwidth(1, 0), 9);
  EXPECT_DOUBLE_EQ(back.platform.inputBandwidth(1), 6);
  EXPECT_DOUBLE_EQ(back.platform.outputBandwidth(0), 7);
}

TEST(InstanceFormat, ParsesCommentsBlankLinesAndWrapping) {
  const Instance inst = readInstanceFromString(R"(
# a header comment
pipesched-instance v1

stages 3
work 2 4     # trailing comment
  6
comm 1 2
     3 4
processors 2
speeds 5 1
bandwidth 10
)");
  EXPECT_EQ(inst.pipeline.stageCount(), 3u);
  EXPECT_DOUBLE_EQ(inst.pipeline.work(2), 6);
  EXPECT_DOUBLE_EQ(inst.pipeline.comm(3), 4);
  EXPECT_TRUE(inst.name.empty());
}

TEST(InstanceFormat, NameCapturesRestOfLineWithoutComment) {
  const Instance inst = readInstanceFromString(
      "pipesched-instance v1\n"
      "name  video pipeline (lab)  # not part of the name\n"
      "stages 1\nwork 1\ncomm 0 0\nprocessors 1\nspeeds 1\nbandwidth 1\n");
  EXPECT_EQ(inst.name, "video pipeline (lab)");
}

TEST(InstanceFormat, KeywordOrderIsFreeApartFromCountDependencies) {
  const Instance inst = readInstanceFromString(
      "pipesched-instance v1\n"
      "processors 2\nspeeds 3 4\nbandwidth 2\n"
      "stages 2\nwork 1 1\ncomm 0 1 0\n");
  EXPECT_EQ(inst.platform.processorCount(), 2u);
  EXPECT_EQ(inst.pipeline.stageCount(), 2u);
}

struct BadCase {
  const char* label;
  const char* text;
  const char* needle;  ///< substring expected in the error message
};

class InstanceFormatErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(InstanceFormatErrors, ReportsTheProblem) {
  const BadCase& c = GetParam();
  try {
    (void)readInstanceFromString(c.text);
    FAIL() << "expected ParseError for " << c.label;
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
        << "message was: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, InstanceFormatErrors,
    ::testing::Values(
        BadCase{"EmptyInput", "", "unexpected end of input"},
        BadCase{"WrongMagic", "pipesched-mapping v1\n", "expected header"},
        BadCase{"WrongVersion", "pipesched-instance v2\n", "unsupported"},
        BadCase{"UnknownKeyword",
                "pipesched-instance v1\nfrobnicate 3\n", "unknown keyword"},
        BadCase{"WorkBeforeStages",
                "pipesched-instance v1\nwork 1\n", "'work' must come after"},
        BadCase{"NonNumericWork",
                "pipesched-instance v1\nstages 1\nwork banana\n", "expected a number"},
        BadCase{"TrailingGarbageNumber",
                "pipesched-instance v1\nstages 1\nwork 1.5x\n", "trailing garbage"},
        BadCase{"FractionalStages",
                "pipesched-instance v1\nstages 1.5\n", "non-negative integer"},
        BadCase{"ZeroStages", "pipesched-instance v1\nstages 0\n", "stages must be >= 1"},
        BadCase{"TruncatedWork",
                "pipesched-instance v1\nstages 3\nwork 1 2\ncomm 0 0 0 0\n",
                "expected a number"},
        BadCase{"DuplicateStages",
                "pipesched-instance v1\nstages 1\nstages 1\n", "duplicate 'stages'"},
        BadCase{"MissingBandwidth",
                "pipesched-instance v1\nstages 1\nwork 1\ncomm 0 0\n"
                "processors 1\nspeeds 1\n",
                "missing 'bandwidth'"},
        BadCase{"BandwidthAndLinks",
                "pipesched-instance v1\nstages 1\nwork 1\ncomm 0 0\n"
                "processors 1\nspeeds 1\nbandwidth 1\nlinks 1\n"
                "input-bandwidth 1\noutput-bandwidth 1\n",
                "exclusive"},
        BadCase{"IncompleteHeteroBlock",
                "pipesched-instance v1\nstages 1\nwork 1\ncomm 0 0\n"
                "processors 1\nspeeds 1\nlinks 1\n",
                "together"}),
    [](const auto& paramInfo) { return paramInfo.param.label; });

TEST(InstanceFormat, ParseErrorCarriesLineNumber) {
  try {
    (void)readInstanceFromString(
        "pipesched-instance v1\n"
        "stages 2\n"
        "work 1 oops\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(InstanceFormat, ModelInvariantsStillEnforced) {
  // Zero work violates the Pipeline invariant — surfaced as ModelError, not
  // swallowed by the parser.
  EXPECT_THROW((void)readInstanceFromString(
                   "pipesched-instance v1\nstages 1\nwork 0\ncomm 0 0\n"
                   "processors 1\nspeeds 1\nbandwidth 1\n"),
               ModelError);
}

TEST(InstanceFormat, RandomInstancesRoundTripExactly) {
  Rng rng(42);
  for (const ExperimentKind kind :
       {ExperimentKind::kE1BalancedHomComm, ExperimentKind::kE2BalancedHetComm,
        ExperimentKind::kE3LargeComputations, ExperimentKind::kE4SmallComputations}) {
    for (int round = 0; round < 4; ++round) {
      const auto pair = workload::randomInstance(kind, 5 + round * 7, 3 + round, rng);
      const Instance original{pair.pipeline, pair.platform, "rt"};
      std::ostringstream out;
      writeInstance(out, original);
      const Instance back = readInstanceFromString(out.str());
      EXPECT_EQ(back.pipeline, original.pipeline);
      EXPECT_EQ(back.platform.speeds(), original.platform.speeds());
    }
  }
}

TEST(InstanceFormat, RandomlyCorruptedInputNeverCrashes) {
  // Fuzz-ish robustness: token-level mutations of a canonical file must
  // either parse (benign mutation) or raise one of the library's typed
  // exceptions — never crash or hang.
  std::ostringstream canonical;
  writeInstance(canonical, sampleInstance());
  const std::string base = canonical.str();

  std::vector<std::string> tokens;
  {
    std::istringstream split(base);
    std::string token;
    while (split >> token) tokens.push_back(token);
  }
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> mutated = tokens;
    const auto pos = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
    switch (rng.uniformInt(0, 3)) {
      case 0: mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(pos)); break;
      case 1: mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(pos),
                             mutated[pos]); break;
      case 2: mutated[pos] = "garbage"; break;
      default: mutated[pos] = "-1"; break;
    }
    std::string text;
    for (const std::string& token : mutated) text += token + " ";
    try {
      (void)readInstanceFromString(text);
    } catch (const ParseError&) {
    } catch (const ModelError&) {
    }
  }
}

TEST(InstanceFormat, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/pipesched_io_instance.txt";
  writeInstanceToFile(path, sampleInstance());
  const Instance back = readInstanceFromFile(path);
  EXPECT_EQ(back.pipeline, sampleInstance().pipeline);
  EXPECT_THROW((void)readInstanceFromFile(path + ".does-not-exist"), std::runtime_error);
}

TEST(MappingFormat, CanonicalWriteRoundTrips) {
  const auto mapping = IntervalMapping::fromCuts(6, {1, 3, 5}, {2, 0, 4});
  std::ostringstream out;
  writeMapping(out, mapping);
  const auto back = readMappingFromString(out.str());
  EXPECT_EQ(back, mapping);
}

TEST(MappingFormat, ExpectedStageCountIsChecked) {
  const auto mapping = IntervalMapping::fromCuts(4, {3}, {0});
  std::ostringstream out;
  writeMapping(out, mapping);
  EXPECT_NO_THROW((void)readMappingFromString(out.str(), 4));
  EXPECT_THROW((void)readMappingFromString(out.str(), 5), ParseError);
}

TEST(MappingFormat, DeclaredCountsMustMatch) {
  EXPECT_THROW((void)readMappingFromString(
                   "pipesched-mapping v1\nstages 2\nintervals 2\ninterval 0 1 0\n"),
               ParseError);
  EXPECT_THROW((void)readMappingFromString(
                   "pipesched-mapping v1\nstages 5\nintervals 1\ninterval 0 1 0\n"),
               ParseError);
}

TEST(MappingFormat, RejectsBackwardInterval) {
  EXPECT_THROW((void)readMappingFromString(
                   "pipesched-mapping v1\nstages 2\nintervals 1\ninterval 1 0 0\n"),
               ParseError);
}

TEST(MappingFormat, RejectsNonContiguousIntervals) {
  // The ordering invariant is enforced by IntervalMapping's constructor.
  EXPECT_THROW((void)readMappingFromString(
                   "pipesched-mapping v1\nstages 4\nintervals 2\n"
                   "interval 0 1 0\ninterval 3 3 1\n"),
               MappingError);
}

TEST(MappingFormat, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pipesched_io_mapping.txt";
  const auto mapping = IntervalMapping::fromCuts(3, {0, 2}, {1, 0});
  writeMappingToFile(path, mapping);
  EXPECT_EQ(readMappingFromFile(path, 3), mapping);
}

TEST(DealMappingFormat, CanonicalWriteRoundTrips) {
  const core::ReplicatedMapping mapping({core::ReplicatedAssignment{{0, 1}, {2}},
                                         core::ReplicatedAssignment{{2, 4}, {0, 3, 5}}});
  std::ostringstream out;
  writeReplicatedMapping(out, mapping);
  const auto back = readReplicatedMappingFromString(out.str());
  EXPECT_EQ(back, mapping);
  EXPECT_NE(out.str().find("interval 2 4 0,3,5"), std::string::npos) << out.str();
}

TEST(DealMappingFormat, ExpectedStagesAndCoverageChecked) {
  const core::ReplicatedMapping mapping({core::ReplicatedAssignment{{0, 2}, {1, 4}}});
  std::ostringstream out;
  writeReplicatedMapping(out, mapping);
  EXPECT_NO_THROW((void)readReplicatedMappingFromString(out.str(), 3));
  EXPECT_THROW((void)readReplicatedMappingFromString(out.str(), 4), ParseError);
  // Declared stage count inconsistent with the interval coverage.
  EXPECT_THROW((void)readReplicatedMappingFromString(
                   "pipesched-deal-mapping v1\nstages 5\nintervals 1\ninterval 0 2 1\n"),
               ParseError);
}

TEST(DealMappingFormat, RejectsMalformedReplicaLists) {
  const char* base = "pipesched-deal-mapping v1\nstages 3\nintervals 1\n";
  EXPECT_THROW(
      (void)readReplicatedMappingFromString(std::string(base) + "interval 0 2 1,x\n"),
      ParseError);
  EXPECT_THROW(
      (void)readReplicatedMappingFromString(std::string(base) + "interval 0 2 1,,2\n"),
      ParseError);
  EXPECT_THROW((void)readReplicatedMappingFromString(std::string(base) + "interval 2 0 1\n"),
               ParseError);
}

TEST(DealMappingFormat, WrongHeaderIsRejectedBothWays) {
  // A deal file is not a plain mapping and vice versa.
  EXPECT_THROW((void)readMappingFromString("pipesched-deal-mapping v1\nstages 1\n"),
               ParseError);
  EXPECT_THROW((void)readReplicatedMappingFromString("pipesched-mapping v1\nstages 1\n"),
               ParseError);
}

TEST(DealMappingFormat, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pipesched_io_deal.txt";
  const core::ReplicatedMapping mapping({core::ReplicatedAssignment{{0, 0}, {0, 1}},
                                         core::ReplicatedAssignment{{1, 1}, {2}}});
  writeReplicatedMappingToFile(path, mapping);
  EXPECT_EQ(readReplicatedMappingFromFile(path, 2), mapping);
}

}  // namespace
}  // namespace pipesched::io
