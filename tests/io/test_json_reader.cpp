// The JSON reader: scalars, nesting, string escapes (incl. \uXXXX and
// surrogate pairs), number grammar, checked accessors, and error reporting
// with line numbers.
#include <gtest/gtest.h>

#include <string>

#include "pipesched/io/json_reader.hpp"

namespace pipesched::io {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_TRUE(parseJson("true").asBool());
  EXPECT_FALSE(parseJson("false").asBool());
  EXPECT_EQ(parseJson("42").asNumber(), 42.0);
  EXPECT_EQ(parseJson("-3.5e2").asNumber(), -350.0);
  EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
  EXPECT_EQ(parseJson("  7  ").asNumber(), 7.0);  // surrounding whitespace ok
}

TEST(JsonReader, ParsesNestedContainers) {
  const JsonValue v = parseJson(
      R"({"name": "x", "sizes": [1, 2, 3], "inner": {"flag": true, "none": null}})");
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("name")->asString(), "x");
  ASSERT_TRUE(v.find("sizes")->isArray());
  ASSERT_EQ(v.find("sizes")->items.size(), 3u);
  EXPECT_EQ(v.find("sizes")->items[2].asSize(), 3u);
  EXPECT_TRUE(v.find("inner")->find("flag")->asBool());
  EXPECT_TRUE(v.find("inner")->find("none")->isNull());
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_TRUE(parseJson("{}").isObject());
  EXPECT_TRUE(parseJson("[]").isArray());
}

TEST(JsonReader, MembersKeepInputOrderAndFirstMatchWins) {
  const JsonValue v = parseJson(R"({"a": 1, "b": 2, "a": 3})");
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "a");
  EXPECT_EQ(v.find("a")->asNumber(), 1.0);  // first match
}

TEST(JsonReader, DecodesEscapes) {
  EXPECT_EQ(parseJson(R"("a\"b\\c\/d\n\t")").asString(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parseJson(R"("\u0041")").asString(), "A");
  EXPECT_EQ(parseJson(R"("\u00e9")").asString(), "\xc3\xa9");          // é, 2-byte UTF-8
  EXPECT_EQ(parseJson(R"("\u20ac")").asString(), "\xe2\x82\xac");      // €, 3-byte
  EXPECT_EQ(parseJson(R"("\ud83d\ude00")").asString(), "\xf0\x9f\x98\x80");  // 😀, pair
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW((void)parseJson(""), ParseError);
  EXPECT_THROW((void)parseJson("{"), ParseError);
  EXPECT_THROW((void)parseJson("[1, 2"), ParseError);
  EXPECT_THROW((void)parseJson("\"unterminated"), ParseError);
  EXPECT_THROW((void)parseJson("{\"a\" 1}"), ParseError);
  EXPECT_THROW((void)parseJson("tru"), ParseError);
  EXPECT_THROW((void)parseJson("01x"), ParseError);
  EXPECT_THROW((void)parseJson("1 2"), ParseError);       // trailing token
  EXPECT_THROW((void)parseJson("\"\\ud800x\""), ParseError);  // unpaired surrogate
  EXPECT_THROW((void)parseJson("nan"), ParseError);
}

TEST(JsonReader, ErrorsCarryTheLineNumber) {
  try {
    (void)parseJson("{\n  \"a\": 1,\n  oops\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(JsonReader, CheckedAccessorsRejectWrongTypes) {
  const JsonValue v = parseJson(R"({"s": "x", "n": 1.5, "i": 3, "neg": -1})");
  EXPECT_THROW((void)v.find("s")->asNumber(), std::runtime_error);
  EXPECT_THROW((void)v.find("n")->asBool(), std::runtime_error);
  EXPECT_THROW((void)v.find("n")->asSize(), std::runtime_error);    // 1.5 not integral
  EXPECT_THROW((void)v.find("neg")->asSize(), std::runtime_error);  // negative
  EXPECT_EQ(v.find("i")->asSize(), 3u);
  EXPECT_EQ(v.find("i")->asU64(), 3ull);
}

}  // namespace
}  // namespace pipesched::io
