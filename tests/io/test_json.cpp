// JSON writer: structural discipline (balanced containers, keys before
// values), escaping, number formatting, and the shape of the instance and
// mapping emitters.
#include <gtest/gtest.h>

#include <sstream>

#include "pipesched/io/json.hpp"

namespace pipesched::io {
namespace {

using core::IntervalMapping;
using core::Metrics;
using core::Pipeline;
using core::Platform;

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter w(out, /*pretty=*/false);
  body(w);
  EXPECT_TRUE(w.complete());
  return out.str();
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.beginObject().endObject(); }), "{}");
  EXPECT_EQ(compact([](JsonWriter& w) { w.beginArray().endArray(); }), "[]");
}

TEST(JsonWriter, ObjectWithScalars) {
  const std::string text = compact([](JsonWriter& w) {
    w.beginObject();
    w.kv("a", 1);
    w.kv("b", std::string("x"));
    w.kv("c", true);
    w.key("d").null();
    w.endObject();
  });
  EXPECT_EQ(text, R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(JsonWriter, NestedArraysPlaceCommasCorrectly) {
  const std::string text = compact([](JsonWriter& w) {
    w.beginArray();
    w.beginArray().value(1).value(2).endArray();
    w.beginArray().endArray();
    w.value(3);
    w.endArray();
  });
  EXPECT_EQ(text, "[[1,2],[],3]");
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NumbersRoundTripShortest) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(0.1); }), "0.1");
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(3.0); }), "3");
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(1.0 / 3.0); }), "0.3333333333333333");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(kInfinity); }), "null");
  EXPECT_EQ(compact([](JsonWriter& w) { w.value(std::nan("")); }), "null");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream out;
  {
    JsonWriter w(out);
    w.beginObject();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w(out);
    w.beginArray();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w(out);
    w.beginObject();
    EXPECT_THROW(w.endArray(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w(out);
    w.value(1);
    EXPECT_THROW(w.value(2), std::logic_error);  // two roots
  }
  {
    JsonWriter w(out);
    w.beginObject().key("dangling");
    EXPECT_THROW(w.endObject(), std::logic_error);  // key without value
  }
}

TEST(JsonWriter, PrettyPrintingIndents) {
  std::ostringstream out;
  JsonWriter w(out, /*pretty=*/true);
  w.beginObject().kv("a", 1).endObject();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonEmitters, InstanceShape) {
  std::ostringstream out;
  writeInstanceJson(out, Pipeline({1, 2}, {0, 5, 0}), Platform({3, 4}, 10), "demo",
                    /*pretty=*/false);
  EXPECT_EQ(out.str(),
            R"({"name":"demo","pipeline":{"stages":2,"work":[1,2],"comm":[0,5,0]},)"
            R"("platform":{"processors":2,"speeds":[3,4],"commHomogeneous":true,)"
            R"("bandwidth":10}})"
            "\n");
}

TEST(JsonEmitters, HeterogeneousPlatformEmitsLinkMatrix) {
  std::ostringstream out;
  const auto plat = Platform::fullyHeterogeneous({1, 2}, {1, 3, 4, 1}, {5, 6}, {7, 8});
  writeInstanceJson(out, Pipeline({1}, {0, 0}), plat, "", /*pretty=*/false);
  const std::string text = out.str();
  EXPECT_NE(text.find(R"("links":[[0,3],[4,0]])"), std::string::npos) << text;
  EXPECT_NE(text.find(R"("inputBandwidth":[5,6])"), std::string::npos) << text;
}

TEST(JsonEmitters, MappingWithAndWithoutMetrics) {
  const auto mapping = IntervalMapping::fromCuts(3, {1, 2}, {1, 0});
  std::ostringstream bare;
  writeMappingJson(bare, mapping, nullptr, /*pretty=*/false);
  EXPECT_EQ(bare.str(),
            R"({"stages":3,"intervals":[{"first":0,"last":1,"processor":1},)"
            R"({"first":2,"last":2,"processor":0}]})"
            "\n");

  Metrics m;
  m.period = 2.5;
  m.latency = 7;
  m.bottleneckInterval = 1;
  std::ostringstream with;
  writeMappingJson(with, mapping, &m, /*pretty=*/false);
  EXPECT_NE(with.str().find(R"("metrics":{"period":2.5,"latency":7,"bottleneckInterval":1})"),
            std::string::npos)
      << with.str();
}

}  // namespace
}  // namespace pipesched::io
