// Tests of the thread-based skeleton executor: functional correctness
// (ordering, counts) with deliberately loose timing assertions so the suite
// stays robust on loaded CI machines.
#include <gtest/gtest.h>

#include <thread>

#include "pipesched/heuristics/heuristics.hpp"
#include "pipesched/runtime/bounded_queue.hpp"
#include "pipesched/runtime/executor.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::runtime {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_THROW(q.push(8), ModelError);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), ModelError);
}

TEST(BoundedQueue, BlockingPushWakesOnPop) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::thread producer([&] { q.push(2); });  // blocks until the pop below
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  producer.join();
}

TEST(Executor, ProcessesEveryDatasetInOrder) {
  const core::Pipeline pipe({2, 3, 1}, {1, 1, 1, 1});
  const core::Platform plat({4, 2, 1}, 10);
  const core::Evaluator eval(pipe, plat);
  const auto mapping = core::IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  ExecConfig config;
  config.datasetCount = 40;
  config.timeScale = 5e-6;  // keep the test fast
  const ExecReport r = executeMapping(eval, mapping, config);
  EXPECT_EQ(r.processedCount, 40u);
  EXPECT_TRUE(r.outputsInOrder);
  EXPECT_EQ(r.completionSeconds.size(), 40u);
  for (std::size_t k = 1; k < r.completionSeconds.size(); ++k) {
    EXPECT_GE(r.completionSeconds[k], r.completionSeconds[k - 1]);
  }
}

TEST(Executor, SingleIntervalWorks) {
  const core::Pipeline pipe({2, 3}, {1, 1, 1});
  const core::Platform plat({4}, 10);
  const core::Evaluator eval(pipe, plat);
  ExecConfig config;
  config.datasetCount = 10;
  config.timeScale = 5e-6;
  const ExecReport r =
      executeMapping(eval, core::IntervalMapping::singleInterval(2, 0), config);
  EXPECT_EQ(r.processedCount, 10u);
  EXPECT_TRUE(r.outputsInOrder);
}

TEST(Executor, ThroughputIsInTheRightBallpark) {
  // The measured steady period must be at least the model period (physics)
  // and not absurdly larger (sanity); generous bounds keep this stable.
  const workload::Scenario scenario = workload::imageProcessingScenario();
  const core::Platform plat = workload::labCluster();
  const core::Evaluator eval(scenario.pipeline, plat);
  const auto mapping =
      heuristics::spMonoP(eval, eval.period(eval.optimalLatencyMapping()) * 0.7).mapping;
  ExecConfig config;
  config.datasetCount = 60;
  config.timeScale = 2e-4;
  const ExecReport r = executeMapping(eval, mapping, config);
  const double predicted = eval.period(mapping);
  ASSERT_GT(r.steadyPeriodModelUnits, 0);
  EXPECT_GT(r.steadyPeriodModelUnits, predicted * 0.5);
  EXPECT_LT(r.steadyPeriodModelUnits, predicted * 20);
}

TEST(Executor, BackpressureDoesNotDeadlock) {
  // Regression: the source used to feed all tokens from the sink-draining
  // thread, which deadlocked once datasetCount exceeded the chain's total
  // queue capacity. Tiny queues + a slow downstream stage maximise
  // backpressure; the run must still complete.
  const core::Pipeline pipe({1, 50}, {1, 1, 1});
  const core::Platform plat({10, 1}, 10);
  const core::Evaluator eval(pipe, plat);
  const auto mapping = core::IntervalMapping::fromCuts(2, {0, 1}, {0, 1});
  ExecConfig config;
  config.datasetCount = 100;
  config.queueCapacity = 1;
  config.timeScale = 2e-6;
  const ExecReport r = executeMapping(eval, mapping, config);
  EXPECT_EQ(r.processedCount, 100u);
  EXPECT_TRUE(r.outputsInOrder);
}

TEST(Executor, ValidatesInputs) {
  const core::Pipeline pipe({2}, {0, 0});
  const core::Platform plat({1}, 1);
  const core::Evaluator eval(pipe, plat);
  ExecConfig config;
  config.datasetCount = 0;
  EXPECT_THROW((void)executeMapping(eval, core::IntervalMapping::singleInterval(1, 0), config),
               ModelError);
  config.datasetCount = 1;
  config.timeScale = 0;
  EXPECT_THROW((void)executeMapping(eval, core::IntervalMapping::singleInterval(1, 0), config),
               ModelError);
}

}  // namespace
}  // namespace pipesched::runtime
