// Branch-and-bound vs exhaustive ground truth on random instances (TEST_P),
// plus bound handling and guards.
#include <gtest/gtest.h>

#include "pipesched/exact/bnb.hpp"
#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::exact {
namespace {

using core::Evaluator;
using workload::ExperimentKind;
using workload::Rng;

struct BnbCase {
  ExperimentKind kind;
  std::size_t n;
  std::size_t p;
  std::uint64_t seed;
};

class BnbVsExhaustive : public ::testing::TestWithParam<BnbCase> {};

TEST_P(BnbVsExhaustive, MinPeriodMatches) {
  const auto [kind, n, p, seed] = GetParam();
  Rng rng(seed);
  const auto inst = workload::randomInstance(kind, n, p, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const auto exact = exhaustiveMinPeriod(eval);
  ASSERT_TRUE(exact.has_value());
  const ExactSolution bnb = bnbMinPeriod(eval);
  EXPECT_NEAR(bnb.metrics.period, exact->metrics.period, 1e-9);
  EXPECT_NO_THROW(bnb.mapping.validate(n, p));
}

TEST_P(BnbVsExhaustive, MinLatencyUnderPeriodBoundMatches) {
  const auto [kind, n, p, seed] = GetParam();
  Rng rng(seed ^ 0x5555);
  const auto inst = workload::randomInstance(kind, n, p, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real minPeriod = exhaustiveMinPeriod(eval)->metrics.period;
  for (Real factor : {1.0, 1.2, 2.0}) {
    const Real bound = minPeriod * factor;
    const auto exact = exhaustiveMinLatency(eval, bound);
    const auto bnb = bnbMinLatencyForPeriod(eval, bound);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(bnb.has_value());
    EXPECT_NEAR(bnb->metrics.latency, exact->metrics.latency, 1e-9) << "factor " << factor;
    EXPECT_LE(bnb->metrics.period, bound + 1e-9);
  }
}

TEST_P(BnbVsExhaustive, MinPeriodUnderLatencyBoundMatches) {
  const auto [kind, n, p, seed] = GetParam();
  Rng rng(seed ^ 0xAAAA);
  const auto inst = workload::randomInstance(kind, n, p, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  for (Real factor : {1.0, 1.3, 2.0}) {
    const Real bound = eval.optimalLatency() * factor;
    const auto exact = exhaustiveMinPeriod(eval, bound);
    const auto bnb = bnbMinPeriodForLatency(eval, bound);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(bnb.has_value());
    EXPECT_NEAR(bnb->metrics.period, exact->metrics.period, 1e-9) << "factor " << factor;
    EXPECT_LE(bnb->metrics.latency, bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BnbVsExhaustive,
    ::testing::Values(BnbCase{ExperimentKind::kE1BalancedHomComm, 5, 3, 301},
                      BnbCase{ExperimentKind::kE1BalancedHomComm, 7, 4, 302},
                      BnbCase{ExperimentKind::kE2BalancedHetComm, 6, 3, 303},
                      BnbCase{ExperimentKind::kE2BalancedHetComm, 8, 4, 304},
                      BnbCase{ExperimentKind::kE3LargeComputations, 7, 4, 305},
                      BnbCase{ExperimentKind::kE4SmallComputations, 7, 4, 306},
                      BnbCase{ExperimentKind::kE4SmallComputations, 9, 3, 307}),
    [](const auto& paramInfo) {
      return workload::experimentName(paramInfo.param.kind) + "_n" + std::to_string(paramInfo.param.n) +
             "_p" + std::to_string(paramInfo.param.p) + "_s" + std::to_string(paramInfo.param.seed);
    });

TEST(Bnb, InfeasibleBoundsReturnNullopt) {
  const core::Pipeline pipe({3, 1}, {2, 1, 3});
  const core::Platform plat({9, 7}, 10);
  const Evaluator eval(pipe, plat);
  EXPECT_FALSE(bnbMinLatencyForPeriod(eval, 1e-9).has_value());
  EXPECT_FALSE(bnbMinPeriodForLatency(eval, eval.optimalLatency() * 0.5).has_value());
}

TEST(Bnb, NodeLimitGuards) {
  workload::Rng rng(4242);
  const auto inst =
      workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 20, 8, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  BnbOptions options;
  options.nodeLimit = 50;
  EXPECT_THROW((void)bnbMinPeriod(eval, options), ModelError);
}

TEST(Bnb, EqualSpeedProcessorsAreMergedWithoutLosingOptimality) {
  // 4 identical processors: the symmetry pruning must not change the optimum.
  const core::Pipeline pipe({5, 3, 8, 2, 6, 4}, {1, 2, 1, 3, 1, 2, 1});
  const core::Platform plat({4, 4, 4, 4}, 5);
  const Evaluator eval(pipe, plat);
  const auto exact = exhaustiveMinPeriod(eval);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(bnbMinPeriod(eval).metrics.period, exact->metrics.period, 1e-9);
}

}  // namespace
}  // namespace pipesched::exact
