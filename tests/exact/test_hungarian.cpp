// Hungarian algorithm vs brute-force assignment enumeration, forbidden pairs,
// rectangular matrices, infeasibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pipesched/exact/hungarian.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::exact {
namespace {

using workload::Rng;

std::optional<Real> bruteForce(const std::vector<std::vector<Real>>& cost) {
  const std::size_t rows = cost.size();
  const std::size_t cols = cost.front().size();
  std::vector<std::size_t> columns(cols);
  std::iota(columns.begin(), columns.end(), std::size_t{0});
  Real best = kInfinity;
  do {
    Real total = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      if (cost[i][columns[i]] == kInfinity) {
        total = kInfinity;
        break;
      }
      total += cost[i][columns[i]];
    }
    best = std::min(best, total);
  } while (std::next_permutation(columns.begin(), columns.end()));
  if (best == kInfinity) return std::nullopt;
  return best;
}

TEST(Hungarian, HandExample) {
  // Classic 3x3: optimal 5 (1+3+1).
  const std::vector<std::vector<Real>> cost = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto result = solveAssignment(cost);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->totalCost, *bruteForce(cost));
}

TEST(Hungarian, EmptyMatrix) {
  const auto result = solveAssignment({});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->totalCost, 0);
  EXPECT_TRUE(result->columnOfRow.empty());
}

TEST(Hungarian, SingleCell) {
  const auto result = solveAssignment({{7}});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->totalCost, 7);
  EXPECT_EQ(result->columnOfRow, (std::vector<std::size_t>{0}));
}

TEST(Hungarian, RejectsMoreRowsThanColumns) {
  EXPECT_THROW((void)solveAssignment({{1}, {2}}), ModelError);
}

TEST(Hungarian, RejectsRaggedMatrix) {
  EXPECT_THROW((void)solveAssignment({{1, 2}, {3}}), ModelError);
}

TEST(Hungarian, RectangularChoosesBestColumns) {
  const std::vector<std::vector<Real>> cost = {{9, 1, 9, 9}, {9, 9, 9, 2}};
  const auto result = solveAssignment(cost);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->totalCost, 3);
  EXPECT_EQ(result->columnOfRow[0], 1u);
  EXPECT_EQ(result->columnOfRow[1], 3u);
}

TEST(Hungarian, ForbiddenPairsAreAvoided) {
  const std::vector<std::vector<Real>> cost = {{kInfinity, 5}, {1, kInfinity}};
  const auto result = solveAssignment(cost);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->totalCost, 6);
  EXPECT_EQ(result->columnOfRow, (std::vector<std::size_t>{1, 0}));
}

TEST(Hungarian, InfeasibleWhenRowFullyForbidden) {
  EXPECT_FALSE(solveAssignment({{kInfinity, kInfinity}, {1, 2}}).has_value());
}

TEST(Hungarian, InfeasibleWhenForbiddenStructureBlocks) {
  // Both rows can only use column 0.
  const std::vector<std::vector<Real>> cost = {{1, kInfinity}, {1, kInfinity}};
  EXPECT_FALSE(solveAssignment(cost).has_value());
}

TEST(Hungarian, AssignmentIsInjective) {
  Rng rng(55);
  std::vector<std::vector<Real>> cost(5, std::vector<Real>(7));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0, 100);
  }
  const auto result = solveAssignment(cost);
  ASSERT_TRUE(result.has_value());
  std::set<std::size_t> used(result->columnOfRow.begin(), result->columnOfRow.end());
  EXPECT_EQ(used.size(), 5u);
}

class HungarianRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HungarianRandom, MatchesBruteForceSquare) {
  Rng rng(GetParam());
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniformInt(0, 3));  // 3..6
  std::vector<std::vector<Real>> cost(n, std::vector<Real>(n));
  for (auto& row : cost) {
    for (auto& c : row) {
      c = rng.nextReal() < 0.15 ? kInfinity : static_cast<Real>(rng.uniformInt(0, 50));
    }
  }
  const auto result = solveAssignment(cost);
  const auto expected = bruteForce(cost);
  ASSERT_EQ(result.has_value(), expected.has_value());
  if (result) EXPECT_NEAR(result->totalCost, *expected, 1e-9);
}

TEST_P(HungarianRandom, MatchesBruteForceRectangular) {
  Rng rng(GetParam() ^ 0x77);
  const std::size_t rows = 2 + static_cast<std::size_t>(rng.uniformInt(0, 2));  // 2..4
  const std::size_t cols = rows + static_cast<std::size_t>(rng.uniformInt(1, 3));
  std::vector<std::vector<Real>> cost(rows, std::vector<Real>(cols));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0, 100);
  }
  const auto result = solveAssignment(cost);
  const auto expected = bruteForce(cost);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->totalCost, *expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandom,
                         ::testing::Values(501, 502, 503, 504, 505, 506, 507, 508),
                         [](const auto& paramInfo) { return "s" + std::to_string(paramInfo.param); });

}  // namespace
}  // namespace pipesched::exact
