// The homogeneous-platform DP (Subhlok-Vondran setting) against exhaustive
// ground truth, plus its role as an optimality floor for the heuristics.
#include <gtest/gtest.h>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exact/homog_dp.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::exact {
namespace {

using core::Evaluator;
using workload::Rng;

core::Pipeline randomPipe(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return workload::randomPipeline(workload::ExperimentKind::kE2BalancedHetComm, n, rng);
}

TEST(HomogDp, RequiresHomogeneousPlatform) {
  const core::Pipeline pipe({1, 2}, {0, 0, 0});
  const core::Platform het({2, 1}, 1);
  const Evaluator eval(pipe, het);
  EXPECT_THROW((void)homogMinPeriod(eval), ModelError);
  EXPECT_THROW((void)homogMinLatencyForPeriod(eval, 10), ModelError);
  EXPECT_THROW((void)homogParetoFront(eval), ModelError);
}

TEST(HomogDp, SingleProcessorIsTheOnlyOption) {
  const core::Pipeline pipe({3, 4}, {1, 1, 1});
  const core::Platform plat = core::Platform::homogeneous(1, 2, 1);
  const Evaluator eval(pipe, plat);
  const ExactSolution s = homogMinPeriod(eval);
  EXPECT_EQ(s.mapping.intervalCount(), 1u);
  EXPECT_DOUBLE_EQ(s.metrics.period, 1 + 3.5 + 1);
}

TEST(HomogDp, CutsCanHurtWhenCommsDominate) {
  // Free boundary comms but heavy internal transfers: any cut pays 10 units
  // of communication per endpoint, so with w tiny the optimal mapping is a
  // single interval despite 3 processors being available.
  const core::Pipeline pipe({0.1, 0.1, 0.1}, {0, 10, 10, 0});
  const core::Platform plat = core::Platform::homogeneous(3, 1, 1);
  const Evaluator eval(pipe, plat);
  const ExactSolution s = homogMinPeriod(eval);
  EXPECT_EQ(s.mapping.intervalCount(), 1u);
}

TEST(HomogDp, CutsHelpWhenComputeDominates) {
  const core::Pipeline pipe = core::Pipeline::uniform(4, 100, 0.1);
  const core::Platform plat = core::Platform::homogeneous(4, 1, 1);
  const Evaluator eval(pipe, plat);
  const ExactSolution s = homogMinPeriod(eval);
  EXPECT_EQ(s.mapping.intervalCount(), 4u);
  EXPECT_NEAR(s.metrics.period, 0.2 + 100, 1e-9);
}

class HomogDpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HomogDpRandom, MinPeriodMatchesExhaustive) {
  const core::Pipeline pipe = randomPipe(7, GetParam());
  const core::Platform plat = core::Platform::homogeneous(3, 5, 10);
  const Evaluator eval(pipe, plat);
  const auto exact = exhaustiveMinPeriod(eval);
  ASSERT_TRUE(exact.has_value());
  const ExactSolution dp = homogMinPeriod(eval);
  EXPECT_NEAR(dp.metrics.period, exact->metrics.period, 1e-9);
  EXPECT_NO_THROW(dp.mapping.validate(7, 3));
}

TEST_P(HomogDpRandom, MinLatencyForPeriodMatchesExhaustive) {
  const core::Pipeline pipe = randomPipe(7, GetParam() ^ 0xF00D);
  const core::Platform plat = core::Platform::homogeneous(3, 5, 10);
  const Evaluator eval(pipe, plat);
  const Real minPeriod = homogMinPeriod(eval).metrics.period;
  for (Real factor : {1.0, 1.5}) {
    const auto dp = homogMinLatencyForPeriod(eval, minPeriod * factor);
    const auto exact = exhaustiveMinLatency(eval, minPeriod * factor);
    ASSERT_TRUE(dp.has_value());
    ASSERT_TRUE(exact.has_value());
    EXPECT_NEAR(dp->metrics.latency, exact->metrics.latency, 1e-9) << "factor " << factor;
  }
  EXPECT_FALSE(homogMinLatencyForPeriod(eval, minPeriod * 0.9).has_value());
}

TEST_P(HomogDpRandom, ParetoFrontMatchesExhaustive) {
  const core::Pipeline pipe = randomPipe(6, GetParam() ^ 0xBEEF);
  const core::Platform plat = core::Platform::homogeneous(3, 5, 10);
  const Evaluator eval(pipe, plat);
  const auto dpFront = homogParetoFront(eval);
  const auto exactFront = exhaustiveParetoFront(eval);
  ASSERT_EQ(dpFront.size(), exactFront.size());
  for (std::size_t i = 0; i < dpFront.size(); ++i) {
    EXPECT_NEAR(dpFront[i].period, exactFront[i].period, 1e-9);
    EXPECT_NEAR(dpFront[i].latency, exactFront[i].latency, 1e-9);
  }
}

TEST_P(HomogDpRandom, HeuristicsNeverBeatTheDp) {
  const core::Pipeline pipe = randomPipe(10, GetParam() ^ 0xCAFE);
  const core::Platform plat = core::Platform::homogeneous(4, 5, 10);
  const Evaluator eval(pipe, plat);
  const Real optimalPeriod = homogMinPeriod(eval).metrics.period;
  for (const auto& h : heuristics::makeAllHeuristics()) {
    EXPECT_GE(h->failureThreshold(eval) + 1e-9,
              h->objective() == heuristics::Objective::kMinLatencyForPeriod
                  ? optimalPeriod
                  : eval.optimalLatency())
        << h->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomogDpRandom,
                         ::testing::Values(401, 402, 403, 404, 405, 406),
                         [](const auto& paramInfo) { return "s" + std::to_string(paramInfo.param); });

}  // namespace
}  // namespace pipesched::exact
