// One-to-one solvers vs brute force over stage->processor injections.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pipesched/exact/one_to_one.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::exact {
namespace {

using core::Evaluator;
using workload::Rng;

/// Brute force over all injective stage->processor assignments.
struct BruteOneToOne {
  Real minPeriod = kInfinity;
  Real minLatencyForBound = kInfinity;
};

BruteOneToOne bruteForce(const Evaluator& eval, Real periodBound) {
  const std::size_t n = eval.pipeline().stageCount();
  const std::size_t p = eval.platform().processorCount();
  std::vector<std::size_t> procs(p);
  std::iota(procs.begin(), procs.end(), std::size_t{0});
  BruteOneToOne out;
  std::vector<std::size_t> chosen(n);
  std::vector<bool> used(p, false);
  const auto recurse = [&](auto&& self, std::size_t k) -> void {
    if (k == n) {
      const auto mapping = core::IntervalMapping::oneToOne(chosen);
      const core::Metrics m = eval.evaluate(mapping);
      out.minPeriod = std::min(out.minPeriod, m.period);
      if (m.period <= periodBound + kTimeEps) {
        out.minLatencyForBound = std::min(out.minLatencyForBound, m.latency);
      }
      return;
    }
    for (std::size_t u = 0; u < p; ++u) {
      if (used[u]) continue;
      used[u] = true;
      chosen[k] = u;
      self(self, k + 1);
      used[u] = false;
    }
  };
  recurse(recurse, 0);
  return out;
}

TEST(OneToOne, RequiresEnoughProcessors) {
  const core::Pipeline pipe({1, 2, 3}, {0, 0, 0, 0});
  const core::Platform plat({5, 4}, 1);
  const Evaluator eval(pipe, plat);
  EXPECT_FALSE(oneToOneMinPeriod(eval).has_value());
  EXPECT_FALSE(oneToOneMinLatencyForPeriod(eval, 100).has_value());
}

TEST(OneToOne, HandExample) {
  // Stages w={8,2}, delta={0,0,0}; speeds {4,1}. Cycles: stage0 on P0: 2,
  // stage1 on P1: 2 -> min period 2. Swapped: 8 and 0.5 -> 8.
  const core::Pipeline pipe({8, 2}, {0, 0, 0});
  const core::Platform plat({4, 1}, 1);
  const Evaluator eval(pipe, plat);
  const auto best = oneToOneMinPeriod(eval);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->metrics.period, 2);
  EXPECT_EQ(best->mapping.processor(0), 0u);
  EXPECT_EQ(best->mapping.processor(1), 1u);
}

TEST(OneToOne, FeasibilityProbe) {
  const core::Pipeline pipe({8, 2}, {0, 0, 0});
  const core::Platform plat({4, 1}, 1);
  const Evaluator eval(pipe, plat);
  std::vector<std::size_t> witness;
  EXPECT_TRUE(oneToOneFeasible(eval, 2.0, &witness));
  EXPECT_EQ(witness.size(), 2u);
  EXPECT_FALSE(oneToOneFeasible(eval, 1.9));
}

TEST(OneToOne, CommBoundMakesTightPeriodsInfeasible) {
  // Any one-to-one cycle includes (delta_k + delta_{k+1})/b = 2.
  const core::Pipeline pipe({1, 1}, {1, 1, 1});
  const core::Platform plat({10, 10}, 1);
  const Evaluator eval(pipe, plat);
  EXPECT_FALSE(oneToOneFeasible(eval, 1.99));
  EXPECT_TRUE(oneToOneFeasible(eval, 2.1 + 1.0));  // 2 comm + 0.1 compute
}

TEST(OneToOne, LatencyCommPartIsMappingIndependent) {
  const core::Pipeline pipe({4, 6}, {2, 4, 6});
  const core::Platform plat({2, 1, 3}, 2);
  const Evaluator eval(pipe, plat);
  // For any one-to-one mapping, latency - sum(w/s) is constant.
  const Real constant = (2 + 4 + 6) / 2.0;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      const auto m = core::IntervalMapping::oneToOne({a, b});
      const Real computePart =
          4 / eval.platform().speed(a) + 6 / eval.platform().speed(b);
      EXPECT_NEAR(eval.latency(m), constant + computePart, 1e-12);
    }
  }
}

class OneToOneRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneToOneRandom, MatchesBruteForce) {
  Rng rng(GetParam());
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniformInt(0, 2));  // 3..5
  const std::size_t p = n + static_cast<std::size_t>(rng.uniformInt(0, 2));
  const auto inst =
      workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, n, p, rng);
  const Evaluator eval(inst.pipeline, inst.platform);

  const auto minPeriod = oneToOneMinPeriod(eval);
  ASSERT_TRUE(minPeriod.has_value());
  const Real bound = minPeriod->metrics.period * 1.3;
  const BruteOneToOne expected = bruteForce(eval, bound);
  EXPECT_NEAR(minPeriod->metrics.period, expected.minPeriod, 1e-9);

  const auto minLat = oneToOneMinLatencyForPeriod(eval, bound);
  ASSERT_TRUE(minLat.has_value());
  EXPECT_NEAR(minLat->metrics.latency, expected.minLatencyForBound, 1e-9);
  EXPECT_LE(minLat->metrics.period, bound + 1e-9);
}

TEST_P(OneToOneRandom, MinLatencyInfeasibleBelowMinPeriod) {
  Rng rng(GetParam() ^ 0x99);
  const auto inst =
      workload::randomInstance(workload::ExperimentKind::kE1BalancedHomComm, 4, 5, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const auto minPeriod = oneToOneMinPeriod(eval);
  ASSERT_TRUE(minPeriod.has_value());
  EXPECT_FALSE(
      oneToOneMinLatencyForPeriod(eval, minPeriod->metrics.period * 0.99).has_value());
  // At exactly the optimum it must be feasible.
  const auto atOpt = oneToOneMinLatencyForPeriod(eval, minPeriod->metrics.period);
  EXPECT_TRUE(atOpt.has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneToOneRandom,
                         ::testing::Values(601, 602, 603, 604, 605, 606),
                         [](const auto& paramInfo) { return "s" + std::to_string(paramInfo.param); });

}  // namespace
}  // namespace pipesched::exact
