// Tests of the exhaustive enumerator: mapping counts against the closed-form
// formula, Lemma-1 agreement, cap handling, Pareto-front sanity.
#include <gtest/gtest.h>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::exact {
namespace {

using core::Evaluator;
using core::Pipeline;
using core::Platform;

/// Number of interval mappings: sum over m of C(n-1, m-1) * P(p, m).
std::uint64_t expectedMappingCount(std::size_t n, std::size_t p) {
  const auto binom = [](std::uint64_t a, std::uint64_t b) {
    if (b > a) return std::uint64_t{0};
    std::uint64_t r = 1;
    for (std::uint64_t i = 0; i < b; ++i) r = r * (a - i) / (i + 1);
    return r;
  };
  std::uint64_t total = 0;
  for (std::size_t m = 1; m <= std::min(n, p); ++m) {
    std::uint64_t perms = 1;
    for (std::size_t i = 0; i < m; ++i) perms *= p - i;
    total += binom(n - 1, m - 1) * perms;
  }
  return total;
}

TEST(Exhaustive, VisitsEveryMappingExactlyOnce) {
  const Pipeline pipe = Pipeline::uniform(4, 1, 1);
  const Platform plat({3, 2, 1}, 1);
  const Evaluator eval(pipe, plat);
  std::uint64_t count = 0;
  std::set<std::string> seen;
  enumerateMappings(eval, [&](const core::IntervalMapping& m, const core::Metrics&) {
    ++count;
    EXPECT_TRUE(seen.insert(m.describe()).second) << "duplicate " << m.describe();
    EXPECT_NO_THROW(m.validate(4, 3));
    return true;
  });
  EXPECT_EQ(count, expectedMappingCount(4, 3));
}

TEST(Exhaustive, CountsMatchFormulaAcrossShapes) {
  for (const auto& [n, p] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 3}, {2, 1}, {3, 2}, {5, 2}, {5, 5}, {6, 3}}) {
    const Pipeline pipe = Pipeline::uniform(n, 1, 1);
    std::vector<Real> speeds(p, 1);
    const Platform plat(speeds, 1);
    const Evaluator eval(pipe, plat);
    std::uint64_t count = 0;
    enumerateMappings(eval, [&](const core::IntervalMapping&, const core::Metrics&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, expectedMappingCount(n, p)) << "n=" << n << " p=" << p;
  }
}

TEST(Exhaustive, EarlyStopIsHonoured) {
  const Pipeline pipe = Pipeline::uniform(5, 1, 1);
  const Platform plat({1, 1, 1}, 1);
  const Evaluator eval(pipe, plat);
  std::uint64_t count = 0;
  enumerateMappings(eval, [&](const core::IntervalMapping&, const core::Metrics&) {
    return ++count < 3;
  });
  EXPECT_EQ(count, 3u);
}

TEST(Exhaustive, MappingLimitGuards) {
  const Pipeline pipe = Pipeline::uniform(8, 1, 1);
  const Platform plat({1, 1, 1, 1}, 1);
  const Evaluator eval(pipe, plat);
  ExhaustiveOptions options;
  options.mappingLimit = 10;
  EXPECT_THROW(
      enumerateMappings(
          eval, [](const core::IntervalMapping&, const core::Metrics&) { return true; },
          options),
      ModelError);
}

TEST(Exhaustive, MaxIntervalsRestricts) {
  const Pipeline pipe = Pipeline::uniform(4, 1, 1);
  const Platform plat({1, 1, 1}, 1);
  const Evaluator eval(pipe, plat);
  ExhaustiveOptions options;
  options.maxIntervals = 1;
  std::uint64_t count = 0;
  enumerateMappings(
      eval,
      [&](const core::IntervalMapping& m, const core::Metrics&) {
        EXPECT_EQ(m.intervalCount(), 1u);
        ++count;
        return true;
      },
      options);
  EXPECT_EQ(count, 3u);  // one single-interval mapping per processor
}

TEST(Exhaustive, MinLatencyEqualsLemma1) {
  const Pipeline pipe({3, 1, 4, 1, 5}, {2, 1, 3, 2, 1, 4});
  const Platform plat({9, 7, 5}, 10);
  const Evaluator eval(pipe, plat);
  const auto best = exhaustiveMinLatency(eval);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->metrics.latency, eval.optimalLatency(), 1e-12);
  EXPECT_EQ(best->mapping.intervalCount(), 1u);
}

TEST(Exhaustive, MinPeriodRespectsLatencyCap) {
  const Pipeline pipe({3, 1, 4, 1, 5}, {2, 1, 3, 2, 1, 4});
  const Platform plat({9, 7, 5}, 10);
  const Evaluator eval(pipe, plat);
  const auto unconstrained = exhaustiveMinPeriod(eval);
  ASSERT_TRUE(unconstrained.has_value());
  const Real cap = eval.optimalLatency() * 1.05;
  const auto capped = exhaustiveMinPeriod(eval, cap);
  ASSERT_TRUE(capped.has_value());
  EXPECT_LE(capped->metrics.latency, cap + kTimeEps);
  EXPECT_GE(capped->metrics.period + kTimeEps, unconstrained->metrics.period);
}

TEST(Exhaustive, InfeasibleCapReturnsNullopt) {
  const Pipeline pipe({3, 1}, {2, 1, 3});
  const Platform plat({9, 7}, 10);
  const Evaluator eval(pipe, plat);
  EXPECT_FALSE(exhaustiveMinPeriod(eval, eval.optimalLatency() * 0.5).has_value());
  EXPECT_FALSE(exhaustiveMinLatency(eval, 1e-6).has_value());
}

TEST(Exhaustive, ParetoFrontEndsAreTheSingleCriterionOptima) {
  const Pipeline pipe({3, 1, 4, 1, 5}, {2, 1, 3, 2, 1, 4});
  const Platform plat({9, 7, 5}, 10);
  const Evaluator eval(pipe, plat);
  const auto front = exhaustiveParetoFront(eval);
  ASSERT_FALSE(front.empty());
  EXPECT_NEAR(front.front().period, exhaustiveMinPeriod(eval)->metrics.period, 1e-12);
  EXPECT_NEAR(front.back().latency, eval.optimalLatency(), 1e-12);
  // Strictly improving latency as the period relaxes.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].period, front[i - 1].period);
    EXPECT_LT(front[i].latency, front[i - 1].latency);
  }
  // Every front point carries a mapping realizing its coordinates.
  for (const auto& point : front) {
    ASSERT_TRUE(point.mapping.has_value());
    const core::Metrics m = eval.evaluate(*point.mapping);
    EXPECT_NEAR(m.period, point.period, 1e-12);
    EXPECT_NEAR(m.latency, point.latency, 1e-12);
  }
}

TEST(Exhaustive, RandomInstanceFrontDominatesAllMappings) {
  workload::Rng rng(31);
  const auto inst =
      workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, 6, 3, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const auto front = exhaustiveParetoFront(eval);
  enumerateMappings(eval, [&](const core::IntervalMapping&, const core::Metrics& m) {
    const bool coveredByFront =
        std::any_of(front.begin(), front.end(), [&](const core::ParetoPoint& f) {
          return f.period <= m.period + 1e-9 && f.latency <= m.latency + 1e-9;
        });
    EXPECT_TRUE(coveredByFront);
    return true;
  });
}

}  // namespace
}  // namespace pipesched::exact
