// Determinism and distribution-range tests for the experiment RNG.
#include <gtest/gtest.h>

#include <set>

#include "pipesched/workload/rng.hpp"

namespace pipesched::workload {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.nextU64() == b.nextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextRealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Real x = rng.nextReal();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Real x = rng.uniform(3.5, 9.25);
    EXPECT_GE(x, 3.5);
    EXPECT_LT(x, 9.25);
  }
  EXPECT_THROW((void)rng.uniform(2, 2), ModelError);
  EXPECT_THROW((void)rng.uniform(3, 1), ModelError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniformInt(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces of the die show up
  EXPECT_THROW((void)rng.uniformInt(5, 4), ModelError);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(9, 9), 9);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  const Rng base(42);
  Rng f1 = base.fork(1);
  Rng f1again = Rng(42).fork(1);
  Rng f2 = base.fork(2);
  EXPECT_EQ(f1.nextU64(), f1again.nextU64());
  // Different streams diverge.
  Rng g1 = base.fork(1);
  Rng g2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (g1.nextU64() == g2.nextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
  (void)f2;
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(42);
  const std::uint64_t before = Rng(42).nextU64();
  (void)a.fork(5);
  EXPECT_EQ(a.nextU64(), before);
}

TEST(Rng, RoughUniformityOfMean) {
  Rng rng(99);
  Real sum = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) sum += rng.nextReal();
  EXPECT_NEAR(sum / k, 0.5, 0.02);
}

}  // namespace
}  // namespace pipesched::workload
