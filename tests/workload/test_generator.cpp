// The generators must reproduce the paper's Section-5.1 distributions.
#include <gtest/gtest.h>

#include "pipesched/workload/generator.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::workload {
namespace {

TEST(Generator, Names) {
  EXPECT_EQ(experimentName(ExperimentKind::kE1BalancedHomComm), "E1");
  EXPECT_EQ(experimentName(ExperimentKind::kE4SmallComputations), "E4");
  EXPECT_FALSE(experimentDescription(ExperimentKind::kE3LargeComputations).empty());
}

TEST(Generator, E1HasFixedCommsAndBalancedWork) {
  Rng rng(1);
  const auto pipe = randomPipeline(ExperimentKind::kE1BalancedHomComm, 20, rng);
  ASSERT_EQ(pipe.stageCount(), 20u);
  for (std::size_t k = 0; k <= 20; ++k) EXPECT_DOUBLE_EQ(pipe.comm(k), 10);
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_GE(pipe.work(k), 1);
    EXPECT_LT(pipe.work(k), 20);
  }
}

TEST(Generator, E2CommRange) {
  Rng rng(2);
  const auto pipe = randomPipeline(ExperimentKind::kE2BalancedHetComm, 50, rng);
  for (std::size_t k = 0; k <= 50; ++k) {
    EXPECT_GE(pipe.comm(k), 1);
    EXPECT_LT(pipe.comm(k), 100);
  }
}

TEST(Generator, E3IsComputeDominated) {
  Rng rng(3);
  const auto pipe = randomPipeline(ExperimentKind::kE3LargeComputations, 50, rng);
  for (std::size_t k = 0; k < 50; ++k) {
    EXPECT_GE(pipe.work(k), 10);
    EXPECT_LT(pipe.work(k), 1000);
  }
  for (std::size_t k = 0; k <= 50; ++k) {
    EXPECT_GE(pipe.comm(k), 1);
    EXPECT_LT(pipe.comm(k), 20);
  }
}

TEST(Generator, E4IsCommDominated) {
  Rng rng(4);
  const auto pipe = randomPipeline(ExperimentKind::kE4SmallComputations, 50, rng);
  for (std::size_t k = 0; k < 50; ++k) {
    EXPECT_GE(pipe.work(k), 0.01);
    EXPECT_LT(pipe.work(k), 10);
  }
}

TEST(Generator, PlatformFollowsPaperDistribution) {
  Rng rng(5);
  const auto plat = randomPlatform(100, rng);
  EXPECT_EQ(plat.processorCount(), 100u);
  EXPECT_TRUE(plat.isCommHomogeneous());
  EXPECT_DOUBLE_EQ(plat.bandwidth(), 10);
  for (std::size_t u = 0; u < 100; ++u) {
    const Real s = plat.speed(u);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 20);
    EXPECT_DOUBLE_EQ(s, std::floor(s));  // integer speeds, as in the paper
  }
}

TEST(Generator, SameSeedReproducesInstances) {
  Rng a(77), b(77);
  const auto ia = randomInstance(ExperimentKind::kE2BalancedHetComm, 10, 5, a);
  const auto ib = randomInstance(ExperimentKind::kE2BalancedHetComm, 10, 5, b);
  EXPECT_EQ(ia.pipeline, ib.pipeline);
  EXPECT_EQ(ia.platform.speeds(), ib.platform.speeds());
}

TEST(Generator, HeterogeneousPlatformIsValid) {
  Rng rng(6);
  const auto plat = randomHeterogeneousPlatform(5, rng, 2, 8);
  EXPECT_FALSE(plat.isCommHomogeneous());
  for (std::size_t u = 0; u < 5; ++u) {
    for (std::size_t v = 0; v < 5; ++v) {
      if (u == v) continue;
      EXPECT_GE(plat.bandwidth(u, v), 2);
      EXPECT_LT(plat.bandwidth(u, v), 8);
    }
    EXPECT_GE(plat.inputBandwidth(u), 2);
    EXPECT_GE(plat.outputBandwidth(u), 2);
  }
}

TEST(Generator, RejectsDegenerateSizes) {
  Rng rng(9);
  EXPECT_THROW((void)randomPipeline(ExperimentKind::kE1BalancedHomComm, 0, rng), ModelError);
  EXPECT_THROW((void)randomPlatform(0, rng), ModelError);
}

TEST(Scenarios, AllScenariosAreWellFormed) {
  for (const Scenario& s : allScenarios()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_EQ(s.stageNames.size(), s.pipeline.stageCount());
    EXPECT_GE(s.pipeline.stageCount(), 6u);
  }
}

TEST(Scenarios, ClustersMatchPaperScale) {
  EXPECT_EQ(labCluster().processorCount(), 10u);
  EXPECT_EQ(largeCluster().processorCount(), 100u);
  EXPECT_DOUBLE_EQ(labCluster().bandwidth(), 10);
  EXPECT_DOUBLE_EQ(largeCluster().bandwidth(), 10);
}

}  // namespace
}  // namespace pipesched::workload
