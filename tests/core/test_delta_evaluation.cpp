// Differential suite for the incremental evaluation kernel: delta-maintained
// Metrics must be BIT-identical (operator==, no tolerance) to a fresh
// Evaluator::evaluate of the materialized mapping, across comm models,
// comm-homogeneous and fully-heterogeneous platforms (including zero-size
// transfers), and long random apply/undo sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "pipesched/core/delta_evaluation.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::core {
namespace {

using workload::Rng;

struct Instance {
  Pipeline pipeline;
  Platform platform;
};

Instance randomCommHomogeneous(std::size_t n, std::size_t p, Rng& rng) {
  std::vector<Real> work(n);
  std::vector<Real> comm(n + 1);
  for (Real& w : work) w = rng.uniform(0.5, 10);
  for (Real& d : comm) d = rng.uniform(0, 5);
  std::vector<Real> speeds(p);
  for (Real& s : speeds) s = rng.uniform(0.5, 4);
  return Instance{Pipeline(std::move(work), std::move(comm)),
                  Platform(std::move(speeds), rng.uniform(0.5, 3))};
}

/// Fully-heterogeneous platform; every third pipeline transfer has size zero
/// (zero-size transfers must stay free regardless of the link looked up).
Instance randomFullyHeterogeneous(std::size_t n, std::size_t p, Rng& rng) {
  std::vector<Real> work(n);
  std::vector<Real> comm(n + 1);
  for (Real& w : work) w = rng.uniform(0.5, 10);
  for (std::size_t k = 0; k <= n; ++k) comm[k] = (k % 3 == 2) ? Real(0) : rng.uniform(0.1, 5);
  std::vector<Real> speeds(p);
  for (Real& s : speeds) s = rng.uniform(0.5, 4);
  std::vector<Real> links(p * p);
  for (Real& b : links) b = rng.uniform(0.5, 4);
  std::vector<Real> in(p);
  std::vector<Real> out(p);
  for (Real& b : in) b = rng.uniform(0.5, 4);
  for (Real& b : out) b = rng.uniform(0.5, 4);
  return Instance{Pipeline(std::move(work), std::move(comm)),
                  Platform::fullyHeterogeneous(std::move(speeds), std::move(links),
                                               std::move(in), std::move(out))};
}

/// A random valid mapping: random cut count, random cut positions, random
/// distinct processors.
IntervalMapping randomMapping(std::size_t n, std::size_t p, Rng& rng) {
  const std::size_t m =
      1 + static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(std::min(n, p)) - 1));
  std::vector<std::size_t> ends;
  while (ends.size() + 1 < m) {
    const std::size_t e = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(n) - 2));
    if (std::find(ends.begin(), ends.end(), e) == ends.end()) ends.push_back(e);
  }
  ends.push_back(n - 1);
  std::sort(ends.begin(), ends.end());
  std::vector<std::size_t> procs;
  while (procs.size() < m) {
    const std::size_t u = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(p) - 1));
    if (std::find(procs.begin(), procs.end(), u) == procs.end()) procs.push_back(u);
  }
  return IntervalMapping::fromCuts(n, ends, procs);
}

/// Samples a random move valid-shaped for the current scratch state (the
/// kernel's own guards may still reject it; callers skip those).
Move randomMove(const DeltaEvaluator& delta, std::size_t p, Rng& rng) {
  const std::size_t m = delta.intervalCount();
  const auto pick = [&](std::size_t hi) {
    return static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(hi)));
  };
  switch (rng.uniformInt(0, 5)) {
    case 0:
      return Move::shiftLeft(pick(m - 1));
    case 1:
      return Move::shiftRight(pick(m - 1));
    case 2:
      return Move::swapProcessors(pick(m - 1), pick(m - 1));
    case 3:
      return Move::reassign(pick(m - 1), pick(p - 1));
    case 4:
      return Move::merge(pick(m - 1), rng.uniformInt(0, 1) == 0);
    default: {
      const std::size_t j = pick(m - 1);
      const Interval iv = delta.assignment(j).interval;
      if (iv.length() < 2) return Move::split(j, iv.first, pick(p - 1));  // rejected
      const std::size_t q = iv.first + pick(iv.length() - 2);
      return Move::split(j, q, pick(p - 1));
    }
  }
}

void expectStateMatchesFreshEvaluate(DeltaEvaluator& delta, const Evaluator& eval) {
  const IntervalMapping materialized = delta.mapping();
  const Metrics fresh = eval.evaluate(materialized);
  const Metrics incremental = delta.metrics();
  // Bit-identity: Metrics::operator== compares the doubles exactly.
  EXPECT_EQ(incremental, fresh) << materialized.describe();
  // The flat cycle buffer must match per-interval recomputation exactly too.
  for (std::size_t j = 0; j < delta.intervalCount(); ++j) {
    EXPECT_EQ(delta.cycle(j), eval.intervalCycle(materialized, j));
  }
}

void expectUsedBitmapConsistent(const DeltaEvaluator& delta, std::size_t p) {
  std::vector<bool> expected(p, false);
  for (const Assignment& a : delta.assignments()) expected[a.processor] = true;
  for (std::size_t u = 0; u < p; ++u) {
    EXPECT_EQ(delta.processorUsed(u), expected[u]) << "processor " << u;
  }
}

struct Config {
  bool hetero;
  CommModel model;
};

class DeltaEvaluationRandomized : public ::testing::TestWithParam<Config> {};

TEST_P(DeltaEvaluationRandomized, LoadMatchesFreshEvaluate) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.uniformInt(0, 9));
    const std::size_t p = 2 + static_cast<std::size_t>(rng.uniformInt(0, 6));
    const Instance inst = GetParam().hetero ? randomFullyHeterogeneous(n, p, rng)
                                            : randomCommHomogeneous(n, p, rng);
    const Evaluator eval(inst.pipeline, inst.platform, GetParam().model);
    EvalWorkspace ws;
    DeltaEvaluator delta(eval, ws);
    delta.load(randomMapping(n, p, rng));
    expectStateMatchesFreshEvaluate(delta, eval);
    expectUsedBitmapConsistent(delta, p);
  }
}

TEST_P(DeltaEvaluationRandomized, LongMoveSequenceStaysBitIdentical) {
  Rng rng(11);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 5 + static_cast<std::size_t>(rng.uniformInt(0, 7));
    const std::size_t p = 3 + static_cast<std::size_t>(rng.uniformInt(0, 5));
    const Instance inst = GetParam().hetero ? randomFullyHeterogeneous(n, p, rng)
                                            : randomCommHomogeneous(n, p, rng);
    const Evaluator eval(inst.pipeline, inst.platform, GetParam().model);
    EvalWorkspace ws;
    ws.reserve(p, p);
    DeltaEvaluator delta(eval, ws);
    delta.load(randomMapping(n, p, rng));

    int applied = 0;
    for (int step = 0; step < 300; ++step) {
      const Move move = randomMove(delta, p, rng);
      // peek() must agree with apply + metrics exactly, succeed on every
      // applicable move of any kind, and reject whatever apply rejects.
      const std::optional<Metrics> peeked = delta.peek(move);
      if (!delta.apply(move)) {
        EXPECT_FALSE(peeked.has_value());
        continue;
      }
      ASSERT_TRUE(peeked.has_value());
      EXPECT_EQ(*peeked, delta.metrics());
      ++applied;
      if (rng.uniformInt(0, 2) == 0) {
        // Reject: undo must restore the previous state bit for bit.
        delta.undo();
      } else {
        delta.commit();
      }
      expectStateMatchesFreshEvaluate(delta, eval);
      expectUsedBitmapConsistent(delta, p);
      if (::testing::Test::HasFailure()) return;
    }
    // The guard set must still let a healthy share of moves through.
    EXPECT_GT(applied, 50);
  }
}

TEST_P(DeltaEvaluationRandomized, UndoRestoresExactSnapshot) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 6;
    const std::size_t p = 5;
    const Instance inst = GetParam().hetero ? randomFullyHeterogeneous(n, p, rng)
                                            : randomCommHomogeneous(n, p, rng);
    const Evaluator eval(inst.pipeline, inst.platform, GetParam().model);
    EvalWorkspace ws;
    DeltaEvaluator delta(eval, ws);
    delta.load(randomMapping(n, p, rng));

    for (int step = 0; step < 60; ++step) {
      const std::vector<Assignment> before = delta.assignments();
      const Metrics beforeMetrics = delta.metrics();
      const Move move = randomMove(delta, p, rng);
      if (!delta.apply(move)) {
        // A rejected move must not have touched anything.
        EXPECT_EQ(delta.assignments(), before);
        EXPECT_EQ(delta.metrics(), beforeMetrics);
        continue;
      }
      delta.undo();
      EXPECT_EQ(delta.assignments(), before);
      EXPECT_EQ(delta.metrics(), beforeMetrics);
      expectUsedBitmapConsistent(delta, p);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DeltaEvaluationRandomized,
    ::testing::Values(Config{false, CommModel::kSequential},
                      Config{false, CommModel::kOverlapped},
                      Config{true, CommModel::kSequential},
                      Config{true, CommModel::kOverlapped}),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string name = info.param.hetero ? "hetero" : "commHom";
      name += info.param.model == CommModel::kSequential ? "Sequential" : "Overlapped";
      return name;
    });

// ---------------------------------------------------------------------------
// Deterministic corner cases.

class DeltaEvaluationFixture : public ::testing::Test {
 protected:
  Pipeline pipe_{{2, 4, 6, 3, 5}, {1, 2, 3, 4, 2, 1}};
  Platform plat_{{2, 1, 3, 1.5}, 2};
  Evaluator eval_{pipe_, plat_};
  EvalWorkspace ws_;
};

TEST_F(DeltaEvaluationFixture, ReplaceIntervalMatchesMappingReplace) {
  DeltaEvaluator delta(eval_, ws_);
  IntervalMapping mapping = IntervalMapping::fromCuts(5, {1, 4}, {0, 1});
  delta.load(mapping);

  // Two-way replacement of interval 1 = [2,4]: [2,3]->P1, [4,4]->P2.
  const Assignment rep2[] = {Assignment{{2, 3}, 1}, Assignment{{4, 4}, 2}};
  ASSERT_TRUE(delta.replaceInterval(1, rep2, 2));
  IntervalMapping reference = mapping;
  reference.replaceInterval(1, {rep2[0], rep2[1]});
  EXPECT_EQ(delta.mapping(), reference);
  EXPECT_EQ(delta.metrics(), eval_.evaluate(reference));
  delta.undo();
  EXPECT_EQ(delta.mapping(), mapping);

  // Three-way replacement moving everything off the owner.
  const Assignment rep3[] = {Assignment{{2, 2}, 2}, Assignment{{3, 3}, 3},
                             Assignment{{4, 4}, 1}};
  ASSERT_TRUE(delta.replaceInterval(1, rep3, 3));
  reference = mapping;
  reference.replaceInterval(1, {rep3[0], rep3[1], rep3[2]});
  EXPECT_EQ(delta.mapping(), reference);
  EXPECT_EQ(delta.metrics(), eval_.evaluate(reference));
  expectUsedBitmapConsistent(delta, 4);
  delta.commit();
}

TEST_F(DeltaEvaluationFixture, ReplaceIntervalRejectsUsedProcessor) {
  DeltaEvaluator delta(eval_, ws_);
  delta.load(IntervalMapping::fromCuts(5, {1, 4}, {0, 1}));
  const Metrics before = delta.metrics();
  // P0 is used by interval 0, so the tail of this replacement is invalid.
  const Assignment rep[] = {Assignment{{2, 3}, 1}, Assignment{{4, 4}, 0}};
  EXPECT_FALSE(delta.replaceInterval(1, rep, 2));
  EXPECT_EQ(delta.metrics(), before);
}

TEST_F(DeltaEvaluationFixture, ReplaceIntervalThrowsOnBadTiling) {
  DeltaEvaluator delta(eval_, ws_);
  delta.load(IntervalMapping::fromCuts(5, {1, 4}, {0, 1}));
  const Assignment bad[] = {Assignment{{2, 3}, 1}};  // does not cover [2,4]
  EXPECT_THROW((void)delta.replaceInterval(1, bad, 1), MappingError);
}

TEST_F(DeltaEvaluationFixture, InapplicableMovesAreRejected) {
  DeltaEvaluator delta(eval_, ws_);
  delta.load(IntervalMapping::fromCuts(5, {0, 4}, {0, 1}));
  EXPECT_FALSE(delta.apply(Move::shiftLeft(0)));        // left interval is a singleton
  EXPECT_FALSE(delta.apply(Move::shiftRight(1)));       // no interval 2
  EXPECT_FALSE(delta.apply(Move::swapProcessors(0, 0)));
  EXPECT_FALSE(delta.apply(Move::reassign(0, 1)));      // P1 is used
  EXPECT_FALSE(delta.apply(Move::reassign(0, 99)));     // out of range
  EXPECT_FALSE(delta.apply(Move::merge(1, true)));      // no interval 2
  EXPECT_FALSE(delta.apply(Move::split(0, 0, 2)));      // singleton cannot split
  EXPECT_FALSE(delta.apply(Move::split(1, 4, 2)));      // q == last is not a cut
  EXPECT_THROW(delta.undo(), ModelError);               // nothing ever applied
}

TEST_F(DeltaEvaluationFixture, WorkspaceIsReusableAcrossInstances) {
  DeltaEvaluator delta(eval_, ws_);
  delta.load(IntervalMapping::fromCuts(5, {2, 4}, {2, 0}));
  ASSERT_TRUE(delta.apply(Move::merge(0, true)));
  delta.commit();

  // Re-bind the same workspace to a different instance and model.
  Pipeline pipe2{{1, 1, 1}, {0, 1, 0, 2}};
  Platform plat2{{1, 2}, 1};
  Evaluator eval2(pipe2, plat2, CommModel::kOverlapped);
  DeltaEvaluator delta2(eval2, ws_);
  delta2.load(IntervalMapping::fromCuts(3, {0, 2}, {1, 0}));
  EXPECT_EQ(delta2.metrics(), eval2.evaluate(delta2.mapping()));
}

TEST_F(DeltaEvaluationFixture, MetricsMatchAfterEachPrimitiveKind) {
  DeltaEvaluator delta(eval_, ws_);
  delta.load(IntervalMapping::fromCuts(5, {1, 3, 4}, {0, 1, 2}));
  const Move moves[] = {
      Move::shiftLeft(0),  Move::shiftRight(0),          Move::swapProcessors(0, 2),
      Move::reassign(1, 3), Move::merge(1, false),       Move::split(0, 0, 1),
  };
  for (const Move& move : moves) {
    ASSERT_TRUE(delta.apply(move));
    expectStateMatchesFreshEvaluate(delta, eval_);
    delta.commit();
  }
}

TEST(EvaluatorCyclesOverload, FillsCallerBuffer) {
  Pipeline pipe{{2, 4, 6}, {1, 2, 3, 4}};
  Platform plat{{2, 1}, 2};
  Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  std::vector<Real> buffer(17, -1);  // stale oversized buffer must be resized
  eval.cycles(m, buffer);
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer, eval.cycles(m));
}

TEST(EvaluatorRawPartsOverload, MatchesMappingEvaluate) {
  Pipeline pipe{{2, 4, 6, 3}, {1, 2, 0, 4, 2}};
  Platform plat{{2, 1, 3}, 2};
  for (const CommModel model : {CommModel::kSequential, CommModel::kOverlapped}) {
    const Evaluator eval(pipe, plat, model);
    const auto m = IntervalMapping::fromCuts(4, {1, 3}, {2, 0});
    EXPECT_EQ(eval.evaluate(m.assignments()), eval.evaluate(m));
  }
}

TEST(IntervalMappingFromValidated, SkipsReordering) {
  std::vector<Assignment> parts = {Assignment{{0, 1}, 3}, Assignment{{2, 4}, 1}};
  const IntervalMapping m = IntervalMapping::fromValidated(parts);
  EXPECT_EQ(m.assignments(), parts);
  EXPECT_TRUE(m.isValid(5, 4));
}

}  // namespace
}  // namespace pipesched::core
