// Unit tests for the pipeline application model.
#include <gtest/gtest.h>

#include "pipesched/core/pipeline.hpp"

namespace pipesched::core {
namespace {

TEST(Pipeline, StoresWorkAndCommSizes) {
  const Pipeline p({2, 4, 6}, {1, 2, 3, 4});
  EXPECT_EQ(p.stageCount(), 3u);
  EXPECT_DOUBLE_EQ(p.work(0), 2);
  EXPECT_DOUBLE_EQ(p.work(2), 6);
  EXPECT_DOUBLE_EQ(p.comm(0), 1);
  EXPECT_DOUBLE_EQ(p.comm(3), 4);
}

TEST(Pipeline, InputOutputSizeHelpers) {
  const Pipeline p({2, 4, 6}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(p.inputSize(0), 1);
  EXPECT_DOUBLE_EQ(p.outputSize(0), 2);
  EXPECT_DOUBLE_EQ(p.inputSize(2), 3);
  EXPECT_DOUBLE_EQ(p.outputSize(2), 4);
}

TEST(Pipeline, TotalWorkIsSumOfStages) {
  const Pipeline p({2, 4, 6}, {0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(p.totalWork(), 12);
}

TEST(Pipeline, WorkSumUsesInclusiveRanges) {
  const Pipeline p({1, 2, 3, 4, 5}, std::vector<Real>(6, 0));
  EXPECT_DOUBLE_EQ(p.workSum(0, 4), 15);
  EXPECT_DOUBLE_EQ(p.workSum(1, 3), 9);
  EXPECT_DOUBLE_EQ(p.workSum(2, 2), 3);
}

TEST(Pipeline, WorkSumRejectsBadRanges) {
  const Pipeline p({1, 2, 3}, std::vector<Real>(4, 0));
  EXPECT_THROW((void)p.workSum(2, 1), ModelError);
  EXPECT_THROW((void)p.workSum(0, 3), ModelError);
}

TEST(Pipeline, SingleStagePipelineIsValid) {
  const Pipeline p({7}, {1, 2});
  EXPECT_EQ(p.stageCount(), 1u);
  EXPECT_DOUBLE_EQ(p.workSum(0, 0), 7);
}

TEST(Pipeline, RejectsEmptyPipeline) {
  EXPECT_THROW(Pipeline({}, {1}), ModelError);
}

TEST(Pipeline, RejectsCommSizeMismatch) {
  EXPECT_THROW(Pipeline({1, 2}, {1, 2}), ModelError);      // needs 3
  EXPECT_THROW(Pipeline({1, 2}, {1, 2, 3, 4}), ModelError);
}

TEST(Pipeline, RejectsNonPositiveWork) {
  EXPECT_THROW(Pipeline({1, 0}, {0, 0, 0}), ModelError);
  EXPECT_THROW(Pipeline({-1, 2}, {0, 0, 0}), ModelError);
}

TEST(Pipeline, RejectsNegativeOrNonFiniteComm) {
  EXPECT_THROW(Pipeline({1}, {0, -1}), ModelError);
  EXPECT_THROW(Pipeline({1}, {kInfinity, 0}), ModelError);
}

TEST(Pipeline, ZeroCommSizesAreLegal) {
  // The NP-hardness gadget (Theorem 2) sets every delta to zero.
  const Pipeline p({1, 2}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(p.comm(1), 0);
}

TEST(Pipeline, UniformFactory) {
  const Pipeline p = Pipeline::uniform(4, 3, 10);
  EXPECT_EQ(p.stageCount(), 4u);
  EXPECT_DOUBLE_EQ(p.totalWork(), 12);
  for (std::size_t k = 0; k <= 4; ++k) EXPECT_DOUBLE_EQ(p.comm(k), 10);
}

TEST(Pipeline, EqualityComparesContent) {
  const Pipeline a({1, 2}, {3, 4, 5});
  const Pipeline b({1, 2}, {3, 4, 5});
  const Pipeline c({1, 2}, {3, 4, 6});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Pipeline, DescribeMentionsSizeAndWork) {
  const Pipeline p({2, 4, 6}, {1, 2, 3, 4});
  const std::string d = p.describe();
  EXPECT_NE(d.find("n=3"), std::string::npos);
  EXPECT_NE(d.find("W=12"), std::string::npos);
}

}  // namespace
}  // namespace pipesched::core
