// Unit tests for the platform model.
#include <gtest/gtest.h>

#include "pipesched/core/platform.hpp"

namespace pipesched::core {
namespace {

TEST(Platform, CommHomogeneousBasics) {
  const Platform p({3, 1, 2}, 10);
  EXPECT_EQ(p.processorCount(), 3u);
  EXPECT_TRUE(p.isCommHomogeneous());
  EXPECT_FALSE(p.isFullyHomogeneous());
  EXPECT_DOUBLE_EQ(p.bandwidth(), 10);
  EXPECT_DOUBLE_EQ(p.speed(1), 1);
}

TEST(Platform, HomogeneousFactory) {
  const Platform p = Platform::homogeneous(4, 5, 2);
  EXPECT_TRUE(p.isFullyHomogeneous());
  EXPECT_EQ(p.processorCount(), 4u);
  for (std::size_t u = 0; u < 4; ++u) EXPECT_DOUBLE_EQ(p.speed(u), 5);
}

TEST(Platform, PairBandwidthOnCommHomogeneousIsUniform) {
  const Platform p({1, 2}, 7);
  EXPECT_DOUBLE_EQ(p.bandwidth(0, 1), 7);
  EXPECT_DOUBLE_EQ(p.bandwidth(1, 0), 7);
  EXPECT_DOUBLE_EQ(p.inputBandwidth(0), 7);
  EXPECT_DOUBLE_EQ(p.outputBandwidth(1), 7);
}

TEST(Platform, IntraProcessorLinkDoesNotExist) {
  const Platform p({1, 2}, 7);
  EXPECT_THROW((void)p.bandwidth(0, 0), ModelError);
}

TEST(Platform, FastestProcessorBreaksTiesByIndex) {
  const Platform p({4, 9, 9, 2}, 1);
  EXPECT_EQ(p.fastestProcessor(), 1u);
}

TEST(Platform, ProcessorsBySpeedIsDeterministic) {
  const Platform p({4, 9, 9, 2, 9}, 1);
  const std::vector<std::size_t> order = p.processorsBySpeed();
  // Speed 9 processors in index order, then 4, then 2.
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 4, 0, 3}));
}

TEST(Platform, MaxSpeed) {
  const Platform p({4, 9, 2}, 1);
  EXPECT_DOUBLE_EQ(p.maxSpeed(), 9);
}

TEST(Platform, RejectsBadInputs) {
  EXPECT_THROW(Platform({}, 1), ModelError);
  EXPECT_THROW(Platform({0}, 1), ModelError);
  EXPECT_THROW(Platform({-2}, 1), ModelError);
  EXPECT_THROW(Platform({1}, 0), ModelError);
  EXPECT_THROW(Platform({1}, -3), ModelError);
}

TEST(Platform, FullyHeterogeneousLookups) {
  // 2 processors; link 0->1 bw 2, 1->0 bw 5.
  const Platform p = Platform::fullyHeterogeneous(
      {2, 1}, {1, 2, 5, 1}, /*in=*/{1, 10}, /*out=*/{4, 8});
  EXPECT_FALSE(p.isCommHomogeneous());
  EXPECT_FALSE(p.isFullyHomogeneous());
  EXPECT_DOUBLE_EQ(p.bandwidth(0, 1), 2);
  EXPECT_DOUBLE_EQ(p.bandwidth(1, 0), 5);
  EXPECT_DOUBLE_EQ(p.inputBandwidth(1), 10);
  EXPECT_DOUBLE_EQ(p.outputBandwidth(0), 4);
  EXPECT_THROW((void)p.bandwidth(), ModelError);  // no scalar bandwidth exists
}

TEST(Platform, FullyHeterogeneousValidatesShapes) {
  EXPECT_THROW(Platform::fullyHeterogeneous({1, 2}, {1, 1, 1}, {1, 1}, {1, 1}), ModelError);
  EXPECT_THROW(Platform::fullyHeterogeneous({1, 2}, {1, 1, 1, 1}, {1}, {1, 1}), ModelError);
  EXPECT_THROW(Platform::fullyHeterogeneous({1, 2}, {1, 0, 0, 1}, {1, 1}, {1, 1}), ModelError);
}

TEST(Platform, DescribeMentionsProcessorCount) {
  const Platform p({3, 1}, 10);
  EXPECT_NE(p.describe().find("p=2"), std::string::npos);
}

}  // namespace
}  // namespace pipesched::core
