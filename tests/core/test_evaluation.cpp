// Unit tests for the cost model — hand-computed instances of the paper's
// equations (1) and (2), the overlapped ablation model, and the
// fully-heterogeneous extension.
#include <gtest/gtest.h>

#include "pipesched/core/evaluation.hpp"

namespace pipesched::core {
namespace {

// Shared fixture: w = {2,4,6}, delta = {1,2,3,4}, speeds {2,1}, b = 2.
class EvaluationFixture : public ::testing::Test {
 protected:
  Pipeline pipe_{{2, 4, 6}, {1, 2, 3, 4}};
  Platform plat_{{2, 1}, 2};
  Evaluator eval_{pipe_, plat_};
};

TEST_F(EvaluationFixture, SingleIntervalMatchesEq1AndEq2) {
  const auto m = IntervalMapping::singleInterval(3, 0);
  // cycle = delta0/b + W/s + delta3/b = 0.5 + 6 + 2 = 8.5
  EXPECT_DOUBLE_EQ(eval_.period(m), 8.5);
  // latency = delta0/b + W/s + delta3/b = same thing for one interval
  EXPECT_DOUBLE_EQ(eval_.latency(m), 8.5);
}

TEST_F(EvaluationFixture, TwoIntervalsMatchHandComputation) {
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  // I0=[0,0] on P0 (s=2): 1/2 + 2/2 + 2/2 = 2.5
  // I1=[1,2] on P1 (s=1): 2/2 + 10/1 + 4/2 = 13
  const Metrics metrics = eval_.evaluate(m);
  EXPECT_DOUBLE_EQ(metrics.period, 13);
  EXPECT_EQ(metrics.bottleneckInterval, 1u);
  // latency = (0.5 + 1) + (1 + 10) + 4/2 = 14.5
  EXPECT_DOUBLE_EQ(metrics.latency, 14.5);
}

TEST_F(EvaluationFixture, CyclesReturnsPerInterval) {
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  const std::vector<Real> cycles = eval_.cycles(m);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_DOUBLE_EQ(cycles[0], 2.5);
  EXPECT_DOUBLE_EQ(cycles[1], 13);
}

TEST_F(EvaluationFixture, CycleTimeShortcutAgreesWithContext) {
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  EXPECT_DOUBLE_EQ(eval_.cycleTime(Interval{0, 0}, 0), eval_.intervalCycle(m, 0));
  EXPECT_DOUBLE_EQ(eval_.cycleTime(Interval{1, 2}, 1), eval_.intervalCycle(m, 1));
}

TEST_F(EvaluationFixture, BreakdownSplitsPhases) {
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  const CycleBreakdown b = eval_.breakdown(m, 1);
  EXPECT_DOUBLE_EQ(b.input, 1);    // delta1/b = 2/2
  EXPECT_DOUBLE_EQ(b.compute, 10); // (4+6)/1
  EXPECT_DOUBLE_EQ(b.output, 2);   // delta3/b = 4/2
  EXPECT_DOUBLE_EQ(b.sequential(), 13);
  EXPECT_DOUBLE_EQ(b.overlapped(), 10);
}

TEST_F(EvaluationFixture, ComputeTimeDividesBySpeed) {
  EXPECT_DOUBLE_EQ(eval_.computeTime(Interval{0, 2}, 0), 6);
  EXPECT_DOUBLE_EQ(eval_.computeTime(Interval{1, 1}, 1), 4);
}

TEST_F(EvaluationFixture, OverlappedModelTakesMaxPhase) {
  const Evaluator overlap(pipe_, plat_, CommModel::kOverlapped);
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  // I0: max(0.5, 1, 1) = 1; I1: max(1, 10, 2) = 10.
  EXPECT_DOUBLE_EQ(overlap.period(m), 10);
  // Latency is model-independent (a single data set traverses serially).
  EXPECT_DOUBLE_EQ(overlap.latency(m), 14.5);
}

TEST_F(EvaluationFixture, OptimalLatencyIsLemma1) {
  // Everything on the fastest processor: (1+4)/2 + 12/2 = 8.5.
  EXPECT_DOUBLE_EQ(eval_.optimalLatency(), 8.5);
  const IntervalMapping m = eval_.optimalLatencyMapping();
  EXPECT_EQ(m.intervalCount(), 1u);
  EXPECT_EQ(m.processor(0), 0u);
}

TEST_F(EvaluationFixture, EvaluateRejectsEmptyMapping) {
  EXPECT_THROW((void)eval_.evaluate(IntervalMapping{}), MappingError);
}

TEST(Evaluation, ZeroCommCostsNothing) {
  const Pipeline pipe({3, 5}, {0, 0, 0});
  const Platform plat({1, 1}, 10);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(2, {0, 1}, {0, 1});
  EXPECT_DOUBLE_EQ(eval.period(m), 5);
  EXPECT_DOUBLE_EQ(eval.latency(m), 8);
}

TEST(Evaluation, TheoremTwoReductionShape) {
  // With all deltas zero and b = 1, the mapping problem *is* the
  // heterogeneous chains-to-chains problem: period == max interval sum/speed.
  const Pipeline pipe({4, 4, 4, 6}, {0, 0, 0, 0, 0});
  const Platform plat({2, 3}, 1);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(4, {1, 3}, {0, 1});
  EXPECT_DOUBLE_EQ(eval.period(m), std::max((4.0 + 4.0) / 2.0, (4.0 + 6.0) / 3.0));
}

TEST(Evaluation, FullyHeterogeneousUsesPerLinkBandwidths) {
  const Pipeline pipe({2, 4, 6}, {1, 2, 3, 4});
  // speeds {2,1}; link 0->1 bw 2, 1->0 bw 5; in {1,10}, out {4,8}.
  const Platform plat = Platform::fullyHeterogeneous(
      {2, 1}, {1, 2, 5, 1}, {1, 10}, {4, 8});
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(3, {0, 2}, {1, 0});  // [0,0]->P1, [1,2]->P0
  // I0: in 1/10, comp 2/1, out 2/5 (link P1->P0)  => cycle 2.5
  // I1: in 2/5,  comp 10/2, out 4/4 (world out of P0) => cycle 6.4
  const Metrics metrics = eval.evaluate(m);
  EXPECT_DOUBLE_EQ(metrics.period, 6.4);
  EXPECT_EQ(metrics.bottleneckInterval, 1u);
  EXPECT_DOUBLE_EQ(metrics.latency, (0.1 + 2) + (0.4 + 5) + 1.0);
}

TEST(Evaluation, FullyHeterogeneousOptimalLatencyScansProcessors) {
  const Pipeline pipe({10}, {10, 10});
  // P0 is fast but behind slow world links; P1 slower with fast links.
  const Platform plat = Platform::fullyHeterogeneous(
      {10, 5}, {1, 1, 1, 1}, {1, 100}, {1, 100});
  const Evaluator eval(pipe, plat);
  // P0: 10/1 + 1 + 10/1 = 21;  P1: 0.1 + 2 + 0.1 = 2.2.
  EXPECT_DOUBLE_EQ(eval.optimalLatency(), 2.2);
  EXPECT_EQ(eval.optimalLatencyMapping().processor(0), 1u);
}

TEST(Evaluation, CycleTimeShortcutRejectsFullyHeterogeneous) {
  const Pipeline pipe({1}, {0, 0});
  const Platform plat = Platform::fullyHeterogeneous({1, 1}, {1, 1, 1, 1}, {1, 1}, {1, 1});
  const Evaluator eval(pipe, plat);
  EXPECT_THROW((void)eval.cycleTime(Interval{0, 0}, 0), ModelError);
}

TEST(Evaluation, PeriodNeverBelowBottleneckComputeLowerBound) {
  const Pipeline pipe({5, 7, 3}, {2, 2, 2, 2});
  const Platform plat({4, 2, 1}, 10);
  const Evaluator eval(pipe, plat);
  const auto m = IntervalMapping::fromCuts(3, {0, 1, 2}, {0, 1, 2});
  // Any mapping's period is at least max_k w_k / s_max.
  EXPECT_GE(eval.period(m), 7.0 / 4.0);
}

}  // namespace
}  // namespace pipesched::core
