// Unit tests for interval mappings and their structural invariants.
#include <gtest/gtest.h>

#include "pipesched/core/mapping.hpp"

namespace pipesched::core {
namespace {

TEST(IntervalMapping, SingleIntervalCoversEverything) {
  const IntervalMapping m = IntervalMapping::singleInterval(5, 2);
  EXPECT_EQ(m.intervalCount(), 1u);
  EXPECT_EQ(m.interval(0), (Interval{0, 4}));
  EXPECT_EQ(m.processor(0), 2u);
  EXPECT_NO_THROW(m.validate(5, 3));
}

TEST(IntervalMapping, OneToOne) {
  const IntervalMapping m = IntervalMapping::oneToOne({3, 1, 0});
  EXPECT_EQ(m.intervalCount(), 3u);
  EXPECT_EQ(m.interval(1), (Interval{1, 1}));
  EXPECT_EQ(m.processor(2), 0u);
  EXPECT_NO_THROW(m.validate(3, 4));
}

TEST(IntervalMapping, FromCuts) {
  const IntervalMapping m = IntervalMapping::fromCuts(6, {1, 3, 5}, {2, 0, 1});
  EXPECT_EQ(m.intervalCount(), 3u);
  EXPECT_EQ(m.interval(0), (Interval{0, 1}));
  EXPECT_EQ(m.interval(1), (Interval{2, 3}));
  EXPECT_EQ(m.interval(2), (Interval{4, 5}));
  EXPECT_NO_THROW(m.validate(6, 3));
}

TEST(IntervalMapping, FromCutsRejectsBadShapes) {
  EXPECT_THROW(IntervalMapping::fromCuts(6, {1, 3}, {0, 1, 2}), MappingError);
  EXPECT_THROW(IntervalMapping::fromCuts(6, {3, 1, 5}, {0, 1, 2}), MappingError);
  EXPECT_THROW(IntervalMapping::fromCuts(6, {1, 3, 4}, {0, 1, 2}), MappingError);
}

TEST(IntervalMapping, StageCount) {
  EXPECT_EQ(IntervalMapping().stageCount(), 0u);
  EXPECT_EQ(IntervalMapping::singleInterval(7, 0).stageCount(), 7u);
}

TEST(IntervalMapping, IntervalOfLocatesStages) {
  const IntervalMapping m = IntervalMapping::fromCuts(6, {1, 3, 5}, {2, 0, 1});
  EXPECT_EQ(m.intervalOf(0), 0u);
  EXPECT_EQ(m.intervalOf(1), 0u);
  EXPECT_EQ(m.intervalOf(2), 1u);
  EXPECT_EQ(m.intervalOf(5), 2u);
  EXPECT_THROW((void)m.intervalOf(6), MappingError);
}

TEST(IntervalMapping, ValidateCatchesGap) {
  // Built via the raw constructor to bypass factory checks.
  EXPECT_THROW(IntervalMapping({Assignment{{0, 1}, 0}, Assignment{{3, 4}, 1}}), MappingError);
}

TEST(IntervalMapping, ValidateCatchesWrongStartOrEnd) {
  const IntervalMapping m({Assignment{{0, 1}, 0}, Assignment{{2, 3}, 1}});
  EXPECT_THROW(m.validate(5, 4), MappingError);  // last interval must end at 4
  const IntervalMapping m2({Assignment{{1, 4}, 0}});
  EXPECT_THROW(m2.validate(5, 4), MappingError);  // must start at 0
}

TEST(IntervalMapping, ValidateCatchesDuplicateProcessor) {
  const IntervalMapping m({Assignment{{0, 1}, 2}, Assignment{{2, 3}, 2}});
  EXPECT_THROW(m.validate(4, 4), MappingError);
}

TEST(IntervalMapping, ValidateCatchesProcessorOutOfRange) {
  const IntervalMapping m({Assignment{{0, 3}, 5}});
  EXPECT_THROW(m.validate(4, 4), MappingError);
}

TEST(IntervalMapping, ValidateCatchesTooManyIntervals) {
  const IntervalMapping m = IntervalMapping::oneToOne({0, 1, 2});
  EXPECT_THROW(m.validate(3, 2), MappingError);
}

TEST(IntervalMapping, IsValidMirrorsValidate) {
  const IntervalMapping good = IntervalMapping::singleInterval(4, 1);
  EXPECT_TRUE(good.isValid(4, 2));
  EXPECT_FALSE(good.isValid(5, 2));
}

TEST(IntervalMapping, ReplaceIntervalSplits) {
  IntervalMapping m = IntervalMapping::singleInterval(6, 0);
  m.replaceInterval(0, {Assignment{{0, 2}, 0}, Assignment{{3, 5}, 1}});
  EXPECT_EQ(m.intervalCount(), 2u);
  EXPECT_EQ(m.interval(1), (Interval{3, 5}));
  EXPECT_NO_THROW(m.validate(6, 2));
}

TEST(IntervalMapping, ReplaceIntervalChecksTiling) {
  IntervalMapping m = IntervalMapping::singleInterval(6, 0);
  // Leaves a hole at stage 5.
  EXPECT_THROW(
      m.replaceInterval(0, {Assignment{{0, 2}, 0}, Assignment{{3, 4}, 1}}), MappingError);
  // Overlapping replacement parts.
  EXPECT_THROW(
      m.replaceInterval(0, {Assignment{{0, 3}, 0}, Assignment{{3, 5}, 1}}), MappingError);
  // Wrong index.
  EXPECT_THROW(m.replaceInterval(1, {Assignment{{0, 5}, 0}}), MappingError);
}

TEST(IntervalMapping, ReplaceMiddleIntervalKeepsNeighbours) {
  IntervalMapping m = IntervalMapping::fromCuts(9, {2, 5, 8}, {0, 1, 2});
  m.replaceInterval(1, {Assignment{{3, 3}, 1}, Assignment{{4, 5}, 3}});
  EXPECT_EQ(m.intervalCount(), 4u);
  EXPECT_EQ(m.interval(0), (Interval{0, 2}));
  EXPECT_EQ(m.interval(1), (Interval{3, 3}));
  EXPECT_EQ(m.interval(2), (Interval{4, 5}));
  EXPECT_EQ(m.interval(3), (Interval{6, 8}));
  EXPECT_NO_THROW(m.validate(9, 4));
}

TEST(IntervalMapping, DescribeIsReadable) {
  const IntervalMapping m = IntervalMapping::fromCuts(4, {1, 3}, {2, 0});
  EXPECT_EQ(m.describe(), "[0,1]->P2 | [2,3]->P0");
}

TEST(IntervalMapping, EqualityComparesStructure) {
  const IntervalMapping a = IntervalMapping::fromCuts(4, {1, 3}, {2, 0});
  const IntervalMapping b = IntervalMapping::fromCuts(4, {1, 3}, {2, 0});
  const IntervalMapping c = IntervalMapping::fromCuts(4, {2, 3}, {2, 0});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace pipesched::core
