// Tests of the deal/farm replication extension: mapping invariants, the
// replicated cost model, and its consistency with the plain model on
// singleton replica sets.
#include <gtest/gtest.h>

#include "pipesched/core/replication.hpp"

namespace pipesched::core {
namespace {

TEST(ReplicatedMapping, FromIntervalMappingLiftsSingletons) {
  const auto plain = IntervalMapping::fromCuts(5, {1, 4}, {2, 0});
  const auto rep = ReplicatedMapping::fromIntervalMapping(plain);
  ASSERT_EQ(rep.intervalCount(), 2u);
  EXPECT_EQ(rep.assignment(0).processors, (std::vector<std::size_t>{2}));
  EXPECT_EQ(rep.assignment(1).interval, (Interval{2, 4}));
  EXPECT_NO_THROW(rep.validate(5, 3));
}

TEST(ReplicatedMapping, AddReplicaAndDescribe) {
  auto rep = ReplicatedMapping::fromIntervalMapping(IntervalMapping::singleInterval(4, 0));
  rep.addReplica(0, 3);
  EXPECT_EQ(rep.describe(), "[0,3]->{P0,P3}");
  EXPECT_NO_THROW(rep.validate(4, 4));
}

TEST(ReplicatedMapping, ValidateCatchesDuplicateAcrossSets) {
  ReplicatedMapping rep({ReplicatedAssignment{{0, 1}, {0, 2}},
                         ReplicatedAssignment{{2, 3}, {2}}});
  EXPECT_THROW(rep.validate(4, 4), MappingError);
}

TEST(ReplicatedMapping, ValidateCatchesEmptyReplicaSet) {
  EXPECT_THROW(ReplicatedMapping({ReplicatedAssignment{{0, 1}, {}}}), MappingError);
}

TEST(ReplicatedMapping, ValidateCatchesCoverageGaps) {
  ReplicatedMapping rep({ReplicatedAssignment{{0, 1}, {0}}});
  EXPECT_THROW(rep.validate(4, 4), MappingError);
}

TEST(ReplicatedMapping, ReplaceIntervalChecksTiling) {
  auto rep = ReplicatedMapping::fromIntervalMapping(IntervalMapping::singleInterval(4, 0));
  EXPECT_THROW(rep.replaceInterval(0, {ReplicatedAssignment{{0, 1}, {0}}}), MappingError);
  EXPECT_NO_THROW(rep.replaceInterval(
      0, {ReplicatedAssignment{{0, 1}, {0}}, ReplicatedAssignment{{2, 3}, {1}}}));
  EXPECT_EQ(rep.intervalCount(), 2u);
}

class ReplicatedCost : public ::testing::Test {
 protected:
  Pipeline pipe_{{2, 4, 6}, {1, 2, 3, 4}};
  Platform plat_{{2, 1, 4}, 2};
  Evaluator eval_{pipe_, plat_};
};

TEST_F(ReplicatedCost, SingletonSetsMatchPlainEvaluator) {
  const auto plain = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});
  const auto rep = ReplicatedMapping::fromIntervalMapping(plain);
  const Metrics a = eval_.evaluate(plain);
  const Metrics b = evaluateReplicated(eval_, rep);
  EXPECT_DOUBLE_EQ(a.period, b.period);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_EQ(a.bottleneckInterval, b.bottleneckInterval);
}

TEST_F(ReplicatedCost, ReplicationDividesTheWorstCycle) {
  // Whole pipeline on {P0 (s=2), P2 (s=4)}: cycles are
  //   P0: 0.5 + 6 + 2 = 8.5;  P2: 0.5 + 3 + 2 = 5.5.
  // period = max/|S| = 8.5/2; latency uses the slowest replica: 8.5.
  ReplicatedMapping rep({ReplicatedAssignment{{0, 2}, {0, 2}}});
  EXPECT_DOUBLE_EQ(replicatedIntervalPeriod(eval_, rep, 0), 8.5 / 2);
  const Metrics m = evaluateReplicated(eval_, rep);
  EXPECT_DOUBLE_EQ(m.period, 8.5 / 2);
  EXPECT_DOUBLE_EQ(m.latency, 8.5);
}

TEST_F(ReplicatedCost, AddingAFastReplicaNeverIncreasesPeriod) {
  ReplicatedMapping one({ReplicatedAssignment{{0, 2}, {0}}});
  ReplicatedMapping two({ReplicatedAssignment{{0, 2}, {0, 2}}});
  EXPECT_LE(evaluateReplicated(eval_, two).period, evaluateReplicated(eval_, one).period);
}

TEST_F(ReplicatedCost, AddingASlowReplicaCanStillHelpOrHurt) {
  // P0 (s=2) alone: cycle 8.5, period 8.5. Adding P1 (s=1): cycles
  // {8.5, 14.5}, period 14.5/2 = 7.25 — helps here.
  ReplicatedMapping rep({ReplicatedAssignment{{0, 2}, {0, 1}}});
  EXPECT_DOUBLE_EQ(evaluateReplicated(eval_, rep).period, 14.5 / 2);
  // But latency degrades to the slow replica's traversal: 0.5 + 12 + 2.
  EXPECT_DOUBLE_EQ(evaluateReplicated(eval_, rep).latency, 14.5);
}

TEST_F(ReplicatedCost, MixedMappingUsesWorstIntervalAsBottleneck) {
  ReplicatedMapping rep({ReplicatedAssignment{{0, 1}, {2}},
                         ReplicatedAssignment{{2, 2}, {0, 1}}});
  // I0 on P2: 0.5 + 6/4 + 1.5 = 3.5.
  // I1 on {P0, P1}: cycles {1.5+3+2, 1.5+6+2} = {6.5, 9.5} -> period 4.75.
  const Metrics m = evaluateReplicated(eval_, rep);
  EXPECT_DOUBLE_EQ(m.period, 4.75);
  EXPECT_EQ(m.bottleneckInterval, 1u);
  // latency = (0.5 + 6/4) + (1.5 + 6/1) + 2 = 11.5 (slowest replica per interval).
  EXPECT_DOUBLE_EQ(m.latency, 11.5);
}

TEST_F(ReplicatedCost, RejectsEmptyMapping) {
  EXPECT_THROW((void)evaluateReplicated(eval_, ReplicatedMapping{}), MappingError);
}

}  // namespace
}  // namespace pipesched::core
