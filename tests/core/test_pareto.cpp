// Unit tests for Pareto dominance and front maintenance.
#include <gtest/gtest.h>

#include "pipesched/core/pareto.hpp"

namespace pipesched::core {
namespace {

ParetoPoint pt(Real period, Real latency) { return ParetoPoint{period, latency, std::nullopt}; }

TEST(Pareto, DominanceRequiresNoWorseBothAndStrictlyBetterOne) {
  EXPECT_TRUE(dominates(pt(1, 1), pt(2, 2)));
  EXPECT_TRUE(dominates(pt(1, 2), pt(2, 2)));
  EXPECT_TRUE(dominates(pt(2, 1), pt(2, 2)));
  EXPECT_FALSE(dominates(pt(2, 2), pt(2, 2)));  // equal: no strict improvement
  EXPECT_FALSE(dominates(pt(1, 3), pt(2, 2)));  // trade-off: incomparable
  EXPECT_FALSE(dominates(pt(3, 1), pt(2, 2)));
}

TEST(Pareto, FrontFiltersDominatedPoints) {
  const auto front = paretoFront({pt(1, 5), pt(2, 3), pt(3, 4), pt(4, 1), pt(5, 2)});
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].period, 1);
  EXPECT_DOUBLE_EQ(front[1].period, 2);
  EXPECT_DOUBLE_EQ(front[2].period, 4);
}

TEST(Pareto, FrontIsSortedByPeriod) {
  const auto front = paretoFront({pt(5, 1), pt(1, 5), pt(3, 3)});
  ASSERT_EQ(front.size(), 3u);
  EXPECT_LT(front[0].period, front[1].period);
  EXPECT_LT(front[1].period, front[2].period);
  // And latency decreases along a true front.
  EXPECT_GT(front[0].latency, front[1].latency);
  EXPECT_GT(front[1].latency, front[2].latency);
}

TEST(Pareto, DuplicateCoordinatesCollapse) {
  const auto front = paretoFront({pt(1, 2), pt(1, 2), pt(1, 2)});
  EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, BuilderRejectsDominatedOffer) {
  ParetoFrontBuilder b;
  EXPECT_TRUE(b.offer(pt(1, 1)));
  EXPECT_FALSE(b.offer(pt(2, 2)));
  EXPECT_EQ(b.size(), 1u);
}

TEST(Pareto, BuilderEvictsNewlyDominated) {
  ParetoFrontBuilder b;
  EXPECT_TRUE(b.offer(pt(3, 3)));
  EXPECT_TRUE(b.offer(pt(5, 1)));
  EXPECT_TRUE(b.offer(pt(1, 1)));  // dominates both
  const auto front = b.take();
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].period, 1);
  EXPECT_DOUBLE_EQ(front[0].latency, 1);
}

TEST(Pareto, BuilderKeepsIncomparableChain) {
  ParetoFrontBuilder b;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(b.offer(pt(Real(i), Real(9 - i))));
  }
  EXPECT_EQ(b.size(), 10u);
}

TEST(Pareto, MappingPayloadSurvives) {
  ParetoFrontBuilder b;
  ParetoPoint p = pt(1, 1);
  p.mapping = IntervalMapping::singleInterval(4, 0);
  b.offer(std::move(p));
  const auto front = b.take();
  ASSERT_EQ(front.size(), 1u);
  ASSERT_TRUE(front[0].mapping.has_value());
  EXPECT_EQ(front[0].mapping->intervalCount(), 1u);
}

}  // namespace
}  // namespace pipesched::core
