// serve's observability/shutdown surface, end to end through the CLI:
// the terminal stats-snapshot bugfix, signal-initiated graceful drain for
// the stdio transport, the full --listen network path over a real loopback
// socket, and the offline Prometheus twin (`stats --format prometheus`).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../net/net_test_util.hpp"
#include "cli_test_util.hpp"
#include "pipesched/net/socket.hpp"

// Test seam exported by cmd_serve.cpp: exactly what the SIGINT/SIGTERM
// handler does (stop flag + listen-server wake), callable from any thread.
namespace pipesched::cli::detail {
void requestServeShutdown();
}

namespace pipesched::cli {
namespace {

using testutil::RunResult;
using testutil::run;
using testutil::tempPath;

std::string writeInput(const std::string& name, int lines) {
  const std::string path = tempPath(name);
  std::ofstream f(path);
  for (int seed = 1; seed <= lines; ++seed) {
    f << "{\"kind\":\"E1\",\"stages\":4,\"processors\":3,\"seed\":" << seed << "}\n";
  }
  return path;
}

std::vector<std::string> fileLines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) lines.push_back(line);
  return lines;
}

TEST(CliServeStats, StatsOutputWithoutIntervalGetsTerminalSnapshot) {
  // The pinned bug: --stats-output FILE with no --stats-interval used to
  // produce a 0-byte file because the terminal emit was guarded on the
  // interval alone. The combination must yield exactly one snapshot line.
  const std::string input = writeInput("terminal_snap_input.jsonl", 2);
  const std::string statsPath = tempPath("terminal_snap_stats.jsonl");

  const RunResult r =
      run({"serve", "--input", input, "--serial", "--stats-output", statsPath});
  EXPECT_EQ(r.code, 0) << r.err;

  const std::vector<std::string> lines = fileLines(statsPath);
  ASSERT_EQ(lines.size(), 1u) << "expected exactly the terminal snapshot";
  EXPECT_NE(lines[0].find("\"type\":\"stats\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"completed\":2"), std::string::npos);
}

TEST(CliServeStats, InputEndingMidIntervalStillSnapshots) {
  // A 60 s interval never fires for a sub-second run; the terminal emit
  // must still record the run.
  const std::string input = writeInput("mid_interval_input.jsonl", 1);
  const std::string statsPath = tempPath("mid_interval_stats.jsonl");

  const RunResult r = run({"serve", "--input", input, "--serial", "--stats-interval",
                           "60", "--stats-output", statsPath});
  EXPECT_EQ(r.code, 0) << r.err;
  const std::vector<std::string> lines = fileLines(statsPath);
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines.back().find("\"type\":\"stats\""), std::string::npos);
}

TEST(CliServeShutdown, PreArmedStopDrainsStdioServeWithExitZero) {
  // Deterministic stand-in for a mid-run SIGTERM: arm the stop flag before
  // the run. The admission gate then refuses every line, the engine drains
  // nothing, and the run must still exit 0 with the drain marker. The flag
  // is reset when serve's scoped handlers unwind, so later tests are clean.
  const std::string input = writeInput("prearmed_stop_input.jsonl", 3);
  detail::requestServeShutdown();
  const RunResult r = run({"serve", "--input", input, "--serial"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out, "");  // no line was admitted past the gate
  EXPECT_NE(r.err.find("stopped by signal, drained"), std::string::npos) << r.err;

  // And the flag really was reset: the same serve now runs to completion.
  const RunResult again = run({"serve", "--input", input, "--serial"});
  EXPECT_EQ(again.code, 0) << again.err;
  std::istringstream outcomes(again.out);
  std::string line;
  std::size_t outcomeLines = 0;
  while (std::getline(outcomes, line)) ++outcomeLines;
  EXPECT_EQ(outcomeLines, 3u) << again.out;
  EXPECT_EQ(again.err.find("stopped by signal"), std::string::npos) << again.err;
}

TEST(CliServeListen, ServesSolveOverLoopbackThenDrainsOnShutdown) {
  const std::string portPath = tempPath("listen_port_file.txt");
  RunResult result;
  std::thread server([&result, &portPath] {
    result = run({"serve", "--listen", "127.0.0.1:0", "--port-file", portPath,
                  "--serial"});
  });

  // The port file appears once the listener is bound: "HOST PORT\n".
  net::Endpoint endpoint;
  bool published = false;
  for (int tries = 0; tries < 500 && !published; ++tries) {
    std::ifstream f(portPath);
    published = static_cast<bool>(f >> endpoint.host >> endpoint.port);
    if (!published) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(published) << "port file never appeared";
  ASSERT_NE(endpoint.port, 0);

  const std::string body =
      "{\"kind\":\"E1\",\"stages\":4,\"processors\":3,\"seed\":7}\n";
  const net::testutil::ClientResponse solve =
      net::testutil::fetch(endpoint, "POST", "/solve", body);
  EXPECT_EQ(solve.status, 200);
  EXPECT_NE(solve.body.find("\"index\":0"), std::string::npos) << solve.body;
  EXPECT_NE(solve.body.find("\"ok\":true"), std::string::npos) << solve.body;

  const net::testutil::ClientResponse health =
      net::testutil::fetch(endpoint, "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);

  // A served response proves run() is past the point where the signal
  // handler can see the server, so the stop cannot be lost.
  detail::requestServeShutdown();
  server.join();

  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out, "");  // outcomes travel over HTTP, never stdout
  EXPECT_NE(result.err.find("serve: listening on 127.0.0.1:"), std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("serve: drained — "), std::string::npos) << result.err;
  EXPECT_NE(result.err.find("2 http request(s)"), std::string::npos) << result.err;
  // The drain removed the published port file: scripts polling it never
  // find a port that no longer answers.
  EXPECT_FALSE(std::ifstream(portPath).good()) << "port file survived the drain";
}

TEST(CliServeListen, PortFileIsRemovedAfterRealSigtermDrain) {
  const std::string portPath = tempPath("sigterm_port_file.txt");
  RunResult result;
  std::thread server([&result, &portPath] {
    result = run({"serve", "--listen", "127.0.0.1:0", "--port-file", portPath,
                  "--serial"});
  });

  net::Endpoint endpoint;
  bool published = false;
  for (int tries = 0; tries < 500 && !published; ++tries) {
    std::ifstream f(portPath);
    published = static_cast<bool>(f >> endpoint.host >> endpoint.port);
    if (!published) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(published) << "port file never appeared";

  // A served response proves run() is active, which in turn proves the
  // scoped SIGTERM handler is installed — only then is the real signal safe.
  const net::testutil::ClientResponse health =
      net::testutil::fetch(endpoint, "GET", "/healthz");
  ASSERT_EQ(health.status, 200);
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  server.join();

  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.err.find("serve: drained — "), std::string::npos) << result.err;
  EXPECT_FALSE(std::ifstream(portPath).good()) << "port file survived SIGTERM drain";
}

TEST(CliServeFaults, BadFaultSpecIsAUsageError) {
  const std::string input = writeInput("bad_fault_input.jsonl", 1);
  const RunResult r =
      run({"serve", "--input", input, "--serial", "--fault-spec", "net.read=p:nope"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("fault-spec"), std::string::npos) << r.err;
}

TEST(CliServeFaults, MemberFaultStormDegradesOutcomesButServeSurvives) {
  // Every portfolio member fails on every request: outcomes are flagged
  // degraded, nothing crashes, and the exit code stays 0 (ok outcomes).
  const std::string input = writeInput("fault_storm_input.jsonl", 3);
  const RunResult r =
      run({"serve", "--input", input, "--serial", "--fault-spec", "member.*"});
  EXPECT_EQ(r.code, 0) << r.err;
  std::istringstream outcomes(r.out);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(outcomes, line)) {
    ++lines;
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    EXPECT_NE(line.find("\"degraded\":true"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 3u) << r.out;
}

TEST(CliStats, PrometheusFormatRendersTheRegistry) {
  const std::string input = writeInput("prom_stats_input.jsonl", 2);
  const RunResult r = run({"stats", "--format", "prometheus", "--input", input});
  EXPECT_EQ(r.code, 0) << r.err;
  // The preregistered catalog is fully enumerated even for metrics this
  // offline run never touches (the network counters), and traffic-driven
  // ones carry real values.
  EXPECT_EQ(r.out.rfind("# HELP ", 0), 0u) << r.out.substr(0, 80);
  EXPECT_NE(r.out.find("# TYPE pipesched_net_shed_total counter\n"), std::string::npos);
  EXPECT_NE(r.out.find("pipesched_net_shed_total 0\n"), std::string::npos);
  EXPECT_NE(r.out.find("pipesched_net_endpoint_solve_count 0\n"), std::string::npos);

  const RunResult bad = run({"stats", "--format", "yaml"});
  EXPECT_NE(bad.code, 0);
  EXPECT_NE(bad.err.find("--format"), std::string::npos);
}

}  // namespace
}  // namespace pipesched::cli
