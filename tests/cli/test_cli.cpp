// End-to-end CLI tests: every subcommand driven through runCli with
// in-memory streams and temp files, covering happy paths, exit codes and
// error reporting.
#include <gtest/gtest.h>

#include <fstream>

#include "cli_test_util.hpp"
#include "pipesched/io/format.hpp"

namespace pipesched::cli {
namespace {

using testutil::RunResult;
using testutil::run;
using testutil::tempPath;

/// Generates a small instance file once and returns its path.
const std::string& instancePath() {
  static const std::string path = [] {
    const std::string p = tempPath("cli_instance.psi");
    const RunResult r = run({"generate", "--kind", "E2", "--stages", "8", "--processors",
                             "4", "--seed", "7", "--name", "cli test", "--output", p});
    EXPECT_EQ(r.code, 0) << r.err;
    return p;
  }();
  return path;
}

/// Solves the shared instance once and returns the mapping file path.
const std::string& mappingPath() {
  static const std::string path = [] {
    const std::string p = tempPath("cli_mapping.psm");
    const RunResult r = run({"solve", "--instance", instancePath(), "--period", "12",
                             "--mapping-out", p});
    EXPECT_EQ(r.code, 0) << r.err;
    return p;
  }();
  return path;
}

TEST(Cli, HelpPrintsUsageAndSucceeds) {
  const RunResult r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: pipesched"), std::string::npos);
}

TEST(Cli, NoArgsFailsWithUsage) {
  const RunResult r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const RunResult r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownOptionIsReported) {
  const RunResult r = run({"table1", "--kind", "E1", "--procesors", "4"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--procesors"), std::string::npos);
}

TEST(Cli, GenerateWritesAParsableInstance) {
  const io::Instance inst = io::readInstanceFromFile(instancePath());
  EXPECT_EQ(inst.pipeline.stageCount(), 8u);
  EXPECT_EQ(inst.platform.processorCount(), 4u);
  EXPECT_EQ(inst.name, "cli test");
  EXPECT_TRUE(inst.platform.isCommHomogeneous());
}

TEST(Cli, GenerateIsDeterministicPerSeed) {
  const std::string a = tempPath("cli_gen_a.psi");
  const std::string b = tempPath("cli_gen_b.psi");
  ASSERT_EQ(run({"generate", "--kind", "E1", "--stages", "5", "--processors", "3",
                 "--seed", "42", "--output", a})
                .code,
            0);
  ASSERT_EQ(run({"generate", "--kind", "E1", "--stages", "5", "--processors", "3",
                 "--seed", "42", "--output", b})
                .code,
            0);
  std::ifstream fa(a), fb(b);
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Cli, GenerateHeteroEmitsLinkMatrix) {
  const std::string p = tempPath("cli_het.psi");
  ASSERT_EQ(run({"generate", "--kind", "E3", "--stages", "4", "--processors", "3",
                 "--hetero", "--output", p})
                .code,
            0);
  const io::Instance inst = io::readInstanceFromFile(p);
  EXPECT_FALSE(inst.platform.isCommHomogeneous());
}

TEST(Cli, GenerateValidatesArguments) {
  EXPECT_EQ(run({"generate", "--kind", "E9", "--stages", "4", "--processors", "3"}).code, 2);
  EXPECT_EQ(run({"generate", "--kind", "E1", "--stages", "0", "--processors", "3"}).code, 2);
  EXPECT_EQ(run({"generate", "--stages", "4", "--processors", "3"}).code, 2);
}

TEST(Cli, SolvePrintsATableAndWritesTheBestMapping) {
  const RunResult r = run({"solve", "--instance", instancePath(), "--period", "12"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("H1-SpMonoP"), std::string::npos);
  EXPECT_NE(r.out.find("best:"), std::string::npos);
  // The H5/H6 family must not appear for a --period threshold.
  EXPECT_EQ(r.out.find("H5-SpMonoL"), std::string::npos);

  const auto mapping = io::readMappingFromFile(mappingPath(), 8);
  EXPECT_GE(mapping.intervalCount(), 1u);
}

TEST(Cli, SolveLatencyFamilyUsesLatencyThreshold) {
  const RunResult r = run({"solve", "--instance", instancePath(), "--latency", "25"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("H5-SpMonoL"), std::string::npos);
  EXPECT_EQ(r.out.find("H1-SpMonoP"), std::string::npos);
}

TEST(Cli, SolveRequiresExactlyOneThreshold) {
  EXPECT_EQ(run({"solve", "--instance", instancePath()}).code, 2);
  EXPECT_EQ(
      run({"solve", "--instance", instancePath(), "--period", "9", "--latency", "9"}).code, 2);
}

TEST(Cli, SolveSingleHeuristicAndRefine) {
  const RunResult r = run({"solve", "--instance", instancePath(), "--period", "12",
                           "--heuristic", "H1", "--refine"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("H1-SpMonoP+LS"), std::string::npos);
  EXPECT_EQ(r.out.find("H2"), std::string::npos);
}

TEST(Cli, SolveWithBaselinesAddsRows) {
  const RunResult r = run({"solve", "--instance", instancePath(), "--period", "12",
                           "--baselines"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("B1-GreedyProbe"), std::string::npos);
  EXPECT_NE(r.out.find("B2-LocalSearch"), std::string::npos);
  EXPECT_NE(r.out.find("B3-Annealing"), std::string::npos);
}

TEST(Cli, SolveDealPrintsTheReplicatedMapping) {
  const RunResult r =
      run({"solve", "--instance", instancePath(), "--period", "12", "--deal"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("deal extension"), std::string::npos);
  EXPECT_NE(r.out.find("replications"), std::string::npos);
  // --deal without a period threshold is a usage error.
  EXPECT_EQ(run({"solve", "--instance", instancePath(), "--latency", "25", "--deal"}).code,
            2);
}

TEST(Cli, DealMappingRoundTripsThroughSolveAndSimulate) {
  const std::string dealFile = tempPath("cli_deal.psdm");
  const RunResult solved = run({"solve", "--instance", instancePath(), "--period", "8",
                                "--deal", "--deal-out", dealFile});
  ASSERT_NE(solved.code, 2) << solved.err;  // 0 or 1 (threshold may be infeasible)
  for (const char* discipline : {"ordered", "substreams"}) {
    const RunResult sim = run({"simulate", "--instance", instancePath(), "--mapping",
                               dealFile, "--deal", "--discipline", discipline,
                               "--datasets", "200"});
    EXPECT_EQ(sim.code, 0) << sim.err;
    EXPECT_NE(sim.out.find("replication model"), std::string::npos);
  }
  EXPECT_EQ(run({"simulate", "--instance", instancePath(), "--mapping", dealFile, "--deal",
                 "--discipline", "bogus"})
                .code,
            2);
  // --deal-out without --deal is a usage error.
  EXPECT_EQ(run({"solve", "--instance", instancePath(), "--period", "8", "--deal-out",
                 dealFile})
                .code,
            2);
}

TEST(Cli, SolveJsonEmitsAMappingObject) {
  const RunResult r = run({"solve", "--instance", instancePath(), "--period", "12", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"intervals\""), std::string::npos);
  EXPECT_NE(r.out.find("\"metrics\""), std::string::npos);
}

TEST(Cli, SolveInfeasibleThresholdExitsOne) {
  const RunResult r = run({"solve", "--instance", instancePath(), "--period", "0.01"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("no heuristic met the threshold"), std::string::npos);
}

TEST(Cli, SolveUnknownHeuristicFails) {
  EXPECT_EQ(run({"solve", "--instance", instancePath(), "--period", "9", "--heuristic",
                 "H9"})
                .code,
            2);
}

TEST(Cli, EvalReportsMetricsAndBottleneck) {
  const RunResult r =
      run({"eval", "--instance", instancePath(), "--mapping", mappingPath()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("period:"), std::string::npos);
  EXPECT_NE(r.out.find("(* = bottleneck interval)"), std::string::npos);
}

TEST(Cli, EvalOverlapModelDiffers) {
  const RunResult seq =
      run({"eval", "--instance", instancePath(), "--mapping", mappingPath()});
  const RunResult ovl =
      run({"eval", "--instance", instancePath(), "--mapping", mappingPath(), "--overlap"});
  EXPECT_EQ(ovl.code, 0) << ovl.err;
  EXPECT_NE(seq.out, ovl.out);
  EXPECT_NE(ovl.out.find("overlapped (ablation)"), std::string::npos);
}

TEST(Cli, EvalMissingFileExitsOne) {
  const RunResult r =
      run({"eval", "--instance", "/nonexistent.psi", "--mapping", mappingPath()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, SimulateMatchesTheModelOnTheCleanRun) {
  const RunResult r = run({"simulate", "--instance", instancePath(), "--mapping",
                           mappingPath(), "--datasets", "50"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("model (Eq. 1/2)"), std::string::npos);
}

TEST(Cli, SimulateGanttAndTraceCsv) {
  const std::string csv = tempPath("cli_trace.csv");
  const RunResult r = run({"simulate", "--instance", instancePath(), "--mapping",
                           mappingPath(), "--datasets", "10", "--gantt", "--gantt-width",
                           "50", "--trace-csv", csv});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("time: 0 .."), std::string::npos);
  std::ifstream file(csv);
  std::string header;
  ASSERT_TRUE(std::getline(file, header));
  EXPECT_EQ(header, "kind,time,index,dataset");
}

TEST(Cli, SimulateJitterTrialsPrintRobustness) {
  const RunResult r = run({"simulate", "--instance", instancePath(), "--mapping",
                           mappingPath(), "--datasets", "60", "--jitter", "0.3", "--trials",
                           "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("robustness over 3 jittered trials"), std::string::npos);
  EXPECT_NE(r.out.find("degradation"), std::string::npos);
}

TEST(Cli, ParetoWithExactFrontAndGap) {
  const RunResult r =
      run({"pareto", "--instance", instancePath(), "--points", "6", "--exact"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Merged heuristic Pareto front"), std::string::npos);
  EXPECT_NE(r.out.find("Exact Pareto front"), std::string::npos);
  EXPECT_NE(r.out.find("heuristic-front gap"), std::string::npos);
}

TEST(Cli, ParetoExactRefusesLargeInstances) {
  const std::string big = tempPath("cli_big.psi");
  ASSERT_EQ(run({"generate", "--kind", "E1", "--stages", "20", "--processors", "8",
                 "--output", big})
                .code,
            0);
  const RunResult r = run({"pareto", "--instance", big, "--exact"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("small instance"), std::string::npos);
}

TEST(Cli, SweepPrintsSeriesOrCsv) {
  const std::vector<std::string> base = {"sweep", "--kind", "E1", "--stages", "5",
                                         "--processors", "4", "--pairs", "3", "--points", "4"};
  const RunResult text = run(base);
  EXPECT_EQ(text.code, 0) << text.err;
  EXPECT_NE(text.out.find("H1-SpMonoP"), std::string::npos);

  std::vector<std::string> csvArgs = base;
  csvArgs.push_back("--csv");
  const RunResult csv = run(csvArgs);
  EXPECT_EQ(csv.code, 0) << csv.err;
  EXPECT_NE(csv.out.find("experiment,stages,processors,heuristic"), std::string::npos);
}

TEST(Cli, Table1PrintsTheLayout) {
  const RunResult r = run({"table1", "--kind", "E4", "--processors", "4", "--pairs", "2",
                           "--stages", "5,10"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Failure thresholds"), std::string::npos);
  EXPECT_NE(r.out.find("n=10"), std::string::npos);
  EXPECT_NE(r.out.find("H6-SpBiL"), std::string::npos);
}

TEST(Cli, Table1RejectsBadStageList) {
  EXPECT_EQ(run({"table1", "--kind", "E1", "--stages", "5,x"}).code, 2);
  EXPECT_EQ(run({"table1", "--kind", "E1", "--stages", "0"}).code, 2);
}

}  // namespace
}  // namespace pipesched::cli
