// End-to-end tests of `pipesched serve`: the JSONL request/response loop,
// ordered incremental output, graceful malformed-line handling, and front
// parity with the batch command on the same instance file.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "cli_test_util.hpp"
#include "pipesched/io/json_reader.hpp"

namespace pipesched::cli {
namespace {

using testutil::RunResult;
using testutil::run;
using testutil::tempPath;

std::string writeLines(const std::string& name, const std::vector<std::string>& lines) {
  const std::string path = tempPath(name);
  std::ofstream out(path);
  for (const std::string& line : lines) out << line << "\n";
  return path;
}

std::vector<io::JsonValue> parseOutputLines(const std::string& text) {
  std::vector<io::JsonValue> parsed;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) parsed.push_back(io::parseJson(line));
  }
  return parsed;
}

TEST(CliServe, SolvesAJsonlStreamInInputOrder) {
  const std::string input = writeLines(
      "serve_basic.jsonl",
      {R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 0})",
       R"({"kind": "E1", "stages": 5, "processors": 3, "seed": 1, "name": "second"})",
       R"({"kind": "E4", "stages": 4, "processors": 3, "seed": 2})"});
  const RunResult r = run({"serve", "--input", input, "--points", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  const std::vector<io::JsonValue> lines = parseOutputLines(r.out);
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(lines[i].find("index")->asSize(), i);
    EXPECT_EQ(lines[i].find("line")->asSize(), i + 1);  // input-line correlation
    EXPECT_TRUE(lines[i].find("ok")->asBool());
    EXPECT_FALSE(lines[i].find("front")->items.empty());
  }
  EXPECT_EQ(lines[1].find("name")->asString(), "second");
  EXPECT_NE(r.err.find("3 request(s)"), std::string::npos);
}

TEST(CliServe, MalformedLinesAreReportedAndTheRestStillSolve) {
  const std::string input = writeLines(
      "serve_bad.jsonl", {R"({"kind": "E1", "stages": 4, "processors": 3, "seed": 5})",
                          "this is not json",
                          R"({"kind": "E1", "stages": 4, "processors": 3, "seed": 6})"});
  const RunResult r = run({"serve", "--input", input, "--points", "4"});
  EXPECT_EQ(r.code, 1);  // parse errors fail the exit code...
  const std::vector<io::JsonValue> lines = parseOutputLines(r.out);
  ASSERT_EQ(lines.size(), 3u);  // ...but every line got an answer
  std::size_t errors = 0;
  std::size_t solved = 0;
  std::vector<std::size_t> solvedLines;
  for (const io::JsonValue& line : lines) {
    if (line.find("ok")->asBool()) {
      ++solved;
      solvedLines.push_back(line.find("line")->asSize());
    } else {
      ++errors;
      EXPECT_EQ(line.find("line")->asSize(), 2u);
      const std::string message = line.find("error")->asString();
      EXPECT_FALSE(message.empty());
      // No stale inner "line 1:" prefix — line 2 is the only line that counts.
      EXPECT_EQ(message.rfind("line 1:", 0), std::string::npos) << message;
    }
  }
  EXPECT_EQ(solved, 2u);
  EXPECT_EQ(errors, 1u);
  // Outcomes point at their true input lines even across the malformed gap.
  EXPECT_EQ(solvedLines, (std::vector<std::size_t>{1, 3}));
  EXPECT_NE(r.err.find("1 parse error(s)"), std::string::npos);
}

TEST(CliServe, FrontsMatchTheBatchCommandOnTheSameFile) {
  const std::string instance = tempPath("serve_parity.psi");
  ASSERT_EQ(run({"generate", "--kind", "E2", "--stages", "6", "--processors", "4", "--seed",
                 "9", "--name", "parity", "--output", instance})
                .code,
            0);
  const std::string input = writeLines("serve_parity.jsonl", {"{\"file\": \"" + instance + "\"}"});

  const RunResult served = run({"serve", "--input", input, "--points", "6", "--serial"});
  ASSERT_EQ(served.code, 0) << served.err;
  const RunResult batched = run({"batch", instance, "--points", "6", "--serial", "--json"});
  ASSERT_EQ(batched.code, 0) << batched.err;

  const std::vector<io::JsonValue> lines = parseOutputLines(served.out);
  ASSERT_EQ(lines.size(), 1u);
  const io::JsonValue batchDoc = io::parseJson(batched.out);
  const io::JsonValue& batchRequest = batchDoc.find("requests")->items.at(0);
  // Same fingerprint (identical model content) and identical front geometry.
  EXPECT_EQ(lines[0].find("fingerprint")->asString(),
            batchRequest.find("fingerprint")->asString());
  const auto& streamFront = lines[0].find("front")->items;
  const auto& batchFront = batchRequest.find("front")->items;
  ASSERT_EQ(streamFront.size(), batchFront.size());
  for (std::size_t i = 0; i < streamFront.size(); ++i) {
    EXPECT_EQ(streamFront[i].find("period")->asNumber(),
              batchFront[i].find("period")->asNumber());
    EXPECT_EQ(streamFront[i].find("latency")->asNumber(),
              batchFront[i].find("latency")->asNumber());
  }
}

TEST(CliServe, MissingInputFileIsARuntimeError) {
  const RunResult r = run({"serve", "--input", tempPath("serve_nope.jsonl")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open input"), std::string::npos);
}

TEST(CliServe, UnknownOptionIsAUsageError) {
  const RunResult r = run({"serve", "--wat", "7"});
  EXPECT_EQ(r.code, 2);
}

TEST(CliServe, SerialAndThreadsTogetherAreAcceptedWithSerialWinning) {
  // --serial must override --threads, not turn it into an "unknown option"
  // error (batch and serve share the config reader, so both behave alike).
  const std::string input = writeLines(
      "serve_serial.jsonl", {R"({"kind": "E1", "stages": 4, "processors": 3, "seed": 1})"});
  const RunResult r = run({"serve", "--input", input, "--points", "4", "--serial",
                           "--threads", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("1 request(s)"), std::string::npos);
}

TEST(CliBatchStream, EmitsJsonlPlusStatsAndMatchesSerialFronts) {
  const std::string instance = tempPath("stream_mode.psi");
  ASSERT_EQ(run({"generate", "--kind", "E3", "--stages", "6", "--processors", "4", "--seed",
                 "13", "--output", instance})
                .code,
            0);
  const RunResult streamed = run({"batch", instance, instance, "--stream", "--points", "4",
                                  "--threads", "2", "--queue-capacity", "2"});
  EXPECT_EQ(streamed.code, 0) << streamed.err;
  const std::vector<io::JsonValue> lines = parseOutputLines(streamed.out);
  ASSERT_EQ(lines.size(), 3u);  // two outcomes + the stats trailer
  EXPECT_TRUE(lines[0].find("ok")->asBool());
  EXPECT_TRUE(lines[1].find("ok")->asBool());
  const io::JsonValue* stats = lines[2].find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("requests")->asSize(), 2u);
  EXPECT_EQ(stats->find("failed")->asSize(), 0u);
  // The duplicate was shared (coalesced or cache hit), never solved twice...
  EXPECT_EQ(stats->find("solved")->asSize(), 1u);
  // ...and both outcome lines carry the same front.
  EXPECT_EQ(lines[0].find("front")->items.size(), lines[1].find("front")->items.size());
}

TEST(CliBatchStream, RepeatPassesAreServedByTheCache) {
  const RunResult r = run({"batch", "--kind", "E1", "--count", "2", "--stages", "5",
                           "--processors", "3", "--points", "4", "--stream", "--repeat", "3",
                           "--serial"});
  EXPECT_EQ(r.code, 0) << r.err;
  const std::vector<io::JsonValue> lines = parseOutputLines(r.out);
  ASSERT_EQ(lines.size(), 7u);  // 3 passes x 2 outcomes + stats
  for (std::size_t i = 0; i < 6; ++i) {
    // Indices stay globally increasing across passes — consumers correlate
    // outcome lines by them.
    EXPECT_EQ(lines[i].find("index")->asSize(), i);
  }
  const io::JsonValue* stats = lines[6].find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("requests")->asSize(), 6u);
  EXPECT_EQ(stats->find("solved")->asSize(), 2u);
  EXPECT_EQ(stats->find("cache_hits")->asSize(), 4u);
}

TEST(CliServe, SolverRowsCarryPerMemberContributionStats) {
  const std::string input = writeLines(
      "serve_members.jsonl",
      {R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 9})"});
  const RunResult r = run({"serve", "--input", input, "--points", "4", "--serial"});
  EXPECT_EQ(r.code, 0) << r.err;
  const std::vector<io::JsonValue> lines = parseOutputLines(r.out);
  ASSERT_GE(lines.size(), 1u);
  const io::JsonValue* solvers = lines[0].find("solvers");
  ASSERT_NE(solvers, nullptr);
  ASSERT_FALSE(solvers->items.empty());
  for (const io::JsonValue& solver : solvers->items) {
    ASSERT_NE(solver.find("units"), nullptr);
    ASSERT_NE(solver.find("novel"), nullptr);
    ASSERT_NE(solver.find("merged"), nullptr);
    ASSERT_NE(solver.find("skipped"), nullptr);
    ASSERT_NE(solver.find("dropped"), nullptr);
  }
  // The 4-point grid gives every sweeping member 4 units.
  EXPECT_EQ(solvers->items.front().find("units")->asSize(), 4u);
}

TEST(CliServe, GarbageAndValidLinesUnderWorkersNeverCorruptTheJsonlStream) {
  // Parse-error lines are written from the source-pull side while outcome
  // lines come from the sink side; both must go through the one guarded line
  // writer — every output line must parse as a complete JSON object, with
  // garbage and solves interleaved and workers >= 2.
  std::vector<std::string> lines;
  std::size_t valid = 0;
  std::size_t garbage = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (i % 3 == 1) {
      lines.push_back("{\"broken\": " + std::to_string(i));  // truncated JSON
      ++garbage;
    } else if (i % 7 == 3) {
      lines.push_back("not json at all ###" + std::to_string(i));
      ++garbage;
    } else {
      lines.push_back(R"({"kind": "E1", "stages": 4, "processors": 3, "seed": )" +
                      std::to_string(i % 5) + "}");
      ++valid;
    }
  }
  const std::string input = writeLines("serve_stress.jsonl", lines);
  const RunResult r =
      run({"serve", "--input", input, "--points", "3", "--threads", "2",
           "--queue-capacity", "4"});
  EXPECT_EQ(r.code, 1);  // parse errors fail the exit code
  // parseOutputLines throws on any torn/interleaved line.
  const std::vector<io::JsonValue> parsed = parseOutputLines(r.out);
  ASSERT_EQ(parsed.size(), valid + garbage);
  std::size_t ok = 0;
  std::size_t failed = 0;
  for (const io::JsonValue& line : parsed) {
    ASSERT_NE(line.find("ok"), nullptr);
    line.find("ok")->asBool() ? ++ok : ++failed;
  }
  EXPECT_EQ(ok, valid);
  EXPECT_EQ(failed, garbage);
}

TEST(CliServe, WarmSweepsShareSubResultsAcrossRequests) {
  // The same instance swept at 5 then 9 points: the second request's
  // even-index thresholds are already solved, so the serve loop reports
  // sub-result hits — and none with --share-subresults off.
  const std::string input = writeLines(
      "serve_share.jsonl",
      {R"({"kind": "E2", "stages": 10, "processors": 6, "seed": 3, "points": 5})",
       R"({"kind": "E2", "stages": 10, "processors": 6, "seed": 3, "points": 9})"});
  const RunResult shared = run({"serve", "--input", input, "--serial"});
  EXPECT_EQ(shared.code, 0) << shared.err;
  EXPECT_EQ(shared.err.find("sub_hits=0,"), std::string::npos) << shared.err;
  EXPECT_NE(shared.err.find("sub_hits="), std::string::npos) << shared.err;
  const RunResult cold =
      run({"serve", "--input", input, "--serial", "--share-subresults", "off"});
  EXPECT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("sub_hits=0,"), std::string::npos) << cold.err;
  // The fronts themselves are byte-identical either way (only provenance
  // counters may differ) — the differential guarantee, at the CLI level.
  const auto fronts = [](const std::string& text) {
    std::vector<std::string> rendered;
    for (const io::JsonValue& line : parseOutputLines(text)) {
      std::string s;
      for (const io::JsonValue& p : line.find("front")->items) {
        s += std::to_string(p.find("period")->asNumber()) + "," +
             std::to_string(p.find("latency")->asNumber()) + ";";
      }
      rendered.push_back(s);
    }
    return rendered;
  };
  EXPECT_EQ(fronts(shared.out), fronts(cold.out));
}

TEST(CliServe, ShareSubresultsRejectsBadValues) {
  const RunResult r = run({"serve", "--share-subresults", "maybe"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("share-subresults"), std::string::npos);
}

TEST(CliServe, PortfolioMembersFlagReachesTheServeLoop) {
  const std::string input = writeLines(
      "serve_members_flag.jsonl",
      {R"({"kind": "E1", "stages": 6, "processors": 3, "seed": 4})"});
  const RunResult r = run({"serve", "--input", input, "--points", "4", "--serial",
                           "--portfolio-members", "H1,c2c", "--no-exact"});
  EXPECT_EQ(r.code, 0) << r.err;
  const std::vector<io::JsonValue> lines = parseOutputLines(r.out);
  ASSERT_GE(lines.size(), 1u);
  const io::JsonValue* solvers = lines[0].find("solvers");
  ASSERT_NE(solvers, nullptr);
  ASSERT_EQ(solvers->items.size(), 2u);
  EXPECT_EQ(solvers->items[0].find("solver")->asString(), "H1-SpMonoP");
  EXPECT_EQ(solvers->items[1].find("solver")->asString(), "c2c-dp");
}

}  // namespace
}  // namespace pipesched::cli
