// Argument parser: option/flag/positional splitting, typed access, required
// options, `--key=value` syntax, and unknown-option detection.
#include <gtest/gtest.h>

#include "pipesched/cli/args.hpp"

namespace pipesched::cli {
namespace {

TEST(ArgList, SplitsPositionalsOptionsAndFlags) {
  const ArgList args({"input.txt", "--count", "3", "--verbose", "more"}, {"verbose"});
  EXPECT_EQ(args.positionals(), (std::vector<std::string>{"input.txt", "more"}));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.getOr("count", ""), "3");
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgList, EqualsSyntaxWorksForFlagsAndValues) {
  const ArgList args({"--count=7", "--name=a=b"}, {});
  EXPECT_EQ(args.getSize("count", 0), 7u);
  EXPECT_EQ(args.getOr("name", ""), "a=b");  // only the first '=' splits
}

TEST(ArgList, ValueOptionAtEndThrows) {
  EXPECT_THROW(ArgList({"--count"}, {}), UsageError);
}

TEST(ArgList, StrayDoubleDashThrows) {
  EXPECT_THROW(ArgList({"--"}, {}), UsageError);
}

TEST(ArgList, FlagConsumesNoValue) {
  const ArgList args({"--verbose", "positional"}, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.positionals().size(), 1u);
}

TEST(ArgList, RequireThrowsWhenAbsent) {
  const ArgList args({}, {});
  EXPECT_THROW((void)args.require("kind"), UsageError);
}

TEST(ArgList, FlagAccessedAsValueThrows) {
  const ArgList args({"--verbose"}, {"verbose"});
  EXPECT_THROW((void)args.get("verbose"), UsageError);
}

TEST(ArgList, TypedGettersValidate) {
  const ArgList args({"--x", "2.5", "--n", "4", "--bad", "4x", "--neg", "-3"}, {});
  EXPECT_DOUBLE_EQ(args.getReal("x", 0), 2.5);
  EXPECT_EQ(args.getSize("n", 0), 4u);
  EXPECT_THROW((void)args.getReal("bad", 0), UsageError);
  EXPECT_THROW((void)args.getSize("neg", 0), UsageError);
  EXPECT_THROW((void)args.getSize("x", 0), UsageError);  // fractional
  EXPECT_DOUBLE_EQ(args.getReal("absent", 9.5), 9.5);
  EXPECT_EQ(args.getU64("absent", 11u), 11u);
}

TEST(ArgList, AssertConsumedCatchesTypos) {
  const ArgList args({"--treshold", "3"}, {});
  EXPECT_THROW(args.assertConsumed(), UsageError);
  (void)args.get("treshold");
  EXPECT_NO_THROW(args.assertConsumed());
}

}  // namespace
}  // namespace pipesched::cli
