// Argument parser: option/flag/positional splitting, typed access, required
// options, `--key=value` syntax, and unknown-option detection.
#include <gtest/gtest.h>

#include "pipesched/cli/args.hpp"

namespace pipesched::cli {
namespace {

TEST(ArgList, SplitsPositionalsOptionsAndFlags) {
  const ArgList args({"input.txt", "--count", "3", "--verbose", "more"}, {"verbose"});
  EXPECT_EQ(args.positionals(), (std::vector<std::string>{"input.txt", "more"}));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.getOr("count", ""), "3");
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgList, EqualsSyntaxWorksForFlagsAndValues) {
  const ArgList args({"--count=7", "--name=a=b"}, {});
  EXPECT_EQ(args.getSize("count", 0), 7u);
  EXPECT_EQ(args.getOr("name", ""), "a=b");  // only the first '=' splits
}

TEST(ArgList, ValueOptionAtEndThrows) {
  EXPECT_THROW(ArgList({"--count"}, {}), UsageError);
}

TEST(ArgList, StrayDoubleDashThrows) {
  EXPECT_THROW(ArgList({"--"}, {}), UsageError);
}

TEST(ArgList, FlagConsumesNoValue) {
  const ArgList args({"--verbose", "positional"}, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.positionals().size(), 1u);
}

TEST(ArgList, RequireThrowsWhenAbsent) {
  const ArgList args({}, {});
  EXPECT_THROW((void)args.require("kind"), UsageError);
}

TEST(ArgList, FlagAccessedAsValueThrows) {
  const ArgList args({"--verbose"}, {"verbose"});
  EXPECT_THROW((void)args.get("verbose"), UsageError);
}

TEST(ArgList, TypedGettersValidate) {
  const ArgList args({"--x", "2.5", "--n", "4", "--bad", "4x", "--neg", "-3"}, {});
  EXPECT_DOUBLE_EQ(args.getReal("x", 0), 2.5);
  EXPECT_EQ(args.getSize("n", 0), 4u);
  EXPECT_THROW((void)args.getReal("bad", 0), UsageError);
  EXPECT_THROW((void)args.getSize("neg", 0), UsageError);
  EXPECT_THROW((void)args.getSize("x", 0), UsageError);  // fractional
  EXPECT_DOUBLE_EQ(args.getReal("absent", 9.5), 9.5);
  EXPECT_EQ(args.getU64("absent", 11u), 11u);
}

TEST(ArgList, AssertConsumedCatchesTypos) {
  const ArgList args({"--treshold", "3"}, {});
  EXPECT_THROW(args.assertConsumed(), UsageError);
  (void)args.get("treshold");
  EXPECT_NO_THROW(args.assertConsumed());
}

TEST(ArgList, RepeatedOptionsAreLastWinsWithAllOccurrencesConsumed) {
  // `--workers 2 --workers 4` must mean 4 — and the first occurrence must not
  // resurface as "unknown option --workers" in assertConsumed().
  const ArgList args({"--workers", "2", "--workers", "4"}, {});
  EXPECT_EQ(args.getSize("workers", 0), 4u);
  EXPECT_NO_THROW(args.assertConsumed());
  // Mixed syntaxes follow the same rule (the `--key=value` form included).
  const ArgList mixed({"--points=8", "--points", "12", "--points=24"}, {});
  EXPECT_EQ(mixed.getSize("points", 0), 24u);
  EXPECT_NO_THROW(mixed.assertConsumed());
  // Repeated flags stay flags.
  const ArgList flags({"--verbose", "--verbose"}, {"verbose"});
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_NO_THROW(flags.assertConsumed());
}

TEST(ArgList, GetU64RejectsNegativeInputsInsteadOfWrapping) {
  // std::stoull("-1") silently wraps to 2^64-1; the parser must reject it.
  const ArgList args({"--seed", "-1", "--big", "18446744073709551615"}, {});
  EXPECT_THROW((void)args.getU64("seed", 0), UsageError);
  EXPECT_EQ(args.getU64("big", 0), UINT64_MAX);  // the legitimate extreme still parses
  const ArgList padded({"--seed", " -7"}, {});
  EXPECT_THROW((void)padded.getU64("seed", 0), UsageError);
}

}  // namespace
}  // namespace pipesched::cli
