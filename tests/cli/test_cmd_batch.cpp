// End-to-end tests of the `pipesched batch` command: sources, determinism
// of the pooled vs serial paths, cache/dedupe reporting, JSON output, and
// usage errors.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli_test_util.hpp"

namespace pipesched::cli {
namespace {

using testutil::RunResult;
using testutil::run;
using testutil::tempPath;

TEST(CliBatch, ScenariosSolveCleanly) {
  const RunResult r = run({"batch", "--scenarios", "--points", "6"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("image-processing"), std::string::npos);
  EXPECT_NE(r.out.find("genomics-variant-calling"), std::string::npos);
  EXPECT_NE(r.out.find("streaming-etl"), std::string::npos);
  EXPECT_NE(r.out.find("0 failed"), std::string::npos);
}

TEST(CliBatch, GeneratedSuiteSolvesCleanly) {
  const RunResult r = run({"batch", "--kind", "E3", "--count", "4", "--stages", "6",
                           "--processors", "4", "--points", "6", "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("E3-n6p4-0"), std::string::npos);
  EXPECT_NE(r.out.find("E3-n6p4-3"), std::string::npos);
  // 6x4 is inside the exact-eligibility window.
  EXPECT_NE(r.out.find("solved+exact"), std::string::npos);
}

TEST(CliBatch, InstanceFilePositional) {
  const std::string path = tempPath("batch_instance.psi");
  ASSERT_EQ(run({"generate", "--kind", "E1", "--stages", "6", "--processors", "4", "--seed",
                 "3", "--name", "from-file", "--output", path})
                .code,
            0);
  const RunResult r = run({"batch", path, "--points", "6"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("from-file"), std::string::npos);
}

TEST(CliBatch, PooledAndSerialOutputsAreIdentical) {
  const std::vector<std::string> common = {"batch",  "--scenarios", "--kind",
                                           "E2",     "--count",     "3",
                                           "--stages", "8",         "--processors",
                                           "5",      "--points",    "8"};
  std::vector<std::string> serial = common;
  serial.push_back("--serial");
  std::vector<std::string> pooled = common;
  pooled.push_back("--threads");
  pooled.push_back("4");
  const RunResult a = run(serial);
  const RunResult b = run(pooled);
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(b.code, 0) << b.err;
  // Everything above the timing summary must match byte for byte.
  const std::string tableA = a.out.substr(0, a.out.find("\n\n"));
  const std::string tableB = b.out.substr(0, b.out.find("\n\n"));
  EXPECT_EQ(tableA, tableB);
}

TEST(CliBatch, RepeatPassesHitTheCache) {
  const RunResult r = run({"batch", "--scenarios", "--points", "4", "--repeat", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Pass 1 solves the 3 scenarios; passes 2 and 3 are pure cache traffic,
  // and the table (final pass) reports the cache as the source.
  EXPECT_NE(r.out.find("3 solved"), std::string::npos);
  EXPECT_NE(r.out.find("6 cache hit(s)"), std::string::npos);
  EXPECT_NE(r.out.find("9 request(s)"), std::string::npos);
  EXPECT_NE(r.out.find("cache "), std::string::npos);
}

TEST(CliBatch, DuplicateFilesDedupeWithinTheBatch) {
  const std::string path = tempPath("batch_dup.psi");
  ASSERT_EQ(run({"generate", "--kind", "E2", "--stages", "6", "--processors", "4", "--seed",
                 "11", "--output", path})
                .code,
            0);
  const RunResult r = run({"batch", path, path, "--points", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 solved"), std::string::npos);
  EXPECT_NE(r.out.find("1 deduped"), std::string::npos);
  EXPECT_NE(r.out.find("dedup"), std::string::npos);
}

TEST(CliBatch, JsonOutputIsWellFormedEnough) {
  const RunResult r = run({"batch", "--scenarios", "--points", "4", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"requests\""), std::string::npos);
  EXPECT_NE(r.out.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(r.out.find("\"front\""), std::string::npos);
  EXPECT_NE(r.out.find("\"stats\""), std::string::npos);
  EXPECT_NE(r.out.find("\"cache\""), std::string::npos);
}

TEST(CliBatch, BudgetOptionFlowsThrough) {
  const RunResult r = run({"batch", "--kind", "E1", "--count", "2", "--points", "8",
                           "--budget", "1", "--no-exact", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"budget_exhausted\": true"), std::string::npos);
}

TEST(CliBatch, OverlapModelChangesTheRequestIdentity) {
  const std::vector<std::string> base = {"batch", "--scenarios", "--points", "4", "--json"};
  std::vector<std::string> overlapped = base;
  overlapped.push_back("--overlap");
  const RunResult seq = run(base);
  const RunResult ovl = run(overlapped);
  EXPECT_EQ(seq.code, 0) << seq.err;
  EXPECT_EQ(ovl.code, 0) << ovl.err;
  // Same instances, different comm model: the fingerprints must differ.
  const auto fingerprintOf = [](const std::string& out) {
    const std::size_t at = out.find("\"fingerprint\": \"");
    return out.substr(at, 16 + 32);
  };
  EXPECT_NE(fingerprintOf(seq.out), fingerprintOf(ovl.out));
}

TEST(CliBatch, NoSourcesIsAUsageError) {
  const RunResult r = run({"batch"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("nothing to solve"), std::string::npos);
}

TEST(CliBatch, CountWithoutKindIsAUsageError) {
  const RunResult r = run({"batch", "--count", "4"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--count needs --kind"), std::string::npos);
}

TEST(CliBatch, MissingFileIsARuntimeError) {
  const RunResult r = run({"batch", tempPath("does_not_exist.psi")});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(CliBatch, PortfolioMembersAllWidensTheRace) {
  const RunResult r = run({"batch", "--kind", "E2", "--count", "2", "--stages", "8",
                           "--processors", "5", "--seed", "3", "--points", "6", "--serial",
                           "--portfolio-members", "all"});
  EXPECT_EQ(r.code, 0) << r.err;
  // The member summary reports every catalog member that accepted.
  EXPECT_NE(r.out.find("ls:H1"), std::string::npos);
  EXPECT_NE(r.out.find("sa:H6"), std::string::npos);
  EXPECT_NE(r.out.find("c2c-dp"), std::string::npos);
  EXPECT_NE(r.out.find("c2c-ls"), std::string::npos);
  EXPECT_NE(r.out.find("exact"), std::string::npos);
}

TEST(CliBatch, PortfolioMembersExplicitListRestrictsTheRace) {
  const RunResult r = run({"batch", "--kind", "E1", "--count", "1", "--stages", "6",
                           "--processors", "4", "--seed", "2", "--points", "6", "--serial",
                           "--portfolio-members", "H1,ls:H1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("H1-SpMonoP"), std::string::npos);
  EXPECT_NE(r.out.find("ls:H1"), std::string::npos);
  EXPECT_EQ(r.out.find("H2-3ExploMono"), std::string::npos);
  EXPECT_EQ(r.out.find("sa:H1"), std::string::npos);
}

TEST(CliBatch, PortfolioMembersDefaultKeywordMatchesNoFlag) {
  const std::vector<std::string> base = {"batch", "--kind",  "E2", "--count",
                                         "2",     "--stages", "8",  "--processors",
                                         "5",     "--seed",  "11", "--points",
                                         "6",     "--serial"};
  std::vector<std::string> withDefault = base;
  withDefault.push_back("--portfolio-members");
  withDefault.push_back("default");
  const RunResult a = run(base);
  const RunResult b = run(withDefault);
  EXPECT_EQ(a.code, 0) << a.err;
  // Identical up to the wall-clock summary line.
  const auto withoutTiming = [](const std::string& text) {
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("req/s") == std::string::npos) out << line << '\n';
    }
    return out.str();
  };
  EXPECT_EQ(withoutTiming(a.out), withoutTiming(b.out));
}

TEST(CliBatch, UnknownPortfolioMemberIsAUsageError) {
  const RunResult r = run({"batch", "--kind", "E1", "--count", "1", "--stages", "6",
                           "--processors", "4", "--portfolio-members", "H1,bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown portfolio member 'bogus'"), std::string::npos);
}

TEST(CliBatch, DropAfterReportsSkippedUnits) {
  // A long, narrow sweep on a tiny platform plateaus fast: drop-after=1
  // must skip units and say so in the member summary ("skipped" column).
  const RunResult r = run({"batch", "--kind", "E1", "--count", "1", "--stages", "6",
                           "--processors", "2", "--seed", "7", "--points", "16", "--serial",
                           "--no-exact", "--drop-after", "1", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"members\""), std::string::npos);
  EXPECT_NE(r.out.find("\"skipped\""), std::string::npos);
  // At least one member reports a non-zero skip.
  bool sawSkip = false;
  std::istringstream lines(r.out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"skipped\"") != std::string::npos &&
        line.find("\"skipped\": 0") == std::string::npos) {
      sawSkip = true;
    }
  }
  EXPECT_TRUE(sawSkip);
}

TEST(CliBatch, SubResultStatsSurfaceInTextAndJson) {
  // H1 + its refiners on one instance: the refiners warm-start from H1's
  // published seeds even on a single cold request, so the summary shows
  // sub-result hits and the member rows carry the reused/seeded columns.
  const std::vector<std::string> common = {
      "batch",        "--kind", "E1",     "--count",  "1",       "--stages",
      "8",            "--processors", "4", "--points", "5",      "--serial",
      "--no-exact",   "--portfolio-members", "H1,ls:H1,sa:H1"};
  std::vector<std::string> text = common;
  const RunResult t = run(text);
  EXPECT_EQ(t.code, 0) << t.err;
  EXPECT_NE(t.out.find("sub-results:"), std::string::npos);
  EXPECT_NE(t.out.find("seeded"), std::string::npos);
  std::vector<std::string> json = common;
  json.push_back("--json");
  const RunResult j = run(json);
  EXPECT_EQ(j.code, 0) << j.err;
  EXPECT_NE(j.out.find("\"sub_hits\""), std::string::npos);
  EXPECT_NE(j.out.find("\"sub_units_reused\""), std::string::npos);
  EXPECT_NE(j.out.find("\"seeded\""), std::string::npos);
  EXPECT_NE(j.out.find("\"sub_cache\""), std::string::npos);
  EXPECT_EQ(j.out.find("\"sub_hits\": 0,"), std::string::npos) << j.out;
}

TEST(CliBatch, ShareSubresultsOffIsAccepted) {
  const RunResult r = run({"batch", "--kind", "E1", "--count", "1", "--stages", "5",
                           "--processors", "3", "--points", "4", "--serial",
                           "--share-subresults", "off"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("sub-results: 0 hit(s)"), std::string::npos) << r.out;
}

/// The committed 10-instance suite behind tests/golden/batch_members_all.json
/// (CI re-runs the same command through the installed binary and diffs).
std::vector<std::string> goldenArgs() {
  return {"batch",    "--kind",   "E2", "--count",        "10",  "--stages", "12",
          "--processors", "6",    "--seed", "1",          "--points", "6",
          "--serial", "--no-cache", "--portfolio-members", "all", "--drop-after", "4",
          "--json"};
}

/// Strips the two wall-clock-dependent stats lines, matching the CI filter
/// (grep -vE '"(wall_seconds|requests_per_second)"').
std::string stripTimings(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"wall_seconds\"") != std::string::npos) continue;
    if (line.find("\"requests_per_second\"") != std::string::npos) continue;
    out << line << '\n';
  }
  return out.str();
}

TEST(CliBatch, GoldenWidenedPortfolioSuiteMatchesCommittedFile) {
  const std::filesystem::path golden = std::filesystem::path(__FILE__).parent_path()
                                           .parent_path() /
                                       "golden" / "batch_members_all.json";
  ASSERT_TRUE(std::filesystem::exists(golden)) << golden;
  std::ifstream in(golden);
  std::ostringstream expected;
  expected << in.rdbuf();
  const RunResult r = run(goldenArgs());
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(stripTimings(r.out), expected.str());
}

TEST(CliBatch, GoldenSuiteShowsANonHeuristicFrontContribution) {
  // The acceptance scenario: the widened portfolio must contribute merged
  // front points H1..H6 alone do not find — visible as a non-zero "merged"
  // on a refiner/c2c member row of the golden suite's stats.
  const RunResult r = run(goldenArgs());
  ASSERT_EQ(r.code, 0) << r.err;
  const std::size_t members = r.out.find("\"members\"");
  ASSERT_NE(members, std::string::npos);
  bool sawNonHeuristicMerge = false;
  std::istringstream lines(r.out.substr(members));
  std::string line;
  std::string currentMember;
  while (std::getline(lines, line)) {
    const std::size_t m = line.find("\"member\": \"");
    if (m != std::string::npos) currentMember = line.substr(m + 11);
    if (line.find("\"merged\"") != std::string::npos &&
        line.find("\"merged\": 0") == std::string::npos &&
        (currentMember.rfind("ls:", 0) == 0 || currentMember.rfind("sa:", 0) == 0 ||
         currentMember.rfind("c2c", 0) == 0)) {
      sawNonHeuristicMerge = true;
    }
  }
  EXPECT_TRUE(sawNonHeuristicMerge);
}

}  // namespace
}  // namespace pipesched::cli
