// End-to-end tests of the `pipesched batch` command: sources, determinism
// of the pooled vs serial paths, cache/dedupe reporting, JSON output, and
// usage errors.
#include <gtest/gtest.h>

#include "cli_test_util.hpp"

namespace pipesched::cli {
namespace {

using testutil::RunResult;
using testutil::run;
using testutil::tempPath;

TEST(CliBatch, ScenariosSolveCleanly) {
  const RunResult r = run({"batch", "--scenarios", "--points", "6"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("image-processing"), std::string::npos);
  EXPECT_NE(r.out.find("genomics-variant-calling"), std::string::npos);
  EXPECT_NE(r.out.find("streaming-etl"), std::string::npos);
  EXPECT_NE(r.out.find("0 failed"), std::string::npos);
}

TEST(CliBatch, GeneratedSuiteSolvesCleanly) {
  const RunResult r = run({"batch", "--kind", "E3", "--count", "4", "--stages", "6",
                           "--processors", "4", "--points", "6", "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("E3-n6p4-0"), std::string::npos);
  EXPECT_NE(r.out.find("E3-n6p4-3"), std::string::npos);
  // 6x4 is inside the exact-eligibility window.
  EXPECT_NE(r.out.find("solved+exact"), std::string::npos);
}

TEST(CliBatch, InstanceFilePositional) {
  const std::string path = tempPath("batch_instance.psi");
  ASSERT_EQ(run({"generate", "--kind", "E1", "--stages", "6", "--processors", "4", "--seed",
                 "3", "--name", "from-file", "--output", path})
                .code,
            0);
  const RunResult r = run({"batch", path, "--points", "6"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("from-file"), std::string::npos);
}

TEST(CliBatch, PooledAndSerialOutputsAreIdentical) {
  const std::vector<std::string> common = {"batch",  "--scenarios", "--kind",
                                           "E2",     "--count",     "3",
                                           "--stages", "8",         "--processors",
                                           "5",      "--points",    "8"};
  std::vector<std::string> serial = common;
  serial.push_back("--serial");
  std::vector<std::string> pooled = common;
  pooled.push_back("--threads");
  pooled.push_back("4");
  const RunResult a = run(serial);
  const RunResult b = run(pooled);
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(b.code, 0) << b.err;
  // Everything above the timing summary must match byte for byte.
  const std::string tableA = a.out.substr(0, a.out.find("\n\n"));
  const std::string tableB = b.out.substr(0, b.out.find("\n\n"));
  EXPECT_EQ(tableA, tableB);
}

TEST(CliBatch, RepeatPassesHitTheCache) {
  const RunResult r = run({"batch", "--scenarios", "--points", "4", "--repeat", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Pass 1 solves the 3 scenarios; passes 2 and 3 are pure cache traffic,
  // and the table (final pass) reports the cache as the source.
  EXPECT_NE(r.out.find("3 solved"), std::string::npos);
  EXPECT_NE(r.out.find("6 cache hit(s)"), std::string::npos);
  EXPECT_NE(r.out.find("9 request(s)"), std::string::npos);
  EXPECT_NE(r.out.find("cache "), std::string::npos);
}

TEST(CliBatch, DuplicateFilesDedupeWithinTheBatch) {
  const std::string path = tempPath("batch_dup.psi");
  ASSERT_EQ(run({"generate", "--kind", "E2", "--stages", "6", "--processors", "4", "--seed",
                 "11", "--output", path})
                .code,
            0);
  const RunResult r = run({"batch", path, path, "--points", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 solved"), std::string::npos);
  EXPECT_NE(r.out.find("1 deduped"), std::string::npos);
  EXPECT_NE(r.out.find("dedup"), std::string::npos);
}

TEST(CliBatch, JsonOutputIsWellFormedEnough) {
  const RunResult r = run({"batch", "--scenarios", "--points", "4", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"requests\""), std::string::npos);
  EXPECT_NE(r.out.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(r.out.find("\"front\""), std::string::npos);
  EXPECT_NE(r.out.find("\"stats\""), std::string::npos);
  EXPECT_NE(r.out.find("\"cache\""), std::string::npos);
}

TEST(CliBatch, BudgetOptionFlowsThrough) {
  const RunResult r = run({"batch", "--kind", "E1", "--count", "2", "--points", "8",
                           "--budget", "1", "--no-exact", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"budget_exhausted\": true"), std::string::npos);
}

TEST(CliBatch, OverlapModelChangesTheRequestIdentity) {
  const std::vector<std::string> base = {"batch", "--scenarios", "--points", "4", "--json"};
  std::vector<std::string> overlapped = base;
  overlapped.push_back("--overlap");
  const RunResult seq = run(base);
  const RunResult ovl = run(overlapped);
  EXPECT_EQ(seq.code, 0) << seq.err;
  EXPECT_EQ(ovl.code, 0) << ovl.err;
  // Same instances, different comm model: the fingerprints must differ.
  const auto fingerprintOf = [](const std::string& out) {
    const std::size_t at = out.find("\"fingerprint\": \"");
    return out.substr(at, 16 + 32);
  };
  EXPECT_NE(fingerprintOf(seq.out), fingerprintOf(ovl.out));
}

TEST(CliBatch, NoSourcesIsAUsageError) {
  const RunResult r = run({"batch"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("nothing to solve"), std::string::npos);
}

TEST(CliBatch, CountWithoutKindIsAUsageError) {
  const RunResult r = run({"batch", "--count", "4"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--count needs --kind"), std::string::npos);
}

TEST(CliBatch, MissingFileIsARuntimeError) {
  const RunResult r = run({"batch", tempPath("does_not_exist.psi")});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

}  // namespace
}  // namespace pipesched::cli
