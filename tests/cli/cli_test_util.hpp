// Shared helpers for the CLI end-to-end tests: run a command with in-memory
// streams, and mint per-process-unique temp paths (ctest runs each
// discovered case in its own process, concurrently — a shared file name
// would race between processes).
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <sstream>
#include <string>
#include <vector>

#include "pipesched/cli/cli.hpp"

namespace pipesched::cli::testutil {

struct RunResult {
  int code = 0;
  std::string out;
  std::string err;
};

inline RunResult run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  RunResult r;
  r.code = runCli(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

inline std::string tempPath(const std::string& name) {
  static const std::string prefix =
      ::testing::TempDir() + "/pid" + std::to_string(::getpid()) + "_";
  return prefix + name;
}

}  // namespace pipesched::cli::testutil
