// End-to-end tests of the CLI observability surface: the `stats` command's
// JSON snapshot, `batch --trace on` per-request breakdowns, and `serve`'s
// periodic --stats-interval snapshot lines — plus the contract that default
// output carries no trace/timing fields at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "cli_test_util.hpp"
#include "pipesched/io/json_reader.hpp"

namespace pipesched::cli {
namespace {

using testutil::RunResult;
using testutil::run;
using testutil::tempPath;

std::string writeLines(const std::string& name, const std::vector<std::string>& lines) {
  const std::string path = tempPath(name);
  std::ofstream out(path);
  for (const std::string& line : lines) out << line << "\n";
  return path;
}

std::vector<io::JsonValue> parseOutputLines(const std::string& text) {
  std::vector<io::JsonValue> parsed;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() == '{') parsed.push_back(io::parseJson(line));
  }
  return parsed;
}

/// Sum of the "stages" object of one "trace" value; also checks every slice
/// is non-negative.
double stagesSum(const io::JsonValue& trace) {
  double sum = 0;
  for (const auto& [stage, seconds] : trace.find("stages")->members) {
    EXPECT_GE(seconds.asNumber(), 0.0) << stage;
    sum += seconds.asNumber();
  }
  return sum;
}

/// total_seconds plus ULP-scale slack for the sum-vs-total invariant: the
/// trace accumulates total_seconds in code order while stagesSum re-adds the
/// same slices in JSON key order, so a trace whose slices tile the whole
/// request (e.g. a cache hit) can land one rounding step on either side of
/// the total. The slack is ~1e-12 relative — far below any real overlap.
double totalWithSlack(const io::JsonValue& trace) {
  const double total = trace.find("total_seconds")->asNumber();
  return total + 1e-12 * std::max(total, 1.0);
}

TEST(CliStats, EmptySnapshotListsTheMetricCatalog) {
  const RunResult r = run({"stats"});
  EXPECT_EQ(r.code, 0) << r.err;
  const io::JsonValue doc = io::parseJson(r.out);
  EXPECT_EQ(doc.find("requests")->asSize(), 0u);
  const io::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  // Preregistered catalog: counters and stage histograms are enumerable
  // before any traffic, all at zero.
  const io::JsonValue* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("service.requests_solved"), nullptr);
  EXPECT_EQ(counters->find("service.requests_solved")->asSize(), 0u);
  ASSERT_NE(counters->find("eval.delta.peeks"), nullptr);
  const io::JsonValue* histograms = metrics->find("histograms");
  ASSERT_NE(histograms, nullptr);
  for (const char* name : {"stage.parse", "stage.fingerprint", "stage.cache_lookup",
                           "stage.queue_wait", "stage.member_solve", "stage.merge",
                           "stage.emit", "stream.queue_depth", "portfolio.member_run"}) {
    const io::JsonValue* h = histograms->find(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->find("count")->asSize(), 0u) << name;
  }
  // No traffic was pumped, so there is no cache block.
  EXPECT_EQ(doc.find("cache"), nullptr);
}

TEST(CliStats, InputTrafficPopulatesCountersHistogramsAndCaches) {
  const std::string input = writeLines(
      "stats_traffic.jsonl",
      {R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 1})",
       R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 2})"});
  const RunResult r = run({"stats", "--input", input, "--points", "4", "--serial"});
  EXPECT_EQ(r.code, 0) << r.err;
  const io::JsonValue doc = io::parseJson(r.out);
  EXPECT_EQ(doc.find("requests")->asSize(), 2u);
  const io::JsonValue* metrics = doc.find("metrics");
  EXPECT_EQ(metrics->find("counters")->find("service.requests_solved")->asSize(), 2u);
  // The portfolio ran, so the solve-stage histograms saw one record per
  // request and the member-run histogram one per member run.
  EXPECT_EQ(metrics->find("histograms")->find("stage.member_solve")->find("count")->asSize(),
            2u);
  EXPECT_GE(metrics->find("histograms")->find("portfolio.member_run")->find("count")->asSize(),
            2u);
  const io::JsonValue* hist = metrics->find("histograms")->find("stage.member_solve");
  EXPECT_GT(hist->find("sum")->asSize(), 0u);
  EXPECT_GT(hist->find("p50")->asNumber(), 0.0);
  // Eviction counts surface in both cache blocks (zero here, but present).
  ASSERT_NE(doc.find("cache"), nullptr);
  EXPECT_EQ(doc.find("cache")->find("misses")->asSize(), 2u);
  ASSERT_NE(doc.find("cache")->find("evictions"), nullptr);
  ASSERT_NE(doc.find("sub_cache"), nullptr);
  ASSERT_NE(doc.find("sub_cache")->find("evictions"), nullptr);
}

TEST(CliStats, RejectsBadOnOffValues) {
  const RunResult r = run({"batch", "--scenarios", "--points", "4", "--trace", "maybe"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--trace"), std::string::npos);
}

TEST(CliBatchTrace, JsonCarriesPerRequestBreakdownsWithinWallTime) {
  const RunResult r = run({"batch", "--kind", "E2", "--count", "2", "--stages", "6",
                           "--processors", "4", "--points", "4", "--serial", "--trace", "on",
                           "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  const io::JsonValue doc = io::parseJson(r.out);
  const io::JsonValue* requests = doc.find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_EQ(requests->items.size(), 2u);
  for (const io::JsonValue& request : requests->items) {
    const io::JsonValue* trace = request.find("trace");
    ASSERT_NE(trace, nullptr);
    const double total = trace->find("total_seconds")->asNumber();
    EXPECT_GT(total, 0.0);
    // The acceptance criterion: stage slices are disjoint, so they sum to
    // at most the request's wall time.
    EXPECT_LE(stagesSum(*trace), totalWithSlack(*trace));
    const io::JsonValue* stages = trace->find("stages");
    ASSERT_NE(stages->find("fingerprint"), nullptr);
    ASSERT_NE(stages->find("cache_lookup"), nullptr);
    ASSERT_NE(stages->find("member_solve"), nullptr);
    ASSERT_NE(stages->find("merge"), nullptr);
    EXPECT_FALSE(trace->find("members")->items.empty());
  }
}

TEST(CliBatchTrace, DefaultOutputStaysTraceFree) {
  const RunResult r = run({"batch", "--kind", "E2", "--count", "1", "--stages", "5",
                           "--processors", "3", "--points", "4", "--serial", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("\"trace\""), std::string::npos);
  const io::JsonValue doc = io::parseJson(r.out);
  EXPECT_EQ(doc.find("requests")->items[0].find("trace"), nullptr);
}

TEST(CliBatchTrace, StreamModeEmitsTracesAndEvictionCounts) {
  // A JSONL request source, so the parse stage is genuinely timed (generated
  // requests are built in memory and carry no parse slice).
  const std::string input = writeLines(
      "batch_stream_trace.jsonl",
      {R"({"kind": "E2", "stages": 5, "processors": 3, "seed": 1})",
       R"({"kind": "E2", "stages": 5, "processors": 3, "seed": 2})"});
  const RunResult r = run({"batch", "--requests", input, "--points", "4", "--stream",
                           "--threads", "2", "--trace", "on"});
  EXPECT_EQ(r.code, 0) << r.err;
  const std::vector<io::JsonValue> lines = parseOutputLines(r.out);
  ASSERT_EQ(lines.size(), 3u);  // 2 outcomes + 1 trailing stats line
  for (std::size_t i = 0; i < 2; ++i) {
    const io::JsonValue* trace = lines[i].find("trace");
    ASSERT_NE(trace, nullptr) << "line " << i;
    EXPECT_LE(stagesSum(*trace), totalWithSlack(*trace));
    // The stream path additionally times parse and queue wait.
    EXPECT_NE(trace->find("stages")->find("parse"), nullptr);
    EXPECT_NE(trace->find("stages")->find("queue_wait"), nullptr);
  }
  const io::JsonValue& stats = lines.back();
  ASSERT_NE(stats.find("cache"), nullptr);
  EXPECT_NE(stats.find("cache")->find("evictions"), nullptr);
  EXPECT_NE(stats.find("cache")->find("sub_evictions"), nullptr);
}

TEST(CliBatchTrace, TextReportShowsSubCacheEvictions) {
  const RunResult r = run({"batch", "--kind", "E1", "--count", "1", "--stages", "5",
                           "--processors", "3", "--points", "4", "--serial"});
  EXPECT_EQ(r.code, 0) << r.err;
  // The sub-results summary line now carries an eviction count.
  EXPECT_NE(r.out.find("eviction(s)"), std::string::npos) << r.out;
}

TEST(CliServeStats, IntervalEmitsSnapshotsWithCacheAndQueueState) {
  const std::string input = writeLines(
      "serve_stats.jsonl",
      {R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 1})",
       R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 1})",
       R"({"kind": "E3", "stages": 5, "processors": 3, "seed": 2})"});
  // One worker: requests are solved strictly in order, so the duplicate is a
  // deterministic cache hit (never an in-flight coalesce) and every popped
  // job records one queue-depth sample.
  const RunResult r = run({"serve", "--input", input, "--points", "4", "--threads", "1",
                           "--stats-interval", "0.01"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Snapshot lines go to stderr; at least the final one is always emitted.
  const std::vector<io::JsonValue> snapshots = parseOutputLines(r.err);
  ASSERT_GE(snapshots.size(), 1u);
  const io::JsonValue& last = snapshots.back();
  EXPECT_EQ(last.find("type")->asString(), "stats");
  EXPECT_GE(last.find("uptime_seconds")->asNumber(), 0.0);
  const io::JsonValue* scheduler = last.find("scheduler");
  ASSERT_NE(scheduler, nullptr);
  EXPECT_EQ(scheduler->find("submitted")->asSize(), 3u);
  EXPECT_EQ(scheduler->find("completed")->asSize(), 3u);
  EXPECT_EQ(scheduler->find("in_flight")->asSize(), 0u);
  EXPECT_LE(scheduler->find("queue_depth")->asSize(),
            scheduler->find("queue_capacity")->asSize());
  // Cache + sub-cache blocks with hit/miss/eviction counts.
  EXPECT_EQ(last.find("cache")->find("hits")->asSize(), 1u);
  EXPECT_EQ(last.find("cache")->find("misses")->asSize(), 2u);
  ASSERT_NE(last.find("cache")->find("evictions"), nullptr);
  ASSERT_NE(last.find("sub_cache")->find("evictions"), nullptr);
  // The registry rode along: queue-depth histogram saw one record per job.
  const io::JsonValue* depth = last.find("metrics")->find("histograms")->find(
      "stream.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GE(depth->find("count")->asSize(), 3u);
  // stdout stays a pure outcome stream: 3 parseable lines, no "type":"stats".
  const std::vector<io::JsonValue> outcomes = parseOutputLines(r.out);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const io::JsonValue& line : outcomes) {
    EXPECT_EQ(line.find("type"), nullptr);
    EXPECT_TRUE(line.find("ok")->asBool());
  }
  // The summary line surfaces eviction counts.
  EXPECT_NE(r.err.find("evictions="), std::string::npos);
}

TEST(CliServeStats, StatsOutputRedirectsSnapshotsToAFile) {
  const std::string input = writeLines(
      "serve_stats_file.jsonl",
      {R"({"kind": "E1", "stages": 4, "processors": 3, "seed": 9})"});
  const std::string statsPath = tempPath("serve_stats_out.jsonl");
  const RunResult r = run({"serve", "--input", input, "--points", "4", "--stats-interval",
                           "5", "--stats-output", statsPath});
  EXPECT_EQ(r.code, 0) << r.err;
  // Interval longer than the run: exactly the final snapshot, in the file.
  std::ifstream file(statsPath);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::vector<io::JsonValue> snapshots = parseOutputLines(buffer.str());
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].find("scheduler")->find("completed")->asSize(), 1u);
  // Stderr keeps only the human summary line.
  EXPECT_EQ(r.err.find("\"type\""), std::string::npos);
}

TEST(CliServeStats, TraceLinesCarryQueueWaitAndParse) {
  const std::string input = writeLines(
      "serve_trace.jsonl",
      {R"({"kind": "E2", "stages": 5, "processors": 3, "seed": 4})",
       R"({"kind": "E2", "stages": 5, "processors": 3, "seed": 4})"});
  // One worker: the duplicate request is a deterministic cache hit.
  const RunResult r = run({"serve", "--input", input, "--points", "4", "--threads", "1",
                           "--trace", "on"});
  EXPECT_EQ(r.code, 0) << r.err;
  const std::vector<io::JsonValue> lines = parseOutputLines(r.out);
  ASSERT_EQ(lines.size(), 2u);
  bool sawCacheHitTrace = false;
  for (const io::JsonValue& line : lines) {
    const io::JsonValue* trace = line.find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_LE(stagesSum(*trace), totalWithSlack(*trace));
    EXPECT_NE(trace->find("stages")->find("parse"), nullptr);
    EXPECT_NE(trace->find("stages")->find("queue_wait"), nullptr);
    if (line.find("from_cache")->asBool()) {
      // Cache hits skip the solve: no member_solve/merge slices, no members.
      sawCacheHitTrace = true;
      EXPECT_EQ(trace->find("stages")->find("member_solve"), nullptr);
      EXPECT_TRUE(trace->find("members")->items.empty());
    }
  }
  EXPECT_TRUE(sawCacheHitTrace);
}

}  // namespace
}  // namespace pipesched::cli
