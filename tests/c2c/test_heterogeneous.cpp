// Tests for the heterogeneous 1-D partitioning solvers (the NP-hard problem
// of paper Theorem 1): the fixed-order DP is checked against brute force,
// the exhaustive solver provides ground truth for the heuristics.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pipesched/c2c/heterogeneous.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::c2c {
namespace {

using workload::Rng;

/// Brute force over all cut masks *and* all processor-order permutations.
Real bruteForceHetero(const std::vector<Real>& w, const std::vector<Real>& speeds) {
  const std::size_t n = w.size();
  std::vector<std::size_t> order(speeds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Real best = kInfinity;
  std::sort(order.begin(), order.end());
  do {
    for (std::uint64_t mask = 0; mask < (1ull << (n - 1)); ++mask) {
      const std::size_t intervals = static_cast<std::size_t>(__builtin_popcountll(mask)) + 1;
      if (intervals > speeds.size()) continue;
      Real current = 0;
      Real worst = 0;
      std::size_t k = 0;
      for (std::size_t i = 0; i < n; ++i) {
        current += w[i];
        const bool cutHere = (i + 1 < n) ? ((mask >> i) & 1) : true;
        if (cutHere) {
          worst = std::max(worst, current / speeds[order[k]]);
          current = 0;
          ++k;
        }
      }
      best = std::min(best, worst);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

TEST(C2CHetero, FixedOrderDpHandExample) {
  // Weights {6,6,9}, speeds in chain order {4,3}: best split {6,6}/{9} ->
  // max(12/4, 9/3) = 3.
  const HeteroSolution s = dpWithFixedOrder({6, 6, 9}, {4, 3}, {0, 1});
  EXPECT_DOUBLE_EQ(s.bottleneck, 3);
  EXPECT_EQ(s.partition.ends, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(s.processorOrder, (std::vector<std::size_t>{0, 1}));
}

TEST(C2CHetero, FixedOrderDpSkipsUselessProcessors) {
  // One heavy element: with order {slow, fast} the DP may give the slow
  // processor nothing.
  const HeteroSolution s = dpWithFixedOrder({10}, {1, 10}, {0, 1});
  EXPECT_DOUBLE_EQ(s.bottleneck, 1);
  EXPECT_EQ(s.processorOrder, (std::vector<std::size_t>{1}));
  EXPECT_EQ(s.partition.intervalCount(), 1u);
}

TEST(C2CHetero, FixedOrderDpConsistentBottleneck) {
  const std::vector<Real> w = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<Real> speeds = {5, 3, 2};
  const HeteroSolution s = dpWithFixedOrder(w, speeds, {0, 1, 2});
  std::vector<Real> speedsInOrder;
  for (std::size_t u : s.processorOrder) speedsInOrder.push_back(speeds[u]);
  EXPECT_NEAR(weightedBottleneck(w, s.partition, speedsInOrder), s.bottleneck, 1e-9);
}

TEST(C2CHetero, ExhaustiveBeatsOrMatchesAnyFixedOrder) {
  const std::vector<Real> w = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<Real> speeds = {5, 3, 2};
  const HeteroSolution best = heteroExhaustive(w, speeds);
  EXPECT_NEAR(best.bottleneck, bruteForceHetero(w, speeds), 1e-9);
  const HeteroSolution sorted = heteroSortedDp(w, speeds);
  EXPECT_LE(best.bottleneck, sorted.bottleneck + kTimeEps);
}

TEST(C2CHetero, ExhaustiveGuardsAgainstLargeP) {
  const std::vector<Real> speeds(12, Real(1));
  EXPECT_THROW((void)heteroExhaustive({1, 2, 3}, speeds, 9), ModelError);
}

TEST(C2CHetero, LocalSearchNeverWorseThanSortedDp) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    std::vector<Real> w(10);
    for (auto& x : w) x = rng.uniform(1, 30);
    std::vector<Real> speeds(4);
    for (auto& s : speeds) s = static_cast<Real>(rng.uniformInt(1, 20));
    const Real sorted = heteroSortedDp(w, speeds).bottleneck;
    const Real improved = heteroLocalSearch(w, speeds).bottleneck;
    EXPECT_LE(improved, sorted + kTimeEps);
  }
}

TEST(C2CHetero, LowerBoundHolds) {
  const std::vector<Real> w = {3, 1, 4, 1, 5};
  const std::vector<Real> speeds = {2, 1};
  const Real lb = heteroLowerBound(w, speeds);
  EXPECT_LE(lb, heteroExhaustive(w, speeds).bottleneck + kTimeEps);
  // total/totalSpeed = 14/3; maxElem/maxSpeed = 5/2 -> lb = 14/3.
  EXPECT_DOUBLE_EQ(lb, 14.0 / 3.0);
}

TEST(C2CHetero, InputValidation) {
  EXPECT_THROW((void)heteroSortedDp({}, {1}), ModelError);
  EXPECT_THROW((void)heteroSortedDp({1}, {}), ModelError);
  EXPECT_THROW((void)heteroSortedDp({1}, {0}), ModelError);
  EXPECT_THROW((void)dpWithFixedOrder({1}, {1, 2}, {0}), ModelError);
}

// ---------------------------------------------------------------------------
// Property sweep: exhaustive == brute force; heuristics sandwiched between
// the lower bound and the sorted-DP value.
// ---------------------------------------------------------------------------

struct HeteroCase {
  std::size_t n;
  std::size_t p;
  std::uint64_t seed;
};

class HeteroRandomized : public ::testing::TestWithParam<HeteroCase> {};

TEST_P(HeteroRandomized, ExhaustiveMatchesBruteForce) {
  const auto [n, p, seed] = GetParam();
  Rng rng(seed);
  std::vector<Real> w(n);
  for (auto& x : w) x = static_cast<Real>(rng.uniformInt(1, 40));
  std::vector<Real> speeds(p);
  for (auto& s : speeds) s = static_cast<Real>(rng.uniformInt(1, 20));

  const HeteroSolution best = heteroExhaustive(w, speeds);
  EXPECT_NEAR(best.bottleneck, bruteForceHetero(w, speeds), 1e-9);
  EXPECT_GE(best.bottleneck + kTimeEps, heteroLowerBound(w, speeds));

  for (const HeteroSolution& h : {heteroSortedDp(w, speeds), heteroLocalSearch(w, speeds)}) {
    EXPECT_GE(h.bottleneck + kTimeEps, best.bottleneck);
    std::vector<Real> speedsInOrder;
    for (std::size_t u : h.processorOrder) speedsInOrder.push_back(speeds[u]);
    EXPECT_NEAR(weightedBottleneck(w, h.partition, speedsInOrder), h.bottleneck, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, HeteroRandomized,
    ::testing::Values(HeteroCase{5, 2, 21}, HeteroCase{6, 3, 22}, HeteroCase{7, 3, 23},
                      HeteroCase{8, 4, 24}, HeteroCase{9, 4, 25}, HeteroCase{10, 5, 26},
                      HeteroCase{11, 5, 27}, HeteroCase{12, 4, 28}),
    [](const auto& paramInfo) {
      return "n" + std::to_string(paramInfo.param.n) + "_p" + std::to_string(paramInfo.param.p) + "_s" +
             std::to_string(paramInfo.param.seed);
    });

}  // namespace
}  // namespace pipesched::c2c
