// Tests of the Theorem-1 NP-completeness gadget: the NMWTS solver, the
// reduction construction, and both directions of the equivalence proof —
// executed mechanically on YES- and NO-instances.
#include <gtest/gtest.h>

#include "pipesched/c2c/nmwts.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::c2c {
namespace {

using workload::Rng;

NmwtsInstance yesInstance() {
  // x_i + y_sigma1(i) = z_sigma2(i): 1+2=3, 2+3=5, 3+1=4.
  return NmwtsInstance{{1, 2, 3}, {2, 3, 1}, {3, 5, 4}};
}

NmwtsInstance noInstance() {
  // Sums balance (6 + 6 = 12) but no matching exists:
  // x={1,2,3}, y={1,2,3}; achievable sums {2..6} must hit z={2,2,8}: 8 is
  // impossible.
  return NmwtsInstance{{1, 2, 3}, {1, 2, 3}, {2, 2, 8}};
}

TEST(Nmwts, ValidateCatchesShapeErrors) {
  EXPECT_THROW(NmwtsInstance({}, {}, {}).validate(), ModelError);
  EXPECT_THROW(NmwtsInstance({1}, {1, 2}, {1}).validate(), ModelError);
  EXPECT_THROW(NmwtsInstance({-1}, {1}, {0}).validate(), ModelError);
}

TEST(Nmwts, SumsBalanced) {
  EXPECT_TRUE(yesInstance().sumsBalanced());
  EXPECT_TRUE(noInstance().sumsBalanced());
  EXPECT_FALSE(NmwtsInstance({1}, {1}, {3}).sumsBalanced());
}

TEST(Nmwts, SolveFindsCertificateOnYesInstance) {
  const auto sol = solveNmwts(yesInstance());
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(verifyNmwts(yesInstance(), *sol));
}

TEST(Nmwts, SolveRejectsNoInstance) {
  EXPECT_FALSE(solveNmwts(noInstance()).has_value());
}

TEST(Nmwts, SolveRejectsUnbalancedSums) {
  EXPECT_FALSE(solveNmwts(NmwtsInstance{{1}, {1}, {5}}).has_value());
}

TEST(Nmwts, VerifyRejectsBadCertificates) {
  const NmwtsInstance inst = yesInstance();
  NmwtsSolution bad;
  bad.sigma1 = {0, 0, 1};  // not a permutation
  bad.sigma2 = {0, 1, 2};
  EXPECT_FALSE(verifyNmwts(inst, bad));
  bad.sigma1 = {0, 1, 2};
  bad.sigma2 = {1, 0, 2};  // wrong pairing: x_0 + y_0 = 3 != z_1 = 5
  EXPECT_FALSE(verifyNmwts(inst, bad));
}

TEST(NmwtsReduction, BuildsPaperSizedInstance) {
  const NmwtsInstance inst = yesInstance();
  const ReductionInstance red = buildReduction(inst);
  const auto m = inst.m();
  const auto M = static_cast<std::size_t>(inst.maxValue());
  EXPECT_EQ(M, 5u);
  EXPECT_EQ(red.weights.size(), (M + 3) * m);
  EXPECT_EQ(red.speeds.size(), 3 * m);
  EXPECT_DOUBLE_EQ(red.bound, 1);
  // Block 0: A_0 = B + x_0 = 10 + 1; then M ones; C = 25; D = 35.
  EXPECT_DOUBLE_EQ(red.weights[0], 11);
  for (std::size_t i = 1; i <= M; ++i) EXPECT_DOUBLE_EQ(red.weights[i], 1);
  EXPECT_DOUBLE_EQ(red.weights[M + 1], 25);
  EXPECT_DOUBLE_EQ(red.weights[M + 2], 35);
  // Speeds: s_i = B + z_i; s_{m+i} = C + M - y_i; s_{2m+i} = D.
  EXPECT_DOUBLE_EQ(red.speeds[0], 13);       // 10 + 3
  EXPECT_DOUBLE_EQ(red.speeds[m + 0], 28);   // 25 + 5 - 2
  EXPECT_DOUBLE_EQ(red.speeds[2 * m], 35);
}

TEST(NmwtsReduction, RejectsDegenerateAllZero) {
  EXPECT_THROW((void)buildReduction(NmwtsInstance{{0}, {0}, {0}}), ModelError);
}

TEST(NmwtsReduction, ForwardDirectionAchievesBoundOne) {
  const NmwtsInstance inst = yesInstance();
  const auto cert = solveNmwts(inst);
  ASSERT_TRUE(cert.has_value());
  const HeteroSolution sol = reductionSolution(inst, *cert);
  EXPECT_NEAR(sol.bottleneck, 1.0, 1e-12);
  EXPECT_EQ(sol.partition.intervalCount(), 3 * inst.m());
}

TEST(NmwtsReduction, ForwardDirectionRejectsNonCertificates) {
  NmwtsSolution bogus;
  bogus.sigma1 = {0, 1, 2};
  bogus.sigma2 = {1, 0, 2};  // x_0 + y_0 = 3 != z_1 = 5
  EXPECT_THROW((void)reductionSolution(yesInstance(), bogus), ModelError);
}

TEST(NmwtsReduction, BackwardDirectionRecoversCertificate) {
  const NmwtsInstance inst = yesInstance();
  const auto cert = solveNmwts(inst);
  ASSERT_TRUE(cert.has_value());
  const HeteroSolution sol = reductionSolution(inst, *cert);
  const auto extracted = extractCertificate(inst, sol);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(verifyNmwts(inst, *extracted));
}

TEST(NmwtsReduction, BackwardDirectionRejectsWrongShape) {
  const NmwtsInstance inst = yesInstance();
  HeteroSolution bogus;
  bogus.partition.ends = {static_cast<std::size_t>((inst.maxValue() + 3) * 3 - 1)};
  bogus.processorOrder = {0};
  EXPECT_FALSE(extractCertificate(inst, bogus).has_value());
}

TEST(NmwtsReduction, ExhaustiveSolverReachesOneExactlyOnYesInstance) {
  // m = 2 keeps the reduction small enough for the exhaustive solver
  // (p = 6 processors). x + y = {1+1, 2+2} = z = {2, 4}.
  const NmwtsInstance inst{{1, 2}, {1, 2}, {2, 4}};
  ASSERT_TRUE(solveNmwts(inst).has_value());
  const ReductionInstance red = buildReduction(inst);
  const HeteroSolution best = heteroExhaustive(red.weights, red.speeds, 6);
  EXPECT_NEAR(best.bottleneck, 1.0, 1e-9);
}

TEST(NmwtsReduction, ExhaustiveSolverStaysAboveOneOnNoInstance) {
  // NO-instance with m = 2: sums balance (3+3=6=2+4? x={1,2}, y={1,2},
  // z={1,5}: 1+1=2 no, need multiset {x_i + y_j} to hit {1,5}: minimum
  // achievable sum is 2 > 1, so infeasible.
  const NmwtsInstance inst{{1, 2}, {1, 2}, {1, 5}};
  ASSERT_TRUE(inst.sumsBalanced());
  ASSERT_FALSE(solveNmwts(inst).has_value());
  const ReductionInstance red = buildReduction(inst);
  const HeteroSolution best = heteroExhaustive(red.weights, red.speeds, 6);
  // Theorem 1: K = 1 achievable iff the NMWTS instance is a YES-instance.
  EXPECT_GT(best.bottleneck, 1.0 + 1e-9);
}

TEST(NmwtsReduction, RandomYesInstancesRoundTrip) {
  Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    const std::size_t m = 2 + static_cast<std::size_t>(rng.uniformInt(0, 2));
    // Build a YES-instance by construction: pick x and y, set z = shuffled sums.
    NmwtsInstance inst;
    inst.x.resize(m);
    inst.y.resize(m);
    inst.z.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      inst.x[i] = rng.uniformInt(0, 6);
      inst.y[i] = rng.uniformInt(0, 6);
    }
    for (std::size_t i = 0; i < m; ++i) inst.z[i] = inst.x[i] + inst.y[(i + 1) % m];
    const auto cert = solveNmwts(inst);
    ASSERT_TRUE(cert.has_value());
    if (inst.maxValue() < 1) continue;  // degenerate all-zero draw
    const HeteroSolution sol = reductionSolution(inst, *cert);
    EXPECT_NEAR(sol.bottleneck, 1.0, 1e-12);
    const auto extracted = extractCertificate(inst, sol);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_TRUE(verifyNmwts(inst, *extracted));
  }
}

}  // namespace
}  // namespace pipesched::c2c
