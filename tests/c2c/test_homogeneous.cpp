// Tests for the homogeneous chains-to-chains solvers: the DP is checked
// against brute force, the parametric solver against the DP, and the
// heuristics against validity/bound invariants — including parameterized
// sweeps over random instances.
#include <gtest/gtest.h>

#include "pipesched/c2c/homogeneous.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::c2c {
namespace {

using workload::Rng;

/// Brute-force optimal bottleneck by enumerating all cut subsets (n <= ~16).
Real bruteForceBottleneck(const std::vector<Real>& w, std::size_t parts) {
  const std::size_t n = w.size();
  Real best = kInfinity;
  // Choose cut positions as bits of a mask over the n-1 possible boundaries.
  for (std::uint64_t mask = 0; mask < (1ull << (n - 1)); ++mask) {
    const std::size_t intervals = static_cast<std::size_t>(__builtin_popcountll(mask)) + 1;
    if (intervals > parts) continue;
    Real current = 0;
    Real worst = 0;
    for (std::size_t i = 0; i < n; ++i) {
      current += w[i];
      const bool cutHere = (i + 1 < n) ? ((mask >> i) & 1) : true;
      if (cutHere) {
        worst = std::max(worst, current);
        current = 0;
      }
    }
    best = std::min(best, worst);
  }
  return best;
}

TEST(C2CHomogeneous, DpHandComputedExamples) {
  // Classic: {2,3,4,5,6} into 3 parts -> best bottleneck 7 ({2,3},{4},{5,6}... check: 5,4,11 no;
  // {2,3,4}=9; optimal is {2,3},{4,5}? contiguous sums: best split = 5|9|6 -> 9, or 5|4|11,
  // 9|5|6 -> 9, {2,3,4}|{5}|{6} -> 9 ... brute force decides.
  const std::vector<Real> w = {2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(optimalBottleneck(w, 3), bruteForceBottleneck(w, 3));
  EXPECT_DOUBLE_EQ(optimalBottleneck(w, 1), 20);
  EXPECT_DOUBLE_EQ(optimalBottleneck(w, 5), 6);   // every element alone
  EXPECT_DOUBLE_EQ(optimalBottleneck(w, 50), 6);  // parts beyond n do not help
}

TEST(C2CHomogeneous, DpReturnsValidPartition) {
  const std::vector<Real> w = {5, 1, 1, 1, 5, 1, 1, 1};
  const Partition p = dpPartition(w, 3);
  EXPECT_NO_THROW(validatePartition(w, p));
  EXPECT_LE(p.intervalCount(), 3u);
  EXPECT_DOUBLE_EQ(bottleneck(w, p), bruteForceBottleneck(w, 3));
}

TEST(C2CHomogeneous, SingleElement) {
  EXPECT_DOUBLE_EQ(optimalBottleneck({7}, 3), 7);
}

TEST(C2CHomogeneous, RejectsBadInput) {
  EXPECT_THROW((void)dpPartition({}, 2), ModelError);
  EXPECT_THROW((void)dpPartition({1}, 0), ModelError);
  EXPECT_THROW((void)dpPartition({-1}, 1), ModelError);
}

TEST(C2CHomogeneous, ProbeFeasibility) {
  const std::vector<Real> w = {4, 4, 4, 4};
  Partition witness;
  EXPECT_TRUE(probe(w, 2, 8, &witness));
  EXPECT_NO_THROW(validatePartition(w, witness));
  EXPECT_LE(bottleneck(w, witness), 8 + kTimeEps);
  EXPECT_FALSE(probe(w, 2, 7.9));
  EXPECT_FALSE(probe(w, 1, 15.9));
  EXPECT_TRUE(probe(w, 4, 4));
  EXPECT_FALSE(probe(w, 4, 3.9));  // single element exceeds the limit
}

TEST(C2CHomogeneous, ProbeUsesMinimalGreedyCuts) {
  // Greedy packing: limit 10 over {9,2,8,1} -> {9},{2,8},{1}? 2+8=10 fits; then 1.
  const std::vector<Real> w = {9, 2, 8, 1};
  Partition witness;
  ASSERT_TRUE(probe(w, 3, 10, &witness));
  EXPECT_EQ(witness.ends, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(C2CHomogeneous, GreedyAndBisectionAreValidAndNoBetterThanDp) {
  const std::vector<Real> w = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  for (std::size_t parts : {1u, 2u, 3u, 5u, 10u}) {
    const Real opt = optimalBottleneck(w, parts);
    for (const Partition& p : {greedyPartition(w, parts), recursiveBisection(w, parts)}) {
      EXPECT_NO_THROW(validatePartition(w, p));
      EXPECT_LE(p.intervalCount(), parts);
      EXPECT_GE(bottleneck(w, p) + kTimeEps, opt);
    }
  }
}

// ---------------------------------------------------------------------------
// Property sweep: DP == brute force == parametric on random instances.
// ---------------------------------------------------------------------------

struct HomogCase {
  std::size_t n;
  std::size_t parts;
  std::uint64_t seed;
};

class HomogRandomized : public ::testing::TestWithParam<HomogCase> {};

TEST_P(HomogRandomized, DpMatchesBruteForce) {
  const auto [n, parts, seed] = GetParam();
  Rng rng(seed);
  std::vector<Real> w(n);
  for (auto& x : w) x = static_cast<Real>(rng.uniformInt(1, 50));
  const Partition dp = dpPartition(w, parts);
  EXPECT_NO_THROW(validatePartition(w, dp));
  EXPECT_NEAR(bottleneck(w, dp), bruteForceBottleneck(w, parts), 1e-9);
}

TEST_P(HomogRandomized, ParametricMatchesDp) {
  const auto [n, parts, seed] = GetParam();
  Rng rng(seed ^ 0xABCDEF);
  std::vector<Real> w(n);
  for (auto& x : w) x = rng.uniform(0.5, 50);
  const Partition para = parametricPartition(w, parts);
  EXPECT_NO_THROW(validatePartition(w, para));
  EXPECT_NEAR(bottleneck(w, para), optimalBottleneck(w, parts), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, HomogRandomized,
    ::testing::Values(HomogCase{4, 2, 1}, HomogCase{6, 2, 2}, HomogCase{6, 3, 3},
                      HomogCase{8, 3, 4}, HomogCase{8, 4, 5}, HomogCase{10, 2, 6},
                      HomogCase{10, 5, 7}, HomogCase{12, 3, 8}, HomogCase{12, 6, 9},
                      HomogCase{14, 4, 10}, HomogCase{14, 7, 11}, HomogCase{15, 5, 12}),
    [](const auto& paramInfo) {
      return "n" + std::to_string(paramInfo.param.n) + "_p" + std::to_string(paramInfo.param.parts) +
             "_s" + std::to_string(paramInfo.param.seed);
    });

}  // namespace
}  // namespace pipesched::c2c
