// Unit tests for the chains-to-chains problem primitives.
#include <gtest/gtest.h>

#include "pipesched/c2c/chains.hpp"

namespace pipesched::c2c {
namespace {

TEST(Chains, PartitionAccessors) {
  const Partition p{{1, 3, 5}};
  EXPECT_EQ(p.intervalCount(), 3u);
  EXPECT_EQ(p.first(0), 0u);
  EXPECT_EQ(p.last(0), 1u);
  EXPECT_EQ(p.first(1), 2u);
  EXPECT_EQ(p.last(2), 5u);
}

TEST(Chains, ValidateAcceptsWellFormed) {
  const std::vector<Real> w = {1, 2, 3, 4};
  EXPECT_NO_THROW(validatePartition(w, Partition{{3}}));
  EXPECT_NO_THROW(validatePartition(w, Partition{{0, 1, 2, 3}}));
}

TEST(Chains, ValidateRejectsMalformed) {
  const std::vector<Real> w = {1, 2, 3, 4};
  EXPECT_THROW(validatePartition(w, Partition{{}}), ModelError);
  EXPECT_THROW(validatePartition(w, Partition{{1, 2}}), ModelError);     // misses the end
  EXPECT_THROW(validatePartition(w, Partition{{2, 1, 3}}), ModelError);  // not increasing
  EXPECT_THROW(validatePartition(w, Partition{{4}}), ModelError);        // out of range
  EXPECT_THROW(validatePartition({}, Partition{{0}}), ModelError);       // empty weights
}

TEST(Chains, IntervalSum) {
  const std::vector<Real> w = {1, 2, 3, 4, 5};
  const Partition p{{1, 4}};
  EXPECT_DOUBLE_EQ(intervalSum(w, p, 0), 3);
  EXPECT_DOUBLE_EQ(intervalSum(w, p, 1), 12);
}

TEST(Chains, BottleneckIsMaxIntervalSum) {
  const std::vector<Real> w = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(bottleneck(w, Partition{{1, 4}}), 12);
  EXPECT_DOUBLE_EQ(bottleneck(w, Partition{{2, 4}}), 9);
  EXPECT_DOUBLE_EQ(bottleneck(w, Partition{{4}}), 15);
}

TEST(Chains, WeightedBottleneckDividesBySpeeds) {
  const std::vector<Real> w = {6, 6, 9};
  const Partition p{{1, 2}};
  // interval sums 12 and 9; speeds 4 and 3 -> loads 3 and 3.
  EXPECT_DOUBLE_EQ(weightedBottleneck(w, p, {4, 3}), 3);
  // Swapped speeds: loads 4 and 2.25 -> bottleneck 4.
  EXPECT_DOUBLE_EQ(weightedBottleneck(w, p, {3, 4}), 4);
}

TEST(Chains, WeightedBottleneckValidatesSpeeds) {
  const std::vector<Real> w = {1, 2};
  EXPECT_THROW((void)weightedBottleneck(w, Partition{{1}}, {1, 2}), ModelError);
  EXPECT_THROW((void)weightedBottleneck(w, Partition{{0, 1}}, {1, 0}), ModelError);
}

TEST(Chains, PrefixSums) {
  const std::vector<Real> pre = prefixSums({1, 2, 3});
  ASSERT_EQ(pre.size(), 4u);
  EXPECT_DOUBLE_EQ(pre[0], 0);
  EXPECT_DOUBLE_EQ(pre[3], 6);
}

}  // namespace
}  // namespace pipesched::c2c
