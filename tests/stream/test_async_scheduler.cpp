// AsyncScheduler: future/callback submission, failure isolation (a throwing
// solve or callback never kills a worker), in-flight coalescing, the
// drain()/close() lifecycle with pending work, and the stats partition
// invariant solved + cacheHits + coalesced + failed == completed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "pipesched/core/types.hpp"
#include "pipesched/fault/fault.hpp"
#include "pipesched/stream/async_scheduler.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::stream {
namespace {

service::Request makeRequest(std::uint64_t seed, std::size_t points = 6,
                             const std::string& name = "") {
  workload::Rng rng(seed);
  workload::InstancePair pair =
      workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, 6, 4, rng);
  std::ostringstream label;
  label << (name.empty() ? "req" : name) << '-' << seed;
  return service::Request{std::move(pair.pipeline), std::move(pair.platform),
                          core::CommModel::kSequential, service::SweepSpec{points, 3},
                          label.str()};
}

void expectInvariant(const StreamStats& s) {
  EXPECT_EQ(s.solved + s.cacheHits + s.coalesced + s.failed, s.completed);
}

TEST(AsyncScheduler, FutureCarriesTheOutcome) {
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  AsyncScheduler scheduler(config);
  std::future<service::RequestOutcome> future = scheduler.submit(makeRequest(1));
  const service::RequestOutcome outcome = future.get();
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.result.front.empty());
  scheduler.close();
  expectInvariant(scheduler.stats());
}

TEST(AsyncScheduler, InlineModeSolvesInSubmit) {
  StreamConfig config;
  config.workers = 0;  // no threads at all: the serial reference mode
  AsyncScheduler scheduler(config);
  std::future<service::RequestOutcome> future = scheduler.submit(makeRequest(2));
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(future.get().ok);
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.solved, 1u);
  expectInvariant(stats);
}

TEST(AsyncScheduler, CallbackRunsWithTheOutcome) {
  StreamConfig config;
  config.workers = 1;
  AsyncScheduler scheduler(config);
  std::promise<service::RequestOutcome> delivered;
  scheduler.submit(makeRequest(3),
                   [&](const service::Request& request, const service::RequestOutcome& outcome) {
                     EXPECT_EQ(request.name, "req-3");
                     delivered.set_value(outcome);
                   });
  const service::RequestOutcome outcome = delivered.get_future().get();
  EXPECT_TRUE(outcome.ok);
}

TEST(AsyncScheduler, MalformedRequestFailsItsFutureOnly) {
  StreamConfig config;
  config.workers = 2;
  AsyncScheduler scheduler(config);
  service::Request bad = makeRequest(4);
  bad.sweep.points = 0;  // runPortfolio rejects this
  std::future<service::RequestOutcome> badFuture = scheduler.submit(bad);
  std::future<service::RequestOutcome> goodFuture = scheduler.submit(makeRequest(5));
  const service::RequestOutcome badOutcome = badFuture.get();
  EXPECT_FALSE(badOutcome.ok);
  EXPECT_FALSE(badOutcome.error.empty());
  EXPECT_TRUE(goodFuture.get().ok);  // the worker survived the failure
  scheduler.drain();
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);
  expectInvariant(stats);
}

TEST(AsyncScheduler, ThrowingSolveBecomesAFailedOutcomeNotTerminate) {
  StreamConfig config;
  config.workers = 1;
  config.solveOverride = [](const service::Request& request) -> service::RequestOutcome {
    if (request.name == "req-7") throw std::runtime_error("solver exploded");
    if (request.name == "req-8") throw 42;  // non-std exception
    service::RequestOutcome ok;
    ok.ok = true;
    return ok;
  };
  AsyncScheduler scheduler(config);
  const service::RequestOutcome first = scheduler.submit(makeRequest(7)).get();
  EXPECT_FALSE(first.ok);
  EXPECT_EQ(first.error, "solver exploded");
  const service::RequestOutcome second = scheduler.submit(makeRequest(8)).get();
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(second.error, "unknown exception while solving");
  const service::RequestOutcome third = scheduler.submit(makeRequest(9)).get();
  EXPECT_TRUE(third.ok);  // the worker thread survived both throws
  scheduler.drain();
  expectInvariant(scheduler.stats());
}

TEST(AsyncScheduler, ThrowingCallbackIsContainedAndCounted) {
  StreamConfig config;
  config.workers = 1;
  AsyncScheduler scheduler(config);
  scheduler.submit(makeRequest(10), [](const service::Request&,
                                       const service::RequestOutcome&) {
    throw std::runtime_error("callback bug");
  });
  scheduler.drain();
  EXPECT_EQ(scheduler.stats().callbackExceptions, 1u);
  // The worker is still alive and solving.
  EXPECT_TRUE(scheduler.submit(makeRequest(11)).get().ok);
}

TEST(AsyncScheduler, DuplicatesOneAtATimeAreCacheHitsAndTheStatsPartition) {
  // The satellite invariant: requests arriving strictly one at a time (drain
  // between submits) land in solved/cacheHits/failed only, and the buckets
  // always sum to completed.
  StreamConfig config;
  config.workers = 2;
  AsyncScheduler scheduler(config);
  const service::Request a = makeRequest(20);
  const service::Request b = makeRequest(21);
  service::Request bad = makeRequest(22);
  bad.sweep.points = 0;
  const service::Request sequence[] = {a, b, a, bad, a, b};
  for (const service::Request& request : sequence) {
    (void)scheduler.submit(request).get();
    scheduler.drain();
    expectInvariant(scheduler.stats());
  }
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.solved, 2u);     // a and b, first arrivals
  EXPECT_EQ(stats.cacheHits, 3u);  // the repeats, never in flight together
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(AsyncScheduler, InFlightDuplicatesCoalesceDeterministically) {
  // solveOverride + a latch make the race deterministic: the first duplicate
  // blocks in the solver until the second has been parked on it
  // (waitersAttached), so exactly one solve serves both.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;
  std::atomic<int> solves{0};

  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    const int nth = ++solves;
    if (nth == 1) {
      std::unique_lock lock(gate_mutex);
      gate_cv.wait(lock, [&] { return released; });
    }
    service::RequestOutcome outcome;
    outcome.ok = true;
    outcome.result.front.push_back(core::ParetoPoint{Real(nth), Real(nth), std::nullopt});
    return outcome;
  };
  AsyncScheduler scheduler(config);

  const service::Request request = makeRequest(30);
  std::future<service::RequestOutcome> first = scheduler.submit(request);
  std::future<service::RequestOutcome> second = scheduler.submit(request);

  // Wait until the duplicate is parked on the in-flight solve, then open the
  // gate. Polling is safe: waitersAttached is monotone.
  while (scheduler.stats().waitersAttached == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();

  const service::RequestOutcome a = first.get();
  const service::RequestOutcome b = second.get();
  scheduler.drain();
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(solves.load(), 1);  // one solve served both
  // Both outcomes carry the same front; exactly one is the coalesced copy.
  ASSERT_EQ(a.result.front.size(), 1u);
  ASSERT_EQ(b.result.front.size(), 1u);
  EXPECT_EQ(a.result.front[0].period, b.result.front[0].period);
  EXPECT_NE(a.deduped, b.deduped);
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.solved, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.waitersAttached, 1u);
  expectInvariant(stats);
}

TEST(AsyncScheduler, CloseWithPendingWorkCompletesEverything) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;

  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 8;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return released; });
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);

  std::vector<std::future<service::RequestOutcome>> futures;
  for (std::uint64_t seed = 40; seed < 45; ++seed) {
    futures.push_back(scheduler.submit(makeRequest(seed)));
  }
  std::thread closer([&] { scheduler.close(); });  // blocks on the gated work
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  closer.join();

  // Shutdown dropped nothing: every accepted future is fulfilled.
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 5u);
  expectInvariant(stats);
  EXPECT_THROW((void)scheduler.submit(makeRequest(46)), ModelError);
}

TEST(AsyncScheduler, DestructorDrainsPendingWork) {
  std::vector<std::future<service::RequestOutcome>> futures;
  {
    StreamConfig config;
    config.workers = 2;
    config.queueCapacity = 2;
    AsyncScheduler scheduler(config);
    for (std::uint64_t seed = 50; seed < 54; ++seed) {
      futures.push_back(scheduler.submit(makeRequest(seed)));
    }
  }  // ~AsyncScheduler: close() + join
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
}

TEST(AsyncScheduler, CoalescedWaiterListIsCappedAndOverflowSolvesDirectly) {
  // Regression (ROADMAP "bound coalesced-waiter memory"): parked duplicates
  // escape the channel's capacity accounting, so the per-key waiter list is
  // capped; past the cap the popping worker solves the duplicate itself.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;
  std::atomic<int> solves{0};

  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  config.maxCoalescedWaiters = 2;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    ++solves;
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return released; });
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);

  // 8 identical requests: one worker owns the key and blocks in the solve;
  // the other parks exactly maxCoalescedWaiters duplicates, then the next
  // duplicate overflows the list and is solved directly (blocking too). The
  // remaining 4 fit the channel, so submission completes.
  const service::Request request = makeRequest(70);
  std::vector<std::future<service::RequestOutcome>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(scheduler.submit(request));

  // Poll monotone counters only — no fixed sleeps.
  while (true) {
    const StreamStats stats = scheduler.stats();
    if (stats.waitersAttached == 2 && stats.coalesceOverflow == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(scheduler.stats().completed, 0u);  // everything gated or parked
  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  scheduler.drain();
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 8u);
  // Every parked duplicate became a coalesced copy; everything else (owner,
  // overflow, post-release pops) went through its own solve.
  EXPECT_GE(stats.waitersAttached, 2u);
  EXPECT_EQ(stats.coalesced, stats.waitersAttached);
  EXPECT_EQ(stats.solved + stats.coalesced, 8u);
  EXPECT_EQ(stats.solved, static_cast<std::uint64_t>(solves.load()));
  expectInvariant(stats);
}

TEST(AsyncScheduler, AllDuplicatesStreamStaysBounded) {
  // The boundedness proof: with EVERY solve gated, an all-duplicates stream
  // must come to rest with at most
  //   1 (owner) + cap (parked) + 1 (overflow on the other worker)
  //   + queueCapacity (channel) + 1 (producer blocked in push)
  // requests admitted — with unbounded parking (the old behavior) the
  // producer would sail through all 50 submissions.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;

  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 2;
  config.maxCoalescedWaiters = 2;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return released; });
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);

  const service::Request request = makeRequest(71);
  std::vector<std::future<service::RequestOutcome>> futures;
  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) futures.push_back(scheduler.submit(request));
  });

  // Quiescence: both workers gated (one owner, one overflow), the waiter
  // list full, the channel full, the producer blocked. All monotone.
  while (true) {
    const StreamStats stats = scheduler.stats();
    if (stats.waitersAttached >= 2 && stats.coalesceOverflow >= 1 &&
        stats.queue.pushWaits >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    const StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_LE(stats.submitted, 7u);  // 1 + 2 + 1 + 2 + 1 — bounded, not 50
    EXPECT_LE(stats.waitersAttached, 2u);
  }
  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  producer.join();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  scheduler.drain();
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 50u);
  EXPECT_EQ(stats.completed, 50u);
  expectInvariant(stats);
}

TEST(AsyncScheduler, OverflowOutcomesAreByteIdenticalToCoalescedOnes) {
  // No override: overflow duplicates go through real portfolio solves, which
  // must render byte-identically to the coalesced copies (the determinism
  // contract the cap relies on).
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 8;
  config.maxCoalescedWaiters = 1;
  AsyncScheduler scheduler(config);
  const service::Request request = makeRequest(73);
  std::vector<std::future<service::RequestOutcome>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(scheduler.submit(request));
  std::vector<service::RequestOutcome> outcomes;
  for (auto& future : futures) outcomes.push_back(future.get());
  scheduler.drain();
  for (const service::RequestOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(service::describeOutcome(outcome), service::describeOutcome(outcomes.front()));
    EXPECT_EQ(outcome.fingerprint.hex(), outcomes.front().fingerprint.hex());
  }
  expectInvariant(scheduler.stats());
}

TEST(AsyncScheduler, CapZeroDisablesCoalescingEntirely) {
  std::atomic<int> solves{0};
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 8;
  config.maxCoalescedWaiters = 0;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    ++solves;
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);
  const service::Request request = makeRequest(72);
  std::vector<std::future<service::RequestOutcome>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(scheduler.submit(request));
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  scheduler.drain();
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.waitersAttached, 0u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(solves.load(), 6);  // every duplicate solved on its own
  expectInvariant(stats);
}

TEST(AsyncScheduler, BackpressureIsObservableUnderABlockedWorker) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;

  StreamConfig config;
  config.workers = 1;
  config.queueCapacity = 1;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return released; });
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);
  // Worker takes #1 and blocks; #2 fills the queue; #3 must block in submit.
  std::vector<std::future<service::RequestOutcome>> futures;
  futures.push_back(scheduler.submit(makeRequest(60)));
  futures.push_back(scheduler.submit(makeRequest(61)));
  std::thread producer([&] { futures.push_back(scheduler.submit(makeRequest(62))); });
  // Open the gate only once #3 is provably blocked on the full queue —
  // a fixed sleep would race the producer thread's startup.
  while (scheduler.stats().queue.pushWaits == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  producer.join();
  scheduler.drain();
  EXPECT_GE(scheduler.stats().queue.pushWaits, 1u);
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
}

void expectCoherent(const SchedulerSnapshot& snap) {
  // The invariants a poller may rely on at ANY instant: derived quantities
  // are computed inside one critical section, and the independently-locked
  // channel depth is clamped to the configured capacity.
  EXPECT_GE(snap.stream.submitted, snap.stream.completed);
  EXPECT_EQ(snap.inFlight, snap.stream.submitted - snap.stream.completed);
  EXPECT_LE(snap.queueDepth, snap.queueCapacity);
  EXPECT_LE(snap.inflightKeys, snap.inFlight);
}

TEST(AsyncScheduler, SnapshotIsCoherentWhilePolledConcurrently) {
  std::atomic<bool> released{false};
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    // Slow solve: keep work genuinely in flight while the poller hammers
    // snapshot(); spin-wait so release is immediate once flipped.
    while (!released.load()) std::this_thread::sleep_for(std::chrono::microseconds(50));
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      expectCoherent(scheduler.snapshot());
    }
  });
  std::vector<std::future<service::RequestOutcome>> futures;
  for (std::uint64_t i = 0; i < 6; ++i) {
    futures.push_back(scheduler.submit(makeRequest(70 + i)));
  }
  // Provably mid-burst: workers hold two jobs, the queue holds the rest.
  while (scheduler.snapshot().inFlight < 6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  expectCoherent(scheduler.snapshot());
  released.store(true);
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  stop.store(true);
  poller.join();

  scheduler.drain();
  const SchedulerSnapshot done = scheduler.snapshot();
  expectCoherent(done);
  EXPECT_EQ(done.inFlight, 0u);
  EXPECT_EQ(done.queueDepth, 0u);
  EXPECT_EQ(done.inflightKeys, 0u);
  EXPECT_EQ(done.parkedWaiters, 0u);
  EXPECT_EQ(done.stream.submitted, 6u);
}

TEST(AsyncScheduler, SnapshotCountsParkedWaiters) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;
  StreamConfig config;
  // Two workers: one blocks inside the gated solve while the other pops and
  // parks both duplicates (a single worker could never reach them).
  config.workers = 2;
  config.queueCapacity = 8;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return released; });
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);
  std::vector<std::future<service::RequestOutcome>> futures;
  futures.push_back(scheduler.submit(makeRequest(80)));
  futures.push_back(scheduler.submit(makeRequest(80)));  // identical: parks
  futures.push_back(scheduler.submit(makeRequest(80)));  // identical: parks
  // Wait until the worker owns the key and both duplicates are parked on it.
  while (scheduler.stats().waitersAttached < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const SchedulerSnapshot mid = scheduler.snapshot();
  expectCoherent(mid);
  EXPECT_EQ(mid.inflightKeys, 1u);
  EXPECT_EQ(mid.parkedWaiters, 2u);
  EXPECT_EQ(mid.inFlight, 3u);
  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  scheduler.drain();
  const SchedulerSnapshot done = scheduler.snapshot();
  EXPECT_EQ(done.parkedWaiters, 0u);
  EXPECT_EQ(done.inflightKeys, 0u);
}

// -- Deadlines and fault sites ----------------------------------------------

TEST(AsyncScheduler, QueueExpiredRequestGetsFlaggedTimeoutNotAHang) {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  StreamConfig config;
  config.workers = 1;
  config.queueCapacity = 4;
  config.solveOverride = [&](const service::Request& request) -> service::RequestOutcome {
    if (request.name == "blocker-100") {
      std::unique_lock lock(mutex);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);
  std::future<service::RequestOutcome> blocker =
      scheduler.submit(makeRequest(100, 6, "blocker"));
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return entered; }));
  }
  // Queued behind the latched worker with a 30ms deadline it cannot make.
  service::Request doomed = makeRequest(101);
  doomed.deadline = service::Deadline::in(30);
  std::future<service::RequestOutcome> future = scheduler.submit(doomed);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();

  EXPECT_TRUE(blocker.get().ok);
  const service::RequestOutcome outcome = future.get();
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.timedOut);
  EXPECT_NE(outcome.error.find("while queued"), std::string::npos);
  scheduler.drain();
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 1u);  // timeouts land in the failed bucket
  expectInvariant(stats);
}

TEST(AsyncScheduler, CoalescedWaiterPastDeadlineGetsTimeoutNotLateResult) {
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 8;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return release; });
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  AsyncScheduler scheduler(config);
  std::future<service::RequestOutcome> owner = scheduler.submit(makeRequest(110));
  // Identical request parks on the in-flight solve, but with a deadline that
  // expires while the owner is still latched.
  service::Request duplicate = makeRequest(110);
  duplicate.deadline = service::Deadline::in(50);
  std::future<service::RequestOutcome> parked = scheduler.submit(duplicate);
  while (scheduler.stats().waitersAttached < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();

  EXPECT_TRUE(owner.get().ok);
  const service::RequestOutcome expired = parked.get();
  EXPECT_FALSE(expired.ok);
  EXPECT_TRUE(expired.timedOut);
  EXPECT_NE(expired.error.find("coalesced"), std::string::npos);
  scheduler.drain();
  expectInvariant(scheduler.stats());
}

TEST(AsyncScheduler, InlineModeChecksDeadlineBeforeSolving) {
  StreamConfig config;
  config.workers = 0;
  AsyncScheduler scheduler(config);
  service::Request request = makeRequest(120);
  request.deadline = service::Deadline::in(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // guarantee expiry
  const service::RequestOutcome outcome = scheduler.submit(request).get();
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.timedOut);
  EXPECT_NE(outcome.error.find("before solving"), std::string::npos);
}

TEST(AsyncScheduler, SubmitFaultSitePresentsAsAdmissionRefusal) {
  StreamConfig config;
  config.workers = 1;
  AsyncScheduler scheduler(config);
  {
    fault::ScopedFaultSpec scope("sched.submit");
    EXPECT_FALSE(scheduler.trySubmit(
        makeRequest(130), [](const service::Request&, const service::RequestOutcome&) {}));
    EXPECT_THROW((void)scheduler.submit(makeRequest(131)), ModelError);
  }
  // Disarmed, the same scheduler admits and solves normally.
  EXPECT_TRUE(scheduler.submit(makeRequest(132)).get().ok);
  scheduler.drain();
}

}  // namespace
}  // namespace pipesched::stream
