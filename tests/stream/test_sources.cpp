// Sources and sinks: lazy file ingestion, directory expansion, generator
// determinism and batch-naming parity, scenario and chain composition, the
// JSONL request protocol (file/text/kind lines, overrides, malformed-line
// handling), and the JSONL sink's line-per-outcome round-trip.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pipesched/io/format.hpp"
#include "pipesched/io/json_reader.hpp"
#include "pipesched/service/fingerprint.hpp"
#include "pipesched/stream/sink.hpp"
#include "pipesched/stream/source.hpp"

namespace pipesched::stream {
namespace {

std::string tempPath(const std::string& name) {
  static const std::string prefix =
      ::testing::TempDir() + "/pid" + std::to_string(::getpid()) + "_stream_";
  return prefix + name;
}

io::Instance makeInstance(std::uint64_t seed, const std::string& name) {
  workload::Rng rng(seed);
  workload::InstancePair pair =
      workload::randomInstance(workload::ExperimentKind::kE1BalancedHomComm, 5, 3, rng);
  return io::Instance{std::move(pair.pipeline), std::move(pair.platform), name};
}

std::string writeInstanceFile(const std::string& fileName, std::uint64_t seed,
                              const std::string& instanceName) {
  const std::string path = tempPath(fileName);
  io::writeInstanceToFile(path, makeInstance(seed, instanceName));
  return path;
}

TEST(FileListSource, ReadsOneFilePerPullAndFallsBackToThePathName) {
  const std::string named = writeInstanceFile("named.psi", 1, "has-a-name");
  const std::string anonymous = writeInstanceFile("anon.psi", 2, "");
  FileListSource source({named, anonymous}, service::SweepSpec{4, 3},
                        core::CommModel::kSequential);
  const std::optional<service::Request> first = source.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->name, "has-a-name");
  const std::optional<service::Request> second = source.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->name, anonymous);  // no name line: the path identifies it
  EXPECT_FALSE(source.next().has_value());
}

TEST(FileListSource, MissingFileThrowsAtItsPullNotAtConstruction) {
  const std::string good = writeInstanceFile("good.psi", 3, "good");
  FileListSource source({good, tempPath("nope.psi")}, service::SweepSpec{4, 3},
                        core::CommModel::kSequential);
  EXPECT_TRUE(source.next().has_value());  // laziness: the good file still served
  EXPECT_THROW((void)source.next(), std::exception);
}

TEST(ExpandInstancePaths, DirectoriesContributeTheirPsiFilesSorted) {
  namespace fs = std::filesystem;
  const std::string dir = tempPath("instdir");
  fs::create_directories(dir);
  io::writeInstanceToFile(dir + "/b.psi", makeInstance(4, "b"));
  io::writeInstanceToFile(dir + "/a.psi", makeInstance(5, "a"));
  std::ofstream(dir + "/notes.txt") << "not an instance\n";
  const std::string loose = writeInstanceFile("loose.psi", 6, "loose");

  const std::vector<std::string> expanded = expandInstancePaths({loose, dir});
  ASSERT_EQ(expanded.size(), 3u);
  EXPECT_EQ(expanded[0], loose);  // plain files pass through in place
  EXPECT_EQ(expanded[1], dir + "/a.psi");
  EXPECT_EQ(expanded[2], dir + "/b.psi");
}

TEST(ExpandInstancePaths, EmptyDirectoryIsLoud) {
  namespace fs = std::filesystem;
  const std::string dir = tempPath("emptydir");
  fs::create_directories(dir);
  EXPECT_THROW((void)expandInstancePaths({dir}), std::runtime_error);
}

TEST(GeneratorSource, IsDeterministicAndMatchesBatchNaming) {
  GeneratorSource::Spec spec;
  spec.kind = workload::ExperimentKind::kE3LargeComputations;
  spec.count = 3;
  spec.stages = 6;
  spec.processors = 4;
  spec.seed = 42;
  spec.sweep = service::SweepSpec{4, 3};

  GeneratorSource a(spec);
  GeneratorSource b(spec);
  for (std::size_t i = 0; i < 3; ++i) {
    const std::optional<service::Request> ra = a.next();
    const std::optional<service::Request> rb = b.next();
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(ra->name, "E3-n6p4-" + std::to_string(i));  // the `batch` CLI scheme
    EXPECT_EQ(service::canonicalKey(*ra), service::canonicalKey(*rb));
  }
  EXPECT_FALSE(a.next().has_value());
}

TEST(ScenarioSource, YieldsEveryNamedScenarioOnTheLabCluster) {
  ScenarioSource source(service::SweepSpec{4, 3}, core::CommModel::kSequential);
  std::vector<std::string> names;
  while (const std::optional<service::Request> request = source.next()) {
    names.push_back(request->name);
  }
  ASSERT_EQ(names.size(), workload::allScenarios().size());
  EXPECT_NE(std::find(names.begin(), names.end(), "image-processing"), names.end());
}

TEST(ChainSource, ConcatenatesPartsInOrder) {
  std::vector<std::unique_ptr<Source>> parts;
  GeneratorSource::Spec spec;
  spec.kind = workload::ExperimentKind::kE1BalancedHomComm;
  spec.count = 2;
  spec.stages = 4;
  spec.processors = 3;
  parts.push_back(std::make_unique<GeneratorSource>(spec));
  spec.kind = workload::ExperimentKind::kE4SmallComputations;
  spec.count = 1;
  parts.push_back(std::make_unique<GeneratorSource>(spec));
  ChainSource chain(std::move(parts));
  EXPECT_EQ(chain.next()->name, "E1-n4p3-0");
  EXPECT_EQ(chain.next()->name, "E1-n4p3-1");
  EXPECT_EQ(chain.next()->name, "E4-n4p3-0");
  EXPECT_FALSE(chain.next().has_value());
}

TEST(JsonlSource, ParsesFileTextAndKindLinesWithOverrides) {
  const std::string path = writeInstanceFile("jsonl_ref.psi", 7, "from-file");
  std::ostringstream instanceText;
  io::writeInstance(instanceText, makeInstance(8, "inline-text"));

  std::ostringstream lines;
  lines << "{\"file\": " << '"' << path << '"' << "}\n";
  lines << "\n";  // blank lines are skipped
  lines << "{\"text\": \"" << [&] {
    std::string escaped;
    for (const char c : instanceText.str()) {
      if (c == '\n') escaped += "\\n";
      else if (c == '"') escaped += "\\\"";
      else escaped += c;
    }
    return escaped;
  }() << "\", \"points\": 9, \"overlap\": true}\n";
  lines << R"({"kind": "e2", "stages": 5, "processors": 3, "seed": 11, "name": "renamed"})"
        << "\n";

  std::istringstream in(lines.str());
  JsonlSource source(in, JsonlDefaults{service::SweepSpec{4, 3},
                                       core::CommModel::kSequential});

  const std::optional<service::Request> fromFile = source.next();
  ASSERT_TRUE(fromFile.has_value());
  EXPECT_EQ(fromFile->name, "from-file");
  EXPECT_EQ(fromFile->sweep.points, 4u);  // defaults apply
  EXPECT_EQ(fromFile->model, core::CommModel::kSequential);

  const std::optional<service::Request> fromText = source.next();
  ASSERT_TRUE(fromText.has_value());
  EXPECT_EQ(fromText->name, "inline-text");
  EXPECT_EQ(fromText->sweep.points, 9u);  // per-line override
  EXPECT_EQ(fromText->model, core::CommModel::kOverlapped);

  const std::optional<service::Request> generated = source.next();
  ASSERT_TRUE(generated.has_value());
  EXPECT_EQ(generated->name, "renamed");
  EXPECT_EQ(generated->pipeline.stageCount(), 5u);
  EXPECT_FALSE(source.next().has_value());
}

TEST(JsonlSource, KindLinesAreDeterministicPerSeed) {
  const std::string line = R"({"kind": "E2", "stages": 6, "processors": 4, "seed": 3})";
  std::istringstream in1(line);
  std::istringstream in2(line);
  JsonlSource s1(in1);
  JsonlSource s2(in2);
  const auto r1 = s1.next();
  const auto r2 = s2.next();
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(service::canonicalKey(*r1), service::canonicalKey(*r2));
  EXPECT_EQ(r1->name, "E2-n6p4-s3");
}

TEST(JsonlSource, MalformedLinesGoToTheHandlerAndAreSkipped) {
  std::istringstream in(
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3}\n"
      "{not json}\n"
      "{\"file\": \"x\", \"text\": \"y\"}\n"
      "{\"kind\": \"E9\", \"stages\": 4, \"processors\": 3}\n"
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3, \"typo\": 1}\n"
      "{\"kind\": \"E4\", \"stages\": 4, \"processors\": 3}\n");
  std::vector<std::size_t> badLines;
  JsonlSource source(in, {}, [&](std::size_t line, const std::string& message) {
    badLines.push_back(line);
    EXPECT_FALSE(message.empty());
    // The inner parser's "line 1: " prefix must be stripped — the stream
    // line number in the callback is the only line that means anything.
    EXPECT_EQ(message.rfind("line 1: ", 0), std::string::npos) << message;
  });
  std::vector<std::string> names;
  while (const std::optional<service::Request> request = source.next()) {
    names.push_back(request->name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"E1-n4p3-s20070628", "E4-n4p3-s20070628"}));
  EXPECT_EQ(badLines, (std::vector<std::size_t>{2, 3, 4, 5}));
}

TEST(JsonlSource, MalformedLineThrowsWithoutAHandler) {
  std::istringstream in("{broken\n");
  JsonlSource source(in);
  EXPECT_THROW((void)source.next(), io::ParseError);
}

TEST(JsonlSource, GeneratorOnlyFieldsAreRejectedOnFileAndTextLines) {
  // {"file": ..., "seed": ...} must not silently ignore the seed — the
  // client thinks it re-seeded; we must say the field does not apply.
  const std::string path = writeInstanceFile("gen_only.psi", 9, "gen-only");
  std::istringstream in("{\"file\": \"" + path + "\", \"seed\": 3}\n");
  std::string message;
  JsonlSource source(in, {}, [&](std::size_t, const std::string& m) { message = m; });
  EXPECT_FALSE(source.next().has_value());
  EXPECT_NE(message.find("only applies to \"kind\" lines"), std::string::npos) << message;
}

TEST(JsonlSource, DeadlineMsStampsAnAbsoluteDeadline) {
  std::istringstream in(
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3, \"deadline_ms\": 5000}\n"
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3}\n"
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3, \"deadline_ms\": 0}\n");
  JsonlSource source(in);

  const std::optional<service::Request> bounded = source.next();
  ASSERT_TRUE(bounded.has_value());
  EXPECT_TRUE(bounded->deadline.active);
  EXPECT_FALSE(bounded->deadline.expired());
  const double remaining = bounded->deadline.remainingMs();
  EXPECT_GT(remaining, 1000.0);  // stamped ~5s out
  EXPECT_LE(remaining, 5000.0);

  const std::optional<service::Request> unbounded = source.next();
  ASSERT_TRUE(unbounded.has_value());
  EXPECT_FALSE(unbounded->deadline.active);  // no field, no default: inactive

  const std::optional<service::Request> zero = source.next();
  ASSERT_TRUE(zero.has_value());
  EXPECT_FALSE(zero->deadline.active);  // explicit 0 disables
}

TEST(JsonlSource, DeadlineDefaultAppliesOnlyWhenLineHasNone) {
  JsonlDefaults defaults;
  defaults.deadlineMs = 2000;
  std::istringstream in(
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3}\n"
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3, \"deadline_ms\": 60000}\n");
  JsonlSource source(in, defaults);

  const std::optional<service::Request> defaulted = source.next();
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_TRUE(defaulted->deadline.active);
  EXPECT_LE(defaulted->deadline.remainingMs(), 2000.0);

  const std::optional<service::Request> overridden = source.next();
  ASSERT_TRUE(overridden.has_value());
  EXPECT_GT(overridden->deadline.remainingMs(), 10000.0);  // line override wins
}

TEST(JsonlSource, NegativeDeadlineMsIsRejected) {
  std::istringstream in(
      "{\"kind\": \"E1\", \"stages\": 4, \"processors\": 3, \"deadline_ms\": -1}\n");
  std::string message;
  JsonlSource source(in, {}, [&](std::size_t, const std::string& m) { message = m; });
  EXPECT_FALSE(source.next().has_value());
  EXPECT_NE(message.find("deadline_ms"), std::string::npos) << message;
}

TEST(JsonlSource, DeadlineIsExcludedFromRequestIdentity) {
  // The deadline is QoS, not identity: two requests differing only in
  // deadline_ms must coalesce/cache as the same work.
  std::istringstream in(
      "{\"kind\": \"E2\", \"stages\": 5, \"processors\": 3, \"seed\": 4, \"deadline_ms\": 1000}\n"
      "{\"kind\": \"E2\", \"stages\": 5, \"processors\": 3, \"seed\": 4}\n");
  JsonlSource source(in);
  const auto a = source.next();
  const auto b = source.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(service::canonicalKey(*a), service::canonicalKey(*b));
  EXPECT_EQ(service::fingerprint(*a).hex(), service::fingerprint(*b).hex());
}

TEST(JsonlSink, EmitsOneParseableLinePerOutcome) {
  std::ostringstream out;
  JsonlSink sink(out);

  workload::Rng rng(13);
  workload::InstancePair pair =
      workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, 5, 3, rng);
  const service::Request request{pair.pipeline, pair.platform, core::CommModel::kSequential,
                                 service::SweepSpec{4, 3}, "sink-test"};
  service::RequestOutcome ok;
  ok.ok = true;
  ok.fingerprint = service::fingerprint(request);  // solve paths set this
  ok.result.front.push_back(core::ParetoPoint{2.5, 7.5, std::nullopt});
  ok.result.solvers.push_back(service::SolverContribution{"H1-SpMonoP", 4, true});
  sink.emit(0, request, ok);
  service::RequestOutcome failed;
  failed.ok = false;
  failed.fingerprint = service::fingerprint(request);
  failed.error = "bad \"sweep\"";
  sink.emit(1, request, failed);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const io::JsonValue first = io::parseJson(line);  // valid single-line JSON
  EXPECT_EQ(first.find("index")->asSize(), 0u);
  EXPECT_EQ(first.find("name")->asString(), "sink-test");
  EXPECT_EQ(first.find("fingerprint")->asString(), service::fingerprint(request).hex());
  EXPECT_TRUE(first.find("ok")->asBool());
  EXPECT_EQ(first.find("front")->items.size(), 1u);
  EXPECT_EQ(first.find("front")->items[0].find("period")->asNumber(), 2.5);

  ASSERT_TRUE(std::getline(lines, line));
  const io::JsonValue second = io::parseJson(line);  // escaping survives round-trip
  EXPECT_FALSE(second.find("ok")->asBool());
  EXPECT_EQ(second.find("error")->asString(), "bad \"sweep\"");
  EXPECT_FALSE(std::getline(lines, line));  // exactly two lines
}

}  // namespace
}  // namespace pipesched::stream
