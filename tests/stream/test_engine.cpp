// The streaming engine end to end: stream-vs-batch byte-identity across
// worker counts and queue capacities, strict input-order emission, the
// bounded-memory window (instrumented at the Source/Sink seam), failure
// pass-through, and cross-pass cache reuse.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "pipesched/stream/engine.hpp"
#include "pipesched/workload/generator.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::stream {
namespace {

/// Named scenarios plus one generated instance per regime — the mix the
/// acceptance criteria call out for the equivalence test.
std::vector<service::Request> mixedRequests(std::uint64_t seed, std::size_t points = 6) {
  const service::SweepSpec sweep{points, 3};
  std::vector<service::Request> requests;
  const core::Platform lab = workload::labCluster();
  for (workload::Scenario& scenario : workload::allScenarios()) {
    requests.push_back(service::Request{std::move(scenario.pipeline), lab,
                                        core::CommModel::kSequential, sweep, scenario.name});
  }
  const workload::ExperimentKind kinds[] = {
      workload::ExperimentKind::kE1BalancedHomComm,
      workload::ExperimentKind::kE2BalancedHetComm,
      workload::ExperimentKind::kE3LargeComputations,
      workload::ExperimentKind::kE4SmallComputations,
  };
  workload::Rng rng(seed);
  for (const workload::ExperimentKind kind : kinds) {
    workload::InstancePair pair = workload::randomInstance(kind, 7, 4, rng);
    std::ostringstream name;
    name << workload::experimentName(kind) << "-stream";
    requests.push_back(service::Request{std::move(pair.pipeline), std::move(pair.platform),
                                        core::CommModel::kSequential, sweep, name.str()});
  }
  return requests;
}

TEST(StreamEngine, OutcomesAreByteIdenticalToSolveBatchAcrossConfigs) {
  const std::vector<service::Request> requests = mixedRequests(11);

  // The batch reference: the serial solveBatch path.
  service::ServiceConfig serialConfig;
  serialConfig.threads = 0;
  serialConfig.cacheCapacity = 0;
  service::SchedulingService reference(serialConfig);
  const service::BatchResult batch = reference.solveBatch(requests);
  ASSERT_EQ(batch.stats.failed, 0u);

  struct Config {
    std::size_t workers;
    std::size_t queueCapacity;
  };
  // The acceptance grid: workers 0/2/4, capacities from minimal to roomy.
  const Config configs[] = {{0, 1}, {2, 1}, {2, 4}, {4, 2}, {4, 64}};
  for (const Config& cfg : configs) {
    StreamConfig config;
    config.workers = cfg.workers;
    config.queueCapacity = cfg.queueCapacity;
    AsyncScheduler scheduler(config);
    VectorSource source(requests);
    CollectSink sink;
    const EngineStats stats = runStream(source, sink, scheduler);

    EXPECT_EQ(stats.requests, requests.size());
    EXPECT_EQ(stats.failed, 0u);
    ASSERT_EQ(sink.items.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(service::describeOutcome(sink.items[i].outcome),
                service::describeOutcome(batch.outcomes[i]))
          << "workers=" << cfg.workers << " capacity=" << cfg.queueCapacity << " slot " << i;
    }
  }
}

TEST(StreamEngine, EmissionIsInInputOrder) {
  StreamConfig config;
  config.workers = 4;
  config.queueCapacity = 2;
  AsyncScheduler scheduler(config);
  VectorSource source(mixedRequests(13, 4));
  CollectSink sink;
  (void)runStream(source, sink, scheduler);
  for (std::size_t i = 0; i < sink.items.size(); ++i) {
    EXPECT_EQ(sink.items[i].index, i);
  }
}

/// Instruments the pull-to-emit window: counts requests that have been
/// pulled from the inner source but not yet emitted. The engine pumps from
/// one thread, so plain counters suffice.
class CountingSource : public Source {
 public:
  explicit CountingSource(Source& inner) : inner_(&inner) {}

  std::optional<service::Request> next() override {
    std::optional<service::Request> request = inner_->next();
    if (request) {
      ++live_;
      maxLive_ = std::max(maxLive_, live_);
    }
    return request;
  }

  void onEmit() { --live_; }
  [[nodiscard]] std::size_t maxLive() const noexcept { return maxLive_; }

 private:
  Source* inner_;
  std::size_t live_ = 0;
  std::size_t maxLive_ = 0;
};

class CountingSink : public Sink {
 public:
  explicit CountingSink(CountingSource& source) : source_(&source) {}

  void emit(std::size_t, const service::Request&, const service::RequestOutcome&) override {
    source_->onEmit();
    ++emitted_;
  }

  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }

 private:
  CountingSource* source_;
  std::size_t emitted_ = 0;
};

TEST(StreamEngine, NeverHoldsMoreThanQueuePlusInFlightRequests) {
  // 40 requests through a capacity-2 queue with 2 workers: at no point may
  // more than capacity + workers + 1 requests exist between pull and emit —
  // lazy ingestion and incremental emission, not a disguised batch load.
  GeneratorSource::Spec spec;
  spec.kind = workload::ExperimentKind::kE1BalancedHomComm;
  spec.count = 40;
  spec.stages = 4;
  spec.processors = 3;
  spec.seed = 99;
  spec.sweep = service::SweepSpec{3, 3};
  GeneratorSource generator(spec);
  CountingSource source(generator);
  CountingSink sink(source);

  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 2;
  AsyncScheduler scheduler(config);
  const EngineStats stats = runStream(source, sink, scheduler);

  EXPECT_EQ(stats.requests, 40u);
  EXPECT_EQ(sink.emitted(), 40u);
  const std::size_t window = config.queueCapacity + config.workers;
  EXPECT_LE(source.maxLive(), window + 1);
  // The scheduler's own high-water can additionally lag by up to one
  // uncounted completion per worker (futures become ready just before the
  // completion counters are bumped), so its bound is window + workers.
  EXPECT_LE(stats.stream.maxInFlight, window + config.workers);
}

TEST(StreamEngine, FailuresFlowToTheSinkInPlace) {
  std::vector<service::Request> requests = mixedRequests(17, 4);
  requests[2].sweep.points = 0;  // fails in the portfolio
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  AsyncScheduler scheduler(config);
  VectorSource source(requests);
  CollectSink sink;
  const EngineStats stats = runStream(source, sink, scheduler);
  EXPECT_EQ(stats.failed, 1u);
  ASSERT_EQ(sink.items.size(), requests.size());
  EXPECT_FALSE(sink.items[2].outcome.ok);
  EXPECT_FALSE(sink.items[2].outcome.error.empty());
  for (std::size_t i = 0; i < sink.items.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(sink.items[i].outcome.ok) << "slot " << i;
  }
}

TEST(StreamEngine, SecondPassThroughTheSameSchedulerHitsTheCache) {
  const std::vector<service::Request> requests = mixedRequests(19, 4);
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  AsyncScheduler scheduler(config);

  VectorSource first(requests);
  CollectSink coldSink;
  const EngineStats cold = runStream(first, coldSink, scheduler);
  EXPECT_EQ(cold.stream.cacheHits, 0u);

  VectorSource second(requests);
  CollectSink warmSink;
  const EngineStats warm = runStream(second, warmSink, scheduler);
  EXPECT_EQ(warm.stream.cacheHits, requests.size());  // cumulative snapshot: all pass-2

  ASSERT_EQ(coldSink.items.size(), warmSink.items.size());
  for (std::size_t i = 0; i < coldSink.items.size(); ++i) {
    EXPECT_EQ(service::describeOutcome(coldSink.items[i].outcome),
              service::describeOutcome(warmSink.items[i].outcome))
        << "slot " << i;
  }
}

TEST(StreamEngine, AThrowingSourceDrainsInFlightWorkBeforePropagating) {
  class ThrowingSource : public Source {
   public:
    explicit ThrowingSource(std::vector<service::Request> head) : head_(std::move(head)) {}
    std::optional<service::Request> next() override {
      if (cursor_ < head_.size()) return head_[cursor_++];
      throw std::runtime_error("disk fell off");
    }

   private:
    std::vector<service::Request> head_;
    std::size_t cursor_ = 0;
  };

  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 4;
  AsyncScheduler scheduler(config);
  ThrowingSource source(mixedRequests(23, 3));
  CollectSink sink;
  EXPECT_THROW((void)runStream(source, sink, scheduler), std::runtime_error);
  // Nothing is left dangling: the scheduler settles immediately.
  scheduler.drain();
  const StreamStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
}

}  // namespace
}  // namespace pipesched::stream
