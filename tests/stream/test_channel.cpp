// BoundedChannel: FIFO order, blocking backpressure, close semantics under
// blocked producers/consumers, try variants, and MPMC delivery exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "pipesched/stream/channel.hpp"

namespace pipesched::stream {
namespace {

TEST(BoundedChannel, FifoWithinCapacity) {
  BoundedChannel<int> channel(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(channel.push(i));
  EXPECT_EQ(channel.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const std::optional<int> value = channel.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_EQ(channel.size(), 0u);
  const ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.pushed, 4u);
  EXPECT_EQ(stats.popped, 4u);
  EXPECT_EQ(stats.highWater, 4u);
}

TEST(BoundedChannel, ZeroCapacityIsRejected) {
  EXPECT_THROW(BoundedChannel<int>(0), ModelError);
}

TEST(BoundedChannel, PushBlocksWhenFullUntilAPopMakesRoom) {
  BoundedChannel<int> channel(1);
  ASSERT_TRUE(channel.push(1));
  std::atomic<bool> secondPushDone{false};
  std::thread producer([&] {
    EXPECT_TRUE(channel.push(2));  // blocks until the pop below
    secondPushDone = true;
  });
  // Wait until the producer is provably parked (pushWaits is bumped before
  // the wait) — a fixed sleep would race thread startup on a loaded box.
  while (channel.stats().pushWaits == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(secondPushDone.load());
  EXPECT_EQ(channel.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(secondPushDone.load());
  EXPECT_EQ(channel.pop().value(), 2);
  EXPECT_GE(channel.stats().pushWaits, 1u);  // the backpressure episode was counted
}

TEST(BoundedChannel, CloseUnblocksProducerWithFalse) {
  BoundedChannel<int> channel(1);
  ASSERT_TRUE(channel.push(1));
  std::atomic<bool> pushResult{true};
  std::thread producer([&] { pushResult = channel.push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.close();
  producer.join();
  EXPECT_FALSE(pushResult.load());
  // The accepted value still drains; then end-of-stream.
  EXPECT_EQ(channel.pop().value(), 1);
  EXPECT_FALSE(channel.pop().has_value());
}

TEST(BoundedChannel, CloseUnblocksConsumerWithNullopt) {
  BoundedChannel<int> channel(2);
  std::optional<int> result = 42;
  std::thread consumer([&] { result = channel.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.close();
  consumer.join();
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(channel.push(7));  // push after close is refused
}

TEST(BoundedChannel, TryVariantsNeverBlock) {
  BoundedChannel<int> channel(1);
  EXPECT_FALSE(channel.tryPop().has_value());  // empty
  int value = 5;
  EXPECT_TRUE(channel.tryPush(value));
  int rejected = 6;
  EXPECT_FALSE(channel.tryPush(rejected));  // full
  EXPECT_EQ(rejected, 6);                   // untouched on failure
  EXPECT_EQ(channel.tryPop().value(), 5);
  channel.close();
  int afterClose = 7;
  EXPECT_FALSE(channel.tryPush(afterClose));
}

TEST(BoundedChannel, MpmcDeliversEveryValueExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedChannel<int> channel(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.push(p * kPerProducer + i));
      }
    });
  }
  std::mutex received_mutex;
  std::multiset<int> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> value = channel.pop()) {
        std::lock_guard lock(received_mutex);
        received.insert(*value);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  channel.close();
  for (std::thread& t : consumers) t.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(received.count(v), 1u) << "value " << v;
  }
  const ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.pushed, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.popped, stats.pushed);
  EXPECT_LE(stats.highWater, 8u);  // never exceeded capacity
}

TEST(BoundedChannel, MoveOnlyValuesFlowThrough) {
  BoundedChannel<std::unique_ptr<int>> channel(2);
  EXPECT_TRUE(channel.push(std::make_unique<int>(11)));
  const std::optional<std::unique_ptr<int>> value = channel.pop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(**value, 11);
}

}  // namespace
}  // namespace pipesched::stream
