// Fault-injection registry: spec grammar, trigger semantics (probability,
// count, after, latency, noerror), prefix globs, per-rule stats, and the
// disarmed fast path. The registry is process-wide, so every test scopes its
// arming with ScopedFaultSpec (or arm/disarm pairs) to avoid leaking state.
#include "pipesched/fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::fault {
namespace {

TEST(FaultSpec, EmptySpecYieldsNoRules) {
  EXPECT_TRUE(parseFaultSpec("").empty());
  EXPECT_TRUE(parseFaultSpec("  ").empty());
}

TEST(FaultSpec, ParsesSingleClauseWithDefaults) {
  const std::vector<FaultRule> rules = parseFaultSpec("net.read");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].site, "net.read");
  EXPECT_DOUBLE_EQ(rules[0].probability, 1.0);
  EXPECT_EQ(rules[0].maxCount, 0u);
  EXPECT_EQ(rules[0].after, 0u);
  EXPECT_DOUBLE_EQ(rules[0].latencyMs, 0.0);
  EXPECT_TRUE(rules[0].fail);
}

TEST(FaultSpec, ParsesAllActions) {
  const std::vector<FaultRule> rules =
      parseFaultSpec("member.H3=p:0.25,count:7,after:2,latency:15,noerror");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].site, "member.H3");
  EXPECT_DOUBLE_EQ(rules[0].probability, 0.25);
  EXPECT_EQ(rules[0].maxCount, 7u);
  EXPECT_EQ(rules[0].after, 2u);
  EXPECT_DOUBLE_EQ(rules[0].latencyMs, 15.0);
  EXPECT_FALSE(rules[0].fail);
}

TEST(FaultSpec, ParsesMultipleClauses) {
  const std::vector<FaultRule> rules =
      parseFaultSpec("net.read=p:0.5;cache.put;sched.submit=count:1");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].site, "net.read");
  EXPECT_EQ(rules[1].site, "cache.put");
  EXPECT_EQ(rules[2].site, "sched.submit");
  EXPECT_EQ(rules[2].maxCount, 1u);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(parseFaultSpec("=p:0.5"), ModelError);       // empty site
  EXPECT_THROW(parseFaultSpec("net.read=p:1.5"), ModelError);  // p out of range
  EXPECT_THROW(parseFaultSpec("net.read=p:-0.1"), ModelError);
  EXPECT_THROW(parseFaultSpec("net.read=p:abc"), ModelError);
  EXPECT_THROW(parseFaultSpec("net.read=count:0"), ModelError);  // count >= 1
  EXPECT_THROW(parseFaultSpec("net.read=latency:-3"), ModelError);
  EXPECT_THROW(parseFaultSpec("net.read=bogus:1"), ModelError);  // unknown action
  EXPECT_THROW(parseFaultSpec("net.read="), ModelError);         // empty action
  EXPECT_THROW(parseFaultSpec("a*b=p:0.5"), ModelError);  // '*' only trailing
}

TEST(Fault, DisarmedInjectsNothing) {
  disarm();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(injected(sites::kNetRead));
  EXPECT_TRUE(stats().empty());
}

TEST(Fault, AlwaysOnRuleFiresEveryEvaluation) {
  ScopedFaultSpec scope("net.read");
  EXPECT_TRUE(armed());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(injected(sites::kNetRead));
  EXPECT_FALSE(injected(sites::kNetWrite));  // other sites untouched
  const std::vector<RuleStats> s = stats();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].evaluations, 8u);
  EXPECT_EQ(s[0].injected, 8u);
}

TEST(Fault, ScopedSpecDisarmsOnExit) {
  {
    ScopedFaultSpec scope("net.read");
    EXPECT_TRUE(injected(sites::kNetRead));
  }
  EXPECT_FALSE(armed());
  EXPECT_FALSE(injected(sites::kNetRead));
}

TEST(Fault, CountLimitsTotalInjections) {
  ScopedFaultSpec scope("cache.put=count:3");
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += injected(sites::kCachePut) ? 1 : 0;
  EXPECT_EQ(fired, 3);
}

TEST(Fault, AfterSkipsLeadingEvaluations) {
  ScopedFaultSpec scope("cache.get=after:4");
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(injected(sites::kCacheGet));
  EXPECT_TRUE(injected(sites::kCacheGet));
}

TEST(Fault, AfterAndCountCompose) {
  // Skip 2, then fire exactly twice: evaluations 3 and 4 fail, the rest pass.
  ScopedFaultSpec scope("sched.submit=after:2,count:2");
  std::vector<bool> results;
  for (int i = 0; i < 6; ++i) results.push_back(injected(sites::kSchedSubmit));
  EXPECT_EQ(results, (std::vector<bool>{false, false, true, true, false, false}));
}

TEST(Fault, ProbabilityStreamIsDeterministicPerSeed) {
  const auto draw = [](std::uint64_t seed) {
    arm("net.read=p:0.5", seed);
    std::vector<bool> results;
    for (int i = 0; i < 64; ++i) results.push_back(injected(sites::kNetRead));
    disarm();
    return results;
  };
  const std::vector<bool> a = draw(42);
  const std::vector<bool> b = draw(42);
  EXPECT_EQ(a, b);  // same seed replays the same decisions
  // And p:0.5 over 64 draws neither never nor always fires.
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST(Fault, NoerrorRuleDelaysButDoesNotFail) {
  ScopedFaultSpec scope("net.write=latency:30,noerror");
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(injected(sites::kNetWrite));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_GE(elapsed.count(), 25);  // slept, with scheduler slack
  const std::vector<RuleStats> s = stats();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].injected, 1u);  // a stall still counts as an injection
}

TEST(Fault, PrefixGlobMatchesMemberSites) {
  ScopedFaultSpec scope("member.*");
  EXPECT_TRUE(injected("member.H1"));
  EXPECT_TRUE(injected("member.sa:H5"));
  EXPECT_FALSE(injected(sites::kNetRead));
}

TEST(Fault, StarMatchesEverySite) {
  ScopedFaultSpec scope("*");
  EXPECT_TRUE(injected(sites::kNetRead));
  EXPECT_TRUE(injected(sites::kHttpParse));
  EXPECT_TRUE(injected("member.H2"));
}

TEST(Fault, MatchingRulesEvaluateIndependently) {
  // Both clauses match member.H1: the count-limited rule exhausts after one
  // shot while the glob counts every matching evaluation toward its `after`
  // gate — rule counters advance per rule, not per site.
  ScopedFaultSpec scope("member.H1=count:1;member.*=after:3");
  EXPECT_TRUE(injected("member.H1"));   // count rule fires; glob ordinal 0
  EXPECT_FALSE(injected("member.H1"));  // count exhausted; glob ordinal 1
  EXPECT_FALSE(injected("member.H2"));  // glob ordinal 2, still skipped
  EXPECT_TRUE(injected("member.H2"));   // glob ordinal 3 >= after:3 — fires
}

TEST(Fault, RearmingReplacesRulesAndResetsCounters) {
  arm("net.read=count:1");
  EXPECT_TRUE(injected(sites::kNetRead));
  EXPECT_FALSE(injected(sites::kNetRead));
  arm("net.read=count:1");  // re-arm: counters restart
  EXPECT_TRUE(injected(sites::kNetRead));
  disarm();
}

TEST(Fault, ConcurrentEvaluationIsSafeAndBounded) {
  ScopedFaultSpec scope("net.read=count:100");
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (injected(sites::kNetRead)) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(fired.load(), 100);  // count gate holds under contention
}

}  // namespace
}  // namespace pipesched::fault
