// Unit tests of the shared splitting engine: initial solution, admissibility,
// selection rules (including an instance where the mono and bi-criteria rules
// provably choose different splits), latency caps, 3-way splits and their
// degenerate fallbacks, and determinism.
#include <gtest/gtest.h>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/heuristics/splitting_engine.hpp"

namespace pipesched::heuristics {
namespace {

using core::Evaluator;
using core::Pipeline;
using core::Platform;

EngineConfig config(SelectionRule rule, SplitArity arity,
                    std::optional<Real> target = std::nullopt, Real cap = kInfinity) {
  EngineConfig c;
  c.rule = rule;
  c.arity = arity;
  c.periodTarget = target;
  c.latencyCap = cap;
  return c;
}

TEST(SplittingEngine, StartsFromLemma1Solution) {
  const Pipeline pipe({4, 4}, {0, 0, 0});
  const Platform plat({2, 1}, 1);
  const Evaluator eval(pipe, plat);
  // No split improves (both orders leave a cycle of 4), so the engine must
  // return the initial single-interval mapping on the fastest processor.
  const EngineResult r =
      runSplittingEngine(eval, config(SelectionRule::kMonoMax, SplitArity::kTwo));
  EXPECT_EQ(r.mapping, core::IntervalMapping::singleInterval(2, 0));
  EXPECT_EQ(r.splits, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.period, 4);
  EXPECT_TRUE(r.reachedTarget);  // exhaustion mode always "reaches"
}

TEST(SplittingEngine, AcceptsImprovingSplit) {
  const Pipeline pipe({6, 2}, {0, 0, 0});
  const Platform plat({2, 1}, 1);
  const Evaluator eval(pipe, plat);
  const EngineResult r =
      runSplittingEngine(eval, config(SelectionRule::kMonoMax, SplitArity::kTwo));
  // Best split: [0,0] stays on the fast P0 (cycle 3), [1,1] to P1 (cycle 2).
  EXPECT_EQ(r.splits, 1u);
  EXPECT_DOUBLE_EQ(r.metrics.period, 3);
  ASSERT_EQ(r.mapping.intervalCount(), 2u);
  EXPECT_EQ(r.mapping.processor(0), 0u);
  EXPECT_EQ(r.mapping.processor(1), 1u);
}

TEST(SplittingEngine, StopsAtPeriodTarget) {
  const Pipeline pipe({6, 2}, {0, 0, 0});
  const Platform plat({2, 1}, 1);
  const Evaluator eval(pipe, plat);
  // Target 4 is met by the initial mapping: no split may happen.
  const EngineResult r = runSplittingEngine(
      eval, config(SelectionRule::kMonoMax, SplitArity::kTwo, Real(4)));
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_EQ(r.splits, 0u);
  // Target 3 requires exactly one split.
  const EngineResult r2 = runSplittingEngine(
      eval, config(SelectionRule::kMonoMax, SplitArity::kTwo, Real(3)));
  EXPECT_TRUE(r2.reachedTarget);
  EXPECT_EQ(r2.splits, 1u);
  // Target 1 is unreachable.
  const EngineResult r3 = runSplittingEngine(
      eval, config(SelectionRule::kMonoMax, SplitArity::kTwo, Real(1)));
  EXPECT_FALSE(r3.reachedTarget);
}

// Instance engineered so the two selection rules disagree (see the numbers in
// the comments): w = {1, 7.5, 3}, delta = {0, 0.1, 0.5, 0}, speeds {3, 1}.
//  * cut after stage 0, parts -> (P1, P0): cycles {1.1, 3.6},
//      dLatency ~ 0.767, score = 0.767/0.233 ~ 3.29
//  * cut after stage 1, parts -> (P0, P1): cycles {3.433, 3.5},
//      dLatency = 2.5,  score = 2.5/0.333 = 7.5
// MonoMax prefers the second (max cycle 3.5 < 3.6); BiRatio the first.
class RuleDivergenceFixture : public ::testing::Test {
 protected:
  Pipeline pipe_{{1, 7.5, 3}, {0, 0.1, 0.5, 0}};
  Platform plat_{{3, 1}, 1};
  Evaluator eval_{pipe_, plat_};
};

TEST_F(RuleDivergenceFixture, MonoMaxPicksSmallestMaxCycle) {
  const EngineResult r =
      runSplittingEngine(eval_, config(SelectionRule::kMonoMax, SplitArity::kTwo));
  ASSERT_EQ(r.mapping.intervalCount(), 2u);
  EXPECT_EQ(r.mapping.interval(0), (core::Interval{0, 1}));
  EXPECT_EQ(r.mapping.processor(0), 0u);
  EXPECT_EQ(r.mapping.processor(1), 1u);
  EXPECT_NEAR(r.metrics.period, 3.5, 1e-12);
}

TEST_F(RuleDivergenceFixture, BiRatioPicksSmallestLatencyPerPeriodGain) {
  const EngineResult r =
      runSplittingEngine(eval_, config(SelectionRule::kBiRatio, SplitArity::kTwo));
  ASSERT_EQ(r.mapping.intervalCount(), 2u);
  EXPECT_EQ(r.mapping.interval(0), (core::Interval{0, 0}));
  EXPECT_EQ(r.mapping.processor(0), 1u);
  EXPECT_EQ(r.mapping.processor(1), 0u);
  EXPECT_NEAR(r.metrics.period, 3.6, 1e-12);
}

TEST_F(RuleDivergenceFixture, LatencyCapBlocksExpensiveSplits) {
  // Both candidates raise the latency above 4.3 (to ~4.6 and ~6.33): with a
  // cap of 4.3 no split is admissible.
  const EngineResult r = runSplittingEngine(
      eval_, config(SelectionRule::kBiRatio, SplitArity::kTwo, std::nullopt, Real(4.3)));
  EXPECT_EQ(r.splits, 0u);
  // Cap 4.7 admits only the cheap (q=0) split.
  const EngineResult r2 = runSplittingEngine(
      eval_, config(SelectionRule::kMonoMax, SplitArity::kTwo, std::nullopt, Real(4.7)));
  EXPECT_EQ(r2.splits, 1u);
  EXPECT_NEAR(r2.metrics.period, 3.6, 1e-12);
  EXPECT_LE(r2.metrics.latency, 4.7 + kTimeEps);
}

TEST(SplittingEngine, ThreeWaySplitUsesTwoNewProcessors) {
  const Pipeline pipe({6, 2, 2}, {0, 0, 0, 0});
  const Platform plat({2, 1, 1}, 1);
  const Evaluator eval(pipe, plat);
  const EngineResult r =
      runSplittingEngine(eval, config(SelectionRule::kMonoMax, SplitArity::kThree));
  // Expected: [0,0] on P0 (3), [1,1] and [2,2] on the unit-speed processors.
  ASSERT_EQ(r.mapping.intervalCount(), 3u);
  EXPECT_EQ(r.splits, 1u);
  EXPECT_DOUBLE_EQ(r.metrics.period, 3);
  EXPECT_EQ(r.mapping.processor(0), 0u);
}

TEST(SplittingEngine, ThreeWayFallsBackToTwoWayWithOneSpareProcessor) {
  const Pipeline pipe({6, 2, 2}, {0, 0, 0, 0});
  const Platform plat({2, 1}, 1);  // only one unused processor after init
  const Evaluator eval(pipe, plat);
  const EngineResult r =
      runSplittingEngine(eval, config(SelectionRule::kMonoMax, SplitArity::kThree));
  // 2-way fallback: [0,0]->P0 (3), [1,2]->P1 (4). Max 4 < 5: accepted.
  ASSERT_EQ(r.mapping.intervalCount(), 2u);
  EXPECT_DOUBLE_EQ(r.metrics.period, 4);
}

TEST(SplittingEngine, ThreeWayTwoStageVictimMaySkipTheOwner) {
  // Victim has 2 stages; the pair {a1, a2} (excluding the owner) is allowed.
  // Speeds: owner 4, spares 3 and 3. w = {9, 9}: owner alone: 18/4 = 4.5.
  // (P0,a1): {2.25, 3}; (a1,a2): {3, 3}. Best is (P0,a1) with max 3;
  // both rules keep the owner here, but the pair set must at least be legal.
  const Pipeline pipe({9, 9}, {0, 0, 0});
  const Platform plat({4, 3, 3}, 1);
  const Evaluator eval(pipe, plat);
  const EngineResult r =
      runSplittingEngine(eval, config(SelectionRule::kMonoMax, SplitArity::kThree));
  EXPECT_EQ(r.mapping.intervalCount(), 2u);
  EXPECT_DOUBLE_EQ(r.metrics.period, 3);
  EXPECT_NO_THROW(r.mapping.validate(2, 3));
}

TEST(SplittingEngine, SingleStageCannotSplit) {
  const Pipeline pipe({10}, {1, 1});
  const Platform plat({2, 1}, 1);
  const Evaluator eval(pipe, plat);
  const EngineResult r = runSplittingEngine(
      eval, config(SelectionRule::kMonoMax, SplitArity::kTwo, Real(0.1)));
  EXPECT_FALSE(r.reachedTarget);
  EXPECT_EQ(r.mapping.intervalCount(), 1u);
}

TEST(SplittingEngine, DeterministicAcrossRuns) {
  const Pipeline pipe({3, 1, 4, 1, 5, 9, 2, 6}, {2, 1, 3, 2, 1, 4, 2, 3, 1});
  const Platform plat({9, 9, 5, 5, 2}, 10);  // ties on purpose
  const Evaluator eval(pipe, plat);
  const EngineResult a =
      runSplittingEngine(eval, config(SelectionRule::kBiRatio, SplitArity::kThree));
  const EngineResult b =
      runSplittingEngine(eval, config(SelectionRule::kBiRatio, SplitArity::kThree));
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.splits, b.splits);
}

TEST(SplittingEngine, PeriodNeverIncreasesAcrossConfigurationsOfSameRule) {
  // Running to exhaustion can only improve (or preserve) the period
  // relative to any intermediate target.
  const Pipeline pipe({3, 1, 4, 1, 5, 9, 2, 6}, {2, 1, 3, 2, 1, 4, 2, 3, 1});
  const Platform plat({9, 7, 5, 3, 2}, 10);
  const Evaluator eval(pipe, plat);
  const EngineResult exhaust =
      runSplittingEngine(eval, config(SelectionRule::kMonoMax, SplitArity::kTwo));
  const EngineResult targeted = runSplittingEngine(
      eval, config(SelectionRule::kMonoMax, SplitArity::kTwo, exhaust.metrics.period * 1.5));
  EXPECT_LE(exhaust.metrics.period, targeted.metrics.period + kTimeEps);
}

TEST(SplittingEngine, LatencyCapAlwaysRespectedWhenInitialFits) {
  const Pipeline pipe({3, 1, 4, 1, 5, 9, 2, 6}, {2, 1, 3, 2, 1, 4, 2, 3, 1});
  const Platform plat({9, 7, 5, 3, 2}, 10);
  const Evaluator eval(pipe, plat);
  const Real cap = eval.optimalLatency() * 1.15;
  const EngineResult r = runSplittingEngine(
      eval, config(SelectionRule::kMonoMax, SplitArity::kTwo, std::nullopt, cap));
  EXPECT_LE(r.metrics.latency, cap + kTimeEps);
}

TEST(SplittingEngine, DeltaKernelMatchesRebuildPathBitForBit) {
  // The delta-kernel scoring path and the legacy copy-edit-rebuild path must
  // agree bit for bit (H1..H6 are built on this engine, and the committed
  // portfolio goldens pin its output byte-identically).
  const Pipeline pipe({3, 1, 4, 1, 5, 9, 2, 6}, {2, 1, 3, 2, 1, 4, 2, 3, 1});
  const Platform plat({9, 7, 5, 3, 2}, 10);
  const Evaluator eval(pipe, plat);
  const Real exhaustPeriod =
      runSplittingEngine(eval, config(SelectionRule::kMonoMax, SplitArity::kTwo))
          .metrics.period;
  for (const SelectionRule rule : {SelectionRule::kMonoMax, SelectionRule::kBiRatio}) {
    for (const SplitArity arity : {SplitArity::kTwo, SplitArity::kThree}) {
      for (const std::optional<Real> target :
           {std::optional<Real>{}, std::optional<Real>{exhaustPeriod * 1.3}}) {
        EngineConfig deltaConfig = config(rule, arity, target, eval.optimalLatency() * 1.4);
        EngineConfig rebuildConfig = deltaConfig;
        rebuildConfig.useDeltaKernel = false;
        const EngineResult a = runSplittingEngine(eval, deltaConfig);
        const EngineResult b = runSplittingEngine(eval, rebuildConfig);
        EXPECT_EQ(a.mapping, b.mapping);
        EXPECT_EQ(a.metrics, b.metrics);  // Metrics compares the doubles exactly
        EXPECT_EQ(a.splits, b.splits);
        EXPECT_EQ(a.reachedTarget, b.reachedTarget);
      }
    }
  }
}

}  // namespace
}  // namespace pipesched::heuristics
