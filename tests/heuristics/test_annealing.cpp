// Simulated annealing: determinism, best-state tracking, feasibility
// reporting, metric consistency, and never-worse-than-seed guarantees.
#include <gtest/gtest.h>

#include "pipesched/heuristics/annealing.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::heuristics {
namespace {

using core::Evaluator;
using core::IntervalMapping;
using core::Pipeline;
using core::Platform;
using workload::ExperimentKind;
using workload::Rng;

TEST(Annealing, RejectsZeroMoveBudgetAndInvalidSeed) {
  const Pipeline pipe({1, 2}, {0, 0, 0});
  const Platform plat({1, 2}, 1);
  const Evaluator eval(pipe, plat);
  AnnealingOptions opts;
  opts.moves = 0;
  EXPECT_THROW((void)anneal(eval, eval.optimalLatencyMapping(),
                            Objective::kMinPeriodForLatency, kInfinity, opts),
               ModelError);
  const auto bad = IntervalMapping::fromCuts(3, {2}, {0});
  EXPECT_THROW((void)anneal(eval, bad, Objective::kMinPeriodForLatency, kInfinity),
               MappingError);
}

TEST(Annealing, DeterministicForAFixedSeed) {
  Rng rng(500);
  const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 12, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  AnnealingOptions opts;
  opts.seed = 99;
  opts.moves = 5'000;
  const auto a = anneal(eval, eval.optimalLatencyMapping(),
                        Objective::kMinPeriodForLatency, kInfinity, opts);
  const auto b = anneal(eval, eval.optimalLatencyMapping(),
                        Objective::kMinPeriodForLatency, kInfinity, opts);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_DOUBLE_EQ(a.metrics.period, b.metrics.period);
}

TEST(Annealing, NeverWorseThanTheSeedOnTheOptimizedCriterion) {
  for (std::uint64_t s : {601, 602, 603}) {
    Rng rng(s);
    const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 10, 6, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const auto seed = eval.optimalLatencyMapping();
    const Real seedPeriod = eval.period(seed);
    AnnealingOptions opts;
    opts.seed = s;
    opts.moves = 8'000;
    const auto r = anneal(eval, seed, Objective::kMinPeriodForLatency, kInfinity, opts);
    EXPECT_TRUE(r.feasible);  // threshold infinity: every state is feasible
    EXPECT_LE(r.metrics.period, seedPeriod + 1e-9);
    EXPECT_NO_THROW(r.mapping.validate(10, 6));
  }
}

TEST(Annealing, FindsTheObviousSplitOnATinyInstance) {
  const Pipeline pipe({5, 5}, {0, 0, 0});
  const Platform plat({1, 1}, 1);
  const Evaluator eval(pipe, plat);
  AnnealingOptions opts;
  opts.seed = 7;
  opts.moves = 2'000;
  const auto r = anneal(eval, eval.optimalLatencyMapping(),
                        Objective::kMinPeriodForLatency, kInfinity, opts);
  EXPECT_DOUBLE_EQ(r.metrics.period, 5);
  EXPECT_EQ(r.mapping.intervalCount(), 2u);
}

TEST(Annealing, ReportsInfeasibleForUnreachableThresholds) {
  const Pipeline pipe({4}, {0, 0});
  const Platform plat({2, 1}, 1);
  const Evaluator eval(pipe, plat);
  AnnealingOptions opts;
  opts.seed = 3;
  opts.moves = 500;
  // Latency below the Lemma-1 optimum (2.0) is unreachable by definition.
  const auto r = anneal(eval, eval.optimalLatencyMapping(),
                        Objective::kMinPeriodForLatency, 1.0, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_NO_THROW(r.mapping.validate(1, 2));
}

TEST(Annealing, RespectsAFeasibleLatencyCap) {
  for (std::uint64_t s : {701, 702}) {
    Rng rng(s);
    const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 10, 5, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const Real cap = eval.optimalLatency() * 1.3;
    AnnealingOptions opts;
    opts.seed = s;
    opts.moves = 8'000;
    const auto r = anneal(eval, eval.optimalLatencyMapping(),
                          Objective::kMinPeriodForLatency, cap, opts);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.metrics.latency, cap + 1e-6);
  }
}

TEST(Annealing, MetricsMatchAFreshEvaluation) {
  Rng rng(800);
  const auto inst = workload::randomInstance(ExperimentKind::kE3LargeComputations, 8, 4, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  AnnealingOptions opts;
  opts.seed = 800;
  opts.moves = 3'000;
  const auto r = anneal(eval, eval.optimalLatencyMapping(),
                        Objective::kMinLatencyForPeriod,
                        eval.period(eval.optimalLatencyMapping()), opts);
  EXPECT_DOUBLE_EQ(r.metrics.period, eval.period(r.mapping));
  EXPECT_DOUBLE_EQ(r.metrics.latency, eval.latency(r.mapping));
}

TEST(Annealing, DeltaKernelMatchesRebuildPathBitForBit) {
  // Both paths draw the same random sequence and score through the same
  // breakdown fill, so trajectories — and hence results — are bit-identical.
  const ExperimentKind kinds[] = {
      ExperimentKind::kE1BalancedHomComm, ExperimentKind::kE2BalancedHetComm,
      ExperimentKind::kE3LargeComputations, ExperimentKind::kE4SmallComputations};
  Rng rng(515);
  for (int i = 0; i < 4; ++i) {
    const auto inst = workload::randomInstance(kinds[i], 9, 5, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const auto seed = eval.optimalLatencyMapping();
    const Objective obj =
        i % 2 == 0 ? Objective::kMinLatencyForPeriod : Objective::kMinPeriodForLatency;
    const Real base =
        obj == Objective::kMinLatencyForPeriod ? eval.period(seed) : eval.latency(seed);
    AnnealingOptions deltaOpts;
    deltaOpts.seed = 100 + static_cast<std::uint64_t>(i);
    deltaOpts.moves = 4'000;
    AnnealingOptions rebuildOpts = deltaOpts;
    rebuildOpts.useDeltaKernel = false;
    const auto a = anneal(eval, seed, obj, base * 0.75, deltaOpts);
    const auto b = anneal(eval, seed, obj, base * 0.75, rebuildOpts);
    EXPECT_EQ(a.mapping, b.mapping);
    EXPECT_EQ(a.metrics, b.metrics);  // Metrics compares the doubles exactly
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.accepted, b.accepted);
  }
}

TEST(Annealing, DeltaKernelMatchesRebuildOnFullyHeterogeneousPlatforms) {
  const Pipeline pipe({3, 7, 2, 5}, {1, 4, 2, 3, 1});
  const auto plat = Platform::fullyHeterogeneous(
      {2, 3, 1}, {1, 5, 2, 4, 1, 8, 3, 6, 1}, {9, 2, 4}, {3, 7, 5});
  const Evaluator eval(pipe, plat);
  const auto seed = eval.optimalLatencyMapping();
  AnnealingOptions deltaOpts;
  deltaOpts.seed = 99;
  deltaOpts.moves = 4'000;
  AnnealingOptions rebuildOpts = deltaOpts;
  rebuildOpts.useDeltaKernel = false;
  const auto a = anneal(eval, seed, Objective::kMinPeriodForLatency, kInfinity, deltaOpts);
  const auto b = anneal(eval, seed, Objective::kMinPeriodForLatency, kInfinity, rebuildOpts);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Annealing, WorksOnFullyHeterogeneousPlatforms) {
  const Pipeline pipe({3, 7, 2, 5}, {1, 4, 2, 3, 1});
  const auto plat = Platform::fullyHeterogeneous(
      {2, 3, 1}, {1, 5, 2, 4, 1, 8, 3, 6, 1}, {9, 2, 4}, {3, 7, 5});
  const Evaluator eval(pipe, plat);
  AnnealingOptions opts;
  opts.seed = 5;
  opts.moves = 4'000;
  const auto seed = eval.optimalLatencyMapping();
  const auto r = anneal(eval, seed, Objective::kMinPeriodForLatency, kInfinity, opts);
  EXPECT_NO_THROW(r.mapping.validate(4, 3));
  EXPECT_LE(r.metrics.period, eval.period(seed) + 1e-9);
}

}  // namespace
}  // namespace pipesched::heuristics
