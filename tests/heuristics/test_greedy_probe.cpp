// Greedy probe baseline: prefix-greedy construction, monotone feasibility in
// the target, binary-search minimum period versus exact optima, and the
// heuristic wrapper's contract for both objectives.
#include <gtest/gtest.h>

#include "pipesched/c2c/homogeneous.hpp"
#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/heuristics/greedy_probe.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::heuristics {
namespace {

using core::Evaluator;
using core::Pipeline;
using core::Platform;
using workload::ExperimentKind;
using workload::Rng;

TEST(GreedyProbe, RequiresCommHomogeneousPlatform) {
  const Pipeline pipe({1}, {0, 0});
  const auto plat = Platform::fullyHeterogeneous({1}, {1}, {1}, {1});
  const Evaluator eval(pipe, plat);
  EXPECT_THROW((void)greedyProbe(eval, 10), ModelError);
}

TEST(GreedyProbe, LooseTargetYieldsTheSingleIntervalOnTheFastest) {
  const Pipeline pipe({2, 4, 6}, {1, 2, 3, 4});
  const Platform plat({2, 5, 3}, 10);
  const Evaluator eval(pipe, plat);
  const Real lemma1Period = eval.period(eval.optimalLatencyMapping());
  const auto mapping = greedyProbe(eval, lemma1Period);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->intervalCount(), 1u);
  EXPECT_EQ(mapping->processor(0), 1u);  // the speed-5 processor
}

TEST(GreedyProbe, ImpossibleTargetFails) {
  const Pipeline pipe({10}, {5, 5});
  const Platform plat({2, 1}, 10);
  const Evaluator eval(pipe, plat);
  // Best possible singleton cycle: 0.5 + 5 + 0.5 = 6.
  EXPECT_FALSE(greedyProbe(eval, 5.9).has_value());
  EXPECT_TRUE(greedyProbe(eval, 6.0).has_value());
}

TEST(GreedyProbe, ReturnedMappingRespectsTheTarget) {
  for (std::uint64_t s : {901, 902, 903}) {
    Rng rng(s);
    const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 14, 7, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const Real target = eval.period(eval.optimalLatencyMapping()) * 0.7;
    if (const auto mapping = greedyProbe(eval, target)) {
      EXPECT_LE(eval.period(*mapping), target + 1e-9);
      EXPECT_NO_THROW(mapping->validate(14, 7));
    }
  }
}

class GreedyProbeMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyProbeMonotone, FeasibilityIsMonotoneInTheTarget) {
  Rng rng(GetParam());
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 12, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real k = greedyProbeMinPeriod(eval);
  // Below the found minimum: infeasible; at and above: feasible.
  EXPECT_FALSE(greedyProbe(eval, k * 0.95).has_value());
  for (const Real factor : {1.0, 1.1, 1.5, 3.0}) {
    EXPECT_TRUE(greedyProbe(eval, k * factor).has_value()) << "factor " << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyProbeMonotone, ::testing::Values(910, 911, 912, 913),
                         [](const auto& paramInfo) {
                           return "s" + std::to_string(paramInfo.param);
                         });

TEST(GreedyProbe, MinPeriodNeverBeatsTheExactOptimum) {
  for (std::uint64_t s : {920, 921, 922}) {
    Rng rng(s);
    const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 8, 4, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const auto exact = exact::exhaustiveMinPeriod(eval);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(greedyProbeMinPeriod(eval) + 1e-6, exact->metrics.period);
  }
}

TEST(GreedyProbe, MatchesTheChainsToChainsProbeWithZeroComms) {
  // With delta == 0 and identical speeds the mapping probe *is* the
  // homogeneous chains-to-chains probe (paper Theorem-2 correspondence).
  Rng rng(930);
  std::vector<Real> weights(10);
  for (auto& w : weights) w = static_cast<Real>(rng.uniformInt(1, 30));
  const Pipeline pipe(weights, std::vector<Real>(11, 0));
  const Platform plat = Platform::homogeneous(4, 1, 1);
  const Evaluator eval(pipe, plat);
  for (const Real limit : {20.0, 35.0, 60.0, 120.0}) {
    EXPECT_EQ(greedyProbe(eval, limit).has_value(), c2c::probe(weights, 4, limit))
        << "limit " << limit;
  }
}

TEST(GreedyProbeHeuristic, PeriodObjectiveContract) {
  Rng rng(940);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 12, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real k = greedyProbeMinPeriod(eval);

  const Result ok = greedyProbeHeuristic(eval, Objective::kMinLatencyForPeriod, k * 1.05);
  EXPECT_TRUE(ok.success);
  EXPECT_LE(ok.metrics.period, k * 1.05 + 1e-9);

  const Result fail = greedyProbeHeuristic(eval, Objective::kMinLatencyForPeriod, k * 0.9);
  EXPECT_FALSE(fail.success);
  // Even on failure a valid mapping (the Lemma-1 fallback) is returned.
  EXPECT_NO_THROW(fail.mapping.validate(12, 6));
}

TEST(GreedyProbeHeuristic, LatencyObjectiveContract) {
  Rng rng(950);
  const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 10, 5, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real optimalL = eval.optimalLatency();

  // Tight bound: only the Lemma-1 mapping qualifies.
  const Result tight = greedyProbeHeuristic(eval, Objective::kMinPeriodForLatency, optimalL);
  EXPECT_TRUE(tight.success);
  EXPECT_LE(tight.metrics.latency, optimalL + 1e-9);

  // Generous bound: the achieved period must not exceed the Lemma-1 period,
  // and the latency cap must hold.
  const Real cap = optimalL * 1.5;
  const Result loose = greedyProbeHeuristic(eval, Objective::kMinPeriodForLatency, cap);
  EXPECT_TRUE(loose.success);
  EXPECT_LE(loose.metrics.latency, cap + 1e-6);
  EXPECT_LE(loose.metrics.period, eval.period(eval.optimalLatencyMapping()) + 1e-9);

  // Unreachable bound: reported as failure.
  const Result impossible =
      greedyProbeHeuristic(eval, Objective::kMinPeriodForLatency, optimalL * 0.5);
  EXPECT_FALSE(impossible.success);
}

}  // namespace
}  // namespace pipesched::heuristics
