// Behavioural tests of the six paper heuristics (H1..H6) on hand-checked
// instances, plus the registry.
#include <gtest/gtest.h>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/heuristics/heuristics.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::heuristics {
namespace {

using core::Evaluator;
using core::Pipeline;
using core::Platform;

class SmallInstance : public ::testing::Test {
 protected:
  // w = {6,2}, no comms, speeds {2,1}: initial period 4, best split period 3.
  Pipeline pipe_{{6, 2}, {0, 0, 0}};
  Platform plat_{{2, 1}, 1};
  Evaluator eval_{pipe_, plat_};
};

TEST_F(SmallInstance, SpMonoPSucceedsAtReachablePeriod) {
  const Result r = spMonoP(eval_, 3);
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.metrics.period, 3);
  EXPECT_NO_THROW(r.mapping.validate(2, 2));
}

TEST_F(SmallInstance, SpMonoPFailsBelowReachablePeriod) {
  const Result r = spMonoP(eval_, 2.9);
  EXPECT_FALSE(r.success);
  // Best effort mapping is still returned and valid.
  EXPECT_DOUBLE_EQ(r.metrics.period, 3);
  EXPECT_NO_THROW(r.mapping.validate(2, 2));
}

TEST_F(SmallInstance, SpMonoPStopsImmediatelyWhenInitialMeetsBound) {
  const Result r = spMonoP(eval_, 4.0);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.splits, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.latency, eval_.optimalLatency());
}

TEST_F(SmallInstance, SpMonoLRespectsLatencyBudget) {
  // Initial latency 4; the split raises it to 5.
  const Result tight = spMonoL(eval_, 4.5);
  EXPECT_TRUE(tight.success);
  EXPECT_DOUBLE_EQ(tight.metrics.period, 4);  // split rejected: 5 > 4.5
  const Result loose = spMonoL(eval_, 5.0);
  EXPECT_TRUE(loose.success);
  EXPECT_DOUBLE_EQ(loose.metrics.period, 3);  // split accepted at the cap
  EXPECT_DOUBLE_EQ(loose.metrics.latency, 5);
}

TEST_F(SmallInstance, SpMonoLFailsWhenBoundBelowOptimalLatency) {
  const Result r = spMonoL(eval_, 3.9);  // optimum is 4
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(r.metrics.latency, 4);  // stays at the Lemma-1 solution
}

TEST_F(SmallInstance, SpBiLSharesFailureConditionWithSpMonoL) {
  EXPECT_FALSE(spBiL(eval_, 3.9).success);
  EXPECT_TRUE(spBiL(eval_, 4.0).success);
}

TEST_F(SmallInstance, SpBiPFindsFeasibleSolutionWithMinimalLatency) {
  const Result r = spBiP(eval_, 3);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.metrics.period, 3 + kTimeEps);
  // Only one split exists here, so H4 must match H1 exactly.
  EXPECT_DOUBLE_EQ(r.metrics.latency, spMonoP(eval_, 3).metrics.latency);
}

TEST_F(SmallInstance, SpBiPFailsOnUnreachablePeriod) {
  const Result r = spBiP(eval_, 1.0);
  EXPECT_FALSE(r.success);
}

TEST_F(SmallInstance, ExploHeuristicsDegradeGracefullyOnTwoProcessors) {
  // With a single spare processor the 3-way heuristics fall back to 2-way.
  const Result mono = exploThreeMono(eval_, 3);
  EXPECT_TRUE(mono.success);
  EXPECT_DOUBLE_EQ(mono.metrics.period, 3);
  const Result bi = exploThreeBi(eval_, 3);
  EXPECT_TRUE(bi.success);
}

TEST(Heuristics, ExploThreeUsesTriplesWhenAvailable) {
  const core::Pipeline pipe({6, 2, 2}, {0, 0, 0, 0});
  const core::Platform plat({2, 1, 1}, 1);
  const Evaluator eval(pipe, plat);
  const Result r = exploThreeMono(eval, 3);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.mapping.intervalCount(), 3u);
  EXPECT_EQ(r.splits, 1u);  // one 3-way split
}

TEST(Heuristics, LatencyNeverBelowLemma1OnScenarios) {
  const core::Platform plat = workload::labCluster();
  for (const auto& scenario : workload::allScenarios()) {
    const Evaluator eval(scenario.pipeline, plat);
    const Real optimal = eval.optimalLatency();
    for (const auto& h : makeAllHeuristics()) {
      const Real threshold =
          h->objective() == Objective::kMinLatencyForPeriod ? optimal : optimal * 2;
      const Result r = h->run(eval, threshold);
      EXPECT_GE(r.metrics.latency + kTimeEps, optimal) << h->name() << " " << scenario.name;
      EXPECT_NO_THROW(r.mapping.validate(scenario.pipeline.stageCount(),
                                         plat.processorCount()));
    }
  }
}

TEST(Registry, ProvidesAllSixInTableOrder) {
  const auto all = makeAllHeuristics();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0]->name(), "H1-SpMonoP");
  EXPECT_EQ(all[1]->name(), "H2-3ExploMono");
  EXPECT_EQ(all[2]->name(), "H3-3ExploBi");
  EXPECT_EQ(all[3]->name(), "H4-SpBiP");
  EXPECT_EQ(all[4]->name(), "H5-SpMonoL");
  EXPECT_EQ(all[5]->name(), "H6-SpBiL");
  EXPECT_EQ(all[0]->objective(), Objective::kMinLatencyForPeriod);
  EXPECT_EQ(all[5]->objective(), Objective::kMinPeriodForLatency);
}

TEST(Registry, PaperNamesMatchThePlots) {
  EXPECT_EQ(makeHeuristic(HeuristicId::kH1SpMonoP)->paperName(), "Sp mono, P fix");
  EXPECT_EQ(makeHeuristic(HeuristicId::kH3ExploThreeBi)->paperName(), "3-Explo bi");
  EXPECT_EQ(makeHeuristic(HeuristicId::kH6SpBiL)->paperName(), "Sp bi, L fix");
}

TEST(Registry, FailureThresholdsOfLatencyFamilyEqualOptimalLatency) {
  // The paper's Table-1 observation: H5 and H6 share failure thresholds.
  const core::Pipeline pipe({3, 1, 4, 1, 5}, {2, 1, 3, 2, 1, 4});
  const core::Platform plat({9, 7, 5}, 10);
  const Evaluator eval(pipe, plat);
  const Real h5 = makeHeuristic(HeuristicId::kH5SpMonoL)->failureThreshold(eval);
  const Real h6 = makeHeuristic(HeuristicId::kH6SpBiL)->failureThreshold(eval);
  EXPECT_DOUBLE_EQ(h5, h6);
  EXPECT_DOUBLE_EQ(h5, eval.optimalLatency());
}

TEST(Registry, FailureThresholdOfPeriodFamilyIsExhaustionPeriod) {
  const core::Pipeline pipe({6, 2}, {0, 0, 0});
  const core::Platform plat({2, 1}, 1);
  const Evaluator eval(pipe, plat);
  const auto h1 = makeHeuristic(HeuristicId::kH1SpMonoP);
  EXPECT_DOUBLE_EQ(h1->failureThreshold(eval), 3);
  // Running exactly at the threshold succeeds; fractionally below fails.
  EXPECT_TRUE(h1->run(eval, 3).success);
  EXPECT_FALSE(h1->run(eval, 3 * 0.999).success);
}

TEST(Registry, UnknownIdThrows) {
  EXPECT_THROW((void)makeHeuristic(static_cast<HeuristicId>(99)), ModelError);
}

}  // namespace
}  // namespace pipesched::heuristics
