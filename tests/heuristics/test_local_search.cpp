// Local search: validity of every returned mapping, monotone improvement over
// the seed, feasibility walking, merge behaviour on comm-heavy instances,
// optimality on small instances, and operation on fully-heterogeneous
// platforms (which the paper's own heuristics do not support).
#include <gtest/gtest.h>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/heuristics/local_search.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::heuristics {
namespace {

using core::Evaluator;
using core::IntervalMapping;
using core::Pipeline;
using core::Platform;
using workload::ExperimentKind;
using workload::Rng;

TEST(LocalSearch, RejectsInvalidSeed) {
  const Pipeline pipe({1, 2}, {0, 0, 0});
  const Platform plat({1, 2}, 1);
  const Evaluator eval(pipe, plat);
  const auto bad = IntervalMapping::fromCuts(3, {0, 2}, {0, 1});  // 3 stages, pipe has 2
  EXPECT_THROW((void)localSearch(eval, bad, Objective::kMinPeriodForLatency, kInfinity),
               MappingError);
}

TEST(LocalSearch, FindsTheExactOptimumOnATinyInstance) {
  // Two heavy stages, free comms, two equal processors: the optimum period
  // splits them (period 5), while the Lemma-1 seed has period 10.
  const Pipeline pipe({5, 5}, {0, 0, 0});
  const Platform plat({1, 1}, 1);
  const Evaluator eval(pipe, plat);
  const auto seed = eval.optimalLatencyMapping();
  const auto r = localSearch(eval, seed, Objective::kMinPeriodForLatency, kInfinity);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.metrics.period, 5);
  EXPECT_EQ(r.mapping.intervalCount(), 2u);
  EXPECT_GE(r.roundsAccepted, 1u);
}

TEST(LocalSearch, LocalOptimumTakesZeroRounds) {
  const Pipeline pipe({5}, {0, 0});
  const Platform plat({2, 1}, 1);
  const Evaluator eval(pipe, plat);
  const auto seed = eval.optimalLatencyMapping();  // only sensible mapping
  const auto r = localSearch(eval, seed, Objective::kMinLatencyForPeriod, kInfinity);
  EXPECT_EQ(r.roundsAccepted, 0u);
  EXPECT_EQ(r.mapping, seed);
}

TEST(LocalSearch, MergesAwayUselessCutsWhenCommsDominate) {
  // Seed splits a comm-heavy pipeline across two processors; merging back to
  // one interval removes the expensive internal transfer.
  const Pipeline pipe({1, 1}, {0, 100, 0});
  const Platform plat = Platform::homogeneous(2, 1, 1);
  const Evaluator eval(pipe, plat);
  const auto seed = IntervalMapping::fromCuts(2, {0, 1}, {0, 1});
  ASSERT_DOUBLE_EQ(eval.period(seed), 101);
  const auto r = localSearch(eval, seed, Objective::kMinPeriodForLatency, kInfinity);
  EXPECT_EQ(r.mapping.intervalCount(), 1u);
  EXPECT_DOUBLE_EQ(r.metrics.period, 2);
}

TEST(LocalSearch, WalksFromInfeasibleToFeasible) {
  // The Lemma-1 seed exceeds the period bound; the bound is reachable by
  // splitting. Local search must cross the infeasible region.
  const Pipeline pipe({6, 6}, {0, 0, 0});
  const Platform plat({1, 1}, 1);
  const Evaluator eval(pipe, plat);
  const auto seed = eval.optimalLatencyMapping();  // period 12
  const auto r = localSearch(eval, seed, Objective::kMinLatencyForPeriod, 6.5);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.metrics.period, 6.5 + 1e-9);
}

TEST(LocalSearch, ReportsInfeasibleWhenThresholdIsUnreachable) {
  const Pipeline pipe({4}, {0, 0});
  const Platform plat({2}, 1);
  const Evaluator eval(pipe, plat);
  const auto seed = eval.optimalLatencyMapping();  // period 2, the only mapping
  const auto r = localSearch(eval, seed, Objective::kMinLatencyForPeriod, 1.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.metrics.period, 2);
}

TEST(LocalSearch, RunsOnFullyHeterogeneousPlatforms) {
  const Pipeline pipe({3, 7, 2}, {1, 4, 2, 1});
  const auto plat = Platform::fullyHeterogeneous(
      {2, 3, 1}, {1, 5, 2, 4, 1, 8, 3, 6, 1}, {9, 2, 4}, {3, 7, 5});
  const Evaluator eval(pipe, plat);
  const auto seed = eval.optimalLatencyMapping();
  const auto r = localSearch(eval, seed, Objective::kMinPeriodForLatency, kInfinity);
  EXPECT_NO_THROW(r.mapping.validate(3, 3));
  EXPECT_LE(r.metrics.period, eval.period(seed) + 1e-9);
  // Metrics must be consistent with a fresh evaluation of the mapping.
  EXPECT_DOUBLE_EQ(r.metrics.period, eval.period(r.mapping));
  EXPECT_DOUBLE_EQ(r.metrics.latency, eval.latency(r.mapping));
}

struct SweepCase {
  ExperimentKind kind;
  std::size_t n, p;
  std::uint64_t seed;
};

class LocalSearchSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LocalSearchSweep, RefinementNeverWorsensAnyPaperHeuristic) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed);
  const auto inst = workload::randomInstance(c.kind, c.n, c.p, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  for (const auto& h : makeAllHeuristics()) {
    const Real threshold = h->failureThreshold(eval) * 1.2;
    const Result seeded = h->run(eval, threshold);
    ASSERT_TRUE(seeded.success) << h->name();
    const Result refined = refineWithLocalSearch(eval, *h, threshold);
    EXPECT_TRUE(refined.success) << h->name();
    EXPECT_NO_THROW(refined.mapping.validate(c.n, c.p)) << h->name();
    if (h->objective() == Objective::kMinLatencyForPeriod) {
      EXPECT_LE(refined.metrics.latency, seeded.metrics.latency + 1e-9) << h->name();
      EXPECT_LE(refined.metrics.period, threshold + 1e-6) << h->name();
    } else {
      EXPECT_LE(refined.metrics.period, seeded.metrics.period + 1e-9) << h->name();
      EXPECT_LE(refined.metrics.latency, threshold + 1e-6) << h->name();
    }
  }
}

TEST_P(LocalSearchSweep, NeverBeatsTheExactOptimumButGetsClose) {
  const SweepCase& c = GetParam();
  if (c.n > 9 || c.p > 4) GTEST_SKIP() << "exhaustive baseline too large";
  Rng rng(c.seed ^ 0xA11CE);
  const auto inst = workload::randomInstance(c.kind, c.n, c.p, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const auto exact = exact::exhaustiveMinPeriod(eval);
  ASSERT_TRUE(exact.has_value());
  const auto r = localSearch(eval, eval.optimalLatencyMapping(),
                             Objective::kMinPeriodForLatency, kInfinity);
  EXPECT_GE(r.metrics.period + 1e-9, exact->metrics.period);
  // Steepest descent from the Lemma-1 seed stays within 2x of optimal on
  // these sizes — a regression canary, not a theorem.
  EXPECT_LE(r.metrics.period, exact->metrics.period * 2 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LocalSearchSweep,
    ::testing::Values(SweepCase{ExperimentKind::kE1BalancedHomComm, 8, 4, 11},
                      SweepCase{ExperimentKind::kE2BalancedHetComm, 9, 4, 12},
                      SweepCase{ExperimentKind::kE3LargeComputations, 8, 3, 13},
                      SweepCase{ExperimentKind::kE4SmallComputations, 9, 3, 14},
                      SweepCase{ExperimentKind::kE1BalancedHomComm, 16, 8, 15},
                      SweepCase{ExperimentKind::kE2BalancedHetComm, 20, 10, 16}),
    [](const auto& paramInfo) {
      return "n" + std::to_string(paramInfo.param.n) + "p" + std::to_string(paramInfo.param.p) +
             "s" + std::to_string(paramInfo.param.seed);
    });

TEST(LocalSearch, DisablingMoveClassesStillReturnsValidMappings) {
  Rng rng(77);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 10, 5, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  LocalSearchOptions opts;
  opts.splitMoves = false;
  opts.mergeMoves = false;
  const auto r = localSearch(eval, eval.optimalLatencyMapping(),
                             Objective::kMinPeriodForLatency, kInfinity, opts);
  EXPECT_NO_THROW(r.mapping.validate(10, 5));
  // Without split moves the Lemma-1 seed has no neighbors that change m.
  EXPECT_EQ(r.mapping.intervalCount(), 1u);
}

TEST(LocalSearch, DeltaKernelMatchesRebuildPathBitForBit) {
  const ExperimentKind kinds[] = {
      ExperimentKind::kE1BalancedHomComm, ExperimentKind::kE2BalancedHetComm,
      ExperimentKind::kE3LargeComputations, ExperimentKind::kE4SmallComputations};
  Rng rng(4242);
  for (int i = 0; i < 8; ++i) {
    const auto inst = workload::randomInstance(kinds[i % 4], 10, 5, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const auto seed = eval.optimalLatencyMapping();
    const Objective obj =
        i % 2 == 0 ? Objective::kMinLatencyForPeriod : Objective::kMinPeriodForLatency;
    const Real base = obj == Objective::kMinLatencyForPeriod ? eval.period(seed)
                                                             : eval.latency(seed);
    LocalSearchOptions rebuildOpts;
    rebuildOpts.useDeltaKernel = false;
    const auto a = localSearch(eval, seed, obj, base * 0.8);
    const auto b = localSearch(eval, seed, obj, base * 0.8, rebuildOpts);
    EXPECT_EQ(a.mapping, b.mapping);
    EXPECT_EQ(a.metrics, b.metrics);  // Metrics compares the doubles exactly
    EXPECT_EQ(a.roundsAccepted, b.roundsAccepted);
    EXPECT_EQ(a.feasible, b.feasible);
  }
}

TEST(LocalSearch, DeltaKernelMatchesRebuildOnFullyHeterogeneousPlatforms) {
  const Pipeline pipe({3, 7, 2, 5, 4, 6}, {1, 4, 0, 3, 1, 2, 1});
  const auto plat = Platform::fullyHeterogeneous(
      {2, 3, 1, 2.5}, {1, 5, 2, 3, 4, 1, 8, 2, 3, 6, 1, 4, 2, 5, 3, 1}, {9, 2, 4, 3},
      {3, 7, 5, 2});
  const Evaluator eval(pipe, plat);
  const auto seed = eval.optimalLatencyMapping();
  LocalSearchOptions rebuildOpts;
  rebuildOpts.useDeltaKernel = false;
  const Real threshold = eval.period(seed) * 0.7;
  const auto a = localSearch(eval, seed, Objective::kMinLatencyForPeriod, threshold);
  const auto b = localSearch(eval, seed, Objective::kMinLatencyForPeriod, threshold,
                             rebuildOpts);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.roundsAccepted, b.roundsAccepted);
  EXPECT_EQ(a.feasible, b.feasible);
}

TEST(LocalSearch, MaxRoundsCapsTheDescent) {
  const Pipeline pipe({5, 5, 5, 5}, {0, 0, 0, 0, 0});
  const Platform plat = Platform::homogeneous(4, 1, 1);
  const Evaluator eval(pipe, plat);
  LocalSearchOptions opts;
  opts.maxRounds = 1;
  const auto r = localSearch(eval, eval.optimalLatencyMapping(),
                             Objective::kMinPeriodForLatency, kInfinity, opts);
  EXPECT_EQ(r.roundsAccepted, 1u);
}

}  // namespace
}  // namespace pipesched::heuristics
