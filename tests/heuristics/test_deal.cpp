// Tests of the deal-aware heuristic: replication breaks the splitting-only
// period floor exactly when a single dominant stage is the bottleneck (the
// paper's motivating case for nesting a deal skeleton).
#include <gtest/gtest.h>

#include "pipesched/heuristics/deal.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::heuristics {
namespace {

using core::Evaluator;
using core::Pipeline;
using core::Platform;

TEST(Deal, SingleStagePipelineCanOnlyImproveByReplication) {
  // One stage of work 100 on two speed-10 processors: splitting is
  // impossible (n = 1); replication halves the period.
  const Pipeline pipe({100}, {0, 0});
  const Platform plat({10, 10}, 1);
  const Evaluator eval(pipe, plat);
  // Splitting-only floor:
  EXPECT_DOUBLE_EQ(spMonoP(eval, 0).metrics.period, 10);
  // Deal-aware:
  const DealResult r = spMonoPWithDeal(eval, 5);
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.metrics.period, 5);
  EXPECT_EQ(r.replications, 1u);
  EXPECT_EQ(r.splits, 0u);
  EXPECT_NO_THROW(r.mapping.validate(1, 2));
}

TEST(Deal, ExhaustionPeriodBeatsSplittingFloorOnDominantStage) {
  // Stage 1 dominates; after splitting it off, only replication helps.
  const Pipeline pipe({2, 90, 2}, {0, 0, 0, 0});
  const Platform plat({10, 10, 10, 10}, 1);
  const Evaluator eval(pipe, plat);
  const Real splittingFloor = spMonoP(eval, 0).metrics.period;  // 9 (stage 1 alone)
  const Real dealFloor = dealExhaustionPeriod(eval);
  EXPECT_DOUBLE_EQ(splittingFloor, 9);
  EXPECT_LT(dealFloor, splittingFloor);
  EXPECT_DOUBLE_EQ(dealFloor, 4.5);  // stage 1 replicated on two processors
}

TEST(Deal, RespectsPeriodTargetAndStopsEarly) {
  const Pipeline pipe({2, 90, 2}, {0, 0, 0, 0});
  const Platform plat({10, 10, 10, 10}, 1);
  const Evaluator eval(pipe, plat);
  const DealResult r = spMonoPWithDeal(eval, 9.0);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.metrics.period, 9.0 + kTimeEps);
  // Target met by splitting alone: no replication should be spent.
  EXPECT_EQ(r.replications, 0u);
}

TEST(Deal, FailureReportedWhenTargetUnreachable) {
  const Pipeline pipe({100}, {0, 0});
  const Platform plat({10, 10}, 1);
  const Evaluator eval(pipe, plat);
  const DealResult r = spMonoPWithDeal(eval, 1.0);
  EXPECT_FALSE(r.success);
  EXPECT_DOUBLE_EQ(r.metrics.period, 5);  // best effort: both processors used
}

TEST(Deal, NeverWorseThanPlainSplittingOnRandomInstances) {
  // The deal engine's split move *is* H1's; replication is only taken when
  // it improves the bottleneck, so exhaustion can only be <= H1's floor.
  for (std::uint64_t seed : {11, 12, 13, 14, 15, 16, 17, 18}) {
    workload::Rng rng(seed);
    const auto inst = workload::randomInstance(
        workload::ExperimentKind::kE3LargeComputations, 10, 6, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const Real h1Floor = spMonoP(eval, 0).metrics.period;
    const Real dealFloor = dealExhaustionPeriod(eval);
    EXPECT_LE(dealFloor, h1Floor + 1e-9) << "seed " << seed;
  }
}

TEST(Deal, CompetitiveModeIsAlsoValid) {
  workload::Rng rng(77);
  const auto inst =
      workload::randomInstance(workload::ExperimentKind::kE1BalancedHomComm, 12, 8, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  DealOptions options;
  options.replicationCompetesWithSplits = true;
  const DealResult r = spMonoPWithDeal(eval, 0, options);
  EXPECT_NO_THROW(
      r.mapping.validate(inst.pipeline.stageCount(), inst.platform.processorCount()));
  const core::Metrics recomputed = core::evaluateReplicated(eval, r.mapping);
  EXPECT_NEAR(recomputed.period, r.metrics.period, 1e-12);
}

TEST(Deal, ReplicationPaysALatencyPrice) {
  // The slow replica determines the latency: replicating on a slower
  // processor trades latency for throughput — the bi-criteria tension.
  const Pipeline pipe({100}, {0, 0});
  const Platform plat({10, 2}, 1);
  const Evaluator eval(pipe, plat);
  const DealResult r = spMonoPWithDeal(eval, 0);
  // cycles {10, 50} -> candidate period 50/2 = 25 > 10: replication is
  // inadmissible (does not improve the bottleneck), so nothing happens.
  EXPECT_EQ(r.replications, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.period, 10);
  // With a nearly-as-fast second processor the move is taken and latency
  // rises to the slower replica's traversal.
  const Platform plat2({10, 9}, 1);
  const Evaluator eval2(pipe, plat2);
  const DealResult r2 = spMonoPWithDeal(eval2, 0);
  EXPECT_EQ(r2.replications, 1u);
  EXPECT_NEAR(r2.metrics.period, (100.0 / 9.0) / 2.0, 1e-12);  // max(10, 11.1)/2
  EXPECT_NEAR(r2.metrics.latency, 100.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace pipesched::heuristics
