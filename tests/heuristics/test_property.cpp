// Property-based tests over random instances from all four experiment
// regimes: structural invariants every heuristic must satisfy, consistency of
// the failure thresholds, and optimality sandwiches against the exact solvers
// on small instances.
#include <gtest/gtest.h>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/exact/bnb.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::heuristics {
namespace {

using core::Evaluator;
using workload::ExperimentKind;
using workload::InstancePair;
using workload::Rng;

struct PropertyCase {
  ExperimentKind kind;
  std::size_t n;
  std::size_t p;
  std::uint64_t seed;
};

std::string caseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return workload::experimentName(info.param.kind) + "_n" + std::to_string(info.param.n) +
         "_p" + std::to_string(info.param.p) + "_s" + std::to_string(info.param.seed);
}

class HeuristicProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  InstancePair makeInstance() const {
    const auto [kind, n, p, seed] = GetParam();
    Rng rng(seed);
    return workload::randomInstance(kind, n, p, rng);
  }
};

TEST_P(HeuristicProperties, MappingsAreValidAndMetricsConsistent) {
  const InstancePair inst = makeInstance();
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real optimal = eval.optimalLatency();
  for (const auto& h : makeAllHeuristics()) {
    const Real threshold = h->failureThreshold(eval) * 1.05;
    const Result r = h->run(eval, threshold);
    EXPECT_NO_THROW(r.mapping.validate(inst.pipeline.stageCount(),
                                       inst.platform.processorCount()))
        << h->name();
    const core::Metrics recomputed = eval.evaluate(r.mapping);
    EXPECT_NEAR(recomputed.period, r.metrics.period, 1e-9) << h->name();
    EXPECT_NEAR(recomputed.latency, r.metrics.latency, 1e-9) << h->name();
    EXPECT_GE(r.metrics.latency + 1e-9, optimal) << h->name();
  }
}

TEST_P(HeuristicProperties, SucceedsAtItsFailureThresholdAndFailsBelow) {
  const InstancePair inst = makeInstance();
  const Evaluator eval(inst.pipeline, inst.platform);
  for (const auto& h : makeAllHeuristics()) {
    const Real ft = h->failureThreshold(eval);
    const Result atThreshold = h->run(eval, ft * (1 + 1e-9));
    EXPECT_TRUE(atThreshold.success) << h->name() << " at threshold " << ft;
    const Result below = h->run(eval, ft * 0.999);
    EXPECT_FALSE(below.success) << h->name() << " below threshold " << ft;
  }
}

TEST_P(HeuristicProperties, SuccessImpliesThresholdMet) {
  const InstancePair inst = makeInstance();
  const Evaluator eval(inst.pipeline, inst.platform);
  for (const auto& h : makeAllHeuristics()) {
    const bool periodFamily = h->objective() == Objective::kMinLatencyForPeriod;
    for (Real factor : {0.9, 1.1, 1.5, 3.0}) {
      const Real threshold = h->failureThreshold(eval) * factor;
      const Result r = h->run(eval, threshold);
      if (!r.success) continue;
      const Real constrained = periodFamily ? r.metrics.period : r.metrics.latency;
      EXPECT_LE(constrained, threshold + 1e-6) << h->name() << " factor " << factor;
    }
  }
}

TEST_P(HeuristicProperties, GenerousPeriodBoundReturnsLemma1Solution) {
  const InstancePair inst = makeInstance();
  const Evaluator eval(inst.pipeline, inst.platform);
  const core::IntervalMapping initial = eval.optimalLatencyMapping();
  const Real initialPeriod = eval.period(initial);
  for (const auto& h : makeAllHeuristics()) {
    if (h->objective() != Objective::kMinLatencyForPeriod) continue;
    const Result r = h->run(eval, initialPeriod * 1.01);
    EXPECT_TRUE(r.success) << h->name();
    EXPECT_EQ(r.splits, 0u) << h->name();
    EXPECT_NEAR(r.metrics.latency, eval.optimalLatency(), 1e-9) << h->name();
  }
}

TEST_P(HeuristicProperties, LatencyFamilyNeverExceedsItsBound) {
  const InstancePair inst = makeInstance();
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real optimal = eval.optimalLatency();
  for (Real factor : {1.0, 1.2, 1.5, 2.5}) {
    for (HeuristicId id : {HeuristicId::kH5SpMonoL, HeuristicId::kH6SpBiL}) {
      const Result r = makeHeuristic(id)->run(eval, optimal * factor);
      EXPECT_TRUE(r.success);
      EXPECT_LE(r.metrics.latency, optimal * factor + 1e-6);
    }
  }
}

TEST_P(HeuristicProperties, MoreLatencyBudgetNeverHurtsPeriod) {
  const InstancePair inst = makeInstance();
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real optimal = eval.optimalLatency();
  // The greedy trajectory is a chain of splits: with a larger cap the engine
  // can only continue further along (or equal), never do worse.
  Real previous = kInfinity;
  for (Real factor : {1.0, 1.3, 1.8, 2.5, 4.0}) {
    const Result r = spMonoL(eval, optimal * factor);
    EXPECT_LE(r.metrics.period, previous + 1e-9) << "factor " << factor;
    previous = r.metrics.period;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, HeuristicProperties,
    ::testing::Values(
        PropertyCase{ExperimentKind::kE1BalancedHomComm, 5, 4, 101},
        PropertyCase{ExperimentKind::kE1BalancedHomComm, 10, 10, 102},
        PropertyCase{ExperimentKind::kE1BalancedHomComm, 40, 10, 103},
        PropertyCase{ExperimentKind::kE2BalancedHetComm, 5, 4, 104},
        PropertyCase{ExperimentKind::kE2BalancedHetComm, 20, 10, 105},
        PropertyCase{ExperimentKind::kE2BalancedHetComm, 40, 25, 106},
        PropertyCase{ExperimentKind::kE3LargeComputations, 5, 4, 107},
        PropertyCase{ExperimentKind::kE3LargeComputations, 20, 10, 108},
        PropertyCase{ExperimentKind::kE4SmallComputations, 5, 4, 109},
        PropertyCase{ExperimentKind::kE4SmallComputations, 20, 10, 110},
        PropertyCase{ExperimentKind::kE4SmallComputations, 40, 25, 111},
        PropertyCase{ExperimentKind::kE3LargeComputations, 10, 100, 112}),
    caseName);

// ---------------------------------------------------------------------------
// Optimality sandwich on small instances: exact <= heuristic; and the
// heuristics must coincide with the optimum when the period bound is loose.
// ---------------------------------------------------------------------------

class HeuristicVsExact : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(HeuristicVsExact, ExhaustionPeriodNeverBeatsExactOptimum) {
  const auto [kind, n, p, seed] = GetParam();
  Rng rng(seed);
  const InstancePair inst = workload::randomInstance(kind, n, p, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const Real exactMinPeriod = exact::bnbMinPeriod(eval).metrics.period;
  for (const auto& h : makeAllHeuristics()) {
    if (h->objective() != Objective::kMinLatencyForPeriod) continue;
    EXPECT_GE(h->failureThreshold(eval) + 1e-9, exactMinPeriod) << h->name();
  }
  // The latency family cannot beat the exact optimum either, at any budget.
  const Result unlimited = spMonoL(eval, kInfinity);
  EXPECT_GE(unlimited.metrics.period + 1e-9, exactMinPeriod);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, HeuristicVsExact,
    ::testing::Values(
        PropertyCase{ExperimentKind::kE1BalancedHomComm, 6, 4, 201},
        PropertyCase{ExperimentKind::kE2BalancedHetComm, 6, 4, 202},
        PropertyCase{ExperimentKind::kE3LargeComputations, 7, 4, 203},
        PropertyCase{ExperimentKind::kE4SmallComputations, 7, 4, 204},
        PropertyCase{ExperimentKind::kE1BalancedHomComm, 8, 5, 205},
        PropertyCase{ExperimentKind::kE2BalancedHetComm, 8, 5, 206}),
    caseName);

}  // namespace
}  // namespace pipesched::heuristics
