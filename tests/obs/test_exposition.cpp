// Prometheus text exposition: name sanitization against the exposition
// grammar, exact bucket/count/sum fidelity vs HistogramSnapshot, and a
// parseable document under concurrent recording.
#include "pipesched/obs/exposition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pipesched/obs/metrics.hpp"

namespace pipesched::obs {
namespace {

TEST(SanitizeMetricName, MapsRegistryNamesOntoPrometheusGrammar) {
  EXPECT_EQ(sanitizeMetricName("net.endpoint.solve"), "pipesched_net_endpoint_solve");
  EXPECT_EQ(sanitizeMetricName("stream.queue_depth"), "pipesched_stream_queue_depth");
  EXPECT_EQ(sanitizeMetricName("stage.H1-SpMonoP"), "pipesched_stage_H1_SpMonoP");
}

TEST(SanitizeMetricName, CollapsesRunsAndDropsLeadingSeparators) {
  // A run of invalid characters becomes ONE underscore...
  EXPECT_EQ(sanitizeMetricName("a..//b"), "pipesched_a_b");
  // ...and invalid characters before the first valid one add nothing after
  // the prefix (no "pipesched__x").
  EXPECT_EQ(sanitizeMetricName("..x"), "pipesched_x");
  EXPECT_EQ(sanitizeMetricName("métric"), "pipesched_m_tric");
}

TEST(SanitizeMetricName, OutputAlwaysMatchesTheGrammar) {
  const auto validLeading = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  const auto validBody = [&](char c) {
    return validLeading(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  for (const std::string name :
       {"", "...", "123", "net.endpoint.solve", "weird !@# name", "ok"}) {
    const std::string sanitized = sanitizeMetricName(name);
    ASSERT_FALSE(sanitized.empty());
    EXPECT_TRUE(validLeading(sanitized.front())) << sanitized;
    for (const char c : sanitized) EXPECT_TRUE(validBody(c)) << sanitized;
  }
}

TEST(WriteSnapshotPrometheus, CountersAndGaugesRenderVerbatim) {
  Registry registry;
  registry.counter("net.shed_total").add(7);
  registry.gauge("net.draining").set(1);
  registry.gauge("depth").set(-3);

  const std::string doc = renderSnapshotPrometheus(registry.snapshot());
  EXPECT_NE(doc.find("# TYPE pipesched_net_shed_total counter\n"), std::string::npos);
  EXPECT_NE(doc.find("\npipesched_net_shed_total 7\n"), std::string::npos);
  EXPECT_NE(doc.find("# TYPE pipesched_net_draining gauge\n"), std::string::npos);
  EXPECT_NE(doc.find("\npipesched_net_draining 1\n"), std::string::npos);
  EXPECT_NE(doc.find("\npipesched_depth -3\n"), std::string::npos);
}

TEST(WriteSnapshotPrometheus, HistogramLinesMatchSnapshotExactly) {
  Registry registry;
  Histogram& h = registry.histogram("net.endpoint.solve", Unit::kNanoseconds);
  // Values chosen to hit distinct power-of-two buckets, plus an exact zero
  // (bucket 0) and a duplicate (cumulative counts must accumulate).
  const std::uint64_t values[] = {0, 1, 5, 5, 1000, 123456789};
  for (const std::uint64_t v : values) h.record(v);

  const Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& hs = snapshot.histograms[0].hist;

  const std::string doc = renderSnapshotPrometheus(snapshot);
  const std::string name = "pipesched_net_endpoint_solve";

  // _count and _sum are the snapshot's exact integers (raw nanoseconds, no
  // seconds conversion).
  EXPECT_NE(doc.find(name + "_count " + std::to_string(hs.count) + "\n"),
            std::string::npos);
  EXPECT_NE(doc.find(name + "_sum " + std::to_string(hs.sum) + "\n"), std::string::npos);
  EXPECT_EQ(hs.count, 6u);
  EXPECT_EQ(hs.sum, 0u + 1 + 5 + 5 + 1000 + 123456789);

  // Every non-empty bucket renders one cumulative line with le = the
  // bucket's inclusive upper bound; the +Inf line equals count.
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    if (hs.buckets[i] == 0) continue;
    cumulative += hs.buckets[i];
    const std::string line = name + "_bucket{le=\"" +
                             std::to_string(Histogram::bucketHigh(i)) + "\"} " +
                             std::to_string(cumulative) + "\n";
    EXPECT_NE(doc.find(line), std::string::npos) << line;
  }
  EXPECT_NE(doc.find(name + "_bucket{le=\"+Inf\"} " + std::to_string(hs.count) + "\n"),
            std::string::npos);
}

TEST(WriteSnapshotPrometheus, ConcurrentRecordingYieldsParseableDocument) {
  Registry registry;
  (void)registry.counter("hits");
  (void)registry.histogram("lat", Unit::kNanoseconds);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      std::uint64_t v = static_cast<std::uint64_t>(t) + 1;
      while (!stop.load()) {
        registry.counter("hits").add(1);
        registry.histogram("lat", Unit::kNanoseconds).record(v = v * 2654435761u % 100000);
      }
    });
  }

  // Render repeatedly mid-traffic; every document must be line-parseable:
  // comments, or "name[{le="..."}] value" with numeric value.
  for (int round = 0; round < 20; ++round) {
    const std::string doc = renderSnapshotPrometheus(registry.snapshot());
    std::istringstream lines(doc);
    std::string line;
    while (std::getline(lines, line)) {
      ASSERT_FALSE(line.empty());
      if (line[0] == '#') {
        EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
            << line;
        continue;
      }
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string value = line.substr(space + 1);
      EXPECT_FALSE(value.empty()) << line;
      EXPECT_NE(value.find_first_of("0123456789"), std::string::npos) << line;
      EXPECT_TRUE(line.rfind("pipesched_", 0) == 0) << line;
    }
    // Cumulative bucket invariant: within one render, _bucket counts are
    // non-decreasing and the +Inf bucket equals _count.
    const std::size_t inf = doc.find("pipesched_lat_bucket{le=\"+Inf\"} ");
    const std::size_t count = doc.find("pipesched_lat_count ");
    if (inf != std::string::npos && count != std::string::npos) {
      const auto numberAt = [&](std::size_t pos) {
        const std::size_t start = doc.find("} ", pos) != std::string::npos &&
                                          doc.find("} ", pos) < doc.find('\n', pos)
                                      ? doc.find("} ", pos) + 2
                                      : doc.find(' ', pos) + 1;
        return std::stoull(doc.substr(start));
      };
      EXPECT_EQ(numberAt(inf), numberAt(count));
    }
  }

  stop.store(true);
  for (std::thread& w : writers) w.join();
}

}  // namespace
}  // namespace pipesched::obs
