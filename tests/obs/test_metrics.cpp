// obs metrics primitives: histogram bucket boundaries, quantiles against a
// sorted reference, merge-of-shards equivalence, deterministic concurrent
// recording, and registry identity/reset semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "pipesched/obs/metrics.hpp"

namespace pipesched::obs {
namespace {

// Deterministic 64-bit generator (splitmix64) — no std random machinery, so
// the reference sequences are identical on every platform.
class Mix {
 public:
  explicit Mix(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

TEST(HistogramBuckets, ZeroGetsItsOwnBucket) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketLow(0), 0u);
  EXPECT_EQ(Histogram::bucketHigh(0), 0u);
}

TEST(HistogramBuckets, PowerOfTwoBoundaries) {
  // Bucket i > 0 covers [2^(i-1), 2^i - 1]: each power of two opens a new
  // bucket and the value just below it closes the previous one.
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  for (std::size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    const std::uint64_t low = Histogram::bucketLow(i);
    const std::uint64_t high = Histogram::bucketHigh(i);
    EXPECT_EQ(high, 2 * low - 1);
    EXPECT_EQ(Histogram::bucketIndex(low), i) << "low of bucket " << i;
    EXPECT_EQ(Histogram::bucketIndex(high), i) << "high of bucket " << i;
    EXPECT_EQ(Histogram::bucketIndex(high + 1), i + 1) << "past bucket " << i;
  }
}

TEST(HistogramBuckets, OverflowBucketAbsorbsEverythingAbove) {
  const std::size_t last = kHistogramBuckets - 1;
  EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLow(last)), last);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), last);
}

TEST(Histogram, CountSumAndMeanAreExact) {
  Histogram h;
  std::uint64_t expectedSum = 0;
  for (std::uint64_t v : {0ull, 1ull, 5ull, 1000ull, 123456789ull}) {
    h.record(v);
    expectedSum += v;
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, expectedSum);
  EXPECT_DOUBLE_EQ(snap.mean(), static_cast<double>(expectedSum) / 5.0);
}

TEST(Histogram, RecordSecondsClampsNegativeToZero) {
  Histogram h(Unit::kNanoseconds);
  h.recordSeconds(-1.0);
  h.recordSeconds(0.0);
  h.recordSeconds(1e-9);  // exactly 1 ns
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  EXPECT_EQ(Histogram().snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesBracketTheSortedReference) {
  // The quantile estimate interpolates within the bucket that holds the
  // exact order statistic, so it must land in that bucket's value range
  // (inclusive low, exclusive high+1).
  Mix rng(20070628);
  std::vector<std::uint64_t> values;
  Histogram h;
  for (int i = 0; i < 5000; ++i) {
    // Mixed magnitudes: log-uniform over ~12 orders of binary magnitude.
    const std::uint64_t v = rng.next() >> (rng.next() % 40);
    values.push_back(v);
    h.record(v);
  }
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const HistogramSnapshot snap = h.snapshot();
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
    const std::uint64_t exact = sorted[rank - 1];
    const std::size_t bucket = Histogram::bucketIndex(exact);
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, static_cast<double>(Histogram::bucketLow(bucket))) << "q=" << q;
    EXPECT_LE(estimate, static_cast<double>(Histogram::bucketHigh(bucket)) + 1.0)
        << "q=" << q;
  }
}

TEST(Histogram, MergeOfShardsEqualsSingleHistogram) {
  Mix rng(7);
  Histogram whole;
  Histogram shards[3];
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng.next() >> (rng.next() % 50);
    whole.record(v);
    shards[i % 3].record(v);
  }
  HistogramSnapshot merged = shards[0].snapshot();
  merged.merge(shards[1].snapshot());
  merged.merge(shards[2].snapshot());
  const HistogramSnapshot reference = whole.snapshot();
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum, reference.sum);
  EXPECT_EQ(merged.buckets, reference.buckets);
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), reference.quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), reference.quantile(0.99));
}

TEST(Histogram, ConcurrentRecordingIsDeterministic) {
  // Integer counts and sums: whatever the interleaving, the final snapshot
  // is exactly the serial one.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Mix rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) h.record(rng.next() % 1024);
    });
  }
  for (std::thread& t : threads) t.join();

  Histogram serial;
  for (int t = 0; t < kThreads; ++t) {
    Mix rng(static_cast<std::uint64_t>(t) + 1);
    for (int i = 0; i < kPerThread; ++i) serial.record(rng.next() % 1024);
  }
  const HistogramSnapshot a = h.snapshot();
  const HistogramSnapshot b = serial.snapshot();
  EXPECT_EQ(a.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.reset();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
}

TEST(CounterGauge, Basics) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(5);
  g.add(-8);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Registry, SameNameReturnsTheSameMetric) {
  Registry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  // Kinds are separate namespaces: a gauge named "x" is a different metric.
  Gauge& g = r.gauge("x");
  g.set(7);
  a.add(3);
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "x");
  EXPECT_EQ(snap.counters[0].value, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
}

TEST(Registry, ReferencesStayValidAsMoreMetricsRegister) {
  Registry r;
  Counter& first = r.counter("first");
  for (int i = 0; i < 200; ++i) r.counter("c" + std::to_string(i));
  first.add(9);
  EXPECT_EQ(r.counter("first").value(), 9u);
}

TEST(Registry, ResetZeroesValuesButKeepsNames) {
  Registry r;
  r.counter("a").add(2);
  r.histogram("h", Unit::kNanoseconds).record(10);
  r.reset();
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 0u);
  EXPECT_EQ(snap.histograms[0].hist.unit, Unit::kNanoseconds);
}

TEST(Flags, ScopedSettersRestoreThePreviousState) {
  const bool metricsBefore = metricsEnabled();
  const bool tracingBefore = tracingEnabled();
  {
    ScopedMetricsEnabled m(true);
    ScopedTracingEnabled t(true);
    EXPECT_TRUE(metricsEnabled());
    EXPECT_TRUE(tracingEnabled());
    {
      ScopedMetricsEnabled inner(false);
      EXPECT_FALSE(metricsEnabled());
    }
    EXPECT_TRUE(metricsEnabled());
  }
  EXPECT_EQ(metricsEnabled(), metricsBefore);
  EXPECT_EQ(tracingEnabled(), tracingBefore);
}

TEST(Preregister, StandardCatalogShowsUpInSnapshots) {
  ScopedMetricsEnabled on(true);
  preregisterStandardMetrics();
  const Snapshot snap = registry().snapshot();
  const auto hasCounter = [&](const char* name) {
    for (const auto& row : snap.counters) {
      if (row.name == name) return true;
    }
    return false;
  };
  const auto hasHistogram = [&](const std::string& name) {
    for (const auto& row : snap.histograms) {
      if (row.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(hasCounter(names::kRequestsSolved));
  EXPECT_TRUE(hasCounter(names::kDeltaPeeks));
  EXPECT_TRUE(hasCounter(names::kCoalesced));
  EXPECT_TRUE(hasHistogram(names::kQueueDepth));
  EXPECT_TRUE(hasHistogram(names::kMemberRun));
  EXPECT_TRUE(hasHistogram("stage.parse"));
  EXPECT_TRUE(hasHistogram("stage.queue_wait"));
  EXPECT_TRUE(hasHistogram("stage.emit"));
}

}  // namespace
}  // namespace pipesched::obs
