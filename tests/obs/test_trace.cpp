// Trace spans and per-request breakdowns: span nesting and recording modes,
// disabled-mode zero-footprint, and the composition invariant
// stagesTotal() <= totalSeconds across the solve / batch / stream paths.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "pipesched/obs/trace.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/stream/async_scheduler.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::obs {
namespace {

std::size_t idx(Stage stage) { return static_cast<std::size_t>(stage); }

service::Request makeRequest(std::uint64_t seed) {
  workload::Rng rng(seed);
  workload::InstancePair pair =
      workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, 6, 4, rng);
  return service::Request{std::move(pair.pipeline), std::move(pair.platform),
                          core::CommModel::kSequential, service::SweepSpec{4, 3},
                          "trace-" + std::to_string(seed)};
}

TEST(StageNames, AreDistinctAndStable) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    names.insert(stageName(static_cast<Stage>(i)));
  }
  EXPECT_EQ(names.size(), kStageCount);
  EXPECT_EQ(std::string(stageName(Stage::kQueueWait)), "queue_wait");
  EXPECT_EQ(std::string(stageName(Stage::kMemberSolve)), "member_solve");
}

TEST(TraceSpan, DisabledModeRecordsNothing) {
  ScopedMetricsEnabled off(false);
  const std::uint64_t before = stageHistogram(Stage::kParse).snapshot().count;
  {
    TraceSpan span(Stage::kParse);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(span.stop(), 0.0);  // inactive span: no clock was read
  }
  EXPECT_EQ(stageHistogram(Stage::kParse).snapshot().count, before);
}

TEST(TraceSpan, RecordsIntoTheTraceWithoutMetrics) {
  ScopedMetricsEnabled off(false);
  const std::uint64_t before = stageHistogram(Stage::kMerge).snapshot().count;
  RequestTrace trace;
  {
    TraceSpan span(Stage::kMerge, &trace);
  }
  EXPECT_EQ(trace.stageCounts[idx(Stage::kMerge)], 1u);
  EXPECT_GE(trace.stageSeconds[idx(Stage::kMerge)], 0.0);
  // Metrics off: the per-process histogram stays untouched.
  EXPECT_EQ(stageHistogram(Stage::kMerge).snapshot().count, before);
}

TEST(TraceSpan, RecordsIntoTheHistogramWithMetrics) {
  ScopedMetricsEnabled on(true);
  const std::uint64_t before = stageHistogram(Stage::kEmit).snapshot().count;
  {
    TraceSpan span(Stage::kEmit);
  }
  EXPECT_EQ(stageHistogram(Stage::kEmit).snapshot().count, before + 1);
}

TEST(TraceSpan, StopIsIdempotent) {
  ScopedMetricsEnabled on(true);
  const std::uint64_t before = stageHistogram(Stage::kParse).snapshot().count;
  TraceSpan span(Stage::kParse);
  const double first = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.stop(), 0.0);
  EXPECT_EQ(stageHistogram(Stage::kParse).snapshot().count, before + 1);
}

TEST(TraceSpan, NestedSpansRecordTheirOwnStages) {
  // Spans nest lexically (parse around fingerprint around lookup); each
  // records only its own stage, and the outer span's time covers the inner.
  RequestTrace trace;
  {
    TraceSpan outer(Stage::kParse, &trace);
    {
      TraceSpan inner(Stage::kFingerprint, &trace);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(trace.stageCounts[idx(Stage::kParse)], 1u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kFingerprint)], 1u);
  EXPECT_GE(trace.stageSeconds[idx(Stage::kParse)],
            trace.stageSeconds[idx(Stage::kFingerprint)]);
}

TEST(RequestTrace, StagesTotalSumsEverySlice) {
  RequestTrace trace;
  trace.add(Stage::kParse, 0.25);
  trace.add(Stage::kMerge, 0.5);
  trace.add(Stage::kMerge, 0.5);
  EXPECT_DOUBLE_EQ(trace.stagesTotal(), 1.25);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kMerge)], 2u);
}

TEST(ServiceTrace, DisabledModeAttachesNoTrace) {
  ASSERT_FALSE(tracingEnabled());
  service::SchedulingService svc(service::ServiceConfig{});
  const service::RequestOutcome outcome = svc.solve(makeRequest(1));
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.trace, nullptr);
}

TEST(ServiceTrace, SolveAttachesABreakdownWithinWallTime) {
  ScopedTracingEnabled tracing(true);
  service::SchedulingService svc(service::ServiceConfig{});
  const service::RequestOutcome outcome = svc.solve(makeRequest(2));
  ASSERT_TRUE(outcome.ok);
  ASSERT_NE(outcome.trace, nullptr);
  const RequestTrace& trace = *outcome.trace;
  EXPECT_GT(trace.totalSeconds, 0.0);
  EXPECT_LE(trace.stagesTotal(), trace.totalSeconds);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kFingerprint)], 1u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kCacheLookup)], 1u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kMemberSolve)], 1u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kMerge)], 1u);
  EXPECT_FALSE(trace.members.empty());
  for (const auto& [solver, seconds] : trace.members) {
    EXPECT_FALSE(solver.empty());
    EXPECT_GE(seconds, 0.0);
  }
}

TEST(ServiceTrace, CacheHitTraceSkipsTheSolveStages) {
  ScopedTracingEnabled tracing(true);
  service::SchedulingService svc(service::ServiceConfig{});
  const service::Request request = makeRequest(3);
  ASSERT_TRUE(svc.solve(request).ok);
  const service::RequestOutcome warm = svc.solve(request);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.fromCache);
  ASSERT_NE(warm.trace, nullptr);
  const RequestTrace& trace = *warm.trace;
  EXPECT_EQ(trace.stageCounts[idx(Stage::kMemberSolve)], 0u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kMerge)], 0u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kCacheLookup)], 1u);
  EXPECT_TRUE(trace.members.empty());
  EXPECT_LE(trace.stagesTotal(), trace.totalSeconds);
}

TEST(ServiceTrace, BatchAttachesTracesToEveryOutcome) {
  ScopedTracingEnabled tracing(true);
  std::vector<service::Request> requests;
  requests.push_back(makeRequest(4));
  requests.push_back(makeRequest(5));
  requests.push_back(makeRequest(4));  // duplicate: deduped, shares the trace
  service::ServiceConfig config;
  config.threads = 2;
  service::SchedulingService svc(config);
  const service::BatchResult batch = svc.solveBatch(requests);
  ASSERT_EQ(batch.stats.failed, 0u);
  for (const service::RequestOutcome& outcome : batch.outcomes) {
    ASSERT_NE(outcome.trace, nullptr);
    EXPECT_LE(outcome.trace->stagesTotal(), outcome.trace->totalSeconds);
    EXPECT_EQ(outcome.trace->stageCounts[idx(Stage::kFingerprint)], 1u);
  }
  // The dedup copy shares the group's trace object.
  EXPECT_EQ(batch.outcomes[0].trace, batch.outcomes[2].trace);
}

TEST(StreamTrace, WorkerPathRecordsQueueWait) {
  ScopedTracingEnabled tracing(true);
  stream::StreamConfig config;
  config.workers = 1;
  stream::AsyncScheduler scheduler(config);
  auto future = scheduler.submit(makeRequest(6));
  const service::RequestOutcome outcome = future.get();
  ASSERT_TRUE(outcome.ok);
  ASSERT_NE(outcome.trace, nullptr);
  const RequestTrace& trace = *outcome.trace;
  EXPECT_EQ(trace.stageCounts[idx(Stage::kQueueWait)], 1u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kFingerprint)], 1u);
  EXPECT_EQ(trace.stageCounts[idx(Stage::kMemberSolve)], 1u);
  EXPECT_LE(trace.stagesTotal(), trace.totalSeconds);
}

TEST(StreamTrace, DisabledModeStaysTraceFree) {
  ASSERT_FALSE(tracingEnabled());
  stream::StreamConfig config;
  config.workers = 1;
  stream::AsyncScheduler scheduler(config);
  auto future = scheduler.submit(makeRequest(7));
  const service::RequestOutcome outcome = future.get();
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.trace, nullptr);
}

}  // namespace
}  // namespace pipesched::obs
