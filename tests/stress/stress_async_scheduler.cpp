// AsyncScheduler under deliberate adversity: submit/trySubmit storms from
// many producers racing snapshot() pollers, coalescing storms that hammer
// one canonical key through the park/overflow paths, and close() fired while
// producers are mid-submit. The solveOverride hook replaces the real
// portfolio so the races run thousands of times per second; the invariants
// checked are the scheduler's own accounting contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "pipesched/stream/async_scheduler.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::stream {
namespace {

service::Request makeRequest(std::uint64_t seed, std::size_t points = 4) {
  workload::Rng rng(seed);
  workload::InstancePair pair =
      workload::randomInstance(workload::ExperimentKind::kE2BalancedHetComm, 5, 3, rng);
  std::ostringstream label;
  label << "stress-" << seed;
  return service::Request{std::move(pair.pipeline), std::move(pair.platform),
                          core::CommModel::kSequential, service::SweepSpec{points, 3},
                          label.str()};
}

service::RequestOutcome okOutcome() {
  service::RequestOutcome outcome;
  outcome.ok = true;
  return outcome;
}

void expectInvariant(const StreamStats& s) {
  EXPECT_EQ(s.solved + s.cacheHits + s.coalesced + s.failed, s.completed);
  EXPECT_EQ(s.completed, s.submitted);
}

/// Mixed submit()/trySubmit() storm from 4 producers against a tiny queue,
/// with a dedicated thread polling snapshot() the whole time. The snapshot
/// invariants (in-flight derived under one lock, depth clamped to capacity)
/// must hold on every single poll, and the final accounting must balance:
/// every accepted request completes exactly once.
TEST(StressAsyncScheduler, SubmitStormAgainstSnapshotPolling) {
  StreamConfig config;
  config.workers = 3;
  config.queueCapacity = 4;
  config.solveOverride = [](const service::Request&) { return okOutcome(); };
  AsyncScheduler scheduler(config);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 400;
  std::atomic<std::uint64_t> acceptedTry{0};
  std::atomic<std::uint64_t> sheddedTry{0};
  std::atomic<std::uint64_t> callbacksRun{0};
  std::atomic<bool> stopPolling{false};

  std::thread poller([&] {
    while (!stopPolling.load()) {
      const SchedulerSnapshot snap = scheduler.snapshot();
      EXPECT_GE(snap.stream.submitted, snap.stream.completed);
      EXPECT_EQ(snap.inFlight, snap.stream.submitted - snap.stream.completed);
      EXPECT_LE(snap.queueDepth, snap.queueCapacity);
      EXPECT_LE(snap.stream.solved + snap.stream.cacheHits + snap.stream.coalesced +
                    snap.stream.failed,
                snap.stream.submitted);
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<service::RequestOutcome>> futures;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t seed = p * kPerProducer + i;
        if (i % 2 == 0) {
          futures.push_back(scheduler.submit(makeRequest(seed)));
        } else if (scheduler.trySubmit(
                       makeRequest(seed),
                       [&](const service::Request&, const service::RequestOutcome& o) {
                         EXPECT_TRUE(o.ok);
                         callbacksRun.fetch_add(1);
                       })) {
          acceptedTry.fetch_add(1);
        } else {
          sheddedTry.fetch_add(1);  // queue full: admission control, not an error
        }
      }
      for (auto& f : futures) EXPECT_TRUE(f.get().ok);
    });
  }
  for (std::thread& t : producers) t.join();
  scheduler.drain();
  stopPolling.store(true);
  poller.join();
  scheduler.close();

  const StreamStats stats = scheduler.stats();
  expectInvariant(stats);
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer / 2 + acceptedTry.load());
  EXPECT_EQ(callbacksRun.load(), acceptedTry.load());
  EXPECT_EQ(stats.failed, 0u);
}

/// One canonical key hammered from every producer while solves are held open
/// long enough for duplicates to pile onto the in-flight list. With the
/// waiter cap at 2 the storm exercises all three duplicate paths — parked
/// (coalesced), overflowed (solved directly), and fresh — and the partition
/// invariant must still balance exactly. snapshot() polls concurrently to
/// race the inflight_ map reads against park/erase.
TEST(StressAsyncScheduler, CoalesceStormThroughParkAndOverflowPaths) {
  StreamConfig config;
  config.workers = 4;
  config.queueCapacity = 8;
  config.maxCoalescedWaiters = 2;
  config.solveOverride = [](const service::Request&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return okOutcome();
  };
  AsyncScheduler scheduler(config);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 150;
  std::atomic<bool> stopPolling{false};
  std::thread poller([&] {
    while (!stopPolling.load()) {
      const SchedulerSnapshot snap = scheduler.snapshot();
      // Parked waiters can only exist for keys currently in flight.
      if (snap.inflightKeys == 0) EXPECT_EQ(snap.parkedWaiters, 0u);
      EXPECT_LE(snap.parkedWaiters,
                snap.inflightKeys * config.maxCoalescedWaiters);
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      std::vector<std::future<service::RequestOutcome>> futures;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        futures.push_back(scheduler.submit(makeRequest(7)));  // identical key
      }
      for (auto& f : futures) EXPECT_TRUE(f.get().ok);
    });
  }
  for (std::thread& t : producers) t.join();
  scheduler.drain();
  stopPolling.store(true);
  poller.join();
  scheduler.close();

  const StreamStats stats = scheduler.stats();
  expectInvariant(stats);
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  // The override bypasses the cache, so every completion is a fresh solve or
  // a coalesced copy — and with 600 identical requests through 4 workers,
  // some must have coalesced.
  EXPECT_EQ(stats.solved + stats.coalesced, stats.completed);
  EXPECT_GT(stats.coalesced, 0u);
  EXPECT_EQ(stats.coalesced, stats.waitersAttached);
}

/// close() fired from a foreign thread while producers are mid-storm: every
/// submit() from then on throws ModelError (and trySubmit returns false), but
/// every request accepted before the cut completes exactly once — shutdown
/// never drops accepted work. Repeated rounds move the cut point around.
TEST(StressAsyncScheduler, CloseDuringSubmitStormDropsNothingAccepted) {
  for (int round = 0; round < 10; ++round) {
    StreamConfig config;
    config.workers = 2;
    config.queueCapacity = 4;
    config.solveOverride = [](const service::Request&) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      return okOutcome();
    };
    auto scheduler = std::make_unique<AsyncScheduler>(config);

    std::atomic<std::uint64_t> completions{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> refused{0};
    constexpr std::size_t kProducers = 3;
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = 0; i < 200; ++i) {
          try {
            scheduler->submit(makeRequest(p * 1000 + i),
                              [&](const service::Request&,
                                  const service::RequestOutcome&) {
                                completions.fetch_add(1);
                              });
            accepted.fetch_add(1);
          } catch (const ModelError&) {
            refused.fetch_add(1);
            return;  // closed: all later submits would throw too
          }
        }
      });
    }

    while (accepted.load() < 20) std::this_thread::yield();
    std::thread closer([&] { scheduler->close(); });
    closer.join();
    for (std::thread& t : producers) t.join();

    const StreamStats stats = scheduler->stats();
    EXPECT_EQ(stats.submitted, accepted.load());
    EXPECT_EQ(stats.completed, accepted.load());
    EXPECT_EQ(completions.load(), accepted.load());
    expectInvariant(stats);
    scheduler.reset();  // destructor after explicit close: must be idempotent
  }
}

/// drain() racing completions: producers submit a burst, then every producer
/// thread calls drain() simultaneously while a poller snapshots. All drains
/// must return (no lost wakeup), after which completed == submitted.
TEST(StressAsyncScheduler, ConcurrentDrainersAllWake) {
  StreamConfig config;
  config.workers = 2;
  config.queueCapacity = 8;
  config.solveOverride = [](const service::Request&) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return okOutcome();
  };
  AsyncScheduler scheduler(config);

  for (int burst = 0; burst < 5; ++burst) {
    std::vector<std::future<service::RequestOutcome>> futures;
    for (std::size_t i = 0; i < 50; ++i) {
      futures.push_back(scheduler.submit(makeRequest(burst * 100 + i)));
    }
    std::vector<std::thread> drainers;
    for (int d = 0; d < 4; ++d) drainers.emplace_back([&] { scheduler.drain(); });
    for (std::thread& t : drainers) t.join();
    const StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, stats.submitted);
    for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  }
  scheduler.close();
  expectInvariant(scheduler.stats());
}

}  // namespace
}  // namespace pipesched::stream
