// Chaos suite: the full serving stack (HttpServer + AsyncScheduler +
// installServeEndpoints) under deliberate adversity — armed fault storms,
// sub-solve deadlines on a saturated queue, shed floods, and stalled
// clients racing healthy traffic. The contract under test is uniform:
// the server never hangs, never crashes, answers every surviving
// connection with a complete response whose status is one of the
// documented codes, and still drains cleanly afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../net/net_test_util.hpp"
#include "pipesched/fault/fault.hpp"
#include "pipesched/net/endpoints.hpp"
#include "pipesched/net/server.hpp"
#include "pipesched/stream/async_scheduler.hpp"

namespace pipesched::net {
namespace {

/// Serving stack on a loopback port, mirroring cmd_serve's wiring.
class ChaosFixture {
 public:
  explicit ChaosFixture(stream::StreamConfig config, HttpServerConfig serverConfig = {}) {
    scheduler_ = std::make_unique<stream::AsyncScheduler>(config);
    serverConfig.endpoint = Endpoint{"127.0.0.1", 0};
    server_ = std::make_unique<HttpServer>(serverConfig);
    ServeEndpointsConfig endpoints;
    endpoints.statsSnapshot = [] { return std::string("{\"type\":\"stats\"}"); };
    endpoints.draining = [this] { return server_->draining(); };
    installServeEndpoints(*server_, *scheduler_, endpoints);
    server_->bind();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~ChaosFixture() { stop(); }

  /// Graceful drain; the join itself is the "run() returns" assertion —
  /// a hang here trips the suite timeout, which is the failure mode chaos
  /// is hunting for.
  void stop() {
    if (!thread_.joinable()) return;
    server_->requestStop();
    thread_.join();
    scheduler_->close();
  }

  Endpoint endpoint() const { return server_->local(); }
  HttpServer& server() { return *server_; }

 private:
  std::unique_ptr<stream::AsyncScheduler> scheduler_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

/// What one chaos client observed. A connection that died without a full
/// response is legal under an armed fault storm; a *partial* status line
/// or a hang is not.
struct ChaosOutcome {
  bool connected = false;
  bool completeResponse = false;
  int status = 0;
};

/// Fault-tolerant one-shot client: unlike testutil::fetch it never fails
/// the test on a dead connection — it reports what it saw. Bounded by a
/// wall-clock budget so a silent server surfaces as completeResponse=false
/// instead of a suite hang.
ChaosOutcome chaosFetch(const Endpoint& endpoint, const std::string& raw,
                        std::chrono::milliseconds budget = std::chrono::seconds(10)) {
  ChaosOutcome outcome;
  const auto deadline = std::chrono::steady_clock::now() + budget;
  try {
    Socket socket = connectTcp(endpoint, 2000);
    outcome.connected = true;
    std::size_t sent = 0;
    while (sent < raw.size()) {
      const IoResult w = socket.write(raw.data() + sent, raw.size() - sent);
      if (w.bytes > 0) {
        sent += w.bytes;
        continue;
      }
      if (w.wouldBlock) continue;
      return outcome;  // injected client-side write fault or dead peer
    }

    std::string data;
    char buffer[4096];
    std::size_t headerEnd = std::string::npos;
    std::size_t bodyStart = 0;
    std::size_t contentLength = 0;
    for (;;) {
      if (std::chrono::steady_clock::now() > deadline) return outcome;
      if (headerEnd == std::string::npos &&
          (headerEnd = data.find("\r\n\r\n")) != std::string::npos) {
        bodyStart = headerEnd + 4;
        const std::size_t label = data.find("Content-Length:");
        if (label != std::string::npos && label < headerEnd) {
          contentLength = std::stoul(data.substr(label + 15));
        }
      }
      if (headerEnd != std::string::npos && data.size() - bodyStart >= contentLength) {
        break;
      }
      const IoResult r = socket.read(buffer, sizeof buffer);
      if (r.bytes > 0) {
        data.append(buffer, r.bytes);
        continue;
      }
      if (r.wouldBlock) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      return outcome;  // closed or injected fault mid-response
    }
    outcome.completeResponse = true;
    outcome.status = std::stoi(data.substr(data.find(' ') + 1, 3));
  } catch (const std::exception&) {
    // connect itself failed (accept fault, connect timeout): not connected.
  }
  return outcome;
}

std::string solveBody(int seed, int lines = 2, std::size_t stages = 6,
                      std::size_t processors = 4) {
  std::string body;
  for (int i = 0; i < lines; ++i) {
    body += "{\"kind\":\"E1\",\"stages\":" + std::to_string(stages) +
            ",\"processors\":" + std::to_string(processors) +
            ",\"seed\":" + std::to_string(seed * 100 + i) + "}\n";
  }
  return body;
}

bool isDocumentedStatus(int status) {
  return status == 200 || status == 400 || status == 404 || status == 408 ||
         status == 503 || status == 504;
}

/// The tentpole acceptance storm: probabilistic faults armed across every
/// layer (socket reads/writes, accept, HTTP parsing, scheduler admission,
/// portfolio members) while a pool of clients throws valid solves, garbage
/// bytes, and rude disconnects at the server. Any connection may die —
/// but every response that does arrive must be complete and carry a
/// documented status, and after the storm the untouched stack must still
/// serve and drain.
TEST(StressChaos, FaultStormedStackStaysUpAndAnswersInDocumentedStatuses) {
  stream::StreamConfig config;
  config.workers = 3;
  config.queueCapacity = 16;
  HttpServerConfig serverConfig;
  serverConfig.pollTimeoutMs = 20;
  serverConfig.requestTimeoutMs = 400;  // unstick clients whose request bytes
  serverConfig.idleTimeoutMs = 400;     // were eaten by an injected fault
  ChaosFixture fixture(config, serverConfig);

  std::atomic<std::uint64_t> complete{0};
  std::atomic<std::uint64_t> undocumented{0};
  std::atomic<std::uint64_t> dead{0};
  {
    fault::ScopedFaultSpec storm(
        "net.read=p:0.02;net.write=p:0.02;net.accept=p:0.05;"
        "http.parse=p:0.05;sched.submit=p:0.15;member.*=p:0.3");
    std::vector<std::thread> clients;
    for (int c = 0; c < 6; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < 12; ++i) {
          std::string raw;
          switch ((c + i) % 4) {
            case 0:
              raw = testutil::renderRequest("POST", "/solve", solveBody(c * 16 + i));
              break;
            case 1:
              raw = testutil::renderRequest("POST", "/solve", solveBody(c * 16 + i, 1),
                                            "X-Deadline-Ms: 50\r\n");
              break;
            case 2:
              raw = "POST /solve HTTP/1.1\r\nHost: x\r\nxx\x01garbage\r\n\r\n";
              break;
            default:
              raw = testutil::renderRequest("GET", "/healthz");
              break;
          }
          const ChaosOutcome outcome = chaosFetch(fixture.endpoint(), raw);
          if (outcome.completeResponse) {
            complete.fetch_add(1);
            if (!isDocumentedStatus(outcome.status)) undocumented.fetch_add(1);
          } else {
            dead.fetch_add(1);
          }
        }
      });
    }
    // Rude peers: connect and slam the door without sending a byte.
    for (int i = 0; i < 10; ++i) {
      try {
        Socket s = connectTcp(fixture.endpoint(), 1000);
      } catch (const std::exception&) {
        // accept fault dropped us — that's the point of the storm.
      }
    }
    for (std::thread& t : clients) t.join();
  }

  EXPECT_EQ(undocumented.load(), 0u);
  EXPECT_GT(complete.load(), 0u) << "storm killed literally every connection";

  // Disarmed, the same stack serves untouched traffic...
  const testutil::ClientResponse health = testutil::fetch(fixture.endpoint(), "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  const testutil::ClientResponse solve =
      testutil::fetch(fixture.endpoint(), "POST", "/solve", solveBody(999, 1));
  EXPECT_EQ(solve.status, 200);
  EXPECT_NE(solve.body.find("\"ok\":true"), std::string::npos) << solve.body;

  // ...and drains cleanly with balanced transport accounting.
  fixture.stop();
  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.accepted, stats.closed + stats.errored);
  EXPECT_EQ(stats.active, 0u);
}

/// Sub-solve deadlines against one worker and a deep queue: most requests
/// must be cut (shed 503 or deadline 504), none may hang, and every 200
/// body is complete. The per-request budget inside chaosFetch is the
/// "never exceeds the deadline by more than a poll interval" backstop —
/// grossly violated deadlines surface as incomplete responses.
TEST(StressChaos, DeadlineStormOnSaturatedQueueNeverHangs) {
  stream::StreamConfig config;
  config.workers = 1;
  config.queueCapacity = 32;
  ChaosFixture fixture(config);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> cut{0};  // 503 shed or 504 deadline
  std::atomic<std::uint64_t> other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 5; ++i) {
        // 12-stage instances take far longer than 5 ms once queued behind
        // the single worker; only the earliest arrivals can make it.
        const std::string raw =
            testutil::renderRequest("POST", "/solve", solveBody(c * 8 + i, 2, 12, 8),
                                    "X-Deadline-Ms: 5\r\n");
        const ChaosOutcome outcome = chaosFetch(fixture.endpoint(), raw,
                                                std::chrono::seconds(30));
        if (!outcome.completeResponse) {
          other.fetch_add(1);
        } else if (outcome.status == 200) {
          ok.fetch_add(1);
        } else if (outcome.status == 503 || outcome.status == 504) {
          cut.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(other.load(), 0u) << "every response must be 200, 503 or 504";
  EXPECT_GT(cut.load(), 0u) << "40 over-deadline posts cannot all have met a 5ms budget";
  EXPECT_EQ(ok.load() + cut.load(), 40u);
}

/// Queue saturation with a parked worker: the flood sheds with 503, the
/// latch releases, and the very same stack then serves a clean 200 — shed
/// is load shedding, not a death spiral.
TEST(StressChaos, ShedFloodRecoversToCleanServiceAfterRelease) {
  std::mutex mutex;
  std::condition_variable cv;
  bool parked = false;   // the blocker request reached the worker
  bool release = false;  // let the blocker finish

  stream::StreamConfig config;
  config.workers = 1;
  config.queueCapacity = 1;
  // Only the named blocker parks; everything else solves instantly. With
  // the lone worker parked, nothing pops the queue, so its single slot
  // forces every 2-line flood POST to shed deterministically.
  config.solveOverride = [&](const service::Request& request) {
    if (request.name == "blocker") {
      std::unique_lock lock(mutex);
      parked = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    service::RequestOutcome outcome;
    outcome.ok = true;
    return outcome;
  };
  ChaosFixture fixture(config);

  std::thread blocker([&] {
    const std::string body =
        "{\"kind\":\"E1\",\"stages\":4,\"processors\":3,\"seed\":1,"
        "\"name\":\"blocker\"}\n";
    (void)chaosFetch(fixture.endpoint(),
                     testutil::renderRequest("POST", "/solve", body),
                     std::chrono::seconds(60));
  });
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return parked; }));
  }

  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> flood;
  for (int c = 0; c < 6; ++c) {
    flood.emplace_back([&, c] {
      for (int i = 0; i < 6; ++i) {
        const ChaosOutcome outcome = chaosFetch(
            fixture.endpoint(),
            testutil::renderRequest("POST", "/solve", solveBody(100 + c * 8 + i, 2)),
            std::chrono::seconds(30));
        ASSERT_TRUE(outcome.completeResponse);
        if (outcome.status == 503) shed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : flood) t.join();
  // Every flood POST has 2 lines against 1 queue slot and a parked worker:
  // at least one of its submits must fail, so the whole POST sheds.
  EXPECT_EQ(shed.load(), 36u);

  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  blocker.join();

  const testutil::ClientResponse after =
      testutil::fetch(fixture.endpoint(), "POST", "/solve", solveBody(2, 1));
  EXPECT_EQ(after.status, 200);
}

/// Stalled half-request connections (the slowloris shape) racing healthy
/// traffic: every healthy fetch succeeds while the stalls are reaped with
/// 408 — slow clients cost a connection slot for requestTimeoutMs, never
/// the server.
TEST(StressChaos, StalledConnectionsCannotStarveHealthyTraffic) {
  stream::StreamConfig config;
  config.workers = 2;
  HttpServerConfig serverConfig;
  serverConfig.pollTimeoutMs = 20;
  serverConfig.requestTimeoutMs = 120;
  serverConfig.idleTimeoutMs = 2000;
  ChaosFixture fixture(config, serverConfig);

  std::atomic<std::uint64_t> reaped{0};
  std::vector<std::thread> stallers;
  for (int s = 0; s < 4; ++s) {
    stallers.emplace_back([&] {
      const ChaosOutcome outcome = chaosFetch(
          fixture.endpoint(), "POST /solve HTTP/1.1\r\nHost: x\r\n",  // ...and silence
          std::chrono::seconds(10));
      if (outcome.completeResponse && outcome.status == 408) reaped.fetch_add(1);
    });
  }

  std::atomic<std::uint64_t> healthyOk{0};
  std::vector<std::thread> healthy;
  for (int c = 0; c < 4; ++c) {
    healthy.emplace_back([&, c] {
      for (int i = 0; i < 8; ++i) {
        const testutil::ClientResponse solve = testutil::fetch(
            fixture.endpoint(), "POST", "/solve", solveBody(c * 16 + i, 1));
        if (solve.status == 200) healthyOk.fetch_add(1);
      }
    });
  }
  for (std::thread& t : healthy) t.join();
  for (std::thread& t : stallers) t.join();

  EXPECT_EQ(healthyOk.load(), 32u) << "healthy traffic must be untouched by stalls";
  EXPECT_EQ(reaped.load(), 4u) << "every stalled connection gets its 408";
  EXPECT_GE(fixture.server().stats().requestTimeouts, 4u);
}

}  // namespace
}  // namespace pipesched::net
