// Randomized torture driver for the incremental HTTP parser — the stress
// label's ASan/UBSan fuzz surface. The parser owns one growing buffer it
// indexes into incrementally (bodyStart_, contentLength_, pipelined
// leftovers after reset()); this driver feeds it valid requests split at
// arbitrary byte boundaries, truncated mid-anything, and actively malformed
// wire garbage, asserting it never crashes, never mislabels garbage as
// complete, and reproduces the exact request whatever the split pattern.
//
// Seeds are fixed: every run replays the same ~thousands of cases, so a
// sanitizer finding here is reproducible by test name alone.
#include "pipesched/net/http.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <string>
#include <vector>

namespace pipesched::net {
namespace {

/// One reference request plus the exact field values a correct parse must
/// produce.
struct Sample {
  std::string wire;
  std::string method;
  std::string target;
  std::string body;
  bool keepAlive = true;
};

Sample makeSample(std::mt19937& rng) {
  std::uniform_int_distribution<int> methodPick(0, 2);
  std::uniform_int_distribution<int> bodyLen(0, 600);
  std::uniform_int_distribution<int> targetLen(1, 40);
  std::uniform_int_distribution<int> headerCount(0, 5);
  std::uniform_int_distribution<int> charPick(0x21, 0x7e);

  Sample s;
  s.method = (methodPick(rng) == 0) ? "GET" : (methodPick(rng) == 0 ? "PUT" : "POST");
  s.target = "/";
  for (int i = targetLen(rng); i > 0; --i) {
    char c = static_cast<char>(charPick(rng));
    if (c == ' ' || c == '?') c = 'x';
    s.target += c;
  }
  const int n = bodyLen(rng);
  for (int i = 0; i < n; ++i) s.body += static_cast<char>('a' + i % 26);

  s.wire = s.method + " " + s.target + " HTTP/1.1\r\n";
  s.wire += "Host: torture\r\n";
  for (int i = headerCount(rng); i > 0; --i) {
    s.wire += "X-Filler-" + std::to_string(i) + ":  padded value " +
              std::to_string(i) + " \r\n";
  }
  if (std::bernoulli_distribution(0.3)(rng)) {
    s.wire += "Connection: close\r\n";
    s.keepAlive = false;
  }
  if (!s.body.empty() || std::bernoulli_distribution(0.5)(rng)) {
    s.wire += "Content-Length: " + std::to_string(s.body.size()) + "\r\n";
  }
  s.wire += "\r\n";
  s.wire += s.body;
  return s;
}

/// Feeds `wire` to a parser in random-size chunks (1..17 bytes), returning
/// the final status. This is the split-across-feed axis: every header name,
/// CRLF pair, and the Content-Length digits get cut at some boundary across
/// the seeds.
HttpParser::Status feedChopped(HttpParser& parser, const std::string& wire,
                               std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> chunkLen(1, 17);
  std::size_t offset = 0;
  while (offset < wire.size()) {
    const std::size_t n = std::min(chunkLen(rng), wire.size() - offset);
    parser.consume(wire.data() + offset, n);
    offset += n;
  }
  return parser.status();
}

/// Valid requests, arbitrary chunking: must always complete with exactly the
/// generated fields — split boundaries can shift nothing.
TEST(StressHttpParser, RandomValidRequestsSurviveArbitraryChunking) {
  std::mt19937 rng(20260808);
  for (int iteration = 0; iteration < 1500; ++iteration) {
    const Sample sample = makeSample(rng);
    HttpParser parser;
    ASSERT_EQ(feedChopped(parser, sample.wire, rng), HttpParser::Status::kComplete)
        << "iteration " << iteration;
    const HttpRequest& request = parser.request();
    EXPECT_EQ(request.method, sample.method);
    EXPECT_EQ(request.target, sample.target);
    EXPECT_EQ(request.body, sample.body);
    EXPECT_EQ(request.keepAlive, sample.keepAlive);
    EXPECT_EQ(request.version, "HTTP/1.1");
  }
}

/// Pipelined streams: several requests concatenated, chopped randomly, with
/// reset() re-arming on the leftovers — the exact keep-alive loop the server
/// runs. Every request must come back whole and in order.
TEST(StressHttpParser, PipelinedStreamsReassembleInOrder) {
  std::mt19937 rng(715517);
  for (int iteration = 0; iteration < 400; ++iteration) {
    std::vector<Sample> samples;
    std::string wire;
    std::uniform_int_distribution<int> count(2, 5);
    const int n = count(rng);
    for (int i = 0; i < n; ++i) {
      Sample s = makeSample(rng);
      // keep-alive only: a Connection: close mid-stream would be dropped by
      // a real server, which is routing policy, not parser behaviour.
      while (!s.keepAlive) s = makeSample(rng);
      wire += s.wire;
      samples.push_back(std::move(s));
    }

    HttpParser parser;
    std::uniform_int_distribution<std::size_t> chunkLen(1, 23);
    std::size_t offset = 0;
    std::size_t parsed = 0;
    while (parsed < samples.size()) {
      while (parser.status() == HttpParser::Status::kNeedMore && offset < wire.size()) {
        const std::size_t len = std::min(chunkLen(rng), wire.size() - offset);
        parser.consume(wire.data() + offset, len);
        offset += len;
      }
      ASSERT_EQ(parser.status(), HttpParser::Status::kComplete)
          << "iteration " << iteration << " request " << parsed;
      const HttpRequest& request = parser.request();
      EXPECT_EQ(request.method, samples[parsed].method);
      EXPECT_EQ(request.target, samples[parsed].target);
      EXPECT_EQ(request.body, samples[parsed].body);
      ++parsed;
      if (parsed < samples.size()) (void)parser.reset();
    }
  }
}

/// Truncations: a valid request cut at every possible byte, then abandoned.
/// The parser must end kNeedMore (waiting politely) or kError (it saw enough
/// to reject) — never kComplete, never a crash from indexing past the cut.
TEST(StressHttpParser, TruncatedRequestsNeverCompleteNorCrash) {
  std::mt19937 rng(424242);
  for (int iteration = 0; iteration < 60; ++iteration) {
    const Sample sample = makeSample(rng);
    for (std::size_t cut = 0; cut < sample.wire.size(); ++cut) {
      HttpParser parser;
      std::mt19937 chopRng(cut * 7919 + iteration);
      const HttpParser::Status status =
          feedChopped(parser, sample.wire.substr(0, cut), chopRng);
      // A strict prefix can never form a complete request: bodies always
      // travel with Content-Length here, so missing bytes mean kNeedMore
      // (or kError once the parser saw enough to reject) — never complete.
      EXPECT_NE(status, HttpParser::Status::kComplete)
          << "iteration " << iteration << " cut " << cut;
    }
  }
}

/// Malformed wire garbage, hand-picked plus randomized mutations of valid
/// requests (flip/insert/delete bytes in the head). Outcomes must be
/// kError with a sane status code, or kNeedMore — and ASan/UBSan get to
/// watch the in-place buffer arithmetic while the parser decides.
TEST(StressHttpParser, MalformedHeadsFailCleanly) {
  const std::vector<std::string> corpus = {
      "\r\n\r\n",
      " \r\n\r\n",
      "GET\r\n\r\n",
      "GET /\r\n\r\n",
      "GET / HTTP/1.1\rtruncated",
      "GET / HTTP/2.0\r\n\r\n",
      "GET  HTTP/1.1\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd",
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
      "GET / HTTP/1.1\r\n: novalue\r\n\r\n",
      "GET / HTTP/1.1\r\nno colon here\r\n\r\n",
      std::string(100, '\0') + "\r\n\r\n",
      "GET /" + std::string(70000, 'a') + " HTTP/1.1\r\n\r\n",  // > header cap
  };
  std::mt19937 rng(99173);
  for (const std::string& wire : corpus) {
    HttpParser parser;
    std::mt19937 chopRng(wire.size());
    const HttpParser::Status status = feedChopped(parser, wire, chopRng);
    EXPECT_NE(status, HttpParser::Status::kComplete) << "corpus: " << wire.substr(0, 40);
    if (status == HttpParser::Status::kError) {
      EXPECT_GE(parser.errorStatus(), 400);
      EXPECT_LT(parser.errorStatus(), 600);
      EXPECT_FALSE(parser.error().empty());
    }
  }

  // Randomized mutations: corrupt one byte of a valid head, or splice a
  // random byte in / out. Any status is acceptable except a crash or an
  // error object with an out-of-protocol status code.
  for (int iteration = 0; iteration < 2000; ++iteration) {
    Sample sample = makeSample(rng);
    std::string wire = sample.wire;
    const std::size_t headLen = wire.size() - sample.body.size();
    std::uniform_int_distribution<std::size_t> pos(0, headLen - 1);
    std::uniform_int_distribution<int> mode(0, 2);
    std::uniform_int_distribution<int> byte(0, 255);
    switch (mode(rng)) {
      case 0: wire[pos(rng)] = static_cast<char>(byte(rng)); break;
      case 1: wire.insert(pos(rng), 1, static_cast<char>(byte(rng))); break;
      default: wire.erase(pos(rng), 1); break;
    }
    HttpParser parser;
    std::mt19937 chopRng(iteration);
    const HttpParser::Status status = feedChopped(parser, wire, chopRng);
    if (status == HttpParser::Status::kError) {
      EXPECT_GE(parser.errorStatus(), 400);
      EXPECT_LT(parser.errorStatus(), 600);
    }
    // reset() after garbage must leave a usable parser: feed a known-good
    // request and require a clean parse (fresh state, no leftover poison).
    HttpParser reused = std::move(parser);
    (void)reused.reset();
    if (reused.status() == HttpParser::Status::kNeedMore) {
      const std::string good = "GET /ok HTTP/1.1\r\n\r\n";
      if (reused.consume(good) == HttpParser::Status::kComplete) {
        EXPECT_EQ(reused.request().target, "/ok");
      }
    }
  }
}

}  // namespace
}  // namespace pipesched::net
