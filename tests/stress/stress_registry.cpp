// obs::Registry under register-while-record-while-snapshot storms. The
// registry's contract is precise: lookup/registration and snapshot take the
// mutex, recording never does (relaxed atomics on pointer-stable metric
// objects). These tests race all three at once — new names registering while
// cached references record and a poller snapshots — and then assert exact
// totals once writers quiesce, which is the documented semantics of relaxed
// counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "pipesched/obs/metrics.hpp"

namespace pipesched::obs {
namespace {

/// Writers hammer metrics they looked up once (the documented hot-path
/// pattern) while a registrar keeps growing the registry with fresh names
/// and two pollers snapshot nonstop. Deque-backed storage must keep every
/// handed-out reference valid throughout; totals must be exact at the end.
TEST(StressRegistry, RegisterWhileRecordWhileSnapshot) {
  Registry registry;  // fresh instance: totals are fully determined by this test
  constexpr std::size_t kWriters = 3;
  constexpr std::uint64_t kAddsPerWriter = 60000;
  std::atomic<bool> stop{false};

  Counter& shared = registry.counter("stress.shared");
  Histogram& latency = registry.histogram("stress.latency", Unit::kNanoseconds);

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Counter& own = registry.counter("stress.writer." + std::to_string(w));
      Gauge& gauge = registry.gauge("stress.depth." + std::to_string(w));
      for (std::uint64_t i = 0; i < kAddsPerWriter; ++i) {
        shared.add();
        own.add(2);
        gauge.add(i % 2 == 0 ? 1 : -1);
        latency.record(i % 1024);
      }
    });
  }
  // Registrar: keeps the registry mutating (deque growth, name scans) while
  // the writers record lock-free into earlier rows.
  threads.emplace_back([&] {
    std::size_t n = 0;
    while (!stop.load()) {
      registry.counter("stress.registrar." + std::to_string(n % 256)).add();
      registry.histogram("stress.hist." + std::to_string(n % 64)).record(n);
      ++n;
    }
  });
  // Pollers: snapshots must always be well-formed (monotone counter values
  // are not asserted mid-flight — relaxed ordering only promises exactness
  // at quiescence — but structure and self-consistency are).
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        const Snapshot snap = registry.snapshot();
        for (const auto& row : snap.histograms) {
          std::uint64_t total = 0;
          for (const std::uint64_t b : row.hist.buckets) total += b;
          EXPECT_EQ(total, row.hist.count);
        }
      }
    });
  }

  for (std::size_t w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Writers quiesced: relaxed totals are exact now.
  EXPECT_EQ(shared.value(), kWriters * kAddsPerWriter);
  for (std::size_t w = 0; w < kWriters; ++w) {
    EXPECT_EQ(registry.counter("stress.writer." + std::to_string(w)).value(),
              2 * kAddsPerWriter);
    EXPECT_EQ(registry.gauge("stress.depth." + std::to_string(w)).value(),
              static_cast<std::int64_t>(kAddsPerWriter % 2 == 0 ? 0 : 1));
  }
  const HistogramSnapshot hist = latency.snapshot();
  EXPECT_EQ(hist.count, kWriters * kAddsPerWriter);
}

/// reset() racing recorders and snapshotters: an operator zeroing a live
/// registry must never corrupt structure. Post-quiescence, a final reset
/// yields exact zeros everywhere.
TEST(StressRegistry, ResetRacingRecorders) {
  Registry registry;
  Counter& counter = registry.counter("stress.reset.counter");
  Histogram& hist = registry.histogram("stress.reset.hist");
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        counter.add();
        hist.record(7);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 500; ++i) {
      registry.reset();
      const Snapshot snap = registry.snapshot();
      for (const auto& row : snap.histograms) {
        std::uint64_t total = 0;
        for (const std::uint64_t b : row.hist.buckets) total += b;
        EXPECT_EQ(total, row.hist.count);
      }
    }
    stop.store(true);
  });
  for (std::thread& t : threads) t.join();

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.snapshot().count, 0u);
}

/// The process-wide registry + enable-flag flips, as the serve paths use
/// them: instrumentation sites check metricsEnabled() then record, while
/// another thread toggles the flag (CLI re-entry does exactly this). The
/// flag is a relaxed atomic — flips must be race-free and recording must
/// stay valid whichever side of the flip a site lands on.
TEST(StressRegistry, EnableFlagFlipsDuringRecording) {
  const bool before = metricsEnabled();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> recorded{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      Counter& counter = registry().counter("stress.flag.counter");
      while (!stop.load()) {
        if (metricsEnabled()) {
          counter.add();
          recorded.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 2000; ++i) {
      ScopedMetricsEnabled scoped(i % 2 == 0);
      std::this_thread::yield();
    }
    stop.store(true);
  });
  for (std::thread& t : threads) t.join();
  setMetricsEnabled(before);
  // Sanity: the storm actually recorded through enabled windows.
  EXPECT_GT(recorded.load(), 0u);
}

}  // namespace
}  // namespace pipesched::obs
