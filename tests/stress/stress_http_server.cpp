// HttpServer under multi-client adversity: connect/POST/disconnect storms
// with handler completions fired from foreign threads, rude peers that slam
// the connection before reading their response, and requestStop() racing a
// pool of workers that keep calling Done during (and after) the drain. The
// event loop owns all connection state on one thread; everything these tests
// throw at it crosses the CompletionQueue/atomic boundaries TSan watches.
#include "pipesched/net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../net/net_test_util.hpp"

namespace pipesched::net {
namespace {

using testutil::ClientResponse;
using testutil::readResponse;
using testutil::renderRequest;

class ServerFixture {
 public:
  explicit ServerFixture(HttpServerConfig config = {}) {
    config.endpoint = Endpoint{"127.0.0.1", 0};
    server_ = std::make_unique<HttpServer>(config);
  }
  ~ServerFixture() { stop(); }

  HttpServer& server() { return *server_; }
  Endpoint endpoint() const { return server_->local(); }

  void start() {
    server_->bind();
    thread_ = std::thread([this] { server_->run(); });
  }
  void stop() {
    if (!thread_.joinable()) return;
    server_->requestStop();
    thread_.join();
  }

 private:
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

/// 6 client threads × 30 POSTs against a handler that completes every
/// response from a detached completer pool (the /solve shape: Done invoked
/// on scheduler workers, never the loop thread). Every response must arrive
/// intact and echo its request body — no torn outboxes, no lost
/// completions — and the transport counters must balance.
TEST(StressHttpServer, ForeignThreadCompletionStorm) {
  ServerFixture fixture;
  std::atomic<std::uint64_t> handled{0};

  // Completer pool: handlers park (body, done) pairs; three foreign threads
  // race to complete them out of order.
  struct Pending {
    std::string body;
    HttpServer::Done done;
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Pending> pending;
  std::atomic<bool> stopCompleters{false};

  fixture.server().handle("POST", "/echo",
                          [&](const HttpRequest& request, HttpServer::Done done) {
                            std::lock_guard lock(mutex);
                            pending.push_back(Pending{request.body, std::move(done)});
                            cv.notify_one();
                          });
  std::vector<std::thread> completers;
  for (int c = 0; c < 3; ++c) {
    completers.emplace_back([&] {
      for (;;) {
        Pending job;
        {
          std::unique_lock lock(mutex);
          cv.wait(lock, [&] { return !pending.empty() || stopCompleters.load(); });
          if (pending.empty()) return;
          job = std::move(pending.back());
          pending.pop_back();
        }
        handled.fetch_add(1);
        job.done(200, "text/plain", job.body);
      }
    });
  }
  fixture.start();

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 30;
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> okResponses{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Socket socket = connectTcp(fixture.endpoint());
        const std::string body =
            "client-" + std::to_string(c) + "-req-" + std::to_string(i);
        const std::string request = renderRequest("POST", "/echo", body);
        socket.writeAll(request.data(), request.size());
        const ClientResponse response = readResponse(socket);
        EXPECT_EQ(response.status, 200);
        EXPECT_EQ(response.body, body);
        if (response.status == 200) okResponses.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  fixture.stop();
  {
    std::lock_guard lock(mutex);
    stopCompleters.store(true);
  }
  cv.notify_all();
  for (std::thread& t : completers) t.join();

  EXPECT_EQ(okResponses.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(handled.load(), kClients * kRequestsPerClient);
  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.requests, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.accepted, stats.closed + stats.errored);
}

/// Rude peers: half the clients disconnect immediately after POSTing,
/// before their response exists. The loop must route the late completions
/// into the void (peer vanished -> response dropped) without touching freed
/// connection state, and the polite half must still get correct answers.
TEST(StressHttpServer, DisconnectBeforeResponseStorm) {
  ServerFixture fixture;
  std::mutex mutex;
  std::vector<HttpServer::Done> parked;

  fixture.server().handle("POST", "/park",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            std::lock_guard lock(mutex);
                            parked.push_back(std::move(done));
                          });
  fixture.server().handle("POST", "/direct",
                          [&](const HttpRequest& request, HttpServer::Done done) {
                            done(200, "text/plain", request.body);
                          });
  fixture.start();

  constexpr int kRounds = 40;
  std::thread rude([&] {
    for (int i = 0; i < kRounds; ++i) {
      Socket socket = connectTcp(fixture.endpoint());
      const std::string request = renderRequest("POST", "/park", "abandoned");
      socket.writeAll(request.data(), request.size());
      socket.close();  // gone before any response can be written
    }
  });
  std::thread polite([&] {
    for (int i = 0; i < kRounds; ++i) {
      Socket socket = connectTcp(fixture.endpoint());
      const std::string body = "polite-" + std::to_string(i);
      const std::string request = renderRequest("POST", "/direct", body);
      socket.writeAll(request.data(), request.size());
      const ClientResponse response = readResponse(socket);
      EXPECT_EQ(response.status, 200);
      EXPECT_EQ(response.body, body);
    }
  });
  // Completer thread fires the parked Dones late, racing the disconnects.
  std::atomic<bool> stopCompleter{false};
  std::thread completer([&] {
    while (!stopCompleter.load()) {
      std::vector<HttpServer::Done> batch;
      {
        std::lock_guard lock(mutex);
        batch.swap(parked);
      }
      for (HttpServer::Done& done : batch) done(200, "text/plain", "too late");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  rude.join();
  polite.join();
  // Stop while the completer is still firing: late-dispatched parked
  // requests must be completed for the drain to converge, so the completer
  // outlives run() and only then shuts down.
  fixture.stop();
  stopCompleter.store(true);
  completer.join();
  for (HttpServer::Done& done : parked) done(200, "text/plain", "too late");

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.requests, 2u * kRounds);
  EXPECT_EQ(stats.accepted, stats.closed + stats.errored);
}

/// requestStop() fired while completions are still in flight from foreign
/// threads — the drain path. In-flight responses must flush before run()
/// returns, and Dones that land after the server died must be swallowed by
/// the closed CompletionQueue instead of touching a destroyed loop. The
/// last-round Dones deliberately outlive the HttpServer object itself.
TEST(StressHttpServer, StopRacingForeignCompletions) {
  for (int round = 0; round < 8; ++round) {
    std::mutex mutex;
    std::vector<HttpServer::Done> parked;
    auto fixture = std::make_unique<ServerFixture>();
    fixture->server().handle("POST", "/park",
                             [&](const HttpRequest&, HttpServer::Done done) {
                               std::lock_guard lock(mutex);
                               parked.push_back(std::move(done));
                             });
    fixture->start();

    constexpr int kPeers = 5;
    std::vector<Socket> sockets;
    for (int i = 0; i < kPeers; ++i) {
      sockets.push_back(connectTcp(fixture->endpoint()));
      const std::string request = renderRequest("POST", "/park", "drain-me");
      sockets.back().writeAll(request.data(), request.size());
    }
    // Wait until every request is parked (fully dispatched), then race the
    // stop against completions from two foreign threads.
    for (;;) {
      std::lock_guard lock(mutex);
      if (parked.size() == kPeers) break;
    }
    std::vector<HttpServer::Done> jobs;
    {
      std::lock_guard lock(mutex);
      jobs.swap(parked);
    }
    std::thread stopper([&] { fixture->server().requestStop(); });
    std::thread completerA([&] {
      for (std::size_t i = 0; i < jobs.size(); i += 2)
        jobs[i](200, "text/plain", "drained");
    });
    std::thread completerB([&] {
      for (std::size_t i = 1; i < jobs.size(); i += 2)
        jobs[i](200, "text/plain", "drained");
    });
    stopper.join();
    completerA.join();
    completerB.join();
    fixture->stop();

    // Responses completed before the drain deadline were flushed; peers that
    // got one must have received it whole. (A completion losing the race to
    // the stop is legal — its peer sees a clean close instead.)
    for (Socket& socket : sockets) {
      char buffer[4096];
      std::string data;
      for (;;) {
        const IoResult r = socket.read(buffer, sizeof buffer);
        if (r.bytes == 0) break;
        data.append(buffer, r.bytes);
      }
      if (!data.empty()) {
        EXPECT_NE(data.find("200 OK"), std::string::npos);
        EXPECT_NE(data.find("drained"), std::string::npos);
      }
    }
    // Destroy the server, then fire Dones once more: the shared queue is
    // closed, so these must be no-ops, not use-after-frees (ASan's half of
    // this test).
    fixture.reset();
    for (HttpServer::Done& done : jobs) done(500, "text/plain", "after death");
  }
}

}  // namespace
}  // namespace pipesched::net
