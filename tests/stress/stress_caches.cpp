// ShardedLruStore (ResultCache / SubResultCache) under concurrent put/get/
// evict/stats/clear storms. Capacities are tiny relative to the key space so
// eviction runs constantly — the LRU splice/erase paths, not just the happy
// lookup, are what TSan needs to watch. Values are checked for integrity on
// every hit: a returned copy must be exactly what some thread stored under
// that key, never a torn mix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pipesched/service/portfolio.hpp"
#include "pipesched/service/result_cache.hpp"

namespace pipesched::service {
namespace {

Fingerprint fpFor(std::uint64_t k) {
  // Spread hi so keys land on every shard; keep it deterministic.
  return Fingerprint{k * 0x9e3779b97f4a7c15ull, k};
}

/// A PortfolioResult whose contents encode `tag` redundantly: the checker
/// can detect a torn or cross-key value on any hit.
PortfolioResult taggedResult(std::uint64_t tag) {
  PortfolioResult result;
  result.front.resize(1 + tag % 3);
  for (auto& point : result.front) {
    point.period = static_cast<double>(tag);
    point.latency = static_cast<double>(tag) * 2.0;
  }
  result.solvers.resize(1);
  result.solvers[0].solver = "stress-" + std::to_string(tag);
  result.solvers[0].points = static_cast<std::size_t>(tag);
  return result;
}

void checkTagged(const PortfolioResult& result, std::uint64_t tag) {
  ASSERT_EQ(result.front.size(), 1 + tag % 3);
  for (const auto& point : result.front) {
    EXPECT_EQ(point.period, static_cast<double>(tag));
    EXPECT_EQ(point.latency, static_cast<double>(tag) * 2.0);
  }
  ASSERT_EQ(result.solvers.size(), 1u);
  EXPECT_EQ(result.solvers[0].solver, "stress-" + std::to_string(tag));
  EXPECT_EQ(result.solvers[0].points, static_cast<std::size_t>(tag));
}

/// 4 writers + 4 readers over 64 keys in a 16-entry cache: every get that
/// hits must return an internally consistent value for its key, and the
/// aggregate counters must balance with what the threads observed.
TEST(StressCaches, ResultCachePutGetEvictStorm) {
  ResultCache cache(16, /*shards=*/4);
  constexpr std::uint64_t kKeys = 64;
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kOpsPerThread = 3000;
  std::atomic<std::uint64_t> observedHits{0};
  std::atomic<std::uint64_t> observedMisses{0};

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = (w * 17 + i * 7) % kKeys;
        cache.put(fpFor(k), "key-" + std::to_string(k), taggedResult(k));
      }
    });
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = (r * 13 + i * 11) % kKeys;
        const std::optional<PortfolioResult> hit =
            cache.get(fpFor(k), "key-" + std::to_string(k));
        if (hit) {
          checkTagged(*hit, k);
          observedHits.fetch_add(1);
        } else {
          observedMisses.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, observedHits.load());
  EXPECT_EQ(stats.misses, observedMisses.load());
  EXPECT_EQ(stats.hits + stats.misses, kReaders * kOpsPerThread);
  EXPECT_EQ(stats.insertions, stats.evictions + stats.entries);
  EXPECT_LE(stats.entries, cache.shardCount() * cache.perShardCapacity());
}

/// clear() racing the storm: entries vanish wholesale while writers refill
/// and readers look up. Counters must stay coherent (hits+misses == lookups)
/// and hit values intact — clear() is how an operator flushes a poisoned
/// cache on a live serve process, so it gets raced here on purpose.
TEST(StressCaches, ClearRacingTrafficKeepsAccountingCoherent) {
  ResultCache cache(8, /*shards=*/2);
  constexpr std::uint64_t kKeys = 16;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t i = 0;
      while (!stop.load()) {
        const std::uint64_t k = (w * 5 + i++ * 3) % kKeys;
        cache.put(fpFor(k), "key-" + std::to_string(k), taggedResult(k));
      }
    });
  }
  for (std::size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::uint64_t i = 0;
      while (!stop.load()) {
        const std::uint64_t k = (r * 9 + i++ * 7) % kKeys;
        if (const auto hit = cache.get(fpFor(k), "key-" + std::to_string(k))) {
          checkTagged(*hit, k);
        }
        lookups.fetch_add(1);
      }
    });
  }
  std::thread clearer([&] {
    for (int i = 0; i < 200; ++i) {
      cache.clear();
      std::this_thread::yield();
    }
    stop.store(true);
  });

  clearer.join();
  for (std::thread& t : threads) t.join();

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_LE(stats.entries, cache.shardCount() * cache.perShardCapacity());
}

/// The SubResultCache through its SubShare view — the exact access pattern
/// concurrent portfolio solves use: per-instance prefixed unit keys, loads
/// warm-starting from stores made by other threads. Payload integrity is the
/// assertion: a loaded seed/scalar must match what was stored for that unit.
TEST(StressCaches, SubShareConcurrentUnitTraffic) {
  SubResultCache cache(32, /*shards=*/4);
  constexpr std::size_t kInstances = 3;
  constexpr std::size_t kUnits = 24;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 1500;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRounds; ++i) {
        const std::uint64_t instance = (t + i) % kInstances;
        const std::uint64_t unit = (t * 7 + i * 5) % kUnits;
        const SubShare share(&cache, fpFor(instance));
        const std::string unitKey = "unit-" + std::to_string(unit);
        if (const std::optional<SubResult> hit = share.load(unitKey)) {
          // The scalar encodes (instance, unit): a value leaking across
          // prefixes or keys is caught right here.
          ASSERT_TRUE(hit->scalar.has_value());
          EXPECT_EQ(*hit->scalar,
                    static_cast<double>(instance * 1000 + unit));
        } else {
          SubResult memo;
          memo.scalar = static_cast<double>(instance * 1000 + unit);
          share.store(unitKey, std::move(memo));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds);
  EXPECT_LE(stats.entries, cache.shardCount() * cache.perShardCapacity());
}

}  // namespace
}  // namespace pipesched::service
