// BoundedChannel under deliberate adversity: MPMC storms at tiny capacities
// (maximum lock contention), mid-stream close() racing blocked producers and
// consumers, and mixed blocking/try traffic. Every test asserts the
// accounting invariant the channel promises — nothing accepted is ever lost
// or delivered twice — while TSan/ASan watch the synchronization itself.
//
// Sizing: thread counts and iteration budgets are chosen so the whole file
// runs in seconds natively and low minutes under TSan on one core.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "pipesched/stream/channel.hpp"

namespace pipesched::stream {
namespace {

constexpr std::size_t kProducers = 4;
constexpr std::size_t kConsumers = 4;
constexpr std::size_t kPerProducer = 2000;

/// Exactly-once MPMC delivery at capacity 2: every pushed value pops exactly
/// once, per-producer FIFO order survives interleaving, and the counters
/// balance. Capacity 2 forces constant full/empty transitions — the
/// condition-variable paths run thousands of times, not once.
TEST(StressChannel, MpmcStormDeliversExactlyOnceInProducerOrder) {
  BoundedChannel<std::uint64_t> channel(2);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.push((static_cast<std::uint64_t>(p) << 32) | i));
      }
    });
  }

  std::mutex seenMutex;
  std::vector<std::vector<std::uint64_t>> perProducerSeen(kProducers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<std::vector<std::uint64_t>> local(kProducers);
      while (const std::optional<std::uint64_t> value = channel.pop()) {
        local[*value >> 32].push_back(*value & 0xffffffffu);
      }
      std::lock_guard lock(seenMutex);
      for (std::size_t p = 0; p < kProducers; ++p) {
        perProducerSeen[p].insert(perProducerSeen[p].end(), local[p].begin(),
                                  local[p].end());
      }
    });
  }

  for (std::thread& t : producers) t.join();
  channel.close();
  for (std::thread& t : consumers) t.join();

  std::size_t total = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    // Exactly once: each producer's full sequence arrived, no duplicates.
    ASSERT_EQ(perProducerSeen[p].size(), kPerProducer);
    std::vector<bool> seen(kPerProducer, false);
    for (const std::uint64_t v : perProducerSeen[p]) {
      ASSERT_LT(v, kPerProducer);
      ASSERT_FALSE(seen[v]) << "value delivered twice";
      seen[v] = true;
    }
    total += perProducerSeen[p].size();
  }
  const ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.pushed, total);
  EXPECT_EQ(stats.popped, total);
  EXPECT_LE(stats.highWater, 2u);
}

/// close() fired mid-storm from a foreign thread: blocked producers unblock
/// with false, blocked consumers drain the backlog then get nullopt, and
/// accepted == delivered still holds exactly. Repeated rounds hit the race
/// window (close between the full-check and the wait) from fresh states.
TEST(StressChannel, MidStreamCloseNeverLosesAcceptedValues) {
  for (int round = 0; round < 20; ++round) {
    BoundedChannel<int> channel(3);
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> delivered{0};

    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          if (channel.push(i)) {
            accepted.fetch_add(1);
          } else {
            rejected.fetch_add(1);
            return;  // closed: every later push would also be refused
          }
        }
      });
    }
    std::vector<std::thread> consumers;
    for (std::size_t c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        while (channel.pop()) delivered.fetch_add(1);
      });
    }

    // Let some traffic through, then slam the door from a fifth thread.
    while (accepted.load() < 50) std::this_thread::yield();
    std::thread closer([&] { channel.close(); });

    closer.join();
    for (std::thread& t : producers) t.join();
    for (std::thread& t : consumers) t.join();

    EXPECT_EQ(delivered.load(), accepted.load());
    const ChannelStats stats = channel.stats();
    EXPECT_EQ(stats.pushed, accepted.load());
    EXPECT_EQ(stats.popped, delivered.load());
    EXPECT_TRUE(channel.closed());
    EXPECT_EQ(channel.size(), 0u);
  }
}

/// Blocking and non-blocking traffic mixed on one channel, with stats() and
/// size() polled concurrently: try variants must stay lock-correct under
/// contention and the snapshot reads must never tear.
TEST(StressChannel, MixedTryAndBlockingTrafficBalances) {
  BoundedChannel<int> channel(4);
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<bool> stopPolling{false};

  std::thread blockingProducer([&] {
    for (int i = 0; i < 3000; ++i) {
      if (channel.push(i)) accepted.fetch_add(1);
    }
  });
  std::thread tryProducer([&] {
    for (int i = 0; i < 3000; ++i) {
      int value = i;
      if (channel.tryPush(value)) accepted.fetch_add(1);
    }
  });
  std::thread blockingConsumer([&] {
    while (channel.pop()) delivered.fetch_add(1);
  });
  std::thread tryConsumer([&] {
    while (!channel.closed() || channel.size() > 0) {
      if (channel.tryPop()) delivered.fetch_add(1);
    }
    while (channel.tryPop()) delivered.fetch_add(1);
  });
  std::thread poller([&] {
    while (!stopPolling.load()) {
      const ChannelStats stats = channel.stats();
      EXPECT_GE(stats.pushed, stats.popped);  // can't pop what wasn't pushed
      EXPECT_LE(channel.size(), channel.capacity());
      EXPECT_LE(stats.highWater, channel.capacity());
    }
  });

  blockingProducer.join();
  tryProducer.join();
  channel.close();
  blockingConsumer.join();
  tryConsumer.join();
  stopPolling.store(true);
  poller.join();

  EXPECT_EQ(delivered.load(), accepted.load());
  const ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.pushed, accepted.load());
  EXPECT_EQ(stats.popped, delivered.load());
}

}  // namespace
}  // namespace pipesched::stream
