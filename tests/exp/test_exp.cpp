// Tests of the experiment harness: statistics, table rendering, sweep
// structure, and the Table-1 failure-threshold driver (small budgets).
#include <gtest/gtest.h>

#include <sstream>

#include "pipesched/exp/aggregate.hpp"
#include "pipesched/exp/report.hpp"
#include "pipesched/exp/sweep.hpp"

namespace pipesched::exp {
namespace {

TEST(Aggregate, SummaryOnKnownSample) {
  const Summary s = summarize({4, 2, 6, 8});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5);
  EXPECT_DOUBLE_EQ(s.min, 2);
  EXPECT_DOUBLE_EQ(s.max, 8);
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0), 1e-12);
}

TEST(Aggregate, MedianOddCount) {
  EXPECT_DOUBLE_EQ(summarize({3, 1, 2}).median, 2);
}

TEST(Aggregate, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
  EXPECT_DOUBLE_EQ(mean({}), 0);
}

TEST(Report, FormatRealHandlesNaN) {
  EXPECT_EQ(formatReal(1.2345, 2), "1.23");
  EXPECT_EQ(formatReal(std::numeric_limits<Real>::quiet_NaN()), "n/a");
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t;
  t.setHeader({"a", "bb"});
  t.addRow({"xxx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("xxx"), std::string::npos);
}

TEST(Report, CsvOutput) {
  TextTable t;
  t.setHeader({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

class SweepSmall : public ::testing::Test {
 protected:
  SweepConfig config_ = [] {
    SweepConfig c;
    c.kind = workload::ExperimentKind::kE1BalancedHomComm;
    c.stages = 8;
    c.processors = 5;
    c.pairs = 6;
    c.points = 5;
    c.seed = 12345;
    return c;
  }();
};

TEST_F(SweepSmall, ProducesSixSeriesWithRequestedPoints) {
  const SweepResult r = runBiCriteriaSweep(config_);
  ASSERT_EQ(r.series.size(), 6u);
  for (const HeuristicSeries& s : r.series) {
    EXPECT_EQ(s.points.size(), config_.points) << s.heuristic;
    for (const SeriesPoint& p : s.points) {
      EXPECT_EQ(p.attempts, config_.pairs);
      EXPECT_LE(p.successes, p.attempts);
    }
  }
  EXPECT_EQ(r.series[0].heuristic, "H1-SpMonoP");
  EXPECT_EQ(r.series[5].heuristic, "H6-SpBiL");
}

TEST_F(SweepSmall, PeriodFamilyXAxisIsTheThresholdGrid) {
  const SweepResult r = runBiCriteriaSweep(config_);
  // H1..H4 share the same period grid, strictly increasing.
  for (std::size_t h = 0; h < 4; ++h) {
    const auto& pts = r.series[h].points;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      EXPECT_GT(pts[i].x, pts[i - 1].x) << r.series[h].heuristic;
    }
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_DOUBLE_EQ(pts[i].x, r.series[0].points[i].x);
    }
  }
}

TEST_F(SweepSmall, SuccessesIncreaseWithLooserThresholds) {
  const SweepResult r = runBiCriteriaSweep(config_);
  for (const HeuristicSeries& s : r.series) {
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_GE(s.points[i].successes, s.points[i - 1].successes) << s.heuristic;
    }
    // The loosest threshold must succeed on every pair.
    EXPECT_EQ(s.points.back().successes, config_.pairs) << s.heuristic;
  }
}

TEST_F(SweepSmall, DeterministicAcrossRuns) {
  const SweepResult a = runBiCriteriaSweep(config_);
  const SweepResult b = runBiCriteriaSweep(config_);
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    for (std::size_t i = 0; i < a.series[s].points.size(); ++i) {
      EXPECT_EQ(a.series[s].points[i].successes, b.series[s].points[i].successes);
      if (a.series[s].points[i].successes > 0) {
        EXPECT_DOUBLE_EQ(a.series[s].points[i].y, b.series[s].points[i].y);
      }
    }
  }
}

TEST_F(SweepSmall, PrintAndCsvRender) {
  const SweepResult r = runBiCriteriaSweep(config_);
  std::ostringstream text, csv;
  printSweep(text, r, "test panel");
  writeSweepCsv(csv, r);
  EXPECT_NE(text.str().find("H4-SpBiP"), std::string::npos);
  EXPECT_NE(csv.str().find("H4-SpBiP"), std::string::npos);
  // CSV has header + 6 heuristics * points rows.
  std::size_t lines = 0;
  for (char c : csv.str()) lines += (c == '\n');
  EXPECT_EQ(lines, 1 + 6 * config_.points);
}

TEST_F(SweepSmall, GnuplotScriptRendersEverySeries) {
  const SweepResult r = runBiCriteriaSweep(config_);
  std::ostringstream gp;
  writeSweepGnuplot(gp, r, "panel.csv", "test panel");
  const std::string script = gp.str();
  EXPECT_NE(script.find("set datafile separator ','"), std::string::npos);
  EXPECT_NE(script.find("file = 'panel.csv'"), std::string::npos);
  EXPECT_NE(script.find("plot"), std::string::npos);
  for (const HeuristicSeries& s : r.series) {
    EXPECT_NE(script.find("'" + s.heuristic + "'"), std::string::npos) << s.heuristic;
    EXPECT_NE(script.find("title '" + s.paperName + "'"), std::string::npos) << s.paperName;
  }
}

TEST(FailureThresholds, TableShapeAndPaperInvariant) {
  const auto report = failureThresholds(workload::ExperimentKind::kE1BalancedHomComm,
                                        {5, 10}, /*processors=*/5, /*pairs=*/8,
                                        /*seed=*/999);
  ASSERT_EQ(report.heuristics.size(), 6u);
  ASSERT_EQ(report.meanThresholds.size(), 6u);
  for (const auto& row : report.meanThresholds) {
    ASSERT_EQ(row.size(), 2u);
    for (Real v : row) EXPECT_GT(v, 0);
  }
  // Paper Table-1 invariant: H5 and H6 rows are identical.
  EXPECT_EQ(report.heuristics[4], "H5-SpMonoL");
  EXPECT_EQ(report.heuristics[5], "H6-SpBiL");
  for (std::size_t ni = 0; ni < 2; ++ni) {
    EXPECT_DOUBLE_EQ(report.meanThresholds[4][ni], report.meanThresholds[5][ni]);
  }
  // H1 is never worse than H2/H3 on the same pairs (same 2-way mechanism is
  // the most aggressive splitter in this family) — weak form: H1 <= max.
  for (std::size_t ni = 0; ni < 2; ++ni) {
    const Real h1 = report.meanThresholds[0][ni];
    const Real worst = std::max(report.meanThresholds[1][ni], report.meanThresholds[2][ni]);
    EXPECT_LE(h1, worst + 1e-9);
  }
  std::ostringstream os;
  printFailureThresholds(os, report);
  EXPECT_NE(os.str().find("n=10"), std::string::npos);
}

TEST(FailureThresholds, LatencyFamilyThresholdIndependentOfProcessorsBeyondFastest) {
  // The latency failure threshold is the Lemma-1 latency, which only depends
  // on the fastest processor; it must not grow when p grows.
  const auto small = failureThresholds(workload::ExperimentKind::kE3LargeComputations, {10},
                                       5, 6, 321);
  const auto large = failureThresholds(workload::ExperimentKind::kE3LargeComputations, {10},
                                       50, 6, 321);
  // More processors -> faster fastest processor (stochastically) -> smaller
  // optimal latency. We only check it does not increase substantially.
  EXPECT_LE(large.meanThresholds[4][0], small.meanThresholds[4][0] * 1.5);
}

}  // namespace
}  // namespace pipesched::exp
