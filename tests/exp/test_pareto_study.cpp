// Pareto-study driver: front invariants, coverage of the exact front on
// small instances, gap arithmetic, and configuration validation.
#include <gtest/gtest.h>

#include <sstream>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::exp {
namespace {

using core::Evaluator;
using core::ParetoPoint;
using workload::ExperimentKind;
using workload::Rng;

bool isNonDominatedAndSorted(const std::vector<ParetoPoint>& front) {
  for (std::size_t i = 1; i < front.size(); ++i) {
    if (!(front[i].period > front[i - 1].period)) return false;
    if (!(front[i].latency < front[i - 1].latency)) return false;
  }
  return true;
}

TEST(ParetoStudy, ValidatesConfig) {
  Rng rng(1);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 5, 3, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  ParetoStudyConfig bad;
  bad.pointsPerHeuristic = 0;
  EXPECT_THROW((void)runParetoStudy(eval, bad), ModelError);
  bad.pointsPerHeuristic = 4;
  bad.range = 1;
  EXPECT_THROW((void)runParetoStudy(eval, bad), ModelError);
}

TEST(ParetoStudy, FrontsAreNonDominatedAndCarryMappings) {
  Rng rng(2100);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 10, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const ParetoStudy study = runParetoStudy(eval);
  ASSERT_FALSE(study.merged.empty());
  EXPECT_TRUE(isNonDominatedAndSorted(study.merged));
  EXPECT_EQ(study.perHeuristic.size(), 6u);
  for (const HeuristicFront& f : study.perHeuristic) {
    EXPECT_TRUE(isNonDominatedAndSorted(f.front)) << f.heuristic;
  }
  for (const ParetoPoint& p : study.merged) {
    ASSERT_TRUE(p.mapping.has_value());
    EXPECT_NO_THROW(p.mapping->validate(10, 6));
    // The recorded coordinates must match a fresh evaluation.
    EXPECT_NEAR(eval.period(*p.mapping), p.period, 1e-12);
    EXPECT_NEAR(eval.latency(*p.mapping), p.latency, 1e-12);
  }
}

TEST(ParetoStudy, MergedFrontDominatesEveryPerHeuristicFront) {
  Rng rng(2200);
  const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 12, 6, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const ParetoStudy study = runParetoStudy(eval);
  for (const HeuristicFront& f : study.perHeuristic) {
    for (const ParetoPoint& p : f.front) {
      EXPECT_LE(frontLatencyAt(study.merged, p.period), p.latency + 1e-9) << f.heuristic;
    }
  }
}

TEST(ParetoStudy, MergedFrontCoversTheLemma1Point) {
  Rng rng(2300);
  const auto inst = workload::randomInstance(ExperimentKind::kE3LargeComputations, 8, 5, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const ParetoStudy study = runParetoStudy(eval);
  // Every heuristic starts at the Lemma-1 solution, so the merged front must
  // reach the optimal latency at the Lemma-1 period.
  const auto lemma1 = eval.optimalLatencyMapping();
  EXPECT_NEAR(frontLatencyAt(study.merged, eval.period(lemma1)), eval.optimalLatency(), 1e-9);
}

TEST(ParetoStudy, GapToTheExactFrontIsSmallOnTinyInstances) {
  for (std::uint64_t s : {2401, 2402, 2403}) {
    Rng rng(s);
    const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 7, 3, rng);
    const Evaluator eval(inst.pipeline, inst.platform);
    const auto exactFront = exact::exhaustiveParetoFront(eval);
    const ParetoStudy study = runParetoStudy(eval);
    const FrontGap gap = frontGap(exactFront, study.merged);
    // Heuristics cannot beat the exact front...
    EXPECT_GE(gap.meanRelativeExcess, -1e-9);
    // ...and on these tiny instances they track it within 50% latency excess
    // (typically single digits; this is a regression canary).
    EXPECT_LE(gap.maxRelativeExcess, 0.5) << "seed " << s;
  }
}

TEST(FrontLatencyAt, InfiniteBelowTheSmallestPeriod) {
  std::vector<ParetoPoint> front = {{2, 10, std::nullopt}, {4, 6, std::nullopt}};
  EXPECT_EQ(frontLatencyAt(front, 1.0), kInfinity);
  EXPECT_DOUBLE_EQ(frontLatencyAt(front, 2.0), 10);
  EXPECT_DOUBLE_EQ(frontLatencyAt(front, 3.9), 10);
  EXPECT_DOUBLE_EQ(frontLatencyAt(front, 4.0), 6);
  EXPECT_DOUBLE_EQ(frontLatencyAt(front, 100), 6);
}

TEST(FrontGap, CountsUncoveredPeriods) {
  const std::vector<ParetoPoint> reference = {{1, 10, std::nullopt}, {5, 4, std::nullopt}};
  const std::vector<ParetoPoint> candidate = {{4, 5, std::nullopt}};
  const FrontGap gap = frontGap(reference, candidate);
  EXPECT_EQ(gap.uncovered, 1u);  // period 1 unreachable
  EXPECT_DOUBLE_EQ(gap.meanRelativeExcess, 5.0 / 4.0 - 1);
  EXPECT_DOUBLE_EQ(gap.maxRelativeExcess, 5.0 / 4.0 - 1);
}

TEST(ParetoStudy, PrintsATable) {
  Rng rng(2500);
  const auto inst = workload::randomInstance(ExperimentKind::kE4SmallComputations, 6, 4, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const ParetoStudy study = runParetoStudy(eval);
  std::ostringstream os;
  printParetoStudy(os, study);
  EXPECT_NE(os.str().find("Merged heuristic Pareto front"), std::string::npos);
  EXPECT_NE(os.str().find("H1-SpMonoP"), std::string::npos);
}

}  // namespace
}  // namespace pipesched::exp
