// Robustness-study driver: validation, shape of the report, zero-amplitude
// baseline, monotone degradation trend, and table rendering. Also covers the
// TextTable Markdown renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "pipesched/exp/report.hpp"
#include "pipesched/exp/robustness_study.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::exp {
namespace {

using core::Evaluator;
using workload::ExperimentKind;
using workload::Rng;

RobustnessStudyConfig smallConfig() {
  RobustnessStudyConfig config;
  config.amplitudes = {0.0, 0.3};
  config.trials = 3;
  config.datasetCount = 120;
  config.warmup = 40;
  return config;
}

TEST(RobustnessStudy, ValidatesConfig) {
  Rng rng(1);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 5, 3, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  RobustnessStudyConfig config = smallConfig();
  config.amplitudes.clear();
  EXPECT_THROW((void)runRobustnessStudy(eval, config), ModelError);
  config = smallConfig();
  config.trials = 0;
  EXPECT_THROW((void)runRobustnessStudy(eval, config), ModelError);
  config = smallConfig();
  config.amplitudes = {1.5};
  EXPECT_THROW((void)runRobustnessStudy(eval, config), ModelError);
}

TEST(RobustnessStudy, ReportShapeAndZeroAmplitudeBaseline) {
  Rng rng(3100);
  const auto inst = workload::randomInstance(ExperimentKind::kE1BalancedHomComm, 8, 5, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const RobustnessStudy study = runRobustnessStudy(eval, smallConfig());
  ASSERT_EQ(study.rows.size(), 6u);
  for (const RobustnessRow& row : study.rows) {
    ASSERT_EQ(row.periodDegradation.size(), 2u) << row.heuristic;
    ASSERT_EQ(row.latencyDegradation.size(), 2u) << row.heuristic;
    // Amplitude 0: the DES reproduces Eq. (1)/(2) exactly, so degradation is
    // 1.0 for the period and <= 1.0 + eps for the max latency (the DES
    // measures per-data-set latency, whose max equals the Eq.-2 value).
    EXPECT_NEAR(row.periodDegradation[0], 1.0, 1e-6) << row.heuristic;
    EXPECT_NEAR(row.latencyDegradation[0], 1.0, 1e-6) << row.heuristic;
    // Amplitude 0.3: queueing effects cannot *improve* throughput.
    EXPECT_GE(row.periodDegradation[1], 1.0 - 1e-2) << row.heuristic;
    EXPECT_GT(row.nominalPeriod, 0) << row.heuristic;
  }
}

TEST(RobustnessStudy, PrintsBothTables) {
  Rng rng(3200);
  const auto inst = workload::randomInstance(ExperimentKind::kE2BalancedHetComm, 6, 4, rng);
  const Evaluator eval(inst.pipeline, inst.platform);
  const RobustnessStudy study = runRobustnessStudy(eval, smallConfig());
  std::ostringstream os;
  printRobustnessStudy(os, study);
  EXPECT_NE(os.str().find("Robustness under duration jitter"), std::string::npos);
  EXPECT_NE(os.str().find("Max-latency degradation"), std::string::npos);
  EXPECT_NE(os.str().find("a=0.30"), std::string::npos);
}

TEST(TextTableMarkdown, RendersHeaderSeparatorAndEscapes) {
  TextTable table;
  table.setHeader({"name", "value"});
  table.addRow({"plain", "1"});
  table.addRow({"with|pipe", "2"});
  std::ostringstream os;
  table.printMarkdown(os);
  EXPECT_EQ(os.str(),
            "| name | value |\n"
            "|---|---|\n"
            "| plain | 1 |\n"
            "| with\\|pipe | 2 |\n");
}

TEST(TextTableMarkdown, PadsShortRows) {
  TextTable table;
  table.setHeader({"a", "b", "c"});
  table.addRow({"x"});
  std::ostringstream os;
  table.printMarkdown(os);
  EXPECT_NE(os.str().find("| x |  |  |"), std::string::npos);
}

}  // namespace
}  // namespace pipesched::exp
