// The pluggable-member registry: catalog integrity, id resolution, member
// acceptance rules, back-compat of the default race, the committed
// strict-improvement scenario, and per-member stats plumbing through
// SchedulingService::solveBatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pipesched/service/service.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::service {
namespace {

workload::InstancePair instanceFor(workload::ExperimentKind kind, std::size_t n, std::size_t p,
                                   std::uint64_t seed) {
  workload::Rng rng(seed);
  return workload::randomInstance(kind, n, p, rng);
}

TEST(PortfolioMembers, CatalogListsEveryIdOnceInRaceOrder) {
  const std::vector<PortfolioMemberInfo> catalog = portfolioMemberCatalog();
  const std::vector<std::string> ids = allPortfolioMembers();
  ASSERT_EQ(catalog.size(), ids.size());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].id, ids[i]);
    EXPECT_FALSE(catalog[i].solver.empty());
    EXPECT_FALSE(catalog[i].description.empty());
    EXPECT_TRUE(seen.insert(catalog[i].id).second) << "duplicate id " << catalog[i].id;
  }
  // 6 heuristics + 6 local-search refiners + 6 annealing refiners + 2 c2c
  // solvers + the exact enumerator.
  EXPECT_EQ(catalog.size(), 21u);
}

TEST(PortfolioMembers, DefaultSetIsTheLegacyRace) {
  const std::vector<std::string> expected = {"H1", "H2", "H3", "H4", "H5", "H6", "exact"};
  EXPECT_EQ(defaultPortfolioMembers(), expected);
  PortfolioConfig config;  // members empty
  const auto members = makePortfolioMembers(config);
  ASSERT_EQ(members.size(), expected.size());
  for (std::size_t i = 0; i < members.size(); ++i) EXPECT_EQ(members[i]->id(), expected[i]);
}

TEST(PortfolioMembers, EveryCatalogIdResolvesToItself) {
  PortfolioConfig config;
  config.members = allPortfolioMembers();
  const auto members = makePortfolioMembers(config);
  const auto catalog = portfolioMemberCatalog();
  ASSERT_EQ(members.size(), catalog.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(members[i]->id(), catalog[i].id);
    EXPECT_EQ(members[i]->solverName(), catalog[i].solver);
  }
}

TEST(PortfolioMembers, UnknownIdThrowsModelError) {
  for (const std::string bad : {"H7", "H0", "ls:H7", "sa:", "c2c:dp", "Exact", ""}) {
    PortfolioConfig config;
    config.members = {bad};
    EXPECT_THROW((void)makePortfolioMembers(config), ModelError) << "id '" << bad << "'";
  }
}

TEST(PortfolioMembers, ExplicitDefaultListMatchesImplicitDefaultByteForByte) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 8, 5, 21);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const SweepSpec sweep{8, 3};
  PortfolioConfig implicit;  // members empty -> default set
  PortfolioConfig explicitList;
  explicitList.members = defaultPortfolioMembers();
  const auto renderOf = [](const PortfolioResult& r) {
    RequestOutcome o;
    o.ok = true;
    o.result = r;
    return describeOutcome(o);
  };
  EXPECT_EQ(renderOf(runPortfolio(eval, sweep, implicit)),
            renderOf(runPortfolio(eval, sweep, explicitList)));
}

TEST(PortfolioMembers, C2cMembersAcceptOnlyCommHomogeneousPlatforms) {
  workload::Rng rng(5);
  core::Pipeline pipeline = workload::randomPipeline(
      workload::ExperimentKind::kE2BalancedHetComm, 8, rng);
  const core::Platform hetero = workload::randomHeterogeneousPlatform(4, rng);
  ASSERT_FALSE(hetero.isCommHomogeneous());
  const core::Evaluator eval(pipeline, hetero);
  PortfolioConfig config;
  config.members = {"c2c", "c2c:ls", "H1"};
  const PortfolioResult result = runPortfolio(eval, SweepSpec{4, 2}, config);
  // Only H1 accepted: the c2c solvers have no comm-homogeneous chain to cut.
  ASSERT_EQ(result.solvers.size(), 1u);
  EXPECT_EQ(result.solvers.front().solver, "H1-SpMonoP");
}

TEST(PortfolioMembers, C2cMembersJoinOnCommHomogeneousPlatforms) {
  const auto inst = instanceFor(workload::ExperimentKind::kE1BalancedHomComm, 8, 4, 9);
  ASSERT_TRUE(inst.platform.isCommHomogeneous());
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.members = {"c2c", "c2c:ls"};
  const PortfolioResult result = runPortfolio(eval, SweepSpec{4, 2}, config);
  ASSERT_EQ(result.solvers.size(), 2u);
  EXPECT_EQ(result.solvers[0].solver, "c2c-dp");
  EXPECT_EQ(result.solvers[1].solver, "c2c-ls");
  // The DP ladder runs one unit per processor count and every unit yields a
  // genuine evaluated mapping.
  EXPECT_EQ(result.solvers[0].units, inst.platform.processorCount());
  EXPECT_EQ(result.solvers[0].points, inst.platform.processorCount());
  EXPECT_FALSE(result.front.empty());
  for (const core::ParetoPoint& p : result.front) ASSERT_TRUE(p.mapping.has_value());
}

TEST(PortfolioMembers, ExactListedButIneligibleStaysOut) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 14, 8, 3);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.members = {"H1", "exact"};
  ASSERT_FALSE(exactEligible(14, 8, config));
  const PortfolioResult result = runPortfolio(eval, SweepSpec{4, 2}, config);
  EXPECT_FALSE(result.exactUsed);
  ASSERT_EQ(result.solvers.size(), 1u);
  EXPECT_EQ(result.solvers.front().solver, "H1-SpMonoP");
}

TEST(PortfolioMembers, RefinerMembersReportSweepUnits) {
  const auto inst = instanceFor(workload::ExperimentKind::kE3LargeComputations, 8, 4, 17);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.members = {"ls:H1", "sa:H5"};
  config.annealingMoves = 200;
  const SweepSpec sweep{6, 3};
  const PortfolioResult result = runPortfolio(eval, sweep, config);
  ASSERT_EQ(result.solvers.size(), 2u);
  EXPECT_EQ(result.solvers[0].solver, "ls:H1");
  EXPECT_EQ(result.solvers[1].solver, "sa:H5");
  for (const SolverContribution& c : result.solvers) {
    EXPECT_EQ(c.units, sweep.points) << c.solver;
    EXPECT_TRUE(c.completed) << c.solver;
    EXPECT_GT(c.points, 0u) << c.solver;
  }
}

// The committed strict-improvement scenario (also pinned by the golden file
// tests/golden/batch_members_all.json): on E2 n=12 p=6 seed 2, the widened
// portfolio finds front points whose coordinates no H1..H6 sweep produces.
TEST(PortfolioMembers, WidenedPortfolioStrictlyImprovesTheCommittedScenario) {
  workload::Rng rng(2);
  const workload::InstancePair inst = workload::randomInstance(
      workload::ExperimentKind::kE2BalancedHetComm, 12, 6, rng);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const SweepSpec sweep{8, 3};
  PortfolioConfig hOnly;
  hOnly.useExact = false;  // n*p = 72 cells: ineligible anyway
  PortfolioConfig wide;
  wide.useExact = false;
  wide.members = allPortfolioMembers();
  const PortfolioResult base = runPortfolio(eval, sweep, hOnly);
  const PortfolioResult widened = runPortfolio(eval, sweep, wide);

  // Point-for-point, the widened front covers the H-only front...
  for (const core::ParetoPoint& q : base.front) {
    const bool covered = std::any_of(
        widened.front.begin(), widened.front.end(), [&](const core::ParetoPoint& p) {
          return lessOrNearlyEqual(p.period, q.period) &&
                 lessOrNearlyEqual(p.latency, q.latency);
        });
    EXPECT_TRUE(covered) << "(" << q.period << ", " << q.latency << ")";
  }
  // ... and strictly improves it: at least one widened front point is
  // credited to a non-H member, i.e. its coordinates exist in no H sweep.
  std::uint64_t nonHMerged = 0;
  for (const SolverContribution& c : widened.solvers) {
    if (c.solver.rfind("H", 0) != 0) nonHMerged += c.merged;
  }
  EXPECT_GT(nonHMerged, 0u);
  // The improvement is visible in the front itself, not only in credits.
  const bool newPoint = std::any_of(
      widened.front.begin(), widened.front.end(), [&](const core::ParetoPoint& p) {
        return std::none_of(base.front.begin(), base.front.end(),
                            [&](const core::ParetoPoint& q) {
                              return nearlyEqual(p.period, q.period) &&
                                     nearlyEqual(p.latency, q.latency);
                            });
      });
  EXPECT_TRUE(newPoint);
}

TEST(PortfolioMembers, MergedCreditsSumToFrontSize) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 10, 5, 31);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.members = allPortfolioMembers();
  config.annealingMoves = 200;
  const PortfolioResult result = runPortfolio(eval, SweepSpec{6, 3}, config);
  std::uint64_t credited = 0;
  for (const SolverContribution& c : result.solvers) credited += c.merged;
  EXPECT_EQ(credited, result.front.size());
}

TEST(PortfolioMembers, BatchSurfacesPerMemberStats) {
  std::vector<Request> requests;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    workload::InstancePair inst =
        instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 8, 5, 100 + seed);
    requests.push_back(Request{std::move(inst.pipeline), std::move(inst.platform),
                               core::CommModel::kSequential, SweepSpec{6, 3},
                               "m-" + std::to_string(seed)});
  }
  ServiceConfig config;
  config.portfolio.members = {"H1", "ls:H1", "c2c"};
  SchedulingService svc(config);
  const BatchResult batch = svc.solveBatch(requests);
  ASSERT_EQ(batch.stats.solved, 3u);
  ASSERT_EQ(batch.stats.members.size(), 3u);
  EXPECT_EQ(batch.stats.members[0].solver, "H1-SpMonoP");
  EXPECT_EQ(batch.stats.members[1].solver, "ls:H1");
  EXPECT_EQ(batch.stats.members[2].solver, "c2c-dp");
  for (const MemberBatchStats& m : batch.stats.members) {
    EXPECT_EQ(m.runs, 3u) << m.solver;
    EXPECT_GT(m.points, 0u) << m.solver;
  }

  // A warm re-run is pure cache traffic: member stats stay at zero.
  const BatchResult warm = svc.solveBatch(requests);
  EXPECT_EQ(warm.stats.cacheHits, 3u);
  EXPECT_TRUE(warm.stats.members.empty());
}

TEST(PortfolioMembers, BatchMemberStatsIdenticalSerialVsPooled) {
  std::vector<Request> requests;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    workload::InstancePair inst =
        instanceFor(workload::ExperimentKind::kE1BalancedHomComm, 8, 4, 200 + seed);
    requests.push_back(Request{std::move(inst.pipeline), std::move(inst.platform),
                               core::CommModel::kSequential, SweepSpec{6, 3},
                               "p-" + std::to_string(seed)});
  }
  const auto statsAt = [&](std::size_t threads) {
    ServiceConfig config;
    config.threads = threads;
    config.cacheCapacity = 0;
    config.portfolio.members = allPortfolioMembers();
    config.portfolio.annealingMoves = 200;
    config.portfolio.dropAfter = 2;
    SchedulingService svc(config);
    return svc.solveBatch(requests).stats.members;
  };
  const std::vector<MemberBatchStats> serial = statsAt(0);
  const std::vector<MemberBatchStats> pooled = statsAt(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].solver, pooled[i].solver);
    EXPECT_EQ(serial[i].runs, pooled[i].runs) << serial[i].solver;
    EXPECT_EQ(serial[i].points, pooled[i].points) << serial[i].solver;
    EXPECT_EQ(serial[i].novel, pooled[i].novel) << serial[i].solver;
    EXPECT_EQ(serial[i].merged, pooled[i].merged) << serial[i].solver;
    EXPECT_EQ(serial[i].skipped, pooled[i].skipped) << serial[i].solver;
    EXPECT_EQ(serial[i].dropped, pooled[i].dropped) << serial[i].solver;
  }
}

TEST(PortfolioMembers, OverlappedCommModelRunsTheWideRaceDeterministically) {
  const auto inst = instanceFor(workload::ExperimentKind::kE4SmallComputations, 8, 4, 51);
  const core::Evaluator eval(inst.pipeline, inst.platform, core::CommModel::kOverlapped);
  PortfolioConfig config;
  config.members = allPortfolioMembers();
  config.annealingMoves = 200;
  const auto renderOf = [](const PortfolioResult& r) {
    RequestOutcome o;
    o.ok = true;
    o.result = r;
    return describeOutcome(o);
  };
  const std::string serial = renderOf(runPortfolio(eval, SweepSpec{5, 2}, config));
  ThreadPool pool(4);
  EXPECT_EQ(serial, renderOf(runPortfolio(eval, SweepSpec{5, 2}, config, &pool)));
}

TEST(PortfolioMembers, DropAfterZeroNeverDropsEvenOnLongPlateaus) {
  workload::Rng rng(77);
  const workload::InstancePair inst =
      workload::randomInstance(workload::ExperimentKind::kE1BalancedHomComm, 6, 2, rng);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;  // dropAfter defaults to 0
  config.members = allPortfolioMembers();
  config.annealingMoves = 200;
  const PortfolioResult result = runPortfolio(eval, SweepSpec{16, 3}, config);
  for (const SolverContribution& c : result.solvers) {
    EXPECT_FALSE(c.dropped) << c.solver;
    EXPECT_EQ(c.skipped, 0u) << c.solver;
  }
}

TEST(PortfolioMembers, WorkBudgetAppliesToEveryMemberKind) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 10, 5, 41);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.members = {"H1", "ls:H1", "c2c"};
  config.budget.maxRunsPerSolver = 2;
  const PortfolioResult result = runPortfolio(eval, SweepSpec{8, 3}, config);
  EXPECT_TRUE(result.budgetExhausted);
  for (const SolverContribution& c : result.solvers) {
    EXPECT_FALSE(c.completed) << c.solver;
    EXPECT_LE(c.points, 2u) << c.solver;
  }
}

}  // namespace
}  // namespace pipesched::service
