// Differential / property harness for the pluggable portfolio (ISSUE 3):
// on a seeded suite of randomized instances,
//   * the merged front is byte-identical serial vs pooled (2 and 8 workers)
//     and across repeated runs, with and without budget-aware dropping;
//   * the widened portfolio (refiners + c2c members) dominates-or-equals the
//     H1..H6-only front point for point;
//   * on exact-eligible small instances the merged front equals the
//     exhaustive enumerator's Pareto front;
//   * refiner members never emit a point dominated by their seed heuristic's
//     point at the same threshold, across both objective families;
//   * the set of dropped (member, unit) pairs is identical serial vs pooled,
//     and dropping never removes a point from the final front.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "pipesched/core/pareto.hpp"
#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::service {
namespace {

/// Instance i of the differential suite: a deterministic mix of the four
/// paper regimes and of sizes n in [4, 10], p in [3, 6].
workload::InstancePair suiteInstance(std::size_t i) {
  static constexpr workload::ExperimentKind kKinds[] = {
      workload::ExperimentKind::kE1BalancedHomComm,
      workload::ExperimentKind::kE2BalancedHetComm,
      workload::ExperimentKind::kE3LargeComputations,
      workload::ExperimentKind::kE4SmallComputations,
  };
  workload::Rng rng(1000 + i);
  return workload::randomInstance(kKinds[i % 4], 4 + (i % 7), 3 + (i % 4), rng);
}

/// Canonical byte rendering of a portfolio result (describeOutcome, the same
/// renderer the service byte-identity contract uses).
std::string render(const PortfolioResult& result) {
  RequestOutcome outcome;
  outcome.ok = true;
  outcome.result = result;
  return describeOutcome(outcome);
}

PortfolioConfig wideConfig(std::size_t dropAfter = 0) {
  PortfolioConfig config;
  config.members = allPortfolioMembers();
  config.dropAfter = dropAfter;
  config.annealingMoves = 400;  // keep the 21-member race test-sized
  return config;
}

const SweepSpec kSweep{5, Real(2.5)};

void expectByteIdenticalAcrossWorkers(std::size_t dropAfter) {
  const PortfolioConfig config = wideConfig(dropAfter);
  for (std::size_t i = 0; i < 25; ++i) {
    const workload::InstancePair inst = suiteInstance(i);
    const core::Evaluator eval(inst.pipeline, inst.platform);
    const std::string serial = render(runPortfolio(eval, kSweep, config));
    for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
      ThreadPool pool(workers);
      const std::string pooled = render(runPortfolio(eval, kSweep, config, &pool));
      EXPECT_EQ(serial, pooled) << "instance " << i << ", " << workers << " workers";
    }
  }
}

TEST(PortfolioProperties, MergedFrontByteIdenticalSerialVsPooled) {
  expectByteIdenticalAcrossWorkers(/*dropAfter=*/0);
}

TEST(PortfolioProperties, MergedFrontByteIdenticalSerialVsPooledWithDropping) {
  expectByteIdenticalAcrossWorkers(/*dropAfter=*/2);
}

TEST(PortfolioProperties, RepeatedRunsAreByteIdentical) {
  const PortfolioConfig config = wideConfig();
  for (std::size_t i = 0; i < 10; ++i) {
    const workload::InstancePair inst = suiteInstance(i);
    const core::Evaluator eval(inst.pipeline, inst.platform);
    EXPECT_EQ(render(runPortfolio(eval, kSweep, config)),
              render(runPortfolio(eval, kSweep, config)))
        << "instance " << i;
  }
}

TEST(PortfolioProperties, WidenedFrontDominatesOrEqualsHOnlyFront) {
  PortfolioConfig hOnly;
  hOnly.members = {"H1", "H2", "H3", "H4", "H5", "H6"};
  PortfolioConfig wide = wideConfig();
  // Exclude the exact member from both sides: this property is about the
  // widening itself, not about the enumerator's optimality.
  wide.useExact = false;
  hOnly.useExact = false;
  for (std::size_t i = 0; i < 15; ++i) {
    const workload::InstancePair inst = suiteInstance(i);
    const core::Evaluator eval(inst.pipeline, inst.platform);
    const PortfolioResult base = runPortfolio(eval, kSweep, hOnly);
    const PortfolioResult widened = runPortfolio(eval, kSweep, wide);
    for (const core::ParetoPoint& q : base.front) {
      const bool covered = std::any_of(
          widened.front.begin(), widened.front.end(), [&](const core::ParetoPoint& p) {
            return lessOrNearlyEqual(p.period, q.period) &&
                   lessOrNearlyEqual(p.latency, q.latency);
          });
      EXPECT_TRUE(covered) << "instance " << i << ": H-only point (" << q.period << ", "
                           << q.latency << ") not covered by the widened front";
    }
  }
}

TEST(PortfolioProperties, ExactEligibleMergedFrontEqualsEnumerator) {
  const PortfolioConfig config = wideConfig();
  for (std::size_t i = 0; i < 10; ++i) {
    // Small instances only: n in [4, 6], p in [3, 4] — always exact-eligible.
    workload::Rng rng(2000 + i);
    const workload::InstancePair inst = workload::randomInstance(
        workload::ExperimentKind::kE2BalancedHetComm, 4 + (i % 3), 3 + (i % 2), rng);
    const core::Evaluator eval(inst.pipeline, inst.platform);
    ASSERT_TRUE(exactEligible(inst.pipeline.stageCount(), inst.platform.processorCount(),
                              config));
    const PortfolioResult result = runPortfolio(eval, kSweep, config);
    EXPECT_TRUE(result.exactUsed);
    const std::vector<core::ParetoPoint> exactFront = exact::exhaustiveParetoFront(eval);
    ASSERT_EQ(result.front.size(), exactFront.size()) << "instance " << i;
    for (std::size_t k = 0; k < exactFront.size(); ++k) {
      EXPECT_TRUE(nearlyEqual(result.front[k].period, exactFront[k].period))
          << "instance " << i << " point " << k;
      EXPECT_TRUE(nearlyEqual(result.front[k].latency, exactFront[k].latency))
          << "instance " << i << " point " << k;
    }
  }
}

/// Replays the refiner's grid formula (the same one the sweep members use)
/// so the test can pair every refined point with its seed's point.
Real gridThreshold(const core::Evaluator& eval, const heuristics::MappingHeuristic& h,
                   const SweepSpec& sweep, std::size_t i) {
  const Real lo = h.objective() == heuristics::Objective::kMinLatencyForPeriod
                      ? h.failureThreshold(eval)
                      : eval.optimalLatency();
  return exp::sweepThreshold(lo, lo * sweep.range, sweep.points, i);
}

void expectRefinerNeverWorsens(const std::string& refinerId, heuristics::HeuristicId baseId) {
  PortfolioConfig config;
  config.members = {refinerId};
  config.annealingMoves = 400;
  const std::unique_ptr<heuristics::MappingHeuristic> base = heuristics::makeHeuristic(baseId);
  for (std::size_t i = 0; i < 12; ++i) {
    const workload::InstancePair inst = suiteInstance(i);
    const core::Evaluator eval(inst.pipeline, inst.platform);
    const auto members = makePortfolioMembers(config);
    ASSERT_EQ(members.size(), 1u);
    const auto run = members.front()->start(eval, kSweep, config, /*share=*/nullptr);
    ASSERT_EQ(run->units(), kSweep.points);
    for (std::size_t u = 0; u < run->units(); ++u) {
      const Real t = gridThreshold(eval, *base, kSweep, u);
      const heuristics::Result seed = base->run(eval, t);
      const std::vector<core::ParetoPoint> refined = run->unit(u);
      if (!seed.success || refined.empty()) continue;
      core::ParetoPoint seedPoint;
      seedPoint.period = seed.metrics.period;
      seedPoint.latency = seed.metrics.latency;
      EXPECT_FALSE(core::dominates(seedPoint, refined.front()))
          << refinerId << " on instance " << i << " unit " << u << ": refined ("
          << refined.front().period << ", " << refined.front().latency
          << ") is dominated by its seed (" << seedPoint.period << ", " << seedPoint.latency
          << ")";
    }
  }
}

TEST(PortfolioProperties, LocalSearchRefinerNeverWorsensPeriodFamilySeed) {
  expectRefinerNeverWorsens("ls:H1", heuristics::HeuristicId::kH1SpMonoP);
  expectRefinerNeverWorsens("ls:H4", heuristics::HeuristicId::kH4SpBiP);
}

TEST(PortfolioProperties, LocalSearchRefinerNeverWorsensLatencyFamilySeed) {
  expectRefinerNeverWorsens("ls:H5", heuristics::HeuristicId::kH5SpMonoL);
  expectRefinerNeverWorsens("ls:H6", heuristics::HeuristicId::kH6SpBiL);
}

TEST(PortfolioProperties, AnnealingRefinerNeverWorsensPeriodFamilySeed) {
  expectRefinerNeverWorsens("sa:H1", heuristics::HeuristicId::kH1SpMonoP);
  expectRefinerNeverWorsens("sa:H4", heuristics::HeuristicId::kH4SpBiP);
}

TEST(PortfolioProperties, AnnealingRefinerNeverWorsensLatencyFamilySeed) {
  expectRefinerNeverWorsens("sa:H5", heuristics::HeuristicId::kH5SpMonoL);
  expectRefinerNeverWorsens("sa:H6", heuristics::HeuristicId::kH6SpBiL);
}

TEST(PortfolioProperties, DropDecisionsIdenticalSerialVsPooled) {
  const PortfolioConfig config = wideConfig(/*dropAfter=*/2);
  for (std::size_t i = 0; i < 12; ++i) {
    const workload::InstancePair inst = suiteInstance(i);
    const core::Evaluator eval(inst.pipeline, inst.platform);
    const PortfolioResult serial = runPortfolio(eval, kSweep, config);
    ThreadPool pool(8);
    const PortfolioResult pooled = runPortfolio(eval, kSweep, config, &pool);
    ASSERT_EQ(serial.solvers.size(), pooled.solvers.size());
    for (std::size_t s = 0; s < serial.solvers.size(); ++s) {
      EXPECT_EQ(serial.solvers[s].solver, pooled.solvers[s].solver);
      EXPECT_EQ(serial.solvers[s].dropped, pooled.solvers[s].dropped) << serial.solvers[s].solver;
      EXPECT_EQ(serial.solvers[s].skipped, pooled.solvers[s].skipped) << serial.solvers[s].solver;
      EXPECT_EQ(serial.solvers[s].units, pooled.solvers[s].units) << serial.solvers[s].solver;
    }
  }
}

TEST(PortfolioProperties, DroppingNeverRemovesAFinalFrontPoint) {
  for (std::size_t i = 0; i < 12; ++i) {
    const workload::InstancePair inst = suiteInstance(i);
    const core::Evaluator eval(inst.pipeline, inst.platform);
    const PortfolioResult full = runPortfolio(eval, kSweep, wideConfig(0));
    const PortfolioResult dropped = runPortfolio(eval, kSweep, wideConfig(2));
    ASSERT_EQ(full.front.size(), dropped.front.size()) << "instance " << i;
    for (std::size_t k = 0; k < full.front.size(); ++k) {
      EXPECT_TRUE(nearlyEqual(full.front[k].period, dropped.front[k].period))
          << "instance " << i << " point " << k;
      EXPECT_TRUE(nearlyEqual(full.front[k].latency, dropped.front[k].latency))
          << "instance " << i << " point " << k;
    }
  }
}

TEST(PortfolioProperties, DroppingIsReportedInContributions) {
  // A dense grid over a narrow range plateaus quickly: with dropAfter=1 at
  // 16 grid points, at least one sweeping member must report a skip on a
  // 2-processor instance (its front has at most 2 distinct trade-offs).
  workload::Rng rng(77);
  const workload::InstancePair inst =
      workload::randomInstance(workload::ExperimentKind::kE1BalancedHomComm, 6, 2, rng);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config = wideConfig(/*dropAfter=*/1);
  const PortfolioResult result = runPortfolio(eval, SweepSpec{16, Real(3)}, config);
  std::size_t skipped = 0;
  for (const SolverContribution& c : result.solvers) {
    if (c.dropped) {
      EXPECT_GT(c.skipped, 0u) << c.solver;
      skipped += c.skipped;
    } else {
      EXPECT_EQ(c.skipped, 0u) << c.solver;
    }
  }
  EXPECT_GT(skipped, 0u);
  // Dropping is a skip policy, not a budget failure.
  EXPECT_FALSE(result.budgetExhausted);
}

TEST(PortfolioProperties, ServiceBatchIsByteIdenticalAcrossThreadCountsWithWideMembers) {
  // End-to-end: the same widened+dropping portfolio through SchedulingService
  // at 0 (serial), 2 and 8 pool threads — outcome-for-outcome byte identity.
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 8; ++i) {
    workload::InstancePair inst = suiteInstance(i);
    requests.push_back(Request{std::move(inst.pipeline), std::move(inst.platform),
                               core::CommModel::kSequential, kSweep,
                               "prop-" + std::to_string(i)});
  }
  const auto runAt = [&](std::size_t threads) {
    ServiceConfig config;
    config.threads = threads;
    config.cacheCapacity = 0;
    config.portfolio = wideConfig(/*dropAfter=*/2);
    SchedulingService svc(config);
    const BatchResult batch = svc.solveBatch(requests);
    std::string rendered;
    for (const RequestOutcome& outcome : batch.outcomes) rendered += describeOutcome(outcome);
    return rendered;
  };
  const std::string serial = runAt(0);
  EXPECT_EQ(serial, runAt(2));
  EXPECT_EQ(serial, runAt(8));
}

}  // namespace
}  // namespace pipesched::service
