// Worker pool: completion, exception transport, inline mode.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "pipesched/service/thread_pool.hpp"

namespace pipesched::service {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threadCount(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 0u);
  bool ran = false;
  auto future = pool.submit([&ran] { ran = true; });
  // Inline mode completes before submit returns.
  EXPECT_TRUE(ran);
  future.get();
}

TEST(ThreadPool, ExceptionsArriveThroughTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the throw.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, NonStdExceptionsAlsoTravelThroughTheFuture) {
  // The audit case: a task throwing something that is not a std::exception
  // must still land in the future's shared state, not in std::terminate.
  ThreadPool pool(1);
  auto future = pool.submit([] { throw 42; });
  bool caught = false;
  try {
    future.get();
  } catch (int value) {
    caught = true;
    EXPECT_EQ(value, 42);
  }
  EXPECT_TRUE(caught);
  EXPECT_NO_THROW(pool.submit([] {}).get());  // worker alive
}

TEST(ThreadPool, DiscardedFuturesOfThrowingTasksNeverTerminate) {
  // Fire-and-forget submissions whose tasks throw: the exceptions die with
  // their shared states when the pool drains — the process must not.
  std::atomic<int> survivors{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      (void)pool.submit([] { throw std::runtime_error("dropped"); });
      (void)pool.submit([&survivors] { survivors.fetch_add(1); });
    }
  }  // destructor drains every task, throwing ones included
  EXPECT_EQ(survivors.load(), 16);
}

TEST(ThreadPool, InlineModeTransportsExceptionsToo) {
  ThreadPool pool(0);
  auto future = pool.submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

}  // namespace
}  // namespace pipesched::service
