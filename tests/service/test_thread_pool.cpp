// Worker pool: completion, exception transport, inline mode.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "pipesched/service/thread_pool.hpp"

namespace pipesched::service {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threadCount(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 0u);
  bool ran = false;
  auto future = pool.submit([&ran] { ran = true; });
  // Inline mode completes before submit returns.
  EXPECT_TRUE(ran);
  future.get();
}

TEST(ThreadPool, ExceptionsArriveThroughTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the throw.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

}  // namespace
}  // namespace pipesched::service
