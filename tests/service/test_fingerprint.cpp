// Canonicalization + fingerprinting: identical requests collide, any
// model-relevant difference separates, presentation fields don't matter.
#include <gtest/gtest.h>

#include "pipesched/core/hash.hpp"
#include "pipesched/service/fingerprint.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::service {
namespace {

Request baseRequest() {
  workload::Scenario scenario = workload::imageProcessingScenario();
  return Request{std::move(scenario.pipeline), workload::labCluster(),
                 core::CommModel::kSequential, SweepSpec{}, "base"};
}

TEST(Fingerprint, IdenticalRequestsShareKeyAndHash) {
  const Request a = baseRequest();
  const Request b = baseRequest();
  EXPECT_EQ(canonicalKey(a), canonicalKey(b));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, NameIsExcluded) {
  const Request a = baseRequest();
  Request b = baseRequest();
  b.name = "a completely different label";
  EXPECT_EQ(canonicalKey(a), canonicalKey(b));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, PipelineChangesSeparate) {
  const Request a = baseRequest();
  Request b = baseRequest();
  std::vector<Real> work = b.pipeline.works();
  std::vector<Real> comm = b.pipeline.comms();
  work[0] += 1;
  b.pipeline = core::Pipeline(work, comm);
  EXPECT_NE(canonicalKey(a), canonicalKey(b));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, PlatformChangesSeparate) {
  const Request a = baseRequest();
  Request b = baseRequest();
  std::vector<Real> speeds = b.platform.speeds();
  speeds[0] += 1;
  b.platform = core::Platform(speeds, b.platform.bandwidth());
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, CommModelSeparates) {
  const Request a = baseRequest();
  Request b = baseRequest();
  b.model = core::CommModel::kOverlapped;
  EXPECT_NE(canonicalKey(a), canonicalKey(b));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, SweepSpecSeparates) {
  const Request a = baseRequest();
  Request points = baseRequest();
  points.sweep.points += 1;
  Request range = baseRequest();
  range.sweep.range += 0.5;
  EXPECT_NE(fingerprint(a), fingerprint(points));
  EXPECT_NE(fingerprint(a), fingerprint(range));
  EXPECT_NE(fingerprint(points), fingerprint(range));
}

TEST(Fingerprint, HeterogeneousPlatformIsCovered) {
  Request a = baseRequest();
  const std::size_t p = 3;
  std::vector<Real> speeds = {4, 8, 12};
  std::vector<Real> links(p * p, 10);
  std::vector<Real> inBw(p, 5);
  std::vector<Real> outBw(p, 5);
  a.platform = core::Platform::fullyHeterogeneous(speeds, links, inBw, outBw);
  Request b = a;
  links[1] = 20;  // P0 -> P1 link only
  b.platform = core::Platform::fullyHeterogeneous(speeds, links, inBw, outBw);
  EXPECT_NE(canonicalKey(a), canonicalKey(b));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, InstanceIdentityExcludesSweepButNotModelContent) {
  const Request a = baseRequest();
  Request sweepOnly = baseRequest();
  sweepOnly.sweep.points += 8;
  sweepOnly.sweep.range += 1;
  // Sweep changes separate the request identity but not the instance one.
  EXPECT_NE(fingerprint(a), fingerprint(sweepOnly));
  EXPECT_EQ(instanceKey(a), instanceKey(sweepOnly));
  EXPECT_EQ(instanceFingerprint(a), instanceFingerprint(sweepOnly));
  // Model content still separates.
  Request overlapped = baseRequest();
  overlapped.model = core::CommModel::kOverlapped;
  EXPECT_NE(instanceKey(a), instanceKey(overlapped));
  EXPECT_NE(instanceFingerprint(a), instanceFingerprint(overlapped));
  // The two key families can never collide (distinct version tags).
  EXPECT_NE(instanceKey(a), canonicalKey(a));
  // The one-walk pair agrees with the standalone functions.
  const RequestIdentity identity = instanceIdentity(a);
  EXPECT_EQ(identity.key, instanceKey(a));
  EXPECT_EQ(identity.fp, instanceFingerprint(a));
}

TEST(Fingerprint, HexIs32LowercaseDigits) {
  const std::string hex = fingerprint(baseRequest()).hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(Hash, RealCanonicalization) {
  core::Hasher plusZero;
  plusZero.real(Real(0));
  core::Hasher minusZero;
  minusZero.real(Real(-0.0));
  EXPECT_EQ(plusZero.digest(), minusZero.digest());

  core::Hasher a;
  a.real(1.5);
  core::Hasher b;
  b.real(1.5000000001);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, LengthPrefixPreventsSequenceAliasing) {
  core::Hasher a;
  a.reals({1, 2});
  a.reals({3});
  core::Hasher b;
  b.reals({1});
  b.reals({2, 3});
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace pipesched::service
