// SchedulingService: batch outcomes are byte-identical to serial
// per-request runs across scenarios and generated suites, cache hits return
// the same fronts as cold runs, dedupe shares work, and failures degrade
// gracefully.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "pipesched/fault/fault.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/workload/generator.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::service {
namespace {

/// The named scenarios on the lab cluster plus one generated suite per
/// experiment regime E1..E4 — the mix the acceptance criteria call out.
std::vector<Request> mixedRequests(std::size_t perKind, std::uint64_t seed) {
  const SweepSpec sweep{10, 3};
  std::vector<Request> requests;
  const core::Platform lab = workload::labCluster();
  for (workload::Scenario& scenario : workload::allScenarios()) {
    requests.push_back(Request{std::move(scenario.pipeline), lab,
                               core::CommModel::kSequential, sweep, scenario.name});
  }
  const workload::ExperimentKind kinds[] = {
      workload::ExperimentKind::kE1BalancedHomComm,
      workload::ExperimentKind::kE2BalancedHetComm,
      workload::ExperimentKind::kE3LargeComputations,
      workload::ExperimentKind::kE4SmallComputations,
  };
  workload::Rng rng(seed);
  for (const workload::ExperimentKind kind : kinds) {
    for (std::size_t i = 0; i < perKind; ++i) {
      workload::InstancePair pair = workload::randomInstance(kind, 8, 5, rng);
      std::ostringstream name;
      name << workload::experimentName(kind) << '-' << i;
      requests.push_back(Request{std::move(pair.pipeline), std::move(pair.platform),
                                 core::CommModel::kSequential, sweep, name.str()});
    }
  }
  return requests;
}

std::string renderBatch(const BatchResult& batch) {
  std::string out;
  for (const RequestOutcome& outcome : batch.outcomes) {
    out += describeOutcome(outcome);
    out += "---\n";
  }
  return out;
}

TEST(Service, BatchIsByteIdenticalToSerialAcrossScenariosAndSeeds) {
  for (const std::uint64_t seed : {1ull, 42ull}) {
    const std::vector<Request> requests = mixedRequests(2, seed);

    // Serial reference: zero threads, no cache — every request solved inline
    // in input order.
    ServiceConfig serialConfig;
    serialConfig.threads = 0;
    serialConfig.cacheCapacity = 0;
    SchedulingService serial(serialConfig);
    const BatchResult serialBatch = serial.solveBatch(requests);

    ServiceConfig pooledConfig;
    pooledConfig.threads = 4;
    SchedulingService pooled(pooledConfig);
    const BatchResult pooledBatch = pooled.solveBatch(requests);

    EXPECT_EQ(renderBatch(serialBatch), renderBatch(pooledBatch)) << "seed " << seed;
    EXPECT_EQ(serialBatch.stats.failed, 0u);
  }
}

TEST(Service, CacheHitsReturnTheSameFrontsAsColdRuns) {
  const std::vector<Request> requests = mixedRequests(1, 7);
  ServiceConfig config;
  config.threads = 2;
  SchedulingService svc(config);

  const BatchResult cold = svc.solveBatch(requests);
  ASSERT_EQ(cold.stats.failed, 0u);
  EXPECT_EQ(cold.stats.cacheHits, 0u);

  const BatchResult warm = svc.solveBatch(requests);
  EXPECT_EQ(warm.stats.cacheHits + warm.stats.deduped, warm.stats.requests);
  EXPECT_EQ(warm.stats.solved, 0u);

  ASSERT_EQ(cold.outcomes.size(), warm.outcomes.size());
  for (std::size_t i = 0; i < cold.outcomes.size(); ++i) {
    // Identical fronts, mappings included — only the provenance flag differs.
    RequestOutcome normalized = warm.outcomes[i];
    normalized.fromCache = false;
    normalized.deduped = false;
    EXPECT_EQ(describeOutcome(cold.outcomes[i]), describeOutcome(normalized)) << "slot " << i;
  }

  const CacheStats stats = svc.cacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(Service, IdenticalRequestsDedupeWithinOneBatch) {
  std::vector<Request> requests = mixedRequests(1, 3);
  const std::size_t base = requests.size();
  for (std::size_t i = 0; i < base; ++i) {
    Request copy = requests[i];
    copy.name = copy.name + "-duplicate";  // name must not defeat dedupe
    requests.push_back(std::move(copy));
  }

  ServiceConfig config;
  config.threads = 2;
  config.cacheCapacity = 0;  // isolate in-batch dedupe from the cache
  SchedulingService svc(config);
  const BatchResult batch = svc.solveBatch(requests);

  EXPECT_EQ(batch.stats.requests, 2 * base);
  EXPECT_EQ(batch.stats.solved, base);
  EXPECT_EQ(batch.stats.deduped, base);
  for (std::size_t i = 0; i < base; ++i) {
    EXPECT_FALSE(batch.outcomes[i].deduped);
    EXPECT_TRUE(batch.outcomes[base + i].deduped);
    EXPECT_EQ(describeOutcome(batch.outcomes[i]),
              [&] {
                RequestOutcome normalized = batch.outcomes[base + i];
                normalized.deduped = false;
                return describeOutcome(normalized);
              }())
        << "slot " << i;
  }
}

TEST(Service, SolveUsesTheCache) {
  const std::vector<Request> requests = mixedRequests(1, 5);
  SchedulingService svc(ServiceConfig{.threads = 2});
  const RequestOutcome cold = svc.solve(requests.front());
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.fromCache);
  const RequestOutcome hit = svc.solve(requests.front());
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.fromCache);
  RequestOutcome normalized = hit;
  normalized.fromCache = false;
  EXPECT_EQ(describeOutcome(cold), describeOutcome(normalized));
}

TEST(Service, MalformedRequestFailsItsSlotOnly) {
  std::vector<Request> requests = mixedRequests(1, 9);
  requests[1].sweep.points = 0;  // runPortfolio rejects this
  ServiceConfig config;
  config.threads = 2;
  SchedulingService svc(config);
  const BatchResult batch = svc.solveBatch(requests);
  EXPECT_EQ(batch.stats.failed, 1u);
  EXPECT_FALSE(batch.outcomes[1].ok);
  EXPECT_FALSE(batch.outcomes[1].error.empty());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(batch.outcomes[i].ok) << "slot " << i;
  }
}

TEST(Service, BudgetExhaustionDegradesGracefullyThroughTheBatchApi) {
  ServiceConfig config;
  config.threads = 2;
  config.portfolio.useExact = false;
  config.portfolio.budget.maxRunsPerSolver = 1;
  SchedulingService svc(config);
  const BatchResult batch = svc.solveBatch(mixedRequests(1, 2));
  EXPECT_EQ(batch.stats.failed, 0u);
  for (const RequestOutcome& outcome : batch.outcomes) {
    ASSERT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.result.budgetExhausted);
    EXPECT_FALSE(outcome.result.front.empty());  // partial front, not a crash
  }
}

TEST(Service, StatsAccounting) {
  const std::vector<Request> requests = mixedRequests(1, 4);
  SchedulingService svc(ServiceConfig{.threads = 2});
  const BatchResult batch = svc.solveBatch(requests);
  EXPECT_EQ(batch.stats.requests, requests.size());
  EXPECT_EQ(batch.stats.solved + batch.stats.cacheHits + batch.stats.deduped +
                batch.stats.failed,
            requests.size());
  EXPECT_GE(batch.stats.wallSeconds, 0.0);
  EXPECT_GT(batch.stats.requestsPerSecond, 0.0);
}

TEST(Service, StatsBucketsArePartitionEvenWithFailedDuplicates) {
  // Two identical malformed requests: the duplicate of a failed group must
  // count under `failed`, not `deduped`, so the buckets sum to `requests`.
  std::vector<Request> requests = mixedRequests(1, 6);
  requests[0].sweep.points = 0;
  Request duplicate = requests[0];
  duplicate.name = "failed-twin";
  requests.push_back(std::move(duplicate));

  SchedulingService svc(ServiceConfig{.threads = 2});
  const BatchResult batch = svc.solveBatch(requests);
  EXPECT_EQ(batch.stats.failed, 2u);
  EXPECT_EQ(batch.stats.deduped, 0u);
  EXPECT_TRUE(batch.outcomes.back().deduped);  // the flag still records sharing
  EXPECT_FALSE(batch.outcomes.back().ok);
  EXPECT_EQ(batch.stats.solved + batch.stats.cacheHits + batch.stats.deduped +
                batch.stats.failed,
            requests.size());
}

TEST(Service, DegradedResultsAreNeverCached) {
  // A member fault degrades the first solve; once the fault clears, the same
  // request must be re-solved fresh — serving a cached partial front to a
  // healthy client would be a silent quality loss.
  const std::vector<Request> requests = mixedRequests(1, 17);
  ServiceConfig config;
  config.threads = 2;
  config.portfolio.useExact = false;
  SchedulingService svc(config);

  RequestOutcome degraded;
  {
    fault::ScopedFaultSpec scope("member.H2");
    degraded = svc.solve(requests.front());
  }
  ASSERT_TRUE(degraded.ok);
  EXPECT_TRUE(degraded.result.degraded);
  EXPECT_FALSE(degraded.fromCache);

  const RequestOutcome healthy = svc.solve(requests.front());
  ASSERT_TRUE(healthy.ok);
  EXPECT_FALSE(healthy.fromCache);  // the degraded result was not cached
  EXPECT_FALSE(healthy.result.degraded);
  // The healthy re-solve is at least as good: it was actually recomputed.
  EXPECT_GE(healthy.result.front.size(), 1u);

  // And a healthy result IS cached as usual.
  EXPECT_TRUE(svc.solve(requests.front()).fromCache);
}

TEST(Service, CacheFaultSitesBypassTheCacheWithoutFailingRequests) {
  const std::vector<Request> requests = mixedRequests(1, 19);
  ServiceConfig config;
  config.threads = 2;
  config.portfolio.useExact = false;
  SchedulingService svc(config);

  {
    // cache.put armed: the solve succeeds but nothing is stored.
    fault::ScopedFaultSpec scope("cache.put");
    const RequestOutcome outcome = svc.solve(requests.front());
    ASSERT_TRUE(outcome.ok);
    EXPECT_FALSE(outcome.result.degraded);  // cache faults don't degrade results
  }
  {
    // cache.get armed: the lookup is skipped, so this re-solves (no hit),
    // and the put (disarmed now) stores it.
    fault::ScopedFaultSpec scope("cache.get");
    const RequestOutcome outcome = svc.solve(requests.front());
    ASSERT_TRUE(outcome.ok);
    EXPECT_FALSE(outcome.fromCache);
  }
  // Fully disarmed: the entry stored on the previous solve now hits.
  EXPECT_TRUE(svc.solve(requests.front()).fromCache);
}

TEST(Service, OverlappedModelProducesItsOwnFronts) {
  workload::Rng rng(15);
  workload::InstancePair pair =
      workload::randomInstance(workload::ExperimentKind::kE4SmallComputations, 8, 5, rng);
  Request sequential{pair.pipeline, pair.platform, core::CommModel::kSequential,
                     SweepSpec{8, 3}, "seq"};
  Request overlapped = sequential;
  overlapped.model = core::CommModel::kOverlapped;

  SchedulingService svc(ServiceConfig{.threads = 2});
  const BatchResult batch = svc.solveBatch({sequential, overlapped});
  EXPECT_EQ(batch.stats.failed, 0u);
  EXPECT_EQ(batch.stats.deduped, 0u);  // different models must not dedupe
  EXPECT_EQ(batch.stats.solved, 2u);
}

}  // namespace
}  // namespace pipesched::service
