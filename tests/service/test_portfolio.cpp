// Portfolio solver: pooled == serial, heuristic-study consistency, exact
// membership on small instances, budget degradation.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "pipesched/exact/exhaustive.hpp"
#include "pipesched/exp/pareto_study.hpp"
#include "pipesched/fault/fault.hpp"
#include "pipesched/service/portfolio.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::service {
namespace {

workload::InstancePair instanceFor(workload::ExperimentKind kind, std::size_t n, std::size_t p,
                                   std::uint64_t seed) {
  workload::Rng rng(seed);
  return workload::randomInstance(kind, n, p, rng);
}

void expectSameFront(const std::vector<core::ParetoPoint>& a,
                     const std::vector<core::ParetoPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].period, b[i].period) << "point " << i;
    EXPECT_EQ(a[i].latency, b[i].latency) << "point " << i;
    ASSERT_EQ(a[i].mapping.has_value(), b[i].mapping.has_value()) << "point " << i;
    if (a[i].mapping) EXPECT_EQ(*a[i].mapping, *b[i].mapping) << "point " << i;
  }
}

TEST(Portfolio, PooledRunEqualsSerialRun) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 12, 8, 7);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const SweepSpec sweep{12, 3};
  const PortfolioResult serial = runPortfolio(eval, sweep);
  ThreadPool pool(4);
  const PortfolioResult pooled = runPortfolio(eval, sweep, PortfolioConfig{}, &pool);
  expectSameFront(serial.front, pooled.front);
  ASSERT_EQ(serial.solvers.size(), pooled.solvers.size());
  for (std::size_t i = 0; i < serial.solvers.size(); ++i) {
    EXPECT_EQ(serial.solvers[i].solver, pooled.solvers[i].solver);
    EXPECT_EQ(serial.solvers[i].points, pooled.solvers[i].points);
  }
}

TEST(Portfolio, MatchesParetoStudyWhenExactDisabled) {
  const auto inst = instanceFor(workload::ExperimentKind::kE1BalancedHomComm, 10, 8, 3);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.useExact = false;
  const SweepSpec sweep{16, 3};
  const PortfolioResult result = runPortfolio(eval, sweep, config);
  EXPECT_FALSE(result.exactUsed);

  exp::ParetoStudyConfig studyConfig;
  studyConfig.pointsPerHeuristic = sweep.points;
  studyConfig.range = sweep.range;
  const exp::ParetoStudy study = exp::runParetoStudy(eval, studyConfig);
  expectSameFront(study.merged, result.front);
}

TEST(Portfolio, ExactJoinsOnSmallInstancesAndItsFrontSurvivesMerging) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 6, 4, 11);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  const PortfolioConfig config;
  ASSERT_TRUE(exactEligible(6, 4, config));
  const PortfolioResult result = runPortfolio(eval, SweepSpec{8, 3}, config);
  EXPECT_TRUE(result.exactUsed);
  ASSERT_EQ(result.solvers.size(), 7u);
  EXPECT_EQ(result.solvers.back().solver, "exact");
  EXPECT_TRUE(result.solvers.back().completed);

  // The exact front is globally optimal, so the merged portfolio front must
  // carry exactly its coordinates.
  const auto exactFront = exact::exhaustiveParetoFront(eval);
  ASSERT_EQ(result.front.size(), exactFront.size());
  for (std::size_t i = 0; i < exactFront.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.front[i].period, exactFront[i].period);
    EXPECT_DOUBLE_EQ(result.front[i].latency, exactFront[i].latency);
  }
}

TEST(Portfolio, ExactEligibilityRespectsLimits) {
  PortfolioConfig config;
  config.exactCellLimit = 48;
  config.exactProcessorLimit = 6;
  EXPECT_TRUE(exactEligible(8, 5, config));    // 40 cells
  EXPECT_FALSE(exactEligible(10, 5, config));  // 50 cells
  EXPECT_FALSE(exactEligible(4, 7, config));   // p over the limit
  config.useExact = false;
  EXPECT_FALSE(exactEligible(8, 5, config));
}

TEST(Portfolio, WorkBudgetDegradesGracefully) {
  const auto inst = instanceFor(workload::ExperimentKind::kE3LargeComputations, 12, 8, 5);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig tight;
  tight.useExact = false;
  tight.budget.maxRunsPerSolver = 2;
  const PortfolioResult partial = runPortfolio(eval, SweepSpec{16, 3}, tight);
  EXPECT_TRUE(partial.budgetExhausted);
  for (const SolverContribution& c : partial.solvers) {
    EXPECT_FALSE(c.completed) << c.solver;
    EXPECT_LE(c.points, 2u) << c.solver;
  }
  // Partial, but still a usable front: the first grid point of the period
  // family is its exhaustion threshold, which always succeeds.
  EXPECT_FALSE(partial.front.empty());

  // And the full run covers the partial one: every partial front point is
  // matched or dominated by some full front point (the partial point set is
  // a subset of the full one).
  PortfolioConfig full;
  full.useExact = false;
  const PortfolioResult complete = runPortfolio(eval, SweepSpec{16, 3}, full);
  EXPECT_FALSE(complete.budgetExhausted);
  for (const core::ParetoPoint& p : partial.front) {
    bool covered = false;
    for (const core::ParetoPoint& q : complete.front) {
      if (lessOrNearlyEqual(q.period, p.period) && lessOrNearlyEqual(q.latency, p.latency)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "partial point (" << p.period << ", " << p.latency
                         << ") not covered by the full front";
  }
}

TEST(Portfolio, TimeBudgetZeroMeansUnlimited) {
  const auto inst = instanceFor(workload::ExperimentKind::kE4SmallComputations, 8, 5, 9);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.useExact = false;
  config.budget.timeBudgetMs = 0;
  const PortfolioResult result = runPortfolio(eval, SweepSpec{6, 2}, config);
  EXPECT_FALSE(result.budgetExhausted);
}

TEST(Portfolio, ExactMappingLimitFallsBackToHeuristics) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 8, 5, 13);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.budget.exactMappingLimit = 10;  // absurdly tight: the enumerator aborts
  const PortfolioResult result = runPortfolio(eval, SweepSpec{8, 3}, config);
  EXPECT_TRUE(result.exactUsed);
  EXPECT_TRUE(result.budgetExhausted);
  ASSERT_EQ(result.solvers.size(), 7u);
  EXPECT_FALSE(result.solvers.back().completed);
  EXPECT_EQ(result.solvers.back().points, 0u);
  EXPECT_FALSE(result.front.empty());  // heuristics still delivered
}

TEST(Portfolio, RejectsInvalidSweep) {
  const auto inst = instanceFor(workload::ExperimentKind::kE1BalancedHomComm, 5, 3, 1);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  EXPECT_THROW((void)runPortfolio(eval, SweepSpec{0, 3}), ModelError);
  EXPECT_THROW((void)runPortfolio(eval, SweepSpec{8, 1}), ModelError);
}

TEST(Portfolio, ExpiredRequestDeadlineYieldsExplicitlyDegradedResult) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 10, 6, 21);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.useExact = false;
  Deadline expired = Deadline::in(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const PortfolioResult result =
      runPortfolio(eval, SweepSpec{12, 3}, config, nullptr, nullptr, expired);
  // Every member was cut before starting: the cut is flagged, never silent.
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.budgetExhausted);
  for (const SolverContribution& c : result.solvers) {
    EXPECT_FALSE(c.completed) << c.solver;
    EXPECT_EQ(c.points, 0u) << c.solver;
  }
}

TEST(Portfolio, UnboundedDeadlineChangesNothing) {
  const auto inst = instanceFor(workload::ExperimentKind::kE4SmallComputations, 8, 5, 9);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.useExact = false;
  const PortfolioResult plain = runPortfolio(eval, SweepSpec{6, 2}, config);
  const PortfolioResult withInactive =
      runPortfolio(eval, SweepSpec{6, 2}, config, nullptr, nullptr, Deadline{});
  EXPECT_FALSE(withInactive.degraded);
  EXPECT_FALSE(withInactive.budgetExhausted);
  expectSameFront(plain.front, withInactive.front);
}

TEST(Portfolio, MemberFaultIsContainedAndFlagsDegradation) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 10, 6, 33);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.useExact = false;

  const PortfolioResult healthy = runPortfolio(eval, SweepSpec{8, 3}, config);

  fault::ScopedFaultSpec scope("member.H3");
  const PortfolioResult wounded = runPortfolio(eval, SweepSpec{8, 3}, config);
  EXPECT_TRUE(wounded.degraded);
  EXPECT_FALSE(wounded.front.empty());  // the other members still delivered
  bool sawFailure = false;
  for (const SolverContribution& c : wounded.solvers) {
    // Fault sites are keyed by member id ("H3"); contributions carry the
    // descriptive solver name ("H3-...") — match on the prefix.
    if (c.solver.rfind("H3", 0) == 0) {
      EXPECT_TRUE(c.failed);
      EXPECT_FALSE(c.completed);
      sawFailure = true;
    } else {
      EXPECT_FALSE(c.failed) << c.solver;  // failure stays contained
      EXPECT_TRUE(c.completed) << c.solver;
    }
  }
  EXPECT_TRUE(sawFailure);
  // Every wounded front point is covered by the healthy run: losing a member
  // never invents better points.
  for (const core::ParetoPoint& p : wounded.front) {
    bool covered = false;
    for (const core::ParetoPoint& q : healthy.front) {
      if (lessOrNearlyEqual(q.period, p.period) && lessOrNearlyEqual(q.latency, p.latency)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "(" << p.period << ", " << p.latency << ")";
  }
}

TEST(Portfolio, MemberFaultInPooledRunIsContainedToo) {
  const auto inst = instanceFor(workload::ExperimentKind::kE2BalancedHetComm, 10, 6, 34);
  const core::Evaluator eval(inst.pipeline, inst.platform);
  PortfolioConfig config;
  config.useExact = false;
  ThreadPool pool(4);
  fault::ScopedFaultSpec scope("member.H1");
  const PortfolioResult result = runPortfolio(eval, SweepSpec{8, 3}, config, &pool);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.front.empty());
}

}  // namespace
}  // namespace pipesched::service
