// Cross-request work sharing (ISSUE 4): the instance-keyed sub-result cache
// may only ever SKIP redundant work, never change a result.
//   * differential guarantee — fronts (describeOutcome bytes) are identical
//     with sharing on vs off, serial and pooled, across a warm-sweep workload;
//   * a neighbouring sweep (2P-1 points over the same range) reuses exactly
//     the P thresholds it shares with a cached P-point sweep, plus the
//     members' grid anchors;
//   * refiners warm-start from the base heuristic's cached seed instead of
//     re-running it, with byte-identical refined points;
//   * truncated exact units are never published (a cached unit must stand
//     for the complete computation its key names);
//   * eviction pressure on a tiny sub-cache degrades work saved, never bytes;
//   * the off switch (flag or zero capacity) really is off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pipesched/service/service.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::service {
namespace {

workload::InstancePair suiteInstance(std::size_t i, std::size_t stages = 12,
                                     std::size_t processors = 6) {
  static constexpr workload::ExperimentKind kKinds[] = {
      workload::ExperimentKind::kE1BalancedHomComm,
      workload::ExperimentKind::kE2BalancedHetComm,
      workload::ExperimentKind::kE3LargeComputations,
      workload::ExperimentKind::kE4SmallComputations,
  };
  workload::Rng rng(4000 + i);
  return workload::randomInstance(kKinds[i % 4], stages, processors, rng);
}

Request requestFor(std::size_t i, const SweepSpec& sweep, std::size_t stages = 12,
                   std::size_t processors = 6) {
  workload::InstancePair inst = suiteInstance(i, stages, processors);
  return Request{std::move(inst.pipeline), std::move(inst.platform),
                 core::CommModel::kSequential, sweep,
                 "share-" + std::to_string(i) + "@" + std::to_string(sweep.points)};
}

/// The warm-sweep workload: every instance swept at P points, then again at
/// 2P-1 points over the same range — the wider grid's even-indexed
/// thresholds all coincide with the narrow grid's (exact double equality:
/// lo + (hi-lo)*2i/(2P-2) == lo + (hi-lo)*i/(P-1)).
std::vector<Request> warmSweepWorkload(std::size_t instances, std::size_t narrow) {
  std::vector<Request> requests;
  for (std::size_t i = 0; i < instances; ++i) {
    requests.push_back(requestFor(i, SweepSpec{narrow, 3}));
  }
  for (std::size_t i = 0; i < instances; ++i) {
    requests.push_back(requestFor(i, SweepSpec{2 * narrow - 1, 3}));
  }
  return requests;
}

std::string renderAll(SchedulingService& svc, const std::vector<Request>& requests) {
  std::string rendered;
  for (const Request& request : requests) {
    rendered += describeOutcome(svc.solve(request));
  }
  return rendered;
}

ServiceConfig sharedConfig(bool share, std::size_t threads = 0) {
  ServiceConfig config;
  config.threads = threads;
  config.cacheCapacity = 0;  // isolate the sub-result layer from whole hits
  config.shareSubResults = share;
  return config;
}

TEST(SubResultShare, FrontsByteIdenticalSharedVsColdSerial) {
  const std::vector<Request> workload = warmSweepWorkload(4, 5);
  SchedulingService shared(sharedConfig(true));
  SchedulingService cold(sharedConfig(false));
  EXPECT_EQ(renderAll(shared, workload), renderAll(cold, workload));
  EXPECT_GT(shared.subCacheStats().hits, 0u);
  EXPECT_EQ(cold.subCacheStats().hits, 0u);
}

TEST(SubResultShare, FrontsByteIdenticalSharedVsColdPooled) {
  // Pooled: portfolio members race on the service pool while publishing and
  // consuming sub-results concurrently; the batch path additionally solves
  // different sweeps of the same instance in parallel.
  const std::vector<Request> workload = warmSweepWorkload(4, 5);
  SchedulingService cold(sharedConfig(false));
  const std::string reference = renderAll(cold, workload);
  SchedulingService sharedPool(sharedConfig(true, 2));
  EXPECT_EQ(renderAll(sharedPool, workload), reference);
  SchedulingService sharedBatch(sharedConfig(true, 4));
  const BatchResult batch = sharedBatch.solveBatch(workload);
  std::string batched;
  for (const RequestOutcome& outcome : batch.outcomes) batched += describeOutcome(outcome);
  EXPECT_EQ(batched, reference);
}

TEST(SubResultShare, WarmSweepReusesExactlyTheSharedThresholds) {
  // n=12, p=6: 72 cells, exact ineligible — the default race is the six
  // sweeping heuristics. A 9-point warm sweep over a cached 5-point sweep
  // shares 5 thresholds per member (ends + every even index) and all six
  // grid anchors.
  const Request narrow = requestFor(0, SweepSpec{5, 3});
  const Request wide = requestFor(0, SweepSpec{9, 3});
  SchedulingService svc(sharedConfig(true));
  const BatchResult coldPass = svc.solveBatch({narrow});
  EXPECT_EQ(coldPass.stats.subHits, 0u);
  const BatchResult warmPass = svc.solveBatch({wide});
  EXPECT_EQ(warmPass.stats.subUnitsReused, 6u * 5u);
  EXPECT_EQ(warmPass.stats.subHits, 6u * 5u + 6u);
  // Per-member accounting matches: each sweeping member reused 5 of 9 units.
  ASSERT_EQ(warmPass.stats.members.size(), 6u);
  for (const MemberBatchStats& m : warmPass.stats.members) {
    EXPECT_EQ(m.reused, 5u) << m.solver;
    EXPECT_EQ(m.seeded, 1u) << m.solver;  // the cached grid anchor
  }
}

TEST(SubResultShare, RefinersWarmStartFromCachedBaseSeeds) {
  // Serial member order is H1, ls:H1, sa:H1: the base member publishes its
  // raw result at every threshold, both refiners consume it (plus the shared
  // grid anchor) instead of re-running H1 — and the refined points must be
  // byte-identical to the re-seeding-from-scratch cold path.
  const SweepSpec sweep{5, 3};
  ServiceConfig config = sharedConfig(true);
  config.portfolio.members = {"H1", "ls:H1", "sa:H1"};
  config.portfolio.annealingMoves = 300;
  ServiceConfig coldConfig = config;
  coldConfig.shareSubResults = false;
  const Request request = requestFor(1, sweep);
  SchedulingService shared(config);
  SchedulingService cold(coldConfig);
  const RequestOutcome warm = shared.solve(request);
  EXPECT_EQ(describeOutcome(warm), describeOutcome(cold.solve(request)));
  ASSERT_EQ(warm.result.solvers.size(), 3u);
  EXPECT_EQ(warm.result.solvers[0].seeded, 0u);              // H1 ran cold
  EXPECT_EQ(warm.result.solvers[1].seeded, sweep.points + 1);  // ls:H1: 5 seeds + anchor
  EXPECT_EQ(warm.result.solvers[2].seeded, sweep.points + 1);  // sa:H1: likewise
  EXPECT_EQ(warm.result.solvers[1].reused, 0u);  // warm-started, not skipped
}

TEST(SubResultShare, TruncatedExactUnitsAreNeverPublished) {
  // With a mapping limit of 1 the exact member truncates; were its (empty)
  // unit published, a warm sweep would report the member completed and the
  // canonical rendering would drift from the cold solve's "exact:0!".
  ServiceConfig config = sharedConfig(true);
  config.portfolio.budget.exactMappingLimit = 1;
  ServiceConfig coldConfig = config;
  coldConfig.shareSubResults = false;
  const Request narrow = requestFor(2, SweepSpec{4, 3}, /*stages=*/4, /*processors=*/3);
  const Request wide = requestFor(2, SweepSpec{7, 3}, /*stages=*/4, /*processors=*/3);
  SchedulingService shared(config);
  SchedulingService cold(coldConfig);
  (void)shared.solve(narrow);
  (void)cold.solve(narrow);
  const RequestOutcome warm = shared.solve(wide);
  EXPECT_EQ(describeOutcome(warm), describeOutcome(cold.solve(wide)));
  EXPECT_TRUE(warm.result.budgetExhausted);
}

TEST(SubResultShare, EvictionPressureDegradesWorkSavedNeverBytes) {
  const std::vector<Request> workload = warmSweepWorkload(3, 5);
  ServiceConfig tiny = sharedConfig(true);
  tiny.subCacheCapacity = 8;  // constant eviction churn
  tiny.subCacheShards = 2;
  SchedulingService small(tiny);
  SchedulingService cold(sharedConfig(false));
  EXPECT_EQ(renderAll(small, workload), renderAll(cold, workload));
  EXPECT_GT(small.subCacheStats().evictions, 0u);
}

TEST(SubResultShare, OffSwitchesReallyDisableTheSubCache) {
  const std::vector<Request> workload = warmSweepWorkload(2, 5);
  ServiceConfig off = sharedConfig(false);
  SchedulingService offSvc(off);
  for (const Request& r : workload) (void)offSvc.solve(r);
  CacheStats stats = offSvc.subCacheStats();
  EXPECT_EQ(stats.hits + stats.misses + stats.insertions, 0u);

  ServiceConfig zero = sharedConfig(true);
  zero.subCacheCapacity = 0;
  SchedulingService zeroSvc(zero);
  for (const Request& r : workload) (void)zeroSvc.solve(r);
  stats = zeroSvc.subCacheStats();
  EXPECT_EQ(stats.hits + stats.misses + stats.insertions, 0u);
}

TEST(SubResultShare, InstanceIdentityIsSweepIndependent) {
  const Request narrow = requestFor(0, SweepSpec{5, 3});
  Request wide = requestFor(0, SweepSpec{9, 2});
  wide.name = "another label";
  // Same instance, different sweep + name: one sub-result identity, two
  // whole-result identities.
  EXPECT_EQ(instanceKey(narrow), instanceKey(wide));
  EXPECT_EQ(instanceFingerprint(narrow), instanceFingerprint(wide));
  EXPECT_NE(canonicalKey(narrow), canonicalKey(wide));
  // Different instance or comm model: different identity.
  const Request other = requestFor(1, SweepSpec{5, 3});
  EXPECT_NE(instanceKey(narrow), instanceKey(other));
  Request overlapped = requestFor(0, SweepSpec{5, 3});
  overlapped.model = core::CommModel::kOverlapped;
  EXPECT_NE(instanceKey(narrow), instanceKey(overlapped));
  // The one-walk pair matches the two standalone functions.
  const RequestIdentity identity = instanceIdentity(narrow);
  EXPECT_EQ(identity.key, instanceKey(narrow));
  EXPECT_EQ(identity.fp, instanceFingerprint(narrow));
}

}  // namespace
}  // namespace pipesched::service
