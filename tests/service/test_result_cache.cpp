// Sharded LRU cache: hit/miss semantics, eviction order, stats, and safety
// under concurrent access.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "pipesched/service/result_cache.hpp"

namespace pipesched::service {
namespace {

Fingerprint fp(std::uint64_t n) { return Fingerprint{n, ~n}; }

PortfolioResult resultWithFrontSize(std::size_t points) {
  PortfolioResult r;
  for (std::size_t i = 0; i < points; ++i) {
    // Strictly improving latency for increasing period: a valid front.
    r.front.push_back(core::ParetoPoint{Real(i + 1), Real(points - i), std::nullopt});
  }
  return r;
}

TEST(ResultCache, MissThenHitRoundTrip) {
  ResultCache cache(8, 2);
  EXPECT_FALSE(cache.get(fp(1), "k1").has_value());
  cache.put(fp(1), "k1", resultWithFrontSize(3));
  const auto hit = cache.get(fp(1), "k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->front.size(), 3u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, LruEvictsOldestWithinShard) {
  // Single shard so the LRU order is global and observable.
  ResultCache cache(2, 1);
  cache.put(fp(1), "a", resultWithFrontSize(1));
  cache.put(fp(2), "b", resultWithFrontSize(2));
  ASSERT_TRUE(cache.get(fp(1), "a").has_value());  // refresh "a"; "b" is now LRU
  cache.put(fp(3), "c", resultWithFrontSize(3));   // evicts "b"
  EXPECT_TRUE(cache.get(fp(1), "a").has_value());
  EXPECT_FALSE(cache.get(fp(2), "b").has_value());
  EXPECT_TRUE(cache.get(fp(3), "c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCache, PutRefreshesExistingKey) {
  ResultCache cache(4, 1);
  cache.put(fp(1), "k", resultWithFrontSize(1));
  cache.put(fp(1), "k", resultWithFrontSize(5));
  const auto hit = cache.get(fp(1), "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->front.size(), 5u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.put(fp(1), "k", resultWithFrontSize(1));
  EXPECT_FALSE(cache.get(fp(1), "k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(8);
  cache.put(fp(1), "k", resultWithFrontSize(1));
  ASSERT_TRUE(cache.get(fp(1), "k").has_value());
  cache.clear();
  EXPECT_FALSE(cache.get(fp(1), "k").has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCache, ShardingSpreadsByFingerprint) {
  ResultCache cache(64, 8);
  EXPECT_EQ(cache.shardCount(), 8u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.put(fp(i), "k" + std::to_string(i), resultWithFrontSize(1));
  }
  // Per-shard capacity is 8; with fp.hi == i the keys round-robin the shards,
  // so nothing is evicted.
  EXPECT_EQ(cache.stats().entries, 64u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, ConcurrentMixedTrafficStaysConsistent) {
  ResultCache cache(32, 4);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>((t * 7 + i) % 48);
        const std::string key = "k" + std::to_string(id);
        if (const auto hit = cache.get(fp(id), key)) {
          // A hit must carry the front stored for this id.
          ASSERT_EQ(hit->front.size(), static_cast<std::size_t>(id % 5 + 1));
        } else {
          cache.put(fp(id), key, resultWithFrontSize(id % 5 + 1));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_LE(stats.entries, 32u);
}

TEST(ResultCache, ConcurrentGetPutClearStaysCoherent) {
  // The async engine's traffic shape: readers and writers racing a
  // periodically clearing administrator. Value correctness on every hit,
  // counter coherence at the end, capacity respected throughout.
  ResultCache cache(32, 4);
  constexpr int kWorkers = 3;
  constexpr int kOpsPerThread = 400;
  std::atomic<std::uint64_t> gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&cache, &gets, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>((t * 11 + i) % 40);
        const std::string key = "k" + std::to_string(id);
        if (const auto hit = cache.get(fp(id), key)) {
          // clear() may race us, but a hit must never be stale or torn.
          ASSERT_EQ(hit->front.size(), static_cast<std::size_t>(id % 5 + 1));
        } else {
          cache.put(fp(id), key, resultWithFrontSize(id % 5 + 1));
        }
        gets.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < 40; ++i) {
      cache.clear();
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, gets.load());
  EXPECT_LE(stats.entries, 32u);
  EXPECT_GE(stats.insertions, stats.misses > 0 ? 1u : 0u);
  // The cache still works after the storm.
  cache.put(fp(1000), "after", resultWithFrontSize(2));
  ASSERT_TRUE(cache.get(fp(1000), "after").has_value());
}

}  // namespace
}  // namespace pipesched::service
