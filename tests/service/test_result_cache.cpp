// Sharded LRU stores: hit/miss semantics, eviction order, stats, safety
// under concurrent access, and the per-shard capacity semantics — pinned for
// both instantiations (whole-result cache and sub-result store).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "pipesched/core/mapping.hpp"
#include "pipesched/service/portfolio.hpp"
#include "pipesched/service/result_cache.hpp"

namespace pipesched::service {
namespace {

Fingerprint fp(std::uint64_t n) { return Fingerprint{n, ~n}; }

PortfolioResult resultWithFrontSize(std::size_t points) {
  PortfolioResult r;
  for (std::size_t i = 0; i < points; ++i) {
    // Strictly improving latency for increasing period: a valid front.
    r.front.push_back(core::ParetoPoint{Real(i + 1), Real(points - i), std::nullopt});
  }
  return r;
}

TEST(ResultCache, MissThenHitRoundTrip) {
  ResultCache cache(8, 2);
  EXPECT_FALSE(cache.get(fp(1), "k1").has_value());
  cache.put(fp(1), "k1", resultWithFrontSize(3));
  const auto hit = cache.get(fp(1), "k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->front.size(), 3u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, LruEvictsOldestWithinShard) {
  // Single shard so the LRU order is global and observable.
  ResultCache cache(2, 1);
  cache.put(fp(1), "a", resultWithFrontSize(1));
  cache.put(fp(2), "b", resultWithFrontSize(2));
  ASSERT_TRUE(cache.get(fp(1), "a").has_value());  // refresh "a"; "b" is now LRU
  cache.put(fp(3), "c", resultWithFrontSize(3));   // evicts "b"
  EXPECT_TRUE(cache.get(fp(1), "a").has_value());
  EXPECT_FALSE(cache.get(fp(2), "b").has_value());
  EXPECT_TRUE(cache.get(fp(3), "c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCache, PutRefreshesExistingKey) {
  ResultCache cache(4, 1);
  cache.put(fp(1), "k", resultWithFrontSize(1));
  cache.put(fp(1), "k", resultWithFrontSize(5));
  const auto hit = cache.get(fp(1), "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->front.size(), 5u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.put(fp(1), "k", resultWithFrontSize(1));
  EXPECT_FALSE(cache.get(fp(1), "k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(8);
  cache.put(fp(1), "k", resultWithFrontSize(1));
  ASSERT_TRUE(cache.get(fp(1), "k").has_value());
  cache.clear();
  EXPECT_FALSE(cache.get(fp(1), "k").has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCache, ShardingSpreadsByFingerprint) {
  ResultCache cache(64, 8);
  EXPECT_EQ(cache.shardCount(), 8u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.put(fp(i), "k" + std::to_string(i), resultWithFrontSize(1));
  }
  // Per-shard capacity is 8; with fp.hi == i the keys round-robin the shards,
  // so nothing is evicted.
  EXPECT_EQ(cache.stats().entries, 64u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, ConcurrentMixedTrafficStaysConsistent) {
  ResultCache cache(32, 4);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>((t * 7 + i) % 48);
        const std::string key = "k" + std::to_string(id);
        if (const auto hit = cache.get(fp(id), key)) {
          // A hit must carry the front stored for this id.
          ASSERT_EQ(hit->front.size(), static_cast<std::size_t>(id % 5 + 1));
        } else {
          cache.put(fp(id), key, resultWithFrontSize(id % 5 + 1));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_LE(stats.entries, 32u);
}

TEST(ResultCache, ConcurrentGetPutClearStaysCoherent) {
  // The async engine's traffic shape: readers and writers racing a
  // periodically clearing administrator. Value correctness on every hit,
  // counter coherence at the end, capacity respected throughout.
  ResultCache cache(32, 4);
  constexpr int kWorkers = 3;
  constexpr int kOpsPerThread = 400;
  std::atomic<std::uint64_t> gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&cache, &gets, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>((t * 11 + i) % 40);
        const std::string key = "k" + std::to_string(id);
        if (const auto hit = cache.get(fp(id), key)) {
          // clear() may race us, but a hit must never be stale or torn.
          ASSERT_EQ(hit->front.size(), static_cast<std::size_t>(id % 5 + 1));
        } else {
          cache.put(fp(id), key, resultWithFrontSize(id % 5 + 1));
        }
        gets.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < 40; ++i) {
      cache.clear();
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, gets.load());
  EXPECT_LE(stats.entries, 32u);
  EXPECT_GE(stats.insertions, stats.misses > 0 ? 1u : 0u);
  // The cache still works after the storm.
  cache.put(fp(1000), "after", resultWithFrontSize(2));
  ASSERT_TRUE(cache.get(fp(1000), "after").has_value());
}

// ---------------------------------------------------------------------------
// Capacity semantics across shard counts, pinned for BOTH instantiations.
//
// Intended semantics: the configured capacity is spread at
// ceil(capacity/shards) entries *per shard*, so total residency may exceed
// `capacity` by up to shards-1 entries under an even key spread — the bound
// is per-shard by design (a global LRU would serialize on one lock).

/// Marker-carrying value factories so the harness can verify round-trips.
PortfolioResult makeWholeValue(std::size_t marker) { return resultWithFrontSize(marker); }

SubResult makeSubValue(std::size_t marker) {
  SubResult memo;
  for (std::size_t i = 0; i < marker; ++i) {
    memo.points.push_back(core::ParetoPoint{Real(i + 1), Real(marker - i), std::nullopt});
  }
  memo.scalar = Real(marker);
  return memo;
}

std::size_t markerOf(const PortfolioResult& v) { return v.front.size(); }
std::size_t markerOf(const SubResult& v) { return v.points.size(); }

/// Targets shard `s` of `shards` directly: shardFor uses fp.hi % shards.
Fingerprint shardFp(std::size_t s, std::size_t shards, std::size_t salt) {
  return Fingerprint{s + shards * salt, 0};
}

template <typename Store, typename Make>
void expectPerShardCeilDivisionSemantics(Make make) {
  // ceil(capacity / shards) per shard; shard count clamps to capacity.
  EXPECT_EQ(Store(8, 2).perShardCapacity(), 4u);
  EXPECT_EQ(Store(8, 3).perShardCapacity(), 3u);
  EXPECT_EQ(Store(7, 2).perShardCapacity(), 4u);
  EXPECT_EQ(Store(1, 8).shardCount(), 1u);
  EXPECT_EQ(Store(1, 8).perShardCapacity(), 1u);
  EXPECT_EQ(Store(0, 4).perShardCapacity(), 0u);

  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kShards = 3;  // ceil(8/3) == 3 per shard
  Store store(kCapacity, kShards);
  ASSERT_EQ(store.shardCount(), kShards);
  ASSERT_EQ(store.perShardCapacity(), 3u);

  // Fill every shard to its per-shard cap: residency reaches
  // shards * ceil(capacity/shards) = 9 — the configured 8 exceeded (by up to
  // shards-1 in general) — with zero evictions.
  const std::size_t kMaxResidency = kShards * store.perShardCapacity();
  ASSERT_GT(kMaxResidency, kCapacity);
  ASSERT_LE(kMaxResidency, kCapacity + kShards - 1);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t k = 0; k < 3; ++k) {
      store.put(shardFp(s, kShards, k), "s" + std::to_string(s) + "k" + std::to_string(k),
                make(s * 10 + k + 1));
    }
  }
  EXPECT_EQ(store.stats().entries, kMaxResidency);
  EXPECT_EQ(store.stats().evictions, 0u);

  // One more entry in shard 0 evicts shard 0's own LRU ("s0k0"), never a
  // neighbour shard's entry.
  store.put(shardFp(0, kShards, 7), "s0extra", make(99));
  EXPECT_EQ(store.stats().entries, kMaxResidency);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_FALSE(store.get(shardFp(0, kShards, 0), "s0k0").has_value());
  const auto extra = store.get(shardFp(0, kShards, 7), "s0extra");
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(markerOf(*extra), 99u);
  for (std::size_t s = 1; s < kShards; ++s) {
    for (std::size_t k = 0; k < 3; ++k) {
      const auto hit =
          store.get(shardFp(s, kShards, k), "s" + std::to_string(s) + "k" + std::to_string(k));
      ASSERT_TRUE(hit.has_value()) << "shard " << s << " entry " << k;
      EXPECT_EQ(markerOf(*hit), s * 10 + k + 1);
    }
  }
}

TEST(ResultCache, PerShardCeilDivisionSemanticsArePinned) {
  expectPerShardCeilDivisionSemantics<ResultCache>(makeWholeValue);
}

TEST(SubResultCache, PerShardCeilDivisionSemanticsArePinned) {
  expectPerShardCeilDivisionSemantics<SubResultCache>(makeSubValue);
}

TEST(SubResultCache, PayloadsRoundTripByCopy) {
  SubResultCache store(8, 2);
  SubResult memo;
  memo.points.push_back(core::ParetoPoint{Real(2), Real(5), std::nullopt});
  memo.scalar = Real(1.25);
  heuristics::Result seed;
  seed.success = true;
  seed.mapping = core::IntervalMapping::singleInterval(4, 1);
  seed.metrics.period = 3;
  seed.metrics.latency = 7;
  memo.seed = seed;
  store.put(fp(1), "unit", std::move(memo));
  const auto hit = store.get(fp(1), "unit");
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->points.size(), 1u);
  EXPECT_EQ(hit->points.front().period, Real(2));
  ASSERT_TRUE(hit->scalar.has_value());
  EXPECT_EQ(*hit->scalar, Real(1.25));
  ASSERT_TRUE(hit->seed.has_value());
  EXPECT_TRUE(hit->seed->success);
  EXPECT_EQ(hit->seed->metrics.latency, Real(7));
  EXPECT_EQ(hit->seed->mapping.intervalCount(), 1u);
}

}  // namespace
}  // namespace pipesched::service
