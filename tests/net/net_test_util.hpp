// Shared helpers for the pipesched::net tests: a minimal blocking HTTP/1.1
// client over net::connectTcp — just enough to drive HttpServer end to end
// from gtest (request rendering, response parsing with Content-Length).
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>

#include "pipesched/net/socket.hpp"

namespace pipesched::net::testutil {

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

inline std::string renderRequest(const std::string& method, const std::string& target,
                                 const std::string& body = {},
                                 const std::string& extraHeaders = {}) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: test\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += extraHeaders;
  out += "\r\n";
  out += body;
  return out;
}

/// Reads one full response off a blocking socket (headers + Content-Length
/// body). Fails the test on a connection that dies mid-response.
inline ClientResponse readResponse(Socket& socket) {
  ClientResponse response;
  std::string data;
  char buffer[4096];
  std::size_t headerEnd = std::string::npos;
  while ((headerEnd = data.find("\r\n\r\n")) == std::string::npos) {
    const IoResult r = socket.read(buffer, sizeof buffer);
    if (r.bytes == 0) {
      ADD_FAILURE() << "connection closed before response headers; got: " << data;
      return response;
    }
    data.append(buffer, r.bytes);
  }

  // Status line: "HTTP/1.1 NNN reason".
  const std::size_t firstSpace = data.find(' ');
  response.status = std::stoi(data.substr(firstSpace + 1, 3));

  // Headers, lower-cased names.
  std::size_t cursor = data.find("\r\n") + 2;
  while (cursor < headerEnd) {
    const std::size_t lineEnd = data.find("\r\n", cursor);
    const std::string line = data.substr(cursor, lineEnd - cursor);
    cursor = lineEnd + 2;
    const std::size_t colon = line.find(':');
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    std::size_t valueStart = colon + 1;
    while (valueStart < line.size() && line[valueStart] == ' ') ++valueStart;
    response.headers[name] = line.substr(valueStart);
  }

  std::size_t contentLength = 0;
  if (const auto it = response.headers.find("content-length"); it != response.headers.end()) {
    contentLength = std::stoul(it->second);
  }
  std::string body = data.substr(headerEnd + 4);
  while (body.size() < contentLength) {
    const IoResult r = socket.read(buffer, sizeof buffer);
    if (r.bytes == 0) {
      ADD_FAILURE() << "connection closed mid-body (" << body.size() << "/"
                    << contentLength << " bytes)";
      break;
    }
    body.append(buffer, r.bytes);
  }
  response.body = body.substr(0, contentLength);
  return response;
}

/// One-shot request on a fresh connection.
inline ClientResponse fetch(const Endpoint& endpoint, const std::string& method,
                            const std::string& target, const std::string& body = {},
                            const std::string& extraHeaders = {}) {
  Socket socket = connectTcp(endpoint);
  const std::string request = renderRequest(method, target, body, extraHeaders);
  socket.writeAll(request.data(), request.size());
  return readResponse(socket);
}

}  // namespace pipesched::net::testutil
