// HttpParser/renderHttpResponse: incremental parsing, keep-alive semantics,
// pipelining via reset(), and the status-coded error paths.
#include "pipesched/net/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pipesched::net {
namespace {

using Status = HttpParser::Status;

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser parser;
  EXPECT_EQ(parser.consume("GET /stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n"),
            Status::kComplete);
  const HttpRequest& r = parser.request();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/stats?verbose=1");
  EXPECT_EQ(r.path(), "/stats");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_TRUE(r.keepAlive);
  EXPECT_TRUE(r.body.empty());
  ASSERT_NE(r.header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*r.header("HOST"), "x");
  EXPECT_EQ(r.header("absent"), nullptr);
}

TEST(HttpParser, ParsesByteAtATimeWithBody) {
  const std::string wire =
      "POST /solve HTTP/1.1\r\nContent-Length: 11\r\nHost: t\r\n\r\nhello world";
  HttpParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const Status status = parser.consume(wire.data() + i, 1);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(status, Status::kNeedMore) << "at byte " << i;
    } else {
      ASSERT_EQ(status, Status::kComplete);
    }
  }
  EXPECT_EQ(parser.request().body, "hello world");
  EXPECT_EQ(parser.request().method, "POST");
}

TEST(HttpParser, ConnectionCloseAndHttp10Defaults) {
  HttpParser parser;
  ASSERT_EQ(parser.consume("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            Status::kComplete);
  EXPECT_FALSE(parser.request().keepAlive);

  HttpParser old;
  ASSERT_EQ(old.consume("GET / HTTP/1.0\r\n\r\n"), Status::kComplete);
  EXPECT_FALSE(old.request().keepAlive);

  HttpParser oldKeep;
  ASSERT_EQ(oldKeep.consume("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            Status::kComplete);
  EXPECT_TRUE(oldKeep.request().keepAlive);
}

TEST(HttpParser, ConnectionHeaderIsACaseInsensitiveTokenList) {
  // RFC 7230 §6.1: the option may sit anywhere in a comma-separated list and
  // tokens match case-insensitively — "close, TE" must still close.
  HttpParser closeList;
  ASSERT_EQ(closeList.consume("GET / HTTP/1.1\r\nConnection: close, TE\r\n\r\n"),
            Status::kComplete);
  EXPECT_FALSE(closeList.request().keepAlive);

  HttpParser mixedCase;
  ASSERT_EQ(mixedCase.consume("GET / HTTP/1.1\r\nConnection: TE , ClOsE\r\n\r\n"),
            Status::kComplete);
  EXPECT_FALSE(mixedCase.request().keepAlive);

  HttpParser oldKeepList;
  ASSERT_EQ(oldKeepList.consume(
                "GET / HTTP/1.0\r\nConnection: Keep-Alive, Upgrade\r\n\r\n"),
            Status::kComplete);
  EXPECT_TRUE(oldKeepList.request().keepAlive);

  // Substrings must NOT match: "closed" is not the "close" token.
  HttpParser notAToken;
  ASSERT_EQ(notAToken.consume("GET / HTTP/1.1\r\nConnection: closed\r\n\r\n"),
            Status::kComplete);
  EXPECT_TRUE(notAToken.request().keepAlive);

  // Repeated Connection fields combine into one list; close always wins,
  // whichever field carries it.
  HttpParser repeated;
  ASSERT_EQ(repeated.consume("GET / HTTP/1.1\r\nConnection: keep-alive\r\n"
                             "Connection: close\r\n\r\n"),
            Status::kComplete);
  EXPECT_FALSE(repeated.request().keepAlive);

  HttpParser bothInOne;
  ASSERT_EQ(bothInOne.consume(
                "GET / HTTP/1.0\r\nConnection: close, keep-alive\r\n\r\n"),
            Status::kComplete);
  EXPECT_FALSE(bothInOne.request().keepAlive);
}

TEST(HttpParser, DuplicateContentLengthMismatchIsRejected) {
  // Mismatched duplicates are the request-smuggling vector — hard 400.
  HttpParser parser;
  ASSERT_EQ(parser.consume("POST /solve HTTP/1.1\r\nContent-Length: 3\r\n"
                           "Content-Length: 5\r\n\r\nabc"),
            Status::kError);
  EXPECT_EQ(parser.errorStatus(), 400);
  EXPECT_NE(parser.error().find("conflicting Content-Length"), std::string::npos);

  // Case-insensitive field names still collide.
  HttpParser mixed;
  ASSERT_EQ(mixed.consume("POST /solve HTTP/1.1\r\ncontent-length: 3\r\n"
                          "Content-Length: 4\r\n\r\nabc"),
            Status::kError);
  EXPECT_EQ(mixed.errorStatus(), 400);
}

TEST(HttpParser, ByteIdenticalDuplicateContentLengthIsAccepted) {
  HttpParser parser;
  ASSERT_EQ(parser.consume("POST /solve HTTP/1.1\r\nContent-Length: 3\r\n"
                           "Content-Length: 3\r\n\r\nabc"),
            Status::kComplete);
  EXPECT_EQ(parser.request().body, "abc");
}

TEST(HttpParser, PipelinedRequestsSurviveReset) {
  HttpParser parser;
  const std::string two =
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
      "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parser.consume(two), Status::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_EQ(parser.request().body, "abc");

  // reset() re-arms on the buffered leftover and immediately completes.
  ASSERT_EQ(parser.reset(), Status::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_TRUE(parser.request().body.empty());

  ASSERT_EQ(parser.reset(), Status::kNeedMore);
}

TEST(HttpParser, BytesAfterCompleteAreBufferedForReset) {
  HttpParser parser;
  ASSERT_EQ(parser.consume("GET /a HTTP/1.1\r\n\r\n"), Status::kComplete);
  // The next pipelined request arrives while the first is still unanswered.
  ASSERT_EQ(parser.consume("GET /late HTTP/1.1\r\n\r\n"), Status::kComplete);
  ASSERT_EQ(parser.reset(), Status::kComplete);
  EXPECT_EQ(parser.request().target, "/late");
}

TEST(HttpParser, MalformedRequestLineIs400) {
  HttpParser parser;
  ASSERT_EQ(parser.consume("NONSENSE\r\n\r\n"), Status::kError);
  EXPECT_EQ(parser.errorStatus(), 400);
  // Error status is sticky until reset.
  EXPECT_EQ(parser.consume("GET / HTTP/1.1\r\n\r\n"), Status::kError);
}

TEST(HttpParser, OversizeBodyIs413) {
  HttpParser parser(/*maxBodyBytes=*/8);
  ASSERT_EQ(parser.consume("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            Status::kError);
  EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpParser, OversizeHeadersAre431) {
  HttpParser parser(/*maxBodyBytes=*/1024, /*maxHeaderBytes=*/64);
  const std::string huge = "GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'x');
  ASSERT_EQ(parser.consume(huge), Status::kError);
  EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParser, TransferEncodingIs501AndBadVersionIs505) {
  HttpParser parser;
  ASSERT_EQ(parser.consume("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Status::kError);
  EXPECT_EQ(parser.errorStatus(), 501);

  HttpParser version;
  ASSERT_EQ(version.consume("GET / HTTP/2.0\r\n\r\n"), Status::kError);
  EXPECT_EQ(version.errorStatus(), 505);

  HttpParser badLength;
  ASSERT_EQ(badLength.consume("POST / HTTP/1.1\r\nContent-Length: two\r\n\r\n"),
            Status::kError);
  EXPECT_EQ(badLength.errorStatus(), 400);
}

TEST(RenderHttpResponse, CarriesLengthAndConnection) {
  const std::string ok = renderHttpResponse(200, "text/plain", "hi", /*keepAlive=*/true);
  EXPECT_NE(ok.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(ok.substr(ok.size() - 2), "hi");

  const std::string gone =
      renderHttpResponse(503, "application/json", "{}", /*keepAlive=*/false);
  EXPECT_NE(gone.find("HTTP/1.1 503 Service Unavailable\r\n"), std::string::npos);
  EXPECT_NE(gone.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace pipesched::net
