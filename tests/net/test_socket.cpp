// pipesched::net socket primitives: endpoint parsing, listener + client
// round trips, non-blocking accept, the self-pipe, and the poll multiplexer.
#include "pipesched/net/socket.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <pthread.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pipesched/core/types.hpp"
#include "pipesched/fault/fault.hpp"

namespace pipesched::net {
namespace {

std::optional<Socket> acceptWithin(TcpListener& listener, int tries = 200) {
  std::optional<Socket> server;
  for (int i = 0; i < tries && !server; ++i) {
    server = listener.accept();
    if (!server) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return server;
}

TEST(ParseEndpoint, AcceptsHostPort) {
  const Endpoint e = parseEndpoint("127.0.0.1:8080");
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 8080);
  EXPECT_EQ(e.str(), "127.0.0.1:8080");

  const Endpoint any = parseEndpoint("0.0.0.0:0");
  EXPECT_EQ(any.host, "0.0.0.0");
  EXPECT_EQ(any.port, 0);
}

TEST(ParseEndpoint, RejectsMalformed) {
  EXPECT_THROW(parseEndpoint("no-port"), ModelError);
  EXPECT_THROW(parseEndpoint(":8080"), ModelError);
  EXPECT_THROW(parseEndpoint("127.0.0.1:"), ModelError);
  EXPECT_THROW(parseEndpoint("127.0.0.1:abc"), ModelError);
  EXPECT_THROW(parseEndpoint("127.0.0.1:70000"), ModelError);
}

TEST(TcpListener, EphemeralPortResolvesAndEchoes) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  const Endpoint bound = listener.local();
  EXPECT_EQ(bound.host, "127.0.0.1");
  EXPECT_GT(bound.port, 0);

  Socket client = connectTcp(bound);
  ASSERT_TRUE(client.valid());

  // Accept may race the connect's completion: poll for it briefly.
  std::optional<Socket> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    if (!server) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(server.has_value());

  const std::string ping = "ping";
  client.writeAll(ping.data(), ping.size());
  char buffer[16];
  std::string got;
  while (got.size() < ping.size()) {
    const IoResult r = server->read(buffer, sizeof buffer);
    if (r.wouldBlock) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    ASSERT_FALSE(r.closed || r.error);
    got.append(buffer, r.bytes);
  }
  EXPECT_EQ(got, ping);

  // And back the other way (accepted socket is non-blocking; small writes
  // always fit the kernel buffer).
  const IoResult wrote = server->write(got.data(), got.size());
  ASSERT_EQ(wrote.bytes, got.size());
  std::string echo;
  while (echo.size() < got.size()) {
    const IoResult r = client.read(buffer, sizeof buffer);
    ASSERT_FALSE(r.closed || r.error);
    echo.append(buffer, r.bytes);
  }
  EXPECT_EQ(echo, ping);
}

TEST(TcpListener, AcceptWithoutPendingConnectionReturnsNullopt) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  EXPECT_FALSE(listener.accept().has_value());
}

TEST(TcpListener, ReadReportsPeerClose) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  {
    Socket client = connectTcp(listener.local());
  }  // closes immediately
  std::optional<Socket> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    if (!server) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(server.has_value());
  char buffer[8];
  IoResult r;
  for (int i = 0; i < 200; ++i) {
    r = server->read(buffer, sizeof buffer);
    if (!r.wouldBlock) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(r.closed);
}

TEST(WakePipe, NotifyWakesPollerAndDrainClears) {
  WakePipe pipe;
  Poller poller;

  // Without a notify: timeout, no readiness.
  poller.clear();
  poller.watch(pipe.readFd(), /*read=*/true, /*write=*/false);
  EXPECT_EQ(poller.wait(10), 0);
  EXPECT_EQ(poller.events(pipe.readFd()), 0u);

  pipe.notify();
  pipe.notify();  // coalesces, never blocks
  poller.clear();
  poller.watch(pipe.readFd(), /*read=*/true, /*write=*/false);
  EXPECT_GT(poller.wait(1000), 0);
  EXPECT_TRUE(poller.events(pipe.readFd()) & Poller::kReadable);

  pipe.drain();
  poller.clear();
  poller.watch(pipe.readFd(), /*read=*/true, /*write=*/false);
  EXPECT_EQ(poller.wait(10), 0);
}

// -- EINTR hardening ---------------------------------------------------------

std::atomic<int> g_signalsDelivered{0};
void countSignal(int /*signum*/) { g_signalsDelivered.fetch_add(1); }

/// Installs a no-op SIGUSR1 handler WITHOUT SA_RESTART for the test's
/// duration, so every blocked syscall in the storm genuinely returns EINTR.
class ScopedSigusr1 {
 public:
  ScopedSigusr1() {
    struct sigaction action {};
    action.sa_handler = countSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(SIGUSR1, &action, &previous_);
  }
  ~ScopedSigusr1() { ::sigaction(SIGUSR1, &previous_, nullptr); }
  ScopedSigusr1(const ScopedSigusr1&) = delete;
  ScopedSigusr1& operator=(const ScopedSigusr1&) = delete;

 private:
  struct sigaction previous_ {};
};

TEST(SocketEintr, RetryOnEintrLoopsUntilSuccess) {
  int calls = 0;
  const auto result = retryOnEintr([&]() -> long {
    if (++calls < 4) {
      errno = EINTR;
      return -1;
    }
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 4);

  // Non-EINTR errors pass straight through.
  errno = 0;
  const auto failed = retryOnEintr([]() -> long {
    errno = ECONNRESET;
    return -1;
  });
  EXPECT_EQ(failed, -1);
  EXPECT_EQ(errno, ECONNRESET);
}

TEST(SocketEintr, SignalStormNeverCorruptsATransfer) {
  ScopedSigusr1 handler;
  g_signalsDelivered.store(0);

  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcp(listener.local());
  std::optional<Socket> server = acceptWithin(listener);
  ASSERT_TRUE(server.has_value());

  // Enough bytes to overrun kernel socket buffers many times over, so the
  // writer blocks mid-send and the storm lands EINTRs inside read and write.
  const std::size_t kTotal = 8u << 20;
  std::atomic<bool> writerDone{false};
  std::thread writer([&] {
    std::vector<char> chunk(64u << 10);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = static_cast<char>(i % 251);
    }
    std::size_t sent = 0;
    while (sent < kTotal) {
      const std::size_t n = std::min(chunk.size(), kTotal - sent);
      client.writeAll(chunk.data(), n);
      sent += n;
    }
    client.close();  // EOF tells the reader the stream is complete
    writerDone.store(true);
  });
  std::thread storm([&, target = writer.native_handle()] {
    while (!writerDone.load()) {
      ::pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::size_t received = 0;
  std::size_t mismatches = 0;
  char buffer[64 << 10];
  for (;;) {
    const IoResult r = server->read(buffer, sizeof buffer);
    if (r.wouldBlock) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    ASSERT_FALSE(r.error) << "signal storm surfaced as an I/O error";
    if (r.closed) break;
    for (std::size_t i = 0; i < r.bytes; ++i) {
      const char expected = static_cast<char>(((received + i) % (64u << 10)) % 251);
      if (buffer[i] != expected) ++mismatches;
    }
    received += r.bytes;
  }
  writer.join();
  storm.join();

  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(g_signalsDelivered.load(), 0) << "storm never landed — test is vacuous";
}

// -- Fault-injection sites ---------------------------------------------------

TEST(SocketFault, ReadFaultSurfacesAsIoError) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcp(listener.local());
  std::optional<Socket> server = acceptWithin(listener);
  ASSERT_TRUE(server.has_value());

  fault::ScopedFaultSpec scope("net.read");
  char buffer[8];
  const IoResult r = server->read(buffer, sizeof buffer);
  EXPECT_TRUE(r.error);
  EXPECT_EQ(r.bytes, 0u);
}

TEST(SocketFault, WriteFaultSurfacesAsIoError) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcp(listener.local());
  std::optional<Socket> server = acceptWithin(listener);
  ASSERT_TRUE(server.has_value());

  fault::ScopedFaultSpec scope("net.write");
  const IoResult r = server->write("x", 1);
  EXPECT_TRUE(r.error);
}

TEST(SocketFault, AcceptFaultDropsPendingConnection) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcp(listener.local());
  {
    fault::ScopedFaultSpec scope("net.accept=count:1000");
    // Give the handshake time to land, then watch the armed accept refuse it.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(listener.accept().has_value());
  }
  // Disarmed, the same pending connection is accepted normally.
  EXPECT_TRUE(acceptWithin(listener).has_value());
}

// -- Bounded connect + retry -------------------------------------------------

TEST(ConnectTcp, TimeoutArgStillConnectsToLiveListener) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcp(listener.local(), /*timeoutMs=*/2000);
  EXPECT_TRUE(client.valid());
}

TEST(ConnectTcpRetry, RefusedPortExhaustsAttemptsAndThrows) {
  // Bind then immediately close: the port was just free, so connecting to it
  // is refused (transient class) rather than hanging.
  Endpoint target;
  {
    TcpListener listener;
    listener.listen(Endpoint{"127.0.0.1", 0});
    target = listener.local();
  }
  RetryPolicy policy;
  policy.attempts = 3;
  policy.baseDelayMs = 1;
  policy.maxDelayMs = 4;
  const auto before = std::chrono::steady_clock::now();
  EXPECT_THROW(
      { Socket s = connectTcpRetry(target, policy, /*timeoutMs=*/500); },
      ModelError);
  // Three attempts with backoff happened (two sleeps >= 0.5ms each), but the
  // whole thing stayed bounded — no kernel-scale SYN retry cycle.
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(ConnectTcpRetry, SucceedsImmediatelyOnLiveListener) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcpRetry(listener.local(), RetryPolicy{}, 2000);
  EXPECT_TRUE(client.valid());
}

TEST(Poller, ReportsWritableOnConnectedSocket) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcp(listener.local());

  Poller poller;
  poller.watch(client.fd(), /*read=*/false, /*write=*/true);
  EXPECT_GT(poller.wait(1000), 0);
  EXPECT_TRUE(poller.events(client.fd()) & Poller::kWritable);
  EXPECT_EQ(poller.events(client.fd()) & Poller::kReadable, 0u);
  // An unwatched fd reports no events.
  EXPECT_EQ(poller.events(listener.fd()), 0u);
}

}  // namespace
}  // namespace pipesched::net
