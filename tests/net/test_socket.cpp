// pipesched::net socket primitives: endpoint parsing, listener + client
// round trips, non-blocking accept, the self-pipe, and the poll multiplexer.
#include "pipesched/net/socket.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "pipesched/core/types.hpp"

namespace pipesched::net {
namespace {

TEST(ParseEndpoint, AcceptsHostPort) {
  const Endpoint e = parseEndpoint("127.0.0.1:8080");
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 8080);
  EXPECT_EQ(e.str(), "127.0.0.1:8080");

  const Endpoint any = parseEndpoint("0.0.0.0:0");
  EXPECT_EQ(any.host, "0.0.0.0");
  EXPECT_EQ(any.port, 0);
}

TEST(ParseEndpoint, RejectsMalformed) {
  EXPECT_THROW(parseEndpoint("no-port"), ModelError);
  EXPECT_THROW(parseEndpoint(":8080"), ModelError);
  EXPECT_THROW(parseEndpoint("127.0.0.1:"), ModelError);
  EXPECT_THROW(parseEndpoint("127.0.0.1:abc"), ModelError);
  EXPECT_THROW(parseEndpoint("127.0.0.1:70000"), ModelError);
}

TEST(TcpListener, EphemeralPortResolvesAndEchoes) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  const Endpoint bound = listener.local();
  EXPECT_EQ(bound.host, "127.0.0.1");
  EXPECT_GT(bound.port, 0);

  Socket client = connectTcp(bound);
  ASSERT_TRUE(client.valid());

  // Accept may race the connect's completion: poll for it briefly.
  std::optional<Socket> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    if (!server) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(server.has_value());

  const std::string ping = "ping";
  client.writeAll(ping.data(), ping.size());
  char buffer[16];
  std::string got;
  while (got.size() < ping.size()) {
    const IoResult r = server->read(buffer, sizeof buffer);
    if (r.wouldBlock) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    ASSERT_FALSE(r.closed || r.error);
    got.append(buffer, r.bytes);
  }
  EXPECT_EQ(got, ping);

  // And back the other way (accepted socket is non-blocking; small writes
  // always fit the kernel buffer).
  const IoResult wrote = server->write(got.data(), got.size());
  ASSERT_EQ(wrote.bytes, got.size());
  std::string echo;
  while (echo.size() < got.size()) {
    const IoResult r = client.read(buffer, sizeof buffer);
    ASSERT_FALSE(r.closed || r.error);
    echo.append(buffer, r.bytes);
  }
  EXPECT_EQ(echo, ping);
}

TEST(TcpListener, AcceptWithoutPendingConnectionReturnsNullopt) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  EXPECT_FALSE(listener.accept().has_value());
}

TEST(TcpListener, ReadReportsPeerClose) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  {
    Socket client = connectTcp(listener.local());
  }  // closes immediately
  std::optional<Socket> server;
  for (int i = 0; i < 200 && !server; ++i) {
    server = listener.accept();
    if (!server) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(server.has_value());
  char buffer[8];
  IoResult r;
  for (int i = 0; i < 200; ++i) {
    r = server->read(buffer, sizeof buffer);
    if (!r.wouldBlock) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(r.closed);
}

TEST(WakePipe, NotifyWakesPollerAndDrainClears) {
  WakePipe pipe;
  Poller poller;

  // Without a notify: timeout, no readiness.
  poller.clear();
  poller.watch(pipe.readFd(), /*read=*/true, /*write=*/false);
  EXPECT_EQ(poller.wait(10), 0);
  EXPECT_EQ(poller.events(pipe.readFd()), 0u);

  pipe.notify();
  pipe.notify();  // coalesces, never blocks
  poller.clear();
  poller.watch(pipe.readFd(), /*read=*/true, /*write=*/false);
  EXPECT_GT(poller.wait(1000), 0);
  EXPECT_TRUE(poller.events(pipe.readFd()) & Poller::kReadable);

  pipe.drain();
  poller.clear();
  poller.watch(pipe.readFd(), /*read=*/true, /*write=*/false);
  EXPECT_EQ(poller.wait(10), 0);
}

TEST(Poller, ReportsWritableOnConnectedSocket) {
  TcpListener listener;
  listener.listen(Endpoint{"127.0.0.1", 0});
  Socket client = connectTcp(listener.local());

  Poller poller;
  poller.watch(client.fd(), /*read=*/false, /*write=*/true);
  EXPECT_GT(poller.wait(1000), 0);
  EXPECT_TRUE(poller.events(client.fd()) & Poller::kWritable);
  EXPECT_EQ(poller.events(client.fd()) & Poller::kReadable, 0u);
  // An unwatched fd reports no events.
  EXPECT_EQ(poller.events(listener.fd()), 0u);
}

}  // namespace
}  // namespace pipesched::net
