// HttpServer event loop: multi-client dispatch, keep-alive, async completion
// from worker threads, routing errors, graceful drain, transport counters.
#include "pipesched/net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net_test_util.hpp"

namespace pipesched::net {
namespace {

using testutil::ClientResponse;
using testutil::fetch;
using testutil::readResponse;
using testutil::renderRequest;

/// A server on an ephemeral loopback port with its run() loop on a thread;
/// stops and joins on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(HttpServerConfig config = {}) {
    config.endpoint = Endpoint{"127.0.0.1", 0};
    server_ = std::make_unique<HttpServer>(config);
  }

  ~ServerFixture() { stop(); }

  HttpServer& server() { return *server_; }

  void start() {
    server_->bind();
    thread_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (!thread_.joinable()) return;
    server_->requestStop();
    thread_.join();
  }

  Endpoint endpoint() const { return server_->local(); }

 private:
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

TEST(HttpServer, EchoRoundTrip) {
  ServerFixture fixture;
  fixture.server().handle("POST", "/echo",
                          [](const HttpRequest& request, HttpServer::Done done) {
                            done(200, "text/plain", request.body);
                          });
  fixture.start();

  const ClientResponse r = fetch(fixture.endpoint(), "POST", "/echo", "payload bytes");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "payload bytes");
  EXPECT_EQ(r.headers.at("content-type"), "text/plain");
}

TEST(HttpServer, KeepAliveServesSequentialRequestsOnOneConnection) {
  ServerFixture fixture;
  std::atomic<int> hits{0};
  fixture.server().handle("GET", "/count",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            done(200, "text/plain", std::to_string(++hits));
                          });
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  for (int i = 1; i <= 3; ++i) {
    const std::string request = renderRequest("GET", "/count");
    socket.writeAll(request.data(), request.size());
    const ClientResponse r = readResponse(socket);
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, std::to_string(i));
    EXPECT_EQ(r.headers.at("connection"), "keep-alive");
  }

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.requests, 3u);
}

TEST(HttpServer, TwoConcurrentClientsProgressTogether) {
  // The handler parks each request's Done and completes both only once BOTH
  // clients' requests have been parsed — if the loop serialized connections,
  // neither response would ever be sent.
  ServerFixture fixture;
  std::mutex mutex;
  std::vector<HttpServer::Done> parked;
  fixture.server().handle("GET", "/pair",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            std::lock_guard<std::mutex> lock(mutex);
                            parked.push_back(std::move(done));
                            if (parked.size() == 2) {
                              for (auto& d : parked) d(200, "text/plain", "both");
                              parked.clear();
                            }
                          });
  fixture.start();

  std::thread first([&] {
    const ClientResponse r = fetch(fixture.endpoint(), "GET", "/pair");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "both");
  });
  const ClientResponse r = fetch(fixture.endpoint(), "GET", "/pair");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "both");
  first.join();

  EXPECT_EQ(fixture.server().stats().accepted, 2u);
}

TEST(HttpServer, AsyncCompletionFromAnotherThread) {
  ServerFixture fixture;
  std::thread completer;
  fixture.server().handle("GET", "/slow",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            completer = std::thread([done = std::move(done)]() mutable {
                              std::this_thread::sleep_for(std::chrono::milliseconds(30));
                              done(200, "text/plain", "late");
                            });
                          });
  fixture.start();

  const ClientResponse r = fetch(fixture.endpoint(), "GET", "/slow");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "late");
  completer.join();
}

TEST(HttpServer, UnknownPathAndMethodAre404And405) {
  ServerFixture fixture;
  fixture.server().handle("GET", "/known",
                          [](const HttpRequest&, HttpServer::Done done) {
                            done(200, "text/plain", "ok");
                          });
  fixture.start();

  EXPECT_EQ(fetch(fixture.endpoint(), "GET", "/missing").status, 404);
  EXPECT_EQ(fetch(fixture.endpoint(), "POST", "/known", "x").status, 405);
  EXPECT_EQ(fetch(fixture.endpoint(), "GET", "/known").status, 200);
}

TEST(HttpServer, MalformedRequestGets400AndConnectionCloses) {
  ServerFixture fixture;
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  const std::string garbage = "NOT-HTTP\r\n\r\n";
  socket.writeAll(garbage.data(), garbage.size());
  const ClientResponse r = readResponse(socket);
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.headers.at("connection"), "close");
}

TEST(HttpServer, GracefulDrainAnswersInFlightRequestThenStops) {
  ServerFixture fixture;
  std::mutex mutex;
  std::condition_variable cv;
  HttpServer::Done parked;
  bool have = false;
  fixture.server().handle("GET", "/park",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            std::lock_guard<std::mutex> lock(mutex);
                            parked = std::move(done);
                            have = true;
                            cv.notify_all();
                          });
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  const std::string request = renderRequest("GET", "/park");
  socket.writeAll(request.data(), request.size());
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return have; }));
  }

  // Stop while the request is in flight, then complete it from here: the
  // drain must deliver this response before run() returns.
  fixture.server().requestStop();
  parked(200, "text/plain", "drained");
  const ClientResponse r = readResponse(socket);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "drained");

  fixture.stop();  // run() must return promptly now
  EXPECT_TRUE(fixture.server().draining());
}

TEST(HttpServer, SlowlorisConnectionGets408AndIsClosed) {
  // A client that starts a request but trickles nothing more is answered 408
  // within requestTimeoutMs + one poll heartbeat, and the connection closes.
  HttpServerConfig config;
  config.requestTimeoutMs = 100;
  config.pollTimeoutMs = 20;
  ServerFixture fixture(config);
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  const std::string partial = "GET /never HTTP/1.1\r\n";  // headers never finish
  socket.writeAll(partial.data(), partial.size());

  const ClientResponse r = readResponse(socket);
  EXPECT_EQ(r.status, 408);
  EXPECT_EQ(r.headers.at("connection"), "close");
  EXPECT_EQ(fixture.server().stats().requestTimeouts, 1u);
}

TEST(HttpServer, IdleKeepAliveConnectionIsSweptSilently) {
  HttpServerConfig config;
  config.idleTimeoutMs = 100;
  config.pollTimeoutMs = 20;
  ServerFixture fixture(config);
  fixture.server().handle("GET", "/ping",
                          [](const HttpRequest&, HttpServer::Done done) {
                            done(200, "text/plain", "pong");
                          });
  fixture.start();

  // Complete one request, then go idle on the keep-alive connection: the
  // sweep closes it (EOF on our side) without writing anything first.
  Socket socket = connectTcp(fixture.endpoint());
  const std::string request = renderRequest("GET", "/ping");
  socket.writeAll(request.data(), request.size());
  EXPECT_EQ(readResponse(socket).status, 200);

  char buffer[64];
  bool sawEof = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  socket.setNonBlocking(true);
  while (std::chrono::steady_clock::now() < deadline) {
    const IoResult r = socket.read(buffer, sizeof buffer);
    if (r.closed) {
      sawEof = true;
      break;
    }
    ASSERT_EQ(r.bytes, 0u) << "idle close must not write bytes";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(sawEof);
  EXPECT_EQ(fixture.server().stats().idleClosed, 1u);
  EXPECT_EQ(fixture.server().stats().requestTimeouts, 0u);
}

TEST(HttpServer, ActiveRequestIsNotSweptBySlowlorisGuard) {
  // A dispatched request whose handler is slow must NOT trip the guard: the
  // stall is the handler's, not the client's. Idle sweeping is disabled —
  // after the response lands the connection is legitimately idle, and on a
  // slow (sanitized) run it would be swept before the stats assertions.
  HttpServerConfig config;
  config.requestTimeoutMs = 80;
  config.idleTimeoutMs = 0;
  config.pollTimeoutMs = 20;
  ServerFixture fixture(config);
  std::thread completer;
  fixture.server().handle("GET", "/slow",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            completer = std::thread([done = std::move(done)]() mutable {
                              std::this_thread::sleep_for(std::chrono::milliseconds(300));
                              done(200, "text/plain", "worth the wait");
                            });
                          });
  fixture.start();

  const ClientResponse r = fetch(fixture.endpoint(), "GET", "/slow");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "worth the wait");
  completer.join();
  EXPECT_EQ(fixture.server().stats().requestTimeouts, 0u);
  EXPECT_EQ(fixture.server().stats().idleClosed, 0u);
}

TEST(HttpServer, DrainDeadlinePassesWhenAHandlerNeverCompletes) {
  // Stop requested while a handler holds its Done forever: run() must return
  // once drainTimeoutMs expires instead of waiting on the lost response.
  HttpServerConfig config;
  config.drainTimeoutMs = 150;
  config.pollTimeoutMs = 20;
  ServerFixture fixture(config);
  std::mutex mutex;
  std::condition_variable cv;
  HttpServer::Done leaked;  // parked and never called
  bool have = false;
  fixture.server().handle("GET", "/blackhole",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            std::lock_guard<std::mutex> lock(mutex);
                            leaked = std::move(done);
                            have = true;
                            cv.notify_all();
                          });
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  const std::string request = renderRequest("GET", "/blackhole");
  socket.writeAll(request.data(), request.size());
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return have; }));
  }

  const auto before = std::chrono::steady_clock::now();
  fixture.stop();  // requestStop + join: must not hang on the leaked Done
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_GE(elapsed.count(), 100);  // the drain deadline was actually honoured
  EXPECT_LT(elapsed.count(), 5000);

  // The abandoned connection was force-closed; late completion is a no-op.
  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.accepted, stats.closed + stats.errored);
  leaked(200, "text/plain", "too late");  // must not crash
}

TEST(HttpServer, StatsCountersTrackTraffic) {
  ServerFixture fixture;
  fixture.server().handle("GET", "/ping",
                          [](const HttpRequest&, HttpServer::Done done) {
                            done(200, "text/plain", "pong");
                          });
  fixture.start();

  (void)fetch(fixture.endpoint(), "GET", "/ping");
  (void)fetch(fixture.endpoint(), "GET", "/ping");
  fixture.server().noteShed();

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_GT(stats.bytesRead, 0u);
  EXPECT_GT(stats.bytesWritten, 0u);
  fixture.stop();
  const ServerStats after = fixture.server().stats();
  EXPECT_EQ(after.accepted, after.closed + after.errored);  // all connections released
}

}  // namespace
}  // namespace pipesched::net
