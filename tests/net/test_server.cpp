// HttpServer event loop: multi-client dispatch, keep-alive, async completion
// from worker threads, routing errors, graceful drain, transport counters.
#include "pipesched/net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net_test_util.hpp"

namespace pipesched::net {
namespace {

using testutil::ClientResponse;
using testutil::fetch;
using testutil::readResponse;
using testutil::renderRequest;

/// A server on an ephemeral loopback port with its run() loop on a thread;
/// stops and joins on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(HttpServerConfig config = {}) {
    config.endpoint = Endpoint{"127.0.0.1", 0};
    server_ = std::make_unique<HttpServer>(config);
  }

  ~ServerFixture() { stop(); }

  HttpServer& server() { return *server_; }

  void start() {
    server_->bind();
    thread_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (!thread_.joinable()) return;
    server_->requestStop();
    thread_.join();
  }

  Endpoint endpoint() const { return server_->local(); }

 private:
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

TEST(HttpServer, EchoRoundTrip) {
  ServerFixture fixture;
  fixture.server().handle("POST", "/echo",
                          [](const HttpRequest& request, HttpServer::Done done) {
                            done(200, "text/plain", request.body);
                          });
  fixture.start();

  const ClientResponse r = fetch(fixture.endpoint(), "POST", "/echo", "payload bytes");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "payload bytes");
  EXPECT_EQ(r.headers.at("content-type"), "text/plain");
}

TEST(HttpServer, KeepAliveServesSequentialRequestsOnOneConnection) {
  ServerFixture fixture;
  std::atomic<int> hits{0};
  fixture.server().handle("GET", "/count",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            done(200, "text/plain", std::to_string(++hits));
                          });
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  for (int i = 1; i <= 3; ++i) {
    const std::string request = renderRequest("GET", "/count");
    socket.writeAll(request.data(), request.size());
    const ClientResponse r = readResponse(socket);
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, std::to_string(i));
    EXPECT_EQ(r.headers.at("connection"), "keep-alive");
  }

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.requests, 3u);
}

TEST(HttpServer, TwoConcurrentClientsProgressTogether) {
  // The handler parks each request's Done and completes both only once BOTH
  // clients' requests have been parsed — if the loop serialized connections,
  // neither response would ever be sent.
  ServerFixture fixture;
  std::mutex mutex;
  std::vector<HttpServer::Done> parked;
  fixture.server().handle("GET", "/pair",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            std::lock_guard<std::mutex> lock(mutex);
                            parked.push_back(std::move(done));
                            if (parked.size() == 2) {
                              for (auto& d : parked) d(200, "text/plain", "both");
                              parked.clear();
                            }
                          });
  fixture.start();

  std::thread first([&] {
    const ClientResponse r = fetch(fixture.endpoint(), "GET", "/pair");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "both");
  });
  const ClientResponse r = fetch(fixture.endpoint(), "GET", "/pair");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "both");
  first.join();

  EXPECT_EQ(fixture.server().stats().accepted, 2u);
}

TEST(HttpServer, AsyncCompletionFromAnotherThread) {
  ServerFixture fixture;
  std::thread completer;
  fixture.server().handle("GET", "/slow",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            completer = std::thread([done = std::move(done)]() mutable {
                              std::this_thread::sleep_for(std::chrono::milliseconds(30));
                              done(200, "text/plain", "late");
                            });
                          });
  fixture.start();

  const ClientResponse r = fetch(fixture.endpoint(), "GET", "/slow");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "late");
  completer.join();
}

TEST(HttpServer, UnknownPathAndMethodAre404And405) {
  ServerFixture fixture;
  fixture.server().handle("GET", "/known",
                          [](const HttpRequest&, HttpServer::Done done) {
                            done(200, "text/plain", "ok");
                          });
  fixture.start();

  EXPECT_EQ(fetch(fixture.endpoint(), "GET", "/missing").status, 404);
  EXPECT_EQ(fetch(fixture.endpoint(), "POST", "/known", "x").status, 405);
  EXPECT_EQ(fetch(fixture.endpoint(), "GET", "/known").status, 200);
}

TEST(HttpServer, MalformedRequestGets400AndConnectionCloses) {
  ServerFixture fixture;
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  const std::string garbage = "NOT-HTTP\r\n\r\n";
  socket.writeAll(garbage.data(), garbage.size());
  const ClientResponse r = readResponse(socket);
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.headers.at("connection"), "close");
}

TEST(HttpServer, GracefulDrainAnswersInFlightRequestThenStops) {
  ServerFixture fixture;
  std::mutex mutex;
  std::condition_variable cv;
  HttpServer::Done parked;
  bool have = false;
  fixture.server().handle("GET", "/park",
                          [&](const HttpRequest&, HttpServer::Done done) {
                            std::lock_guard<std::mutex> lock(mutex);
                            parked = std::move(done);
                            have = true;
                            cv.notify_all();
                          });
  fixture.start();

  Socket socket = connectTcp(fixture.endpoint());
  const std::string request = renderRequest("GET", "/park");
  socket.writeAll(request.data(), request.size());
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return have; }));
  }

  // Stop while the request is in flight, then complete it from here: the
  // drain must deliver this response before run() returns.
  fixture.server().requestStop();
  parked(200, "text/plain", "drained");
  const ClientResponse r = readResponse(socket);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "drained");

  fixture.stop();  // run() must return promptly now
  EXPECT_TRUE(fixture.server().draining());
}

TEST(HttpServer, StatsCountersTrackTraffic) {
  ServerFixture fixture;
  fixture.server().handle("GET", "/ping",
                          [](const HttpRequest&, HttpServer::Done done) {
                            done(200, "text/plain", "pong");
                          });
  fixture.start();

  (void)fetch(fixture.endpoint(), "GET", "/ping");
  (void)fetch(fixture.endpoint(), "GET", "/ping");
  fixture.server().noteShed();

  const ServerStats stats = fixture.server().stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_GT(stats.bytesRead, 0u);
  EXPECT_GT(stats.bytesWritten, 0u);
  fixture.stop();
  const ServerStats after = fixture.server().stats();
  EXPECT_EQ(after.accepted, after.closed + after.errored);  // all connections released
}

}  // namespace
}  // namespace pipesched::net
