// The serve HTTP surface end to end: POST /solve byte-identity with stdio
// serve, admission-control shedding (503 + counters), and the /stats,
// /healthz, /metrics read endpoints — all against an in-process HttpServer
// wired to a real AsyncScheduler.
#include "pipesched/net/endpoints.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "../cli/cli_test_util.hpp"
#include "net_test_util.hpp"
#include "pipesched/net/server.hpp"
#include "pipesched/obs/metrics.hpp"
#include "pipesched/stream/async_scheduler.hpp"

namespace pipesched::net {
namespace {

using testutil::ClientResponse;
using testutil::fetch;

constexpr const char* kBody =
    "{\"kind\":\"E1\",\"stages\":4,\"processors\":3,\"seed\":1}\n"
    "not json at all\n"
    "{\"kind\":\"E2\",\"stages\":5,\"processors\":4,\"seed\":2}\n";

/// In-process serving stack: scheduler + server + endpoints + run() thread.
class EndpointsFixture {
 public:
  explicit EndpointsFixture(stream::StreamConfig config = makeDefaultConfig(),
                            HttpServerConfig serverConfig = {}) {
    scheduler_ = std::make_unique<stream::AsyncScheduler>(config);
    serverConfig.endpoint = Endpoint{"127.0.0.1", 0};
    server_ = std::make_unique<HttpServer>(serverConfig);
    ServeEndpointsConfig endpoints;
    endpoints.statsSnapshot = [] { return std::string("{\"type\":\"stats\"}"); };
    endpoints.draining = [this] { return server_->draining(); };
    endpoints.uptimeSeconds = [] { return 1.5; };
    installServeEndpoints(*server_, *scheduler_, endpoints);
    server_->bind();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~EndpointsFixture() {
    server_->requestStop();
    thread_.join();
    scheduler_->close();
  }

  static stream::StreamConfig makeDefaultConfig() {
    stream::StreamConfig config;
    config.workers = 2;
    return config;
  }

  Endpoint endpoint() const { return server_->local(); }
  HttpServer& server() { return *server_; }

 private:
  std::unique_ptr<stream::AsyncScheduler> scheduler_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

TEST(ServeEndpoints, SolveBodyIsByteIdenticalToStdioServe) {
  // Reference: the stdio transport over the same three lines (one of them
  // malformed), single-threaded so outcome order is the input order on a
  // fresh scheduler — exactly the conditions the HTTP body promises.
  namespace cli = pipesched::cli::testutil;
  const std::string input = cli::tempPath("net_solve_input.jsonl");
  {
    std::ofstream f(input);
    f << kBody;
  }
  const cli::RunResult stdio = cli::run({"serve", "--input", input, "--serial"});

  EndpointsFixture fixture;
  const ClientResponse r = fetch(fixture.endpoint(), "POST", "/solve", kBody);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, stdio.out);
  EXPECT_NE(r.body.find("\"line\":2,\"ok\":false"), std::string::npos);
}

TEST(ServeEndpoints, EmptyAndAllMalformedBodiesAnswerImmediately) {
  EndpointsFixture fixture;
  const ClientResponse empty = fetch(fixture.endpoint(), "POST", "/solve", "");
  EXPECT_EQ(empty.status, 200);
  EXPECT_EQ(empty.body, "");

  const ClientResponse garbage = fetch(fixture.endpoint(), "POST", "/solve", "nope\n");
  EXPECT_EQ(garbage.status, 200);
  EXPECT_NE(garbage.body.find("\"ok\":false"), std::string::npos);
}

TEST(ServeEndpoints, SaturatedQueueShedsWith503) {
  // One worker parked inside a solve on a latch + capacity-1 queue: the
  // third submit of a POST cannot be admitted, so the whole POST sheds.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;

  stream::StreamConfig config;
  config.workers = 1;
  config.queueCapacity = 1;
  config.maxCoalescedWaiters = 0;
  config.solveOverride = [&](const service::Request&) -> service::RequestOutcome {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    service::RequestOutcome outcome;
    outcome.ok = false;
    outcome.error = "latched";
    return outcome;
  };

  std::uint64_t shedBefore = 0;
  {
    EndpointsFixture fixture(config);
    shedBefore = fixture.server().stats().shed;

    // Distinct seeds so coalescing can't merge them; enough lines that the
    // worker (1) + queue (1) can't hold them all.
    std::string body;
    for (int seed = 1; seed <= 4; ++seed) {
      body += "{\"kind\":\"E1\",\"stages\":4,\"processors\":3,\"seed\":" +
              std::to_string(seed) + "}\n";
    }
    const ClientResponse r = fetch(fixture.endpoint(), "POST", "/solve", body);
    EXPECT_EQ(r.status, 503);
    EXPECT_EQ(fixture.server().stats().shed, shedBefore + 1);

    {
      std::lock_guard<std::mutex> lock(mutex);
      release = true;
    }
    cv.notify_all();
    // Fixture teardown drains the abandoned solves.
  }
}

TEST(ServeEndpoints, StatsHealthzAndMetricsAnswer) {
  obs::ScopedMetricsEnabled metricsOn(true);
  EndpointsFixture fixture;

  const ClientResponse stats = fetch(fixture.endpoint(), "GET", "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_EQ(stats.body, "{\"type\":\"stats\"}\n");
  EXPECT_EQ(stats.headers.at("content-type"), "application/json");

  const ClientResponse health = fetch(fixture.endpoint(), "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"draining\":false"), std::string::npos);
  EXPECT_NE(health.body.find("\"uptime_seconds\":1.5"), std::string::npos);

  const ClientResponse metrics = fetch(fixture.endpoint(), "GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.headers.at("content-type"), "text/plain; version=0.0.4");
  // The transport instruments itself: by the time /metrics renders, the
  // earlier requests on this fixture have been counted.
  EXPECT_NE(metrics.body.find("pipesched_net_http_requests"), std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE pipesched_net_connections_accepted counter"),
            std::string::npos);
}

TEST(ServeEndpoints, MalformedDeadlineHeaderAnswers400) {
  EndpointsFixture fixture;
  const ClientResponse bad = fetch(fixture.endpoint(), "POST", "/solve", kBody,
                                   "X-Deadline-Ms: soon\r\n");
  EXPECT_EQ(bad.status, 400);
  const ClientResponse negative = fetch(fixture.endpoint(), "POST", "/solve", kBody,
                                        "X-Deadline-Ms: -5\r\n");
  EXPECT_EQ(negative.status, 400);
  // 0 disables the default deadline — a valid, full solve.
  const ClientResponse zero = fetch(fixture.endpoint(), "POST", "/solve", kBody,
                                    "X-Deadline-Ms: 0\r\n");
  EXPECT_EQ(zero.status, 200);
}

TEST(ServeEndpoints, WholeBatchPastDeadlineAnswers504) {
  // One worker latched inside a blocker solve; a deadlined POST queues behind
  // it and expires before the worker frees. Every solvable line times out, so
  // the whole POST answers 504 with per-line {"ok":false,"timed_out":true}.
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  stream::StreamConfig config;
  config.workers = 1;
  config.queueCapacity = 8;
  config.solveOverride = [&](const service::Request& request) -> service::RequestOutcome {
    service::RequestOutcome outcome;
    if (request.name == "blocker") {
      std::unique_lock<std::mutex> lock(mutex);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    outcome.ok = true;
    return outcome;
  };

  EndpointsFixture fixture(config);
  std::thread blocker([&] {
    const ClientResponse r = fetch(
        fixture.endpoint(), "POST", "/solve",
        "{\"kind\":\"E1\",\"stages\":4,\"processors\":3,\"seed\":9,\"name\":\"blocker\"}\n");
    EXPECT_EQ(r.status, 200);
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return entered; }));
  }
  // Release the latch only after the deadlined lines are sure to be expired.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
    cv.notify_all();
  });

  const std::string body =
      "{\"kind\":\"E1\",\"stages\":4,\"processors\":3,\"seed\":1}\n"
      "{\"kind\":\"E2\",\"stages\":5,\"processors\":4,\"seed\":2}\n";
  const ClientResponse r =
      fetch(fixture.endpoint(), "POST", "/solve", body, "X-Deadline-Ms: 50\r\n");
  blocker.join();
  releaser.join();

  EXPECT_EQ(r.status, 504);
  EXPECT_NE(r.body.find("\"timed_out\":true"), std::string::npos);
  EXPECT_NE(r.body.find("deadline exceeded"), std::string::npos);
  // Both lines still got their outcome line — degraded, never silent.
  EXPECT_NE(r.body.find("\"line\":1"), std::string::npos);
  EXPECT_NE(r.body.find("\"line\":2"), std::string::npos);
}

TEST(ServeEndpoints, MethodMismatchesAreRejected) {
  EndpointsFixture fixture;
  EXPECT_EQ(fetch(fixture.endpoint(), "GET", "/solve").status, 405);
  EXPECT_EQ(fetch(fixture.endpoint(), "POST", "/metrics", "x").status, 405);
  EXPECT_EQ(fetch(fixture.endpoint(), "GET", "/nothing-here").status, 404);
}

}  // namespace
}  // namespace pipesched::net
