// Experiment drivers reproducing paper Section 5.
//
// A *sweep* regenerates one panel of Figures 2-7: for a batch of random
// application/platform pairs it traces, per heuristic, the latency-vs-period
// curve obtained by varying the fixed threshold. Period-constrained
// heuristics (H1-H4) are plotted at (threshold period, mean achieved
// latency); latency-constrained heuristics (H5-H6) at (mean achieved period,
// threshold latency) — both families therefore live in the same plane, as in
// the paper's plots.
//
// A *failure-threshold report* regenerates paper Table 1: the mean largest
// threshold for which each heuristic finds no solution.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/heuristics/registry.hpp"
#include "pipesched/workload/generator.hpp"

namespace pipesched::exp {

struct SweepConfig {
  workload::ExperimentKind kind = workload::ExperimentKind::kE1BalancedHomComm;
  std::size_t stages = 10;
  std::size_t processors = 10;
  std::size_t pairs = 50;        ///< random pairs averaged per point (paper: 50)
  std::size_t points = 12;       ///< threshold-grid resolution
  std::uint64_t seed = 20070628; ///< base RNG seed
  core::CommModel model = core::CommModel::kSequential;
};

struct SeriesPoint {
  Real x = 0;                 ///< period coordinate
  Real y = 0;                 ///< latency coordinate
  std::size_t successes = 0;  ///< pairs for which the heuristic found a solution
  std::size_t attempts = 0;
};

struct HeuristicSeries {
  std::string heuristic;  ///< short name, e.g. "H1-SpMonoP"
  std::string paperName;  ///< plot label, e.g. "Sp mono, P fix"
  heuristics::Objective objective{};
  std::vector<SeriesPoint> points;
};

struct SweepResult {
  SweepConfig config;
  std::vector<HeuristicSeries> series;  ///< six entries, Table-1 order
};

/// Runs one sweep (one panel of a paper figure).
[[nodiscard]] SweepResult runBiCriteriaSweep(const SweepConfig& config);

/// Paper Table 1: mean failure thresholds per heuristic and stage count.
struct FailureThresholdReport {
  workload::ExperimentKind kind{};
  std::size_t processors = 0;
  std::size_t pairs = 0;
  std::vector<std::size_t> stageCounts;
  std::vector<std::string> heuristics;             ///< six short names
  std::vector<std::vector<Real>> meanThresholds;   ///< [heuristic][stageIdx]
};

[[nodiscard]] FailureThresholdReport failureThresholds(
    workload::ExperimentKind kind, const std::vector<std::size_t>& stageCounts,
    std::size_t processors, std::size_t pairs = 50, std::uint64_t seed = 20070628);

/// Human-readable rendering of a sweep (one block per heuristic).
void printSweep(std::ostream& os, const SweepResult& result, const std::string& title);

/// Machine-readable rendering: CSV with columns
/// heuristic,objective,x_period,y_latency,successes,attempts.
void writeSweepCsv(std::ostream& os, const SweepResult& result);

/// Gnuplot script reproducing the paper's plot style (latency vs period, one
/// linespoints series per heuristic) from the CSV written by writeSweepCsv.
/// `csvFileName` is the file name the script will read (relative paths are
/// resolved from the gnuplot working directory).
void writeSweepGnuplot(std::ostream& os, const SweepResult& result,
                       const std::string& csvFileName, const std::string& title);

/// Human-readable rendering of a failure-threshold report (Table-1 layout).
void printFailureThresholds(std::ostream& os, const FailureThresholdReport& report);

}  // namespace pipesched::exp
