// Small statistics helpers for experiment aggregation.
#pragma once

#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::exp {

struct Summary {
  std::size_t count = 0;
  Real mean = 0;
  Real stddev = 0;  ///< population standard deviation
  Real min = 0;
  Real max = 0;
  Real median = 0;
};

/// Summarizes a sample; returns a zeroed Summary for an empty input.
[[nodiscard]] Summary summarize(std::vector<Real> values);

/// Arithmetic mean (0 for an empty input).
[[nodiscard]] Real mean(const std::vector<Real>& values);

}  // namespace pipesched::exp
