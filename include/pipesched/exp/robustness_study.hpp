// Robustness experiment driver: how do the mappings produced by the six
// heuristics degrade when stage/transfer durations jitter? The paper's cost
// model is deterministic; this study (an ablation of ours, announced in
// DESIGN.md) feeds each heuristic's mapping through the jittered DES at
// increasing noise amplitudes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/sim/perturbation.hpp"

namespace pipesched::exp {

struct RobustnessStudyConfig {
  /// Jitter amplitudes applied to both compute and transfer durations.
  std::vector<Real> amplitudes = {0.0, 0.1, 0.2, 0.4};

  /// Trials per (heuristic, amplitude) cell.
  std::size_t trials = 6;

  /// DES stream length and warmup for the steady-state period estimate.
  std::size_t datasetCount = 300;
  std::size_t warmup = 100;

  /// Each heuristic runs at threshold = failureThreshold * (1 + slack).
  Real thresholdSlack = 0.1;

  /// Data sets are released every `releaseFactor * nominal period` time
  /// units (0 = saturated source). At the default 1.0 the stream arrives at
  /// exactly the predicted throughput: with zero jitter every data set then
  /// achieves the Eq.-2 latency, and any latency degradation measured at
  /// positive amplitudes is pure jitter-induced queue buildup.
  Real releaseFactor = 1.0;

  std::uint64_t seed = 20070628;
};

struct RobustnessRow {
  std::string heuristic;
  Real nominalPeriod = 0;
  Real nominalLatency = 0;
  /// meanPeriod / nominalPeriod per amplitude (1.0 = no degradation).
  std::vector<Real> periodDegradation;
  /// meanMaxLatency / nominalLatency per amplitude.
  std::vector<Real> latencyDegradation;
};

struct RobustnessStudy {
  RobustnessStudyConfig config;
  std::vector<RobustnessRow> rows;  ///< six heuristics, Table-1 order
};

/// Runs the study on one instance.
[[nodiscard]] RobustnessStudy runRobustnessStudy(const core::Evaluator& eval,
                                                 const RobustnessStudyConfig& config = {});

/// Table rendering (one row per heuristic, one column per amplitude).
void printRobustnessStudy(std::ostream& os, const RobustnessStudy& study);

}  // namespace pipesched::exp
