// Pareto-front studies: sweep every heuristic across its feasible threshold
// range on one instance, merge the outcomes into a non-dominated front, and
// (on small instances) measure its gap to the exact front. This quantifies
// the paper's "antagonistic criteria" claim instance by instance, beyond the
// averaged plots of Figures 2-7.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/core/pareto.hpp"

namespace pipesched::exp {

struct ParetoStudyConfig {
  /// Threshold grid resolution per heuristic.
  std::size_t pointsPerHeuristic = 24;

  /// Thresholds sweep from the heuristic's failure threshold up to
  /// failureThreshold * range (period family) / optimum * range (latency
  /// family).
  Real range = 3;
};

/// Threshold i of a `points`-point grid over [lo, lo*range-ish hi]. Shared by
/// the study sweep and the service portfolio so their fronts stay comparable
/// point for point (a single grid formula, not two hand-synced copies).
[[nodiscard]] inline Real sweepThreshold(Real lo, Real hi, std::size_t points, std::size_t i) {
  return points == 1
             ? lo
             : lo + (hi - lo) * static_cast<Real>(i) / static_cast<Real>(points - 1);
}

struct HeuristicFront {
  std::string heuristic;  ///< short name, e.g. "H1-SpMonoP"
  std::vector<core::ParetoPoint> front;
};

struct ParetoStudy {
  /// Non-dominated union over all heuristics (mappings retained).
  std::vector<core::ParetoPoint> merged;

  /// Per-heuristic non-dominated fronts, Table-1 order.
  std::vector<HeuristicFront> perHeuristic;
};

/// Sweeps all six heuristics on `eval`'s instance.
[[nodiscard]] ParetoStudy runParetoStudy(const core::Evaluator& eval,
                                         const ParetoStudyConfig& config = {});

/// Best latency achievable on `front` under a period bound; infinity when no
/// front point satisfies the bound. `front` must be non-dominated and sorted
/// by increasing period (the invariant of core::paretoFront).
[[nodiscard]] Real frontLatencyAt(const std::vector<core::ParetoPoint>& front, Real period);

/// Gap of `candidate` relative to `reference` (typically the exact front):
/// for each reference point, the relative excess latency of the candidate
/// front at that period.
struct FrontGap {
  Real meanRelativeExcess = 0;  ///< mean over reference points
  Real maxRelativeExcess = 0;
  std::size_t uncovered = 0;  ///< reference periods the candidate cannot meet
};

[[nodiscard]] FrontGap frontGap(const std::vector<core::ParetoPoint>& reference,
                                const std::vector<core::ParetoPoint>& candidate);

/// Table rendering of a study (one line per merged front point, plus which
/// heuristic contributed it when known).
void printParetoStudy(std::ostream& os, const ParetoStudy& study);

}  // namespace pipesched::exp
