// Plain-text/CSV table rendering used by the benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::exp {

/// Formats a Real with fixed precision, or "n/a" for NaN.
[[nodiscard]] std::string formatReal(Real value, int precision = 2);

/// Column-aligned text table with an optional header row.
class TextTable {
 public:
  void setHeader(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);

  /// Renders with aligned columns, a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as CSV (no alignment, comma-separated, header first).
  void printCsv(std::ostream& os) const;

  /// Renders as a GitHub-flavored Markdown table. Pipe characters inside
  /// cells are escaped; a table without a header gets an empty header row
  /// (Markdown requires one).
  void printMarkdown(std::ostream& os) const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pipesched::exp
