// Thread-based pipeline *skeleton executor* — the kind of runtime the paper's
// skeleton libraries provide. Given a mapping, it spawns one worker thread
// per interval, connects them with bounded queues, and streams data sets
// through, turning the model quantities into wall-clock durations:
//
//   * compute of interval j:   computeTime(I_j, alloc(j)) * timeScale seconds
//     of calibrated busy-spinning (different-speed processors are emulated by
//     scaling the spin duration);
//   * a transfer of size delta: delta/b * timeScale seconds spent by *both*
//     endpoints (sender before push, receiver after pop) — the one-port
//     rendezvous cost structure of the model.
//
// This demonstrates a mapping end-to-end and sanity-checks throughput against
// the predicted period; exact model validation is the DES simulator's job.
#pragma once

#include <cstdint>
#include <vector>

#include "pipesched/core/evaluation.hpp"

namespace pipesched::runtime {

struct ExecConfig {
  std::size_t datasetCount = 64;

  /// Queue capacity between adjacent interval workers.
  std::size_t queueCapacity = 4;

  /// Wall-clock seconds per model time unit.
  double timeScale = 1e-4;
};

struct ExecReport {
  /// Wall-clock seconds (from stream start) at which each data set left the
  /// pipeline, in completion order.
  std::vector<double> completionSeconds;

  double makespanSeconds = 0;
  /// Mean inter-completion time over the second half of the stream.
  double steadyPeriodSeconds = 0;
  /// Same, converted back to model time units (divide by timeScale).
  double steadyPeriodModelUnits = 0;

  std::size_t processedCount = 0;
  bool outputsInOrder = false;  ///< data sets left in FIFO order
};

/// Runs the mapped pipeline with real threads. Throws ModelError on invalid
/// mappings or configs.
[[nodiscard]] ExecReport executeMapping(const core::Evaluator& eval,
                                        const core::IntervalMapping& mapping,
                                        const ExecConfig& config = {});

}  // namespace pipesched::runtime
