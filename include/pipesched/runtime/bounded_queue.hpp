// Bounded multi-producer/multi-consumer FIFO used between the skeleton
// executor's interval workers. Blocking push/pop with close semantics;
// mutex-and-condvar based (the executor is a demonstration substrate, not a
// throughput record-setter — clarity wins).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "pipesched/core/types.hpp"

namespace pipesched::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw ModelError("BoundedQueue: capacity must be >= 1");
  }

  /// Blocks while full; throws ModelError when pushing into a closed queue.
  void push(T value) {
    std::unique_lock lock(mutex_);
    notFull_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) throw ModelError("BoundedQueue: push after close");
    items_.push_back(std::move(value));
    notEmpty_.notify_one();
  }

  /// Blocks while empty; returns nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    notEmpty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pops drain then return nullopt.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace pipesched::runtime
