// Portfolio solver: race every registry heuristic (H1..H6) — plus the exact
// enumerator when the instance is small — over the request's threshold grid,
// then Pareto-merge their fronts (core::paretoFront).
//
// Determinism contract: the merged front is a pure function of the instance
// and the configuration, independent of thread interleaving. Each member
// writes into its own pre-assigned slot and the merge concatenates slots in
// fixed member order, so racing the members on a pool cannot reorder the
// result. The work budget is likewise per-member (each sweep truncates at
// the same grid point no matter who runs first); only the optional wall-clock
// budget (off by default) trades determinism for latency bounds.
//
// Thread-safety audit (relied on by the pool mode): the six heuristics are
// stateless free functions behind MappingHeuristic, the registry factories
// build a fresh object per call, and Evaluator/Pipeline/Platform are
// immutable after construction — no shared mutable state anywhere on the
// solver path (verified over src/heuristics/ and src/exact/).
#pragma once

#include <cstdint>

#include "pipesched/service/request.hpp"
#include "pipesched/service/thread_pool.hpp"

namespace pipesched::service {

/// Work/time bounds on one portfolio run.
struct PortfolioBudget {
  /// Deterministic work bound: each heuristic evaluates at most this many
  /// grid points (the grid itself has SweepSpec::points entries).
  std::uint64_t maxRunsPerSolver = UINT64_MAX;

  /// Exact-enumerator work bound (complete mappings visited) before it gives
  /// up and leaves the front to the heuristics.
  std::uint64_t exactMappingLimit = 2'000'000;

  /// Wall-clock bound in milliseconds; 0 = unlimited. Checked between grid
  /// points. NOT deterministic — leave at 0 where reproducibility matters.
  double timeBudgetMs = 0;
};

struct PortfolioConfig {
  /// Enter the exact enumerator in the race when
  /// stages * processors <= exactCellLimit and processors <= exactProcessorLimit.
  bool useExact = true;
  std::size_t exactCellLimit = 48;
  std::size_t exactProcessorLimit = 6;

  PortfolioBudget budget;
};

/// Runs the portfolio on one instance. With `pool`, members race on its
/// workers (the call still blocks until all complete — do not invoke with a
/// pool from inside one of that pool's own tasks); without, they run serially
/// in member order. Both paths return identical results (see determinism
/// contract above). Throws ModelError on an invalid sweep spec.
[[nodiscard]] PortfolioResult runPortfolio(const core::Evaluator& eval, const SweepSpec& sweep,
                                           const PortfolioConfig& config = {},
                                           ThreadPool* pool = nullptr);

/// True when `config` admits the exact enumerator on this instance size.
[[nodiscard]] bool exactEligible(std::size_t stages, std::size_t processors,
                                 const PortfolioConfig& config);

}  // namespace pipesched::service
