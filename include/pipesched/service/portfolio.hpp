// Portfolio solver: race a configurable set of *members* over the request's
// threshold grid, then Pareto-merge their fronts (core::paretoFront).
//
// A PortfolioMember wraps any solver that can produce (threshold, value)
// front points. The built-in catalog covers
//   * the six registry heuristics H1..H6 (one member each, as in the paper);
//   * local-search and annealing *refiners* ("ls:HN" / "sa:HN"): at every
//     grid point they run the base heuristic, then polish its mapping with
//     heuristics::localSearch / heuristics::anneal under the same threshold —
//     they explore mappings the greedy splitting loop can never reach, and
//     never emit a point dominated by their seed's point at that threshold;
//   * the chains-to-chains solvers ("c2c", "c2c:ls") on instances they
//     accept (communication-homogeneous platforms): fixed-order DP over the
//     k fastest processors per work unit, resp. the order-refining local
//     search — every emitted point is a genuine mapping re-scored through
//     core::Evaluator, so the member stays sound even where the c2c cost
//     model ignores communication;
//   * the exact enumerator ("exact") when the instance is small.
//
// Determinism contract (tested by tests/service/test_portfolio_properties):
// the merged front is a pure function of the instance and the configuration,
// independent of thread interleaving. Each member writes into its own
// pre-assigned slot and the merge concatenates slots in fixed member order,
// so racing the members on a pool cannot reorder the result. All budgets are
// member-local — the work budget truncates every sweep at the same grid
// point, and the *drop policy* (see PortfolioConfig::dropAfter) decides from
// the member's own running front only, no matter who runs first. Only the
// optional wall-clock budget (off by default) trades determinism for latency
// bounds.
//
// Thread-safety audit (relied on by the pool mode): the heuristics, the
// refiners and the c2c solvers are stateless free functions (annealing is
// deterministic from its explicit seed), member objects are created fresh
// per runPortfolio call and touched by one task each, and
// Evaluator/Pipeline/Platform are immutable after construction — no shared
// mutable state anywhere on the solver path (verified over src/heuristics/,
// src/exact/ and src/c2c/).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pipesched/heuristics/registry.hpp"
#include "pipesched/service/request.hpp"
#include "pipesched/service/result_cache.hpp"
#include "pipesched/service/thread_pool.hpp"

namespace pipesched::service {

/// Work/time bounds on one portfolio run.
struct PortfolioBudget {
  /// Deterministic work bound: each member evaluates at most this many work
  /// units (grid points for the sweeping members, processor counts for the
  /// c2c ladder, one unit for the exact enumerator).
  std::uint64_t maxRunsPerSolver = UINT64_MAX;

  /// Exact-enumerator work bound (complete mappings visited) before it gives
  /// up and leaves the front to the heuristics.
  std::uint64_t exactMappingLimit = 2'000'000;

  /// Wall-clock bound in milliseconds; 0 = unlimited. Checked between work
  /// units. NOT deterministic — leave at 0 where reproducibility matters.
  double timeBudgetMs = 0;
};

struct PortfolioConfig {
  /// Enter the exact enumerator in the race when
  /// stages * processors <= exactCellLimit and processors <= exactProcessorLimit.
  bool useExact = true;
  std::size_t exactCellLimit = 48;
  std::size_t exactProcessorLimit = 6;

  /// Member selection, by catalog id ("H1".."H6", "ls:H1".."ls:H6",
  /// "sa:H1".."sa:H6", "c2c", "c2c:ls", "exact"). Empty = the default race
  /// (H1..H6 plus exact), byte-identical to the pre-registry portfolio.
  /// Resolved by makePortfolioMembers; an unknown id throws ModelError.
  std::vector<std::string> members;

  /// Budget-aware member dropping: skip a member's remaining work units once
  /// `dropAfter` consecutive units contributed no point that joined the
  /// member's *own* running front (member-local, hence deterministic under
  /// any worker count). 0 = never drop. Skipped units are reported in
  /// SolverContribution::skipped.
  std::size_t dropAfter = 0;

  /// Proposed moves per annealing-refiner run (one run per grid point —
  /// deliberately far below the ablation default of 20'000).
  std::size_t annealingMoves = 2'000;

  PortfolioBudget budget;
};

// ---------------------------------------------------------------------------
// Cross-request sub-result sharing.
//
// The sub-result cache memoizes the portfolio's *work units* under the
// sweep-independent instance identity (instanceIdentity in fingerprint.hpp):
// a (member, threshold) solve is the same computation whichever sweep spec
// dispatched it, so a new sweep over a seen instance only solves the
// thresholds it has not met. Three payload kinds share one value type:
//   * unit outputs — the points a work unit emitted (whole-unit skip);
//   * seeds — the raw base-heuristic result at a threshold, which the ls/sa
//     refiners warm-start from instead of re-running the base heuristic;
//   * scalars — the member's grid anchor (failure threshold / latency
//     optimum), an instance property every sweep of the instance recomputes.
//
// Determinism guarantee (pinned by tests/service/test_subresult_share.cpp):
// every memoized payload is a pure function of (instance, share key) under a
// fixed PortfolioConfig, so sharing can only skip redundant work — fronts are
// byte-identical with sharing on or off, serial or pooled. The store must not
// be shared across services with different portfolio configs (the keys embed
// only the config knobs a unit's output depends on: annealing moves, the
// exact mapping limit). Scope: the guarantee presumes a deterministic run to
// begin with — a wall-clock budget (PortfolioBudget::timeBudgetMs > 0, off by
// default and already documented as non-reproducible) cuts sweeps by timing,
// which sharing changes.

/// One memoized work unit / warm-start payload.
struct SubResult {
  std::vector<core::ParetoPoint> points;  ///< the unit's emitted points

  /// Raw base-heuristic result at the unit's threshold (mapping valid even
  /// on failure — the annealing refiner anneals from failed seeds too).
  std::optional<heuristics::Result> seed;

  /// Scalar payload (grid anchor).
  std::optional<Real> scalar;
};

/// Instance-keyed store of SubResults (see result_cache.hpp for semantics).
using SubResultCache = ShardedLruStore<SubResult>;

/// Binds one runPortfolio call to the sub-result cache: the instance's
/// sweep-independent identity plus the store. Copy-cheap view; thread-safe
/// (the store shards its locks, the identity is immutable).
///
/// Entry identity is the 128-bit instance fingerprint (two independently
/// seeded streams — instanceFingerprint in fingerprint.hpp) plus the unit
/// key. Unlike the whole-result cache, the canonical instance *text* is not
/// embedded in every entry key: with thousands of per-threshold units per
/// instance it would replicate kilobytes of hexfloat rendering per entry
/// and re-hash it on every unit lookup. The cost is a ~2^-64-per-pair
/// aliasing chance on a fingerprint collision — accepted for this layer
/// (the exact-keyed whole-result cache still guards full requests).
class SubShare {
 public:
  SubShare(SubResultCache* cache, Fingerprint instanceFp)
      : cache_(cache), fp_(instanceFp), prefix_(fp_.hex() + '\x1f') {}

  [[nodiscard]] std::optional<SubResult> load(const std::string& unitKey) const {
    if (cache_ == nullptr) return std::nullopt;
    return cache_->get(fp_, prefix_ + unitKey);
  }

  void store(const std::string& unitKey, SubResult memo) const {
    if (cache_ != nullptr) cache_->put(fp_, prefix_ + unitKey, std::move(memo));
  }

 private:
  SubResultCache* cache_ = nullptr;
  Fingerprint fp_;
  std::string prefix_;  ///< fingerprint hex + unit separator, built once
};

/// One pluggable portfolio member. Implementations must be safe to run
/// concurrently with every other member (no shared mutable state); one
/// member instance is driven by exactly one task per runPortfolio call.
class PortfolioMember {
 public:
  /// Per-instance work session. units() work units are executed in order by
  /// the portfolio runner, which owns the budget / deadline / drop checks —
  /// and the sub-result lookup/publish — between units.
  class Run {
   public:
    virtual ~Run() = default;

    /// Number of work units this member wants on this instance.
    [[nodiscard]] virtual std::size_t units() const = 0;

    /// Share identity of unit i's output, stable across sweeps of the same
    /// instance and distinct across units ("" = this unit is not shareable).
    /// Must embed every config knob the unit's output depends on.
    [[nodiscard]] virtual std::string unitKey(std::size_t /*i*/) const { return {}; }

    /// Executes work unit i (< units()); returns the feasible points it
    /// produced (possibly none). Points must carry their realizing mapping.
    [[nodiscard]] virtual std::vector<core::ParetoPoint> unit(std::size_t i) = 0;

    /// Called right after a fresh unit(i), before the runner publishes its
    /// memo: attach the member's warm-start payload (e.g. the raw base
    /// heuristic result other members can seed from).
    virtual void attachSeed(std::size_t /*i*/, SubResult& /*memo*/) {}

    /// Work units this run warm-started from cached seed payloads (grid
    /// anchors, base-heuristic seeds) — reported as contribution.seeded.
    [[nodiscard]] virtual std::size_t seeded() const { return 0; }

    /// True when an internal limit (e.g. the exact mapping limit) truncated
    /// the member's own work; reported as contribution.completed == false.
    [[nodiscard]] virtual bool truncated() const { return false; }
  };

  virtual ~PortfolioMember() = default;

  /// Stable catalog id, e.g. "H1", "ls:H4", "c2c", "exact".
  [[nodiscard]] virtual std::string id() const = 0;

  /// Name reported in SolverContribution::solver (e.g. "H1-SpMonoP",
  /// "ls:H1", "c2c-dp", "exact").
  [[nodiscard]] virtual std::string solverName() const = 0;

  /// Whether the member can run on this instance under `config`.
  [[nodiscard]] virtual bool accepts(const core::Evaluator& eval,
                                     const PortfolioConfig& config) const = 0;

  /// Starts a work session on one instance. `share` (nullable) lets the run
  /// consume and publish warm-start payloads; the runner separately handles
  /// whole-unit memoization through unitKey(). (No default argument: on a
  /// virtual it would bind to the static type and overrides don't repeat it.)
  [[nodiscard]] virtual std::unique_ptr<Run> start(const core::Evaluator& eval,
                                                   const SweepSpec& sweep,
                                                   const PortfolioConfig& config,
                                                   const SubShare* share) const = 0;
};

/// One catalog row (see portfolioMemberCatalog).
struct PortfolioMemberInfo {
  std::string id;          ///< catalog id, e.g. "ls:H1"
  std::string solver;      ///< SolverContribution::solver name
  std::string description; ///< one-line human description
};

/// Every member id the registry knows, in fixed race order.
[[nodiscard]] std::vector<PortfolioMemberInfo> portfolioMemberCatalog();

/// The default race: {"H1".."H6", "exact"} — what an empty
/// PortfolioConfig::members resolves to.
[[nodiscard]] std::vector<std::string> defaultPortfolioMembers();

/// Every catalog id in race order (the CLI's `--portfolio-members all`).
[[nodiscard]] std::vector<std::string> allPortfolioMembers();

/// Instantiates config.members (the default set when empty), in the given
/// order. Throws ModelError on an unknown id.
[[nodiscard]] std::vector<std::unique_ptr<PortfolioMember>> makePortfolioMembers(
    const PortfolioConfig& config);

/// Runs the portfolio on one instance. With `pool`, members race on its
/// workers (the call still blocks until all complete — do not invoke with a
/// pool from inside one of that pool's own tasks); without, they run serially
/// in member order. With `share`, work units are memoized/reused through the
/// sub-result cache (see SubShare above — results are byte-identical with or
/// without it). Both paths return identical results (see determinism
/// contract above). Throws ModelError on an invalid sweep spec or an unknown
/// member id.
///
/// `requestDeadline` (inactive by default) is the caller's absolute
/// completion deadline: the runner takes the earlier of it and the
/// config's wall-clock budget, drops not-yet-started members and cuts unit
/// loops as it nears, and flags the result `degraded` — a partial front is
/// returned promptly instead of hanging or silently truncating. A member
/// that throws (or hits an armed `member.<id>` fault site) is contained the
/// same way: its partial points merge, the result is flagged degraded.
[[nodiscard]] PortfolioResult runPortfolio(const core::Evaluator& eval, const SweepSpec& sweep,
                                           const PortfolioConfig& config = {},
                                           ThreadPool* pool = nullptr,
                                           const SubShare* share = nullptr,
                                           const Deadline& requestDeadline = {});

/// True when `config` admits the exact enumerator on this instance size.
[[nodiscard]] bool exactEligible(std::size_t stages, std::size_t processors,
                                 const PortfolioConfig& config);

}  // namespace pipesched::service
