// Instance canonicalization + fingerprinting (service dedupe/cache keys).
//
// Two keys are derived from a Request:
//
//   * canonicalKey() — an exact, human-auditable text rendering of every
//     model-relevant field (hexfloat precision, so distinct doubles never
//     collide). Used as the collision-free cache/dedupe key.
//   * fingerprint() — a 128-bit hash of the same canonical content, used to
//     pick cache shards and as a compact identity in logs and reports.
//
// The display name is deliberately excluded from both (see request.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "pipesched/service/request.hpp"

namespace pipesched::service {

// struct Fingerprint lives in request.hpp (outcomes carry one); the
// functions that produce it live here.

/// Exact canonical text form of the request's model content.
[[nodiscard]] std::string canonicalKey(const Request& request);

/// Hash of canonicalKey()'s content (streamed, not via the string).
[[nodiscard]] Fingerprint fingerprint(const Request& request);

/// Both identities of one request. Produced by a single field walk — the
/// hot paths (async workers, batch grouping) need the pair and should not
/// serialize the instance twice.
struct RequestIdentity {
  Fingerprint fp;
  std::string key;
};

[[nodiscard]] RequestIdentity requestIdentity(const Request& request);

/// Sweep-independent identity of the request's *instance* (pipeline +
/// platform + communication model, excluding the sweep spec and the display
/// name). Two requests that sweep the same instance with different grids
/// share this identity — it keys the cross-request sub-result cache, where
/// per-threshold solves are valid for every sweep of the instance.
[[nodiscard]] std::string instanceKey(const Request& request);
[[nodiscard]] Fingerprint instanceFingerprint(const Request& request);
[[nodiscard]] RequestIdentity instanceIdentity(const Request& request);

/// Exact hexfloat rendering used by the canonical form (and by
/// describeOutcome, which must stay bit-faithful to it).
[[nodiscard]] std::string renderRealHex(Real value);

}  // namespace pipesched::service
