// Instance canonicalization + fingerprinting (service dedupe/cache keys).
//
// Two keys are derived from a Request:
//
//   * canonicalKey() — an exact, human-auditable text rendering of every
//     model-relevant field (hexfloat precision, so distinct doubles never
//     collide). Used as the collision-free cache/dedupe key.
//   * fingerprint() — a 128-bit hash of the same canonical content, used to
//     pick cache shards and as a compact identity in logs and reports.
//
// The display name is deliberately excluded from both (see request.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "pipesched/service/request.hpp"

namespace pipesched::service {

/// Compact 128-bit request identity (two independently-seeded FNV streams).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const noexcept = default;

  /// 32 lowercase hex digits.
  [[nodiscard]] std::string hex() const;
};

/// Exact canonical text form of the request's model content.
[[nodiscard]] std::string canonicalKey(const Request& request);

/// Hash of canonicalKey()'s content (streamed, not via the string).
[[nodiscard]] Fingerprint fingerprint(const Request& request);

/// Exact hexfloat rendering used by the canonical form (and by
/// describeOutcome, which must stay bit-faithful to it).
[[nodiscard]] std::string renderRealHex(Real value);

}  // namespace pipesched::service
