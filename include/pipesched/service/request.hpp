// Request/response types of the portfolio scheduling service.
//
// A Request is a self-contained scheduling problem: the application, the
// platform, the communication model, and the threshold family the portfolio
// sweeps (grid resolution + range multiplier, as in exp::ParetoStudyConfig).
// Everything that influences the computed front is part of the request — and
// therefore part of its fingerprint — while presentation-only fields (the
// display name) are explicitly excluded.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/core/pareto.hpp"
#include "pipesched/core/pipeline.hpp"
#include "pipesched/core/platform.hpp"
#include "pipesched/obs/trace.hpp"

namespace pipesched::service {

/// Compact 128-bit request identity (two independently-seeded FNV streams
/// over the canonical request content — see fingerprint.hpp). Carried on
/// outcomes so reporting paths never re-canonicalize the instance.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const noexcept = default;

  /// 32 lowercase hex digits.
  [[nodiscard]] std::string hex() const;
};

/// Threshold grid each portfolio member sweeps: `points` thresholds from the
/// solver's failure threshold (resp. latency optimum) up to that value times
/// `range`. Mirrors exp::ParetoStudyConfig so service fronts are comparable
/// with the per-instance study tool.
struct SweepSpec {
  std::size_t points = 24;
  Real range = 3;

  [[nodiscard]] bool operator==(const SweepSpec&) const noexcept = default;
};

/// Absolute per-request deadline, stamped when the request is admitted
/// (parse time for JSONL lines, submit time for in-memory requests).
/// Inactive by default; an inactive deadline never expires. QoS-only, like
/// `Request::name`: excluded from the fingerprint, so requests differing
/// only by deadline still dedupe, coalesce, and share cache entries.
struct Deadline {
  std::chrono::steady_clock::time_point at{};
  bool active = false;

  /// Deadline `ms` milliseconds from now; inactive when `ms <= 0`.
  [[nodiscard]] static Deadline in(double ms) {
    Deadline d;
    if (ms > 0) {
      d.active = true;
      d.at = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
    }
    return d;
  }

  [[nodiscard]] bool expired() const {
    return active && std::chrono::steady_clock::now() >= at;
  }

  /// Milliseconds until expiry (negative when past); a large sentinel when
  /// inactive so `remainingMs() > x` reads naturally for both cases.
  [[nodiscard]] double remainingMs() const {
    if (!active) return 1e18;
    return std::chrono::duration<double, std::milli>(
               at - std::chrono::steady_clock::now())
        .count();
  }

  /// The earlier of two deadlines (inactive ones never win).
  [[nodiscard]] static Deadline earlier(const Deadline& a, const Deadline& b) {
    if (!a.active) return b;
    if (!b.active) return a;
    return a.at <= b.at ? a : b;
  }
};

/// One scheduling problem submitted to the service.
struct Request {
  core::Pipeline pipeline;
  core::Platform platform;
  core::CommModel model = core::CommModel::kSequential;
  SweepSpec sweep;

  /// Display-only label (batch reports, logs). NOT part of the fingerprint:
  /// two requests differing only by name dedupe to one solve.
  std::string name;

  /// Seconds the source spent parsing this request's text form; 0 when the
  /// request was built in memory or observability is off. Display-only, like
  /// `name`: excluded from the fingerprint and every canonical rendering.
  double parseSeconds = 0;

  /// Absolute completion deadline (see Deadline). Inactive by default.
  /// QoS-only: excluded from the fingerprint and canonical renderings; an
  /// expired deadline turns the outcome into a flagged timeout or a
  /// `degraded` partial front, never a silent truncation.
  Deadline deadline;
};

/// What one portfolio member contributed to a solved request.
struct SolverContribution {
  std::string solver;        ///< "H1-SpMonoP".."H6-SpBiL", "ls:H1".."sa:H6",
                             ///< "c2c-dp", "c2c-ls" or "exact"
  std::size_t points = 0;    ///< feasible points produced before merging
  bool completed = false;    ///< false when the budget cut the sweep short
  std::size_t units = 0;     ///< work units the member wanted on this instance
  std::size_t novel = 0;     ///< points that joined the member's own running front
  std::size_t merged = 0;    ///< merged-front points credited to this member
                             ///< (first member in race order with the coordinates)
  std::size_t skipped = 0;   ///< units skipped by budget-aware dropping
  bool dropped = false;      ///< the drop policy fired on this member
  /// The member aborted on an internal error (thrown exception or an armed
  /// fault-injection site): its partial points still merge, the front is
  /// flagged degraded. Timing/fault provenance — excluded from
  /// describeOutcome and canonical JSON, like reused/wallSeconds.
  bool failed = false;
  /// Cross-request work sharing provenance (excluded from describeOutcome,
  /// like fromCache/deduped: how much work was *saved* depends on cache state
  /// and timing, while the resulting points are byte-identical either way).
  std::size_t reused = 0;    ///< whole units served from the sub-result cache
  std::size_t seeded = 0;    ///< units warm-started from a cached seed payload
                             ///< (base-heuristic mappings, feasibility ranges)
  /// Wall seconds this member's run took inside the race. Timing-only
  /// provenance (excluded from describeOutcome and canonical JSON, like
  /// reused/seeded): the points are identical whatever the clock said.
  double wallSeconds = 0;
};

/// The service's answer for one request: the merged non-dominated front over
/// every portfolio member, sorted by increasing period (core::paretoFront
/// invariant), with realizing mappings attached.
struct PortfolioResult {
  std::vector<core::ParetoPoint> front;
  std::vector<SolverContribution> solvers;  ///< fixed member race order (accepted members)
  bool exactUsed = false;        ///< the exact enumerator joined the race
  bool budgetExhausted = false;  ///< some member was cut short by the budget
  /// The front is partial for a *non-deterministic* reason: the request
  /// deadline cut members short or a member failed mid-run. Distinct from
  /// budgetExhausted (a deterministic config property): degraded results are
  /// never cached, and JSON emits `"degraded":true` only when set (so
  /// healthy outputs stay byte-identical). Excluded from describeOutcome,
  /// which only renders timing-independent content.
  bool degraded = false;
  /// Stage timings for this solve (timing-only, excluded from canonical
  /// renderings): the member race wall and the merge/attribution wall.
  double memberRaceSeconds = 0;
  double mergeSeconds = 0;
};

/// Batch outcome slot; `ok == false` carries the error text instead of a
/// result so one malformed request cannot sink the rest of the batch.
struct RequestOutcome {
  bool ok = false;
  PortfolioResult result;
  std::string error;
  bool fromCache = false;  ///< served from the result cache
  bool deduped = false;    ///< shared another identical request's solve
  /// The request's deadline expired before a result could be produced
  /// (queued past the deadline, or a coalesced owner finished too late).
  /// Always paired with ok == false and an explanatory error; JSON emits
  /// `"timed_out":true` only when set.
  bool timedOut = false;
  /// Identity of the request this outcome answers. Set by every service and
  /// stream solve path (failures included); excluded from describeOutcome,
  /// so the byte-identity contract is unaffected.
  Fingerprint fingerprint;
  /// Per-request latency breakdown, set only when obs::tracingEnabled() was
  /// on while this outcome was produced. Shared (not copied) by dedup and
  /// coalesce fan-out; excluded from describeOutcome and from JSON output
  /// unless the caller asked for traces.
  std::shared_ptr<const obs::RequestTrace> trace;
};

}  // namespace pipesched::service
