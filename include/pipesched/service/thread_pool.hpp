// Fixed-size worker pool shared by the service's solvers.
//
// Deliberately minimal: submit() hands a task to the workers and returns a
// future; tasks must not block on other tasks' futures (no work stealing, so
// that would deadlock a full pool). A pool constructed with zero threads runs
// every task inline in submit() — the degenerate form used for strictly
// serial reference runs.
//
// Exception safety (audited, pinned by tests/service/test_thread_pool.cpp):
// a throwing task — std or not — never takes down a worker or the process.
// std::packaged_task stores the exception in the future's shared state;
// future.get() rethrows it, and a discarded future discards it silently.
// Service-level callers convert it into a failed RequestOutcome instead of
// letting it reach the pool (see SchedulingService::solveUncached).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pipesched::service {

class ThreadPool {
 public:
  /// `threads == 0` => inline execution (no workers spawned).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue: blocks until every submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Schedules `task`; the future carries its exception on throw.
  std::future<void> submit(std::function<void()> task);

  /// A sensible default worker count for this machine (>= 1).
  [[nodiscard]] static std::size_t defaultThreadCount();

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pipesched::service
