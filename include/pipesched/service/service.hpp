// The portfolio scheduling service: the seam between the per-instance
// solvers and a deployable, traffic-serving scheduler.
//
//   SchedulingService service(config);
//   BatchResult out = service.solveBatch(requests);
//
// solve() answers one request — cache lookup, then a portfolio race across
// the pool's workers. solveBatch() processes thousands of requests with
// bounded parallelism (one pool task per *unique* request; within-request
// solving stays serial inside its worker so a saturated pool cannot
// deadlock), deduplicating identical requests via their fingerprint and
// returning outcomes in input order — byte-identical to solving each request
// serially, whatever the thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pipesched/service/fingerprint.hpp"
#include "pipesched/service/portfolio.hpp"
#include "pipesched/service/request.hpp"
#include "pipesched/service/result_cache.hpp"
#include "pipesched/service/thread_pool.hpp"

namespace pipesched::service {

struct ServiceConfig {
  /// Pool size; 0 = run everything inline (the serial reference mode).
  std::size_t threads = 0;

  /// Result-cache entries (0 disables caching) and shard count.
  std::size_t cacheCapacity = 1024;
  std::size_t cacheShards = 8;

  /// Cross-request sub-result sharing: memoize per-threshold work units and
  /// warm-start seeds under the sweep-independent instance identity, so a
  /// new sweep over a seen instance only solves the thresholds it has not
  /// met. Fronts are byte-identical with sharing on or off (see the
  /// determinism guarantee in portfolio.hpp; like every reproducibility
  /// property here it presumes no wall-clock budget) — only the work
  /// changes.
  bool shareSubResults = true;

  /// Sub-result cache entries (work units, much smaller than whole results)
  /// and shard count. 0 also disables sharing.
  std::size_t subCacheCapacity = 32768;
  std::size_t subCacheShards = 8;

  PortfolioConfig portfolio;
};

/// Per-member contribution totals over the fresh solves of one batch (cache
/// hits and dedupe copies excluded — they repeat a prior solve's numbers).
/// Rows appear in first-seen member order, which is deterministic: outcomes
/// are aggregated in input order and members race in fixed catalog order.
struct MemberBatchStats {
  std::string solver;         ///< SolverContribution::solver
  std::uint64_t runs = 0;     ///< fresh solves this member took part in
  std::uint64_t points = 0;   ///< feasible points produced before merging
  std::uint64_t novel = 0;    ///< points that joined the member's own front
  std::uint64_t merged = 0;   ///< merged-front points credited to the member
  std::uint64_t skipped = 0;  ///< work units skipped by budget-aware dropping
  std::uint64_t dropped = 0;  ///< runs on which the drop policy fired
  std::uint64_t reused = 0;   ///< whole units served from the sub-result cache
  std::uint64_t seeded = 0;   ///< units warm-started from cached seed payloads

  /// Folds one solve's contribution into this row (counts one run).
  void add(const SolverContribution& c) {
    runs += 1;
    points += c.points;
    novel += c.novel;
    merged += c.merged;
    skipped += c.skipped;
    dropped += c.dropped ? 1 : 0;
    reused += c.reused;
    seeded += c.seeded;
  }

  /// Folds another row for the same member into this one.
  void merge(const MemberBatchStats& other) {
    runs += other.runs;
    points += other.points;
    novel += other.novel;
    merged += other.merged;
    skipped += other.skipped;
    dropped += other.dropped;
    reused += other.reused;
    seeded += other.seeded;
  }
};

/// Aggregate accounting of one solveBatch() call. Every request slot lands
/// in exactly one of the four buckets below, so
/// solved + cacheHits + deduped + failed == requests.
struct BatchStats {
  std::size_t requests = 0;
  std::size_t solved = 0;      ///< portfolio ran and succeeded (unique misses)
  std::size_t failed = 0;      ///< outcomes with ok == false (duplicates included)
  std::size_t cacheHits = 0;   ///< served straight from the cache
  std::size_t deduped = 0;     ///< shared an identical in-batch request's ok solve
  double wallSeconds = 0;
  double requestsPerSecond = 0;
  /// Cross-request work sharing over the fresh solves: sub-result cache hits
  /// (whole units + warm-start seeds) and the whole-unit subset. How much is
  /// shared depends on cache state and, under a pool, timing — the *results*
  /// never do.
  std::uint64_t subHits = 0;
  std::uint64_t subUnitsReused = 0;
  std::vector<MemberBatchStats> members;  ///< per-member totals (fresh solves)
};

struct BatchResult {
  std::vector<RequestOutcome> outcomes;  ///< same order as the input requests
  BatchStats stats;
};

class SchedulingService {
 public:
  explicit SchedulingService(ServiceConfig config = {});

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

  /// Solves one request: cache lookup, then a portfolio race on the pool.
  /// Never throws on solver failure — the outcome carries the error text.
  [[nodiscard]] RequestOutcome solve(const Request& request);

  /// As above, with the caller's precomputed identity (must be
  /// requestIdentity(request)) — spares the hot async path a second
  /// canonicalization walk per request.
  [[nodiscard]] RequestOutcome solve(const Request& request, const RequestIdentity& identity);

  /// As above, continuing a caller-assembled per-request trace (the stream
  /// worker pre-fills parse/queue-wait/fingerprint stages). The service adds
  /// its own stages, folds its wall time into `trace->totalSeconds`, and
  /// attaches the finished trace to the outcome. `trace` may be null.
  [[nodiscard]] RequestOutcome solve(const Request& request, const RequestIdentity& identity,
                                     obs::RequestTrace* trace);

  /// Batch entry point (see file comment for the parallelism/determinism
  /// contract). Output ordering matches `requests`.
  [[nodiscard]] BatchResult solveBatch(const std::vector<Request>& requests);

  [[nodiscard]] CacheStats cacheStats() const { return cache_.stats(); }

  /// Counters of the instance-keyed sub-result cache (cross-request work
  /// sharing); all zero when ServiceConfig::shareSubResults is off.
  [[nodiscard]] CacheStats subCacheStats() const { return subCache_.stats(); }

  void clearCache() {
    cache_.clear();
    subCache_.clear();
  }

 private:
  [[nodiscard]] RequestOutcome solveUncached(const Request& request, ThreadPool* pool);

  ServiceConfig config_;
  ResultCache cache_;
  SubResultCache subCache_;
  ThreadPool pool_;
};

/// Canonical text rendering of an outcome (hexfloat metrics + mappings) —
/// the form the byte-identity tests and the CLI's JSON diffing rely on.
[[nodiscard]] std::string describeOutcome(const RequestOutcome& outcome);

}  // namespace pipesched::service
