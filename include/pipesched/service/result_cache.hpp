// Sharded LRU stores for solved portfolio results and memoized sub-results.
//
// ShardedLruStore<Value> is the shared mechanism: keyed by an exact canonical
// text key (collision-free; the 128-bit fingerprint only selects the shard),
// so a hit always returns a value stored for a byte-identical key. Each shard
// holds its own mutex, map and LRU list — concurrent lookups on different
// shards never contend. Values are returned by copy: the store stays
// internally consistent however callers mutate their copies.
//
// Capacity semantics (pinned by tests/service/test_result_cache.cpp): the
// configured capacity is spread over the shards at ceil(capacity/shards)
// entries *per shard*, so total residency may exceed `capacity` by up to
// shards-1 entries when the key distribution is perfectly even. The bound is
// per-shard by design — a global LRU would serialize every lookup on one
// lock, defeating the sharding.
//
// Two instantiations serve the service layer:
//   * ResultCache = ShardedLruStore<PortfolioResult> — whole solved requests,
//     keyed by the full canonical request key (instance + sweep spec);
//   * SubResultCache (see portfolio.hpp) — per-threshold work units and
//     warm-start seeds, keyed by the sweep-independent instance key plus a
//     per-unit share key.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipesched/service/fingerprint.hpp"
#include "pipesched/service/request.hpp"

namespace pipesched::service {

/// Aggregate cache counters (summed over shards).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hitRatio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Value>
class ShardedLruStore {
 public:
  /// `capacity` entries total, spread over `shards` independent shards
  /// (each shard holds ceil(capacity/shards) — see the capacity semantics in
  /// the file comment). capacity == 0 disables the store: get() always
  /// misses, put() is a no-op.
  explicit ShardedLruStore(std::size_t capacity, std::size_t shards = 8) : capacity_(capacity) {
    if (shards == 0) shards = 1;
    shards = std::min(shards, std::max<std::size_t>(capacity, 1));
    perShardCapacity_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
  }

  ShardedLruStore(const ShardedLruStore&) = delete;
  ShardedLruStore& operator=(const ShardedLruStore&) = delete;

  /// Copy of the stored value for `key`, refreshing its LRU position.
  [[nodiscard]] std::optional<Value> get(const Fingerprint& fp, const std::string& key) {
    Shard& shard = shardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
    return it->second->value;
  }

  /// Inserts (or refreshes) `value` under `key`, evicting the shard's least
  /// recently used entry when full.
  void put(const Fingerprint& fp, const std::string& key, Value value) {
    if (capacity_ == 0) return;
    Shard& shard = shardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= perShardCapacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index.emplace(shard.lru.front().key, shard.lru.begin());
    ++shard.insertions;
  }

  [[nodiscard]] CacheStats stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.insertions += shard->insertions;
      total.evictions += shard->evictions;
      total.entries += shard->lru.size();
    }
    return total;
  }

  /// Drops every entry (counters are kept).
  void clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t perShardCapacity() const noexcept { return perShardCapacity_; }
  [[nodiscard]] std::size_t shardCount() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    Value value;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shardFor(const Fingerprint& fp) {
    return *shards_[fp.hi % shards_.size()];
  }

  std::size_t capacity_ = 0;
  std::size_t perShardCapacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Whole-result cache of solved portfolio requests, keyed by the full
/// canonical request key.
using ResultCache = ShardedLruStore<PortfolioResult>;

// Compiled once in result_cache.cpp; every other TU links against it.
extern template class ShardedLruStore<PortfolioResult>;

}  // namespace pipesched::service
