// Sharded LRU cache of solved portfolio results.
//
// Keyed by the exact canonical request key (collision-free; the 128-bit
// fingerprint only selects the shard), so a hit always returns a front
// computed for a byte-identical request. Each shard holds its own mutex,
// map and LRU list — concurrent lookups on different shards never contend.
// Values are returned by copy: the cache stays internally consistent however
// callers mutate their copies.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipesched/service/fingerprint.hpp"
#include "pipesched/service/request.hpp"

namespace pipesched::service {

/// Aggregate cache counters (summed over shards).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hitRatio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ResultCache {
 public:
  /// `capacity` entries total, spread over `shards` independent shards
  /// (each shard holds ceil(capacity/shards)). capacity == 0 disables the
  /// cache: get() always misses, put() is a no-op.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copy of the cached result for `key`, refreshing its LRU position.
  [[nodiscard]] std::optional<PortfolioResult> get(const Fingerprint& fp, const std::string& key);

  /// Inserts (or refreshes) `result` under `key`, evicting the shard's least
  /// recently used entry when full.
  void put(const Fingerprint& fp, const std::string& key, PortfolioResult result);

  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry (counters are kept).
  void clear();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shardCount() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    PortfolioResult result;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shardFor(const Fingerprint& fp);

  std::size_t capacity_ = 0;
  std::size_t perShardCapacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pipesched::service
