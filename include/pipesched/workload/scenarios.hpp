// Named, realistic pipeline applications for the examples and docs — the
// kinds of workflow the paper's introduction motivates (skeleton-based
// streaming applications on lab clusters). Weights are in arbitrary
// "operation" units, data sizes in arbitrary "MB-like" units; only the
// ratios delta/b and w/s matter to the model (paper Section 5.1).
#pragma once

#include <string>
#include <vector>

#include "pipesched/core/pipeline.hpp"
#include "pipesched/core/platform.hpp"

namespace pipesched::workload {

/// One named scenario: pipeline plus per-stage labels (for pretty printing).
struct Scenario {
  std::string name;
  std::string description;
  core::Pipeline pipeline;
  std::vector<std::string> stageNames;
};

/// 8-stage video/image processing chain: decode is cheap, denoise and the
/// neural upscaler dominate, encode is mid-weight; frames shrink after crop.
[[nodiscard]] Scenario imageProcessingScenario();

/// 6-stage genomics variant-calling chain: alignment dominates, with large
/// intermediate files (compute-heavy, E3-like regime).
[[nodiscard]] Scenario genomicsScenario();

/// 10-stage streaming ETL chain: many cheap transforms over fat records
/// (communication-heavy, E4-like regime).
[[nodiscard]] Scenario etlScenario();

/// All scenarios above.
[[nodiscard]] std::vector<Scenario> allScenarios();

/// A 10-node "department lab" cluster: mixed-generation workstations
/// (speeds 4..20), 10 units/s LAN — the platform class the paper targets.
[[nodiscard]] core::Platform labCluster();

/// A 100-node cluster with the paper's speed distribution, fixed seed.
[[nodiscard]] core::Platform largeCluster();

}  // namespace pipesched::workload
