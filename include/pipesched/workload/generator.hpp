// Random application/platform generators reproducing the paper's
// experimental setting (Section 5.1):
//
//   * platforms: p processors, integer speeds uniform in [1, 20], link
//     bandwidth b = 10 (Communication Homogeneous);
//   * applications: four regimes E1-E4 controlling the delta and w ranges.
//
// | Exp | delta_i            | w_i               | regime                    |
// |-----|--------------------|-------------------|---------------------------|
// | E1  | 10 (fixed)         | U[1, 20]          | balanced, hom. comms      |
// | E2  | U[1, 100]          | U[1, 20]          | balanced, het. comms      |
// | E3  | U[1, 20]           | U[10, 1000]       | compute-dominated         |
// | E4  | U[1, 20]           | U[0.01, 10]       | communication-dominated   |
#pragma once

#include <optional>
#include <string>

#include "pipesched/core/pipeline.hpp"
#include "pipesched/core/platform.hpp"
#include "pipesched/workload/rng.hpp"

namespace pipesched::workload {

enum class ExperimentKind {
  kE1BalancedHomComm,
  kE2BalancedHetComm,
  kE3LargeComputations,
  kE4SmallComputations,
};

/// "E1" .. "E4".
[[nodiscard]] std::string experimentName(ExperimentKind kind);

/// Inverse of experimentName (case-insensitive); nullopt for unknown names.
/// The single E1..E4 name table — CLI flags and the JSONL request protocol
/// both resolve through here, so they cannot drift.
[[nodiscard]] std::optional<ExperimentKind> experimentKindFromName(const std::string& name);

/// Long description, e.g. "balanced comm/comp, homogeneous communications".
[[nodiscard]] std::string experimentDescription(ExperimentKind kind);

/// Paper defaults for the platform distribution.
struct PlatformParams {
  Real bandwidth = 10;
  std::int64_t speedMin = 1;
  std::int64_t speedMax = 20;
};

/// A random application with n stages following the experiment's regime.
[[nodiscard]] core::Pipeline randomPipeline(ExperimentKind kind, std::size_t n, Rng& rng);

/// A random Communication-Homogeneous platform with p processors.
[[nodiscard]] core::Platform randomPlatform(std::size_t p, Rng& rng,
                                            const PlatformParams& params = {});

/// A random fully-heterogeneous platform (extension experiments): same speed
/// distribution, per-link bandwidths uniform in [bwMin, bwMax].
[[nodiscard]] core::Platform randomHeterogeneousPlatform(std::size_t p, Rng& rng,
                                                         Real bwMin = 1, Real bwMax = 20);

/// One application/platform pair, as averaged over in the paper's plots.
struct InstancePair {
  core::Pipeline pipeline;
  core::Platform platform;
};

[[nodiscard]] InstancePair randomInstance(ExperimentKind kind, std::size_t n, std::size_t p,
                                          Rng& rng);

}  // namespace pipesched::workload
