// Deterministic random-number generation for reproducible experiments:
// xoshiro256** seeded through splitmix64. Every experiment in this repo is
// a pure function of its seed, so paper-figure regeneration is bit-stable
// across runs and machines.
#pragma once

#include <cstdint>

#include "pipesched/core/types.hpp"

namespace pipesched::workload {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t nextU64();

  /// Uniform double in [0, 1).
  Real nextReal();

  /// Uniform double in [lo, hi). Requires lo < hi.
  Real uniform(Real lo, Real hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Independent child stream: deterministic function of this generator's
  /// seed and `stream`, without advancing this generator. Used to give every
  /// (experiment, pair index) its own stream.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

}  // namespace pipesched::workload
