// Minimal recursive-descent JSON parser — the ingestion half of io/json.hpp's
// writer, added for the streaming engine's JSONL request protocol.
//
// Parses one complete JSON text into a JsonValue tree. Deliberately small:
// no SAX interface, no number-preserving bignum handling (numbers are
// doubles, with checked integer accessors), object members kept in input
// order with first-match lookup. Malformed input throws io::ParseError with
// the 1-based line of the offending character.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pipesched/io/format.hpp"

namespace pipesched::io {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> items;    ///< array elements
  std::vector<Member> members;     ///< object members, input order

  [[nodiscard]] bool isNull() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool isBool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool isNumber() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool isString() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool isArray() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool isObject() const noexcept { return type == Type::kObject; }

  /// First member named `key`, or nullptr (also when not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Checked accessors; throw std::runtime_error naming the expected type.
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] bool asBool() const;
  /// asNumber() restricted to exact non-negative integers (rejects 1.5, -1).
  [[nodiscard]] std::size_t asSize() const;
  [[nodiscard]] std::uint64_t asU64() const;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed; anything else after the value is an error).
[[nodiscard]] JsonValue parseJson(std::string_view text);

}  // namespace pipesched::io
