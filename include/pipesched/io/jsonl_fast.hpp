// Zero-copy warm-path ingestion: the allocation-free half of the JSONL
// request protocol, sitting beside the tree-building reader in json_reader.
//
// Three pieces, composed by stream::JsonlSource:
//
//  * BlockLineReader — replaces the per-line `std::getline` + `std::string`
//    churn with one large reused read buffer. Lines are carved out of the
//    buffer as *mutable* NUL-terminated spans; the buffer is recycled as the
//    stream advances, so a million-line corpus costs a handful of
//    allocations total. Bulk-copies whatever the stream has buffered
//    (`in_avail` + `sgetn`) and falls back to a single blocking `sbumpc`
//    only when nothing is available — interactive `serve` stdin keeps its
//    line-by-line latency, file and string streams ingest at memory speed.
//
//  * LiteParser — an in-place JSON tokenizer over a mutable line span.
//    Strings become string_views into the buffer (escape sequences are
//    decoded in place: every escape is at least as long as its decoding, so
//    the write cursor never passes the read cursor); numbers are parsed by
//    the same strtod the tree reader uses, NUL-swapping the token boundary
//    instead of copying the token out. Only the scalars of the top-level
//    object are materialized — nested containers are syntax-validated and
//    skipped, because the request protocol has no nested fields (accessing
//    one as a scalar throws the same type error the tree reader would).
//    Grammar, error messages and number semantics deliberately mirror
//    io::parseJson token for token; the differential suite in
//    tests/io/test_jsonl_fast.cpp pins the equivalence.
//
//  * io::readInstanceInPlace (format.hpp) — the same idiom for the inline
//    "text" instance payload, parsed straight out of the line buffer.
//
// A LiteDocument is a *view*: it borrows the line buffer it was parsed from
// and is invalidated by the next parse() or reader pull.
#pragma once

#include <cstddef>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pipesched::io {

/// One line carved from the reader's buffer: `data[size] == '\0'`, and the
/// bytes are writable (the in-place parser decodes escapes into them).
struct MutableLine {
  char* data = nullptr;
  std::size_t size = 0;
};

/// Block-reading line splitter over one reused buffer. Not seekable, not
/// thread-safe; one instance per stream, pulled serially like a Source.
class BlockLineReader {
 public:
  explicit BlockLineReader(std::istream& in, std::size_t blockSize = 64 * 1024);

  /// Next line without its '\n' (a trailing '\r' is kept, exactly like
  /// std::getline), NUL-terminated in place; nullopt at end of stream.
  /// The span is valid until the next call.
  [[nodiscard]] std::optional<MutableLine> next();

 private:
  /// Appends more bytes after end_; returns false at end of stream.
  bool fill();
  void ensureRoom();

  std::istream* in_;
  std::vector<char> buffer_;
  std::size_t blockSize_;
  std::size_t begin_ = 0;  ///< start of the unconsumed region
  std::size_t end_ = 0;    ///< end of the valid region
  std::size_t scan_ = 0;   ///< newline scan resumes here (never rescan)
  bool eof_ = false;
};

/// One parsed value. Scalars carry their payload; containers carry only
/// their type (see the header comment — the protocol has no nested fields).
struct LiteValue {
  enum class Type : unsigned char { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  char* textData = nullptr;  ///< kString payload, decoded in the line buffer
  std::size_t textSize = 0;

  [[nodiscard]] bool isNull() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool isBool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool isNumber() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool isString() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool isArray() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool isObject() const noexcept { return type == Type::kObject; }

  [[nodiscard]] std::string_view text() const noexcept { return {textData, textSize}; }

  /// Checked accessors; identical error wording to io::JsonValue.
  [[nodiscard]] std::string_view asString() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] std::size_t asSize() const;
  [[nodiscard]] std::uint64_t asU64() const;
};

struct LiteMember {
  std::string_view name;
  LiteValue value;
};

/// Parsed view of one line: the root value, plus — when the root is an
/// object — its members in input order. Borrowed storage throughout.
struct LiteDocument {
  LiteValue root;
  std::vector<LiteMember> members;

  [[nodiscard]] bool isObject() const noexcept { return root.isObject(); }

  /// First member named `key`, or nullptr (also when the root is not an
  /// object) — same contract as JsonValue::find.
  [[nodiscard]] const LiteValue* find(std::string_view key) const noexcept;
};

/// Reusable in-place parser: one instance per source, member arena recycled
/// across lines. parse() throws io::ParseError on malformed input with the
/// same messages as io::parseJson (line number always 1 — the input is one
/// line by construction).
class LiteParser {
 public:
  /// Parses the mutable text [data, data+size); requires data[size] == '\0'
  /// (BlockLineReader guarantees it; std::string satisfies it for tests).
  /// The returned view is valid until the next parse() or buffer reuse.
  const LiteDocument& parse(char* data, std::size_t size);

 private:
  [[noreturn]] void fail(const std::string& message) const;
  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= size_; }
  [[nodiscard]] char peek() const;
  char take();
  void expect(char c, const char* what);
  void skipWhitespace();

  LiteValue parseValue(bool topLevel);
  void parseTopLevelObject();
  void skipObject();
  void skipArray();
  std::string_view parseStringInPlace();
  unsigned readHex4();
  char* appendUnicodeEscape(char* out);
  LiteValue parseNumber();

  char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  LiteDocument doc_;
};

}  // namespace pipesched::io
