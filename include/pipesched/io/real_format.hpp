// Shortest-round-trip formatting of Real values, shared by the text and JSON
// writers: the printed form parses back to exactly the same double.
#pragma once

#include <string>

#include "pipesched/core/types.hpp"

namespace pipesched::io {

/// Shortest decimal string that parses back (via strtod) to exactly `value`.
/// Non-finite values format as "inf"/"-inf"/"nan".
[[nodiscard]] std::string formatReal(Real value);

}  // namespace pipesched::io
