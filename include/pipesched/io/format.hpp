// Plain-text serialization of instances (pipeline + platform) and interval
// mappings — the interchange format used by the `pipesched` command-line tool
// and the examples.
//
// Instance format (whitespace-separated tokens, `#` starts a comment, values
// may wrap across lines):
//
//   pipesched-instance v1
//   name <rest of line>            # optional, at most once
//   stages <n>
//   work <n reals>                 # w_0 .. w_{n-1}, all > 0
//   comm <n+1 reals>               # delta_0 .. delta_n, all >= 0
//   processors <p>
//   speeds <p reals>               # s_0 .. s_{p-1}, all > 0
//   bandwidth <b>                  # communication-homogeneous ...
//   links <p*p reals>              # ... or fully heterogeneous (row-major,
//   input-bandwidth <p reals>      #     diagonal ignored) with world links
//   output-bandwidth <p reals>
//
// Exactly one of `bandwidth` / (`links` + `input-bandwidth` +
// `output-bandwidth`) must be present.
//
// Mapping format:
//
//   pipesched-mapping v1
//   stages <n>
//   intervals <m>
//   interval <first> <last> <processor>     # m times, 0-based inclusive
//
// Replicated ("deal") mapping format — same shape, but each interval carries
// a comma-separated replica list:
//
//   pipesched-deal-mapping v1
//   stages <n>
//   intervals <m>
//   interval <first> <last> <p1,p2,...>     # round-robin replica set
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "pipesched/core/mapping.hpp"
#include "pipesched/core/pipeline.hpp"
#include "pipesched/core/platform.hpp"
#include "pipesched/core/replication.hpp"

namespace pipesched::io {

/// Raised on malformed input; the message contains the 1-based line number
/// of the offending token.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what), line_(line) {}

  /// 1-based line of the offending token (0 when end-of-input).
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// A deserialized instance: the application, the platform, and the optional
/// `name` line from the file.
struct Instance {
  core::Pipeline pipeline;
  core::Platform platform;
  std::string name;  ///< empty when the file carries no name
};

/// Parses an instance from `in`. Throws ParseError on malformed input and
/// ModelError when the values violate model invariants (e.g. negative work).
[[nodiscard]] Instance readInstance(std::istream& in);

/// Convenience: parse from a string.
[[nodiscard]] Instance readInstanceFromString(const std::string& text);

/// Parses an instance straight out of an in-memory character range — same
/// grammar, token semantics and error messages as readInstance (the two share
/// one templated implementation), without the istream per-character cost.
/// The zero-copy JSONL ingestion path feeds inline "text" payloads here.
[[nodiscard]] Instance readInstanceInPlace(const char* data, std::size_t size);

/// Reads an instance from the file at `path`. Throws ParseError (line numbers
/// relative to the file) or std::runtime_error when the file cannot be opened.
[[nodiscard]] Instance readInstanceFromFile(const std::string& path);

/// Writes `instance` in canonical form (round-trips through readInstance).
void writeInstance(std::ostream& out, const Instance& instance);

/// Writes to the file at `path`, overwriting. Throws std::runtime_error when
/// the file cannot be opened.
void writeInstanceToFile(const std::string& path, const Instance& instance);

/// Parses a mapping. The declared stage count must match `expectedStages`
/// when provided. Structural validity (tiling, distinct processors) is NOT
/// fully checked here — call IntervalMapping::validate against the target
/// instance for that.
[[nodiscard]] core::IntervalMapping readMapping(
    std::istream& in, std::optional<std::size_t> expectedStages = std::nullopt);

[[nodiscard]] core::IntervalMapping readMappingFromString(
    const std::string& text, std::optional<std::size_t> expectedStages = std::nullopt);

[[nodiscard]] core::IntervalMapping readMappingFromFile(
    const std::string& path, std::optional<std::size_t> expectedStages = std::nullopt);

/// Writes `mapping` in canonical form (round-trips through readMapping).
void writeMapping(std::ostream& out, const core::IntervalMapping& mapping);

void writeMappingToFile(const std::string& path, const core::IntervalMapping& mapping);

/// Parses a replicated (deal) mapping; same contract as readMapping.
[[nodiscard]] core::ReplicatedMapping readReplicatedMapping(
    std::istream& in, std::optional<std::size_t> expectedStages = std::nullopt);

[[nodiscard]] core::ReplicatedMapping readReplicatedMappingFromString(
    const std::string& text, std::optional<std::size_t> expectedStages = std::nullopt);

[[nodiscard]] core::ReplicatedMapping readReplicatedMappingFromFile(
    const std::string& path, std::optional<std::size_t> expectedStages = std::nullopt);

/// Writes a replicated mapping (round-trips through readReplicatedMapping).
void writeReplicatedMapping(std::ostream& out, const core::ReplicatedMapping& mapping);

void writeReplicatedMappingToFile(const std::string& path,
                                  const core::ReplicatedMapping& mapping);

}  // namespace pipesched::io
