// Minimal streaming JSON writer plus emitters for the core model types.
// Output-only by design: the text format in format.hpp is the ingestion
// path; JSON serves dashboards, plotting scripts and log pipelines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/core/mapping.hpp"
#include "pipesched/core/pipeline.hpp"
#include "pipesched/core/platform.hpp"

namespace pipesched::io {

/// Streaming JSON writer with automatic comma placement and optional
/// pretty-printing. Usage:
///
///   JsonWriter w(out, /*pretty=*/true);
///   w.beginObject();
///   w.key("n").value(3);
///   w.key("work").beginArray().value(1.5).value(2.0).endArray();
///   w.endObject();
///
/// Structural misuse (value without key inside an object, unbalanced
/// begin/end) throws std::logic_error — the writer is meant to make emitter
/// bugs loud in tests, not to silently produce invalid JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = false);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Emits an object key; must be followed by exactly one value/container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);  ///< non-finite values are emitted as null
  JsonWriter& value(std::size_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Convenience: key + scalar value.
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// Convenience: key + numeric array.
  JsonWriter& kvArray(const std::string& name, const std::vector<double>& values);

  /// True once the single top-level value is complete.
  [[nodiscard]] bool complete() const noexcept;

 private:
  enum class Frame { kObjectExpectKey, kObjectExpectValue, kArray };

  void beforeValue();
  void newlineIndent();
  void writeEscaped(const std::string& text);

  std::ostream* out_;
  bool pretty_;
  bool rootWritten_ = false;
  std::vector<Frame> stack_;
  std::vector<bool> hasItems_;
};

/// {"name": ..., "pipeline": {...}, "platform": {...}}
void writeInstanceJson(std::ostream& out, const core::Pipeline& pipeline,
                       const core::Platform& platform, const std::string& name = "",
                       bool pretty = true);

/// {"stages": n, "intervals": [{"first":..,"last":..,"processor":..}, ...],
///  "metrics": {"period":..,"latency":..}}  (metrics omitted when null)
void writeMappingJson(std::ostream& out, const core::IntervalMapping& mapping,
                      const core::Metrics* metrics = nullptr, bool pretty = true);

/// JSON string escaping (exposed for tests and other emitters).
[[nodiscard]] std::string jsonEscape(const std::string& text);

}  // namespace pipesched::io
