// Minimal streaming JSON writer plus emitters for the core model types.
// Output-only by design: the text format in format.hpp is the ingestion
// path; JSON serves dashboards, plotting scripts and log pipelines.
#pragma once

#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/core/mapping.hpp"
#include "pipesched/core/pipeline.hpp"
#include "pipesched/core/platform.hpp"

namespace pipesched::io {

/// Streaming JSON writer with automatic comma placement and optional
/// pretty-printing. Usage:
///
///   JsonWriter w(out, /*pretty=*/true);
///   w.beginObject();
///   w.key("n").value(3);
///   w.key("work").beginArray().value(1.5).value(2.0).endArray();
///   w.endObject();
///
/// Structural misuse (value without key inside an object, unbalanced
/// begin/end) throws std::logic_error — the writer is meant to make emitter
/// bugs loud in tests, not to silently produce invalid JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = false);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Emits an object key; must be followed by exactly one value/container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);  ///< non-finite values are emitted as null
  JsonWriter& value(std::size_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Convenience: key + scalar value.
  template <typename T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// Convenience: key + numeric array.
  JsonWriter& kvArray(const std::string& name, const std::vector<double>& values);

  /// True once the single top-level value is complete.
  [[nodiscard]] bool complete() const noexcept;

 private:
  enum class Frame { kObjectExpectKey, kObjectExpectValue, kArray };

  void beforeValue();
  void newlineIndent();
  void writeEscaped(const std::string& text);

  std::ostream* out_;
  bool pretty_;
  bool rootWritten_ = false;
  std::vector<Frame> stack_;
  std::vector<bool> hasItems_;
};

/// std::streambuf appending into a caller-owned std::string. The warm-path
/// emitters build every outcome line through one of these over a *reused*
/// string (clear() keeps capacity), so steady-state emission allocates
/// nothing — unlike std::ostringstream, which buys a fresh buffer per
/// instance.
class StringOutBuf final : public std::streambuf {
 public:
  explicit StringOutBuf(std::string& target) : target_(&target) {}

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      target_->push_back(traits_type::to_char_type(ch));
    }
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    target_->append(s, static_cast<std::size_t>(n));
    return n;
  }

 private:
  std::string* target_;
};

/// std::ostream over a StringOutBuf: `StringOutStream out(buffer);` then
/// write as usual — bytes land appended to `buffer` with no intermediate
/// copy or flush step.
class StringOutStream final : public std::ostream {
 public:
  explicit StringOutStream(std::string& target) : std::ostream(nullptr), buf_(target) {
    rdbuf(&buf_);
  }

 private:
  StringOutBuf buf_;
};

/// {"name": ..., "pipeline": {...}, "platform": {...}}
void writeInstanceJson(std::ostream& out, const core::Pipeline& pipeline,
                       const core::Platform& platform, const std::string& name = "",
                       bool pretty = true);

/// {"stages": n, "intervals": [{"first":..,"last":..,"processor":..}, ...],
///  "metrics": {"period":..,"latency":..}}  (metrics omitted when null)
void writeMappingJson(std::ostream& out, const core::IntervalMapping& mapping,
                      const core::Metrics* metrics = nullptr, bool pretty = true);

/// JSON string escaping (exposed for tests and other emitters).
[[nodiscard]] std::string jsonEscape(const std::string& text);

}  // namespace pipesched::io
