// Poll-based multi-client HTTP/1.1 server — the event loop under
// `pipesched serve --listen`. One thread runs the loop (run()); handlers are
// invoked on that thread but complete through a Done callback that is safe
// to call from any thread (scheduler workers finish /solve responses without
// ever blocking the loop). Per-connection write queues keep slow readers
// from stalling other clients; requestStop() is async-signal-safe and starts
// a graceful drain: stop accepting, let in-flight work finish, flush every
// outbox, then return from run().
//
// The transport is instrumented through pipesched::obs (net.* counters and
// per-endpoint latency histograms, recorded only when metrics are enabled)
// and through an always-on ServerStats snapshot for tests and summaries.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pipesched/net/http.hpp"
#include "pipesched/net/socket.hpp"

namespace pipesched::obs {
class Counter;
class Gauge;
}  // namespace pipesched::obs

namespace pipesched::net {

struct HttpServerConfig {
  Endpoint endpoint;                       ///< address to bind (port 0 = ephemeral)
  int backlog = 64;
  std::size_t maxConnections = 64;         ///< beyond this, new peers get 503
  std::size_t maxBodyBytes = 16u << 20;    ///< request bodies above this get 413
  int pollTimeoutMs = 200;                 ///< loop heartbeat (stop-flag latency)
  int drainTimeoutMs = 5000;               ///< max wait for in-flight work on stop
  /// Slowloris guard: a connection that started a request but has made no
  /// read progress for this long is answered 408 and closed. 0 = disabled.
  /// Enforced on the poll heartbeat, so expiry lands within pollTimeoutMs.
  int requestTimeoutMs = 30000;
  /// Idle keep-alive connections (no request in progress, nothing queued)
  /// are closed silently after this long. 0 = disabled.
  int idleTimeoutMs = 60000;
};

/// Monotonic transport counters, readable from any thread while run() loops.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t errored = 0;
  std::uint64_t requests = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t shed = 0;    ///< admission-control rejections (see noteShed)
  std::uint64_t active = 0;  ///< currently open connections (gauge)
  std::uint64_t requestTimeouts = 0;  ///< 408s from the slowloris guard
  std::uint64_t idleClosed = 0;       ///< idle keep-alive sweeps
};

class HttpServer {
 public:
  /// Completes the response for one request: (status, content type, body).
  /// Callable exactly once, from any thread; extra calls are ignored.
  using Done = std::function<void(int, std::string, std::string)>;

  /// Invoked on the event-loop thread when a request is fully parsed. The
  /// HttpRequest reference is valid only for the duration of the call — a
  /// handler that finishes asynchronously must copy what it needs before
  /// returning, then invoke Done whenever the result is ready.
  using Handler = std::function<void(const HttpRequest&, Done)>;

  explicit HttpServer(HttpServerConfig config);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-match route. Call before run(); a path registered
  /// under another method answers 405, an unknown path 404. The path with
  /// its leading '/' stripped names the endpoint latency histogram
  /// ("net.endpoint.<name>").
  void handle(std::string method, std::string path, Handler handler);

  /// Resolve + bind + listen. Separate from run() so callers can read
  /// local() (the resolved ephemeral port) before starting the loop.
  void bind();
  [[nodiscard]] Endpoint local() const;

  /// Blocking event loop: accepts, parses, dispatches, flushes. Returns
  /// after requestStop() completes the graceful drain (or its deadline
  /// passes). Calls bind() itself if not yet bound.
  void run();

  /// Async-signal-safe stop: one atomic store plus a self-pipe write. The
  /// loop stops accepting, finishes in-flight requests (each final response
  /// is sent Connection: close so keep-alive peers disconnect), flushes,
  /// then run() returns.
  void requestStop() noexcept;

  [[nodiscard]] bool draining() const noexcept { return draining_.load(); }

  [[nodiscard]] ServerStats stats() const;

  /// Records one admission-control rejection (handler answered 503 because
  /// the scheduler queue was full): ServerStats::shed and net.shed_total.
  void noteShed() noexcept;

 private:
  struct Route {
    std::string method;
    std::string path;
    std::string endpoint;  ///< histogram label (path minus leading '/')
    Handler handler;
  };

  struct Connection {
    Socket socket;
    HttpParser parser;
    std::deque<std::string> outbox;
    std::size_t outboxOffset = 0;  ///< bytes of outbox.front() already sent
    bool awaitingResponse = false; ///< a dispatched request has no response yet
    bool closeAfterFlush = false;
    bool peerClosed = false;
    /// Last accept/read progress — drives the idle/slowloris sweeps.
    std::chrono::steady_clock::time_point lastActivity{};
  };

  /// A finished response travelling from whatever thread called Done back to
  /// the event loop. Owned via shared_ptr so Done closures outlive the
  /// server if a worker finishes late — `closed` then drops the completion.
  struct CompletionQueue;
  struct Completion {
    std::uint64_t connection = 0;
    std::string response;
    bool close = false;
    std::string endpoint;
    std::chrono::steady_clock::time_point start{};
  };

  void acceptPending();
  void sweepTimeouts();
  void readFrom(std::uint64_t id, Connection& conn);
  void processParsed(std::uint64_t id, Connection& conn);
  void dispatch(std::uint64_t id, Connection& conn);
  void applyCompletions();
  [[nodiscard]] bool flush(Connection& conn);
  void destroy(std::uint64_t id, bool errored);
  void queueDirect(Connection& conn, int status, const std::string& body,
                   bool keepAlive);

  HttpServerConfig config_;
  TcpListener listener_;
  std::vector<Route> routes_;
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t nextConnectionId_ = 1;
  std::shared_ptr<CompletionQueue> completions_;
  Poller poller_;
  std::size_t inflight_ = 0;  ///< dispatched requests whose Done hasn't landed

  std::atomic<bool> stopRequested_{false};
  std::atomic<bool> draining_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> errored_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bytesRead_{0};
  std::atomic<std::uint64_t> bytesWritten_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> requestTimeouts_{0};
  std::atomic<std::uint64_t> idleClosed_{0};
};

}  // namespace pipesched::net
