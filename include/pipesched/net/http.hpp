// Minimal HTTP/1.1 for the serving tier: an incremental request parser (the
// server side) and response rendering — just enough protocol for curl,
// Prometheus scrapers, and load balancers to talk to `pipesched serve
// --listen`. Bodies are delimited by Content-Length only (no chunked
// ingestion; responses always carry an explicit length). The parser is
// push-based so the event loop can feed it whatever read() returned and ask
// "complete yet?" — it never blocks and never throws on wire garbage
// (malformed input becomes a status-coded error the server answers with).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace pipesched::net {

/// One parsed request. Header names are matched case-insensitively via
/// header(); values are returned with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   ///< uppercase on the wire ("GET", "POST")
  std::string target;   ///< request target as sent ("/stats", "/solve?x=1")
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keepAlive = true;  ///< HTTP/1.1 default, honours Connection: close

  /// The target with any query string stripped — what handlers route on.
  [[nodiscard]] std::string path() const;

  /// First header with this (case-insensitive) name, or nullptr.
  [[nodiscard]] const std::string* header(const std::string& name) const;
};

/// Incremental request parser. Feed bytes with consume(); when it reports
/// kComplete, request() holds the parsed request and any pipelined leftover
/// bytes stay buffered — reset() re-arms the parser on them for the next
/// request on the same connection.
class HttpParser {
 public:
  explicit HttpParser(std::size_t maxBodyBytes = 16u << 20,
                      std::size_t maxHeaderBytes = 64u << 10)
      : maxBodyBytes_(maxBodyBytes), maxHeaderBytes_(maxHeaderBytes) {}

  enum class Status { kNeedMore, kComplete, kError };

  /// Appends `data` and advances. Once kComplete/kError is reached, further
  /// consume() calls return the same status until reset().
  Status consume(const char* data, std::size_t n);
  Status consume(const std::string& data) { return consume(data.data(), data.size()); }

  [[nodiscard]] Status status() const noexcept { return status_; }
  [[nodiscard]] const HttpRequest& request() const noexcept { return request_; }

  /// True once any bytes of the in-progress request are buffered — the
  /// slowloris guard's "mid-request" test (an idle keep-alive connection
  /// has started() == false after reset()).
  [[nodiscard]] bool started() const noexcept { return !buffer_.empty() || headersDone_; }

  /// On kError: the HTTP status to answer with (400 bad request, 413 body
  /// too large, 431 headers too large, 501 unsupported) and a short reason.
  [[nodiscard]] int errorStatus() const noexcept { return errorStatus_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Re-arms for the next request, keeping unconsumed pipelined bytes. May
  /// immediately produce kComplete again — callers loop on status().
  Status reset();

 private:
  Status fail(int status, std::string message);
  Status advance();

  std::string buffer_;
  std::size_t bodyStart_ = 0;     ///< offset of the body inside buffer_
  std::size_t contentLength_ = 0;
  bool headersDone_ = false;
  Status status_ = Status::kNeedMore;
  HttpRequest request_;
  int errorStatus_ = 400;
  std::string error_;
  std::size_t maxBodyBytes_;
  std::size_t maxHeaderBytes_;
};

/// Renders a full response head + body with Content-Length and Connection
/// headers. `extraHeaders` lines, when given, must each end with "\r\n".
[[nodiscard]] std::string renderHttpResponse(int status, const std::string& contentType,
                                             const std::string& body, bool keepAlive,
                                             const std::string& extraHeaders = {});

/// Canonical reason phrase ("OK", "Service Unavailable", ...).
[[nodiscard]] const char* httpStatusText(int status) noexcept;

}  // namespace pipesched::net
