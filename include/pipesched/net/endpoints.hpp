// The serving tier's HTTP surface: wires an HttpServer to an AsyncScheduler
// and the observability plane. Installed by `pipesched serve --listen` and
// driven directly by tests/benches against an in-process server.
//
//   POST /solve    body = JSONL request lines (the stdio serve protocol);
//                  response body = one JSONL outcome line per input line, in
//                  input order, byte-identical to what stdio serve prints
//                  for the same lines. Admission-controlled: when the
//                  scheduler queue is full the whole POST answers 503 and
//                  net.shed_total increments — the accept loop never blocks.
//                  An `X-Deadline-Ms` request header (non-negative number)
//                  sets the default deadline for body lines that carry no
//                  `deadline_ms` of their own; a malformed value answers
//                  400. When every solvable line misses its deadline the
//                  whole POST answers 504 (body still carries the per-line
//                  outcomes); a mixed batch answers 200 and each timed-out
//                  line is flagged `"timed_out":true`.
//   GET /stats     one JSONL observability snapshot (the --stats-interval
//                  line: scheduler poll + cache counters + metric registry).
//   GET /healthz   liveness + drain state: 200 {"status":"ok",...} while
//                  serving, 503 {"status":"draining",...} once shutdown
//                  has been requested.
//   GET /metrics   Prometheus text exposition of the metric registry.
#pragma once

#include <functional>
#include <string>

#include "pipesched/stream/source.hpp"

namespace pipesched::stream {
class AsyncScheduler;
}

namespace pipesched::net {

class HttpServer;

struct ServeEndpointsConfig {
  /// Per-line fallbacks for JSONL request parsing (sweep, comm model) —
  /// mirror the stdio serve flags so both transports parse identically.
  stream::JsonlDefaults defaults;

  /// Renders the /stats body (one JSONL snapshot line, newline-terminated).
  std::function<std::string()> statsSnapshot;

  /// Drain state for /healthz and for refusing new /solve work on shutdown.
  std::function<bool()> draining;

  /// Uptime reported by /healthz.
  std::function<double()> uptimeSeconds;
};

/// Registers the four routes above on `server`. The scheduler and the config
/// callbacks must outlive the server's run() loop.
void installServeEndpoints(HttpServer& server, stream::AsyncScheduler& scheduler,
                           ServeEndpointsConfig config);

}  // namespace pipesched::net
