// pipesched::net primitives — a thin portable wrapper over POSIX TCP
// sockets, just wide enough for the serving tier: RAII fds, a listener with
// non-blocking accept, a blocking client connect (tests, benches, CLI
// probes), a poll(2) readiness multiplexer, and a self-pipe for waking the
// event loop from other threads or signal handlers.
//
// Everything here is transport plumbing with no protocol knowledge; HTTP
// lives in net/http.hpp and the multi-client event loop in net/server.hpp.
// Errors surface as ModelError (setup: resolve/bind/listen) or as explicit
// IoResult flags (per-connection I/O must never throw across the event
// loop — a peer resetting its connection is routine, not exceptional).
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::net {

/// Runs a POSIX-style call (returns >= 0 on success, -1 + errno on failure)
/// until it stops failing with EINTR. The single EINTR policy for every raw
/// read/write/accept in this subsystem — a signal storm must never surface
/// as an I/O error (pinned by SocketEintr.* in tests/net/test_socket.cpp).
/// Note connect(2) is deliberately NOT routed through this: a connect
/// interrupted by a signal completes asynchronously, so retrying the call
/// yields EALREADY — connectTcp() waits via poll() instead.
template <typename Op>
auto retryOnEintr(Op op) -> decltype(op()) {
  for (;;) {
    const auto r = op();
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// "host:port" pair. Host is a numeric IPv4 address or a name the resolver
/// accepts; port 0 asks the kernel for an ephemeral port (the bound value is
/// readable via TcpListener::local()).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string str() const;
};

/// Parses "host:port" (e.g. "127.0.0.1:8080", "0.0.0.0:0"). Throws
/// ModelError on a missing colon, empty host, or an out-of-range port.
[[nodiscard]] Endpoint parseEndpoint(const std::string& text);

/// One non-blocking byte-stream operation's outcome. Exactly one of the
/// following holds: bytes > 0 (progress), wouldBlock (retry after poll),
/// closed (orderly EOF on read), error (connection is dead).
struct IoResult {
  std::size_t bytes = 0;
  bool wouldBlock = false;
  bool closed = false;
  bool error = false;
};

/// RAII TCP socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  void close() noexcept;
  void setNonBlocking(bool on);

  /// Reads up to `n` bytes. Never throws; see IoResult.
  [[nodiscard]] IoResult read(char* buffer, std::size_t n) noexcept;

  /// Writes up to `n` bytes (partial writes are normal on a non-blocking
  /// socket — check IoResult::bytes). Never throws; SIGPIPE is suppressed.
  [[nodiscard]] IoResult write(const char* buffer, std::size_t n) noexcept;

  /// Blocking convenience for test/bench clients: writes all `n` bytes,
  /// throws ModelError when the peer dies mid-write.
  void writeAll(const char* buffer, std::size_t n);

 private:
  int fd_ = -1;
};

/// Listening TCP socket with non-blocking accept.
class TcpListener {
 public:
  TcpListener() = default;

  /// Resolve + bind + listen. Throws ModelError on failure (address in use,
  /// unresolvable host). The accepted connections are returned non-blocking.
  void listen(const Endpoint& endpoint, int backlog = 64);

  /// One pending connection, or nullopt when none is queued right now.
  /// Throws ModelError only on programmer error (listener not open).
  [[nodiscard]] std::optional<Socket> accept();

  /// The actually-bound address — resolves port 0 to the kernel's choice.
  [[nodiscard]] Endpoint local() const;

  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }
  [[nodiscard]] bool open() const noexcept { return socket_.valid(); }
  void close() noexcept { socket_.close(); }

 private:
  Socket socket_;
};

/// Client connect — the test/bench/CLI-probe side of the wire. With
/// `timeoutMs >= 0` the connect is bounded: a peer that neither accepts nor
/// refuses within the budget raises ModelError (ETIMEDOUT) instead of
/// blocking for the kernel's (minutes-long) SYN retry cycle. -1 = wait
/// indefinitely. The returned socket is in blocking mode either way.
[[nodiscard]] Socket connectTcp(const Endpoint& endpoint, int timeoutMs = -1);

/// Bounded retry with jittered exponential backoff for transient connect
/// failures (refused/reset/timed out/unreachable — the peer may be mid-
/// restart). Non-transient errors (e.g. unresolvable host) throw on first
/// sight; exhausting `attempts` rethrows the last transient error.
struct RetryPolicy {
  int attempts = 3;        ///< total tries, >= 1
  int baseDelayMs = 10;    ///< first backoff step (doubled per retry)
  int maxDelayMs = 200;    ///< backoff ceiling
  std::uint64_t seed = 1;  ///< jitter stream seed (deterministic per policy)
};
[[nodiscard]] Socket connectTcpRetry(const Endpoint& endpoint, const RetryPolicy& policy,
                                     int timeoutMs = -1);

/// Self-pipe: poll()-able read end plus an async-signal-safe notify().
/// notify() is a single write(2) of one byte on a non-blocking fd, so it is
/// safe from signal handlers and arbitrary threads; a full pipe simply
/// coalesces into the wake already pending.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  [[nodiscard]] int readFd() const noexcept { return fds_[0]; }
  void notify() noexcept;
  /// Consumes every pending wake byte (event loop side).
  void drain() noexcept;

 private:
  int fds_[2] = {-1, -1};
};

/// poll(2) multiplexer rebuilt per event-loop iteration: watch() the fds you
/// care about, wait(), then query readiness by fd.
class Poller {
 public:
  static constexpr unsigned kReadable = 1u;
  static constexpr unsigned kWritable = 2u;
  static constexpr unsigned kError = 4u;  ///< POLLERR/POLLHUP/POLLNVAL

  void clear() noexcept { entries_.clear(); }
  void watch(int fd, bool read, bool write);

  /// Blocks up to timeoutMs (-1 = indefinitely). Returns the number of fds
  /// with events; 0 on timeout. EINTR reports as 0 (the loop re-checks its
  /// stop flag and polls again).
  int wait(int timeoutMs);

  /// Readiness bitmask for `fd` after wait(); 0 when unwatched/idle.
  [[nodiscard]] unsigned events(int fd) const noexcept;

 private:
  struct Entry {
    int fd = -1;
    short requested = 0;
    short returned = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace pipesched::net
