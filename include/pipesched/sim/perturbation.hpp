// Failure-injection / jitter extension of the DES: per-data-set multiplicative
// noise on compute and transfer durations. The paper's model assumes exact,
// stationary stage costs; this module measures how much a mapping's achieved
// period and latency degrade when that assumption is broken — the robustness
// ablation of DESIGN.md.
//
// Noise model: every (phase, data set) duration is scaled by an independent
// factor 1 + a·u with u ~ Uniform(-1, 1), truncated below at `minFactor`.
// Expected durations equal the nominal ones (before truncation), so any
// systematic period degradation observed is a *queueing* effect of variance,
// not a mean shift.
#pragma once

#include <cstdint>

#include "pipesched/sim/pipeline_sim.hpp"

namespace pipesched::sim {

struct JitterModel {
  std::uint64_t seed = 1;

  /// Amplitude `a` of the compute-duration noise (0 = exact).
  Real computeAmplitude = 0;

  /// Amplitude of the transfer-duration noise.
  Real transferAmplitude = 0;

  /// Truncation floor for the multiplicative factor.
  Real minFactor = 0.05;
};

/// One jittered run. Identical to simulatePipeline when both amplitudes are
/// zero. Throws ModelError for amplitudes outside [0, 1) or minFactor <= 0.
[[nodiscard]] SimReport simulatePipelineJittered(const core::Evaluator& eval,
                                                 const core::IntervalMapping& mapping,
                                                 const SimConfig& config,
                                                 const JitterModel& jitter);

/// Aggregate of `trials` independent jittered runs against the nominal model.
struct RobustnessReport {
  Real nominalPeriod = 0;       ///< Eq. (1) prediction
  Real nominalLatency = 0;      ///< Eq. (2) prediction
  Real meanPeriod = 0;          ///< mean achieved steady-state period
  Real worstPeriod = 0;
  Real meanMaxLatency = 0;      ///< mean over trials of the per-run max latency
  Real worstMaxLatency = 0;
  std::size_t trials = 0;

  /// meanPeriod / nominalPeriod — 1.0 means jitter-free behaviour.
  [[nodiscard]] Real periodDegradation() const {
    return nominalPeriod > 0 ? meanPeriod / nominalPeriod : Real(1);
  }
  [[nodiscard]] Real latencyDegradation() const {
    return nominalLatency > 0 ? meanMaxLatency / nominalLatency : Real(1);
  }
};

/// Runs `trials` jittered simulations (seeds seed, seed+1, ...) and aggregates.
[[nodiscard]] RobustnessReport measureRobustness(const core::Evaluator& eval,
                                                 const core::IntervalMapping& mapping,
                                                 const SimConfig& config,
                                                 const JitterModel& jitter,
                                                 std::size_t trials = 10);

}  // namespace pipesched::sim
