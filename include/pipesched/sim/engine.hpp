// Minimal deterministic discrete-event simulation engine.
//
// Events are (time, callback) pairs processed in non-decreasing time order;
// ties are broken by insertion sequence so every run is reproducible.
// Callbacks may schedule further events at or after the current time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::sim {

using Time = pipesched::Real;

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at` (>= now(), checked).
  void schedule(Time at, Callback cb);

  /// Convenience: schedule `cb` after `delay` (>= 0).
  void scheduleAfter(Time delay, Callback cb) { schedule(now_ + delay, std::move(cb)); }

  /// Runs until the event queue drains. Returns the final simulation time.
  Time run();

  /// Runs at most `maxEvents` additional events (guard for tests).
  Time run(std::uint64_t maxEvents);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept { return processed_; }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = Time(0);
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace pipesched::sim
