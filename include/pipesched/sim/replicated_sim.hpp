// Discrete-event simulation of *replicated* (deal-skeleton) mappings — the
// validation substrate for the replication cost model of
// core/replication.hpp.
//
// Semantics: interval j's replica set S_j serves data sets round-robin
// (data set k on replica k mod |S_j|). Two dealing disciplines are offered:
//
//  * kStreamOrdered — a data set cannot cross a pipeline boundary before its
//    predecessor has crossed it. A busy slow replica back-pressures the
//    whole stream; completions leave in order. This is the conservative,
//    zero-buffer rendezvous reading of a deal skeleton. It meets the model
//    period whenever boundaries are not communication-bound, and otherwise
//    pays max_t delta_t/b per boundary — quantifying exactly where the cost
//    model's concurrency assumption lives (see bench/ablation_deal).
//
//  * kIndependentSubstreams — boundary transfers to distinct replicas may
//    overlap (one-port allows concurrent transfers between distinct
//    processor pairs). This is the closest rendezvous reading of the cost
//    model's assumption period_j = max_u cycle_u / |S_j|; it achieves the
//    model period when replicas have compute slack, and exceeds it only by
//    rendezvous head-of-line blocking on communication-bound boundaries
//    (the model effectively assumes buffered dealing). Completions may
//    leave out of order when the *last* interval is replicated (the model's
//    follow-up papers make the same remark about deal skeletons).
//
// With all-singleton replica sets both disciplines reduce bit-for-bit to
// simulatePipeline.
#pragma once

#include "pipesched/core/replication.hpp"
#include "pipesched/sim/pipeline_sim.hpp"

namespace pipesched::sim {

enum class DealDiscipline {
  kStreamOrdered,
  kIndependentSubstreams,
};

/// Runs the one-port rendezvous simulation of the replicated `mapping`.
/// Communication-homogeneous platforms only (like the replication cost
/// model); throws ModelError otherwise.
[[nodiscard]] SimReport simulateReplicated(
    const core::Evaluator& eval, const core::ReplicatedMapping& mapping,
    const SimConfig& config = {},
    DealDiscipline discipline = DealDiscipline::kStreamOrdered);

}  // namespace pipesched::sim
