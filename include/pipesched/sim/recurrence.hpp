// Max-plus recurrence simulator — an independent, loop-based implementation
// of exactly the same execution semantics as the discrete-event simulator:
//
//   end(t, k) = max(senderReady, receiverReady) + dur(t)
//   senderReady   = release_k            (t == 0)
//                 | end(t-1, k) + comp(t-1)
//   receiverReady = 0                    (t == m or k == 0)
//                 | end(t+1, k-1)
//
// where transfer t in [0, m] links interval t-1 to interval t (world at the
// ends). The DES and this recurrence must agree to the last bit; the tests
// enforce that, which guards both implementations.
#pragma once

#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/sim/engine.hpp"

namespace pipesched::sim {

/// Completion times of every data set under the one-port rendezvous model.
/// `releases[k]` is data set k's availability time at the source.
[[nodiscard]] std::vector<Time> recurrenceCompletionTimes(const core::Evaluator& eval,
                                                          const core::IntervalMapping& mapping,
                                                          const std::vector<Time>& releases);

/// Steady-state period estimated from a saturated run of `datasets` data
/// sets (tail slope of the completion times, ignoring `warmup` of them).
[[nodiscard]] Time recurrenceSteadyPeriod(const core::Evaluator& eval,
                                          const core::IntervalMapping& mapping,
                                          std::size_t datasets = 200, std::size_t warmup = 50);

}  // namespace pipesched::sim
