// Discrete-event simulation of a mapped pipeline under the paper's execution
// model: every processor performs (receive, compute, send) serially for each
// data set, data sets are processed in order, and each transfer is a
// rendezvous occupying both endpoints for delta/b — the one-port model.
//
// The simulator validates the paper's closed-form metrics:
//  * a single data set traverses in exactly T_latency (Eq. 2);
//  * with a saturated source, inter-completion times converge to T_period
//    (Eq. 1) — the max-plus recurrence's maximum cycle mean.
#pragma once

#include <cstdint>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/sim/engine.hpp"

namespace pipesched::sim {

struct SimConfig {
  /// Number of data sets fed through the pipeline.
  std::size_t datasetCount = 200;

  /// Release time of data set k is k * releaseInterval; 0 = saturated source
  /// (all data sets available at time 0).
  Time releaseInterval = Time(0);

  /// Data sets ignored at the front when estimating the steady-state period.
  std::size_t warmup = 50;

  /// Record the full event trace (kept off for large runs).
  bool recordTrace = false;
};

/// One trace entry (transfer start/end, compute start/end).
struct TraceEvent {
  enum class Kind { kTransferStart, kTransferEnd, kComputeStart, kComputeEnd };
  Kind kind;
  Time time;
  std::size_t interval;  ///< transfer index t in [0, m] or interval index
  std::size_t dataset;
};

struct SimReport {
  std::vector<Time> releaseTimes;
  std::vector<Time> completionTimes;
  std::vector<Time> latencies;  ///< completion - release, per data set

  Time makespan = 0;
  Time maxLatency = 0;
  /// Mean inter-completion time over the post-warmup tail.
  Time steadyStatePeriod = 0;
  std::uint64_t eventCount = 0;
  std::vector<TraceEvent> trace;  ///< empty unless config.recordTrace
};

/// Runs the one-port rendezvous simulation of `mapping` on the evaluator's
/// pipeline/platform. The mapping is validated first.
[[nodiscard]] SimReport simulatePipeline(const core::Evaluator& eval,
                                         const core::IntervalMapping& mapping,
                                         const SimConfig& config = {});

}  // namespace pipesched::sim
