// Trace rendering for DES runs: CSV export for external plotting and an
// ASCII Gantt chart for the examples and quick terminal inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "pipesched/core/mapping.hpp"
#include "pipesched/sim/pipeline_sim.hpp"

namespace pipesched::sim {

/// Writes the recorded trace as CSV with header
/// `kind,time,index,dataset` where kind is one of transfer_start,
/// transfer_end, compute_start, compute_end. Throws ModelError when the
/// report carries no trace (SimConfig::recordTrace was false).
void writeTraceCsv(std::ostream& out, const SimReport& report);

struct GanttOptions {
  /// Character columns used for the time axis.
  std::size_t width = 100;

  /// Only the first `maxDatasets` data sets are drawn (0 = all).
  std::size_t maxDatasets = 10;
};

/// Renders the compute phases of a traced run as an ASCII Gantt chart: one
/// row per interval (labelled with its processor), data set k drawn with the
/// digit k mod 10, '.' for idle. Throws ModelError when the report carries
/// no trace.
///
///   P3  [000111222...
///   P1  [...000111222
[[nodiscard]] std::string renderGantt(const core::IntervalMapping& mapping,
                                      const SimReport& report,
                                      const GanttOptions& options = {});

}  // namespace pipesched::sim
