// Min-cost rectangular assignment (Hungarian algorithm, shortest augmenting
// path / Jonker-Volgenant formulation). Used by the exact one-to-one mapping
// solver: minimizing the latency of a one-to-one mapping under a period bound
// is an assignment problem because the communication part of the latency is
// mapping-independent.
#pragma once

#include <optional>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::exact {

/// Result of an assignment: column chosen for each row, plus the total cost.
struct AssignmentResult {
  std::vector<std::size_t> columnOfRow;
  Real totalCost = 0;
};

/// Solves min sum_i cost[i][columnOfRow[i]] over injective row->column maps.
/// `cost` is row-major with rows <= columns; entries may be kInfinity to
/// forbid a pairing. Returns nullopt when no finite-cost assignment exists.
/// O(rows^2 * cols).
[[nodiscard]] std::optional<AssignmentResult> solveAssignment(
    const std::vector<std::vector<Real>>& cost);

}  // namespace pipesched::exact
