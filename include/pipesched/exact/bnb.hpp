// Branch-and-bound exact solvers for the bi-criteria mapping problem.
//
// The search assigns intervals left to right. Two exact prunings make it
// practical well beyond the exhaustive enumerator:
//  * equal-speed processors are interchangeable, so only the lowest-index
//    unused processor of each distinct speed is branched on;
//  * optimistic completion bounds (remaining work on the globally fastest
//    processor, no further communications) cut dominated subtrees.
#pragma once

#include <cstdint>
#include <optional>

#include "pipesched/exact/solution.hpp"

namespace pipesched::exact {

struct BnbOptions {
  /// Abort (throw ModelError) after this many search nodes.
  std::uint64_t nodeLimit = 50'000'000;
};

/// Minimum latency subject to period <= periodBound. nullopt when infeasible.
[[nodiscard]] std::optional<ExactSolution> bnbMinLatencyForPeriod(
    const Evaluator& eval, Real periodBound, const BnbOptions& options = {});

/// Minimum period subject to latency <= latencyBound. nullopt when infeasible.
[[nodiscard]] std::optional<ExactSolution> bnbMinPeriodForLatency(
    const Evaluator& eval, Real latencyBound, const BnbOptions& options = {});

/// Unconstrained minimum period (the NP-hard problem of paper Theorem 2).
[[nodiscard]] ExactSolution bnbMinPeriod(const Evaluator& eval, const BnbOptions& options = {});

}  // namespace pipesched::exact
