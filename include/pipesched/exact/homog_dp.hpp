// Polynomial exact solvers for *fully homogeneous* platforms (identical
// processor speeds, identical links) — the setting of Subhlok & Vondran
// [19, 20], which the paper extends. Dynamic programming over interval
// boundaries gives the optimal period, the optimal latency under a period
// bound, and (by sweeping the O(n^2) candidate periods) the exact Pareto
// front, all in polynomial time.
//
// These serve as optimality baselines: on a homogeneous platform no heuristic
// may beat them, which the test-suite checks.
#pragma once

#include <optional>
#include <vector>

#include "pipesched/core/pareto.hpp"
#include "pipesched/exact/solution.hpp"

namespace pipesched::exact {

/// Optimal-period mapping on a fully homogeneous platform. O(n^2 p).
/// Throws ModelError when the platform is not fully homogeneous.
[[nodiscard]] ExactSolution homogMinPeriod(const Evaluator& eval);

/// Minimum-latency mapping whose every cycle-time is <= periodBound.
/// Returns nullopt when the bound is infeasible. O(n^2 p).
[[nodiscard]] std::optional<ExactSolution> homogMinLatencyForPeriod(const Evaluator& eval,
                                                                    Real periodBound);

/// Exact Pareto front of (period, latency) on a fully homogeneous platform:
/// every achievable period is an interval cycle-time, so sweeping those
/// O(n^2) candidates with homogMinLatencyForPeriod is exhaustive.
[[nodiscard]] std::vector<core::ParetoPoint> homogParetoFront(const Evaluator& eval);

}  // namespace pipesched::exact
