// Exact solvers for *one-to-one* mappings (each stage on its own processor;
// requires n <= p), the restricted mapping class the paper introduces before
// generalizing to intervals. On Communication-Homogeneous platforms both
// one-to-one problems are polynomial:
//  * minimum period — binary search over the O(np) candidate cycle-times with
//    a greedy threshold-matching feasibility test;
//  * minimum latency under a period bound — an assignment problem (the
//    communication part of a one-to-one latency is mapping-independent),
//    solved with the Hungarian algorithm.
#pragma once

#include <optional>

#include "pipesched/exact/solution.hpp"

namespace pipesched::exact {

/// Minimum-period one-to-one mapping. Returns nullopt when n > p.
/// Throws ModelError on fully-heterogeneous platforms.
[[nodiscard]] std::optional<ExactSolution> oneToOneMinPeriod(const Evaluator& eval);

/// Minimum-latency one-to-one mapping with every cycle <= periodBound.
/// Returns nullopt when n > p or the bound is infeasible.
[[nodiscard]] std::optional<ExactSolution> oneToOneMinLatencyForPeriod(const Evaluator& eval,
                                                                       Real periodBound);

/// Feasibility probe: does a one-to-one mapping with period <= bound exist?
/// When feasible and `out` is non-null, stores a witness processor list
/// (out[k] = processor of stage k).
[[nodiscard]] bool oneToOneFeasible(const Evaluator& eval, Real periodBound,
                                    std::vector<std::size_t>* out = nullptr);

}  // namespace pipesched::exact
