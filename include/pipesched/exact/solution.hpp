// Common result type of the exact solvers.
#pragma once

#include "pipesched/core/evaluation.hpp"

namespace pipesched::exact {

using core::Evaluator;
using core::IntervalMapping;
using core::Metrics;

/// An optimal (for the requested objective) mapping with its metrics.
struct ExactSolution {
  IntervalMapping mapping;
  Metrics metrics;
};

}  // namespace pipesched::exact
