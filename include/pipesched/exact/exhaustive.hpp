// Exhaustive enumeration of every interval mapping (every partition of the
// stages into consecutive intervals x every ordered choice of distinct
// processors). Exponential — usable only on small instances, where it
// provides ground truth for the heuristics and the other exact solvers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "pipesched/core/pareto.hpp"
#include "pipesched/exact/solution.hpp"

namespace pipesched::exact {

struct ExhaustiveOptions {
  /// Abort (throw ModelError) after visiting this many complete mappings —
  /// a guard against accidentally calling the enumerator on a large instance.
  std::uint64_t mappingLimit = 20'000'000;

  /// Only consider mappings with at most this many intervals.
  std::size_t maxIntervals = SIZE_MAX;
};

/// Visits every valid interval mapping exactly once. The callback may return
/// false to stop early.
void enumerateMappings(const Evaluator& eval,
                       const std::function<bool(const IntervalMapping&, const Metrics&)>& visit,
                       const ExhaustiveOptions& options = {});

/// Global minimum period over all mappings, optionally under a latency cap.
/// Returns nullopt when no mapping satisfies the cap.
[[nodiscard]] std::optional<ExactSolution> exhaustiveMinPeriod(
    const Evaluator& eval, Real latencyCap = kInfinity, const ExhaustiveOptions& options = {});

/// Global minimum latency over all mappings, optionally under a period cap.
[[nodiscard]] std::optional<ExactSolution> exhaustiveMinLatency(
    const Evaluator& eval, Real periodCap = kInfinity, const ExhaustiveOptions& options = {});

/// The exact Pareto front of (period, latency) over all mappings, sorted by
/// increasing period. Every point carries a realizing mapping.
[[nodiscard]] std::vector<core::ParetoPoint> exhaustiveParetoFront(
    const Evaluator& eval, const ExhaustiveOptions& options = {});

}  // namespace pipesched::exact
