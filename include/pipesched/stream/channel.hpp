// Bounded multi-producer/multi-consumer channel — the backpressure seam of
// the streaming engine.
//
// Producers block in push() while the channel is full (each blocked episode
// is counted: ChannelStats::pushWaits is the engine's backpressure signal);
// consumers block in pop() while it is empty. close() stops admission:
// blocked and subsequent pushes return false, pops drain what was accepted
// and then return nullopt. All operations are safe to call from any number
// of threads concurrently.
//
// Distinct from runtime::BoundedQueue (the skeleton executor's inter-stage
// token buffer): this channel is public streaming API — it never throws on
// the close race (a server shutting down must not turn in-flight submits
// into crashes), supports non-blocking try variants, and keeps the
// occupancy/wait counters the stream benchmarks and tests observe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "pipesched/core/types.hpp"

namespace pipesched::stream {

/// Counters accumulated over the channel's lifetime (monotone; read at any
/// time, coherent as a snapshot).
struct ChannelStats {
  std::uint64_t pushed = 0;     ///< values accepted by push()/tryPush()
  std::uint64_t popped = 0;     ///< values handed out by pop()/tryPop()
  std::uint64_t pushWaits = 0;  ///< push() episodes that blocked on a full channel
  std::uint64_t popWaits = 0;   ///< pop() episodes that blocked on an empty channel
  std::size_t highWater = 0;    ///< maximum occupancy ever reached
};

template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw ModelError("BoundedChannel: capacity must be >= 1");
  }

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Blocks while full. Returns true when `value` was accepted; false when
  /// the channel was (or became, while blocked) closed — `value` is consumed
  /// either way.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      ++stats_.pushWaits;
      notFull_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    ++stats_.pushed;
    stats_.highWater = std::max(stats_.highWater, items_.size());
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking push: false (value left untouched) when full or closed.
  bool tryPush(T& value) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    ++stats_.pushed;
    stats_.highWater = std::max(stats_.highWater, items_.size());
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks while empty; nullopt once the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty() && !closed_) {
      ++stats_.popWaits;
      notEmpty_.wait(lock, [&] { return !items_.empty() || closed_; });
    }
    if (items_.empty()) return std::nullopt;
    return takeFront();
  }

  /// Non-blocking pop: nullopt when currently empty (closed or not).
  std::optional<T> tryPop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    return takeFront();
  }

  /// Stops admission and wakes every waiter. Idempotent. Values already
  /// accepted remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] ChannelStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

 private:
  // Caller holds mutex_ and guarantees non-empty.
  T takeFront() {
    T value = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    notFull_.notify_one();
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;
  ChannelStats stats_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace pipesched::stream
