// Outcome sinks for the streaming engine: incremental, ordered consumers of
// solved requests.
//
// The engine calls emit() exactly once per request, in input order, as soon
// as the outcome's turn comes up (head-of-line completion) — not when the
// whole stream is done. A sink therefore sees results while later requests
// are still being solved, which is what lets `pipesched serve` answer its
// first request before its last one has arrived. emit() is always invoked
// from the engine's pump thread; sinks need not be thread-safe.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "pipesched/io/json.hpp"
#include "pipesched/service/request.hpp"

namespace pipesched::stream {

/// Writes the per-outcome JSON fields (name, fingerprint, then ok + error or
/// the result tail: provenance flags, front[], solvers[]) into an
/// already-open object. The single emitter behind both `batch --json`
/// request rows and the JSONL stream/serve lines — one field list, so the
/// two report formats cannot drift.
void writeOutcomeFields(io::JsonWriter& w, const std::string& name,
                        const service::RequestOutcome& outcome);

class Sink {
 public:
  virtual ~Sink() = default;

  /// One solved (or failed) request. `index` is the request's 0-based
  /// position in the stream; calls arrive with strictly increasing indices.
  virtual void emit(std::size_t index, const service::Request& request,
                    const service::RequestOutcome& outcome) = 0;
};

/// Collects everything in memory — tests and small tools.
class CollectSink : public Sink {
 public:
  struct Item {
    std::size_t index = 0;
    service::Request request;
    service::RequestOutcome outcome;
  };

  void emit(std::size_t index, const service::Request& request,
            const service::RequestOutcome& outcome) override {
    items.push_back(Item{index, request, outcome});
  }

  std::vector<Item> items;
};

/// Mutex-guarded whole-line writer over one output stream. Every line is
/// rendered to completion in memory first, then appended + flushed under a
/// single lock — so lines from different call sites (the sink's outcome
/// emission, `serve`'s parse-error reporting) can never interleave mid-line
/// and corrupt the JSONL stream, however those call sites are threaded.
class JsonlLineWriter {
 public:
  explicit JsonlLineWriter(std::ostream& out) : out_(&out) {}

  JsonlLineWriter(const JsonlLineWriter&) = delete;
  JsonlLineWriter& operator=(const JsonlLineWriter&) = delete;

  /// Writes `line` (without its trailing newline) atomically and flushes.
  void writeLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    *out_ << line << '\n' << std::flush;
  }

 private:
  std::ostream* out_;
  std::mutex mutex_;
};

/// Writes one compact JSON object per outcome, flushing after every line —
/// the incremental half of the `batch --json` report (same per-request
/// fields, plus "index"). Lines are emitted as results complete, so a
/// consumer tailing the stream sees fronts without waiting for the batch.
class JsonlSink : public Sink {
 public:
  explicit JsonlSink(std::ostream& out)
      : owned_(std::in_place, out), writer_(&*owned_) {}

  /// Shares an external line writer — the `serve` shape, where parse-error
  /// lines from the source side go through the same guarded writer as the
  /// outcome lines. With `inputLines`, every outcome line additionally
  /// carries "line": inputLines->front() (then pops it). The caller's source
  /// pushes one entry per request it hands the engine, in pull order —
  /// emission is in the same order, so front() is always this outcome's
  /// input line. This is how `serve` keeps outcomes correlatable with
  /// request lines even when malformed lines (reported by line number, not
  /// index) interleave.
  JsonlSink(JsonlLineWriter& writer, std::deque<std::size_t>* inputLines)
      : writer_(&writer), inputLines_(inputLines) {}

  void emit(std::size_t index, const service::Request& request,
            const service::RequestOutcome& outcome) override;

 private:
  std::optional<JsonlLineWriter> owned_;  ///< backs the ostream constructor
  JsonlLineWriter* writer_;
  std::deque<std::size_t>* inputLines_ = nullptr;
  std::string buffer_;  ///< reused line render buffer (capacity persists)
};

}  // namespace pipesched::stream
