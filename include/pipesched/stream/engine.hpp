// The streaming pump: Source -> AsyncScheduler -> Sink, with bounded memory
// and ordered incremental emission.
//
// runStream() pulls requests lazily from the source, submits them to the
// scheduler (blocking on channel backpressure), and emits each outcome to
// the sink in input order as soon as its turn completes. A bounded reorder
// window (queue capacity + workers) caps how much the pump holds:
//
//     live requests  <=  window (queueCapacity + max(workers, 1)) + 1
//
// counted from Source::next() to Sink::emit() — the property the
// memory-bound test instruments. The window also prevents head-of-line
// completions from accumulating unboundedly when one slow request stalls
// the emission order.
//
// The scheduler is passed in (not owned) so its result cache survives across
// passes — `pipesched batch --stream --repeat N` turns passes 2..N into pure
// cache traffic, exactly like the batch path.
#pragma once

#include <cstddef>

#include "pipesched/stream/async_scheduler.hpp"
#include "pipesched/stream/sink.hpp"
#include "pipesched/stream/source.hpp"

namespace pipesched::stream {

/// Accounting of one runStream() pass. `stream` is the scheduler's counter
/// snapshot at the end of the pass — cumulative when the scheduler is shared
/// across passes.
struct EngineStats {
  std::size_t requests = 0;  ///< emitted to the sink (== stream length)
  std::size_t failed = 0;    ///< emitted outcomes with ok == false
  double wallSeconds = 0;
  double requestsPerSecond = 0;
  StreamStats stream;
};

/// Pumps the source dry. Exceptions from the source or the sink abort the
/// pass *after* draining everything already submitted (no request is left
/// dangling), then propagate. Solver failures do not throw — they arrive at
/// the sink as outcomes with ok == false.
EngineStats runStream(Source& source, Sink& sink, AsyncScheduler& scheduler);

}  // namespace pipesched::stream
