// AsyncScheduler — the continuously-fed front of the portfolio service.
//
// Where service::SchedulingService::solveBatch is a barrier (load everything,
// block, return), AsyncScheduler is a faucet: submit(Request) enqueues onto a
// bounded channel and returns a std::future<RequestOutcome> immediately (or
// invokes a completion callback); `workers` consumer threads drain the
// channel, answer from the shared result cache, coalesce duplicates that are
// in flight (at most maxCoalescedWaiters parked per key — duplicates past
// the cap solve directly so an all-duplicates stream cannot buffer
// unboundedly), and solve misses through the wrapped SchedulingService. A
// full channel blocks submit() — backpressure, not unbounded buffering.
//
// Determinism contract (the stream-vs-batch equivalence tests pin this):
// each request's outcome is byte-identical under describeOutcome() to what
// solveBatch() produces for the same request, whatever the worker count,
// queue capacity, cache state, or arrival order — because every solve path
// (fresh, cached, coalesced) funnels through the portfolio's deterministic
// merge. Only the provenance flags (fromCache/deduped), which
// describeOutcome() excludes, depend on timing.
//
// Parallelism shape mirrors solveBatch: cross-request concurrency comes from
// `workers`; within-request solving runs serially inside its worker (leave
// config.service.threads at 0 — a nonzero value additionally races portfolio
// members on the service's internal pool, which is safe but rarely useful
// under multiple stream workers).
//
// Lifecycle: drain() blocks until everything submitted has completed;
// close() additionally stops admission and joins the workers (pending work
// still completes — shutdown never drops accepted requests). The destructor
// close()s. submit() after close() throws ModelError.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pipesched/obs/trace.hpp"
#include "pipesched/service/service.hpp"
#include "pipesched/stream/channel.hpp"

namespace pipesched::stream {

struct StreamConfig {
  /// Configuration of the wrapped SchedulingService (cache, portfolio).
  /// service.threads is the *within-request* pool; keep it 0 (see above).
  service::ServiceConfig service;

  /// Consumer threads draining the request channel. 0 = inline execution:
  /// submit() solves synchronously and returns a ready future — the serial
  /// reference mode of the equivalence tests.
  std::size_t workers = 1;

  /// Request-channel capacity; submit() blocks when this many requests are
  /// queued and unclaimed (backpressure).
  std::size_t queueCapacity = 64;

  /// Cap on duplicates parked per in-flight canonical key. Parked waiters
  /// live OUTSIDE the bounded channel (their pop freed a slot), so without a
  /// cap an all-duplicates stream could buffer unboundedly many requests
  /// while one solve is in flight. Past the cap a duplicate is *rejected
  /// from the coalescing list* and solved by the popping worker instead —
  /// identical outcome (the portfolio is deterministic), bounded memory:
  /// at most workers * maxCoalescedWaiters jobs are ever parked, and once
  /// every worker is busy the channel's backpressure reasserts itself.
  /// Counted in StreamStats::coalesceOverflow. 0 disables coalescing
  /// entirely (every duplicate solves on its popping worker).
  std::size_t maxCoalescedWaiters = 16;

  /// Test/instrumentation hook: when set, replaces the wrapped service's
  /// solve (cache included — the override bypasses it) for every request.
  /// In-flight coalescing still applies. Exists to make worker scheduling,
  /// coalescing and failure paths deterministic in tests.
  std::function<service::RequestOutcome(const service::Request&)> solveOverride;
};

/// Monotone counters; snapshot is internally coherent. Every completed
/// request lands in exactly one of {solved, cacheHits, coalesced, failed}:
///   solved + cacheHits + coalesced + failed == completed.
struct StreamStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t solved = 0;     ///< fresh portfolio solves that succeeded
  std::uint64_t cacheHits = 0;  ///< served from the result cache
  std::uint64_t coalesced = 0;  ///< shared an identical in-flight request's ok solve
  std::uint64_t failed = 0;     ///< outcomes with ok == false
  std::uint64_t waitersAttached = 0;    ///< duplicates parked on an in-flight solve
  std::uint64_t coalesceOverflow = 0;   ///< duplicates solved directly because the
                                        ///< per-key waiter list was at its cap
  std::uint64_t callbackExceptions = 0; ///< completion callbacks that threw (contained)
  std::size_t maxInFlight = 0;  ///< high-water of submitted - completed
  ChannelStats queue;           ///< channel counters (pushWaits = backpressure)
};

/// One coherent poll of the scheduler (see AsyncScheduler::snapshot()).
/// The scheduler's own counters are copied under a single lock, so the
/// derived quantities can never go inconsistent: inFlight is computed as
/// submitted - completed *inside* that critical section (no negative values,
/// no in-flight > submitted), and queueDepth is clamped to queueCapacity.
struct SchedulerSnapshot {
  StreamStats stream;
  std::uint64_t inFlight = 0;      ///< submitted - completed at snapshot time
  std::size_t inflightKeys = 0;    ///< canonical keys currently being solved
  std::size_t parkedWaiters = 0;   ///< duplicates parked across those keys
  std::size_t queueDepth = 0;      ///< jobs waiting in the channel, <= capacity
  std::size_t queueCapacity = 0;
};

class AsyncScheduler {
 public:
  using Callback =
      std::function<void(const service::Request&, const service::RequestOutcome&)>;

  explicit AsyncScheduler(StreamConfig config = {});

  /// close()s: blocks until every accepted request has completed.
  ~AsyncScheduler();

  AsyncScheduler(const AsyncScheduler&) = delete;
  AsyncScheduler& operator=(const AsyncScheduler&) = delete;

  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

  /// Enqueues the request (blocking while the channel is full) and returns
  /// the future of its outcome. The future never carries an exception from
  /// solving — solver failures surface as outcomes with ok == false.
  /// Throws ModelError after close().
  [[nodiscard]] std::future<service::RequestOutcome> submit(service::Request request);

  /// Callback form: `callback(request, outcome)` runs on the completing
  /// worker (inline for workers == 0). A throwing callback is contained and
  /// counted in StreamStats::callbackExceptions.
  void submit(service::Request request, Callback callback);

  /// Admission-controlled submit: never blocks. Returns false — without
  /// accepting the request — when the channel is full or the scheduler is
  /// closed; the caller sheds load instead of stalling (the serving tier
  /// answers 503). On true the request is accepted exactly like submit().
  /// With workers == 0 the request solves inline (there is no queue to
  /// fill), so only close() can make this return false.
  [[nodiscard]] bool trySubmit(service::Request request, Callback callback);

  /// Blocks until completed == submitted. Does not stop admission — other
  /// threads may keep submitting (drain() then waits for those too while
  /// they keep arriving; quiesce your producers first).
  void drain();

  /// Stops admission, waits for pending work, joins the workers. Idempotent.
  void close();

  [[nodiscard]] StreamStats stats() const;

  /// Coherent stats poll for observability emitters. stats() reads the
  /// counter block and the channel independently — fine for monotone
  /// counters, but a poller correlating them could see in-flight < 0 or
  /// depth > capacity. snapshot() derives every cross-counter quantity
  /// under one lock (and clamps the independently-locked channel depth), so
  /// its invariants hold on every poll, mid-burst included.
  [[nodiscard]] SchedulerSnapshot snapshot() const;

  /// The wrapped service's result-cache counters.
  [[nodiscard]] service::CacheStats cacheStats() const { return service_.cacheStats(); }

  /// The wrapped service's sub-result cache counters (cross-request work
  /// sharing — the serve path benefits automatically on fresh solves).
  [[nodiscard]] service::CacheStats subCacheStats() const { return service_.subCacheStats(); }

 private:
  struct Job {
    service::Request request;
    /// requestIdentity(request), computed on the solving worker (not in
    /// submit — the producer thread must not serialize the walk): .key is
    /// the coalescing identity, both halves go to the service so nothing
    /// downstream re-canonicalizes.
    service::RequestIdentity identity;
    std::promise<service::RequestOutcome> promise;
    Callback callback;
    /// Enqueue timestamp for the queue-wait stage; stamped in submit() only
    /// while observability is on (`timed`), so the disabled path never reads
    /// the clock.
    obs::TraceClock::time_point enqueuedAt{};
    bool timed = false;
  };

  void workerLoop();
  std::future<service::RequestOutcome> submitJob(Job job);
  [[nodiscard]] service::RequestOutcome solveOne(const Job& job, obs::RequestTrace* trace);
  void finish(Job& job, service::RequestOutcome outcome, bool coalescedCopy);
  void runInline(Job job);

  StreamConfig config_;
  service::SchedulingService service_;
  BoundedChannel<Job> channel_;

  mutable std::mutex mutex_;  // guards stats_, accepting_, inflight_
  std::condition_variable allDone_;
  StreamStats stats_;
  bool accepting_ = true;
  std::mutex joinMutex_;  // serializes worker join in close()
  bool joined_ = false;   // guarded by joinMutex_
  /// canonicalKey -> duplicates parked while the key's first job solves.
  std::unordered_map<std::string, std::vector<Job>> inflight_;

  std::vector<std::thread> workers_;
};

}  // namespace pipesched::stream
