// Request sources for the streaming engine: lazy, pull-based producers of
// service::Request.
//
// The contract that makes streaming bound memory: a Source materializes one
// request per next() call and retains nothing afterwards. The engine pulls
// only when it has window space (queue capacity + workers), so a terabyte of
// instance files on disk never becomes a terabyte of pipelines in memory.
//
// Implementations here cover the service's ingestion shapes:
//   * VectorSource     — in-memory (tests, adapters);
//   * FileListSource   — instance files read one per pull (directories are
//                        expanded up front via expandInstancePaths — names
//                        only, not contents);
//   * ScenarioSource   — the named realistic scenarios on the lab cluster;
//   * GeneratorSource  — synthetic E1..E4 suites, generated on demand;
//   * JsonlSource      — one JSON request object per line (the `serve`
//                        protocol; see the JSONL REQUEST LINES comment);
//   * ChainSource      — concatenation of sources.
//
// Sources are pulled serially (the engine's pump is single-threaded); they
// are not required to be thread-safe.
#pragma once

#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pipesched/io/jsonl_fast.hpp"
#include "pipesched/service/request.hpp"
#include "pipesched/workload/generator.hpp"
#include "pipesched/workload/scenarios.hpp"

namespace pipesched::stream {

class Source {
 public:
  virtual ~Source() = default;

  /// The next request, or nullopt at end of stream. May throw (e.g. an
  /// unreadable file) — the engine drains in-flight work, then propagates.
  [[nodiscard]] virtual std::optional<service::Request> next() = 0;
};

/// In-memory source; hands out the requests it was built with, in order.
class VectorSource : public Source {
 public:
  explicit VectorSource(std::vector<service::Request> requests)
      : requests_(std::move(requests)) {}

  [[nodiscard]] std::optional<service::Request> next() override;

 private:
  std::vector<service::Request> requests_;
  std::size_t cursor_ = 0;
};

/// Expands a mixed list of instance-file paths and directories into a flat
/// file list: files pass through untouched, each directory contributes its
/// regular "*.psi" files in lexicographic order (non-recursive). A directory
/// without any .psi file is an error (a typo'd path must not silently solve
/// nothing). No file contents are read.
[[nodiscard]] std::vector<std::string> expandInstancePaths(
    const std::vector<std::string>& paths);

/// Reads one instance file per pull (io::readInstanceFromFile). The request
/// name is the file's `name` line, falling back to the path.
class FileListSource : public Source {
 public:
  FileListSource(std::vector<std::string> paths, service::SweepSpec sweep,
                 core::CommModel model)
      : paths_(std::move(paths)), sweep_(sweep), model_(model) {}

  [[nodiscard]] std::optional<service::Request> next() override;

 private:
  std::vector<std::string> paths_;
  service::SweepSpec sweep_;
  core::CommModel model_;
  std::size_t cursor_ = 0;
};

/// The named realistic scenarios (workload::allScenarios) on the lab cluster.
class ScenarioSource : public Source {
 public:
  ScenarioSource(service::SweepSpec sweep, core::CommModel model);

  [[nodiscard]] std::optional<service::Request> next() override;

 private:
  std::vector<workload::Scenario> scenarios_;
  core::Platform platform_;
  service::SweepSpec sweep_;
  core::CommModel model_;
  std::size_t cursor_ = 0;
};

/// Synthetic suite: `count` random instances of one experiment regime,
/// generated lazily from a deterministic seed. Names match the `batch`
/// command's scheme ("E3-n6p4-0"), so stream and batch outputs line up.
class GeneratorSource : public Source {
 public:
  struct Spec {
    workload::ExperimentKind kind = workload::ExperimentKind::kE1BalancedHomComm;
    std::size_t count = 10;
    std::size_t stages = 10;
    std::size_t processors = 10;
    std::uint64_t seed = 20070628;
    service::SweepSpec sweep;
    core::CommModel model = core::CommModel::kSequential;
  };

  explicit GeneratorSource(const Spec& spec) : spec_(spec), rng_(spec.seed) {}

  [[nodiscard]] std::optional<service::Request> next() override;

 private:
  Spec spec_;
  workload::Rng rng_;
  std::size_t produced_ = 0;
};

/// Defaults applied to JSONL request lines that do not override them.
struct JsonlDefaults {
  service::SweepSpec sweep;
  core::CommModel model = core::CommModel::kSequential;
  /// Default per-request deadline in milliseconds (0 = none). Stamped as an
  /// absolute deadline at parse time; a line's own "deadline_ms" overrides.
  double deadlineMs = 0;
};

/// Which reader backs a JsonlSource. kFast is the zero-copy path
/// (io::BlockLineReader + io::LiteParser); kLegacy is the original
/// getline + io::parseJson tree walk, kept as the differential reference
/// (the suite in tests/io/test_jsonl_fast.cpp drives both and asserts
/// identical requests and error classification).
enum class JsonlReader { kFast, kLegacy };

// JSONL REQUEST LINES — one JSON object per line; blank lines are skipped.
//
//   {"file": "app.psi"}                         instance from a file
//   {"text": "pipesched-instance v1\n..."}      inline instance text
//   {"kind": "E2", "stages": 8, "processors": 5, "seed": 7}
//                                               generated instance
//
// Exactly one of file/text/kind per line. Optional on any line:
//   "name" (display label), "points"/"range" (sweep overrides),
//   "overlap" (bool comm-model override), "deadline_ms" (completion
//   deadline in milliseconds from parse time, >= 0; 0 disables the
//   configured default). Unknown and duplicate fields are errors.
class JsonlSource : public Source {
 public:
  /// Called for a malformed line with its 1-based number; the line is then
  /// skipped. Without a handler, malformed lines throw io::ParseError.
  using ErrorHandler = std::function<void(std::size_t line, const std::string& message)>;

  JsonlSource(std::istream& in, JsonlDefaults defaults = {}, ErrorHandler onError = {},
              JsonlReader reader = JsonlReader::kFast)
      : in_(&in),
        defaults_(std::move(defaults)),
        onError_(std::move(onError)),
        mode_(reader) {
    if (mode_ == JsonlReader::kFast) lines_.emplace(*in_);
  }

  /// Owning overload (e.g. an ifstream the caller opened for us).
  JsonlSource(std::unique_ptr<std::istream> in, JsonlDefaults defaults = {},
              ErrorHandler onError = {}, JsonlReader reader = JsonlReader::kFast)
      : owned_(std::move(in)),
        in_(owned_.get()),
        defaults_(std::move(defaults)),
        onError_(std::move(onError)),
        mode_(reader) {
    if (mode_ == JsonlReader::kFast) lines_.emplace(*in_);
  }

  [[nodiscard]] std::optional<service::Request> next() override;

  /// Lines consumed so far (including skipped/blank ones).
  [[nodiscard]] std::size_t linesRead() const noexcept { return lineNo_; }

 private:
  [[nodiscard]] std::optional<service::Request> nextFast();
  [[nodiscard]] std::optional<service::Request> nextLegacy();

  std::unique_ptr<std::istream> owned_;
  std::istream* in_;
  JsonlDefaults defaults_;
  ErrorHandler onError_;
  JsonlReader mode_;
  std::optional<io::BlockLineReader> lines_;  ///< kFast only
  io::LiteParser parser_;                     ///< kFast only; arena reused per line
  std::size_t lineNo_ = 0;
};

/// Concatenates sources: drains each part fully before moving to the next.
class ChainSource : public Source {
 public:
  explicit ChainSource(std::vector<std::unique_ptr<Source>> parts)
      : parts_(std::move(parts)) {}

  [[nodiscard]] std::optional<service::Request> next() override;

 private:
  std::vector<std::unique_ptr<Source>> parts_;
  std::size_t cursor_ = 0;
};

}  // namespace pipesched::stream
