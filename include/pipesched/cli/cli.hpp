// The `pipesched` command-line tool, exposed as a library so the whole
// surface is unit-testable with in-memory streams.
//
//   pipesched batch    --scenarios --kind E2 --count 50 --threads 4 [--json]
//   pipesched generate --kind E2 --stages 10 --processors 5 -o app.psi
//   pipesched solve    --instance app.psi --threshold 12 [--heuristic H1]
//   pipesched eval     --instance app.psi --mapping map.psm
//   pipesched simulate --instance app.psi --mapping map.psm --gantt
//   pipesched pareto   --instance app.psi [--exact]
//   pipesched sweep    --kind E1 --stages 10 --processors 10
//   pipesched table1   --kind E1
//
// Every command reads/writes the text formats of pipesched/io/format.hpp.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pipesched::cli {

/// Runs one command. `args` excludes the program name (so argv[1..]).
/// Output goes to `out`, diagnostics to `err`. Returns the process exit
/// code: 0 success, 1 runtime failure (bad file, infeasible threshold...),
/// 2 usage error.
int runCli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// argv-style convenience used by tools/pipesched.
int runCli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

/// The usage text printed by `pipesched help` and on usage errors.
[[nodiscard]] std::string usageText();

}  // namespace pipesched::cli
