// Tiny declarative argument parser for the `pipesched` command-line tool.
// Supports `--key value`, `--flag`, and positional arguments; every lookup is
// typed and validated with a usage-style error on failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::cli {

/// Raised on malformed command lines (unknown option, bad value, missing
/// required option). The CLI driver turns it into an error message + exit 2.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

class ArgList {
 public:
  /// Splits `args` into positionals and `--key[=value]` options. `flagNames`
  /// lists the options that take no value; every other `--key` consumes the
  /// next argument as its value. Unknown options are detected at access time
  /// via assertConsumed().
  ArgList(std::vector<std::string> args, const std::vector<std::string>& flagNames);

  /// Positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// True when `--name` was present (flag or valued).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name`, or nullopt.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// Value of `--name`, or `fallback`.
  [[nodiscard]] std::string getOr(const std::string& name, const std::string& fallback) const;

  /// Value of `--name`; throws UsageError when absent.
  [[nodiscard]] std::string require(const std::string& name) const;

  /// Typed getters; throw UsageError on malformed numbers.
  [[nodiscard]] Real getReal(const std::string& name, Real fallback) const;
  [[nodiscard]] Real requireReal(const std::string& name) const;
  [[nodiscard]] std::size_t getSize(const std::string& name, std::size_t fallback) const;
  [[nodiscard]] std::uint64_t getU64(const std::string& name, std::uint64_t fallback) const;

  /// Throws UsageError when any provided option was never read (catches
  /// typos like --trehshold).
  void assertConsumed() const;

 private:
  struct Option {
    std::string name;
    std::optional<std::string> value;
    mutable bool consumed = false;
  };

  [[nodiscard]] const Option* find(const std::string& name) const;

  std::vector<std::string> positionals_;
  std::vector<Option> options_;
};

}  // namespace pipesched::cli
