// Allocation-free incremental evaluation kernel for the solver hot path.
//
// The refinement heuristics (local search, annealing, the splitting engine)
// evaluate thousands of candidate mappings that differ from the current one
// in at most three intervals. The historical pattern — copy the assignment
// vector, edit it, rebuild an IntervalMapping (re-checking the ordering
// invariant) and re-run Evaluator::evaluate over all m intervals — makes
// every candidate O(m) breakdowns plus an allocation. This kernel instead
// keeps a *mutable scratch mapping* with flat per-interval phase buffers and
// re-runs Evaluator::breakdown only for the intervals a move touches plus
// their link neighbours (<= 4), with one-level undo for rejected candidates
// and zero steady-state allocation.
//
// Bit-identity contract: every phase time is produced by the same
// Evaluator::breakdown fill the full evaluator uses, and metrics() replays
// Evaluator::evaluate's exact accumulation order over the cached breakdowns
// (floating-point addition is order-sensitive, so the final reduction is a
// cheap O(m) scan over flat buffers rather than an incremental sum). The
// resulting Metrics are therefore bit-identical to a fresh evaluate() of the
// materialized mapping — the differential suite in
// tests/core/test_delta_evaluation.cpp pins this across comm models and
// platform kinds.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "pipesched/core/evaluation.hpp"
#include "pipesched/core/mapping.hpp"

namespace pipesched::core {

/// One candidate move over the scratch mapping. Plain data so search loops
/// can remember the best move of a scan and re-apply it after undoing the
/// losers.
struct Move {
  enum class Kind : unsigned char {
    kReassign,    ///< interval j -> processor u (u must be unused)
    kSwap,        ///< swap the processors of intervals j and k
    kShiftLeft,   ///< interval j gives its last stage to interval j+1
    kShiftRight,  ///< interval j takes interval j+1's first stage
    kMerge,       ///< merge intervals j and j+1 (keepLeft picks the owner)
    kSplit,       ///< split interval j after stage q, tail on processor u
  };

  Kind kind = Kind::kReassign;
  std::size_t j = 0;  ///< primary interval index
  std::size_t k = 0;  ///< swap partner (kSwap) / cut stage q (kSplit)
  std::size_t u = 0;  ///< target processor (kReassign, kSplit)
  bool keepLeft = true;  ///< kMerge: keep the left interval's processor

  [[nodiscard]] static Move reassign(std::size_t j, std::size_t u) {
    return Move{Kind::kReassign, j, 0, u, true};
  }
  [[nodiscard]] static Move swapProcessors(std::size_t j, std::size_t k) {
    return Move{Kind::kSwap, j, k, 0, true};
  }
  [[nodiscard]] static Move shiftLeft(std::size_t j) {
    return Move{Kind::kShiftLeft, j, 0, 0, true};
  }
  [[nodiscard]] static Move shiftRight(std::size_t j) {
    return Move{Kind::kShiftRight, j, 0, 0, true};
  }
  [[nodiscard]] static Move merge(std::size_t j, bool keepLeft) {
    return Move{Kind::kMerge, j, 0, 0, keepLeft};
  }
  [[nodiscard]] static Move split(std::size_t j, std::size_t q, std::size_t u) {
    return Move{Kind::kSplit, j, q, u, true};
  }
};

/// Reusable flat buffers behind a DeltaEvaluator. A workspace owns no
/// instance state of its own and can be re-bound to different instances and
/// mapping sizes; after the first load at a given size every operation is
/// allocation-free.
class EvalWorkspace {
 public:
  /// Pre-sizes every buffer for mappings of up to `maxIntervals` intervals on
  /// up to `processorCount` processors, so not even the first load allocates.
  void reserve(std::size_t maxIntervals, std::size_t processorCount);

 private:
  friend class DeltaEvaluator;

  struct SavedEntry {
    std::size_t index = 0;
    Assignment part;
    CycleBreakdown breakdown;
    Real cycle = 0;
    Real latTerm = 0;
  };
  struct SavedBit {
    std::size_t processor = 0;
    bool wasUsed = false;
  };

  std::vector<Assignment> parts_;          // the scratch mapping
  std::vector<CycleBreakdown> breakdowns_; // parallel phase buffers
  std::vector<Real> cycles_;               // cycleOf(breakdowns_[j]), flat
  std::vector<Real> latTerms_;             // input + compute per interval, flat
  std::vector<unsigned char> used_;        // per-processor usage bitmap
  std::vector<SavedEntry> savedEntries_;   // one-level undo: overwritten slots
  std::vector<SavedBit> savedBits_;        // one-level undo: bitmap changes
  // Prefix caches of the metrics scan over the *committed* state (valid for
  // indices < DeltaEvaluator::prefixValid_): running bottleneck max/argmax
  // and running latency sum after interval j. They let metrics() resume its
  // bit-exact accumulation at the first touched interval instead of
  // rescanning from 0.
  std::vector<Real> prefixPeriod_;
  std::vector<std::size_t> prefixBottleneck_;
  std::vector<Real> prefixLat_;
};

/// Incremental evaluator over one scratch mapping. Holds non-owning
/// references to the Evaluator (instance + comm model) and the workspace;
/// both must outlive it.
///
/// Usage pattern (one candidate):
///   if (delta.apply(move)) {            // O(touched) breakdowns
///     score(delta.metrics());           // O(m) flat-buffer scan, no allocs
///     delta.undo();                     // restore, bit-exact
///   }
/// and for an accepted move: apply + commit() instead of undo().
///
/// Invariant maintained for the caller: the scratch mapping is always a
/// structurally valid interval mapping with pairwise-distinct processors —
/// apply() refuses (returns false, state untouched) any move that would
/// break it or that does not apply to the current state.
/// Operation counts of one DeltaEvaluator (plain integers: the evaluator is
/// a single-threaded object). Search loops fold these into the process-wide
/// obs registry at the end of a run via recordDeltaKernelStats().
struct DeltaStats {
  std::uint64_t peeks = 0;     ///< peek() calls (applicable or not)
  std::uint64_t applies = 0;   ///< successful apply() moves
  std::uint64_t replaces = 0;  ///< successful replaceInterval() edits
  std::uint64_t undos = 0;     ///< undo() reverts
};

/// Adds `stats` to the eval.delta.* registry counters when metrics are
/// enabled; a cheap no-op otherwise. Call once per search run, not per move.
void recordDeltaKernelStats(const DeltaStats& stats);

class DeltaEvaluator {
 public:
  DeltaEvaluator(const Evaluator& eval, EvalWorkspace& workspace);

  /// Loads `mapping` into the scratch state (O(m) breakdowns). Discards any
  /// pending undo.
  void load(const IntervalMapping& mapping);

  /// Same, from a raw assignment list that already satisfies the ordering
  /// invariant (trusted: not re-checked in release builds).
  void load(const std::vector<Assignment>& parts);

  [[nodiscard]] std::size_t intervalCount() const noexcept { return ws_->parts_.size(); }
  [[nodiscard]] const Assignment& assignment(std::size_t j) const { return ws_->parts_[j]; }
  [[nodiscard]] const std::vector<Assignment>& assignments() const noexcept {
    return ws_->parts_;
  }

  /// Cycle-time of interval j, read from the flat phase buffer.
  [[nodiscard]] Real cycle(std::size_t j) const { return ws_->cycles_[j]; }

  /// Phase breakdown of interval j (cached, not recomputed).
  [[nodiscard]] const CycleBreakdown& breakdown(std::size_t j) const {
    return ws_->breakdowns_[j];
  }

  /// True when processor u is used by some interval of the scratch mapping.
  /// Maintained incrementally (O(1) per move), so search loops no longer
  /// rebuild a used-processor vector per round.
  [[nodiscard]] bool processorUsed(std::size_t u) const { return ws_->used_[u] != 0; }

  /// Metrics of the scratch mapping — bit-identical to
  /// Evaluator::evaluate(mapping()) by construction. Cached between moves.
  [[nodiscard]] const Metrics& metrics();

  /// Metrics of the mapping `move` would produce, WITHOUT touching the
  /// scratch state: the phase terms of the touched intervals are computed
  /// into locals and the metrics fold resumes from the prefix caches with
  /// those values patched in (index-shifted past a merge/split edit point).
  /// Bit-identical to apply + metrics + undo, for every move kind; returns
  /// nullopt when the move does not apply. This is the cheapest way to score
  /// one candidate: no bookkeeping, no undo, nothing written.
  [[nodiscard]] std::optional<Metrics> peek(const Move& move) const;

  /// Applies `move` if it is valid for the current state; returns false and
  /// leaves the state untouched otherwise. A successful apply supersedes any
  /// previously pending undo (the previous move is committed implicitly).
  bool apply(const Move& move);

  /// Replaces interval j by `replacement` (which must tile it exactly, like
  /// IntervalMapping::replaceInterval; 1..3 parts) — the splitting engine's
  /// candidate primitive. Throws MappingError on a malformed replacement;
  /// returns false when a replacement processor is already used elsewhere.
  bool replaceInterval(std::size_t j, const Assignment* replacement, std::size_t count);

  /// Reverts the last successful apply()/replaceInterval(). At most one
  /// level; throws ModelError when nothing is pending.
  void undo();

  /// Keeps the last move and forgets its undo state.
  void commit() noexcept;

  /// Materializes the scratch state as an IntervalMapping (allocates — call
  /// outside the hot loop).
  [[nodiscard]] IntervalMapping mapping() const;

  /// Cumulative operation counts since construction (load() does not reset
  /// them: one evaluator may serve many restarts within a run).
  [[nodiscard]] const DeltaStats& stats() const noexcept { return stats_; }

 private:
  void refresh(std::size_t lo, std::size_t hi);  // recompute breakdowns [lo, hi] clamped
  void refreshCompute(std::size_t i);             // comm-hom processor move: only the
                                                  // compute phase of i changed
  void scan(bool writePrefixes);                  // resume the metrics fold
  void beginMove(std::size_t touchedLo);          // snapshot undo state
  void saveRange(std::size_t lo, std::size_t hi); // snapshot slots for undo
  void setUsed(std::size_t processor, bool used); // bitmap write with undo log

  const Evaluator* eval_;
  EvalWorkspace* ws_;
  /// Operation tally; mutable because peek() is logically const (it never
  /// touches the scratch state) yet still counts as kernel work.
  mutable DeltaStats stats_;
  /// On communication-homogeneous platforms an interval's phase times do not
  /// depend on its neighbours' processors, so processor moves touch only the
  /// interval itself (reach 0); fully-heterogeneous platforms must also
  /// refresh the link neighbours (reach 1).
  std::size_t neighborReach_ = 1;

  Metrics cached_{};
  bool metricsDirty_ = true;
  /// Prefix caches in the workspace are valid for indices < prefixValid_.
  std::size_t prefixValid_ = 0;

  // Pending (single-level) undo state.
  enum class PendingOp : unsigned char {
    kNone,      ///< nothing to undo
    kEntries,   ///< restore saved entries only (size unchanged)
    kEraseAt,   ///< erase pendingCount_ slots at pendingPos_, then restore
    kInsertAt,  ///< insert pendingCount_ slots at pendingPos_, then restore
  };
  PendingOp pending_ = PendingOp::kNone;
  std::size_t pendingPos_ = 0;
  std::size_t pendingCount_ = 0;
  Metrics savedMetrics_{};
  bool savedMetricsDirty_ = true;
  std::size_t savedPrefixValid_ = 0;
};

}  // namespace pipesched::core
