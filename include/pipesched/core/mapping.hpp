// Interval mappings (paper Section 2, "Bi-criteria mapping problem").
//
// A mapping partitions the stages [0, n) into m <= p intervals of consecutive
// stages; interval j is assigned to a distinct processor alloc(j). The paper
// requires d_1 = 1, d_{j+1} = e_j + 1 and e_m = n (1-based); we keep the same
// invariants 0-based.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::core {

/// A contiguous, inclusive range of stage indices [first, last].
struct Interval {
  std::size_t first = 0;
  std::size_t last = 0;

  [[nodiscard]] std::size_t length() const noexcept { return last - first + 1; }
  [[nodiscard]] bool contains(std::size_t k) const noexcept { return first <= k && k <= last; }
  [[nodiscard]] bool operator==(const Interval&) const noexcept = default;
};

/// One interval together with the processor executing it.
struct Assignment {
  Interval interval;
  std::size_t processor = 0;

  [[nodiscard]] bool operator==(const Assignment&) const noexcept = default;
};

/// An ordered partition of all stages into processor-assigned intervals.
///
/// The structural invariants (checked by validate(), and by construction in
/// the factory functions) are exactly the paper's:
///  * intervals are non-empty, consecutive and cover [0, stageCount);
///  * every interval is mapped to a distinct processor;
///  * processor indices are within the platform.
class IntervalMapping {
 public:
  IntervalMapping() = default;

  /// Builds a mapping from an explicit assignment list (validated lazily via
  /// validate(); the cheap ordering invariant is checked immediately).
  explicit IntervalMapping(std::vector<Assignment> assignments);

  /// Internal fast path for callers that maintain the ordering invariant
  /// themselves (the delta-evaluation kernel materializing its scratch
  /// state): skips checkOrdering in release builds. Debug builds still
  /// verify, so a corrupted scratch mapping fails loudly under test.
  [[nodiscard]] static IntervalMapping fromValidated(std::vector<Assignment> assignments);

  /// The Lemma-1 initial solution: all n stages on a single processor.
  [[nodiscard]] static IntervalMapping singleInterval(std::size_t n, std::size_t processor);

  /// One-to-one mapping: stage k on processors[k].
  [[nodiscard]] static IntervalMapping oneToOne(const std::vector<std::size_t>& processors);

  /// Builds from interval end points (inclusive, strictly increasing, last
  /// one == n-1) and a parallel processor list.
  [[nodiscard]] static IntervalMapping fromCuts(std::size_t n,
                                                const std::vector<std::size_t>& ends,
                                                const std::vector<std::size_t>& processors);

  [[nodiscard]] std::size_t intervalCount() const noexcept { return parts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return parts_.empty(); }

  [[nodiscard]] const Assignment& assignment(std::size_t j) const { return parts_.at(j); }
  [[nodiscard]] const Interval& interval(std::size_t j) const { return parts_.at(j).interval; }
  [[nodiscard]] std::size_t processor(std::size_t j) const { return parts_.at(j).processor; }
  [[nodiscard]] const std::vector<Assignment>& assignments() const noexcept { return parts_; }

  /// Total number of stages covered (0 for an empty mapping).
  [[nodiscard]] std::size_t stageCount() const noexcept;

  /// Index of the interval containing stage k. Throws MappingError if k is
  /// outside the covered range.
  [[nodiscard]] std::size_t intervalOf(std::size_t k) const;

  /// Replaces interval j by the given replacement assignments (used by the
  /// splitting heuristics). The replacements must tile interval j exactly;
  /// this is checked.
  void replaceInterval(std::size_t j, const std::vector<Assignment>& replacement);

  /// Throws MappingError unless the mapping is a valid interval mapping of a
  /// pipeline with `stageCount` stages onto a platform with `processorCount`
  /// processors.
  void validate(std::size_t stageCount, std::size_t processorCount) const;

  /// Non-throwing variant of validate().
  [[nodiscard]] bool isValid(std::size_t stageCount, std::size_t processorCount) const;

  /// e.g. "[0,2]->P3 | [3,3]->P0 | [4,7]->P5".
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const IntervalMapping&) const noexcept = default;

 private:
  std::vector<Assignment> parts_;
};

}  // namespace pipesched::core
