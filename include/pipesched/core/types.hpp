// pipesched — reproduction of "Multi-criteria scheduling of pipeline workflows"
// (Benoit, Rehn-Sonigo, Robert; INRIA RR-6232 / CLUSTER 2007).
//
// Fundamental scalar types and numeric helpers shared by every library.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

namespace pipesched {

/// All work, data-size, speed, bandwidth and time quantities in the model.
using Real = double;

/// Tolerance used when comparing derived time quantities (periods, latencies).
inline constexpr Real kTimeEps = 1e-9;

/// Value used for "no constraint" thresholds.
inline constexpr Real kInfinity = std::numeric_limits<Real>::infinity();

/// Returns true when |a - b| <= eps * max(1, |a|, |b|) (relative-absolute mix).
[[nodiscard]] inline bool nearlyEqual(Real a, Real b, Real eps = kTimeEps) {
  const Real scale = std::max({Real(1), std::abs(a), std::abs(b)});
  return std::abs(a - b) <= eps * scale;
}

/// Returns true when a is strictly smaller than b beyond tolerance.
[[nodiscard]] inline bool definitelyLess(Real a, Real b, Real eps = kTimeEps) {
  return a < b && !nearlyEqual(a, b, eps);
}

/// Returns true when a <= b up to tolerance.
[[nodiscard]] inline bool lessOrNearlyEqual(Real a, Real b, Real eps = kTimeEps) {
  return a <= b || nearlyEqual(a, b, eps);
}

/// Exception thrown on malformed model inputs (negative weights, bad sizes...).
class ModelError : public std::invalid_argument {
 public:
  explicit ModelError(const std::string& what) : std::invalid_argument(what) {}
};

/// Exception thrown when a mapping violates a structural invariant.
class MappingError : public std::logic_error {
 public:
  explicit MappingError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace pipesched
