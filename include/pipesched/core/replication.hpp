// Replicated ("deal" skeleton) mappings — the extension sketched in the
// paper's conclusion: when a stage is computationally dominant and has no
// internal inter-task dependencies, its interval can be *replicated* over a
// set of processors that serve data sets round-robin.
//
// Cost model (documented in DESIGN.md; follows the interval-mapping-with-
// replication model of the authors' follow-up work):
//   For interval j with replica set S (data set k -> replica k mod |S|):
//     cycle_u   = delta_in/b + W_j/s_u + delta_out/b      (per replica u)
//     period_j  = max_{u in S} cycle_u / |S|
//   A replica only sees every |S|-th data set, so its cycle may be up to
//   |S| times the global period. The latency of a data set is determined by
//   whichever replica served it; the paper's latency is the max over data
//   sets, hence the *slowest* replica counts:
//     latency_j = delta_in/b + W_j/min_{u in S} s_u  (+ delta_n/b at the end)
#pragma once

#include <string>
#include <vector>

#include "pipesched/core/evaluation.hpp"

namespace pipesched::core {

/// One interval executed by one or more replica processors.
struct ReplicatedAssignment {
  Interval interval;
  std::vector<std::size_t> processors;  ///< non-empty; round-robin over these

  [[nodiscard]] bool operator==(const ReplicatedAssignment&) const noexcept = default;
};

/// An interval mapping in which every interval may be replicated.
/// Structural invariants mirror IntervalMapping, plus: every replica set is
/// non-empty and all processors are distinct across the whole mapping.
class ReplicatedMapping {
 public:
  ReplicatedMapping() = default;
  explicit ReplicatedMapping(std::vector<ReplicatedAssignment> assignments);

  /// Lifts a plain interval mapping (all replica sets are singletons).
  [[nodiscard]] static ReplicatedMapping fromIntervalMapping(const IntervalMapping& mapping);

  [[nodiscard]] std::size_t intervalCount() const noexcept { return parts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return parts_.empty(); }
  [[nodiscard]] const ReplicatedAssignment& assignment(std::size_t j) const {
    return parts_.at(j);
  }
  [[nodiscard]] const std::vector<ReplicatedAssignment>& assignments() const noexcept {
    return parts_;
  }

  /// Adds a replica processor to interval j (caller guarantees distinctness
  /// platform-wide; validate() re-checks).
  void addReplica(std::size_t j, std::size_t processor);

  /// Replaces interval j by a tiling of singleton-replica assignments (used
  /// by the deal-aware splitting heuristic).
  void replaceInterval(std::size_t j, const std::vector<ReplicatedAssignment>& replacement);

  void validate(std::size_t stageCount, std::size_t processorCount) const;

  /// e.g. "[0,2]->{P3} | [3,5]->{P0,P5}".
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const ReplicatedMapping&) const noexcept = default;

 private:
  std::vector<ReplicatedAssignment> parts_;
};

/// Per-interval period contribution of interval j (max replica cycle / |S|).
/// Communication-homogeneous platforms only (throws ModelError otherwise).
[[nodiscard]] Real replicatedIntervalPeriod(const Evaluator& eval,
                                            const ReplicatedMapping& mapping, std::size_t j);

/// Full metrics of a replicated mapping under the model above.
[[nodiscard]] Metrics evaluateReplicated(const Evaluator& eval,
                                         const ReplicatedMapping& mapping);

}  // namespace pipesched::core
