// Bi-criteria (period, latency) points and Pareto-front utilities.
//
// The paper's bi-criteria problem asks for the best latency under a period
// bound (or vice versa); sweeping the bound traces a front of non-dominated
// (period, latency) pairs. These helpers maintain such fronts for both the
// exact solvers and the heuristic sweeps.
#pragma once

#include <optional>
#include <vector>

#include "pipesched/core/mapping.hpp"
#include "pipesched/core/types.hpp"

namespace pipesched::core {

/// One bi-criteria outcome; the mapping that realized it is optional (kept by
/// the exact solvers, dropped by high-volume sweeps).
struct ParetoPoint {
  Real period = 0;
  Real latency = 0;
  std::optional<IntervalMapping> mapping;
};

/// True when `a` dominates `b`: no worse in both criteria, strictly better in
/// at least one (both criteria are minimized).
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Filters a point set down to its non-dominated subset, sorted by increasing
/// period (hence decreasing latency). Duplicate-coordinate points collapse to
/// one representative.
[[nodiscard]] std::vector<ParetoPoint> paretoFront(std::vector<ParetoPoint> points);

/// Incrementally maintained Pareto front, used where candidate points arrive
/// one at a time (exhaustive enumeration, branch-and-bound).
class ParetoFrontBuilder {
 public:
  /// Offers a candidate; returns true when it joined the front (i.e. it was
  /// not dominated by an existing member).
  bool offer(ParetoPoint point);

  /// Finished front, sorted by increasing period.
  [[nodiscard]] std::vector<ParetoPoint> take();

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  std::vector<ParetoPoint> points_;  // kept non-dominated at all times
};

}  // namespace pipesched::core
