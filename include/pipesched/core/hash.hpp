// Stable, platform-independent hashing of model quantities.
//
// The service layer fingerprints whole scheduling requests so identical
// instances dedupe and cache; that only works when the hash of a Real, a
// vector or a string is a pure function of the *values* — never of pointer
// identity, std::hash seeding, or iteration order. This header provides a
// streaming FNV-1a implementation over canonical byte encodings:
//
//   * Real values hash their IEEE-754 bit pattern, with -0.0 canonicalized
//     to +0.0 and every NaN collapsed to one quiet-NaN pattern;
//   * integers hash their little-endian 64-bit widening;
//   * length-prefixed sequences, so ("ab","c") != ("a","bc").
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::core {

/// Streaming 64-bit FNV-1a hasher over a canonical byte encoding.
class Hasher {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  explicit Hasher(std::uint64_t seed = kOffsetBasis) : state_(seed) {}

  Hasher& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
    return *this;
  }

  Hasher& u64(std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
    return bytes(buf, 8);
  }

  Hasher& size(std::size_t v) { return u64(static_cast<std::uint64_t>(v)); }

  /// Hashes the canonical bit pattern of `v` (see file comment).
  Hasher& real(Real v) {
    if (v == Real(0)) v = Real(0);            // -0.0 -> +0.0
    if (v != v) v = std::numeric_limits<Real>::quiet_NaN();
    std::uint64_t bits = 0;
    static_assert(sizeof(Real) == sizeof(bits));
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }

  /// Length-prefixed, so adjacent sequences cannot alias.
  Hasher& reals(const std::vector<Real>& values) {
    size(values.size());
    for (const Real v : values) real(v);
    return *this;
  }

  Hasher& str(const std::string& text) {
    size(text.size());
    return bytes(text.data(), text.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

/// Fixed-width lowercase hex rendering of a 64-bit hash.
[[nodiscard]] std::string hashHex(std::uint64_t value);

}  // namespace pipesched::core
