// Target platform model (paper Section 2).
//
// The paper's evaluation targets *Communication Homogeneous* platforms:
// p processors of different speeds s_u, fully interconnected by links of a
// single bandwidth b (one-port model). As an extension (the paper's "future
// work"), this class can also describe *Fully Heterogeneous* platforms with a
// per-pair bandwidth matrix plus dedicated input/output links to the outside
// world.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::core {

/// Immutable description of a target platform.
class Platform {
 public:
  /// Communication-homogeneous platform: `speeds[u]` is s_u, all links
  /// (including the world input/output links) have bandwidth `bandwidth`.
  Platform(std::vector<Real> speeds, Real bandwidth);

  /// Fully homogeneous: p identical processors of speed `speed`.
  [[nodiscard]] static Platform homogeneous(std::size_t p, Real speed, Real bandwidth);

  /// Fully heterogeneous platform. `linkBandwidth` is a p*p row-major matrix
  /// of pairwise bandwidths b_{u,v} (the diagonal is ignored — intra-processor
  /// communication is free); `inputBandwidth[u]` / `outputBandwidth[u]` are
  /// the bandwidths of the world->P_u and P_u->world links.
  [[nodiscard]] static Platform fullyHeterogeneous(std::vector<Real> speeds,
                                                   std::vector<Real> linkBandwidth,
                                                   std::vector<Real> inputBandwidth,
                                                   std::vector<Real> outputBandwidth);

  /// Number of processors p.
  [[nodiscard]] std::size_t processorCount() const noexcept { return speeds_.size(); }

  /// Speed s_u of processor u.
  [[nodiscard]] Real speed(std::size_t u) const { return speeds_.at(u); }

  /// All speeds.
  [[nodiscard]] const std::vector<Real>& speeds() const noexcept { return speeds_; }

  /// True when every link has the same bandwidth (the paper's setting).
  [[nodiscard]] bool isCommHomogeneous() const noexcept { return linkBw_.empty(); }

  /// True when additionally all processor speeds are equal.
  [[nodiscard]] bool isFullyHomogeneous() const noexcept;

  /// The single link bandwidth b. Throws ModelError on a fully-heterogeneous
  /// platform, where no such scalar exists.
  [[nodiscard]] Real bandwidth() const;

  /// Bandwidth of the link P_u -> P_v (u != v).
  [[nodiscard]] Real bandwidth(std::size_t u, std::size_t v) const;

  /// Bandwidth of the world -> P_u input link.
  [[nodiscard]] Real inputBandwidth(std::size_t u) const;

  /// Bandwidth of the P_u -> world output link.
  [[nodiscard]] Real outputBandwidth(std::size_t u) const;

  /// Index of (one of) the fastest processors (smallest index on ties).
  [[nodiscard]] std::size_t fastestProcessor() const;

  /// Processor indices ordered by non-increasing speed; ties broken by index
  /// so the ordering — and hence every heuristic built on it — is
  /// deterministic.
  [[nodiscard]] std::vector<std::size_t> processorsBySpeed() const;

  /// Largest processor speed.
  [[nodiscard]] Real maxSpeed() const { return speeds_.at(fastestProcessor()); }

  /// Human-readable one-line summary.
  [[nodiscard]] std::string describe() const;

 private:
  Platform() = default;

  std::vector<Real> speeds_;
  Real uniformBw_ = Real(0);   // valid when linkBw_ is empty
  std::vector<Real> linkBw_;   // p*p row-major, empty => comm-homogeneous
  std::vector<Real> inBw_;     // world -> P_u, empty => uniformBw_
  std::vector<Real> outBw_;    // P_u -> world, empty => uniformBw_
};

}  // namespace pipesched::core
