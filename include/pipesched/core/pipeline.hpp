// Application model: a linear pipeline of n stages (paper Section 2, Figure 1).
//
// Stage S_k (k = 1..n in the paper, 0-based here) receives an input of size
// delta_{k-1} from the previous stage, performs w_k units of computation, and
// sends an output of size delta_k to the next stage. delta_0 is the size of
// the initial input read from the outside world and delta_n the size of the
// final result written back to it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::core {

/// Immutable description of a pipeline application.
///
/// Invariants (checked at construction):
///  * at least one stage;
///  * comm sizes vector has exactly stageCount()+1 entries;
///  * all work amounts are strictly positive and all comm sizes non-negative
///    (zero communications are legal and used by the NP-hardness gadget).
class Pipeline {
 public:
  /// Builds a pipeline from per-stage work `w` (size n) and communication
  /// sizes `delta` (size n+1, delta[k] is the data flowing *out of* stage
  /// k-1 / into stage k; delta[0] is the outside-world input).
  Pipeline(std::vector<Real> work, std::vector<Real> comm);

  /// Convenience factory: n identical stages of work `w`, all comm sizes `d`.
  [[nodiscard]] static Pipeline uniform(std::size_t n, Real w, Real d);

  /// Number of stages n.
  [[nodiscard]] std::size_t stageCount() const noexcept { return work_.size(); }

  /// Work w_k of stage k (0-based, k < stageCount()).
  [[nodiscard]] Real work(std::size_t k) const { return work_.at(k); }

  /// Communication size delta_k, k in [0, stageCount()].
  [[nodiscard]] Real comm(std::size_t k) const { return comm_.at(k); }

  /// Input size of stage k: delta_k in paper indices = comm(k) here.
  [[nodiscard]] Real inputSize(std::size_t k) const { return comm_.at(k); }

  /// Output size of stage k: comm(k+1).
  [[nodiscard]] Real outputSize(std::size_t k) const { return comm_.at(k + 1); }

  /// Total work of the whole pipeline (used by the Lemma-1 latency optimum).
  [[nodiscard]] Real totalWork() const noexcept { return prefix_.back(); }

  /// Sum of work over the inclusive stage range [first, last].
  [[nodiscard]] Real workSum(std::size_t first, std::size_t last) const;

  /// All stage works (size n).
  [[nodiscard]] const std::vector<Real>& works() const noexcept { return work_; }

  /// All communication sizes (size n+1).
  [[nodiscard]] const std::vector<Real>& comms() const noexcept { return comm_; }

  /// Human-readable one-line summary, e.g. "Pipeline(n=5, W=37.0)".
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const Pipeline& other) const noexcept {
    return work_ == other.work_ && comm_ == other.comm_;
  }

 private:
  std::vector<Real> work_;    // w_k, size n
  std::vector<Real> comm_;    // delta_k, size n+1
  std::vector<Real> prefix_;  // prefix_[k] = sum of work_[0..k), size n+1
};

}  // namespace pipesched::core
