// Cost model for interval mappings (paper Section 2, equations (1) and (2)).
//
// For an interval I_j = [d_j, e_j] mapped onto processor u = alloc(j):
//
//   cycle(j)  = delta_{d_j-1}/b_in + (sum_{i in I_j} w_i)/s_u + delta_{e_j}/b_out
//   T_period  = max_j cycle(j)                                          (Eq. 1)
//   T_latency = sum_j ( delta_{d_j-1}/b_in + (sum w_i)/s_u ) + delta_n/b (Eq. 2)
//
// On Communication-Homogeneous platforms b_in = b_out = b for every link.
// The evaluator also supports the fully-heterogeneous extension (per-link
// bandwidths looked up from the mapping context) and an *overlapped* ablation
// model in which a processor's cycle-time is max(in, compute, out) instead of
// their sum (communication fully overlapped with computation).
#pragma once

#include <cstddef>
#include <vector>

#include "pipesched/core/mapping.hpp"
#include "pipesched/core/pipeline.hpp"
#include "pipesched/core/platform.hpp"
#include "pipesched/core/types.hpp"

namespace pipesched::core {

/// Which cycle-time composition rule to use.
enum class CommModel {
  /// The paper's model: in, compute and out are serialized (one-port, no
  /// overlap), cycle = in + compute + out.
  kSequential,
  /// Ablation: full overlap of communication and computation,
  /// cycle = max(in, compute, out). Latency is unaffected (a single data set
  /// still traverses every phase serially).
  kOverlapped,
};

/// The three phases of one processor's cycle.
struct CycleBreakdown {
  Real input = 0;    ///< delta_{d_j-1} / b_in
  Real compute = 0;  ///< sum of w_i / s_u
  Real output = 0;   ///< delta_{e_j} / b_out

  [[nodiscard]] Real sequential() const noexcept { return input + compute + output; }
  [[nodiscard]] Real overlapped() const noexcept {
    return std::max({input, compute, output});
  }
};

/// Aggregate metrics of a mapping.
struct Metrics {
  Real period = 0;
  Real latency = 0;
  std::size_t bottleneckInterval = 0;  ///< argmax_j cycle(j)

  [[nodiscard]] bool operator==(const Metrics&) const noexcept = default;
};

/// Evaluates mappings of one pipeline on one platform. Holds non-owning
/// references; both objects must outlive the evaluator.
class Evaluator {
 public:
  Evaluator(const Pipeline& pipeline, const Platform& platform,
            CommModel model = CommModel::kSequential);

  [[nodiscard]] const Pipeline& pipeline() const noexcept { return *pipe_; }
  [[nodiscard]] const Platform& platform() const noexcept { return *plat_; }
  [[nodiscard]] CommModel model() const noexcept { return model_; }

  /// Phase breakdown of interval j of `mapping` (general: looks up the
  /// incoming/outgoing link bandwidths from the neighbouring assignments).
  [[nodiscard]] CycleBreakdown breakdown(const IntervalMapping& mapping, std::size_t j) const;

  /// Phase breakdown of one assignment given its neighbouring processors
  /// (nullptr at the pipeline boundaries, where the world links apply). This
  /// is the single breakdown fill shared by the mapping-based overload, by
  /// evaluate()/cycles(), and by the delta-evaluation kernel — so all of
  /// them produce bit-identical phase times by construction.
  [[nodiscard]] CycleBreakdown breakdown(const Assignment& a, const std::size_t* prevProc,
                                         const std::size_t* nextProc) const;

  /// Folds a breakdown into a cycle-time under the active model.
  [[nodiscard]] Real cycleOf(const CycleBreakdown& b) const noexcept {
    return model_ == CommModel::kSequential ? b.sequential() : b.overlapped();
  }

  /// Cycle-time of interval j of `mapping` under the active model.
  [[nodiscard]] Real intervalCycle(const IntervalMapping& mapping, std::size_t j) const;

  /// Communication-homogeneous shortcut: cycle-time of `iv` on processor
  /// `proc`, independent of the neighbours (all links have bandwidth b).
  /// Throws ModelError on fully-heterogeneous platforms.
  [[nodiscard]] Real cycleTime(Interval iv, std::size_t proc) const;

  /// Compute-phase duration of `iv` on `proc`.
  [[nodiscard]] Real computeTime(Interval iv, std::size_t proc) const;

  /// T_period of the mapping (Eq. 1, or its overlapped variant).
  [[nodiscard]] Real period(const IntervalMapping& mapping) const;

  /// T_latency of the mapping (Eq. 2 — identical for both models).
  [[nodiscard]] Real latency(const IntervalMapping& mapping) const;

  /// Both metrics plus the bottleneck interval in one pass.
  [[nodiscard]] Metrics evaluate(const IntervalMapping& mapping) const;

  /// Same, over a raw assignment list that already satisfies the ordering
  /// invariant (trusted) — lets buffer-reusing loops evaluate a candidate
  /// without materializing an IntervalMapping.
  [[nodiscard]] Metrics evaluate(const std::vector<Assignment>& parts) const;

  /// Per-interval cycle-times (same order as the mapping's intervals).
  [[nodiscard]] std::vector<Real> cycles(const IntervalMapping& mapping) const;

  /// Allocation-free overload: resizes `out` to the interval count and fills
  /// it in place (hot loops reuse one buffer across calls).
  void cycles(const IntervalMapping& mapping, std::vector<Real>& out) const;

  /// Lemma 1: the optimal latency over *all* mappings — everything on the
  /// fastest processor. On fully-heterogeneous platforms the world links of
  /// each candidate processor are taken into account.
  [[nodiscard]] Real optimalLatency() const;

  /// The mapping realizing optimalLatency().
  [[nodiscard]] IntervalMapping optimalLatencyMapping() const;

 private:
  const Pipeline* pipe_;
  const Platform* plat_;
  CommModel model_;
};

}  // namespace pipesched::core
