// Simulated annealing over interval mappings — a randomized global-search
// baseline used by the ablation benches to estimate how much headroom the
// paper's deterministic heuristics leave on the table.
//
// Neighborhood: the same five move classes as local_search.hpp, sampled
// uniformly. Energy: the optimized criterion plus a penalty proportional to
// the constraint violation, so infeasible states are passable but repelling.
// Fully deterministic for a given (instance, options.seed).
#pragma once

#include "pipesched/heuristics/heuristics.hpp"

namespace pipesched::heuristics {

struct AnnealingOptions {
  std::uint64_t seed = 1;

  /// Total proposed moves. The temperature decays geometrically from
  /// initialTemperature to finalTemperature across this budget.
  std::size_t moves = 20'000;

  /// Initial temperature as a fraction of the seed solution's energy; the
  /// absolute temperature adapts to the instance's scale.
  Real initialTemperatureFraction = 0.25;

  /// Final temperature as a fraction of the initial temperature.
  Real finalTemperatureFraction = 1e-4;

  /// Constraint-violation penalty weight, also relative to the seed energy.
  Real penaltyWeight = 10;

  /// Score proposals through the core::DeltaEvaluator kernel (apply/undo,
  /// O(touched-intervals) per proposal, allocation-free) instead of the
  /// historical copy-edit-rebuild + full-evaluate pattern. Both paths draw
  /// the same random sequence and return bit-identical results (pinned by
  /// test_annealing.cpp); the rebuild path is the bench baseline.
  bool useDeltaKernel = true;
};

struct AnnealingResult {
  IntervalMapping mapping;  ///< best feasible state seen (or best overall)
  Metrics metrics;
  bool feasible = false;
  std::size_t accepted = 0;  ///< accepted moves (diagnostics)
};

/// Anneals from `seed` (must be valid). Returns the best feasible mapping
/// encountered, falling back to the lowest-energy infeasible one when the
/// threshold is unreachable.
[[nodiscard]] AnnealingResult anneal(const Evaluator& eval, const IntervalMapping& seedMapping,
                                     Objective objective, Real threshold,
                                     const AnnealingOptions& options = {});

}  // namespace pipesched::heuristics
