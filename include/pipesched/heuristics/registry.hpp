// Uniform runtime interface over the six heuristics, used by the experiment
// harness, the benches and the examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pipesched/heuristics/heuristics.hpp"

namespace pipesched::heuristics {

/// Stable identifiers following the paper's Table-1 numbering.
enum class HeuristicId {
  kH1SpMonoP,
  kH2ExploThreeMono,
  kH3ExploThreeBi,
  kH4SpBiP,
  kH5SpMonoL,
  kH6SpBiL,
};

/// Polymorphic handle on one heuristic.
class MappingHeuristic {
 public:
  virtual ~MappingHeuristic() = default;

  [[nodiscard]] virtual HeuristicId id() const = 0;

  /// Short stable name, e.g. "H1-SpMonoP".
  [[nodiscard]] virtual std::string name() const = 0;

  /// The name used in the paper's plots, e.g. "Sp mono, P fix".
  [[nodiscard]] virtual std::string paperName() const = 0;

  [[nodiscard]] virtual Objective objective() const = 0;

  /// Runs with `threshold` interpreted according to objective(): a period
  /// bound for the period-constrained family, a latency bound otherwise.
  [[nodiscard]] virtual Result run(const Evaluator& eval, Real threshold) const = 0;

  /// The heuristic's *failure threshold* on this instance: thresholds below
  /// this value are infeasible for the heuristic, values at/above succeed.
  /// For the period-constrained family this is the period reached by the
  /// run-to-exhaustion variant; for the latency-constrained family it is the
  /// Lemma-1 optimal latency (see DESIGN.md).
  [[nodiscard]] virtual Real failureThreshold(const Evaluator& eval) const = 0;
};

/// Factory for a single heuristic.
[[nodiscard]] std::unique_ptr<MappingHeuristic> makeHeuristic(HeuristicId id);

/// All six paper heuristics in Table-1 order.
[[nodiscard]] std::vector<std::unique_ptr<MappingHeuristic>> makeAllHeuristics();

/// All Table-1 ids in order.
[[nodiscard]] std::vector<HeuristicId> allHeuristicIds();

}  // namespace pipesched::heuristics
