// Steepest-descent local search over interval mappings — a refinement pass
// and an independent baseline for the paper's splitting heuristics.
//
// The neighborhood contains every mapping reachable from the current one by:
//   * shifting the cut between two adjacent intervals by one stage;
//   * swapping the processors of two intervals;
//   * reassigning one interval to an unused processor;
//   * merging two adjacent intervals onto either of their processors;
//   * splitting one interval in two, the new part on an unused processor.
//
// Unlike the paper's engines, local search is *seeded* (start from any valid
// mapping) and can move cuts back — it explores mappings the greedy splitting
// loop can never reach. It works unchanged on fully-heterogeneous platforms
// because every candidate is scored through Evaluator::evaluate.
#pragma once

#include "pipesched/heuristics/registry.hpp"

namespace pipesched::heuristics {

struct LocalSearchOptions {
  /// Steepest-descent rounds (each round scans the whole neighborhood).
  std::size_t maxRounds = 10'000;

  /// Include interval-splitting moves (the largest move class, O(n·p)).
  bool splitMoves = true;

  /// Include merge moves (may strand processors but shortens latency).
  bool mergeMoves = true;

  /// Score candidates through the core::DeltaEvaluator kernel (apply/undo,
  /// O(touched-intervals) per candidate, allocation-free) instead of the
  /// historical copy-edit-rebuild + full-evaluate pattern. The two paths
  /// return bit-identical results (pinned by test_local_search.cpp); the
  /// rebuild path is kept as the differential reference and as the
  /// before/after baseline for bench/perf_eval.
  bool useDeltaKernel = true;
};

struct LocalSearchResult {
  IntervalMapping mapping;
  Metrics metrics;
  std::size_t roundsAccepted = 0;  ///< strictly-improving rounds taken
  bool feasible = false;           ///< constrained criterion meets the threshold
};

/// Improves `seed` for `objective` under `threshold` until no neighbor is
/// strictly better. The comparison is lexicographic: feasibility first, then
/// the optimized criterion, then the constrained one. Throws MappingError if
/// the seed is invalid for the evaluator's instance.
[[nodiscard]] LocalSearchResult localSearch(const Evaluator& eval, const IntervalMapping& seed,
                                            Objective objective, Real threshold,
                                            const LocalSearchOptions& options = {});

/// Convenience: runs `heuristic` then polishes its mapping with localSearch.
/// The returned Result keeps the heuristic's split count and reports success
/// for the *refined* mapping.
[[nodiscard]] Result refineWithLocalSearch(const Evaluator& eval,
                                           const MappingHeuristic& heuristic, Real threshold,
                                           const LocalSearchOptions& options = {});

}  // namespace pipesched::heuristics
