// Greedy feasibility-probe baseline — the natural heterogeneous extension of
// the chains-to-chains probe (Section 1 of the paper connects the two
// problems): processors are consumed fastest-first, each taking the longest
// prefix of the remaining stages whose cycle-time stays within the target
// period. A binary search over the target turns the probe into a
// period-minimizing baseline.
//
// Unlike the paper's splitting heuristics this builds the mapping left to
// right in one pass, so it serves as an independent baseline in the ablation
// benches (it is *not* one of the paper's six).
#pragma once

#include <optional>

#include "pipesched/heuristics/heuristics.hpp"

namespace pipesched::heuristics {

/// Greedy probe: tries to build a mapping with period <= `periodTarget` using
/// processors fastest-first, each taking a maximal-prefix interval. Returns
/// nullopt when some stage cannot be placed (including single stages whose
/// cycle exceeds the target on the fastest remaining processor).
/// Communication-homogeneous platforms only (the prefix rule needs
/// neighbor-independent cycle-times).
[[nodiscard]] std::optional<IntervalMapping> greedyProbe(const Evaluator& eval,
                                                         Real periodTarget);

struct GreedyProbeOptions {
  int bisectionIterations = 60;
};

/// The smallest period for which greedyProbe succeeds (binary search between
/// the instance lower bound and the single-interval Lemma-1 period).
[[nodiscard]] Real greedyProbeMinPeriod(const Evaluator& eval,
                                        const GreedyProbeOptions& options = {});

/// Baseline heuristic with the same contract as the paper's six:
///  * kMinLatencyForPeriod — one probe at the threshold;
///  * kMinPeriodForLatency — binary search for the smallest period whose
///    probe mapping also satisfies the latency bound.
[[nodiscard]] Result greedyProbeHeuristic(const Evaluator& eval, Objective objective,
                                          Real threshold,
                                          const GreedyProbeOptions& options = {});

}  // namespace pipesched::heuristics
