// The six bi-criteria mapping heuristics of paper Section 4.
//
// Period-constrained family (minimize latency subject to T_period <= P):
//   H1  "Sp mono P"    — 2-way splitting, mono-criterion rule.
//   H2  "3-Explo mono" — 3-way splitting, mono-criterion rule.   (paper H2a)
//   H3  "3-Explo bi"   — 3-way splitting, bi-criteria ratio rule. (paper H2b)
//   H4  "Sp bi P"      — binary search over the authorized latency increase,
//                        2-way splitting with the bi-criteria rule inside.
// Latency-constrained family (minimize period subject to T_latency <= L):
//   H5  "Sp mono L"    — 2-way splitting, mono-criterion rule.
//   H6  "Sp bi L"      — 2-way splitting, bi-criteria ratio rule.
//
// (H1..H6 follow the paper's Table-1 numbering.)
#pragma once

#include <string>

#include "pipesched/heuristics/splitting_engine.hpp"

namespace pipesched::heuristics {

/// Which criterion the caller bounds.
enum class Objective {
  kMinLatencyForPeriod,  ///< threshold is a period bound
  kMinPeriodForLatency,  ///< threshold is a latency bound
};

/// Outcome of one heuristic run.
struct Result {
  bool success = false;    ///< threshold satisfied by `mapping`
  IntervalMapping mapping; ///< best mapping found (valid even on failure)
  Metrics metrics;         ///< its period and latency
  std::size_t splits = 0;  ///< accepted splits
};

/// Options for the H4 binary search.
struct SpBiPOptions {
  int bisectionIterations = 40;
};

/// H1 — Sp mono P: minimize latency under `periodBound`.
[[nodiscard]] Result spMonoP(const Evaluator& eval, Real periodBound);

/// H2 — 3-Explo mono: minimize latency under `periodBound` with 3-way splits.
[[nodiscard]] Result exploThreeMono(const Evaluator& eval, Real periodBound);

/// H3 — 3-Explo bi: 3-way splits selected by the dLatency/dPeriod ratio.
[[nodiscard]] Result exploThreeBi(const Evaluator& eval, Real periodBound);

/// H4 — Sp bi P: binary search over the authorized latency increase; returns
/// the feasible solution with the smallest latency found.
[[nodiscard]] Result spBiP(const Evaluator& eval, Real periodBound,
                           const SpBiPOptions& options = {});

/// H5 — Sp mono L: minimize period under `latencyBound`.
[[nodiscard]] Result spMonoL(const Evaluator& eval, Real latencyBound);

/// H6 — Sp bi L: as H5 with the bi-criteria selection rule.
[[nodiscard]] Result spBiL(const Evaluator& eval, Real latencyBound);

}  // namespace pipesched::heuristics
