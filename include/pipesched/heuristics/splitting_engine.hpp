// Generic interval-splitting engine (paper Section 4).
//
// Every heuristic in the paper follows the same skeleton:
//   * sort processors by non-increasing speed;
//   * start with every stage on the fastest processor (the Lemma-1 optimum);
//   * repeatedly pick the *used* processor with the largest cycle-time and
//     split its interval, handing stages to the fastest processors not yet
//     used, until the period target is reached or no admissible split exists.
//
// The heuristics differ along two axes, which are the engine's knobs:
//   * split arity — 2-way (Sp-*) or 3-way (3-Explo-*);
//   * selection rule — mono-criterion (minimize the max of the new
//     cycle-times) or bi-criteria (minimize max_i dLatency/dPeriod(i));
// plus the stopping side-constraints (period target, latency cap).
#pragma once

#include <optional>

#include "pipesched/core/evaluation.hpp"

namespace pipesched::heuristics {

using core::Evaluator;
using core::IntervalMapping;
using core::Metrics;

/// Candidate-selection rule.
enum class SelectionRule {
  kMonoMax,   ///< minimize max of the new cycle-times (H1/H2 style)
  kBiRatio,   ///< minimize max_i dLatency/dPeriod(i)   (H3/H4/H6 style)
};

/// How many pieces a split produces.
enum class SplitArity {
  kTwo,
  kThree,  ///< falls back to 2-way when the victim has < 3 stages or only
           ///< one unused processor remains
};

struct EngineConfig {
  SelectionRule rule = SelectionRule::kMonoMax;
  SplitArity arity = SplitArity::kTwo;

  /// Stop as soon as the period is <= this value. nullopt = run to
  /// exhaustion (used by the latency-constrained heuristics and by
  /// failure-threshold measurement).
  std::optional<Real> periodTarget;

  /// Candidates whose post-split latency exceeds this cap are inadmissible
  /// (the latency-constrained heuristics and the Sp-bi-P binary search).
  Real latencyCap = kInfinity;

  /// Hard safety cap on accepted splits (the theoretical max is n-1).
  std::size_t maxSplits = 1u << 20;

  /// Score split candidates through the core::DeltaEvaluator kernel
  /// (replace/undo, O(touched-intervals) per candidate, allocation-free)
  /// instead of the historical copy + replaceInterval + full-evaluate
  /// pattern. Both paths score bit-identically (pinned by
  /// test_splitting_engine.cpp); the rebuild path is the bench baseline.
  bool useDeltaKernel = true;
};

struct EngineResult {
  IntervalMapping mapping;
  Metrics metrics;
  std::size_t splits = 0;
  /// True when periodTarget was reached (always true in exhaustion mode).
  bool reachedTarget = false;
};

/// Runs the splitting loop on `eval`'s pipeline/platform. The initial mapping
/// is the optimal-latency single-interval solution.
[[nodiscard]] EngineResult runSplittingEngine(const Evaluator& eval, const EngineConfig& config);

}  // namespace pipesched::heuristics
