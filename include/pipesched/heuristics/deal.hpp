// Deal-aware splitting heuristic — the paper's conclusion extension made
// concrete: run the H1 greedy splitting, and whenever the bottleneck interval
// can no longer be split profitably (e.g. it is a single dominant stage),
// *replicate* it by adding the fastest unused processor to its replica set.
//
// This unlocks periods below the splitting-only floor exactly in the
// situation the paper describes: "a bottleneck in the pipeline operation due
// to a stage which is both computationally-demanding and not constrained by
// internal dependencies".
#pragma once

#include "pipesched/core/replication.hpp"
#include "pipesched/heuristics/heuristics.hpp"

namespace pipesched::heuristics {

struct DealResult {
  bool success = false;
  core::ReplicatedMapping mapping;
  core::Metrics metrics;
  std::size_t splits = 0;
  std::size_t replications = 0;
};

struct DealOptions {
  /// When false, replication is only attempted once no split improves the
  /// bottleneck (the default, matching the "nest a deal skeleton as a last
  /// resort" reading); when true, replication competes with splits on equal
  /// footing in every step.
  bool replicationCompetesWithSplits = false;
};

/// Minimize latency subject to period <= periodBound with splits and
/// replication. Always succeeds structurally; `success` reports whether the
/// bound was met.
[[nodiscard]] DealResult spMonoPWithDeal(const core::Evaluator& eval, Real periodBound,
                                         const DealOptions& options = {});

/// The minimum period reachable with splits + replication (run to
/// exhaustion); the deal analogue of a failure threshold.
[[nodiscard]] Real dealExhaustionPeriod(const core::Evaluator& eval,
                                        const DealOptions& options = {});

}  // namespace pipesched::heuristics
