// The NP-completeness gadget of Theorem 1.
//
// The paper reduces NUMERICAL MATCHING WITH TARGET SUMS (NMWTS, Garey &
// Johnson) to Hetero-1D-Partition: given 3m numbers x_i, y_i, z_i, do two
// permutations sigma1, sigma2 exist with x_i + y_{sigma1(i)} = z_{sigma2(i)}?
//
// The constructed instance uses M = max{x_i, y_i, z_i}, B = 2M, C = 5M,
// D = 7M, and per block i the task weights  [A_i = B + x_i, 1 x M, C, D],
// with 3m processor speeds  s_i = B + z_i, s_{m+i} = C + M - y_i,
// s_{2m+i} = D, and asks whether bottleneck K = 1 is achievable.
//
// This module builds the gadget, solves small NMWTS instances exactly, and
// converts solutions in both directions — a mechanical check of the paper's
// Theorem 1 arguments.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pipesched/c2c/heterogeneous.hpp"

namespace pipesched::c2c {

/// An NMWTS instance: three lists of m non-negative integers. The problem is
/// trivially infeasible unless sum(x) + sum(y) == sum(z) (the reduction
/// assumes this normalization, as does the paper).
struct NmwtsInstance {
  std::vector<std::int64_t> x;
  std::vector<std::int64_t> y;
  std::vector<std::int64_t> z;

  [[nodiscard]] std::size_t m() const noexcept { return x.size(); }
  /// M = max over all 3m numbers.
  [[nodiscard]] std::int64_t maxValue() const;
  /// Throws ModelError when sizes mismatch, values are negative, or m == 0.
  void validate() const;
  /// sum(x) + sum(y) == sum(z)?
  [[nodiscard]] bool sumsBalanced() const;
};

/// A YES-certificate: x_i + y[sigma1[i]] == z[sigma2[i]] for all i.
struct NmwtsSolution {
  std::vector<std::size_t> sigma1;
  std::vector<std::size_t> sigma2;
};

/// True when `sol` certifies `inst`.
[[nodiscard]] bool verifyNmwts(const NmwtsInstance& inst, const NmwtsSolution& sol);

/// Exact backtracking solver; practical for m up to ~10. Returns nullopt on
/// NO-instances.
[[nodiscard]] std::optional<NmwtsSolution> solveNmwts(const NmwtsInstance& inst);

/// The Hetero-1D-Partition instance produced by the Theorem-1 reduction.
struct ReductionInstance {
  std::vector<Real> weights;  ///< n = (M+3) * m task weights
  std::vector<Real> speeds;   ///< p = 3m processor speeds
  Real bound = 1;             ///< K
};

/// Builds the reduction. Requires a validated instance with M >= 1.
[[nodiscard]] ReductionInstance buildReduction(const NmwtsInstance& inst);

/// Forward direction of the proof: converts an NMWTS certificate into a
/// partition + processor order achieving bottleneck exactly K = 1.
[[nodiscard]] HeteroSolution reductionSolution(const NmwtsInstance& inst,
                                               const NmwtsSolution& sol);

/// Backward direction: extracts an NMWTS certificate from any heterogeneous
/// solution of the reduction instance with bottleneck <= 1. Returns nullopt
/// when the solution does not have the structure the proof guarantees (which,
/// per Theorem 1, cannot happen for a genuine K<=1 solution).
[[nodiscard]] std::optional<NmwtsSolution> extractCertificate(const NmwtsInstance& inst,
                                                              const HeteroSolution& sol);

}  // namespace pipesched::c2c
