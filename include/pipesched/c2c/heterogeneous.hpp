// Solvers for the *heterogeneous* 1-D partitioning problem
// (Hetero-1D-Partition, paper Definition 1): partition a_1..a_n into
// intervals and pick a permutation of the processor speeds so the largest
// interval-sum/speed ratio is minimized. Theorem 1 proves this NP-complete;
// we provide an exact fixed-order DP (polynomial once the processor order is
// chosen), exhaustive search over orders (exponential, small p only), and two
// polynomial heuristics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pipesched/c2c/chains.hpp"

namespace pipesched::c2c {

/// A heterogeneous solution: the partition plus the processor (speed-index)
/// ordered along the chain; processorOrder[k] is the index into the original
/// speeds array serving interval k.
struct HeteroSolution {
  Partition partition;
  std::vector<std::size_t> processorOrder;
  Real bottleneck = kInfinity;
};

/// Exact DP for a *fixed* processor order: intervals may be empty (an empty
/// interval simply skips its processor), so the at-most semantics of the
/// mapping problem is preserved. `speedOrder` lists processor indices in
/// chain order; speeds[speedOrder[k]] serves interval k.
/// Returns the solution restricted to the non-empty intervals. O(n^2 p).
[[nodiscard]] HeteroSolution dpWithFixedOrder(const std::vector<Real>& weights,
                                              const std::vector<Real>& speeds,
                                              const std::vector<std::size_t>& speedOrder);

/// Exact solver: enumerates every permutation of the speeds (deduplicating
/// equal-speed processors) and runs the fixed-order DP. Throws ModelError
/// when speeds.size() > maxProcessorsForExhaustive (guard against blow-up).
[[nodiscard]] HeteroSolution heteroExhaustive(const std::vector<Real>& weights,
                                              const std::vector<Real>& speeds,
                                              std::size_t maxProcessorsForExhaustive = 9);

/// Polynomial heuristic: processors sorted by non-increasing speed along the
/// chain, then the fixed-order DP. (A natural order: the paper's mapping
/// heuristics likewise consume processors fastest-first.)
[[nodiscard]] HeteroSolution heteroSortedDp(const std::vector<Real>& weights,
                                            const std::vector<Real>& speeds);

/// Local-search heuristic: starts from heteroSortedDp and hill-climbs by
/// swapping adjacent processors in the order, re-running the DP, until no
/// swap improves or `maxIterations` sweeps are done. Deterministic.
[[nodiscard]] HeteroSolution heteroLocalSearch(const std::vector<Real>& weights,
                                               const std::vector<Real>& speeds,
                                               std::size_t maxIterations = 64);

/// Lower bound on the heterogeneous bottleneck: total weight / total speed.
[[nodiscard]] Real heteroLowerBound(const std::vector<Real>& weights,
                                    const std::vector<Real>& speeds);

}  // namespace pipesched::c2c
