// Exact and heuristic solvers for the *homogeneous* chains-to-chains problem
// (identical processors). These are the classic algorithms the paper cites
// ([6] Bokhari, [10] Hansen-Lih, [13] Olstad-Manne, survey [14] Pinar-Aykanat)
// and serve as baselines and building blocks for the heterogeneous case.
#pragma once

#include <cstddef>
#include <vector>

#include "pipesched/c2c/chains.hpp"

namespace pipesched::c2c {

/// Exact O(n^2 p) dynamic program: minimal bottleneck partition of `weights`
/// into at most `parts` intervals. Returns a partition with at most `parts`
/// intervals realizing the optimum.
[[nodiscard]] Partition dpPartition(const std::vector<Real>& weights, std::size_t parts);

/// Greedy feasibility probe: can the array be split into at most `parts`
/// intervals of sum <= limit? When feasible and `out` is non-null, a witness
/// partition is stored there. O(n).
[[nodiscard]] bool probe(const std::vector<Real>& weights, std::size_t parts, Real limit,
                         Partition* out = nullptr);

/// Exact solver via parametric search on the candidate bottleneck values
/// (Nicol-style: binary search over interval sums using probe()).
/// O(n log(n) log(sum/min)) style complexity in practice; exact for
/// non-negative weights.
[[nodiscard]] Partition parametricPartition(const std::vector<Real>& weights, std::size_t parts);

/// Greedy heuristic: walk the chain closing an interval as soon as its sum
/// reaches total/parts. Not optimal — kept as a baseline.
[[nodiscard]] Partition greedyPartition(const std::vector<Real>& weights, std::size_t parts);

/// Recursive bisection heuristic: split the chain at the weighted midpoint,
/// recursing with parts/2 on each side. Not optimal — kept as a baseline.
[[nodiscard]] Partition recursiveBisection(const std::vector<Real>& weights, std::size_t parts);

/// Minimal bottleneck value of an optimal partition (convenience wrapper).
[[nodiscard]] Real optimalBottleneck(const std::vector<Real>& weights, std::size_t parts);

}  // namespace pipesched::c2c
