// The chains-to-chains (1-D partitioning) problem (paper Sections 1 and 3).
//
// Given an array a_1..a_n of non-negative weights, partition it into at most
// p consecutive intervals minimizing the largest interval sum (homogeneous
// version), or — heterogeneous generalization, proved NP-hard by the paper —
// the largest interval sum divided by the speed of the processor the interval
// is assigned to, over all partitions *and* processor permutations.
#pragma once

#include <cstddef>
#include <vector>

#include "pipesched/core/types.hpp"

namespace pipesched::c2c {

using pipesched::Real;

/// A partition of [0, n) into consecutive non-empty intervals, encoded by the
/// inclusive end index of each interval; ends.back() == n-1.
struct Partition {
  std::vector<std::size_t> ends;

  [[nodiscard]] std::size_t intervalCount() const noexcept { return ends.size(); }

  /// First stage of interval k.
  [[nodiscard]] std::size_t first(std::size_t k) const {
    return k == 0 ? 0 : ends.at(k - 1) + 1;
  }
  /// Last stage of interval k (inclusive).
  [[nodiscard]] std::size_t last(std::size_t k) const { return ends.at(k); }

  [[nodiscard]] bool operator==(const Partition&) const noexcept = default;
};

/// Throws ModelError unless `p` is a structurally valid partition of
/// [0, weights.size()).
void validatePartition(const std::vector<Real>& weights, const Partition& p);

/// Sum of weights within interval k of the partition.
[[nodiscard]] Real intervalSum(const std::vector<Real>& weights, const Partition& p,
                               std::size_t k);

/// Homogeneous objective: max interval sum.
[[nodiscard]] Real bottleneck(const std::vector<Real>& weights, const Partition& p);

/// Heterogeneous objective: max_k intervalSum(k) / speeds[k], where speeds
/// are listed in interval order (speeds.size() == p.intervalCount()).
[[nodiscard]] Real weightedBottleneck(const std::vector<Real>& weights, const Partition& p,
                                      const std::vector<Real>& speeds);

/// Inclusive-prefix-sum helper shared by the solvers: out[k] = sum of
/// weights[0..k). out.size() == weights.size()+1.
[[nodiscard]] std::vector<Real> prefixSums(const std::vector<Real>& weights);

}  // namespace pipesched::c2c
