// Scoped trace spans and per-request breakdowns. A TraceSpan times one
// pipeline stage RAII-style and records the elapsed time into (a) the
// process-wide per-stage histogram when metrics are enabled and (b) an
// optional per-request RequestTrace when the caller is assembling one.
//
// Stages are defined so that within one request they cover *disjoint*
// intervals of work (the member race and the merge are timed separately, a
// cache hit skips both), which is what makes the invariant
// `stagesTotal() <= totalSeconds` hold by construction rather than by luck.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pipesched/obs/metrics.hpp"

namespace pipesched::obs {

/// The instrumented stages of a request's life, in pipeline order.
enum class Stage : unsigned char {
  kParse,        ///< JSONL/file text -> Request (source side)
  kFingerprint,  ///< canonical identity walk
  kCacheLookup,  ///< ResultCache probe
  kQueueWait,    ///< stream path: submit -> worker pickup
  kMemberSolve,  ///< portfolio member race (all members, wall time)
  kMerge,        ///< Pareto merge + attribution
  kEmit,         ///< outcome -> sink line
  kCount_,       ///< sentinel
};

inline constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount_);

[[nodiscard]] const char* stageName(Stage stage) noexcept;

/// The "stage.<name>" nanosecond histogram for one stage, registered on
/// first use. Cheap after the first call (static table of pointers).
Histogram& stageHistogram(Stage stage);

/// Per-request latency breakdown, attached to RequestOutcome when tracing
/// is on. Stage entries are disjoint slices of the request's wall time;
/// `members` additionally breaks the kMemberSolve slice down per portfolio
/// member (those overlap each other under a thread pool, so they are
/// reported separately rather than as stages).
struct RequestTrace {
  double totalSeconds = 0;
  std::array<double, kStageCount> stageSeconds{};
  std::array<std::uint32_t, kStageCount> stageCounts{};
  std::vector<std::pair<std::string, double>> members;  ///< (solver, seconds)

  void add(Stage stage, double seconds) noexcept {
    const auto i = static_cast<std::size_t>(stage);
    stageSeconds[i] += seconds;
    stageCounts[i] += 1;
  }

  /// Sum of all stage slices — always <= totalSeconds for traces assembled
  /// by the pipeline.
  [[nodiscard]] double stagesTotal() const noexcept {
    double total = 0;
    for (const double s : stageSeconds) total += s;
    return total;
  }
};

using TraceClock = std::chrono::steady_clock;

[[nodiscard]] inline double secondsSince(TraceClock::time_point start) noexcept {
  return std::chrono::duration<double>(TraceClock::now() - start).count();
}

/// RAII stage timer. Inactive (no clock read at all) unless metrics are
/// enabled or a trace is being assembled; destruction records at most once.
class TraceSpan {
 public:
  explicit TraceSpan(Stage stage, RequestTrace* trace = nullptr) noexcept
      : stage_(stage),
        recordHistogram_(metricsEnabled()),
        trace_(trace),
        active_(recordHistogram_ || trace_ != nullptr) {
    if (active_) start_ = TraceClock::now();
  }
  ~TraceSpan() { stop(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early and returns its duration in seconds (0 when the
  /// span was inactive). Idempotent; the destructor becomes a no-op.
  double stop() noexcept {
    if (!active_) return 0;
    active_ = false;
    const double seconds = secondsSince(start_);
    if (recordHistogram_) stageHistogram(stage_).recordSeconds(seconds);
    if (trace_ != nullptr) trace_->add(stage_, seconds);
    return seconds;
  }

 private:
  Stage stage_;
  bool recordHistogram_;
  RequestTrace* trace_;
  bool active_;
  TraceClock::time_point start_{};
};

}  // namespace pipesched::obs
