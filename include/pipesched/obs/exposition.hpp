// Prometheus text exposition (format 0.0.4) of an obs::Snapshot — the body
// `pipesched serve --listen` answers on GET /metrics and `pipesched stats
// --format prometheus` prints offline.
//
// Fidelity contract (pinned by tests/obs/test_exposition.cpp): the rendered
// document is an exact re-encoding of the snapshot it was given. Counter and
// gauge sample values equal Snapshot values verbatim; histogram `_count` and
// `_sum` lines equal HistogramSnapshot::count/sum; `_bucket` lines are the
// cumulative prefix sums of HistogramSnapshot::buckets with `le` set to the
// bucket's inclusive upper bound (the overflow bucket renders as le="+Inf").
// Nanosecond histograms keep their raw integer nanosecond values — no lossy
// seconds conversion — with the unit noted on the HELP line.
#pragma once

#include <iosfwd>
#include <string>

namespace pipesched::obs {

struct Snapshot;

/// Maps a registry metric name onto the Prometheus name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, prefixed "pipesched_": every run of invalid
/// characters (the registry's dots included) collapses to one underscore,
/// so "net.endpoint.solve" -> "pipesched_net_endpoint_solve".
[[nodiscard]] std::string sanitizeMetricName(const std::string& name);

/// Renders the snapshot as one exposition document: `# HELP` + `# TYPE` +
/// sample lines per metric, counters first, then gauges, then histograms —
/// registration order within each kind, matching writeSnapshotJson.
void writeSnapshotPrometheus(const Snapshot& snapshot, std::ostream& out);

/// Convenience: writeSnapshotPrometheus into a string.
[[nodiscard]] std::string renderSnapshotPrometheus(const Snapshot& snapshot);

}  // namespace pipesched::obs
