// pipesched::obs — process-wide observability primitives: runtime switches,
// monotonic counters, gauges, and fixed-bucket latency histograms with
// quantile extraction, collected behind a lazily-populated named registry.
//
// Design constraints (the solve/serve hot paths run at ~100k req/s warm):
//  - Disabled path: every instrumentation site reduces to one relaxed atomic
//    load and a branch — no clock reads, no allocation, no locking.
//  - Enabled path: recording is a handful of relaxed atomic adds. Name
//    lookup takes the registry mutex, so call sites cache the returned
//    reference (function-local static) — metric objects are pointer-stable
//    for the life of the process.
//  - Histograms use power-of-two buckets over uint64 values (nanoseconds for
//    time, raw magnitudes for depths/counts): exact counts and integer sums,
//    so concurrent recording is deterministic up to bucket resolution.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace pipesched::io {
class JsonWriter;
}

namespace pipesched::obs {

// ---------------------------------------------------------------------------
// Runtime switches. Metrics gate registry recording; tracing gates
// per-request breakdown assembly. Both default off, so an uninstrumented
// process pays only the flag loads.
// ---------------------------------------------------------------------------

[[nodiscard]] bool metricsEnabled() noexcept;
void setMetricsEnabled(bool on) noexcept;

[[nodiscard]] bool tracingEnabled() noexcept;
void setTracingEnabled(bool on) noexcept;

/// RAII flag setters for CLI commands and tests: the CLI is re-entered
/// in-process (tests call runCli repeatedly), so flags must never leak past
/// the command that set them.
class ScopedMetricsEnabled {
 public:
  explicit ScopedMetricsEnabled(bool on) : previous_(metricsEnabled()) { setMetricsEnabled(on); }
  ~ScopedMetricsEnabled() { setMetricsEnabled(previous_); }
  ScopedMetricsEnabled(const ScopedMetricsEnabled&) = delete;
  ScopedMetricsEnabled& operator=(const ScopedMetricsEnabled&) = delete;

 private:
  bool previous_;
};

class ScopedTracingEnabled {
 public:
  explicit ScopedTracingEnabled(bool on) : previous_(tracingEnabled()) { setTracingEnabled(on); }
  ~ScopedTracingEnabled() { setTracingEnabled(previous_); }
  ScopedTracingEnabled(const ScopedTracingEnabled&) = delete;
  ScopedTracingEnabled& operator=(const ScopedTracingEnabled&) = delete;

 private:
  bool previous_;
};

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

/// Monotonic event count. Relaxed ordering: totals are exact once writers
/// quiesce; a mid-flight snapshot may trail individual writers but never
/// invents events.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, in-flight requests).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// What a histogram's recorded values mean — controls JSON rendering only.
enum class Unit : unsigned char { kCount, kNanoseconds };

[[nodiscard]] const char* unitName(Unit unit) noexcept;

/// Bucket count for all histograms. Bucket 0 holds exact zeros; bucket i>0
/// covers [2^(i-1), 2^i - 1]; the last bucket absorbs everything above
/// 2^(kHistogramBuckets-2) (~70k seconds when recording nanoseconds).
inline constexpr std::size_t kHistogramBuckets = 48;

/// Value-type copy of a histogram's state: mergeable across shards and
/// cheap to reason about in tests.
struct HistogramSnapshot {
  Unit unit = Unit::kCount;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< exact integer sum of recorded values
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Adds another snapshot's buckets/count/sum into this one. Merging shard
  /// snapshots is exactly equivalent to recording into one histogram.
  void merge(const HistogramSnapshot& other);

  [[nodiscard]] double mean() const noexcept;

  /// Quantile estimate for q in (0, 1]: locates the bucket containing the
  /// element of rank max(1, ceil(q*count)) and interpolates linearly within
  /// it. The result always lies within [lo, hi+1] of the bucket holding the
  /// exact order statistic, which is what the sorted-reference tests check.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-bucket, lock-free histogram. Recording is two relaxed fetch_adds.
class Histogram {
 public:
  explicit Histogram(Unit unit = Unit::kCount) noexcept : unit_(unit) {}

  void record(std::uint64_t value) noexcept {
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Convenience for Unit::kNanoseconds histograms: converts non-negative
  /// seconds to integer nanoseconds.
  void recordSeconds(double seconds) noexcept {
    record(seconds > 0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0);
  }

  [[nodiscard]] Unit unit() const noexcept { return unit_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

  [[nodiscard]] static std::size_t bucketIndex(std::uint64_t value) noexcept;
  /// Inclusive value range covered by bucket `index`.
  [[nodiscard]] static std::uint64_t bucketLow(std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucketHigh(std::size_t index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  Unit unit_;
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Point-in-time copy of every registered metric, in registration order.
struct Snapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    HistogramSnapshot hist;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// Named metric store. The mutex is taken only at registration/lookup and
/// snapshot time — never while recording. Metric objects live in deques, so
/// references handed out stay valid as later metrics register.
class Registry {
 public:
  /// Finds or creates the named metric. References remain valid for the
  /// registry's lifetime — cache them at hot call sites.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, Unit unit = Unit::kCount);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every metric's value; names stay registered.
  void reset();

 private:
  struct CounterRow {
    explicit CounterRow(std::string n) : name(std::move(n)) {}
    std::string name;
    Counter metric;
  };
  struct GaugeRow {
    explicit GaugeRow(std::string n) : name(std::move(n)) {}
    std::string name;
    Gauge metric;
  };
  struct HistogramRow {
    HistogramRow(std::string n, Unit unit) : name(std::move(n)), metric(unit) {}
    std::string name;
    Histogram metric;
  };

  mutable std::mutex mutex_;
  std::deque<CounterRow> counters_;
  std::deque<GaugeRow> gauges_;
  std::deque<HistogramRow> histograms_;
};

/// The process-wide registry every instrumentation site records into.
Registry& registry();

/// Canonical metric names outside the per-stage histograms (those are
/// "stage.<stageName>", see trace.hpp). Kept here so emitters, the `stats`
/// command, and preregistration agree on spelling.
namespace names {
inline constexpr const char* kQueueDepth = "stream.queue_depth";
inline constexpr const char* kDrain = "stream.drain";
inline constexpr const char* kCoalesced = "stream.coalesced";
inline constexpr const char* kMemberRun = "portfolio.member_run";
inline constexpr const char* kRequestsSolved = "service.requests_solved";
inline constexpr const char* kRequestsCacheHit = "service.requests_cache_hit";
inline constexpr const char* kRequestsFailed = "service.requests_failed";
/// Malformed ingestion lines (JSONL request protocol); errored lines also
/// record their wall time into the stage.parse histogram.
inline constexpr const char* kParseErrors = "parse.errors";
inline constexpr const char* kDeltaPeeks = "eval.delta.peeks";
inline constexpr const char* kDeltaApplies = "eval.delta.applies";
inline constexpr const char* kDeltaReplaces = "eval.delta.replaces";
inline constexpr const char* kDeltaUndos = "eval.delta.undos";
// Network transport (pipesched::net). Connection lifecycle counters, byte
// counters, admission-control sheds, and the drain-state gauge /healthz
// reports. Per-endpoint latency histograms are "net.endpoint.<name>".
inline constexpr const char* kNetAccepted = "net.connections_accepted";
inline constexpr const char* kNetActive = "net.connections_active";
inline constexpr const char* kNetClosed = "net.connections_closed";
inline constexpr const char* kNetErrored = "net.connections_errored";
inline constexpr const char* kNetBytesRead = "net.bytes_read";
inline constexpr const char* kNetBytesWritten = "net.bytes_written";
inline constexpr const char* kNetRequests = "net.http_requests";
inline constexpr const char* kNetShed = "net.shed_total";
inline constexpr const char* kNetDraining = "net.draining";
/// Requests whose deadline expired over the HTTP transport (each one also
/// answers 504 when every solvable line in its POST timed out).
inline constexpr const char* kNetTimeout = "net.timeout_total";
/// Mid-request connections cut with 408 by the slowloris guard.
inline constexpr const char* kNetRequestTimeouts = "net.request_timeouts";
/// Idle keep-alive connections closed silently by the idle sweep.
inline constexpr const char* kNetIdleClosed = "net.idle_closed";
// Resilience layer (pipesched::fault + deadline propagation).
inline constexpr const char* kFaultInjected = "fault.injected_total";
/// Requests whose deadline expired while queued (never solved).
inline constexpr const char* kTimeoutQueueExpired = "timeout.queue_expired";
/// Coalesced waiters whose deadline expired before the owner finished.
inline constexpr const char* kTimeoutCoalescedExpired = "timeout.coalesced_expired";
/// Responses served with a partial (deadline- or failure-cut) front.
inline constexpr const char* kDegradedResponses = "degraded.responses";
/// Portfolio members dropped or cut short by deadline/failure.
inline constexpr const char* kDegradedMembers = "degraded.members_dropped";
}  // namespace names

/// "net.endpoint.<name>" nanosecond histogram: request-line parsed ->
/// response enqueued for one named endpoint (solve/stats/healthz/metrics).
Histogram& endpointHistogram(const std::string& endpoint);

/// Registers the full standard metric catalog (stage histograms plus the
/// names above) so snapshots enumerate every metric even before traffic
/// touches it — `pipesched stats` uses this to print the catalog.
void preregisterStandardMetrics();

/// Serializes a snapshot as one JSON object: {"counters": {...},
/// "gauges": {...}, "histograms": {name: {unit, count, sum, mean, p50, p90,
/// p99, buckets: [{lo, hi, count}...nonzero only]}}}.
void writeSnapshotJson(const Snapshot& snapshot, io::JsonWriter& w);

}  // namespace pipesched::obs
